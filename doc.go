// Package adaptivegossip is a Go implementation of "Adaptive
// Gossip-Based Broadcast" (Rodrigues, Handurukande, Pereira, Guerraoui,
// Kermarrec — DSN 2003): lpbcast-style probabilistic broadcast with a
// feedback-free adaptation mechanism that lets every sender adjust its
// emission rate to the buffering resources of the most constrained
// group member and to the global congestion level.
//
// # Quick start
//
// An in-process cluster with adaptation enabled:
//
//	cfg := adaptivegossip.DefaultConfig()
//	cluster, err := adaptivegossip.NewCluster(16, cfg,
//		adaptivegossip.WithDeliver(func(node adaptivegossip.NodeID, ev adaptivegossip.Event) {
//			fmt.Printf("%s delivered %s\n", node, ev.ID)
//		}))
//	if err != nil { ... }
//	cluster.Start()
//	defer cluster.Stop()
//	cluster.Publish(0, []byte("hello group"))
//
// A node on a real network uses NewUDPNode with an address book of
// peers; see examples/udpcluster.
//
// # Loss recovery
//
// Setting Config.RecoveryEnabled turns on a digest-based anti-entropy
// subsystem (internal/recovery): every gossip round piggybacks a
// compact digest of recently-seen event IDs, receivers pull the events
// they missed from the digest's sender, and senders serve the
// retransmissions from a bounded store that outlives the events
// buffer. This repairs losses that pure push gossip cannot — see
// examples/udpcluster's -loss flag and gossipsim -figure recovery.
//
// # Failure detection
//
// Setting Config.FailureDetectionEnabled turns on a SWIM-style failure
// detector (internal/failure): each gossip round the node pings one
// random member, escalates unanswered probes through indirect
// ping-reqs to a suspect→confirm state machine, and piggybacks the
// alive/suspect/confirm verdicts on gossip — O(1) extra messages per
// node per round. Confirmed-crashed members are evicted from the
// node's gossip targets so fanout stops being wasted on the dead, and
// re-admitted when they prove alive again (incarnation-numbered
// refutations prevent stale rumors from burying live members). See
// examples/udpcluster's -churn flag and gossipsim -figure churn.
//
// # Evaluation
//
// The Simulate and SimulateRealtime functions expose the paper's
// experiment harness (internal/experiments): deterministic
// discrete-event simulation and real-time prototype runs of the same
// protocol state machine. cmd/gossipsim regenerates every figure of
// the paper and prints each as an aligned text table.
//
// # Architecture
//
// The protocol is a single-threaded state machine (internal/gossip for
// the lpbcast substrate, internal/core for the adaptation mechanism,
// internal/recovery for anti-entropy repair, internal/failure for
// failure detection) owned by a driver: the
// discrete-event scheduler (internal/sim) for simulations, or one
// goroutine per node (internal/runtime) for real deployments. README.md
// documents the full package map.
package adaptivegossip

// Package adaptivegossip is a Go implementation of "Adaptive
// Gossip-Based Broadcast" (Rodrigues, Handurukande, Pereira, Guerraoui,
// Kermarrec — DSN 2003): lpbcast-style probabilistic broadcast with a
// feedback-free adaptation mechanism that lets every sender adjust its
// emission rate to the buffering resources of the most constrained
// group member and to the global congestion level.
//
// # One construction path
//
// The protocol is one state machine deployed in three shapes, and all
// three facades construct the same way: a Config (nested per-mechanism
// sub-configs), a shared functional-option set (WithSeed, WithDeliver,
// WithTransport, WithOnMemberChange, ...) and a pluggable Transport.
//
// An in-process cluster with adaptation enabled:
//
//	cfg := adaptivegossip.DefaultConfig()
//	cluster, err := adaptivegossip.NewCluster(16, cfg,
//		adaptivegossip.WithDeliver(func(d adaptivegossip.Delivery) {
//			fmt.Printf("%s delivered %s\n", d.Node, d.Event.ID)
//		}))
//	if err != nil { ... }
//	ctx := context.Background()
//	if err := cluster.Start(ctx); err != nil { ... }
//	defer cluster.Close()
//	cluster.Publish(0, []byte("hello group"))
//
// A node on a real network uses NewNode over a UDP transport with an
// address book of peers; see ExampleNewNode and examples/udpcluster:
//
//	tr, err := adaptivegossip.NewUDPTransport(adaptivegossip.WithBind("0.0.0.0:7946"))
//	node, err := adaptivegossip.NewNode("host-1", cfg,
//		adaptivegossip.WithTransport(tr),
//		adaptivegossip.WithPeers(map[string]string{"host-2": "10.0.0.2:7946"}))
//
// # Transports
//
// Transport is a public seam: the built-in fabrics are NewMemTransport
// (in-process, with WithLoss/WithLatency injection) and NewUDPTransport
// (real datagrams, with WithBind/WithLoss/WithMaxDatagram); any custom
// fabric — TCP, QUIC, a deterministic mock — plugs in by implementing
// the two-method Transport interface. The same cluster scenario runs
// unchanged over memory and UDP.
//
// # Delivery streams and callbacks
//
// Deliveries surface two ways: the WithDeliver callback (invoked on
// the delivering member's gossip goroutine — fast, non-blocking
// observers) and the Events stream, a context-cancellable channel of
// Delivery{Node, Topic, Event} for pull-based consumers. Both observe
// the same delivery feed; a stream subscriber sees every delivery from
// the moment it subscribes unless it falls more than
// DefaultEventStreamBuffer behind (drops are counted in
// Stats.StreamDropped). All facades also expose a unified Stats
// snapshot with the same shape.
//
// # Loss recovery
//
// Setting Config.Recovery.Enabled turns on a digest-based anti-entropy
// subsystem (internal/recovery): every gossip round piggybacks a
// compact digest of recently-seen event IDs, receivers pull the events
// they missed from the digest's sender, and senders serve the
// retransmissions from a bounded store that outlives the events
// buffer. This repairs losses that pure push gossip cannot — see
// examples/udpcluster's -loss flag and gossipsim -figure recovery.
//
// # Failure detection
//
// Setting Config.Failure.Enabled turns on a SWIM-style failure
// detector (internal/failure): each gossip round the node pings one
// random member, escalates unanswered probes through indirect
// ping-reqs to a suspect→confirm state machine, and piggybacks the
// alive/suspect/confirm verdicts on gossip — O(1) extra messages per
// node per round. Confirmed-crashed members are evicted from the
// node's gossip targets so fanout stops being wasted on the dead, and
// re-admitted when they prove alive again (incarnation-numbered
// refutations prevent stale rumors from burying live members). See
// examples/udpcluster's -churn flag and gossipsim -figure churn.
//
// # Evaluation
//
// The Simulate and SimulateRealtime functions expose the paper's
// experiment harness (internal/experiments): deterministic
// discrete-event simulation and real-time prototype runs of the same
// protocol state machine. cmd/gossipsim regenerates every figure of
// the paper and prints each as an aligned text table.
//
// # Architecture
//
// The protocol is a single-threaded state machine (internal/gossip for
// the lpbcast substrate, internal/core for the adaptation mechanism,
// internal/recovery for anti-entropy repair, internal/failure for
// failure detection) owned by a driver: the
// discrete-event scheduler (internal/sim) for simulations, or one
// goroutine per node (internal/runtime) for real deployments. README.md
// documents the full package map; API_STABILITY.md states the
// compatibility policy for this surface.
package adaptivegossip

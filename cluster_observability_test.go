package adaptivegossip

import (
	"context"
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitUntil polls cond every 10ms until it holds or the deadline
// passes, reporting whether it held.
func waitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

// peersSorted asserts the Stats.Peers shape contract shared by all
// facades: rows sorted by peer id, one row per observed peer.
func peersSorted(t *testing.T, facade string, peers []PeerLinkStats) {
	t.Helper()
	if !sort.SliceIsSorted(peers, func(i, j int) bool { return peers[i].Peer < peers[j].Peer }) {
		t.Fatalf("%s: Stats.Peers not sorted: %+v", facade, peers)
	}
}

// TestPeerStatsAcrossFacades: every facade fills Stats.Peers through
// the same peer-table seam — sorted rows, per-peer send/receive and
// fan-out counters — so per-link monitoring code is deployment
// agnostic. The in-process fabric moves no wire bytes, so the byte
// counters stay zero there.
func TestPeerStatsAcrossFacades(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Cluster over the memory fabric.
	cluster, err := NewCluster(3, fastConfig(), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Start(ctx); err != nil {
		t.Fatal(err)
	}
	cluster.Publish(0, []byte("peer-telemetry"))
	if !waitUntil(5*time.Second, func() bool {
		st := cluster.Stats()
		if len(st.Peers) != 3 {
			return false
		}
		for _, p := range st.Peers {
			if p.MessagesSent == 0 || p.FanoutSends == 0 || p.MessagesReceived == 0 {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("cluster peer telemetry never populated: %+v", cluster.Stats().Peers)
	}
	st := cluster.Stats()
	peersSorted(t, "cluster", st.Peers)
	for _, p := range st.Peers {
		if p.BytesSent != 0 || p.BytesReceived != 0 {
			t.Fatalf("memory fabric reported wire bytes for %s: %+v", p.Peer, p)
		}
	}

	// PubSub over the memory fabric.
	ps, err := NewPubSub(3, 60, fastConfig(), WithSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if err := ps.Start(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ps.Subscribe(i, "topic"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ps.Publish(0, "topic", []byte("peer-telemetry")); err != nil {
		t.Fatal(err)
	}
	if !waitUntil(5*time.Second, func() bool { return len(ps.Stats().Peers) == 3 }) {
		t.Fatalf("pubsub peer telemetry never populated: %+v", ps.Stats().Peers)
	}
	peersSorted(t, "pubsub", ps.Stats().Peers)

	// Node pair over real UDP: byte counters must move.
	cfg := fastConfig()
	a, err := NewNode("alpha", cfg, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var got atomic.Int64
	b, err := NewNode("beta", cfg, WithSeed(2),
		WithDeliver(func(Delivery) { got.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer("beta", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("alpha", a.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if !a.Publish([]byte("over the wire")) {
		t.Fatal("publish rejected")
	}
	if !waitUntil(5*time.Second, func() bool { return got.Load() >= 1 }) {
		t.Fatal("event never crossed UDP")
	}
	nodeStats := a.Stats()
	peersSorted(t, "node", nodeStats.Peers)
	var row *PeerLinkStats
	for i := range nodeStats.Peers {
		if nodeStats.Peers[i].Peer == "beta" {
			row = &nodeStats.Peers[i]
		}
	}
	if row == nil {
		t.Fatalf("node has no row for beta: %+v", nodeStats.Peers)
	}
	if row.MessagesSent == 0 || row.BytesSent == 0 || row.FanoutSends == 0 {
		t.Fatalf("UDP peer row never counted wire traffic: %+v", *row)
	}
	// Receiver side attributes inbound traffic to the decoded sender.
	if !waitUntil(5*time.Second, func() bool {
		for _, p := range b.Stats().Peers {
			if p.Peer == "alpha" && p.MessagesReceived > 0 && p.BytesReceived > 0 {
				return true
			}
		}
		return false
	}) {
		t.Fatalf("beta never attributed inbound traffic to alpha: %+v", b.Stats().Peers)
	}
}

// TestPeerStatsConcurrentWithTraffic hammers the Stats.Peers snapshot
// path from several goroutines while the cluster gossips — the -race
// regression for the peer-table read path.
func TestPeerStatsConcurrentWithTraffic(t *testing.T) {
	cfg := fastConfig()
	cfg.Observability.HealthDigests = true
	cluster, err := NewCluster(4, cfg, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cluster.Start(ctx); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					st := cluster.Stats()
					peersSorted(t, "cluster", st.Peers)
					_ = cluster.ClusterHealth()
				}
			}
		}()
	}
	deadline := time.After(300 * time.Millisecond)
	for i := 0; ; i++ {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			return
		default:
			cluster.Publish(i%4, []byte("race"))
			time.Sleep(time.Millisecond)
		}
	}
}

// TestClusterHealthConverges: with health digests on, an in-process
// cluster's converged view grows to one entry per member, carrying
// live protocol counters.
func TestClusterHealthConverges(t *testing.T) {
	cfg := fastConfig()
	cfg.Observability.HealthDigests = true
	cluster, err := NewCluster(5, cfg, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cluster.Start(ctx); err != nil {
		t.Fatal(err)
	}
	cluster.Publish(0, []byte("digest-me"))
	if !waitUntil(5*time.Second, func() bool { return len(cluster.ClusterHealth()) == 5 }) {
		t.Fatalf("cluster health never converged: %d/5 members", len(cluster.ClusterHealth()))
	}
	view := cluster.ClusterHealth()
	if !sort.SliceIsSorted(view, func(i, j int) bool { return view[i].Node < view[j].Node }) {
		t.Fatalf("view not sorted: %+v", view)
	}
	var delivered uint64
	for _, m := range view {
		if m.BufferCap != cfg.BufferCapacity {
			t.Fatalf("member %s digest BufferCap = %d, want %d", m.Node, m.BufferCap, cfg.BufferCapacity)
		}
		delivered += m.Delivered
	}
	if delivered == 0 {
		t.Fatalf("no digest carries deliveries: %+v", view)
	}
	st := cluster.Stats()
	if st.HealthDigestsSent == 0 || st.HealthDigestsMerged == 0 {
		t.Fatalf("health counters flat: %+v", st)
	}

	// Health off keeps the view empty and the counters flat.
	dark, err := NewCluster(2, fastConfig(), WithSeed(22))
	if err != nil {
		t.Fatal(err)
	}
	defer dark.Close()
	if err := dark.Start(ctx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if v := dark.ClusterHealth(); len(v) != 0 {
		t.Fatalf("health digests disabled but view = %+v", v)
	}
}

// TestUDPClusterObservabilityAcceptance is the PR's acceptance check:
// two UDP nodes with tracing, health digests and the failure detector
// on. The causal publish → first-send → receive → deliver path must be
// reconstructable from both nodes' /debug/gossip/traces with the
// receiver attributing hop 1 to the sender, /debug/gossip/cluster on
// both nodes must converge to both members' digests within 10 gossip
// periods, and the receiver's /metrics must carry per-peer link
// families for the sender, including harvested ping RTTs.
func TestUDPClusterObservabilityAcceptance(t *testing.T) {
	const period = 100 * time.Millisecond
	cfg := DefaultConfig()
	cfg.Period = period
	cfg.BufferCapacity = 40
	cfg.MaxAge = 8
	cfg.Failure.Enabled = true
	cfg.Observability = ObservabilityConfig{
		DebugAddr:       "127.0.0.1:0",
		TraceSampleRate: 1,
		HealthDigests:   true,
	}

	a, err := NewNode("a", cfg, WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var got atomic.Int64
	b, err := NewNode("b", cfg, WithSeed(32),
		WithDeliver(func(Delivery) { got.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer("b", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("a", a.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if !a.Publish([]byte("causal-path")) {
		t.Fatal("publish rejected")
	}
	if !waitUntil(5*time.Second, func() bool { return got.Load() >= 1 }) {
		t.Fatal("event never delivered on b")
	}

	// Cluster view: both nodes converge to both digests within 10
	// gossip periods of the delivery.
	clusterView := func(n *Node) []MemberHealth {
		var view []MemberHealth
		body := debugGet(t, "http://"+n.DebugAddr()+"/debug/gossip/cluster")
		if err := json.Unmarshal([]byte(body), &view); err != nil {
			t.Fatalf("cluster endpoint not JSON: %v\n%s", err, body)
		}
		return view
	}
	if !waitUntil(10*period, func() bool {
		return len(clusterView(a)) == 2 && len(clusterView(b)) == 2
	}) {
		t.Fatalf("cluster views never converged within 10 periods: a=%+v b=%+v",
			clusterView(a), clusterView(b))
	}
	for _, n := range []*Node{a, b} {
		view := clusterView(n)
		if view[0].Node != "a" || view[1].Node != "b" {
			t.Fatalf("%s view members = %s,%s", n.ID(), view[0].Node, view[1].Node)
		}
		for _, m := range view {
			if m.Round == 0 || m.WallMillis == 0 {
				t.Fatalf("%s view entry unstamped: %+v", n.ID(), m)
			}
		}
	}
	// The wire moved bytes, and once a's digest refreshes, b's view of a
	// says so.
	if !waitUntil(5*time.Second, func() bool {
		view := clusterView(b)
		return len(view) == 2 && view[0].BytesSent > 0 && view[0].MessagesSent > 0
	}) {
		t.Fatalf("a's digest never reported wire bytes: %+v", clusterView(b))
	}

	// Causal path: publish and first-send on a; receive and deliver on
	// b, attributed to a at hop 1.
	type traceRec struct {
		Event string `json:"event"`
		Stage string `json:"stage"`
		Node  string `json:"node"`
		From  string `json:"from"`
		Hop   int    `json:"hop"`
	}
	traceStages := func(n *Node) map[string]traceRec {
		var recs []traceRec
		body := debugGet(t, "http://"+n.DebugAddr()+"/debug/gossip/traces")
		if err := json.Unmarshal([]byte(body), &recs); err != nil {
			t.Fatalf("traces endpoint not JSON: %v\n%s", err, body)
		}
		out := make(map[string]traceRec)
		for _, r := range recs {
			if r.Event == "a/0" {
				out[r.Stage] = r
			}
		}
		return out
	}
	aStages := traceStages(a)
	for _, want := range []string{"publish", "first-send"} {
		if r, ok := aStages[want]; !ok || r.Node != "a" {
			t.Fatalf("a's trace missing %q: %v", want, aStages)
		}
	}
	var bStages map[string]traceRec
	if !waitUntil(5*time.Second, func() bool {
		bStages = traceStages(b)
		_, okR := bStages["receive"]
		_, okD := bStages["deliver"]
		return okR && okD
	}) {
		t.Fatalf("b's trace incomplete: %v", bStages)
	}
	recv := bStages["receive"]
	if recv.Node != "b" || recv.From != "a" || recv.Hop != 1 {
		t.Fatalf("receive record = %+v, want node b from a hop 1", recv)
	}
	if del := bStages["deliver"]; del.Hop != 1 {
		t.Fatalf("deliver record = %+v, want hop 1", del)
	}

	// Per-peer link families on the receiver's /metrics, including the
	// detector-harvested RTT histogram.
	if !waitUntil(5*time.Second, func() bool {
		metrics := debugGet(t, "http://"+b.DebugAddr()+"/metrics")
		return strings.Contains(metrics, `gossip_peer_messages_received_total{peer="a"}`) &&
			!strings.Contains(metrics, `gossip_peer_messages_received_total{peer="a"} 0`) &&
			strings.Contains(metrics, `gossip_peer_rtt_micros_count{peer="a"}`) &&
			!strings.Contains(metrics, `gossip_peer_rtt_micros_count{peer="a"} 0`)
	}) {
		metrics := debugGet(t, "http://"+b.DebugAddr()+"/metrics")
		t.Fatalf("b's /metrics lacks live per-peer families for a:\n%s", metrics)
	}
}

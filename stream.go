package adaptivegossip

import (
	"context"
	"sync"
	"sync/atomic"
)

// DefaultEventStreamBuffer is the channel capacity of each Events
// subscription. A subscriber that falls further behind than this loses
// deliveries (counted in Stats.StreamDropped) rather than stalling the
// gossip goroutines.
const DefaultEventStreamBuffer = 1024

// streamHub fans deliveries out to Events subscribers. publish runs on
// gossip goroutines, so sends never block: a full subscriber drops the
// delivery and counts it.
type streamHub struct {
	mu      sync.Mutex
	subs    map[*streamSub]struct{}
	closed  bool
	done    chan struct{} // closed with the hub; releases ctx watchers
	nsubs   atomic.Int32
	dropped atomic.Uint64
}

type streamSub struct {
	ch   chan Delivery
	once sync.Once
}

func newStreamHub() *streamHub {
	return &streamHub{
		subs: make(map[*streamSub]struct{}),
		done: make(chan struct{}),
	}
}

// publish offers d to every live subscriber without blocking. With no
// subscribers it is a single atomic load, so the always-installed
// deliver closure costs the gossip hot path nothing.
func (h *streamHub) publish(d Delivery) {
	if h.nsubs.Load() == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		select {
		case sub.ch <- d:
		default:
			h.dropped.Add(1)
		}
	}
}

// subscribe registers a stream that lives until ctx is cancelled or the
// hub closes; either way the returned channel is closed and the ctx
// watcher goroutine is released.
func (h *streamHub) subscribe(ctx context.Context) <-chan Delivery {
	sub := &streamSub{ch: make(chan Delivery, DefaultEventStreamBuffer)}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(sub.ch)
		return sub.ch
	}
	h.subs[sub] = struct{}{}
	h.nsubs.Add(1)
	h.mu.Unlock()

	stop := ctx.Done()
	if stop != nil {
		go func() {
			select {
			case <-stop:
				h.unsubscribe(sub)
			case <-h.done:
			}
		}()
	}
	return sub.ch
}

func (h *streamHub) unsubscribe(sub *streamSub) {
	h.mu.Lock()
	_, live := h.subs[sub]
	delete(h.subs, sub)
	if live {
		h.nsubs.Add(-1)
	}
	h.mu.Unlock()
	if live {
		sub.once.Do(func() { close(sub.ch) })
	}
}

// close ends every subscription. Idempotent.
func (h *streamHub) close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := make([]*streamSub, 0, len(h.subs))
	for sub := range h.subs {
		subs = append(subs, sub)
	}
	h.subs = make(map[*streamSub]struct{})
	h.nsubs.Store(0)
	h.mu.Unlock()
	close(h.done)
	for _, sub := range subs {
		sub.once.Do(func() { close(sub.ch) })
	}
}

func (h *streamHub) droppedCount() uint64 { return h.dropped.Load() }

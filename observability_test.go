package adaptivegossip

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubWireEndpoint is a do-nothing Endpoint for the stub fabric.
type stubWireEndpoint struct{ id NodeID }

func (e *stubWireEndpoint) LocalID() NodeID             { return e.id }
func (e *stubWireEndpoint) Send(NodeID, *Message) error { return nil }
func (e *stubWireEndpoint) SetHandler(MessageHandler)   {}
func (e *stubWireEndpoint) Close() error                { return nil }

// stubWireTransport is a Transport + WireStatser with fixed counters:
// the aggregation identity oracle. Whatever facade wraps it must
// surface exactly these numbers in Stats.
type stubWireTransport struct{ wire WireStats }

func (t *stubWireTransport) Endpoint(id NodeID) (Endpoint, error) {
	return &stubWireEndpoint{id: id}, nil
}
func (t *stubWireTransport) Close() error         { return nil }
func (t *stubWireTransport) WireStats() WireStats { return t.wire }

// TestWireStatsIdenticalAcrossFacades proves the satellite claim: all
// three facades fold the fabric's wire counters (sent/received
// messages and bytes, read errors, datagram splits, queue drops) into
// the unified Stats snapshot through the same WireStatser seam, so
// they report identically for an identical fabric.
func TestWireStatsIdenticalAcrossFacades(t *testing.T) {
	want := WireStats{
		Sent: 101, SentBytes: 20200, Received: 99, RecvBytes: 19800,
		ReadErrors: 3, SplitChunks: 7, RecvQueueDrops: 5,
	}
	got := make(map[string]Stats)

	node, err := NewNode("wire-a", fastConfig(), WithTransport(&stubWireTransport{wire: want}))
	if err != nil {
		t.Fatal(err)
	}
	got["node"] = node.Stats()
	node.Close()

	cluster, err := NewCluster(3, fastConfig(), WithTransport(&stubWireTransport{wire: want}))
	if err != nil {
		t.Fatal(err)
	}
	got["cluster"] = cluster.Stats()
	cluster.Close()

	ps, err := NewPubSub(3, 60, fastConfig(), WithTransport(&stubWireTransport{wire: want}))
	if err != nil {
		t.Fatal(err)
	}
	got["pubsub"] = ps.Stats()
	ps.Close()

	for facade, st := range got {
		if st.Wire != want {
			t.Errorf("%s facade Wire = %+v, want %+v", facade, st.Wire, want)
		}
		if st.RecvQueueDrops != want.RecvQueueDrops {
			t.Errorf("%s facade RecvQueueDrops = %d, want %d", facade, st.RecvQueueDrops, want.RecvQueueDrops)
		}
	}
}

// TestStatsConcurrentWithTraffic is the -race regression for the
// stats-snapshot path: Stats() hammered from several goroutines while
// the group ticks, publishes and delivers. Run with -race (the CI race
// job does) to surface torn reads in the aggregation.
func TestStatsConcurrentWithTraffic(t *testing.T) {
	cfg := fastConfig()
	cfg.Observability.TraceSampleRate = 1 // exercise the tracer under race too
	cluster, err := NewCluster(4, cfg, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cluster.Start(ctx); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = cluster.Stats()
				}
			}
		}()
	}
	deadline := time.After(300 * time.Millisecond)
	payload := []byte("race")
	for i := 0; ; i++ {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			st := cluster.Stats()
			if st.Nodes != 4 {
				t.Fatalf("final snapshot Nodes = %d, want 4", st.Nodes)
			}
			return
		default:
			cluster.Publish(i%4, payload)
			time.Sleep(time.Millisecond)
		}
	}
}

func debugGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestClusterDebugEndpoint drives a traced cluster and scrapes the
// debug listener: /debug/vars must report live protocol counters and
// allowance gauges, /metrics must render Prometheus histograms with
// buckets, and /debug/gossip/traces must reconstruct a publish →
// deliver rumor path with hop counts.
func TestClusterDebugEndpoint(t *testing.T) {
	cfg := fastConfig()
	cfg.Observability = ObservabilityConfig{
		DebugAddr:       "127.0.0.1:0",
		TraceSampleRate: 1,
	}
	cluster, err := NewCluster(3, cfg, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	addr := cluster.DebugAddr()
	if addr == "" {
		t.Fatal("DebugAddr is empty with a configured debug listener")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cluster.Start(ctx); err != nil {
		t.Fatal(err)
	}

	events := cluster.Events(ctx)
	if !cluster.Publish(0, []byte("observe-me")) {
		t.Fatal("publish rejected")
	}
	// Wait until a non-origin node delivered the event, so the trace
	// has receive/deliver records and Stats has remote deliveries.
	deadline := time.After(5 * time.Second)
	for delivered := false; !delivered; {
		select {
		case d := <-events:
			delivered = d.Node != cluster.Nodes()[0]
		case <-deadline:
			t.Fatal("no remote delivery within 5s")
		}
	}

	vars := debugGet(t, "http://"+addr+"/debug/vars")
	var out map[string]any
	if err := json.Unmarshal([]byte(vars), &out); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if v, ok := out["gossip_delivered_total"].(float64); !ok || v < 2 {
		t.Fatalf("gossip_delivered_total = %v, want >= 2", out["gossip_delivered_total"])
	}
	if v, ok := out["gossip_allowed_rate_sum"].(float64); !ok || v <= 0 {
		t.Fatalf("gossip_allowed_rate_sum = %v, want > 0", out["gossip_allowed_rate_sum"])
	}
	if _, ok := out["gossip_stats"].(map[string]any); !ok {
		t.Fatalf("gossip_stats block missing: %v", out["gossip_stats"])
	}

	metrics := debugGet(t, "http://"+addr+"/metrics")
	for _, want := range []string{
		"# TYPE gossip_delivered_total counter",
		"# TYPE gossip_allowed_rate_min gauge",
		"# TYPE gossip_deliver_hops histogram",
		`gossip_deliver_hops_bucket{le="+Inf"}`,
		"gossip_deliver_hops_count",
		"gossip_round_events_count",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	traces := debugGet(t, "http://"+addr+"/debug/gossip/traces")
	var recs []map[string]any
	if err := json.Unmarshal([]byte(traces), &recs); err != nil {
		t.Fatalf("/debug/gossip/traces is not JSON: %v", err)
	}
	stages := make(map[string]bool)
	for _, r := range recs {
		if r["event"] == fmt.Sprintf("%s/0", cluster.Nodes()[0]) {
			stages[r["stage"].(string)] = true
		}
	}
	for _, want := range []string{"publish", "first-send", "receive", "deliver"} {
		if !stages[want] {
			t.Fatalf("rumor lifecycle missing stage %q; saw %v in:\n%s", want, stages, traces)
		}
	}
}

// TestNodeDebugAddrOff asserts the zero ObservabilityConfig binds
// nothing.
func TestNodeDebugAddrOff(t *testing.T) {
	node, err := NewNode("dark", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if addr := node.DebugAddr(); addr != "" {
		t.Fatalf("debug listener bound without configuration: %q", addr)
	}
}

// TestObservabilityConfigValidate covers the sub-config's bounds.
func TestObservabilityConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Observability.TraceSampleRate = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range trace sample rate accepted")
	}
	bad = DefaultConfig()
	bad.Observability.TraceBufferSize = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative trace buffer size accepted")
	}
	good := DefaultConfig()
	good.Observability = ObservabilityConfig{TraceSampleRate: 0.25, TraceBufferSize: 128}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid observability config rejected: %v", err)
	}
}

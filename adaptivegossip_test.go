package adaptivegossip

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Period = 20 * time.Millisecond
	cfg.BufferCapacity = 40
	cfg.MaxAge = 8
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Fanout = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero fanout accepted")
	}
	bad = DefaultConfig()
	bad.Adaptation.Window = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("bad adaptation accepted")
	}
	// Adaptation errors are ignored for non-adaptive nodes.
	bad.Adaptive = false
	if err := bad.Validate(); err != nil {
		t.Fatalf("non-adaptive config rejected: %v", err)
	}
}

func TestClusterDisseminates(t *testing.T) {
	var delivered atomic.Int64
	var mu sync.Mutex
	perNode := map[NodeID]int{}
	cluster, err := NewCluster(10, fastConfig(),
		WithSeed(42),
		WithDeliver(func(node NodeID, ev Event) {
			delivered.Add(1)
			mu.Lock()
			perNode[node]++
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	if !cluster.Publish(3, []byte("hello")) {
		t.Fatal("publish rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if delivered.Load() >= 10 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := delivered.Load(); got != 10 {
		t.Fatalf("delivered to %d/10 nodes", got)
	}
	mu.Lock()
	defer mu.Unlock()
	for node, count := range perNode {
		if count != 1 {
			t.Fatalf("node %s delivered %d times", node, count)
		}
	}
}

// TestClusterRecoversUnderLoss exercises the public recovery knob end
// to end: a lossy in-memory cluster with a deliberately skinny push
// (fanout 1, short event lifetime) still reaches full delivery because
// the anti-entropy subsystem pulls the missing events back.
func TestClusterRecoversUnderLoss(t *testing.T) {
	cfg := fastConfig()
	cfg.Fanout = 1
	cfg.MaxAge = 3
	cfg.RecoveryEnabled = true

	const nodes, events = 8, 10
	var delivered atomic.Int64
	cluster, err := NewCluster(nodes, cfg,
		WithSeed(11),
		WithLoss(0.3),
		WithDeliver(func(node NodeID, ev Event) { delivered.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	sent := 0
	for i := 0; i < events; i++ {
		if cluster.Publish(i%2, []byte{byte(i)}) {
			sent++
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := int64(sent * nodes)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if delivered.Load() >= want {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := delivered.Load(); got != want {
		t.Fatalf("delivered %d of %d under loss with recovery enabled", got, want)
	}
	var recovered uint64
	for i := 0; i < nodes; i++ {
		snap, err := cluster.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		recovered += snap.Recovery.EventsRecovered
	}
	if recovered == 0 {
		t.Error("full delivery but no events recovered — loss regime too soft to exercise recovery")
	}
	t.Logf("recovered %d events across %d nodes", recovered, nodes)
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(1, fastConfig()); err == nil {
		t.Fatal("1-node cluster accepted")
	}
	bad := fastConfig()
	bad.Period = 0
	if _, err := NewCluster(4, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewCluster(4, fastConfig(), WithLoss(2)); err == nil {
		t.Fatal("invalid loss accepted")
	}
	if _, err := NewCluster(4, fastConfig(), WithLatency(5, 1)); err == nil {
		t.Fatal("invalid latency accepted")
	}
}

func TestClusterSnapshotAndResize(t *testing.T) {
	cluster, err := NewCluster(4, fastConfig(), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	snap, err := cluster.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.BufferCap != 40 {
		t.Fatalf("snapshot %+v", snap)
	}
	if err := cluster.SetBufferCapacity(0, 12); err != nil {
		t.Fatal(err)
	}
	snap, _ = cluster.Snapshot(0)
	if snap.BufferCap != 12 {
		t.Fatalf("resize not applied: %+v", snap)
	}
	if _, err := cluster.Snapshot(99); err == nil {
		t.Fatal("out-of-range snapshot accepted")
	}
	if err := cluster.SetBufferCapacity(-1, 5); err == nil {
		t.Fatal("out-of-range resize accepted")
	}
	if cluster.Publish(99, nil) {
		t.Fatal("out-of-range publish succeeded")
	}
	if got := cluster.Len(); got != 4 {
		t.Fatalf("Len = %d", got)
	}
	if got := cluster.Nodes(); len(got) != 4 || got[0] != "node-00" {
		t.Fatalf("Nodes = %v", got)
	}
}

func TestClusterStatsAggregate(t *testing.T) {
	cluster, err := NewCluster(6, fastConfig(), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()
	for i := 0; i < 3; i++ {
		cluster.Publish(i, []byte{byte(i)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := cluster.Stats()
		if st.Delivered >= 18 && st.Published >= 3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("stats never converged: %+v", cluster.Stats())
}

func TestClusterStopIdempotent(t *testing.T) {
	cluster, err := NewCluster(3, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	cluster.Start()
	cluster.Stop()
	cluster.Stop()
}

func TestUDPNodePairDisseminates(t *testing.T) {
	cfg := fastConfig()
	var got atomic.Int64
	a, err := NewUDPNode(NodeOptions{
		ID: "alpha", Bind: "127.0.0.1:0", Config: cfg, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	b, err := NewUDPNode(NodeOptions{
		ID: "beta", Bind: "127.0.0.1:0", Config: cfg, Seed: 2,
		Deliver: func(ev Event) { got.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	// Wire the address book both ways.
	if err := a.AddPeer("beta", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("alpha", a.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if !a.Publish([]byte("over the wire")) {
		t.Fatal("publish rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got.Load() >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.Load() < 1 {
		t.Fatalf("event never crossed UDP; a=%+v b=%+v", a.TransportStats(), b.TransportStats())
	}
	if a.ID() != "alpha" {
		t.Fatalf("ID = %s", a.ID())
	}
	if a.Snapshot().BufferCap != cfg.BufferCapacity {
		t.Fatal("snapshot wrong")
	}
}

func TestUDPNodeValidation(t *testing.T) {
	if _, err := NewUDPNode(NodeOptions{Bind: "127.0.0.1:0"}); err == nil {
		t.Fatal("missing id accepted")
	}
	if _, err := NewUDPNode(NodeOptions{ID: "x"}); err == nil {
		t.Fatal("missing bind accepted")
	}
	if _, err := NewUDPNode(NodeOptions{ID: "x", Bind: "nope:xyz"}); err == nil {
		t.Fatal("bad bind accepted")
	}
	bad := DefaultConfig()
	bad.MaxAge = -1
	if _, err := NewUDPNode(NodeOptions{ID: "x", Bind: "127.0.0.1:0", Config: bad}); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewUDPNode(NodeOptions{ID: "x", Bind: "127.0.0.1:0",
		Peers: map[string]string{"y": "not-valid:addr:xx"}}); err == nil {
		t.Fatal("bad peer addr accepted")
	}
}

func TestSimulateFacade(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.N = 16
	cfg.Fanout = 3
	cfg.Period = time.Second
	cfg.Buffer = 25
	cfg.OfferedRate = 5
	cfg.Warmup = 20 * time.Second
	cfg.Duration = 80 * time.Second
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MeanReceiversPct < 95 {
		t.Fatalf("simulation unhealthy: %+v", res.Summary)
	}
	if _, err := Simulate(SimConfig{}); err == nil {
		t.Fatal("invalid sim config accepted")
	}
}

func TestSimulateRealtimeFacade(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.N = 8
	cfg.Fanout = 3
	cfg.Period = 25 * time.Millisecond
	cfg.Buffer = 25
	cfg.MaxAge = 8
	cfg.OfferedRate = 40
	cfg.Warmup = 200 * time.Millisecond
	cfg.Duration = 600 * time.Millisecond
	res, err := SimulateRealtime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Messages == 0 {
		t.Fatal("no messages measured")
	}
}

package adaptivegossip

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Period = 20 * time.Millisecond
	cfg.BufferCapacity = 40
	cfg.MaxAge = 8
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Fanout = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero fanout accepted")
	}
	bad = DefaultConfig()
	bad.Adaptation.Window = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("bad adaptation accepted")
	}
	// Adaptation errors are ignored for non-adaptive nodes.
	bad.Adaptive = false
	if err := bad.Validate(); err != nil {
		t.Fatalf("non-adaptive config rejected: %v", err)
	}
}

func TestClusterDisseminates(t *testing.T) {
	var delivered atomic.Int64
	var mu sync.Mutex
	perNode := map[NodeID]int{}
	cluster, err := NewCluster(10, fastConfig(),
		WithSeed(42),
		WithDeliver(func(node NodeID, ev Event) {
			delivered.Add(1)
			mu.Lock()
			perNode[node]++
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	if !cluster.Publish(3, []byte("hello")) {
		t.Fatal("publish rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if delivered.Load() >= 10 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := delivered.Load(); got != 10 {
		t.Fatalf("delivered to %d/10 nodes", got)
	}
	mu.Lock()
	defer mu.Unlock()
	for node, count := range perNode {
		if count != 1 {
			t.Fatalf("node %s delivered %d times", node, count)
		}
	}
}

// TestClusterRecoversUnderLoss exercises the public recovery knob end
// to end: a lossy in-memory cluster with a deliberately skinny push
// (fanout 1, short event lifetime) still reaches full delivery because
// the anti-entropy subsystem pulls the missing events back.
func TestClusterRecoversUnderLoss(t *testing.T) {
	cfg := fastConfig()
	cfg.Fanout = 1
	cfg.MaxAge = 3
	cfg.RecoveryEnabled = true

	const nodes, events = 8, 10
	var delivered atomic.Int64
	cluster, err := NewCluster(nodes, cfg,
		WithSeed(11),
		WithLoss(0.3),
		WithDeliver(func(node NodeID, ev Event) { delivered.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	sent := 0
	for i := 0; i < events; i++ {
		if cluster.Publish(i%2, []byte{byte(i)}) {
			sent++
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := int64(sent * nodes)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if delivered.Load() >= want {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := delivered.Load(); got != want {
		t.Fatalf("delivered %d of %d under loss with recovery enabled", got, want)
	}
	var recovered uint64
	for i := 0; i < nodes; i++ {
		snap, err := cluster.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		recovered += snap.Recovery.EventsRecovered
	}
	if recovered == 0 {
		t.Error("full delivery but no events recovered — loss regime too soft to exercise recovery")
	}
	t.Logf("recovered %d events across %d nodes", recovered, nodes)
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(1, fastConfig()); err == nil {
		t.Fatal("1-node cluster accepted")
	}
	bad := fastConfig()
	bad.Period = 0
	if _, err := NewCluster(4, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewCluster(4, fastConfig(), WithLoss(2)); err == nil {
		t.Fatal("invalid loss accepted")
	}
	if _, err := NewCluster(4, fastConfig(), WithLatency(5, 1)); err == nil {
		t.Fatal("invalid latency accepted")
	}
}

func TestClusterSnapshotAndResize(t *testing.T) {
	cluster, err := NewCluster(4, fastConfig(), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	snap, err := cluster.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.BufferCap != 40 {
		t.Fatalf("snapshot %+v", snap)
	}
	if err := cluster.SetBufferCapacity(0, 12); err != nil {
		t.Fatal(err)
	}
	snap, _ = cluster.Snapshot(0)
	if snap.BufferCap != 12 {
		t.Fatalf("resize not applied: %+v", snap)
	}
	if _, err := cluster.Snapshot(99); err == nil {
		t.Fatal("out-of-range snapshot accepted")
	}
	if err := cluster.SetBufferCapacity(-1, 5); err == nil {
		t.Fatal("out-of-range resize accepted")
	}
	if cluster.Publish(99, nil) {
		t.Fatal("out-of-range publish succeeded")
	}
	if got := cluster.Len(); got != 4 {
		t.Fatalf("Len = %d", got)
	}
	if got := cluster.Nodes(); len(got) != 4 || got[0] != "node-00" {
		t.Fatalf("Nodes = %v", got)
	}
}

func TestClusterStatsAggregate(t *testing.T) {
	cluster, err := NewCluster(6, fastConfig(), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()
	for i := 0; i < 3; i++ {
		cluster.Publish(i, []byte{byte(i)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := cluster.Stats()
		if st.Delivered >= 18 && st.Published >= 3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("stats never converged: %+v", cluster.Stats())
}

func TestClusterStopIdempotent(t *testing.T) {
	cluster, err := NewCluster(3, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	cluster.Start()
	cluster.Stop()
	cluster.Stop()
}

func TestUDPNodePairDisseminates(t *testing.T) {
	cfg := fastConfig()
	var got atomic.Int64
	a, err := NewUDPNode(NodeOptions{
		ID: "alpha", Bind: "127.0.0.1:0", Config: cfg, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	b, err := NewUDPNode(NodeOptions{
		ID: "beta", Bind: "127.0.0.1:0", Config: cfg, Seed: 2,
		Deliver: func(ev Event) { got.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	// Wire the address book both ways.
	if err := a.AddPeer("beta", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("alpha", a.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if !a.Publish([]byte("over the wire")) {
		t.Fatal("publish rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got.Load() >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.Load() < 1 {
		t.Fatalf("event never crossed UDP; a=%+v b=%+v", a.TransportStats(), b.TransportStats())
	}
	if a.ID() != "alpha" {
		t.Fatalf("ID = %s", a.ID())
	}
	if a.Snapshot().BufferCap != cfg.BufferCapacity {
		t.Fatal("snapshot wrong")
	}
}

func TestUDPNodeValidation(t *testing.T) {
	if _, err := NewUDPNode(NodeOptions{Bind: "127.0.0.1:0"}); err == nil {
		t.Fatal("missing id accepted")
	}
	if _, err := NewUDPNode(NodeOptions{ID: "x"}); err == nil {
		t.Fatal("missing bind accepted")
	}
	if _, err := NewUDPNode(NodeOptions{ID: "x", Bind: "nope:xyz"}); err == nil {
		t.Fatal("bad bind accepted")
	}
	bad := DefaultConfig()
	bad.MaxAge = -1
	if _, err := NewUDPNode(NodeOptions{ID: "x", Bind: "127.0.0.1:0", Config: bad}); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewUDPNode(NodeOptions{ID: "x", Bind: "127.0.0.1:0",
		Peers: map[string]string{"y": "not-valid:addr:xx"}}); err == nil {
		t.Fatal("bad peer addr accepted")
	}
}

func TestSimulateFacade(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.N = 16
	cfg.Fanout = 3
	cfg.Period = time.Second
	cfg.Buffer = 25
	cfg.OfferedRate = 5
	cfg.Warmup = 20 * time.Second
	cfg.Duration = 80 * time.Second
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MeanReceiversPct < 95 {
		t.Fatalf("simulation unhealthy: %+v", res.Summary)
	}
	if _, err := Simulate(SimConfig{}); err == nil {
		t.Fatal("invalid sim config accepted")
	}
}

func TestSimulateRealtimeFacade(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.N = 8
	cfg.Fanout = 3
	cfg.Period = 25 * time.Millisecond
	cfg.Buffer = 25
	cfg.MaxAge = 8
	cfg.OfferedRate = 40
	cfg.Warmup = 200 * time.Millisecond
	cfg.Duration = 600 * time.Millisecond
	res, err := SimulateRealtime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Messages == 0 {
		t.Fatal("no messages measured")
	}
}

// TestClusterFailureDetectionHealthy exercises the public detector
// knob end to end: in a healthy in-memory cluster the detector probes
// continuously but must never bury a live member, and dissemination
// keeps working with the probe traffic in the mix.
func TestClusterFailureDetectionHealthy(t *testing.T) {
	var delivered atomic.Int64
	cfg := fastConfig()
	cfg.FailureDetectionEnabled = true
	// Generous suspicion window: with 20ms rounds a node only has to
	// stall ~8 rounds to be falsely confirmed, which slowed-down CI
	// runs (-race, shared runners) can hit. 40 rounds of grace keeps
	// the "no false confirms in a healthy cluster" property meaningful
	// without making it a scheduler-latency test.
	cfg.FailureSuspicionTimeout = 40
	cluster, err := NewCluster(8, cfg,
		WithSeed(7),
		WithDeliver(func(node NodeID, ev Event) { delivered.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	// Let a good number of probe rounds elapse.
	time.Sleep(30 * cfg.Period)
	if !cluster.Publish(2, []byte("still here")) {
		t.Fatal("publish rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && delivered.Load() < 8 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := delivered.Load(); got != 8 {
		t.Fatalf("delivered to %d/8 nodes with detector on", got)
	}
	var probes, confirms uint64
	for i := 0; i < cluster.Len(); i++ {
		snap, err := cluster.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		probes += snap.Failure.ProbesSent
		confirms += snap.Failure.Confirms
	}
	if probes == 0 {
		t.Fatal("detector enabled but no probes sent")
	}
	if confirms != 0 {
		t.Fatalf("%d live members confirmed dead in a healthy cluster", confirms)
	}
}

// TestUDPNodeMembersEviction: the UDP facade evicts a stopped peer
// from the survivor's member list after detection and reports the
// transitions through OnMemberChange.
func TestUDPNodeMembersEviction(t *testing.T) {
	cfg := fastConfig()
	cfg.FailureDetectionEnabled = true
	// Enough suspicion grace that a scheduler stall on a loaded CI
	// runner cannot falsely bury a live peer, while still confirming
	// the genuinely-dead one quickly at 20ms rounds.
	cfg.FailureSuspicionTimeout = 8

	var transitions sync.Map
	mk := func(id string, onChange func(NodeID, MemberStatus)) *Node {
		n, err := NewUDPNode(NodeOptions{
			ID: id, Bind: "127.0.0.1:0", Config: cfg, Seed: int64(len(id)) + 9,
			OnMemberChange: onChange,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := mk("alpha", func(id NodeID, st MemberStatus) {
		transitions.Store(string(id)+":"+st.String(), true)
	})
	b := mk("beta", nil)
	c := mk("gamma", nil)
	defer a.Stop()
	defer c.Stop()
	for _, pair := range [][2]*Node{{a, b}, {b, a}, {a, c}, {c, a}, {b, c}, {c, b}} {
		if err := pair[0].AddPeer(string(pair[1].ID()), pair[1].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []*Node{a, b, c} {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.Members()) != 3 {
		t.Fatalf("alpha tracks %d members, want 3", len(a.Members()))
	}

	// Kill beta; alpha should confirm and evict it while keeping gamma
	// (a transient false eviction of gamma self-heals via revival, so
	// wait for the converged state rather than a member count).
	b.Stop()
	settled := func() bool {
		hasBeta, hasGamma := false, false
		for _, id := range a.Members() {
			switch id {
			case "beta":
				hasBeta = true
			case "gamma":
				hasGamma = true
			}
		}
		return !hasBeta && hasGamma
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !settled() {
		time.Sleep(20 * time.Millisecond)
	}
	if !settled() {
		t.Fatalf("alpha tracks %v after beta stopped; want gamma kept, beta evicted", a.Members())
	}
	if _, ok := transitions.Load("beta:confirmed"); !ok {
		t.Fatal("OnMemberChange never reported beta confirmed")
	}
}

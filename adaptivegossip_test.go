package adaptivegossip

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Period = 20 * time.Millisecond
	cfg.BufferCapacity = 40
	cfg.MaxAge = 8
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Fanout = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative fanout accepted")
	}
	bad = DefaultConfig()
	bad.Adaptation.Window = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("bad adaptation accepted")
	}
	// Adaptation errors are ignored for non-adaptive nodes.
	bad.Adaptive = false
	if err := bad.Validate(); err != nil {
		t.Fatalf("non-adaptive config rejected: %v", err)
	}
	bad = DefaultConfig()
	bad.Recovery.Enabled = true
	bad.Recovery.DigestLength = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("bad recovery sub-config accepted")
	}
	bad = DefaultConfig()
	bad.Failure.Enabled = true
	bad.Failure.IndirectProbes = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("bad failure sub-config accepted")
	}
}

// TestConfigZeroValueNormalized covers the withDefaults migration away
// from the old `cfg == (Config{})` comparison: the zero Config and
// partially-filled configs normalize per field instead of being
// rejected (or silently replaced wholesale).
func TestConfigZeroValueNormalized(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	partial := Config{Period: 20 * time.Millisecond} // everything else zero
	if err := partial.Validate(); err != nil {
		t.Fatalf("partially-filled config invalid: %v", err)
	}
	norm := partial.withDefaults()
	if norm.Period != 20*time.Millisecond {
		t.Fatalf("explicit period overwritten: %v", norm.Period)
	}
	if norm.Fanout == 0 || norm.BufferCapacity == 0 || norm.MaxAge == 0 {
		t.Fatalf("zero fields not normalized: %+v", norm)
	}
	node, err := NewNode("zero", Config{})
	if err != nil {
		t.Fatalf("zero config rejected by NewNode: %v", err)
	}
	defer node.Close()
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cap := node.Snapshot().BufferCap; cap == 0 {
		t.Fatal("zero config produced zero-capacity buffer")
	}
}

func TestClusterDisseminates(t *testing.T) {
	var delivered atomic.Int64
	var mu sync.Mutex
	perNode := map[NodeID]int{}
	cluster, err := NewCluster(10, fastConfig(),
		WithSeed(42),
		WithDeliver(func(d Delivery) {
			delivered.Add(1)
			mu.Lock()
			perNode[d.Node]++
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	if !cluster.Publish(3, []byte("hello")) {
		t.Fatal("publish rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if delivered.Load() >= 10 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := delivered.Load(); got != 10 {
		t.Fatalf("delivered to %d/10 nodes", got)
	}
	mu.Lock()
	defer mu.Unlock()
	for node, count := range perNode {
		if count != 1 {
			t.Fatalf("node %s delivered %d times", node, count)
		}
	}
}

// disseminationScenario runs the same workload against a cluster over
// any transport fabric: every node publishes once, every event must
// reach every node exactly once.
func disseminationScenario(t *testing.T, fabric Transport) {
	t.Helper()
	const nodes = 6
	var mu sync.Mutex
	perEvent := map[EventID]int{}
	cluster, err := NewCluster(nodes, fastConfig(),
		WithSeed(17),
		WithTransport(fabric),
		WithDeliver(func(d Delivery) {
			mu.Lock()
			perEvent[d.Event.ID]++
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	sent := 0
	for i := 0; i < nodes; i++ {
		if cluster.Publish(i, []byte(fmt.Sprintf("scenario-%d", i))) {
			sent++
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sent == 0 {
		t.Fatal("no publishes admitted")
	}
	full := func() int {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, count := range perEvent {
			if count == nodes {
				n++
			}
		}
		return n
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && full() < sent {
		time.Sleep(10 * time.Millisecond)
	}
	if got := full(); got != sent {
		t.Fatalf("%d/%d events reached all %d nodes", got, sent, nodes)
	}
	mu.Lock()
	defer mu.Unlock()
	for id, count := range perEvent {
		if count > nodes {
			t.Fatalf("event %v delivered %d times across %d nodes", id, count, nodes)
		}
	}
}

// TestClusterOverMemoryAndUDPTransports is the tentpole acceptance
// check: the identical cluster scenario runs over both built-in public
// transports, exercising the pluggable Transport seam end to end.
func TestClusterOverMemoryAndUDPTransports(t *testing.T) {
	t.Run("memory", func(t *testing.T) {
		fabric, err := NewMemTransport(WithTransportSeed(17))
		if err != nil {
			t.Fatal(err)
		}
		disseminationScenario(t, fabric)
	})
	t.Run("udp", func(t *testing.T) {
		fabric, err := NewUDPTransport(WithTransportSeed(17))
		if err != nil {
			t.Fatal(err)
		}
		disseminationScenario(t, fabric)
	})
}

// TestEventsStreamMatchesCallback asserts the acceptance criterion
// that the Events stream delivers exactly what the callback path
// delivers — same deliveries, per (node, event) multiplicity.
func TestEventsStreamMatchesCallback(t *testing.T) {
	type key struct {
		node NodeID
		id   EventID
	}
	var mu sync.Mutex
	viaCallback := map[key]int{}
	cluster, err := NewCluster(5, fastConfig(),
		WithSeed(23),
		WithDeliver(func(d Delivery) {
			mu.Lock()
			viaCallback[key{d.Node, d.Event.ID}]++
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	events := cluster.Events(ctx)
	viaStream := map[key]int{}
	streamed := make(chan struct{})
	go func() {
		defer close(streamed)
		for d := range events {
			viaStream[key{d.Node, d.Event.ID}]++
		}
	}()
	if err := cluster.Start(ctx); err != nil {
		t.Fatal(err)
	}

	const toSend = 8
	sent := 0
	for i := 0; i < toSend; i++ {
		if cluster.Publish(i%5, []byte{byte(i)}) {
			sent++
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := sent * 5
	count := func() int {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, c := range viaCallback {
			n += c
		}
		return n
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && count() < want {
		time.Sleep(10 * time.Millisecond)
	}
	if got := count(); got != want {
		t.Fatalf("callback saw %d/%d deliveries", got, want)
	}
	// Close ends the stream; the consumer drains whatever the callback
	// saw.
	cluster.Close()
	<-streamed

	if st := cluster.Stats(); st.StreamDropped != 0 {
		t.Fatalf("stream dropped %d deliveries with a live consumer", st.StreamDropped)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(viaStream) != len(viaCallback) {
		t.Fatalf("stream saw %d distinct deliveries, callback %d", len(viaStream), len(viaCallback))
	}
	for k, c := range viaCallback {
		if viaStream[k] != c {
			t.Fatalf("delivery %v: callback %d, stream %d", k, c, viaStream[k])
		}
	}
}

// TestDeliverCallbackSerialized pins the documented DeliverFunc
// contract: callbacks for one member run on that member's gossip
// goroutine and are never concurrent with each other.
func TestDeliverCallbackSerialized(t *testing.T) {
	const nodes = 6
	inFlight := make(map[NodeID]*atomic.Int32, nodes)
	for i := 0; i < nodes; i++ {
		inFlight[NodeID(fmt.Sprintf("node-%02d", i))] = new(atomic.Int32)
	}
	var overlaps, total atomic.Int64
	cluster, err := NewCluster(nodes, fastConfig(),
		WithSeed(31),
		WithDeliver(func(d Delivery) {
			ctr := inFlight[d.Node]
			if ctr.Add(1) != 1 {
				overlaps.Add(1)
			}
			time.Sleep(100 * time.Microsecond) // widen any race window
			ctr.Add(-1)
			total.Add(1)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	for i := 0; i < 12; i++ {
		cluster.Publish(i%nodes, []byte{byte(i)})
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && total.Load() < 40 {
		time.Sleep(10 * time.Millisecond)
	}
	if total.Load() == 0 {
		t.Fatal("no deliveries observed")
	}
	if n := overlaps.Load(); n != 0 {
		t.Fatalf("%d concurrent callback invocations for a single member", n)
	}
}

func TestClusterRecoversUnderLoss(t *testing.T) {
	cfg := fastConfig()
	cfg.Fanout = 1
	cfg.MaxAge = 3
	cfg.Recovery.Enabled = true

	// Loss injection now lives on the transport, not the cluster.
	fabric, err := NewMemTransport(WithTransportSeed(11), WithLoss(0.3))
	if err != nil {
		t.Fatal(err)
	}
	const nodes, events = 8, 10
	var delivered atomic.Int64
	cluster, err := NewCluster(nodes, cfg,
		WithSeed(11),
		WithTransport(fabric),
		WithDeliver(func(d Delivery) { delivered.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	sent := 0
	for i := 0; i < events; i++ {
		if cluster.Publish(i%2, []byte{byte(i)}) {
			sent++
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := int64(sent * nodes)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if delivered.Load() >= want {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := delivered.Load(); got != want {
		t.Fatalf("delivered %d of %d under loss with recovery enabled", got, want)
	}
	st := cluster.Stats()
	if st.EventsRecovered == 0 {
		t.Error("full delivery but no events recovered — loss regime too soft to exercise recovery")
	}
	t.Logf("recovered %d events across %d nodes", st.EventsRecovered, nodes)
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(1, fastConfig()); err == nil {
		t.Fatal("1-node cluster accepted")
	}
	bad := fastConfig()
	bad.Period = -1
	if _, err := NewCluster(4, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewCluster(4, fastConfig(), WithTransport(nil)); err == nil {
		t.Fatal("nil transport accepted")
	}
	if _, err := NewCluster(4, fastConfig(), WithPeers(map[string]string{"x": "y"})); err == nil {
		t.Fatal("WithPeers accepted by NewCluster")
	}
	if _, err := NewCluster(4, fastConfig(), WithNamePrefix("")); err == nil {
		t.Fatal("empty name prefix accepted")
	}

	// A transport handed over via WithTransport is owned by the group
	// even when construction fails: the fabric must be closed, not
	// leaked back to the caller.
	tr, err := NewMemTransport()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCluster(1, fastConfig(), WithTransport(tr)); err == nil {
		t.Fatal("1-node cluster accepted")
	}
	if _, err := tr.Endpoint("probe"); err == nil {
		t.Fatal("fabric still open after failed construction")
	}
	tr, err = NewMemTransport()
	if err != nil {
		t.Fatal(err)
	}
	// Option errors are no exception, regardless of option order.
	if _, err := NewCluster(4, fastConfig(), WithNamePrefix(""), WithTransport(tr)); err == nil {
		t.Fatal("empty name prefix accepted")
	}
	if _, err := tr.Endpoint("probe"); err == nil {
		t.Fatal("fabric still open after failed option application")
	}
}

func TestTransportOptionValidation(t *testing.T) {
	if _, err := NewMemTransport(WithLoss(2)); err == nil {
		t.Fatal("invalid loss accepted")
	}
	if _, err := NewMemTransport(WithLatency(5, 1)); err == nil {
		t.Fatal("invalid latency accepted")
	}
	if _, err := NewMemTransport(WithBind("127.0.0.1:0")); err == nil {
		t.Fatal("WithBind accepted by memory transport")
	}
	if _, err := NewMemTransport(WithMaxDatagram(4096)); err == nil {
		t.Fatal("WithMaxDatagram accepted by memory transport")
	}
	if _, err := NewUDPTransport(WithLatency(0, time.Millisecond)); err == nil {
		t.Fatal("WithLatency accepted by UDP transport")
	}
	if _, err := NewUDPTransport(WithMaxDatagram(16)); err == nil {
		t.Fatal("tiny max datagram accepted")
	}

	// WithBind pins a single listen address: a second endpoint must be
	// rejected, not silently double-bound.
	tr, err := NewUDPTransport(WithBind("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Endpoint("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Endpoint("b"); err == nil {
		t.Fatal("second endpoint accepted on a WithBind fabric")
	}
	if _, err := tr.Endpoint("a"); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
	if got := tr.Addr("a"); got == "" {
		t.Fatal("no address for bound endpoint")
	}
	if got := tr.Addr("ghost"); got != "" {
		t.Fatalf("address %q for unknown endpoint", got)
	}
}

func TestClusterSnapshotAndResize(t *testing.T) {
	cluster, err := NewCluster(4, fastConfig(), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	snap, err := cluster.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.BufferCap != 40 {
		t.Fatalf("snapshot %+v", snap)
	}
	if err := cluster.SetBufferCapacity(0, 12); err != nil {
		t.Fatal(err)
	}
	snap, _ = cluster.Snapshot(0)
	if snap.BufferCap != 12 {
		t.Fatalf("resize not applied: %+v", snap)
	}
	if _, err := cluster.Snapshot(99); err == nil {
		t.Fatal("out-of-range snapshot accepted")
	}
	if err := cluster.SetBufferCapacity(-1, 5); err == nil {
		t.Fatal("out-of-range resize accepted")
	}
	if cluster.Publish(99, nil) {
		t.Fatal("out-of-range publish succeeded")
	}
	if got := cluster.Len(); got != 4 {
		t.Fatalf("Len = %d", got)
	}
	if got := cluster.Nodes(); len(got) != 4 || got[0] != "node-00" {
		t.Fatalf("Nodes = %v", got)
	}
}

func TestClusterStatsAggregate(t *testing.T) {
	cluster, err := NewCluster(6, fastConfig(), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for i := 0; i < 3; i++ {
		cluster.Publish(i, []byte{byte(i)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := cluster.Stats()
		if st.Delivered >= 18 && st.Published >= 3 {
			if st.Nodes != 6 {
				t.Fatalf("Stats.Nodes = %d, want 6", st.Nodes)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("stats never converged: %+v", cluster.Stats())
}

func TestClusterCloseIdempotent(t *testing.T) {
	cluster, err := NewCluster(3, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := cluster.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(ctx); err != nil { // idempotent while open
		t.Fatal(err)
	}
	if err := cluster.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := cluster.Start(ctx); err == nil {
		t.Fatal("start after close accepted")
	}
}

// TestStartContextCancelClosesGroup: Start is context-aware — cancelling
// the context tears the group down and ends the Events streams.
func TestStartContextCancelClosesGroup(t *testing.T) {
	cluster, err := NewCluster(3, fastConfig(), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	events := cluster.Events(context.Background())
	if err := cluster.Start(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.NewTimer(10 * time.Second)
	defer deadline.Stop()
	for {
		select {
		case _, ok := <-events:
			if !ok {
				return // stream closed: the group shut down
			}
		case <-deadline.C:
			t.Fatal("events stream never closed after context cancel")
		}
	}
}

func TestUDPNodePairDisseminates(t *testing.T) {
	cfg := fastConfig()
	a, err := NewNode("alpha", cfg, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var got atomic.Int64
	b, err := NewNode("beta", cfg, WithSeed(2),
		WithDeliver(func(d Delivery) {
			if d.Node != "beta" {
				t.Errorf("delivery attributed to %s", d.Node)
			}
			got.Add(1)
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Wire the address book both ways.
	if err := a.AddPeer("beta", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("alpha", a.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if !a.Publish([]byte("over the wire")) {
		t.Fatal("publish rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got.Load() >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.Load() < 1 {
		t.Fatalf("event never crossed UDP; a=%+v b=%+v", a.Stats(), b.Stats())
	}
	if a.ID() != "alpha" {
		t.Fatalf("ID = %s", a.ID())
	}
	if a.Addr() == "" {
		t.Fatal("UDP node reports no address")
	}
	if a.Snapshot().BufferCap != cfg.BufferCapacity {
		t.Fatal("snapshot wrong")
	}
	if st := a.Stats(); st.Nodes != 1 || st.Published == 0 {
		t.Fatalf("node stats %+v", st)
	}
}

func TestNodeValidation(t *testing.T) {
	if _, err := NewNode("", Config{}); err == nil {
		t.Fatal("missing id accepted")
	}
	badBind, err := NewUDPTransport(WithBind("nope:xyz"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode("x", Config{}, WithTransport(badBind)); err == nil {
		t.Fatal("bad bind accepted")
	}
	bad := DefaultConfig()
	bad.MaxAge = -1
	if _, err := NewNode("x", bad); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewNode("x", Config{},
		WithPeers(map[string]string{"y": "not-valid:addr:xx"})); err == nil {
		t.Fatal("bad peer addr accepted")
	}
	if _, err := NewNode("x", Config{}, WithNamePrefix("n-")); err == nil {
		t.Fatal("WithNamePrefix accepted by NewNode")
	}
	// WithPeers needs an address book; the memory fabric has none.
	mem, err := NewMemTransport()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode("x", Config{}, WithTransport(mem),
		WithPeers(map[string]string{"y": "127.0.0.1:1"})); err == nil {
		t.Fatal("WithPeers accepted on a transport without an address book")
	}
}

// TestNodeAddPeerValidatesAddresses: AddPeer must fail loudly instead
// of admitting a member with no wire route.
func TestNodeAddPeerValidatesAddresses(t *testing.T) {
	udp, err := NewNode("udp-node", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	if err := udp.AddPeer("peer", ""); err == nil {
		t.Fatal("empty address accepted by a UDP node")
	}
	if err := udp.AddPeer("peer", "not:valid:addr:xx"); err == nil {
		t.Fatal("malformed address accepted by a UDP node")
	}
	if len(udp.Members()) != 1 {
		t.Fatalf("failed AddPeer still grew the member set: %v", udp.Members())
	}

	// The memory fabric routes by id: no address book, so a non-empty
	// address is an error and "" is the way to add members.
	mem, err := NewMemTransport()
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode("mem-node", Config{}, WithTransport(mem))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.AddPeer("peer", "127.0.0.1:9"); err == nil {
		t.Fatal("address accepted by a transport without an address book")
	}
	if err := node.AddPeer("peer", ""); err != nil {
		t.Fatalf("id-routed AddPeer failed: %v", err)
	}
	if len(node.Members()) != 2 {
		t.Fatalf("members %v", node.Members())
	}
}

func TestSimulateFacade(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.N = 16
	cfg.Fanout = 3
	cfg.Period = time.Second
	cfg.Buffer = 25
	cfg.OfferedRate = 5
	cfg.Warmup = 20 * time.Second
	cfg.Duration = 80 * time.Second
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MeanReceiversPct < 95 {
		t.Fatalf("simulation unhealthy: %+v", res.Summary)
	}
	if _, err := Simulate(SimConfig{}); err == nil {
		t.Fatal("invalid sim config accepted")
	}
}

func TestSimulateRealtimeFacade(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.N = 8
	cfg.Fanout = 3
	cfg.Period = 25 * time.Millisecond
	cfg.Buffer = 25
	cfg.MaxAge = 8
	cfg.OfferedRate = 40
	cfg.Warmup = 200 * time.Millisecond
	cfg.Duration = 600 * time.Millisecond
	res, err := SimulateRealtime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Messages == 0 {
		t.Fatal("no messages measured")
	}
}

// TestClusterFailureDetectionHealthy exercises the public detector
// knob end to end: in a healthy in-memory cluster the detector probes
// continuously but must never bury a live member, and dissemination
// keeps working with the probe traffic in the mix.
func TestClusterFailureDetectionHealthy(t *testing.T) {
	var delivered atomic.Int64
	cfg := fastConfig()
	cfg.Failure.Enabled = true
	// Generous suspicion window: with 20ms rounds a node only has to
	// stall ~8 rounds to be falsely confirmed, which slowed-down CI
	// runs (-race, shared runners) can hit. 40 rounds of grace keeps
	// the "no false confirms in a healthy cluster" property meaningful
	// without making it a scheduler-latency test.
	cfg.Failure.SuspicionTimeout = 40
	cluster, err := NewCluster(8, cfg,
		WithSeed(7),
		WithDeliver(func(d Delivery) { delivered.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Let a good number of probe rounds elapse.
	time.Sleep(30 * cfg.Period)
	if !cluster.Publish(2, []byte("still here")) {
		t.Fatal("publish rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && delivered.Load() < 8 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := delivered.Load(); got != 8 {
		t.Fatalf("delivered to %d/8 nodes with detector on", got)
	}
	st := cluster.Stats()
	if st.ProbesSent == 0 {
		t.Fatal("detector enabled but no probes sent")
	}
	if st.Confirms != 0 {
		t.Fatalf("%d live members confirmed dead in a healthy cluster", st.Confirms)
	}
}

// TestUDPNodeMembersEviction: the node facade evicts a stopped peer
// from the survivor's member list after detection and reports the
// transitions through WithOnMemberChange.
func TestUDPNodeMembersEviction(t *testing.T) {
	cfg := fastConfig()
	cfg.Failure.Enabled = true
	// Enough suspicion grace that a scheduler stall on a loaded CI
	// runner cannot falsely bury a live peer, while still confirming
	// the genuinely-dead one quickly at 20ms rounds.
	cfg.Failure.SuspicionTimeout = 8

	var transitions sync.Map
	mk := func(id string, opts ...Option) *Node {
		n, err := NewNode(id, cfg, append(opts, WithSeed(int64(len(id))+9))...)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := mk("alpha", WithOnMemberChange(func(node, peer NodeID, st MemberStatus) {
		if node != "alpha" {
			t.Errorf("transition attributed to %s", node)
		}
		transitions.Store(string(peer)+":"+st.String(), true)
	}))
	b := mk("beta")
	c := mk("gamma")
	defer a.Close()
	defer c.Close()
	for _, pair := range [][2]*Node{{a, b}, {b, a}, {a, c}, {c, a}, {b, c}, {c, b}} {
		if err := pair[0].AddPeer(string(pair[1].ID()), pair[1].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for _, n := range []*Node{a, b, c} {
		if err := n.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.Members()) != 3 {
		t.Fatalf("alpha tracks %d members, want 3", len(a.Members()))
	}

	// Kill beta; alpha should confirm and evict it while keeping gamma
	// (a transient false eviction of gamma self-heals via revival, so
	// wait for the converged state rather than a member count).
	b.Close()
	settled := func() bool {
		hasBeta, hasGamma := false, false
		for _, id := range a.Members() {
			switch id {
			case "beta":
				hasBeta = true
			case "gamma":
				hasGamma = true
			}
		}
		return !hasBeta && hasGamma
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !settled() {
		time.Sleep(20 * time.Millisecond)
	}
	if !settled() {
		t.Fatalf("alpha tracks %v after beta stopped; want gamma kept, beta evicted", a.Members())
	}
	if _, ok := transitions.Load("beta:confirmed"); !ok {
		t.Fatal("OnMemberChange never reported beta confirmed")
	}
}

package adaptivegossip

// The figure benchmarks regenerate compact versions of every table and
// figure in the paper's evaluation and report the headline metric of
// each via b.ReportMetric (full-fidelity runs: cmd/gossipsim). The
// micro benchmarks cover the protocol hot paths.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"adaptivegossip/internal/core"
	"adaptivegossip/internal/experiments"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/membership"
	"adaptivegossip/internal/pubsub"
	"adaptivegossip/internal/ratelimit"
	"adaptivegossip/internal/recovery"
	"adaptivegossip/internal/sim"
	"adaptivegossip/internal/transport"
)

// benchBase is a reduced-scale experiment configuration: 24 nodes,
// fanout 4, buffer/rate axes scaled like the paper's but with shorter
// measurement windows so a bench iteration stays ≈100ms.
func benchBase() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.N = 24
	cfg.Warmup = 100 * time.Second
	cfg.Duration = 150 * time.Second
	return cfg
}

// BenchmarkFigure2ReliabilityVsRate regenerates Figure 2 (reliability
// degradation of static lpbcast): reports atomicity at the paper's
// 30 msg/s operating point and at 2× that rate.
func BenchmarkFigure2ReliabilityVsRate(b *testing.B) {
	var at30, at60 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFigure2(benchBase(), []float64{30, 60}, 1)
		if err != nil {
			b.Fatal(err)
		}
		at30, at60 = rows[0].AtomicityPct, rows[1].AtomicityPct
	}
	b.ReportMetric(at30, "atomic30pct")
	b.ReportMetric(at60, "atomic60pct")
}

// BenchmarkFigure4MaxRateVsBuffer regenerates Figure 4 (maximum input
// rate per buffer size): reports the measured slope max-rate/buffer.
func BenchmarkFigure4MaxRateVsBuffer(b *testing.B) {
	var slope float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFigure4(benchBase(), []int{60, 120}, 95, 1)
		if err != nil {
			b.Fatal(err)
		}
		slope = rows[1].MaxRate / float64(rows[1].Buffer)
	}
	b.ReportMetric(slope, "maxrate/buf")
}

// BenchmarkTable1CriticalAge regenerates the §2.3 calibration: the
// average dropped age at the maximum rate, constant across buffers
// (paper: 5.3 hops; this system: ≈5.4).
func BenchmarkTable1CriticalAge(b *testing.B) {
	var ta, spread float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFigure4(benchBase(), []int{60, 120}, 95, 1)
		if err != nil {
			b.Fatal(err)
		}
		ta = experiments.CriticalAge(rows)
		spread = experiments.CriticalAgeSpread(rows)
	}
	b.ReportMetric(ta, "ta_hops")
	b.ReportMetric(spread, "spread_hops")
}

// BenchmarkFigure6AdaptiveVsIdeal regenerates Figure 6: the ratio of
// the adaptive allowed rate to the ideal maximum under congestion, and
// the fraction of the offered load accepted when uncongested.
func BenchmarkFigure6AdaptiveVsIdeal(b *testing.B) {
	var trackRatio, acceptRatio float64
	for i := 0; i < b.N; i++ {
		base := benchBase()
		fig4, err := experiments.RunFigure4(base, []int{60}, 95, 1)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := experiments.RunFigure6(base, []int{60, 180}, fig4, 1)
		if err != nil {
			b.Fatal(err)
		}
		trackRatio = rows[0].Allowed / fig4[0].MaxRate
		acceptRatio = rows[1].Input / rows[1].Offered
	}
	b.ReportMetric(trackRatio, "allowed/ideal")
	b.ReportMetric(acceptRatio, "accepted/offered")
}

// BenchmarkFigure7RatesAndAges regenerates Figure 7: reports the
// output/input ratios of both algorithms at an overloaded buffer size.
func BenchmarkFigure7RatesAndAges(b *testing.B) {
	var lpGoodput, adGoodput, lpAge, adAge float64
	for i := 0; i < b.N; i++ {
		rows7, _, err := experiments.RunFigures78(benchBase(), []int{60}, 1)
		if err != nil {
			b.Fatal(err)
		}
		r := rows7[0]
		lpGoodput = r.LpOutput / r.LpInput
		adGoodput = r.AdOutput / r.AdInput
		lpAge, adAge = r.LpDroppedAge, r.AdDroppedAge
	}
	b.ReportMetric(lpGoodput, "lp_out/in")
	b.ReportMetric(adGoodput, "ad_out/in")
	b.ReportMetric(lpAge, "lp_age")
	b.ReportMetric(adAge, "ad_age")
}

// BenchmarkFigure8Reliability regenerates Figure 8: atomicity of both
// algorithms at an overloaded buffer size.
func BenchmarkFigure8Reliability(b *testing.B) {
	var lp, ad float64
	for i := 0; i < b.N; i++ {
		_, rows8, err := experiments.RunFigures78(benchBase(), []int{60}, 1)
		if err != nil {
			b.Fatal(err)
		}
		lp, ad = rows8[0].LpAtomicity, rows8[0].AdAtomicity
	}
	b.ReportMetric(lp, "lp_atomic_pct")
	b.ReportMetric(ad, "ad_atomic_pct")
}

// BenchmarkFigure9DynamicBuffers regenerates Figure 9 (simulation):
// the adaptive vs baseline atomicity during the constrained phase.
func BenchmarkFigure9DynamicBuffers(b *testing.B) {
	var ad, lp, allowed float64
	for i := 0; i < b.N; i++ {
		base := benchBase()
		base.OfferedRate = 20
		base.Warmup = 0
		cfg := experiments.Figure9Config{
			Base:            base,
			InitialBuffer:   90,
			ReducedBuffer:   45,
			RecoveredBuffer: 60,
			Fraction:        0.2,
			ChangeAt1:       100 * time.Second,
			ChangeAt2:       200 * time.Second,
			Total:           300 * time.Second,
		}
		res, err := experiments.RunFigure9Sim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		phases := res.Phases(50 * time.Second)
		ad, lp = phases[1].AtomicityAdaptive, phases[1].AtomicityLpbcast
		allowed = phases[1].MeanAllowed
	}
	b.ReportMetric(ad, "ad_atomic_pct")
	b.ReportMetric(lp, "lp_atomic_pct")
	b.ReportMetric(allowed, "allowed_msgs")
}

// BenchmarkAblationRandomization (A1): allowed-rate oscillation with
// and without randomized increases.
func BenchmarkAblationRandomization(b *testing.B) {
	var stdRandomized, stdSynchronized float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationRandomization(benchBase(), 1)
		if err != nil {
			b.Fatal(err)
		}
		stdRandomized, stdSynchronized = rows[0].AllowedStd, rows[1].AllowedStd
	}
	b.ReportMetric(stdRandomized, "std_pr25")
	b.ReportMetric(stdSynchronized, "std_pr100")
}

// BenchmarkAblationTokenCheck (A2): allowance inflation without the
// avgTokens guard.
func BenchmarkAblationTokenCheck(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationTokenCheck(benchBase(), 1)
		if err != nil {
			b.Fatal(err)
		}
		with, without = rows[0].AllowedMean, rows[1].AllowedMean
	}
	b.ReportMetric(with, "allowed_guarded")
	b.ReportMetric(without, "allowed_unguarded")
}

// BenchmarkAblationWindow (A3): capacity reclaimed after recovery for
// W=1 vs W=4.
func BenchmarkAblationWindow(b *testing.B) {
	var w1, w4 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationWindow(benchBase(), []int{1, 4}, 1)
		if err != nil {
			b.Fatal(err)
		}
		w1, w4 = rows[0].AllowedMean, rows[1].AllowedMean
	}
	b.ReportMetric(w1, "allowed_W1")
	b.ReportMetric(w4, "allowed_W4")
}

// BenchmarkAblationAlpha (A4): allowed-rate oscillation for α=0.5 vs
// α=0.9.
func BenchmarkAblationAlpha(b *testing.B) {
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationAlpha(benchBase(), []float64{0.5, 0.9}, 1)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi = rows[0].AllowedStd, rows[1].AllowedStd
	}
	b.ReportMetric(lo, "std_a50")
	b.ReportMetric(hi, "std_a90")
}

// --- protocol micro benchmarks -------------------------------------

// BenchmarkBufferAddEvict measures the events-buffer insert path at
// steady-state occupancy (every insert evicts).
func BenchmarkBufferAddEvict(b *testing.B) {
	buf, err := gossip.NewBuffer(120)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := gossip.Event{
			ID:  gossip.EventID{Origin: "bench", Seq: uint64(i)},
			Age: rng.IntN(10),
		}
		if _, err := buf.Add(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIDCacheAdd measures the dedup cache at steady state.
func BenchmarkIDCacheAdd(b *testing.B) {
	c, err := gossip.NewIDCache(3600)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(gossip.EventID{Origin: "bench", Seq: uint64(i)})
	}
}

// BenchmarkNodeReceive measures the full receive path: a 120-event
// gossip message, about half duplicates — the per-round workload of a
// node in the paper's configuration.
func BenchmarkNodeReceive(b *testing.B) {
	reg := membership.NewRegistry("a", "b")
	node, err := gossip.NewNode("a",
		gossip.Params{Fanout: 4, Period: time.Second, MaxEvents: 120, MaxAge: 10},
		reg, rand.New(rand.NewPCG(3, 4)))
	if err != nil {
		b.Fatal(err)
	}
	const batch = 120
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events := make([]gossip.Event, batch)
		for j := range events {
			// Every second event repeats the previous iteration's ids.
			seq := uint64(i*batch + j)
			if j%2 == 1 && i > 0 {
				seq = uint64((i-1)*batch + j)
			}
			events[j] = gossip.Event{ID: gossip.EventID{Origin: "b", Seq: seq}, Age: j % 10}
		}
		node.Receive(&gossip.Message{From: "b", Events: events})
	}
	b.ReportMetric(float64(batch), "events/op")
}

// BenchmarkCodecEncode measures wire encoding of a full gossip message
// (120 events × 64-byte payloads).
func BenchmarkCodecEncode(b *testing.B) {
	msg := benchMessage()
	c := transport.DefaultCodec()
	data, err := c.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecDecode measures wire decoding of the same message.
func BenchmarkCodecDecode(b *testing.B) {
	c := transport.DefaultCodec()
	data, err := c.Encode(benchMessage())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMessage() *gossip.Message {
	msg := &gossip.Message{From: "bench", Adaptive: true, SamplePeriod: 9, MinBuff: 90}
	payload := make([]byte, 64)
	for i := 0; i < 120; i++ {
		msg.Events = append(msg.Events, gossip.Event{
			ID:      gossip.EventID{Origin: "origin", Seq: uint64(i)},
			Age:     i % 10,
			Payload: payload,
		})
	}
	return msg
}

// BenchmarkCodecRoundTrip measures a full encode+decode of a gossip
// message including a recovery digest — the per-message wire cost with
// the anti-entropy subsystem on.
func BenchmarkCodecRoundTrip(b *testing.B) {
	msg := benchMessage()
	for i := 0; i < recovery.DefaultDigestLen; i++ {
		msg.Digest = append(msg.Digest, gossip.EventID{Origin: "origin", Seq: uint64(i)})
	}
	c := transport.DefaultCodec()
	data, err := c.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := c.Encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryDigestDiff measures the receiver-side hot path of
// the anti-entropy subsystem: diffing an incoming digest against the
// node's seen set. Half the digest is known, half missing — the
// steady-state shape under loss.
func BenchmarkRecoveryDigestDiff(b *testing.B) {
	reg := membership.NewRegistry("a", "b")
	node, err := gossip.NewNode("a",
		gossip.Params{Fanout: 4, Period: time.Second, MaxEvents: 120, MaxAge: 10},
		reg, rand.New(rand.NewPCG(21, 22)))
	if err != nil {
		b.Fatal(err)
	}
	digest := make([]gossip.EventID, recovery.DefaultDigestLen)
	for i := range digest {
		digest[i] = gossip.EventID{Origin: "b", Seq: uint64(i)}
		if i%2 == 0 {
			node.Receive(&gossip.Message{From: "b", Events: []gossip.Event{{ID: digest[i]}}})
		}
	}
	b.ReportMetric(float64(len(digest)), "ids/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if missing := recovery.DiffDigest(node, digest); len(missing) != len(digest)/2 {
			b.Fatalf("expected %d missing, got %d", len(digest)/2, len(missing))
		}
	}
}

// BenchmarkRegistrySample measures fanout target selection from a
// 60-member registry.
func BenchmarkRegistrySample(b *testing.B) {
	ids := make([]gossip.NodeID, 60)
	for i := range ids {
		ids[i] = gossip.NodeID(fmt.Sprintf("n%03d", i))
	}
	reg := membership.NewRegistry(ids...)
	rng := rand.New(rand.NewPCG(5, 6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.SamplePeers("n000", 4, rng)
	}
}

// BenchmarkTokenBucket measures the admission fast path.
func BenchmarkTokenBucket(b *testing.B) {
	bucket, err := ratelimit.NewBucket(5, 1e9, time.Unix(0, 0))
	if err != nil {
		b.Fatal(err)
	}
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Microsecond)
		bucket.TryTake(now)
	}
}

// BenchmarkAdaptorOnReceive measures the adaptation hook on the
// receive path (minBuff fold + congestion scan).
func BenchmarkAdaptorOnReceive(b *testing.B) {
	reg := membership.NewRegistry("a", "b")
	cp := core.DefaultParams()
	node, err := core.NewAdaptiveNode(core.NodeConfig{
		ID:       "a",
		Gossip:   gossip.Params{Fanout: 4, Period: time.Second, MaxEvents: 120, MaxAge: 10},
		Adaptive: true,
		Core:     cp,
		Peers:    reg,
		RNG:      rand.New(rand.NewPCG(7, 8)),
		Start:    time.Unix(0, 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events := make([]gossip.Event, 40)
		for j := range events {
			events[j] = gossip.Event{
				ID:  gossip.EventID{Origin: "b", Seq: uint64(i*40 + j)},
				Age: j % 10,
			}
		}
		node.Receive(&gossip.Message{
			From: "b", Adaptive: true, SamplePeriod: uint64(i / 6), MinBuff: 90,
			Events: events,
		}, now)
		now = now.Add(10 * time.Millisecond)
	}
}

// BenchmarkPubSubFanInOut measures the pub/sub peer's tick+receive
// path with three subscribed topics.
func BenchmarkPubSubFanInOut(b *testing.B) {
	reg := membership.NewRegistry("a", "b", "c", "d")
	cp := core.DefaultParams()
	peer, err := pubsub.NewPeer(pubsub.PeerConfig{
		ID:           "a",
		BufferBudget: 90,
		Gossip:       gossip.Params{Fanout: 3, Period: time.Second, MaxAge: 10},
		Adaptive:     true,
		Core:         cp,
		RNG:          rand.New(rand.NewPCG(11, 12)),
		Start:        time.Unix(0, 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	topics := []pubsub.Topic{"t1", "t2", "t3"}
	for _, topic := range topics {
		if err := peer.Subscribe(topic, reg); err != nil {
			b.Fatal(err)
		}
	}
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Second)
		topic := topics[i%len(topics)]
		events := make([]gossip.Event, 20)
		for j := range events {
			events[j] = gossip.Event{
				ID:  gossip.EventID{Origin: "b", Seq: uint64(i*20 + j)},
				Age: j % 8,
			}
		}
		peer.Receive(&gossip.Message{From: "b", Group: string(topic), Events: events}, now)
		peer.Tick(now)
	}
}

// BenchmarkSimulatedRound measures one full simulated gossip round of
// the paper's 60-node configuration (all ticks + deliveries).
func BenchmarkSimulatedRound(b *testing.B) {
	sched := sim.NewScheduler(sim.Epoch)
	network, err := sim.NewNetwork(sched, sim.DeriveRNG(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	const n = 60
	names := make([]gossip.NodeID, n)
	for i := range names {
		names[i] = gossip.NodeID(fmt.Sprintf("n%03d", i))
	}
	reg := membership.NewRegistry(names...)
	nodes := make([]*core.AdaptiveNode, n)
	for i := range nodes {
		node, err := core.NewAdaptiveNode(core.NodeConfig{
			ID:       names[i],
			Gossip:   gossip.Params{Fanout: 4, Period: 5 * time.Second, MaxEvents: 120, MaxAge: 10},
			Adaptive: true,
			Core:     core.DefaultParams(),
			Peers:    reg,
			RNG:      sim.DeriveRNG(2, uint64(i)),
			Start:    sim.Epoch,
		})
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = node
		name := names[i]
		_ = name
		network.Attach(names[i], func(m *gossip.Message) { node.Receive(m, sched.Now()) })
	}
	// Pre-load some traffic.
	for i := 0; i < 150; i++ {
		nodes[i%n].Publish(nil, sched.Now())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, node := range nodes {
			for _, out := range node.Tick(sched.Now()) {
				//gossip:scratchok sched.RunFor below drains every delivery before any node's next Tick refreshes its round message
				network.Send(names[j], out.To, out.Msg)
			}
		}
		sched.RunFor(5 * time.Second)
		nodes[i%n].Publish(nil, sched.Now())
	}
	b.ReportMetric(n, "nodes")
}

package adaptivegossip

// The golden API test freezes the package's exported surface: every
// exported type (with its exported fields and interface methods),
// function, method, constant and variable, rendered with its signature.
// An accidental rename, removal or signature change fails here before
// it breaks downstream callers; deliberate changes are recorded with
//
//	go test -run TestPublicAPISurface -update-api
//
// and reviewed as part of the diff (see API_STABILITY.md).

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite testdata/api_surface.txt from the current source")

const apiGoldenFile = "testdata/api_surface.txt"

func TestPublicAPISurface(t *testing.T) {
	got := strings.Join(exportedSurface(t), "\n") + "\n"
	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(apiGoldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGoldenFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", apiGoldenFile)
		return
	}
	wantBytes, err := os.ReadFile(apiGoldenFile)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-api to create it): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines := strings.Split(strings.TrimSpace(got), "\n")
	wantLines := strings.Split(strings.TrimSpace(want), "\n")
	gotSet := map[string]bool{}
	for _, l := range gotLines {
		gotSet[l] = true
	}
	wantSet := map[string]bool{}
	for _, l := range wantLines {
		wantSet[l] = true
	}
	for _, l := range wantLines {
		if !gotSet[l] {
			t.Errorf("removed from public API: %s", l)
		}
	}
	for _, l := range gotLines {
		if !wantSet[l] {
			t.Errorf("added to public API: %s", l)
		}
	}
	t.Error("public API surface changed; if intentional, run: go test -run TestPublicAPISurface -update-api")
}

// exportedSurface renders every exported declaration of the root
// package (non-test files) as one sorted line per symbol.
func exportedSurface(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var lines []string
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				lines = append(lines, funcLines(d)...)
			case *ast.GenDecl:
				lines = append(lines, genLines(d)...)
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func funcLines(d *ast.FuncDecl) []string {
	if !d.Name.IsExported() {
		return nil
	}
	sig := types.ExprString(d.Type)
	if d.Recv == nil {
		return []string{fmt.Sprintf("func %s %s", d.Name.Name, sig)}
	}
	recv := types.ExprString(d.Recv.List[0].Type)
	// Methods on unexported receivers are not public API.
	base := strings.TrimPrefix(recv, "*")
	if !ast.IsExported(base) {
		return nil
	}
	return []string{fmt.Sprintf("method (%s) %s %s", recv, d.Name.Name, sig)}
}

func genLines(d *ast.GenDecl) []string {
	var lines []string
	switch d.Tok {
	case token.CONST, token.VAR:
		kind := "const"
		if d.Tok == token.VAR {
			kind = "var"
		}
		for _, spec := range d.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if name.IsExported() {
					lines = append(lines, fmt.Sprintf("%s %s", kind, name.Name))
				}
			}
		}
	case token.TYPE:
		for _, spec := range d.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() {
				continue
			}
			lines = append(lines, typeLines(ts)...)
		}
	}
	return lines
}

func typeLines(ts *ast.TypeSpec) []string {
	name := ts.Name.Name
	if ts.Assign.IsValid() {
		return []string{fmt.Sprintf("type %s = %s", name, types.ExprString(ts.Type))}
	}
	switch typ := ts.Type.(type) {
	case *ast.StructType:
		lines := []string{fmt.Sprintf("type %s struct", name)}
		for _, field := range typ.Fields.List {
			ft := types.ExprString(field.Type)
			for _, fname := range field.Names {
				if fname.IsExported() {
					lines = append(lines, fmt.Sprintf("field %s.%s %s", name, fname.Name, ft))
				}
			}
			if len(field.Names) == 0 { // embedded
				lines = append(lines, fmt.Sprintf("field %s.%s (embedded)", name, ft))
			}
		}
		return lines
	case *ast.InterfaceType:
		lines := []string{fmt.Sprintf("type %s interface", name)}
		for _, m := range typ.Methods.List {
			mt := types.ExprString(m.Type)
			for _, mname := range m.Names {
				if mname.IsExported() {
					lines = append(lines, fmt.Sprintf("ifacemethod %s.%s %s", name, mname.Name, mt))
				}
			}
		}
		return lines
	default:
		return []string{fmt.Sprintf("type %s %s", name, types.ExprString(ts.Type))}
	}
}

package adaptivegossip

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestPubSubTopicsAndBudgets(t *testing.T) {
	cfg := fastConfig()
	var mu sync.Mutex
	delivered := map[NodeID]map[Topic]int{}

	cluster, err := NewPubSub(6, 40, cfg,
		WithSeed(3),
		WithDeliver(func(d Delivery) {
			mu.Lock()
			if delivered[d.Node] == nil {
				delivered[d.Node] = map[Topic]int{}
			}
			delivered[d.Node][d.Topic]++
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	if cluster.Len() != 6 || len(cluster.Peers()) != 6 {
		t.Fatalf("cluster size %d", cluster.Len())
	}

	// Everyone on "all"; the first three also on "sub".
	for i := 0; i < 6; i++ {
		if err := cluster.Subscribe(i, "all"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := cluster.Subscribe(i, "sub"); err != nil {
			t.Fatal(err)
		}
	}

	// Budget split visible in state.
	st, err := cluster.State(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 2 || st[0].BufferCap != 20 || st[1].BufferCap != 20 {
		t.Fatalf("split state %+v", st)
	}
	st, err = cluster.State(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 1 || st[0].BufferCap != 40 {
		t.Fatalf("unsplit state %+v", st)
	}

	// Topic isolation end to end.
	if ok, err := cluster.Publish(0, "all", []byte("wide")); err != nil || !ok {
		t.Fatalf("publish all: %v %v", ok, err)
	}
	if ok, err := cluster.Publish(1, "sub", []byte("narrow")); err != nil || !ok {
		t.Fatalf("publish sub: %v %v", ok, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		all, sub := 0, 0
		for _, byTopic := range delivered {
			if byTopic["all"] > 0 {
				all++
			}
			if byTopic["sub"] > 0 {
				sub++
			}
		}
		mu.Unlock()
		if all == 6 && sub == 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for node, byTopic := range delivered {
		if byTopic["sub"] > 0 {
			found := false
			for i := 0; i < 3; i++ {
				if node == cluster.Peers()[i] {
					found = true
				}
			}
			if !found {
				t.Fatalf("non-subscriber %s delivered on sub", node)
			}
		}
	}
	allCount := 0
	for _, byTopic := range delivered {
		if byTopic["all"] == 1 {
			allCount++
		}
	}
	if allCount != 6 {
		t.Fatalf("all-topic reached %d/6", allCount)
	}
}

// TestPubSubEventsStreamCarriesTopics: the Events stream is shared
// across all facades; on the pub/sub facade every delivery carries its
// topic, matching the callback contract.
func TestPubSubEventsStreamCarriesTopics(t *testing.T) {
	cluster, err := NewPubSub(4, 40, fastConfig(), WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	events := cluster.Events(ctx)
	seen := make(chan map[Topic]int, 1)
	go func() {
		byTopic := map[Topic]int{}
		for d := range events {
			byTopic[d.Topic]++
		}
		seen <- byTopic
	}()
	if err := cluster.Start(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := cluster.Subscribe(i, "ticks"); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := cluster.Publish(0, "ticks", []byte("t0")); err != nil || !ok {
		t.Fatalf("publish: %v %v", ok, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && cluster.Stats().Delivered < 4 {
		time.Sleep(10 * time.Millisecond)
	}
	st := cluster.Stats()
	cluster.Close()
	byTopic := <-seen
	if byTopic["ticks"] != 4 {
		t.Fatalf("stream saw %d ticks deliveries, want 4 (stats %+v)", byTopic["ticks"], st)
	}
	if st.Nodes != 4 || st.Published == 0 {
		t.Fatalf("unified stats %+v", st)
	}
}

func TestPubSubErrors(t *testing.T) {
	cfg := fastConfig()
	if _, err := NewPubSub(1, 40, cfg); err == nil {
		t.Fatal("1-peer group accepted")
	}
	if _, err := NewPubSub(4, 0, cfg); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewPubSub(4, 40, cfg, WithOnMemberChange(func(node, peer NodeID, st MemberStatus) {})); err == nil {
		t.Fatal("WithOnMemberChange accepted by NewPubSub")
	}
	cluster, err := NewPubSub(4, 40, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Subscribe(99, "t"); err == nil {
		t.Fatal("out-of-range subscribe accepted")
	}
	if err := cluster.Unsubscribe(0, "ghost"); err == nil {
		t.Fatal("unsubscribe from unknown topic accepted")
	}
	if _, err := cluster.Publish(0, "ghost", nil); err == nil {
		t.Fatal("publish on unsubscribed topic accepted")
	}
	if _, err := cluster.State(-1); err == nil {
		t.Fatal("out-of-range state accepted")
	}
	if err := cluster.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestPubSubUnsubscribeRebalancesLive(t *testing.T) {
	cluster, err := NewPubSub(4, 30, fastConfig(), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for _, topic := range []Topic{"a", "b", "c"} {
		if err := cluster.Subscribe(0, topic); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := cluster.State(0)
	if len(st) != 3 || st[0].BufferCap != 10 {
		t.Fatalf("state %+v", st)
	}
	if err := cluster.Unsubscribe(0, "b"); err != nil {
		t.Fatal(err)
	}
	st, _ = cluster.State(0)
	if len(st) != 2 || st[0].BufferCap != 15 {
		t.Fatalf("state after unsubscribe %+v", st)
	}
}

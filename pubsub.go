package adaptivegossip

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"adaptivegossip/internal/membership"
	"adaptivegossip/internal/pubsub"
)

// Pub/sub re-exports.
type (
	// Topic names a broadcast group in the pub/sub layer.
	Topic = pubsub.Topic
	// TopicState is a per-subscription snapshot.
	TopicState = pubsub.TopicState
)

// PubSub is an in-process publish/subscribe group — the paper's
// motivating scenario as an API. Each topic is an independent adaptive
// broadcast group whose members are exactly the current subscribers;
// each member splits one buffer budget across its subscriptions, so
// every subscribe/unsubscribe shifts the resources the adaptation
// mechanism sees. Deliveries carry the Topic in both the WithDeliver
// callback and the Events stream.
type PubSub struct {
	names   []NodeID
	fabric  Transport
	eps     []Endpoint
	runners []*pubsub.Runner
	hub     *streamHub
	obs     *groupObservability

	mu        sync.Mutex
	started   bool
	epStarted int // endpoints [0, epStarted) have live receive loops
	closed    bool
	done      chan struct{}
	regs      map[Topic]*membership.Registry
}

// NewPubSub builds n peers, each with the given total buffer budget,
// with the shared option set (WithSeed, WithDeliver, WithTransport,
// WithNamePrefix). No peer is subscribed to anything initially.
func NewPubSub(n, bufferBudget int, cfg Config, opts ...Option) (*PubSub, error) {
	o, oerr := applyOptions(facadePubSub, groupOptions{seed: 1, prefix: "peer-"}, opts)
	// Any failure from here on closes a handed-over transport: the
	// group owns it from the moment WithTransport is applied.
	failEarly := func(err error) (*PubSub, error) {
		if o.fabric != nil {
			o.fabric.Close()
		}
		return nil, err
	}
	if oerr != nil {
		return failEarly(oerr)
	}
	if n < 2 {
		return failEarly(fmt.Errorf("adaptivegossip: pub/sub group needs at least 2 peers, got %d", n))
	}
	cfg = cfg.withDefaults()
	gp := cfg.gossipParams()
	gp.MaxEvents = bufferBudget
	if err := gp.Validate(); err != nil {
		return failEarly(fmt.Errorf("adaptivegossip: %w", err))
	}
	if o.fabric == nil {
		fabric, err := NewMemTransport(WithTransportSeed(o.seed + 0x9A9A))
		if err != nil {
			return failEarly(err)
		}
		o.fabric = fabric
	}
	fabric := o.fabric
	if err := applyTransportConfig(fabric, cfg.Transport); err != nil {
		return failEarly(err)
	}
	c := &PubSub{
		fabric: fabric,
		hub:    newStreamHub(),
		done:   make(chan struct{}),
		regs:   make(map[Topic]*membership.Registry),
	}
	obs := newGroupObservability(cfg.Observability)
	c.obs = obs
	fail := func(err error) (*PubSub, error) {
		fabric.Close()
		obs.close()
		return nil, err
	}
	for i := 0; i < n; i++ {
		name := NodeID(fmt.Sprintf("%s%02d", o.prefix, i))
		c.names = append(c.names, name)
		deliver := func(topic Topic, ev Event) {
			d := Delivery{Node: name, Topic: topic, Event: ev}
			c.hub.publish(d)
			if o.deliver != nil {
				o.deliver(d)
			}
		}
		gpPeer := cfg.gossipParams()
		gpPeer.MaxEvents = 0 // the budget drives per-topic capacity
		peer, err := pubsub.NewPeer(pubsub.PeerConfig{
			ID:           name,
			BufferBudget: bufferBudget,
			Gossip:       gpPeer,
			Adaptive:     cfg.Adaptive,
			Core:         cfg.Adaptation,
			RNG:          rand.New(rand.NewPCG(uint64(o.seed), uint64(i)+1)),
			Deliver:      deliver,
			Metrics:      obs.node,
			Tracer:       obs.tracer(),
			Start:        time.Now(),
		})
		if err != nil {
			return fail(err)
		}
		ep, err := fabric.Endpoint(name)
		if err != nil {
			return fail(err)
		}
		c.eps = append(c.eps, ep)
		obs.attachLinks(ep)
		r, err := pubsub.NewRunner(pubsub.RunnerConfig{
			Peer:      peer,
			Transport: ep,
			Period:    cfg.Period,
			PhaseSeed: uint64(o.seed)*48271 + uint64(i) + 1,
			Metrics:   obs.runner,
		})
		if err != nil {
			return fail(err)
		}
		c.runners = append(c.runners, r)
	}
	if err := obs.bindServer(cfg.Observability.DebugAddr,
		func() Stats { return c.Stats() }, c.ClusterHealth); err != nil {
		return fail(err)
	}
	return c, nil
}

// Len reports the number of peers.
func (c *PubSub) Len() int { return len(c.runners) }

// Peers returns the peer names in index order.
func (c *PubSub) Peers() []NodeID {
	return append([]NodeID(nil), c.names...)
}

// Start launches every peer. Cancelling ctx closes the group; a closed
// group cannot be restarted. Idempotent while open — every context
// passed to Start is watched, so cancelling any of them closes the
// group. A transient endpoint failure may be retried: already started
// endpoints are not started twice.
func (c *PubSub) Start(ctx context.Context) error {
	if ctx == nil {
		return fmt.Errorf("adaptivegossip: nil context")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("adaptivegossip: pub/sub group closed")
	}
	if c.started {
		watchContext(ctx, c.done, c.Close)
		return nil
	}
	for ; c.epStarted < len(c.eps); c.epStarted++ {
		if s, ok := c.eps[c.epStarted].(starter); ok {
			if err := s.Start(); err != nil {
				return err
			}
		}
	}
	for _, r := range c.runners {
		r.Start()
	}
	c.started = true
	watchContext(ctx, c.done, c.Close)
	return nil
}

// Close terminates every peer, the fabric and every Events stream.
// Idempotent; later calls return nil.
func (c *PubSub) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	for _, r := range c.runners {
		r.Stop()
	}
	var first error
	for _, ep := range c.eps {
		if err := ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := c.fabric.Close(); err != nil && first == nil {
		first = err
	}
	c.hub.close()
	c.obs.close()
	return first
}

// Events returns a stream of every delivery in the group, with Topic
// set. From subscription onward the stream sees every delivery the
// WithDeliver callback sees; it is closed when ctx is cancelled or
// the group is closed. A subscriber that falls more than
// DefaultEventStreamBuffer behind loses deliveries (counted in
// Stats.StreamDropped).
func (c *PubSub) Events(ctx context.Context) <-chan Delivery {
	return c.hub.subscribe(ctx)
}

func (c *PubSub) runner(i int) (*pubsub.Runner, error) {
	if i < 0 || i >= len(c.runners) {
		return nil, fmt.Errorf("adaptivegossip: peer index %d out of range [0,%d)", i, len(c.runners))
	}
	return c.runners[i], nil
}

func (c *PubSub) registry(topic Topic) *membership.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	reg, ok := c.regs[topic]
	if !ok {
		reg = membership.NewRegistry()
		c.regs[topic] = reg
	}
	return reg
}

// Subscribe joins peer i to a topic: the peer becomes a gossip target
// for the topic's other subscribers and re-splits its buffer budget.
func (c *PubSub) Subscribe(i int, topic Topic) error {
	r, err := c.runner(i)
	if err != nil {
		return err
	}
	reg := c.registry(topic)
	if err := r.Subscribe(topic, reg); err != nil {
		return err
	}
	reg.Add(c.names[i])
	return nil
}

// Unsubscribe removes peer i from a topic, returning its budget share
// to the remaining subscriptions.
func (c *PubSub) Unsubscribe(i int, topic Topic) error {
	r, err := c.runner(i)
	if err != nil {
		return err
	}
	if err := r.Unsubscribe(topic); err != nil {
		return err
	}
	c.registry(topic).Remove(c.names[i])
	return nil
}

// Publish broadcasts payload from peer i on topic, reporting admission.
func (c *PubSub) Publish(i int, topic Topic, payload []byte) (bool, error) {
	r, err := c.runner(i)
	if err != nil {
		return false, err
	}
	return r.Publish(topic, payload)
}

// State snapshots peer i's subscriptions.
func (c *PubSub) State(i int) ([]TopicState, error) {
	r, err := c.runner(i)
	if err != nil {
		return nil, err
	}
	return r.State(), nil
}

// Stats aggregates the unified counter snapshot across all peers and
// topics: Nodes counts peers, the rate triple summarizes per-topic
// allowances.
func (c *PubSub) Stats() Stats {
	var st Stats
	for _, r := range c.runners {
		for _, ts := range r.State() {
			st.addRates(ts.AllowedRate)
			st.Published += ts.Adaptive.Published
			st.Delivered += ts.Gossip.Delivered
			st.DroppedCapacity += ts.Gossip.DroppedCapacity
			st.DroppedExpired += ts.Gossip.DroppedExpired
			st.MessagesSent += ts.Gossip.MessagesSent
		}
	}
	st.Nodes = len(c.runners)
	st.StreamDropped = c.hub.droppedCount()
	st.addWire(c.fabric)
	st.addPeers(c.obs.peers)
	return st
}

// ClusterHealth returns the group's converged health view — the same
// shape the other facades expose, so monitoring code is deployment
// agnostic. Topic-level groups do not disseminate health digests (a
// peer's budget re-splits across subscriptions faster than digests
// would converge), so the view is always empty.
func (c *PubSub) ClusterHealth() []MemberHealth { return nil }

// DebugAddr returns the bound address of the debug HTTP listener, or
// "" when Config.Observability.DebugAddr was empty.
func (c *PubSub) DebugAddr() string { return c.obs.debugAddr() }

package adaptivegossip

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"adaptivegossip/internal/membership"
	"adaptivegossip/internal/pubsub"
	"adaptivegossip/internal/transport"
)

// Pub/sub re-exports.
type (
	// Topic names a broadcast group in the pub/sub layer.
	Topic = pubsub.Topic
	// TopicState is a per-subscription snapshot.
	TopicState = pubsub.TopicState
)

// TopicDeliverFunc observes pub/sub deliveries across a cluster.
type TopicDeliverFunc func(node NodeID, topic Topic, ev Event)

// PubSubCluster is an in-process publish/subscribe group — the paper's
// motivating scenario as an API. Each topic is an independent adaptive
// broadcast group whose members are exactly the current subscribers;
// each member splits one buffer budget across its subscriptions, so
// every subscribe/unsubscribe shifts the resources the adaptation
// mechanism sees.
type PubSubCluster struct {
	names   []NodeID
	net     *transport.MemNetwork
	runners []*pubsub.Runner

	mu      sync.Mutex
	started bool
	stopped bool
	regs    map[Topic]*membership.Registry
}

// PubSubOption configures NewPubSubCluster.
type PubSubOption func(*pubSubOptions) error

type pubSubOptions struct {
	seed    int64
	deliver TopicDeliverFunc
	prefix  string
}

// WithPubSubSeed fixes the cluster's randomness.
func WithPubSubSeed(seed int64) PubSubOption {
	return func(o *pubSubOptions) error {
		o.seed = seed
		return nil
	}
}

// WithTopicDeliver observes every delivery (callback must be fast and
// thread-safe).
func WithTopicDeliver(fn TopicDeliverFunc) PubSubOption {
	return func(o *pubSubOptions) error {
		o.deliver = fn
		return nil
	}
}

// NewPubSubCluster builds n peers, each with the given total buffer
// budget, connected by an in-memory fabric. No peer is subscribed to
// anything initially.
func NewPubSubCluster(n, bufferBudget int, cfg Config, opts ...PubSubOption) (*PubSubCluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("adaptivegossip: pub/sub cluster needs at least 2 peers, got %d", n)
	}
	cfg = cfg.withDefaults()
	gp := cfg.gossipParams()
	gp.MaxEvents = bufferBudget
	if err := gp.Validate(); err != nil {
		return nil, fmt.Errorf("adaptivegossip: %w", err)
	}
	o := pubSubOptions{seed: 1, prefix: "peer-"}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	net, err := transport.NewMemNetwork(transport.WithMemSeed(uint64(o.seed) + 0x9A9A))
	if err != nil {
		return nil, err
	}
	c := &PubSubCluster{net: net, regs: make(map[Topic]*membership.Registry)}
	for i := 0; i < n; i++ {
		name := NodeID(fmt.Sprintf("%s%02d", o.prefix, i))
		c.names = append(c.names, name)
		var deliver pubsub.DeliverFunc
		if o.deliver != nil {
			fn := o.deliver
			deliver = func(topic Topic, ev Event) { fn(name, topic, ev) }
		}
		gpPeer := cfg.gossipParams()
		gpPeer.MaxEvents = 0 // the budget drives per-topic capacity
		peer, err := pubsub.NewPeer(pubsub.PeerConfig{
			ID:           name,
			BufferBudget: bufferBudget,
			Gossip:       gpPeer,
			Adaptive:     cfg.Adaptive,
			Core:         cfg.Adaptation,
			RNG:          rand.New(rand.NewPCG(uint64(o.seed), uint64(i)+1)),
			Deliver:      deliver,
			Start:        time.Now(),
		})
		if err != nil {
			net.Close()
			return nil, err
		}
		ep, err := net.Endpoint(name)
		if err != nil {
			net.Close()
			return nil, err
		}
		r, err := pubsub.NewRunner(pubsub.RunnerConfig{
			Peer:      peer,
			Transport: ep,
			Period:    cfg.Period,
			PhaseSeed: uint64(o.seed)*48271 + uint64(i) + 1,
		})
		if err != nil {
			net.Close()
			return nil, err
		}
		c.runners = append(c.runners, r)
	}
	return c, nil
}

// Len reports the number of peers.
func (c *PubSubCluster) Len() int { return len(c.runners) }

// Peers returns the peer names in index order.
func (c *PubSubCluster) Peers() []NodeID {
	return append([]NodeID(nil), c.names...)
}

// Start launches every peer. Idempotent.
func (c *PubSubCluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	for _, r := range c.runners {
		r.Start()
	}
}

// Stop terminates every peer and the fabric. Idempotent.
func (c *PubSubCluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	for _, r := range c.runners {
		r.Stop()
	}
	c.net.Close()
}

func (c *PubSubCluster) runner(i int) (*pubsub.Runner, error) {
	if i < 0 || i >= len(c.runners) {
		return nil, fmt.Errorf("adaptivegossip: peer index %d out of range [0,%d)", i, len(c.runners))
	}
	return c.runners[i], nil
}

func (c *PubSubCluster) registry(topic Topic) *membership.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	reg, ok := c.regs[topic]
	if !ok {
		reg = membership.NewRegistry()
		c.regs[topic] = reg
	}
	return reg
}

// Subscribe joins peer i to a topic: the peer becomes a gossip target
// for the topic's other subscribers and re-splits its buffer budget.
func (c *PubSubCluster) Subscribe(i int, topic Topic) error {
	r, err := c.runner(i)
	if err != nil {
		return err
	}
	reg := c.registry(topic)
	if err := r.Subscribe(topic, reg); err != nil {
		return err
	}
	reg.Add(c.names[i])
	return nil
}

// Unsubscribe removes peer i from a topic, returning its budget share
// to the remaining subscriptions.
func (c *PubSubCluster) Unsubscribe(i int, topic Topic) error {
	r, err := c.runner(i)
	if err != nil {
		return err
	}
	if err := r.Unsubscribe(topic); err != nil {
		return err
	}
	c.registry(topic).Remove(c.names[i])
	return nil
}

// Publish broadcasts payload from peer i on topic, reporting admission.
func (c *PubSubCluster) Publish(i int, topic Topic, payload []byte) (bool, error) {
	r, err := c.runner(i)
	if err != nil {
		return false, err
	}
	return r.Publish(topic, payload)
}

// State snapshots peer i's subscriptions.
func (c *PubSubCluster) State(i int) ([]TopicState, error) {
	r, err := c.runner(i)
	if err != nil {
		return nil, err
	}
	return r.State(), nil
}

package adaptivegossip

import (
	"fmt"
	"time"

	"adaptivegossip/internal/core"
	"adaptivegossip/internal/experiments"
	"adaptivegossip/internal/failure"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/recovery"
)

// Re-exported protocol types. The aliases keep a single definition in
// internal/gossip while making the types nameable by API consumers.
type (
	// NodeID identifies a group member.
	NodeID = gossip.NodeID
	// Event is a broadcast message with its gossip age.
	Event = gossip.Event
	// EventID uniquely identifies a broadcast event.
	EventID = gossip.EventID
	// AdaptationConfig holds the adaptive mechanism's parameters
	// (paper Figure 5); see the field docs in internal/core.Params.
	AdaptationConfig = core.Params
	// SimConfig configures a simulated or real-time experiment run.
	SimConfig = experiments.Config
	// SimResult is an experiment run's measurements.
	SimResult = experiments.RunResult
	// MemberStatus is a failure detector's opinion of a group member
	// (alive, suspect or confirmed crashed).
	MemberStatus = gossip.MemberStatus
)

// Re-exported member statuses.
const (
	MemberAlive     = gossip.MemberAlive
	MemberSuspect   = gossip.MemberSuspect
	MemberConfirmed = gossip.MemberConfirmed
)

// Config configures a broadcast node or cluster.
type Config struct {
	// Fanout is the number of gossip targets per round (paper: 4).
	Fanout int
	// Period is the gossip round interval (paper: 5s; scale it down
	// for in-process clusters).
	Period time.Duration
	// BufferCapacity bounds the events buffer (|events|max).
	BufferCapacity int
	// IDCacheCapacity bounds the duplicate-suppression set. Zero
	// derives it from BufferCapacity.
	IDCacheCapacity int
	// MaxAge is the age purge bound k.
	MaxAge int
	// Adaptive enables the paper's adaptation mechanism. Disabled, the
	// node is plain lpbcast with no input bound.
	Adaptive bool
	// Adaptation parametrizes the mechanism. The zero value means
	// DefaultConfig's calibrated defaults.
	Adaptation AdaptationConfig

	// RecoveryEnabled turns on the digest-based anti-entropy subsystem
	// (internal/recovery): every gossip round piggybacks a digest of
	// recently-seen event IDs, and receivers pull events they missed —
	// repairing losses that pure push gossip cannot. Orthogonal to
	// Adaptive.
	RecoveryEnabled bool
	// RecoveryDigestLength is the number of event IDs advertised per
	// gossip message. Zero means the subsystem default.
	RecoveryDigestLength int
	// RecoveryRequestBudget caps the missing events pulled per round.
	// Zero means the subsystem default.
	RecoveryRequestBudget int

	// FailureDetectionEnabled turns on the SWIM-style failure detector
	// (internal/failure): each gossip round the node pings one random
	// view member, escalates unanswered probes through indirect
	// ping-reqs to a suspect→confirm state machine, and piggybacks the
	// resulting alive/suspect/confirm rumors on gossip. Confirmed
	// members are evicted from the node's membership so fanout stops
	// being wasted on the dead. Orthogonal to Adaptive and Recovery.
	FailureDetectionEnabled bool
	// FailureProbePeriod is how often a probe is launched, in gossip
	// rounds. Zero means the subsystem default (every round).
	FailureProbePeriod int
	// FailureSuspicionTimeout is how many rounds a suspect may refute
	// before being confirmed crashed. Zero means the subsystem default.
	FailureSuspicionTimeout int
	// FailureIndirectProbes is k, the number of proxies asked to probe
	// an unresponsive target. Zero means the subsystem default.
	FailureIndirectProbes int
}

// DefaultConfig returns the paper's protocol configuration with a
// 250 ms period (suited to in-process clusters; set Period to 5s for
// paper-faithful deployments) and adaptation enabled.
func DefaultConfig() Config {
	return Config{
		Fanout:         gossip.DefaultFanout,
		Period:         250 * time.Millisecond,
		BufferCapacity: gossip.DefaultMaxEvents,
		MaxAge:         gossip.DefaultMaxAge,
		Adaptive:       true,
		Adaptation:     core.DefaultParams(),
	}
}

func (c Config) withDefaults() Config {
	if c.Adaptation == (AdaptationConfig{}) {
		c.Adaptation = core.DefaultParams()
	}
	return c
}

func (c Config) gossipParams() gossip.Params {
	return gossip.Params{
		Fanout:      c.Fanout,
		Period:      c.Period,
		MaxEvents:   c.BufferCapacity,
		MaxEventIDs: c.IDCacheCapacity,
		MaxAge:      c.MaxAge,
	}
}

func (c Config) recoveryParams() recovery.Params {
	return recovery.Params{
		Enabled:       c.RecoveryEnabled,
		DigestLen:     c.RecoveryDigestLength,
		RequestBudget: c.RecoveryRequestBudget,
	}
}

func (c Config) failureParams() failure.Params {
	return failure.Params{
		Enabled:                c.FailureDetectionEnabled,
		ProbePeriodRounds:      c.FailureProbePeriod,
		SuspicionTimeoutRounds: c.FailureSuspicionTimeout,
		IndirectProbes:         c.FailureIndirectProbes,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.gossipParams().Validate(); err != nil {
		return fmt.Errorf("adaptivegossip: %w", err)
	}
	if c.Adaptive {
		if err := c.Adaptation.Validate(); err != nil {
			return fmt.Errorf("adaptivegossip: %w", err)
		}
	}
	if c.RecoveryEnabled {
		if err := c.recoveryParams().Validate(); err != nil {
			return fmt.Errorf("adaptivegossip: %w", err)
		}
	}
	if c.FailureDetectionEnabled {
		if err := c.failureParams().Validate(); err != nil {
			return fmt.Errorf("adaptivegossip: %w", err)
		}
	}
	return nil
}

// DefaultSimConfig returns the paper's experimental configuration
// (60 nodes, fanout 4, 5-second rounds, 30 msg/s aggregate offered
// load).
func DefaultSimConfig() SimConfig {
	return experiments.DefaultConfig()
}

// Simulate runs one deterministic discrete-event experiment — the
// harness behind the paper's simulation results. Virtual time makes
// even 10-minute scenarios complete in well under a second.
func Simulate(cfg SimConfig) (SimResult, error) {
	return experiments.Run(cfg)
}

// SimulateRealtime runs the same experiment on the goroutine runtime
// over the in-memory transport — the paper's prototype-validation mode.
// Durations are wall-clock; scale them down accordingly.
func SimulateRealtime(cfg SimConfig) (SimResult, error) {
	return experiments.RunRuntime(cfg)
}

package adaptivegossip

import (
	"fmt"
	"time"

	"adaptivegossip/internal/core"
	"adaptivegossip/internal/experiments"
	"adaptivegossip/internal/failure"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/health"
	"adaptivegossip/internal/recovery"
	"adaptivegossip/internal/transport"
)

// Re-exported protocol types. The aliases keep a single definition in
// internal/gossip while making the types nameable by API consumers.
type (
	// NodeID identifies a group member.
	NodeID = gossip.NodeID
	// Event is a broadcast message with its gossip age.
	Event = gossip.Event
	// EventID uniquely identifies a broadcast event.
	EventID = gossip.EventID
	// AdaptationConfig holds the adaptive mechanism's parameters
	// (paper Figure 5); see the field docs in internal/core.Params.
	AdaptationConfig = core.Params
	// SimConfig configures a simulated or real-time experiment run.
	SimConfig = experiments.Config
	// SimResult is an experiment run's measurements.
	SimResult = experiments.RunResult
	// MemberStatus is a failure detector's opinion of a group member
	// (alive, suspect or confirmed crashed).
	MemberStatus = gossip.MemberStatus
)

// Re-exported member statuses.
const (
	MemberAlive     = gossip.MemberAlive
	MemberSuspect   = gossip.MemberSuspect
	MemberConfirmed = gossip.MemberConfirmed
)

// DefaultPeriod is the gossip round interval applied when Config.Period
// is zero — suited to in-process clusters; set 5s for paper-faithful
// deployments.
const DefaultPeriod = 250 * time.Millisecond

// RecoveryConfig groups the anti-entropy subsystem's knobs
// (internal/recovery): with Enabled set, every gossip round piggybacks
// a digest of recently-seen event IDs and receivers pull events they
// missed — repairing losses that pure push gossip cannot. Orthogonal to
// Adaptive and Failure.
type RecoveryConfig struct {
	// Enabled turns the subsystem on.
	Enabled bool
	// DigestLength is the number of event IDs advertised per gossip
	// message. Zero means the subsystem default.
	DigestLength int
	// RequestBudget caps the missing events pulled per round. Zero
	// means the subsystem default.
	RequestBudget int
}

func (c RecoveryConfig) params() recovery.Params {
	return recovery.Params{
		Enabled:       c.Enabled,
		DigestLen:     c.DigestLength,
		RequestBudget: c.RequestBudget,
	}
}

// FailureConfig groups the SWIM-style failure detector's knobs
// (internal/failure): with Enabled set, each gossip round the node
// pings one random view member, escalates unanswered probes through
// indirect ping-reqs to a suspect→confirm state machine, and
// piggybacks the resulting alive/suspect/confirm rumors on gossip.
// Confirmed members are evicted from the node's membership so fanout
// stops being wasted on the dead. Orthogonal to Adaptive and Recovery.
type FailureConfig struct {
	// Enabled turns the detector on.
	Enabled bool
	// ProbePeriod is how often a probe is launched, in gossip rounds.
	// Zero means the subsystem default (every round).
	ProbePeriod int
	// SuspicionTimeout is how many rounds a suspect may refute before
	// being confirmed crashed. Zero means the subsystem default.
	SuspicionTimeout int
	// IndirectProbes is k, the number of proxies asked to probe an
	// unresponsive target. Zero means the subsystem default.
	IndirectProbes int
}

func (c FailureConfig) params() failure.Params {
	return failure.Params{
		Enabled:                c.Enabled,
		ProbePeriodRounds:      c.ProbePeriod,
		SuspicionTimeoutRounds: c.SuspicionTimeout,
		IndirectProbes:         c.IndirectProbes,
	}
}

// ObservabilityConfig groups the protocol observability layer's knobs:
// an opt-in debug HTTP listener (expvar-style JSON on /debug/vars,
// Prometheus text on /metrics, pprof on /debug/pprof/, rumor traces on
// /debug/gossip/traces) and a sampling rumor-lifecycle tracer. The
// zero value keeps everything off; the alloc-free hot-path histograms
// are always collected (they are part of the protocol loop and cost a
// few atomic adds per round).
type ObservabilityConfig struct {
	// DebugAddr, when non-empty, binds the debug HTTP listener there
	// (e.g. "127.0.0.1:6060"; ":0" picks a free port, see
	// Node.DebugAddr for the bound address). Empty disables the
	// listener.
	DebugAddr string
	// TraceSampleRate is the fraction of rumors whose lifecycle
	// (publish → first-send → receive → deliver/drop) is traced, in
	// [0, 1]. Sampling is deterministic per event ID, so every member
	// of a group traces the same rumors. Zero disables tracing.
	TraceSampleRate float64
	// TraceBufferSize bounds the in-memory trace ring; the oldest
	// records are overwritten when it fills. Zero means the default
	// (4096 records).
	TraceBufferSize int
	// HealthDigests enables gossip-disseminated health digests: each
	// member periodically folds its counters and delivery-hop histogram
	// into a compact summary piggybacked on outgoing gossip, so every
	// member converges to a cluster-wide health view, served at
	// /debug/gossip/cluster on the debug listener.
	HealthDigests bool
	// HealthDigestsPerMessage bounds how many digests ride one gossip
	// message (the member's own plus relayed ones). Zero means the
	// subsystem default.
	HealthDigestsPerMessage int
	// HealthRefreshRounds is how many gossip rounds pass between
	// re-snapshots of a member's own digest. Zero means the subsystem
	// default (every round).
	HealthRefreshRounds int
}

// Validate reports the first configuration error.
func (c ObservabilityConfig) Validate() error {
	if c.TraceSampleRate < 0 || c.TraceSampleRate > 1 {
		return fmt.Errorf("adaptivegossip: trace sample rate %v out of [0,1]", c.TraceSampleRate)
	}
	if c.TraceBufferSize < 0 {
		return fmt.Errorf("adaptivegossip: trace buffer size %d must not be negative", c.TraceBufferSize)
	}
	if c.HealthDigestsPerMessage < 0 {
		return fmt.Errorf("adaptivegossip: health digests per message %d must not be negative", c.HealthDigestsPerMessage)
	}
	if c.HealthRefreshRounds < 0 {
		return fmt.Errorf("adaptivegossip: health refresh rounds %d must not be negative", c.HealthRefreshRounds)
	}
	return nil
}

// healthParams maps the facade knobs onto the subsystem configuration.
func (c ObservabilityConfig) healthParams() health.Params {
	return health.Params{
		Enabled:           c.HealthDigests,
		DigestsPerMessage: c.HealthDigestsPerMessage,
		RefreshRounds:     c.HealthRefreshRounds,
	}
}

// Config configures a broadcast node, cluster or pub/sub group. Knobs
// are grouped per mechanism: the base protocol's parameters live at the
// top level; each subsystem (Adaptation, Recovery, Failure) owns a
// nested sub-config.
//
// The zero Config is usable: zero-valued protocol fields are normalized
// to the paper's calibrated defaults at construction, and every
// subsystem defaults to off. DefaultConfig additionally enables the
// adaptation mechanism.
type Config struct {
	// Fanout is the number of gossip targets per round (paper: 4).
	// Zero means the default.
	Fanout int
	// Period is the gossip round interval (paper: 5s). Zero means
	// DefaultPeriod.
	Period time.Duration
	// BufferCapacity bounds the events buffer (|events|max). Zero
	// means the default.
	BufferCapacity int
	// IDCacheCapacity bounds the duplicate-suppression set. Zero
	// derives it from BufferCapacity.
	IDCacheCapacity int
	// MaxAge is the age purge bound k. Zero means the default.
	MaxAge int
	// Adaptive enables the paper's adaptation mechanism. Disabled, the
	// node is plain lpbcast with no input bound.
	Adaptive bool
	// Adaptation parametrizes the mechanism. The zero value means
	// DefaultConfig's calibrated defaults.
	Adaptation AdaptationConfig
	// Recovery configures the digest-based anti-entropy subsystem.
	Recovery RecoveryConfig
	// Failure configures the SWIM-style failure detector.
	Failure FailureConfig
	// Observability configures the debug listener and rumor tracing.
	Observability ObservabilityConfig
	// Transport configures wire-level behavior applied to the group's
	// message fabric (built-in or provided via WithTransport).
	Transport TransportConfig
}

// TransportConfig groups the wire-level knobs Config pushes into the
// group's transport fabric.
type TransportConfig struct {
	// Compression names the payload compression applied to the event
	// section of every encoded message (wire v5): "" or "none" for
	// uncompressed frames, "flate" for DEFLATE. Requires a fabric that
	// serializes and exposes the compression seam — the built-in UDP
	// transport; the memory fabric and seam-less custom fabrics reject
	// real compression at construction. Decoding always accepts
	// compressed frames regardless of this setting.
	Compression string
}

// Validate reports the first configuration error.
func (c TransportConfig) Validate() error {
	if _, err := transport.CompressorByName(c.Compression); err != nil {
		return fmt.Errorf("adaptivegossip: Config.Transport: %w", err)
	}
	return nil
}

// DefaultConfig returns the paper's protocol configuration with a
// DefaultPeriod round interval and adaptation enabled.
func DefaultConfig() Config {
	return Config{
		Fanout:         gossip.DefaultFanout,
		Period:         DefaultPeriod,
		BufferCapacity: gossip.DefaultMaxEvents,
		MaxAge:         gossip.DefaultMaxAge,
		Adaptive:       true,
		Adaptation:     core.DefaultParams(),
	}
}

// withDefaults normalizes the configuration: every zero-valued protocol
// field takes its calibrated default. Explicit normalization (rather
// than comparing against the zero Config) keeps partially-filled
// configs predictable and survives Config gaining non-comparable
// fields.
func (c Config) withDefaults() Config {
	if c.Fanout == 0 {
		c.Fanout = gossip.DefaultFanout
	}
	if c.Period == 0 {
		c.Period = DefaultPeriod
	}
	if c.BufferCapacity == 0 {
		c.BufferCapacity = gossip.DefaultMaxEvents
	}
	if c.MaxAge == 0 {
		c.MaxAge = gossip.DefaultMaxAge
	}
	if c.Adaptation == (AdaptationConfig{}) {
		c.Adaptation = core.DefaultParams()
	}
	return c
}

func (c Config) gossipParams() gossip.Params {
	return gossip.Params{
		Fanout:      c.Fanout,
		Period:      c.Period,
		MaxEvents:   c.BufferCapacity,
		MaxEventIDs: c.IDCacheCapacity,
		MaxAge:      c.MaxAge,
	}
}

// Validate reports the first configuration error. Zero-valued fields
// are normalized to their defaults before checking, so only explicitly
// invalid values (negative bounds, out-of-range parameters) fail.
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.gossipParams().Validate(); err != nil {
		return fmt.Errorf("adaptivegossip: %w", err)
	}
	if c.Adaptive {
		if err := c.Adaptation.Validate(); err != nil {
			return fmt.Errorf("adaptivegossip: %w", err)
		}
	}
	if c.Recovery.Enabled {
		if err := c.Recovery.params().Validate(); err != nil {
			return fmt.Errorf("adaptivegossip: %w", err)
		}
	}
	if c.Failure.Enabled {
		if err := c.Failure.params().Validate(); err != nil {
			return fmt.Errorf("adaptivegossip: %w", err)
		}
	}
	if err := c.Observability.Validate(); err != nil {
		return err
	}
	if err := c.Transport.Validate(); err != nil {
		return err
	}
	return nil
}

// DefaultSimConfig returns the paper's experimental configuration
// (60 nodes, fanout 4, 5-second rounds, 30 msg/s aggregate offered
// load).
func DefaultSimConfig() SimConfig {
	return experiments.DefaultConfig()
}

// Simulate runs one deterministic discrete-event experiment — the
// harness behind the paper's simulation results. Virtual time makes
// even 10-minute scenarios complete in well under a second.
func Simulate(cfg SimConfig) (SimResult, error) {
	return experiments.Run(cfg)
}

// SimulateRealtime runs the same experiment on the goroutine runtime
// over the in-memory transport — the paper's prototype-validation mode.
// Durations are wall-clock; scale them down accordingly.
func SimulateRealtime(cfg SimConfig) (SimResult, error) {
	return experiments.RunRuntime(cfg)
}

package ratelimit

import (
	"testing"
	"time"
)

var t0 = time.Unix(0, 0)

func newBucket(t *testing.T, max, rate float64) *Bucket {
	t.Helper()
	b, err := NewBucket(max, rate, t0)
	if err != nil {
		t.Fatalf("NewBucket: %v", err)
	}
	return b
}

func TestNewBucketValidation(t *testing.T) {
	if _, err := NewBucket(0, 1, t0); err == nil {
		t.Fatal("max=0: want error")
	}
	if _, err := NewBucket(-1, 1, t0); err == nil {
		t.Fatal("max<0: want error")
	}
	if _, err := NewBucket(5, -1, t0); err == nil {
		t.Fatal("rate<0: want error")
	}
}

func TestBucketStartsFull(t *testing.T) {
	b := newBucket(t, 3, 1)
	for i := 0; i < 3; i++ {
		if !b.TryTake(t0) {
			t.Fatalf("take %d failed on full bucket", i)
		}
	}
	if b.TryTake(t0) {
		t.Fatal("take succeeded on empty bucket")
	}
}

func TestBucketRefill(t *testing.T) {
	b := newBucket(t, 5, 2) // 2 tokens/s
	for i := 0; i < 5; i++ {
		b.TryTake(t0)
	}
	if b.TryTake(t0.Add(400 * time.Millisecond)) {
		t.Fatal("0.8 tokens should not allow a take")
	}
	if !b.TryTake(t0.Add(600 * time.Millisecond)) {
		t.Fatal("1.2 tokens should allow a take")
	}
	// Refill caps at max.
	if got := b.Tokens(t0.Add(time.Hour)); got != 5 {
		t.Fatalf("tokens after long idle = %v, want cap 5", got)
	}
}

func TestBucketClockGoingBackwardsIsIgnored(t *testing.T) {
	b := newBucket(t, 2, 1)
	b.TryTake(t0.Add(time.Second))
	before := b.Tokens(t0.Add(time.Second))
	if got := b.Tokens(t0); got != before {
		t.Fatalf("tokens changed on clock rewind: %v -> %v", before, got)
	}
}

func TestBucketSetRate(t *testing.T) {
	b := newBucket(t, 10, 1)
	for i := 0; i < 10; i++ {
		b.TryTake(t0)
	}
	// Accrue 2s at rate 1, then switch to rate 4.
	if err := b.SetRate(4, t0.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	// 2 (old rate) + 4×1s (new rate) = 6 tokens at t=3s.
	if got := b.Tokens(t0.Add(3 * time.Second)); got < 5.99 || got > 6.01 {
		t.Fatalf("tokens = %v, want 6", got)
	}
	if err := b.SetRate(-1, t0); err == nil {
		t.Fatal("negative rate accepted")
	}
	if b.Rate() != 4 {
		t.Fatalf("rate = %v, want 4", b.Rate())
	}
}

func TestBucketSetMax(t *testing.T) {
	b := newBucket(t, 10, 0)
	if err := b.SetMax(3, t0); err != nil {
		t.Fatal(err)
	}
	if got := b.Tokens(t0); got != 3 {
		t.Fatalf("tokens = %v, want clamp to 3", got)
	}
	if err := b.SetMax(0, t0); err == nil {
		t.Fatal("max=0 accepted")
	}
	if b.Max() != 3 {
		t.Fatalf("max = %v", b.Max())
	}
}

// TestBucketConservation: over any schedule of takes, the number of
// successful takes never exceeds initial + rate×elapsed (no token is
// minted from nothing).
func TestBucketConservation(t *testing.T) {
	const (
		max  = 4.0
		rate = 7.0
	)
	b := newBucket(t, max, rate)
	takes := 0
	now := t0
	for i := 0; i < 10000; i++ {
		now = now.Add(time.Duration(i%13) * time.Millisecond)
		if b.TryTake(now) {
			takes++
		}
	}
	elapsed := now.Sub(t0).Seconds()
	budget := max + rate*elapsed
	if float64(takes) > budget+1e-6 {
		t.Fatalf("takes %d exceed token budget %v", takes, budget)
	}
	// And the bucket was not pathologically stingy: at least the refill
	// from full seconds must have been usable.
	if float64(takes) < rate*elapsed-max-1 {
		t.Fatalf("takes %d far below budget %v", takes, budget)
	}
}

// Package ratelimit implements the token-bucket input-rate bound of
// Figure 3 of "Adaptive Gossip-Based Broadcast" (Rodrigues et al.,
// DSN 2003). The adaptive mechanism of internal/core adjusts the
// bucket's refill rate at runtime; the bucket's average occupancy
// (avgTokens in the paper) doubles as the allowance-usage signal.
package ratelimit

import (
	"fmt"
	"time"
)

// Bucket is a token bucket with a continuously accrued refill.
//
// The paper restores one token every 1000/rate milliseconds; continuous
// accrual at `rate` tokens per second is the fluid limit of that rule
// and avoids quantization artifacts when the rate is retuned midway
// through a refill interval.
//
// Bucket is not safe for concurrent use.
type Bucket struct {
	max    float64
	tokens float64
	rate   float64 // tokens per second
	last   time.Time
}

// NewBucket returns a full bucket holding max tokens that refills at
// rate tokens per second starting from now.
func NewBucket(max, rate float64, now time.Time) (*Bucket, error) {
	if max <= 0 {
		return nil, fmt.Errorf("ratelimit: max must be positive, got %v", max)
	}
	if rate < 0 {
		return nil, fmt.Errorf("ratelimit: rate must be non-negative, got %v", rate)
	}
	return &Bucket{max: max, tokens: max, rate: rate, last: now}, nil
}

func (b *Bucket) advance(now time.Time) {
	dt := now.Sub(b.last)
	if dt <= 0 {
		return
	}
	b.last = now
	b.tokens += b.rate * dt.Seconds()
	if b.tokens > b.max {
		b.tokens = b.max
	}
}

// TryTake consumes one token if available and reports whether it did.
func (b *Bucket) TryTake(now time.Time) bool {
	b.advance(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the current token count after accruing refill up to
// now.
func (b *Bucket) Tokens(now time.Time) float64 {
	b.advance(now)
	return b.tokens
}

// Rate reports the refill rate in tokens per second.
func (b *Bucket) Rate() float64 { return b.rate }

// SetRate retunes the refill rate, first crediting refill accrued at
// the old rate up to now.
func (b *Bucket) SetRate(rate float64, now time.Time) error {
	if rate < 0 {
		//gossip:allocok invalid-argument error path; hot callers clamp to positive rates
		return fmt.Errorf("ratelimit: rate must be non-negative, got %v", rate)
	}
	b.advance(now)
	b.rate = rate
	return nil
}

// Max reports the bucket capacity.
func (b *Bucket) Max() float64 { return b.max }

// SetMax changes the bucket capacity, clamping stored tokens.
func (b *Bucket) SetMax(max float64, now time.Time) error {
	if max <= 0 {
		return fmt.Errorf("ratelimit: max must be positive, got %v", max)
	}
	b.advance(now)
	b.max = max
	if b.tokens > max {
		b.tokens = max
	}
	return nil
}

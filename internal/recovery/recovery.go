// Package recovery implements digest-based anti-entropy pull repair on
// top of the push-gossip substrate (internal/gossip).
//
// Pure push gossip loses events for good when every copy of a
// transmission window is dropped — the iid-loss and partition scenarios
// internal/sim models. The adaptation mechanism of the paper can only
// slow senders down; it cannot repair. Push-pull hybrids close exactly
// this gap with low overhead (Haeupler, "Simple, Fast and Deterministic
// Gossip and Rumor Spreading"): each gossip round piggybacks a compact
// digest of recently-seen event identifiers, receivers diff the digest
// against their own delivered set and pull the missing events from the
// digest's sender, and senders serve retransmissions from a bounded,
// age-GC'd store that outlives the events buffer.
//
// The Engine is a gossip.Extension plus a queue of outgoing control
// messages (requests and responses). Drivers must drain the queue —
// core.AdaptiveNode does this from Tick and Receive — and transmit the
// returned messages; the engine itself never touches a transport.
//
// Like the rest of the protocol stack, an Engine is single-threaded:
// the owning driver serializes all hook and drain calls. All internal
// iteration is in deterministic order so simulation runs stay
// reproducible under a seeded RNG.
package recovery

import (
	"fmt"

	"adaptivegossip/internal/gossip"
)

// Defaults for Params. DigestLen and RequestBudget bound the per-round
// wire overhead; RetainRounds and StoreCapacity bound the repair
// memory.
const (
	DefaultDigestLen     = 128
	DefaultRequestBudget = 64
	DefaultRetainRounds  = 30
	DefaultStoreCapacity = 1024
	DefaultRetryRounds   = 2
	DefaultGiveUpRounds  = 20
	DefaultMaxMissing    = 512
)

// Params configures the recovery engine. The zero value of every field
// except Enabled means "use the default".
type Params struct {
	// Enabled turns the subsystem on. A disabled engine is never built;
	// the flag exists so configurations can carry recovery settings
	// alongside the protocol's.
	Enabled bool
	// DigestLen is the number of recently-seen event identifiers
	// advertised in each outgoing gossip message.
	DigestLen int
	// RequestBudget caps the missing identifiers requested per round
	// across all targets — the pull bandwidth bound.
	RequestBudget int
	// RetainRounds is the retransmission store's GC horizon: events
	// observed more than this many rounds ago are dropped.
	RetainRounds int
	// StoreCapacity bounds the retransmission store (events). When
	// full, the oldest stored event is evicted.
	StoreCapacity int
	// RetryRounds is the number of rounds to wait for a response before
	// re-requesting a missing event from its latest advertiser.
	RetryRounds int
	// GiveUpRounds bounds how long a missing event is chased; beyond
	// it the identifier is dropped from the missing set.
	GiveUpRounds int
	// MaxMissing bounds the missing-event tracking set.
	MaxMissing int
}

// withDefaults fills zero-valued fields.
func (p Params) withDefaults() Params {
	if p.DigestLen == 0 {
		p.DigestLen = DefaultDigestLen
	}
	if p.RequestBudget == 0 {
		p.RequestBudget = DefaultRequestBudget
	}
	if p.RetainRounds == 0 {
		p.RetainRounds = DefaultRetainRounds
	}
	if p.StoreCapacity == 0 {
		p.StoreCapacity = DefaultStoreCapacity
	}
	if p.RetryRounds == 0 {
		p.RetryRounds = DefaultRetryRounds
	}
	if p.GiveUpRounds == 0 {
		p.GiveUpRounds = DefaultGiveUpRounds
	}
	if p.MaxMissing == 0 {
		p.MaxMissing = DefaultMaxMissing
	}
	return p
}

// Validate reports the first configuration error.
func (p Params) Validate() error {
	p = p.withDefaults()
	if p.DigestLen < 0 {
		return fmt.Errorf("recovery: digest length must be non-negative, got %d", p.DigestLen)
	}
	if p.RequestBudget < 0 {
		return fmt.Errorf("recovery: request budget must be non-negative, got %d", p.RequestBudget)
	}
	if p.RetainRounds < 0 || p.StoreCapacity < 0 || p.RetryRounds < 0 ||
		p.GiveUpRounds < 0 || p.MaxMissing < 0 {
		return fmt.Errorf("recovery: bounds must be non-negative")
	}
	return nil
}

// Stats counts recovery activity since the engine was created.
type Stats struct {
	DigestsSent       uint64 // digests piggybacked on outgoing gossip (one per tick)
	DigestsReceived   uint64 // gossip messages carrying a digest
	RequestsSent      uint64 // request messages emitted
	IDsRequested      uint64 // identifiers requested (≤ budget per round)
	RequestsReceived  uint64 // request messages handled
	ResponsesSent     uint64 // response messages emitted
	ResponsesReceived uint64 // response messages handled
	EventsServed      uint64 // events retransmitted to requesters
	EventsUnserved    uint64 // requested identifiers not in the store
	EventsRecovered   uint64 // tracked-missing events obtained via responses
	MissingGaveUp     uint64 // missing identifiers dropped after GiveUpRounds
	MissingOverflow   uint64 // advertisements ignored because MaxMissing was hit
	StoreEvicted      uint64 // store evictions (capacity and GC)
}

// storeEntry pairs a retained event with the round it was observed.
type storeEntry struct {
	ev    gossip.Event
	round uint64
}

// store is the bounded retransmission store: a FIFO over observation
// order with capacity- and age-based eviction. Re-observing a stored
// event is a no-op, so the FIFO order is also round order.
type store struct {
	capacity int
	entries  map[gossip.EventID]gossip.Event
	order    []storeEntry
	head     int // index of the oldest live entry in order
}

func newStore(capacity int) *store {
	return &store{
		capacity: capacity,
		entries:  make(map[gossip.EventID]gossip.Event, capacity),
	}
}

func (s *store) len() int { return len(s.entries) }

// add retains ev, evicting the oldest entry when full. It reports
// whether the event was new and how many entries were evicted.
func (s *store) add(ev gossip.Event, round uint64) (added bool, evicted int) {
	if s.capacity <= 0 {
		return false, 0
	}
	if _, ok := s.entries[ev.ID]; ok {
		return false, 0
	}
	for len(s.entries) >= s.capacity {
		s.popOldest()
		evicted++
	}
	s.entries[ev.ID] = ev
	s.order = append(s.order, storeEntry{ev: ev, round: round})
	return true, evicted
}

func (s *store) get(id gossip.EventID) (gossip.Event, bool) {
	ev, ok := s.entries[id]
	return ev, ok
}

// popOldest removes the oldest live entry.
func (s *store) popOldest() {
	for s.head < len(s.order) {
		e := s.order[s.head]
		s.head++
		if _, ok := s.entries[e.ev.ID]; ok {
			delete(s.entries, e.ev.ID)
			break
		}
	}
	s.compact()
}

// gc drops entries observed more than retain rounds before now.
func (s *store) gc(now uint64, retain int) (evicted int) {
	for s.head < len(s.order) {
		e := s.order[s.head]
		if e.round+uint64(retain) >= now {
			break
		}
		s.head++
		if _, ok := s.entries[e.ev.ID]; ok {
			delete(s.entries, e.ev.ID)
			evicted++
		}
	}
	s.compact()
	return evicted
}

// compact reclaims the consumed prefix of order once it dominates.
func (s *store) compact() {
	if s.head > len(s.order)/2 && s.head > 32 {
		s.order = append(s.order[:0], s.order[s.head:]...)
		s.head = 0
	}
}

// missingEntry tracks one event known to exist but not yet delivered.
type missingEntry struct {
	source     gossip.NodeID // latest advertiser, the pull target
	firstRound uint64        // round the id was first advertised to us
	lastReq    uint64        // round of the last request, 0 = never
}

// Engine is the per-node anti-entropy state machine. It implements
// gossip.Extension (digest piggybacking, digest diffing, store
// maintenance) and queues the control messages drivers must send.
type Engine struct {
	params Params
	digest *gossip.IDCache // recently-seen ids, digest source
	store  *store
	round  uint64

	missing   map[gossip.EventID]*missingEntry
	missOrder []gossip.EventID // FIFO of advertisement order; may hold stale ids

	pending []gossip.Outgoing
	stats   Stats
}

// NewEngine builds an engine from params (defaults applied).
func NewEngine(params Params) (*Engine, error) {
	params = params.withDefaults()
	if err := params.Validate(); err != nil {
		return nil, err
	}
	digest, err := gossip.NewIDCache(params.DigestLen)
	if err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	return &Engine{
		params:  params,
		digest:  digest,
		store:   newStore(params.StoreCapacity),
		missing: make(map[gossip.EventID]*missingEntry),
	}, nil
}

// Params returns the engine's effective parameters.
func (e *Engine) Params() Params { return e.params }

// Stats returns a copy of the activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// StoreLen reports the number of retained events.
func (e *Engine) StoreLen() int { return e.store.len() }

// MissingLen reports the number of tracked missing events.
func (e *Engine) MissingLen() int { return len(e.missing) }

// observe retains an event for retransmission and records its id in
// the digest source.
func (e *Engine) observe(ev gossip.Event) {
	_, evicted := e.store.add(ev, e.round)
	e.stats.StoreEvicted += uint64(evicted)
	e.digest.Add(ev.ID)
}

// OnTick advances the engine round, GCs the store, piggybacks the
// digest on the outgoing gossip message and queues this round's pull
// requests (subject to RequestBudget).
func (e *Engine) OnTick(n *gossip.Node, out *gossip.Message) {
	e.round++
	e.stats.StoreEvicted += uint64(e.store.gc(e.round, e.params.RetainRounds))
	// The buffer snapshot passes through here every round, which is how
	// locally-broadcast events (no OnReceive hook) enter the store.
	for _, ev := range out.Events {
		e.observe(ev)
	}
	if ids := e.digest.IDs(); len(ids) > 0 {
		out.Digest = ids
		e.stats.DigestsSent++
	}
	e.buildRequests(n)
}

// OnReceive handles the three message kinds: gossip (store events,
// diff the digest), requests (queue a response from the store) and
// responses (settle the missing set; the events themselves were
// already delivered by the node's normal receive path).
func (e *Engine) OnReceive(n *gossip.Node, in *gossip.Message) {
	switch in.Kind {
	case gossip.KindGossip:
		for _, ev := range in.Events {
			e.observe(ev)
		}
		if len(in.Digest) > 0 {
			e.stats.DigestsReceived++
			e.diffDigest(n, in.From, in.Digest)
		}
	case gossip.KindRecoveryRequest:
		e.stats.RequestsReceived++
		e.serveRequest(n, in)
	case gossip.KindRecoveryResponse:
		e.stats.ResponsesReceived++
		for _, ev := range in.Events {
			if _, tracked := e.missing[ev.ID]; tracked {
				delete(e.missing, ev.ID)
				e.stats.EventsRecovered++
			}
			e.observe(ev)
		}
	}
}

// OnEvicted retains buffer eviction victims: an event pushed out of the
// events buffer is exactly the kind of event that may still need to be
// served to a peer that lost every push copy.
func (e *Engine) OnEvicted(n *gossip.Node, evicted []gossip.Event, reason gossip.EvictReason) {
	for _, ev := range evicted {
		e.observe(ev)
	}
}

// diffDigest records advertised ids the node has not seen.
func (e *Engine) diffDigest(n *gossip.Node, from gossip.NodeID, digest []gossip.EventID) {
	for _, id := range digest {
		if n.Seen(id) {
			continue
		}
		if m, ok := e.missing[id]; ok {
			m.source = from // prefer the freshest advertiser
			continue
		}
		if len(e.missing) >= e.params.MaxMissing {
			e.stats.MissingOverflow++
			continue
		}
		e.missing[id] = &missingEntry{source: from, firstRound: e.round}
		e.missOrder = append(e.missOrder, id)
	}
}

// serveRequest answers a retransmission request from the store.
func (e *Engine) serveRequest(n *gossip.Node, in *gossip.Message) {
	var events []gossip.Event
	for _, id := range in.Request {
		ev, ok := e.store.get(id)
		if !ok {
			e.stats.EventsUnserved++
			continue
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		return
	}
	e.stats.ResponsesSent++
	e.stats.EventsServed += uint64(len(events))
	e.pending = append(e.pending, gossip.Outgoing{
		To: in.From,
		Msg: &gossip.Message{
			Kind:   gossip.KindRecoveryResponse,
			From:   n.ID(),
			Round:  e.round,
			Events: events,
		},
	})
}

// buildRequests walks the missing set in advertisement order and queues
// up to RequestBudget identifiers as request messages, batched per
// target peer. Ids delivered in the meantime are dropped; ids chased
// longer than GiveUpRounds are abandoned.
func (e *Engine) buildRequests(n *gossip.Node) {
	if len(e.missing) == 0 {
		e.compactMissOrder()
		return
	}
	var (
		budget   = e.params.RequestBudget
		targets  []gossip.NodeID
		batches  = make(map[gossip.NodeID][]gossip.EventID)
		selected int
	)
	for _, id := range e.missOrder {
		if selected >= budget {
			break
		}
		m, ok := e.missing[id]
		if !ok {
			continue // stale order entry: recovered, given up, or re-added later
		}
		if m.lastReq == e.round {
			continue // duplicate order entry already handled this round
		}
		if n.Seen(id) {
			delete(e.missing, id) // arrived through normal push gossip
			continue
		}
		if e.round-m.firstRound >= uint64(e.params.GiveUpRounds) {
			delete(e.missing, id)
			e.stats.MissingGaveUp++
			continue
		}
		if m.lastReq != 0 && e.round-m.lastReq < uint64(e.params.RetryRounds) {
			continue // request outstanding, give the response time to arrive
		}
		m.lastReq = e.round
		if _, known := batches[m.source]; !known {
			targets = append(targets, m.source)
		}
		batches[m.source] = append(batches[m.source], id)
		selected++
	}
	e.compactMissOrder()
	for _, target := range targets {
		ids := batches[target]
		e.stats.RequestsSent++
		e.stats.IDsRequested += uint64(len(ids))
		e.pending = append(e.pending, gossip.Outgoing{
			To: target,
			Msg: &gossip.Message{
				Kind:    gossip.KindRecoveryRequest,
				From:    n.ID(),
				Round:   e.round,
				Request: ids,
			},
		})
	}
}

// compactMissOrder drops stale order entries once they dominate.
func (e *Engine) compactMissOrder() {
	if len(e.missOrder) < 64 || len(e.missOrder) < 2*len(e.missing) {
		return
	}
	live := e.missOrder[:0]
	for _, id := range e.missOrder {
		if _, ok := e.missing[id]; ok {
			live = append(live, id)
		}
	}
	e.missOrder = live
}

// TakeOutgoing drains the queued control messages (requests and
// responses). Drivers call it after every Tick and Receive and transmit
// the returned messages.
func (e *Engine) TakeOutgoing() []gossip.Outgoing {
	if len(e.pending) == 0 {
		return nil
	}
	out := e.pending
	e.pending = nil
	return out
}

// DiffDigest reports which of the advertised identifiers the node has
// not seen. It is the read-only core of the receiver-side digest path,
// exposed for tests and benchmarks.
func DiffDigest(n *gossip.Node, digest []gossip.EventID) []gossip.EventID {
	var missing []gossip.EventID
	for _, id := range digest {
		if !n.Seen(id) {
			missing = append(missing, id)
		}
	}
	return missing
}

var _ gossip.Extension = (*Engine)(nil)

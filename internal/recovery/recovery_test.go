package recovery

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/membership"
)

func newTestNode(t *testing.T, id gossip.NodeID, peers gossip.PeerSampler, eng *Engine) *gossip.Node {
	t.Helper()
	n, err := gossip.NewNode(id,
		gossip.Params{Fanout: 2, Period: time.Second, MaxEvents: 8, MaxAge: 5},
		peers, rand.New(rand.NewPCG(1, uint64(len(id)))),
		gossip.WithExtensions(eng))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func newTestEngine(t *testing.T, p Params) *Engine {
	t.Helper()
	p.Enabled = true
	eng, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{}).Validate(); err != nil {
		t.Errorf("zero params should validate via defaults, got %v", err)
	}
	if err := (Params{DigestLen: -1}).Validate(); err == nil {
		t.Error("negative digest length should fail validation")
	}
	if err := (Params{RequestBudget: -2}).Validate(); err == nil {
		t.Error("negative budget should fail validation")
	}
	p := Params{}.withDefaults()
	if p.DigestLen != DefaultDigestLen || p.RequestBudget != DefaultRequestBudget {
		t.Errorf("defaults not applied: %+v", p)
	}
}

// TestDigestPiggyback: a ticking node with the engine advertises its
// buffered events in the outgoing digest.
func TestDigestPiggyback(t *testing.T) {
	reg := membership.NewRegistry("a", "b")
	eng := newTestEngine(t, Params{})
	n := newTestNode(t, "a", reg, eng)

	ev := n.Broadcast([]byte("x"))
	outs := n.Tick()
	if len(outs) == 0 {
		t.Fatal("expected fanout targets")
	}
	digest := outs[0].Msg.Digest
	found := false
	for _, id := range digest {
		if id == ev.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("digest %v does not advertise broadcast event %s", digest, ev.ID)
	}
	if eng.Stats().DigestsSent != 1 {
		t.Errorf("DigestsSent = %d, want 1", eng.Stats().DigestsSent)
	}
}

// TestPullRepair drives the full request/response exchange by hand:
// node b learns of an event only via a's digest, pulls it, and a serves
// it from the store.
func TestPullRepair(t *testing.T) {
	reg := membership.NewRegistry("a", "b")
	engA := newTestEngine(t, Params{})
	engB := newTestEngine(t, Params{})
	a := newTestNode(t, "a", reg, engA)
	b := newTestNode(t, "b", reg, engB)

	ev := a.Broadcast([]byte("lost-event"))
	outs := a.Tick()
	if len(outs) == 0 {
		t.Fatal("expected outgoing gossip")
	}
	// Deliver only the digest to b — the event list is "lost".
	stripped := outs[0].Msg.Clone()
	stripped.Events = nil
	b.Receive(stripped)
	if b.Seen(ev.ID) {
		t.Fatal("b should not have the event yet")
	}
	if engB.MissingLen() != 1 {
		t.Fatalf("b should track 1 missing event, has %d", engB.MissingLen())
	}

	// b's next tick emits the pull request.
	b.Tick()
	reqs := engB.TakeOutgoing()
	if len(reqs) != 1 {
		t.Fatalf("expected 1 request message, got %d", len(reqs))
	}
	req := reqs[0]
	if req.To != "a" || req.Msg.Kind != gossip.KindRecoveryRequest {
		t.Fatalf("bad request: to=%s kind=%v", req.To, req.Msg.Kind)
	}
	if len(req.Msg.Request) != 1 || req.Msg.Request[0] != ev.ID {
		t.Fatalf("request ids = %v, want [%s]", req.Msg.Request, ev.ID)
	}

	// a serves the request from its store.
	a.Receive(req.Msg)
	resps := engA.TakeOutgoing()
	if len(resps) != 1 {
		t.Fatalf("expected 1 response message, got %d", len(resps))
	}
	resp := resps[0]
	if resp.To != "b" || resp.Msg.Kind != gossip.KindRecoveryResponse {
		t.Fatalf("bad response: to=%s kind=%v", resp.To, resp.Msg.Kind)
	}

	// b receives the response: the event is delivered and settled.
	b.Receive(resp.Msg)
	if !b.Seen(ev.ID) {
		t.Error("b did not deliver the recovered event")
	}
	if engB.MissingLen() != 0 {
		t.Errorf("missing set should be empty, has %d", engB.MissingLen())
	}
	if st := engB.Stats(); st.EventsRecovered != 1 {
		t.Errorf("EventsRecovered = %d, want 1", st.EventsRecovered)
	}
	if st := engA.Stats(); st.EventsServed != 1 || st.RequestsReceived != 1 {
		t.Errorf("server stats = %+v, want 1 served / 1 request", st)
	}
}

// TestRequestBudget bounds the identifiers requested per round.
func TestRequestBudget(t *testing.T) {
	reg := membership.NewRegistry("a", "b")
	eng := newTestEngine(t, Params{RequestBudget: 3, DigestLen: 64})
	b := newTestNode(t, "b", reg, eng)

	digest := make([]gossip.EventID, 10)
	for i := range digest {
		digest[i] = gossip.EventID{Origin: "a", Seq: uint64(i)}
	}
	b.Receive(&gossip.Message{From: "a", Digest: digest})
	b.Tick()
	outs := eng.TakeOutgoing()
	total := 0
	for _, out := range outs {
		total += len(out.Msg.Request)
	}
	if total != 3 {
		t.Errorf("requested %d ids, want budget 3", total)
	}
	if eng.Stats().IDsRequested != 3 {
		t.Errorf("IDsRequested = %d, want 3", eng.Stats().IDsRequested)
	}
}

// TestRetryAndGiveUp: un-answered requests are retried after
// RetryRounds and abandoned after GiveUpRounds.
func TestRetryAndGiveUp(t *testing.T) {
	reg := membership.NewRegistry("a", "b")
	eng := newTestEngine(t, Params{RetryRounds: 2, GiveUpRounds: 5})
	b := newTestNode(t, "b", reg, eng)

	id := gossip.EventID{Origin: "a", Seq: 99}
	b.Receive(&gossip.Message{From: "a", Digest: []gossip.EventID{id}})

	requests := 0
	for i := 0; i < 10; i++ {
		b.Tick()
		for _, out := range eng.TakeOutgoing() {
			if out.Msg.Kind == gossip.KindRecoveryRequest {
				requests += len(out.Msg.Request)
			}
		}
	}
	// Advertised at round 0: rounds 1 and 3 request (retry cadence 2),
	// round 5 gives up before a third try.
	if requests != 2 {
		t.Errorf("sent %d requests, want 2 (retry cadence 2, give up after 5 rounds)", requests)
	}
	if eng.MissingLen() != 0 {
		t.Errorf("missing set should be empty after give-up, has %d", eng.MissingLen())
	}
	if eng.Stats().MissingGaveUp != 1 {
		t.Errorf("MissingGaveUp = %d, want 1", eng.Stats().MissingGaveUp)
	}
}

// TestMissingSettledByPush: an event that arrives through normal push
// gossip before the pull fires is dropped from the missing set without
// a request.
func TestMissingSettledByPush(t *testing.T) {
	reg := membership.NewRegistry("a", "b")
	eng := newTestEngine(t, Params{})
	b := newTestNode(t, "b", reg, eng)

	id := gossip.EventID{Origin: "a", Seq: 7}
	b.Receive(&gossip.Message{From: "a", Digest: []gossip.EventID{id}})
	// The event arrives via push before b's next tick.
	b.Receive(&gossip.Message{From: "a", Events: []gossip.Event{{ID: id}}})
	b.Tick()
	if outs := eng.TakeOutgoing(); len(outs) != 0 {
		t.Errorf("expected no requests, got %d messages", len(outs))
	}
	if eng.MissingLen() != 0 {
		t.Errorf("missing set should be empty, has %d", eng.MissingLen())
	}
}

// TestStoreServesEvictedEvents: events pushed out of the events buffer
// remain servable — the repair window outlives the push window.
func TestStoreServesEvictedEvents(t *testing.T) {
	reg := membership.NewRegistry("a", "b")
	eng := newTestEngine(t, Params{StoreCapacity: 64})
	a := newTestNode(t, "a", reg, eng) // MaxEvents = 8

	first := a.Broadcast([]byte("old"))
	for i := 0; i < 20; i++ { // overflow the 8-slot buffer
		a.Broadcast(nil)
	}
	if a.BufferLen() > 8 {
		t.Fatalf("buffer overflowed: %d", a.BufferLen())
	}
	a.Receive(&gossip.Message{Kind: gossip.KindRecoveryRequest, From: "b",
		Request: []gossip.EventID{first.ID}})
	resps := eng.TakeOutgoing()
	if len(resps) != 1 || len(resps[0].Msg.Events) != 1 || resps[0].Msg.Events[0].ID != first.ID {
		t.Fatalf("evicted event not served: %+v", resps)
	}
}

// TestStoreGC: events older than RetainRounds are dropped and no longer
// served.
func TestStoreGC(t *testing.T) {
	reg := membership.NewRegistry("a", "b")
	eng := newTestEngine(t, Params{RetainRounds: 3})
	a := newTestNode(t, "a", reg, eng)

	ev := a.Broadcast([]byte("x"))
	for i := 0; i < 12; i++ { // age the event far past RetainRounds + MaxAge
		a.Tick()
		eng.TakeOutgoing()
	}
	a.Receive(&gossip.Message{Kind: gossip.KindRecoveryRequest, From: "b",
		Request: []gossip.EventID{ev.ID}})
	if resps := eng.TakeOutgoing(); len(resps) != 0 {
		t.Errorf("GC'd event should not be served, got %d responses", len(resps))
	}
	if eng.Stats().EventsUnserved != 1 {
		t.Errorf("EventsUnserved = %d, want 1", eng.Stats().EventsUnserved)
	}
}

// TestStoreCapacityBound: the store never exceeds its capacity.
func TestStoreCapacityBound(t *testing.T) {
	s := newStore(4)
	for i := 0; i < 100; i++ {
		s.add(gossip.Event{ID: gossip.EventID{Origin: "a", Seq: uint64(i)}}, uint64(i))
		if s.len() > 4 {
			t.Fatalf("store grew to %d, capacity 4", s.len())
		}
	}
	// The newest 4 survive.
	for i := 96; i < 100; i++ {
		if _, ok := s.get(gossip.EventID{Origin: "a", Seq: uint64(i)}); !ok {
			t.Errorf("newest event %d missing from store", i)
		}
	}
}

// TestMaxMissingBound: advertisement flooding cannot grow the missing
// set beyond MaxMissing.
func TestMaxMissingBound(t *testing.T) {
	reg := membership.NewRegistry("a", "b")
	eng := newTestEngine(t, Params{MaxMissing: 5})
	b := newTestNode(t, "b", reg, eng)

	digest := make([]gossip.EventID, 50)
	for i := range digest {
		digest[i] = gossip.EventID{Origin: "a", Seq: uint64(i)}
	}
	b.Receive(&gossip.Message{From: "a", Digest: digest})
	if eng.MissingLen() != 5 {
		t.Errorf("missing set = %d, want MaxMissing 5", eng.MissingLen())
	}
	if eng.Stats().MissingOverflow != 45 {
		t.Errorf("MissingOverflow = %d, want 45", eng.Stats().MissingOverflow)
	}
}

// TestDeterministicRequests: identical advertisement sequences produce
// identical request batches (map iteration must not leak in).
func TestDeterministicRequests(t *testing.T) {
	run := func() string {
		reg := membership.NewRegistry("a", "b", "c", "x")
		eng := newTestEngine(t, Params{RequestBudget: 8})
		x := newTestNode(t, "x", reg, eng)
		for round := 0; round < 4; round++ {
			for _, from := range []gossip.NodeID{"a", "b", "c"} {
				digest := make([]gossip.EventID, 6)
				for i := range digest {
					digest[i] = gossip.EventID{Origin: from, Seq: uint64(round*6 + i)}
				}
				x.Receive(&gossip.Message{From: from, Digest: digest})
			}
			x.Tick()
		}
		var trace string
		for _, out := range eng.TakeOutgoing() {
			trace += fmt.Sprintf("%s:%v;", out.To, out.Msg.Request)
		}
		return trace
	}
	if a, b := run(), run(); a != b {
		t.Errorf("request building not deterministic:\n  %s\n  %s", a, b)
	}
}

func TestDiffDigest(t *testing.T) {
	reg := membership.NewRegistry("a", "b")
	n := newTestNode(t, "a", reg, newTestEngine(t, Params{}))
	have := n.Broadcast(nil)
	want := gossip.EventID{Origin: "b", Seq: 1}
	missing := DiffDigest(n, []gossip.EventID{have.ID, want})
	if len(missing) != 1 || missing[0] != want {
		t.Errorf("DiffDigest = %v, want [%v]", missing, want)
	}
}

package sim

import (
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
)

func testNet(t *testing.T, opts ...NetworkOption) (*Scheduler, *Network) {
	t.Helper()
	s := NewScheduler(Epoch)
	n, err := NewNetwork(s, DeriveRNG(1, 1), opts...)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return s, n
}

func TestNetworkDelivers(t *testing.T) {
	s, n := testNet(t)
	var got []*gossip.Message
	n.Attach("b", func(m *gossip.Message) { got = append(got, m) })
	msg := &gossip.Message{From: "a"}
	n.Send("a", "b", msg)
	s.Drain(10)
	if len(got) != 1 || got[0] != msg {
		t.Fatalf("delivered %v", got)
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestNetworkLatencyBounds(t *testing.T) {
	s, n := testNet(t, WithLatency(10*time.Millisecond, 50*time.Millisecond))
	var at []time.Time
	n.Attach("b", func(*gossip.Message) { at = append(at, s.Now()) })
	for i := 0; i < 200; i++ {
		n.Send("a", "b", &gossip.Message{})
	}
	s.RunUntil(Epoch.Add(time.Second))
	if len(at) != 200 {
		t.Fatalf("delivered %d/200", len(at))
	}
	for _, ts := range at {
		d := ts.Sub(Epoch)
		if d < 10*time.Millisecond || d > 50*time.Millisecond {
			t.Fatalf("latency %v out of bounds", d)
		}
	}
}

func TestNetworkLoss(t *testing.T) {
	s, n := testNet(t, WithLoss(0.5))
	delivered := 0
	n.Attach("b", func(*gossip.Message) { delivered++ })
	const sent = 2000
	for i := 0; i < sent; i++ {
		n.Send("a", "b", &gossip.Message{})
	}
	s.Drain(sent + 10)
	if delivered < 800 || delivered > 1200 {
		t.Fatalf("delivered %d of %d at 50%% loss", delivered, sent)
	}
	if got := n.Stats().LossDropped; got != uint64(sent-delivered) {
		t.Fatalf("LossDropped = %d, want %d", got, sent-delivered)
	}
}

func TestNetworkInvalidOptions(t *testing.T) {
	s := NewScheduler(Epoch)
	if _, err := NewNetwork(s, DeriveRNG(1, 1), WithLoss(1.5)); err == nil {
		t.Fatal("loss 1.5 accepted")
	}
	if _, err := NewNetwork(s, DeriveRNG(1, 1), WithLatency(time.Second, 0)); err == nil {
		t.Fatal("inverted latency bounds accepted")
	}
	if _, err := NewNetwork(nil, nil); err == nil {
		t.Fatal("nil scheduler accepted")
	}
}

func TestNetworkDownNode(t *testing.T) {
	s, n := testNet(t)
	delivered := 0
	n.Attach("b", func(*gossip.Message) { delivered++ })
	n.SetDown("b", true)
	n.Send("a", "b", &gossip.Message{})
	s.Drain(10)
	if delivered != 0 {
		t.Fatal("message delivered to down node")
	}
	n.SetDown("b", false)
	n.Send("a", "b", &gossip.Message{})
	s.Drain(10)
	if delivered != 1 {
		t.Fatal("message not delivered after recovery")
	}
	// Down sender also drops.
	n.SetDown("a", true)
	n.Send("a", "b", &gossip.Message{})
	s.Drain(10)
	if delivered != 1 {
		t.Fatal("down sender still sent")
	}
	if got := n.Stats().DownDropped; got != 2 {
		t.Fatalf("DownDropped = %d, want 2", got)
	}
}

func TestNetworkCrashMidFlight(t *testing.T) {
	s, n := testNet(t, WithLatency(100*time.Millisecond, 100*time.Millisecond))
	delivered := 0
	n.Attach("b", func(*gossip.Message) { delivered++ })
	n.Send("a", "b", &gossip.Message{})
	// Node b crashes while the message is in flight.
	s.After(50*time.Millisecond, func() { n.SetDown("b", true) })
	s.RunUntil(Epoch.Add(time.Second))
	if delivered != 0 {
		t.Fatal("in-flight message delivered to crashed node")
	}
}

func TestNetworkLinkFilter(t *testing.T) {
	s, n := testNet(t)
	delivered := 0
	n.Attach("b", func(*gossip.Message) { delivered++ })
	n.SetLinkFilter(func(from, to gossip.NodeID) bool { return false })
	n.Send("a", "b", &gossip.Message{})
	s.Drain(10)
	if delivered != 0 {
		t.Fatal("filtered link delivered")
	}
	if n.Stats().Filtered != 1 {
		t.Fatalf("Filtered = %d", n.Stats().Filtered)
	}
	n.SetLinkFilter(nil)
	n.Send("a", "b", &gossip.Message{})
	s.Drain(10)
	if delivered != 1 {
		t.Fatal("cleared filter still dropping")
	}
}

func TestNetworkUnroutedAndDetach(t *testing.T) {
	s, n := testNet(t)
	n.Send("a", "nowhere", &gossip.Message{})
	s.Drain(10)
	if n.Stats().Unrouted != 1 {
		t.Fatalf("Unrouted = %d", n.Stats().Unrouted)
	}
	n.Attach("b", func(*gossip.Message) {})
	n.Detach("b")
	n.Send("a", "b", &gossip.Message{})
	s.Drain(10)
	if n.Stats().Unrouted != 2 {
		t.Fatalf("Unrouted after detach = %d", n.Stats().Unrouted)
	}
}

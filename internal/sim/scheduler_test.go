package sim

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(Epoch)
	var order []int
	s.After(2*time.Second, func() { order = append(order, 2) })
	s.After(1*time.Second, func() { order = append(order, 1) })
	s.After(3*time.Second, func() { order = append(order, 3) })
	s.Drain(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if got := s.Now(); !got.Equal(Epoch.Add(3 * time.Second)) {
		t.Fatalf("now = %v", got)
	}
}

func TestSchedulerFIFOWithinInstant(t *testing.T) {
	s := NewScheduler(Epoch)
	var order []int
	at := Epoch.Add(time.Second)
	for i := 0; i < 5; i++ {
		i := i
		s.At(at, func() { order = append(order, i) })
	}
	s.Drain(10)
	for i, got := range order {
		if got != i {
			t.Fatalf("same-instant order = %v", order)
		}
	}
}

func TestSchedulerPastEventsRunNow(t *testing.T) {
	s := NewScheduler(Epoch.Add(time.Minute))
	ran := false
	s.At(Epoch, func() { ran = true })
	if !s.Step() || !ran {
		t.Fatal("past event did not run")
	}
	if s.Now().Before(Epoch.Add(time.Minute)) {
		t.Fatal("clock went backwards")
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(Epoch)
	ran := false
	h := s.After(time.Second, func() { ran = true })
	h.Cancel()
	h.Cancel() // idempotent
	s.Drain(10)
	if ran {
		t.Fatal("cancelled event ran")
	}
	Handle{}.Cancel() // zero handle is safe
}

// TestSchedulerCancelRemovesImmediately pins the no-tombstone contract:
// cancelling a scheduled callback shrinks the heap right away instead
// of leaving a dead entry behind until its pop time — the regime of
// churn/latency simulations that schedule and cancel many timers far in
// the future.
func TestSchedulerCancelRemovesImmediately(t *testing.T) {
	s := NewScheduler(Epoch)
	const n = 100
	handles := make([]Handle, 0, n)
	for i := 0; i < n; i++ {
		i := i
		handles = append(handles, s.After(time.Duration(i+1)*time.Hour, func() { _ = i }))
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	// Cancel from the middle, the ends and in bulk; the heap must track
	// exactly the live events at every point.
	for i, h := range handles {
		if i%2 == 0 {
			h.Cancel()
		}
	}
	if s.Len() != n/2 {
		t.Fatalf("after cancelling half: Len = %d, want %d", s.Len(), n/2)
	}
	handles[1].Cancel()
	handles[1].Cancel() // idempotent: must not remove another entry
	if s.Len() != n/2-1 {
		t.Fatalf("after repeat cancel: Len = %d, want %d", s.Len(), n/2-1)
	}
	// The survivors still run, in order.
	ran := 0
	for s.Step() {
		ran++
	}
	if ran != n/2-1 {
		t.Fatalf("ran %d events, want %d", ran, n/2-1)
	}
	if s.Len() != 0 {
		t.Fatalf("drained scheduler has Len = %d", s.Len())
	}
	// Cancelling an already-executed handle is a no-op.
	h := s.After(time.Second, func() {})
	if !s.Step() {
		t.Fatal("event did not run")
	}
	h.Cancel()
	if s.Len() != 0 {
		t.Fatalf("cancel after execution changed Len = %d", s.Len())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler(Epoch)
	var ran []int
	s.After(1*time.Second, func() { ran = append(ran, 1) })
	s.After(5*time.Second, func() { ran = append(ran, 5) })
	s.RunUntil(Epoch.Add(2 * time.Second))
	if len(ran) != 1 || ran[0] != 1 {
		t.Fatalf("ran = %v, want only the 1s event", ran)
	}
	if !s.Now().Equal(Epoch.Add(2 * time.Second)) {
		t.Fatalf("now = %v, want t=2s", s.Now())
	}
	s.RunFor(10 * time.Second)
	if len(ran) != 2 {
		t.Fatalf("ran = %v", ran)
	}
	if !s.Now().Equal(Epoch.Add(12 * time.Second)) {
		t.Fatalf("now = %v, want t=12s", s.Now())
	}
}

func TestSchedulerSelfRescheduling(t *testing.T) {
	s := NewScheduler(Epoch)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			s.After(time.Second, tick)
		}
	}
	s.After(time.Second, tick)
	s.RunUntil(Epoch.Add(time.Hour))
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
}

func TestSchedulerDrainLimit(t *testing.T) {
	s := NewScheduler(Epoch)
	var tick func()
	tick = func() { s.After(time.Millisecond, tick) }
	s.After(0, tick)
	if ran := s.Drain(100); ran != 100 {
		t.Fatalf("Drain ran %d, want limit 100", ran)
	}
}

func TestDeriveRNGDeterministicAndSeparated(t *testing.T) {
	a1 := DeriveRNG(42, 1)
	a2 := DeriveRNG(42, 1)
	b := DeriveRNG(42, 2)
	same, diff := 0, 0
	for i := 0; i < 100; i++ {
		x, y, z := a1.Uint64(), a2.Uint64(), b.Uint64()
		if x == y {
			same++
		}
		if x == z {
			diff++
		}
	}
	if same != 100 {
		t.Fatal("same (seed, stream) produced different sequences")
	}
	if diff > 2 {
		t.Fatalf("different streams collided %d/100 times", diff)
	}
}

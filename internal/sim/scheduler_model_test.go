package sim

import (
	"container/heap"
	"math/rand/v2"
	"testing"
	"time"
)

// The slab scheduler is checked against a naive container/heap model:
// both run the same random sequence of At/After/Cancel/Step/RunUntil
// operations and must agree on the clock, the pending count and the
// exact execution order at every step. The model is the pre-slab
// implementation shape — pointer nodes in a binary heap with index
// tracking — kept deliberately simple so its correctness is obvious.

type refEvent struct {
	at    int64 // ns since base
	seq   uint64
	id    int // test-assigned identity, recorded on execution
	index int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// refScheduler is the model: same observable semantics as Scheduler
// (past instants clamp to now, FIFO within an instant, Cancel removes
// immediately), implemented the obvious way.
type refScheduler struct {
	now  int64
	seq  uint64
	h    refHeap
	runs []int
}

func (r *refScheduler) schedule(atNs int64, id int) *refEvent {
	if atNs < r.now {
		atNs = r.now
	}
	ev := &refEvent{at: atNs, seq: r.seq, id: id}
	r.seq++
	heap.Push(&r.h, ev)
	return ev
}

func (r *refScheduler) cancel(ev *refEvent) {
	if ev.index >= 0 && ev.index < len(r.h) && r.h[ev.index] == ev {
		heap.Remove(&r.h, ev.index)
		ev.index = -1
	}
}

func (r *refScheduler) step() bool {
	if len(r.h) == 0 {
		return false
	}
	ev := heap.Pop(&r.h).(*refEvent)
	ev.index = -1
	if ev.at > r.now {
		r.now = ev.at
	}
	r.runs = append(r.runs, ev.id)
	return true
}

func (r *refScheduler) runUntil(tNs int64) {
	for len(r.h) > 0 && r.h[0].at <= tNs {
		r.step()
	}
	if r.now < tNs {
		r.now = tNs
	}
}

// TestSchedulerAgainstModel drives random operation sequences through
// the slab scheduler and the model, comparing clock, pending count and
// execution order after every operation. Cancels deliberately target
// handles of already-executed and already-cancelled events — the stale
// half of the generation-counter contract — which must be no-ops on
// both sides.
func TestSchedulerAgainstModel(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewPCG(seed, seed^0x9E3779B9))
		s := NewScheduler(Epoch)
		ref := &refScheduler{}
		var got []int
		type pair struct {
			h  Handle
			ev *refEvent
		}
		var handles []pair
		nextID := 0
		sched := func(atNs int64) {
			id := nextID
			nextID++
			var h Handle
			if rng.IntN(2) == 0 {
				h = s.At(Epoch.Add(time.Duration(atNs)), func() { got = append(got, id) })
			} else {
				h = s.After(time.Duration(atNs)-time.Duration(ref.now), func() { got = append(got, id) })
				// After clamps negative d to 0, i.e. "now" — same as the
				// model's past-instant clamp.
			}
			handles = append(handles, pair{h, ref.schedule(atNs, id)})
		}
		for op := 0; op < 3000; op++ {
			switch rng.IntN(10) {
			case 0, 1, 2, 3: // schedule near now, sometimes in the past
				sched(ref.now + rng.Int64N(2000) - 200)
			case 4: // schedule far out
				sched(ref.now + rng.Int64N(1_000_000))
			case 5, 6: // cancel a random handle, fresh or stale
				if len(handles) > 0 {
					p := handles[rng.IntN(len(handles))]
					p.h.Cancel()
					ref.cancel(p.ev)
				}
			case 7, 8: // step
				if s.Step() != ref.step() {
					t.Fatalf("seed %d op %d: Step() disagreement", seed, op)
				}
			case 9: // run a window
				tNs := ref.now + rng.Int64N(5000)
				s.RunUntil(Epoch.Add(time.Duration(tNs)))
				ref.runUntil(tNs)
			}
			if s.Len() != len(ref.h) {
				t.Fatalf("seed %d op %d: Len=%d, model has %d pending", seed, op, s.Len(), len(ref.h))
			}
			if nowNs := int64(s.Now().Sub(Epoch)); nowNs != ref.now {
				t.Fatalf("seed %d op %d: Now=%dns, model at %dns", seed, op, nowNs, ref.now)
			}
			if len(got) != len(ref.runs) {
				t.Fatalf("seed %d op %d: executed %d events, model executed %d", seed, op, len(got), len(ref.runs))
			}
		}
		// Drain both completely and compare the full execution order.
		for s.Step() {
		}
		for ref.step() {
		}
		if len(got) != len(ref.runs) {
			t.Fatalf("seed %d: executed %d events total, model executed %d", seed, len(got), len(ref.runs))
		}
		for i := range got {
			if got[i] != ref.runs[i] {
				t.Fatalf("seed %d: execution order diverges at %d: got event %d, model ran %d", seed, i, got[i], ref.runs[i])
			}
		}
		if uint64(len(got)) != s.Executed() {
			t.Fatalf("seed %d: Executed()=%d, want %d", seed, s.Executed(), len(got))
		}
	}
}

// TestHandleStaleAfterSlotReuse is the regression test for the
// generation counter: once an event's slot has been recycled for a new
// event, cancelling the old Handle must NOT cancel the new tenant.
func TestHandleStaleAfterSlotReuse(t *testing.T) {
	s := NewScheduler(Epoch)
	var ran []string
	hA := s.At(Epoch.Add(time.Millisecond), func() { ran = append(ran, "A") })
	if !s.Step() {
		t.Fatal("Step ran nothing")
	}
	// A executed; its slot is free. B must land in the same slot.
	hB := s.At(Epoch.Add(2*time.Millisecond), func() { ran = append(ran, "B") })
	if hA.slot != hB.slot {
		t.Fatalf("slot not reused: A had %d, B got %d", hA.slot, hB.slot)
	}
	if hA.gen == hB.gen {
		t.Fatalf("generation did not advance across reuse (both %d)", hA.gen)
	}
	hA.Cancel() // stale: must not touch B
	if s.Len() != 1 {
		t.Fatalf("stale Cancel removed the slot's new tenant: Len=%d, want 1", s.Len())
	}
	s.RunUntil(Epoch.Add(time.Second))
	if len(ran) != 2 || ran[1] != "B" {
		t.Fatalf("ran %v, want [A B]", ran)
	}

	// Same for cancellation-driven release: cancel C, let D reuse the
	// slot, then double-cancel C.
	hC := s.After(time.Millisecond, func() { ran = append(ran, "C") })
	hC.Cancel()
	hD := s.After(time.Millisecond, func() { ran = append(ran, "D") })
	if hC.slot != hD.slot {
		t.Fatalf("slot not reused after Cancel: C had %d, D got %d", hC.slot, hD.slot)
	}
	hC.Cancel()
	if s.Len() != 1 {
		t.Fatalf("stale Cancel after cancellation removed new tenant: Len=%d, want 1", s.Len())
	}
	s.RunUntil(s.Now().Add(time.Second))
	if len(ran) != 3 || ran[2] != "D" {
		t.Fatalf("ran %v, want [A B D]", ran)
	}
}

// TestHandleStaleWhileRunning pins the release-before-execute ordering:
// by the time a callback runs, its own Handle is already stale, so a
// callback cancelling itself (directly or via a captured Handle) is a
// no-op and a callback's newly scheduled event may legally reuse the
// running event's slot.
func TestHandleStaleWhileRunning(t *testing.T) {
	s := NewScheduler(Epoch)
	var h Handle
	reused := false
	ran := 0
	h = s.After(time.Millisecond, func() {
		h.Cancel() // self-cancel while running: stale, must not corrupt
		inner := s.After(time.Millisecond, func() { ran++ })
		reused = inner.slot == h.slot
	})
	s.RunUntil(Epoch.Add(time.Second))
	if !reused {
		t.Error("running event's slot was not available for reuse inside its own callback")
	}
	if ran != 1 {
		t.Errorf("inner event ran %d times, want 1", ran)
	}
}

package sim

import (
	"math/rand/v2"
	"testing"
)

// firstDraws fingerprints a stream by its first k outputs.
func firstDraws(r *rand.Rand, k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

// TestRNGStreamsPinned pins the named stream derivations across three
// seeds: each stream is deterministic, and the four namespaces never
// hand two components the same stream — in particular not at large node
// indices, where the pre-namespace ad-hoc offsets (node i at stream
// i+1, phases at 10_000+i) made node 9,999's protocol RNG identical to
// node 0's phase RNG.
func TestRNGStreamsPinned(t *testing.T) {
	const k = 8
	for _, seed := range []int64{1, 7, 1 << 40} {
		streams := map[string]func() *rand.Rand{
			"network":        func() *rand.Rand { return NetworkRNG(seed) },
			"node0":          func() *rand.Rand { return NodeRNG(seed, 0) },
			"node9999":       func() *rand.Rand { return NodeRNG(seed, 9999) },
			"node10000":      func() *rand.Rand { return NodeRNG(seed, 10000) },
			"phase0":         func() *rand.Rand { return PhaseRNG(seed, 0) },
			"phase9999":      func() *rand.Rand { return PhaseRNG(seed, 9999) },
			"workload0":      func() *rand.Rand { return WorkloadRNG(seed, 0) },
			"workload9999":   func() *rand.Rand { return WorkloadRNG(seed, 9999) },
			"workload100000": func() *rand.Rand { return WorkloadRNG(seed, 100000) },
		}
		draws := make(map[string][]uint64, len(streams))
		for name, mk := range streams {
			first := firstDraws(mk(), k)
			again := firstDraws(mk(), k)
			for i := range first {
				if first[i] != again[i] {
					t.Fatalf("seed %d: %s stream not deterministic at draw %d", seed, name, i)
				}
			}
			draws[name] = first
		}
		// Pairwise distinctness: no two named streams may coincide.
		names := make([]string, 0, len(draws))
		for name := range draws {
			names = append(names, name)
		}
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				a, b := draws[names[i]], draws[names[j]]
				same := true
				for x := range a {
					if a[x] != b[x] {
						same = false
						break
					}
				}
				if same {
					t.Errorf("seed %d: streams %s and %s are identical", seed, names[i], names[j])
				}
			}
		}
	}
}

// TestRNGStreamCollisionRegression is the focused regression for the
// n >= 10,000 bug class: under the old offsets NodeRNG(seed, 9_999)
// would have collided with PhaseRNG(seed, 0). The namespaces are spaced
// 2^32 apart, so node and phase streams stay disjoint for any node
// index below 2^32.
func TestRNGStreamCollisionRegression(t *testing.T) {
	for _, seed := range []int64{1, 7, 1 << 40} {
		pairs := [][2]*rand.Rand{
			{NodeRNG(seed, 9999), PhaseRNG(seed, 0)},
			{NodeRNG(seed, 10000), PhaseRNG(seed, 1)},
			{PhaseRNG(seed, 9999), WorkloadRNG(seed, 0)},
			{NodeRNG(seed, 0), NetworkRNG(seed)},
		}
		for i, p := range pairs {
			a := firstDraws(p[0], 4)
			b := firstDraws(p[1], 4)
			same := true
			for x := range a {
				if a[x] != b[x] {
					same = false
				}
			}
			if same {
				t.Errorf("seed %d pair %d: streams collide", seed, i)
			}
		}
	}
}

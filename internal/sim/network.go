package sim

import (
	"fmt"
	"math/rand/v2"
	"time"

	"adaptivegossip/internal/gossip"
)

// NetworkStats counts traffic through the simulated network.
type NetworkStats struct {
	Sent        uint64
	Delivered   uint64
	LossDropped uint64
	DownDropped uint64
	Filtered    uint64
	Unrouted    uint64
	// Per-kind send counts, for measuring the control-plane subsystems'
	// wire overhead (anti-entropy recovery, failure detection) against
	// the push-gossip baseline traffic.
	GossipSent           uint64
	RecoveryRequestSent  uint64
	RecoveryResponseSent uint64
	PingSent             uint64
	PingAckSent          uint64
	PingReqSent          uint64
}

// Merge adds another run's counters into s (seed-sweep pooling).
func (s *NetworkStats) Merge(o NetworkStats) {
	s.Sent += o.Sent
	s.Delivered += o.Delivered
	s.LossDropped += o.LossDropped
	s.DownDropped += o.DownDropped
	s.Filtered += o.Filtered
	s.Unrouted += o.Unrouted
	s.GossipSent += o.GossipSent
	s.RecoveryRequestSent += o.RecoveryRequestSent
	s.RecoveryResponseSent += o.RecoveryResponseSent
	s.PingSent += o.PingSent
	s.PingAckSent += o.PingAckSent
	s.PingReqSent += o.PingReqSent
}

// ProbeSent totals the failure-detection control messages.
func (s NetworkStats) ProbeSent() uint64 {
	return s.PingSent + s.PingAckSent + s.PingReqSent
}

// Network is the simulated message fabric: point-to-point delivery with
// uniform random latency, independent (iid) loss, per-node down state
// and an optional link filter for partition experiments. The paper's
// probabilistic guarantees assume independently distributed loss (§2);
// the loss model here matches that assumption.
type Network struct {
	sched    *Scheduler
	rng      *rand.Rand
	latMin   time.Duration
	latMax   time.Duration
	loss     float64
	handlers map[gossip.NodeID]func(*gossip.Message)
	down     map[gossip.NodeID]bool
	filter   func(from, to gossip.NodeID) bool
	stats    NetworkStats
}

// NetworkOption configures a Network.
type NetworkOption func(*Network) error

// WithLatency sets the delivery latency bounds (uniform in [min, max]).
func WithLatency(min, max time.Duration) NetworkOption {
	return func(n *Network) error {
		if min < 0 || max < min {
			return fmt.Errorf("sim: invalid latency bounds [%v, %v]", min, max)
		}
		n.latMin, n.latMax = min, max
		return nil
	}
}

// WithLoss sets the iid message loss probability.
func WithLoss(p float64) NetworkOption {
	return func(n *Network) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("sim: loss probability %v out of [0,1]", p)
		}
		n.loss = p
		return nil
	}
}

// NewNetwork creates a network driven by sched with randomness from rng.
func NewNetwork(sched *Scheduler, rng *rand.Rand, opts ...NetworkOption) (*Network, error) {
	if sched == nil || rng == nil {
		return nil, fmt.Errorf("sim: scheduler and rng must not be nil")
	}
	n := &Network{
		sched:    sched,
		rng:      rng,
		handlers: make(map[gossip.NodeID]func(*gossip.Message)),
		down:     make(map[gossip.NodeID]bool),
	}
	for _, opt := range opts {
		if err := opt(n); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Attach registers the delivery handler for a node.
func (n *Network) Attach(id gossip.NodeID, handler func(*gossip.Message)) {
	n.handlers[id] = handler
}

// Detach removes a node from the network.
func (n *Network) Detach(id gossip.NodeID) {
	delete(n.handlers, id)
	delete(n.down, id)
}

// SetDown marks a node unreachable (crash simulation). Messages to and
// from a down node are dropped.
func (n *Network) SetDown(id gossip.NodeID, down bool) {
	if down {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
}

// SetLinkFilter installs a predicate; links for which it returns false
// drop all traffic. Pass nil to clear.
func (n *Network) SetLinkFilter(filter func(from, to gossip.NodeID) bool) {
	n.filter = filter
}

// Stats returns a copy of the traffic counters.
func (n *Network) Stats() NetworkStats { return n.stats }

// Attach registers a node as the delivery handler: incoming messages
// are fed to receive, and any control messages it returns (recovery
// requests and responses) are routed back through the network. This is
// the standard way to wire a protocol node into the fabric.
func (n *Network) AttachNode(id gossip.NodeID, receive func(*gossip.Message) []gossip.Outgoing) {
	n.Attach(id, func(m *gossip.Message) {
		for _, out := range receive(m) {
			n.Send(id, out.To, out.Msg)
		}
	})
}

// Send routes a message, applying down state, the link filter, loss and
// latency. Delivery re-checks the destination's state at arrival time.
func (n *Network) Send(from, to gossip.NodeID, msg *gossip.Message) {
	n.stats.Sent++
	switch msg.Kind {
	case gossip.KindRecoveryRequest:
		n.stats.RecoveryRequestSent++
	case gossip.KindRecoveryResponse:
		n.stats.RecoveryResponseSent++
	case gossip.KindPing:
		n.stats.PingSent++
	case gossip.KindPingAck:
		n.stats.PingAckSent++
	case gossip.KindPingReq:
		n.stats.PingReqSent++
	default:
		n.stats.GossipSent++
	}
	if n.down[from] || n.down[to] {
		n.stats.DownDropped++
		return
	}
	if n.filter != nil && !n.filter(from, to) {
		n.stats.Filtered++
		return
	}
	if n.loss > 0 && n.rng.Float64() < n.loss {
		n.stats.LossDropped++
		return
	}
	lat := n.latMin
	if n.latMax > n.latMin {
		lat += time.Duration(n.rng.Int64N(int64(n.latMax - n.latMin + 1)))
	}
	n.sched.After(lat, func() {
		if n.down[to] {
			n.stats.DownDropped++
			return
		}
		h, ok := n.handlers[to]
		if !ok {
			n.stats.Unrouted++
			return
		}
		n.stats.Delivered++
		h(msg)
	})
}

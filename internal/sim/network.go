package sim

import (
	"fmt"
	"math/rand/v2"
	"time"

	"adaptivegossip/internal/gossip"
)

// NetworkStats counts traffic through the simulated network.
type NetworkStats struct {
	Sent        uint64
	Delivered   uint64
	LossDropped uint64
	DownDropped uint64
	Filtered    uint64
	Unrouted    uint64
	// Per-kind send counts, for measuring the control-plane subsystems'
	// wire overhead (anti-entropy recovery, failure detection) against
	// the push-gossip baseline traffic.
	GossipSent           uint64
	RecoveryRequestSent  uint64
	RecoveryResponseSent uint64
	PingSent             uint64
	PingAckSent          uint64
	PingReqSent          uint64
	// Region traffic split (topology runs only, see WithTopology):
	// sends whose endpoints sit in the same region versus different
	// regions. The byte counters need a message sizer (WithMessageSizer)
	// and stay zero without one.
	IntraRegionSent  uint64
	CrossRegionSent  uint64
	IntraRegionBytes uint64
	CrossRegionBytes uint64
}

// Merge adds another run's counters into s (seed-sweep pooling).
func (s *NetworkStats) Merge(o NetworkStats) {
	s.Sent += o.Sent
	s.Delivered += o.Delivered
	s.LossDropped += o.LossDropped
	s.DownDropped += o.DownDropped
	s.Filtered += o.Filtered
	s.Unrouted += o.Unrouted
	s.GossipSent += o.GossipSent
	s.RecoveryRequestSent += o.RecoveryRequestSent
	s.RecoveryResponseSent += o.RecoveryResponseSent
	s.PingSent += o.PingSent
	s.PingAckSent += o.PingAckSent
	s.PingReqSent += o.PingReqSent
	s.IntraRegionSent += o.IntraRegionSent
	s.CrossRegionSent += o.CrossRegionSent
	s.IntraRegionBytes += o.IntraRegionBytes
	s.CrossRegionBytes += o.CrossRegionBytes
}

// ProbeSent totals the failure-detection control messages.
func (s NetworkStats) ProbeSent() uint64 {
	return s.PingSent + s.PingAckSent + s.PingReqSent
}

// CrossRegionPct is the share of region-classified sends that crossed a
// region boundary, in percent. It returns 0 when no send was classified
// (no topology installed or no regions assigned).
func (s NetworkStats) CrossRegionPct() float64 {
	total := s.IntraRegionSent + s.CrossRegionSent
	if total == 0 {
		return 0
	}
	return 100 * float64(s.CrossRegionSent) / float64(total)
}

// LatencyClass bounds one link class's delivery latency: uniform in
// [Min, Max].
type LatencyClass struct {
	Min, Max time.Duration
}

// Validate reports the first bound error.
func (c LatencyClass) Validate() error {
	if c.Min < 0 || c.Max < c.Min {
		return fmt.Errorf("sim: invalid latency class [%v, %v]", c.Min, c.Max)
	}
	return nil
}

// Topology is an optional region-based latency model: every node is
// assigned to a region (SetRegion), and each ordered region pair maps to
// a latency class, replacing the network's single uniform latency range
// for classified links. This is the WAN model of the scale experiments:
// cheap intra-region links, expensive cross-region ones, with
// NetworkStats splitting traffic accordingly.
type Topology struct {
	// Regions is the number of regions; SetRegion accepts [0, Regions).
	Regions int
	// Classes[from][to] is the latency class of links from region
	// "from" to region "to". Must be Regions x Regions.
	Classes [][]LatencyClass
}

// NewTwoTierTopology builds the common two-class model: intra for links
// within a region, inter for links between distinct regions.
func NewTwoTierTopology(regions int, intra, inter LatencyClass) Topology {
	classes := make([][]LatencyClass, regions)
	for i := range classes {
		classes[i] = make([]LatencyClass, regions)
		for j := range classes[i] {
			if i == j {
				classes[i][j] = intra
			} else {
				classes[i][j] = inter
			}
		}
	}
	return Topology{Regions: regions, Classes: classes}
}

// Validate reports the first topology error.
func (t Topology) Validate() error {
	if t.Regions <= 0 {
		return fmt.Errorf("sim: topology needs at least 1 region, got %d", t.Regions)
	}
	if len(t.Classes) != t.Regions {
		return fmt.Errorf("sim: topology has %d class rows for %d regions", len(t.Classes), t.Regions)
	}
	for i, row := range t.Classes {
		if len(row) != t.Regions {
			return fmt.Errorf("sim: topology class row %d has %d entries for %d regions", i, len(row), t.Regions)
		}
		for j, c := range row {
			if err := c.Validate(); err != nil {
				return fmt.Errorf("sim: topology class [%d][%d]: %w", i, j, err)
			}
		}
	}
	return nil
}

// Network is the simulated message fabric: point-to-point delivery with
// uniform random latency, independent (iid) loss, per-node down state
// and an optional link filter for partition experiments. The paper's
// probabilistic guarantees assume independently distributed loss (§2);
// the loss model here matches that assumption.
//
// Node identifiers are interned to dense indices on first contact
// (Attach, SetRegion, or appearing in a Send), so the delivery path —
// down-state bitset, handler table, per-kind counters — is slice-indexed
// and allocation-free: sends carry a typed delivery record through the
// scheduler's event slab instead of a capture closure.
type Network struct {
	sched  *Scheduler
	rng    *rand.Rand
	latMin time.Duration
	latMax time.Duration
	loss   float64
	filter func(from, to gossip.NodeID) bool
	topo   *Topology
	sizer  func(*gossip.Message) int
	stats  NetworkStats

	// Interned node state, indexed by the dense id assigned at intern
	// time. A detached node keeps its index; its handler goes nil.
	index    map[gossip.NodeID]int32
	ids      []gossip.NodeID
	handlers []func(*gossip.Message)
	regions  []int32  // -1 = unassigned
	down     []uint64 // bitset
}

// NetworkOption configures a Network.
type NetworkOption func(*Network) error

// WithLatency sets the delivery latency bounds (uniform in [min, max]).
func WithLatency(min, max time.Duration) NetworkOption {
	return func(n *Network) error {
		if err := (LatencyClass{Min: min, Max: max}).Validate(); err != nil {
			return fmt.Errorf("sim: invalid latency bounds [%v, %v]", min, max)
		}
		n.latMin, n.latMax = min, max
		return nil
	}
}

// WithLoss sets the iid message loss probability.
func WithLoss(p float64) NetworkOption {
	return func(n *Network) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("sim: loss probability %v out of [0,1]", p)
		}
		n.loss = p
		return nil
	}
}

// WithTopology installs a region latency model. Links whose endpoints
// both have a region (SetRegion) draw latency from the region pair's
// class and are counted in the Intra/CrossRegion stats; unclassified
// links keep the uniform WithLatency bounds.
func WithTopology(t Topology) NetworkOption {
	return func(n *Network) error {
		if err := t.Validate(); err != nil {
			return err
		}
		n.topo = &t
		return nil
	}
}

// WithMessageSizer installs the byte-size estimator behind the
// Intra/CrossRegionBytes counters — typically a wire codec's
// EncodedSize, so the simulated WAN traffic split is measured in real
// encoded bytes. Without it the region byte counters stay zero.
func WithMessageSizer(size func(*gossip.Message) int) NetworkOption {
	return func(n *Network) error {
		if size == nil {
			return fmt.Errorf("sim: message sizer must not be nil")
		}
		n.sizer = size
		return nil
	}
}

// NewNetwork creates a network driven by sched with randomness from rng.
func NewNetwork(sched *Scheduler, rng *rand.Rand, opts ...NetworkOption) (*Network, error) {
	if sched == nil || rng == nil {
		return nil, fmt.Errorf("sim: scheduler and rng must not be nil")
	}
	n := &Network{
		sched: sched,
		rng:   rng,
		index: make(map[gossip.NodeID]int32),
	}
	for _, opt := range opts {
		if err := opt(n); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// intern returns the dense index of id, assigning one on first contact.
func (n *Network) intern(id gossip.NodeID) int32 {
	if i, ok := n.index[id]; ok {
		return i
	}
	i := int32(len(n.ids))
	n.index[id] = i
	n.ids = append(n.ids, id)
	n.handlers = append(n.handlers, nil)
	n.regions = append(n.regions, -1)
	if int(i)/64 >= len(n.down) {
		n.down = append(n.down, 0)
	}
	return i
}

func (n *Network) isDown(i int32) bool {
	return n.down[i/64]&(1<<(uint(i)%64)) != 0
}

// Attach registers the delivery handler for a node.
func (n *Network) Attach(id gossip.NodeID, handler func(*gossip.Message)) {
	n.handlers[n.intern(id)] = handler
}

// Detach removes a node from the network: subsequent sends to it count
// as unrouted and its down state clears.
func (n *Network) Detach(id gossip.NodeID) {
	i := n.intern(id)
	n.handlers[i] = nil
	n.down[i/64] &^= 1 << (uint(i) % 64)
}

// SetDown marks a node unreachable (crash simulation). Messages to and
// from a down node are dropped.
func (n *Network) SetDown(id gossip.NodeID, down bool) {
	i := n.intern(id)
	if down {
		n.down[i/64] |= 1 << (uint(i) % 64)
	} else {
		n.down[i/64] &^= 1 << (uint(i) % 64)
	}
}

// SetRegion assigns a node to a topology region (see WithTopology).
func (n *Network) SetRegion(id gossip.NodeID, region int) error {
	if n.topo == nil {
		return fmt.Errorf("sim: SetRegion without a topology (WithTopology)")
	}
	if region < 0 || region >= n.topo.Regions {
		return fmt.Errorf("sim: region %d out of [0, %d)", region, n.topo.Regions)
	}
	n.regions[n.intern(id)] = int32(region)
	return nil
}

// Region reports a node's region, or -1 when unassigned.
func (n *Network) Region(id gossip.NodeID) int {
	if i, ok := n.index[id]; ok {
		return int(n.regions[i])
	}
	return -1
}

// SetLinkFilter installs a predicate; links for which it returns false
// drop all traffic. Pass nil to clear.
func (n *Network) SetLinkFilter(filter func(from, to gossip.NodeID) bool) {
	n.filter = filter
}

// Stats returns a copy of the traffic counters.
func (n *Network) Stats() NetworkStats { return n.stats }

// AttachNode registers a node as the delivery handler: incoming messages
// are fed to receive, and any control messages it returns (recovery
// requests and responses) are routed back through the network. This is
// the standard way to wire a protocol node into the fabric.
func (n *Network) AttachNode(id gossip.NodeID, receive func(*gossip.Message) []gossip.Outgoing) {
	n.Attach(id, func(m *gossip.Message) {
		for _, out := range receive(m) {
			n.Send(id, out.To, out.Msg)
		}
	})
}

// Send routes a message, applying down state, the link filter, loss and
// latency. Delivery re-checks the destination's state at arrival time.
// The steady-state path allocates nothing: the in-flight message rides a
// typed delivery record in the scheduler's event slab.
func (n *Network) Send(from, to gossip.NodeID, msg *gossip.Message) {
	n.stats.Sent++
	switch msg.Kind {
	case gossip.KindRecoveryRequest:
		n.stats.RecoveryRequestSent++
	case gossip.KindRecoveryResponse:
		n.stats.RecoveryResponseSent++
	case gossip.KindPing:
		n.stats.PingSent++
	case gossip.KindPingAck:
		n.stats.PingAckSent++
	case gossip.KindPingReq:
		n.stats.PingReqSent++
	default:
		n.stats.GossipSent++
	}
	fi, ti := n.intern(from), n.intern(to)
	if n.isDown(fi) || n.isDown(ti) {
		n.stats.DownDropped++
		return
	}
	if n.filter != nil && !n.filter(from, to) {
		n.stats.Filtered++
		return
	}
	if n.loss > 0 && n.rng.Float64() < n.loss {
		n.stats.LossDropped++
		return
	}
	latMin, latMax := n.latMin, n.latMax
	if n.topo != nil {
		fr, tr := n.regions[fi], n.regions[ti]
		if fr >= 0 && tr >= 0 {
			class := n.topo.Classes[fr][tr]
			latMin, latMax = class.Min, class.Max
			var size uint64
			if n.sizer != nil {
				size = uint64(n.sizer(msg))
			}
			if fr == tr {
				n.stats.IntraRegionSent++
				n.stats.IntraRegionBytes += size
			} else {
				n.stats.CrossRegionSent++
				n.stats.CrossRegionBytes += size
			}
		}
	}
	lat := latMin
	if latMax > latMin {
		lat += time.Duration(n.rng.Int64N(int64(latMax - latMin + 1)))
	}
	n.sched.scheduleDelivery(lat, n, ti, msg)
}

// deliver lands a message on the interned destination at its delivery
// instant: the slab event's execution.
func (n *Network) deliver(to int32, msg *gossip.Message) {
	if n.isDown(to) {
		n.stats.DownDropped++
		return
	}
	h := n.handlers[to]
	if h == nil {
		n.stats.Unrouted++
		return
	}
	n.stats.Delivered++
	h(msg)
}

package sim

import (
	"fmt"
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
)

// The benchmarks below are CI-gated against BENCH_7.json by benchgate:
// ns/op regressions beyond tolerance and ANY allocation on the
// steady-state schedule/execute and send/deliver paths fail the build.
// The slab reaches steady state once the free list is primed, so each
// benchmark warms up before resetting the timer.

// benchFn is a package-level no-op so scheduling it captures nothing.
var benchSink int

func benchFn() { benchSink++ }

// BenchmarkSchedulerStep measures the steady-state schedule+execute
// cycle against a standing population of pending events: one After and
// one Step per iteration with slot reuse, the shape of a large-n
// simulation's tick churn.
func BenchmarkSchedulerStep(b *testing.B) {
	s := NewScheduler(Epoch)
	const standing = 1024
	for i := 0; i < standing; i++ {
		s.After(time.Duration(i)*time.Microsecond, benchFn)
	}
	// Prime the free list so the slab stops growing.
	for i := 0; i < standing; i++ {
		s.After(time.Duration(i)*time.Microsecond, benchFn)
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%standing)*time.Microsecond, benchFn)
		s.Step()
	}
}

// BenchmarkNetworkSend measures the full fabric hot path — counter
// bookkeeping, interning hits, latency draw, typed delivery record,
// heap insert, pop and handler dispatch — with one Send and one Step
// per iteration across an attached 64-node group.
func BenchmarkNetworkSend(b *testing.B) {
	s := NewScheduler(Epoch)
	n, err := NewNetwork(s, NetworkRNG(1), WithLatency(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	const group = 64
	ids := make([]gossip.NodeID, group)
	for i := range ids {
		ids[i] = gossip.NodeID(fmt.Sprintf("n%03d", i))
		n.Attach(ids[i], func(*gossip.Message) { benchSink++ })
	}
	msg := &gossip.Message{From: ids[0]}
	// Warm the intern table and slab.
	for i := 0; i < 4*group; i++ {
		n.Send(ids[i%group], ids[(i+1)%group], msg)
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(ids[i%group], ids[(i+1)%group], msg)
		s.Step()
	}
}

// TestSchedulerStepAllocFree asserts the zero-allocation contract on
// the steady-state schedule+execute cycle: after the slab free list is
// primed, After+Step must not touch the heap at all.
func TestSchedulerStepAllocFree(t *testing.T) {
	s := NewScheduler(Epoch)
	for i := 0; i < 256; i++ {
		s.After(time.Duration(i)*time.Microsecond, benchFn)
	}
	for i := 0; i < 512; i++ {
		s.After(time.Microsecond, benchFn)
		s.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(time.Microsecond, benchFn)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state After+Step allocates %v allocs/op, want 0", allocs)
	}
}

// TestNetworkSendAllocFree asserts the zero-allocation contract on the
// steady-state send/deliver path, including with a region topology and
// message sizer configured (the scale sweep's configuration).
func TestNetworkSendAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name    string
		regions bool
		opts    []NetworkOption
	}{
		{"uniform-latency", false, []NetworkOption{WithLatency(time.Millisecond, 5*time.Millisecond)}},
		{"topology", true, []NetworkOption{
			WithTopology(NewTwoTierTopology(4,
				LatencyClass{Min: 2 * time.Millisecond, Max: 10 * time.Millisecond},
				LatencyClass{Min: 60 * time.Millisecond, Max: 120 * time.Millisecond})),
			WithMessageSizer(func(*gossip.Message) int { return 128 }),
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewScheduler(Epoch)
			n, err := NewNetwork(s, NetworkRNG(1), tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]gossip.NodeID, 16)
			for i := range ids {
				ids[i] = gossip.NodeID(fmt.Sprintf("n%03d", i))
				n.Attach(ids[i], func(*gossip.Message) { benchSink++ })
				if tc.regions {
					if err := n.SetRegion(ids[i], i%4); err != nil {
						t.Fatal(err)
					}
				}
			}
			msg := &gossip.Message{From: ids[0]}
			for i := 0; i < 256; i++ {
				n.Send(ids[i%len(ids)], ids[(i+1)%len(ids)], msg)
				s.Step()
			}
			i := 0
			allocs := testing.AllocsPerRun(1000, func() {
				n.Send(ids[i%len(ids)], ids[(i+1)%len(ids)], msg)
				s.Step()
				i++
			})
			if allocs != 0 {
				t.Fatalf("steady-state Send+Step allocates %v allocs/op, want 0", allocs)
			}
		})
	}
}

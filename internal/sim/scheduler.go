// Package sim is a deterministic discrete-event simulator: a virtual
// clock, an event scheduler and a network model with configurable
// latency and loss. It stands in for the event-based simulator the
// paper's authors used (§4, "Experimental Settings"): the protocol under
// test is the same state machine the real-time runtime drives, so
// simulation results and prototype results differ only in the driver.
package sim

import (
	"container/heap"
	"time"
)

// Epoch is the conventional start-of-simulation instant.
var Epoch = time.Unix(0, 0).UTC()

type scheduled struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	// index is the event's current heap position, maintained by the
	// heap.Interface callbacks; -1 once popped or removed. It lets
	// Cancel excise the entry immediately instead of leaving a
	// tombstone until its pop time.
	index int
}

type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*scheduled)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Handle allows cancelling a scheduled callback.
type Handle struct {
	s  *Scheduler
	ev *scheduled
}

// Cancel prevents the callback from running and removes it from the
// scheduler immediately, so churn/latency simulations that cancel many
// timers do not accumulate dead heap entries until their pop time.
// Cancelling an executed or already cancelled callback is a no-op.
func (h Handle) Cancel() {
	ev := h.ev
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	if h.s != nil && ev.index >= 0 {
		heap.Remove(&h.s.heap, ev.index)
	}
}

// Scheduler is a deterministic discrete-event loop. Events scheduled
// for the same instant run in scheduling order. Scheduler is not safe
// for concurrent use: simulations are single-threaded by design.
type Scheduler struct {
	now  time.Time
	heap eventHeap
	seq  uint64
}

// NewScheduler returns a scheduler whose clock starts at start.
func NewScheduler(start time.Time) *Scheduler {
	return &Scheduler{now: start}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Len reports the number of pending events. Cancelled events are
// removed from the heap at Cancel time and never count.
func (s *Scheduler) Len() int { return len(s.heap) }

// At schedules fn to run at instant t. Instants in the past run
// immediately on the next Step at the current time.
func (s *Scheduler) At(t time.Time, fn func()) Handle {
	if t.Before(s.now) {
		t = s.now
	}
	ev := &scheduled{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.heap, ev)
	return Handle{s: s, ev: ev}
}

// After schedules fn to run d from now. Non-positive d means "next
// step".
func (s *Scheduler) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Step runs the next pending event, advancing the clock to its instant.
// It reports whether an event ran.
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		ev := heap.Pop(&s.heap).(*scheduled)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes all events scheduled at or before t, then advances
// the clock to t.
func (s *Scheduler) RunUntil(t time.Time) {
	for len(s.heap) > 0 {
		next := s.heap[0]
		if next.cancelled {
			heap.Pop(&s.heap)
			continue
		}
		if next.at.After(t) {
			break
		}
		s.Step()
	}
	if s.now.Before(t) {
		s.now = t
	}
}

// RunFor is RunUntil(Now().Add(d)).
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunUntil(s.now.Add(d))
}

// Drain runs events until none remain or the safety limit is hit,
// returning the number executed. The limit guards against runaway
// self-rescheduling loops in tests.
func (s *Scheduler) Drain(limit int) int {
	ran := 0
	for ran < limit && s.Step() {
		ran++
	}
	return ran
}

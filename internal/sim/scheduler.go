// Package sim is a deterministic discrete-event simulator: a virtual
// clock, an event scheduler and a network model with configurable
// latency and loss. It stands in for the event-based simulator the
// paper's authors used (§4, "Experimental Settings"): the protocol under
// test is the same state machine the real-time runtime drives, so
// simulation results and prototype results differ only in the driver.
package sim

import (
	"time"

	"adaptivegossip/internal/gossip"
)

// Epoch is the conventional start-of-simulation instant.
var Epoch = time.Unix(0, 0).UTC()

// slot is one scheduled event in the value slab. Free slots are chained
// through next; live slots sit in the heap at position pos. The
// generation counter advances every time the slot is released, so a
// Handle outliving its event can never touch the slot's next tenant.
//
// An event is either a callback (fn != nil) or a typed network delivery
// record (net != nil): the simulated fabric routes one message per send
// without allocating a capture closure, the dominant event population
// of large-n sweeps.
type slot struct {
	at  int64 // event instant, nanoseconds since the scheduler base
	seq uint64
	gen uint32
	pos int32 // heap position; -1 while free
	// free-list link, meaningful only while the slot is free.
	next int32

	fn func()

	// Typed delivery record (fn == nil): deliver msg to the interned
	// node to on net.
	net *Network
	to  int32
	msg *gossip.Message
}

// Handle allows cancelling a scheduled callback. The zero Handle is
// valid and cancels nothing.
//
// Handles are generation-counted: a Handle refers to (slot, generation),
// and the generation advances whenever the slot is released (the event
// ran, was cancelled, or the scheduler reused the slot for a later
// event). Cancelling a stale Handle — after its event already executed
// or was cancelled, even if the slot now holds an unrelated event — is
// therefore always a safe no-op, never a cancellation of the slot's new
// tenant.
type Handle struct {
	s    *Scheduler
	slot int32
	gen  uint32
}

// Cancel prevents the callback from running and removes it from the
// scheduler immediately, so churn/latency simulations that cancel many
// timers do not accumulate dead heap entries until their pop time.
// Cancelling an executed, already cancelled or zero Handle is a no-op.
func (h Handle) Cancel() {
	s := h.s
	if s == nil || int(h.slot) >= len(s.slots) {
		return
	}
	sl := &s.slots[h.slot]
	if sl.gen != h.gen || sl.pos < 0 {
		return
	}
	s.heapRemove(sl.pos)
	s.release(h.slot)
}

// Scheduler is a deterministic discrete-event loop. Events scheduled
// for the same instant run in scheduling order. Scheduler is not safe
// for concurrent use: simulations are single-threaded by design.
//
// Events live in a value slab indexed by a 4-ary heap of slot numbers:
// scheduling and running an event moves integers and reuses slab slots
// through a free list instead of allocating per-event heap nodes, which
// keeps n >= 10,000-node simulations off the garbage collector.
type Scheduler struct {
	base     time.Time
	now      int64 // virtual clock, nanoseconds since base
	slots    []slot
	free     int32 // free-list head, -1 when empty
	heap     []int32
	seq      uint64
	executed uint64
}

// NewScheduler returns a scheduler whose clock starts at start.
func NewScheduler(start time.Time) *Scheduler {
	return &Scheduler{base: start, free: -1}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.base.Add(time.Duration(s.now)) }

// Len reports the number of pending events. Cancelled events are
// released at Cancel time and never count.
func (s *Scheduler) Len() int { return len(s.heap) }

// Executed reports the total number of events run since creation — the
// throughput numerator of events/sec measurements.
func (s *Scheduler) Executed() uint64 { return s.executed }

// alloc takes a slot off the free list, growing the slab when none is
// free, and stamps the event's time and sequence. The slot's generation
// is whatever the slot carries: it advanced when the previous tenant
// was released.
func (s *Scheduler) alloc(atNs int64) int32 {
	id := s.free
	if id >= 0 {
		s.free = s.slots[id].next
	} else {
		id = int32(len(s.slots))
		s.slots = append(s.slots, slot{})
	}
	sl := &s.slots[id]
	sl.at = atNs
	sl.seq = s.seq
	s.seq++
	return id
}

// release returns a slot to the free list, bumping its generation so
// outstanding Handles go stale, and dropping event references so the
// slab does not retain callbacks or messages.
func (s *Scheduler) release(id int32) {
	sl := &s.slots[id]
	sl.gen++
	sl.pos = -1
	sl.fn = nil
	sl.net = nil
	sl.msg = nil
	sl.next = s.free
	s.free = id
}

// clampNs converts an absolute instant to slab time, clamping instants
// in the past to "now" (they run on the next Step, as documented on At).
func (s *Scheduler) clampNs(t time.Time) int64 {
	ns := int64(t.Sub(s.base))
	if ns < s.now {
		ns = s.now
	}
	return ns
}

// At schedules fn to run at instant t. Instants in the past run
// immediately on the next Step at the current time.
func (s *Scheduler) At(t time.Time, fn func()) Handle {
	id := s.alloc(s.clampNs(t))
	s.slots[id].fn = fn
	s.heapPush(id)
	return Handle{s: s, slot: id, gen: s.slots[id].gen}
}

// After schedules fn to run d from now. Non-positive d means "next
// step".
func (s *Scheduler) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	id := s.alloc(s.now + int64(d))
	s.slots[id].fn = fn
	s.heapPush(id)
	return Handle{s: s, slot: id, gen: s.slots[id].gen}
}

// scheduleDelivery enqueues a typed message-delivery event: the slab
// form of the fabric's "deliver msg to node after lat" closure, without
// the closure.
func (s *Scheduler) scheduleDelivery(lat time.Duration, net *Network, to int32, msg *gossip.Message) {
	if lat < 0 {
		lat = 0
	}
	id := s.alloc(s.now + int64(lat))
	sl := &s.slots[id]
	sl.net = net
	sl.to = to
	sl.msg = msg
	s.heapPush(id)
}

// Step runs the next pending event, advancing the clock to its instant.
// It reports whether an event ran.
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	id := s.heap[0]
	s.heapRemove(0)
	sl := &s.slots[id]
	if sl.at > s.now {
		s.now = sl.at
	}
	// Copy the event out and release the slot before executing: the
	// callback may schedule new events into the just-freed slot, and a
	// Handle to this event must already be stale while it runs.
	fn := sl.fn
	net, to, msg := sl.net, sl.to, sl.msg
	s.release(id)
	s.executed++
	if fn != nil {
		fn()
	} else {
		net.deliver(to, msg)
	}
	return true
}

// RunUntil executes all events scheduled at or before t, then advances
// the clock to t.
func (s *Scheduler) RunUntil(t time.Time) {
	tNs := int64(t.Sub(s.base))
	for len(s.heap) > 0 && s.slots[s.heap[0]].at <= tNs {
		s.Step()
	}
	if s.now < tNs {
		s.now = tNs
	}
}

// RunFor is RunUntil(Now().Add(d)).
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunUntil(s.Now().Add(d))
}

// Drain runs events until none remain or the safety limit is hit,
// returning the number executed. The limit guards against runaway
// self-rescheduling loops in tests.
func (s *Scheduler) Drain(limit int) int {
	ran := 0
	for ran < limit && s.Step() {
		ran++
	}
	return ran
}

// before orders two live slots: by instant, ties broken by scheduling
// order (FIFO within an instant).
func (s *Scheduler) before(a, b int32) bool {
	sa, sb := &s.slots[a], &s.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

// The heap is 4-ary: shallower than a binary heap (fewer cache lines
// touched per sift on the deep heaps a 10k-node sweep builds) at the
// cost of three extra comparisons per level, which the slot-index
// indirection amortizes.

func (s *Scheduler) heapPush(id int32) {
	i := len(s.heap)
	s.heap = append(s.heap, id)
	s.slots[id].pos = int32(i)
	s.siftUp(i)
}

// heapRemove excises the entry at heap position pos, restoring heap
// order. The removed slot's pos is left for the caller to reset via
// release.
func (s *Scheduler) heapRemove(pos int32) {
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap = s.heap[:n]
	if int(pos) == n {
		return
	}
	s.heap[pos] = last
	s.slots[last].pos = pos
	s.siftDown(int(pos))
	s.siftUp(int(s.slots[last].pos))
}

func (s *Scheduler) siftUp(i int) {
	h := s.heap
	id := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !s.before(id, h[p]) {
			break
		}
		h[i] = h[p]
		s.slots[h[i]].pos = int32(i)
		i = p
	}
	h[i] = id
	s.slots[id].pos = int32(i)
}

func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	id := h[i]
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if s.before(h[j], h[best]) {
				best = j
			}
		}
		if !s.before(h[best], id) {
			break
		}
		h[i] = h[best]
		s.slots[h[i]].pos = int32(i)
		i = best
	}
	h[i] = id
	s.slots[id].pos = int32(i)
}

package sim

import "math/rand/v2"

// splitmix64 is the standard SplitMix64 mixing function, used to derive
// well-separated RNG streams from a single user seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Stream namespaces. Every per-node stream is derived from the run seed
// and the node's *index* — never from attach or construction order — so
// a simulation's randomness is a pure function of (seed, topology) and
// stays bit-identical when runs execute on the parallel sweep engine or
// nodes are wired up in a different order.
//
// Namespaces are spaced 2^32 apart so per-node streams cannot collide
// across namespaces at any realistic group size. (The pre-PR-10 ad-hoc
// offsets — node i at stream i+1, tick phases at 10_000+i — collided at
// n >= 10,000: node 9999's protocol RNG was node 0's phase RNG.)
const (
	streamNetwork      uint64 = 0
	streamNodeBase     uint64 = 1 << 32
	streamPhaseBase    uint64 = 2 << 32
	streamWorkloadBase uint64 = 3 << 32
)

// DeriveRNG returns a deterministic generator for (seed, stream).
// Distinct streams from the same seed are statistically independent;
// simulations derive one stream per node plus streams for the network
// and workload so that changing one component's consumption does not
// perturb the others. Prefer the named derivations below, which keep
// the namespaces separated.
func DeriveRNG(seed int64, stream uint64) *rand.Rand {
	s1 := splitmix64(uint64(seed) ^ splitmix64(stream))
	s2 := splitmix64(s1 ^ 0xD1B54A32D192ED03)
	return rand.New(rand.NewPCG(s1, s2))
}

// NetworkRNG derives the fabric's stream (latency jitter, loss draws).
func NetworkRNG(seed int64) *rand.Rand {
	return DeriveRNG(seed, streamNetwork)
}

// NodeRNG derives node's protocol stream (peer sampling and any other
// per-node protocol randomness) from its index.
func NodeRNG(seed int64, node int) *rand.Rand {
	return DeriveRNG(seed, streamNodeBase+uint64(node))
}

// PhaseRNG derives node's tick-phase stream from its index.
func PhaseRNG(seed int64, node int) *rand.Rand {
	return DeriveRNG(seed, streamPhaseBase+uint64(node))
}

// WorkloadRNG derives node's publisher stream (inter-arrival jitter)
// from its index.
func WorkloadRNG(seed int64, node int) *rand.Rand {
	return DeriveRNG(seed, streamWorkloadBase+uint64(node))
}

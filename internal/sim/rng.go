package sim

import "math/rand/v2"

// splitmix64 is the standard SplitMix64 mixing function, used to derive
// well-separated RNG streams from a single user seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeriveRNG returns a deterministic generator for (seed, stream).
// Distinct streams from the same seed are statistically independent;
// simulations derive one stream per node plus streams for the network
// and workload so that changing one component's consumption does not
// perturb the others.
func DeriveRNG(seed int64, stream uint64) *rand.Rand {
	s1 := splitmix64(uint64(seed) ^ splitmix64(stream))
	s2 := splitmix64(s1 ^ 0xD1B54A32D192ED03)
	return rand.New(rand.NewPCG(s1, s2))
}

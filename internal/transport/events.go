package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"adaptivegossip/internal/gossip"
)

// Event-section layer (wire v5): events are encoded columnar, grouped
// into runs of consecutive same-origin events so each sender id is
// written once per run while the original event order is preserved
// exactly (decode must reproduce the input order — the simulator's
// bit-identical replays and the round-trip tests depend on it).
//
// Section content (all integers unsigned varints unless noted):
//
//	count   total events
//	runs, until count events are consumed:
//	    origin  uvarint len + bytes
//	    runLen  events in this run (>= 1)
//	    seq     first value, then runLen-1 zigzag deltas
//	    age     first value, then runLen-1 zigzag deltas
//	    [if traced] hop per event
//	    per event: payload uvarint len + bytes
//
// A 120-event buffer snapshot from one origin thus writes the origin id
// once and mostly 1-byte seq/age deltas, against v4's 14+ bytes of
// fixed-width headers per event.

// uvarintLen returns the encoded size of v as an unsigned varint.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// zigzag maps a signed delta onto the unsigned varint space so small
// negative deltas stay small on the wire.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(z uint64) int64 { return int64(z>>1) ^ -int64(z&1) }

// appendEventSection writes the columnar event rows of m (the section
// *content*; the compression framing around it is written by the
// codec). Events are validated already.
//
//gossip:hotpath
func appendEventSection(buf []byte, m *gossip.Message) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m.Events)))
	for start := 0; start < len(m.Events); {
		end := gossip.NextEventRun(m.Events, start)
		run := m.Events[start:end]
		buf = binary.AppendUvarint(buf, uint64(len(run[0].ID.Origin)))
		buf = append(buf, run[0].ID.Origin...)
		buf = binary.AppendUvarint(buf, uint64(len(run)))
		buf = binary.AppendUvarint(buf, run[0].ID.Seq)
		for i := 1; i < len(run); i++ {
			buf = binary.AppendUvarint(buf, zigzag(int64(run[i].ID.Seq-run[i-1].ID.Seq)))
		}
		buf = binary.AppendUvarint(buf, uint64(run[0].Age))
		for i := 1; i < len(run); i++ {
			buf = binary.AppendUvarint(buf, zigzag(int64(run[i].Age)-int64(run[i-1].Age)))
		}
		if m.Traced {
			for i := range run {
				buf = binary.AppendUvarint(buf, uint64(run[i].Hop))
			}
		}
		for i := range run {
			buf = binary.AppendUvarint(buf, uint64(len(run[i].Payload)))
			buf = append(buf, run[i].Payload...)
		}
		start = end
	}
	return buf
}

// eventSectionSize returns the exact byte size appendEventSection will
// write for m.
func eventSectionSize(m *gossip.Message) int {
	n := uvarintLen(uint64(len(m.Events)))
	for start := 0; start < len(m.Events); {
		end := gossip.NextEventRun(m.Events, start)
		run := m.Events[start:end]
		n += uvarintLen(uint64(len(run[0].ID.Origin))) + len(run[0].ID.Origin)
		n += uvarintLen(uint64(len(run)))
		n += uvarintLen(run[0].ID.Seq)
		for i := 1; i < len(run); i++ {
			n += uvarintLen(zigzag(int64(run[i].ID.Seq - run[i-1].ID.Seq)))
		}
		n += uvarintLen(uint64(run[0].Age))
		for i := 1; i < len(run); i++ {
			n += uvarintLen(zigzag(int64(run[i].Age) - int64(run[i-1].Age)))
		}
		if m.Traced {
			for i := range run {
				n += uvarintLen(uint64(run[i].Hop))
			}
		}
		for i := range run {
			n += uvarintLen(uint64(len(run[i].Payload))) + len(run[i].Payload)
		}
		start = end
	}
	return n
}

// decodeEventSection parses the columnar event rows into m.Events,
// enforcing the codec limits and full validity of every decoded field
// (a successful decode must re-encode). rows must be exactly the
// section content; trailing bytes error.
func (c Codec) decodeEventSection(rows []byte, m *gossip.Message) error {
	r := &reader{data: rows}
	count, err := r.uvarint()
	if err != nil {
		return err
	}
	if count > uint64(c.MaxEvents) {
		return fmt.Errorf("%w: %d events", ErrTooLarge, count)
	}
	if count > 0 {
		// Cap the preallocation by what the remaining input could hold:
		// each event needs at least 3 bytes of columns (seq, age,
		// payload length).
		capN := int(count)
		if maxN := (len(rows)-r.off)/3 + 1; capN > maxN {
			capN = maxN
		}
		m.Events = make([]gossip.Event, 0, capN)
	}
	for uint64(len(m.Events)) < count {
		olen, err := r.uvarint()
		if err != nil {
			return err
		}
		if olen > uint64(c.MaxIDLen) {
			return fmt.Errorf("%w: origin id %d bytes", ErrTooLarge, olen)
		}
		if err := r.need(int(olen)); err != nil {
			return err
		}
		origin := gossip.NodeID(rows[r.off : r.off+int(olen)])
		r.off += int(olen)
		runLen, err := r.uvarint()
		if err != nil {
			return err
		}
		if runLen == 0 {
			return fmt.Errorf("transport: empty event run")
		}
		if runLen > count-uint64(len(m.Events)) {
			return fmt.Errorf("%w: run of %d events", ErrTooLarge, runLen)
		}
		if runLen > uint64((len(rows)-r.off)/3+1) {
			return ErrTruncated
		}
		base := len(m.Events)
		var seq uint64
		for i := 0; i < int(runLen); i++ {
			z, err := r.uvarint()
			if err != nil {
				return err
			}
			if i == 0 {
				seq = z
			} else {
				seq += uint64(unzigzag(z))
			}
			m.AppendEvent(gossip.Event{ID: gossip.EventID{Origin: origin, Seq: seq}})
		}
		var age int64
		for i := 0; i < int(runLen); i++ {
			z, err := r.uvarint()
			if err != nil {
				return err
			}
			if i == 0 {
				if z > math.MaxInt64 {
					return fmt.Errorf("%w: event age", ErrTooLarge)
				}
				age = int64(z)
			} else {
				age += unzigzag(z)
			}
			if age < 0 {
				return fmt.Errorf("transport: negative event age %d", age)
			}
			m.Events[base+i].Age = int(age)
		}
		if m.Traced {
			for i := 0; i < int(runLen); i++ {
				hop, err := r.uvarint()
				if err != nil {
					return err
				}
				if hop > maxUint16 {
					return fmt.Errorf("%w: hop count %d", ErrTooLarge, hop)
				}
				m.Events[base+i].Hop = int(hop)
			}
		}
		for i := 0; i < int(runLen); i++ {
			plen, err := r.uvarint()
			if err != nil {
				return err
			}
			if plen > uint64(c.MaxPayload) {
				return fmt.Errorf("%w: payload %d bytes", ErrTooLarge, plen)
			}
			if err := r.need(int(plen)); err != nil {
				return err
			}
			if plen > 0 {
				payload := make([]byte, plen)
				copy(payload, rows[r.off:])
				m.Events[base+i].Payload = payload
			}
			r.off += int(plen)
		}
	}
	if r.off != len(rows) {
		return fmt.Errorf("transport: %d trailing bytes in event section", len(rows)-r.off)
	}
	return nil
}

// Legacy (wire v4) inline event list: fixed-width headers per event,
// kept for cross-version interop and the wirecost comparison arm.

// appendEventsV4 writes the v4 inline event list.
func appendEventsV4(buf []byte, m *gossip.Message) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Events)))
	for _, ev := range m.Events {
		buf = appendString(buf, string(ev.ID.Origin))
		buf = binary.BigEndian.AppendUint64(buf, ev.ID.Seq)
		buf = binary.BigEndian.AppendUint32(buf, uint32(ev.Age))
		if m.Traced {
			buf = binary.BigEndian.AppendUint16(buf, uint16(ev.Hop))
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(ev.Payload)))
		buf = append(buf, ev.Payload...)
	}
	return buf
}

// eventWireSizeV4 is the v4 inline wire size of one event.
func eventWireSizeV4(ev gossip.Event, traced bool) int {
	n := 2 + len(ev.ID.Origin) + 8 + 4 + 4 + len(ev.Payload)
	if traced {
		n += 2
	}
	return n
}

// eventsSizeV4 is the v4 inline wire size of the whole event list.
func eventsSizeV4(m *gossip.Message) int {
	n := 4
	for _, ev := range m.Events {
		n += eventWireSizeV4(ev, m.Traced)
	}
	return n
}

// decodeEventsV4 parses the v4 inline event list into m.Events.
func (c Codec) decodeEventsV4(r *reader, m *gossip.Message, traced bool) error {
	ne, err := r.u32()
	if err != nil {
		return err
	}
	if int64(ne) > int64(c.MaxEvents) {
		return fmt.Errorf("%w: %d events", ErrTooLarge, ne)
	}
	if ne == 0 {
		return nil
	}
	m.Events = make([]gossip.Event, 0, ne)
	for i := 0; i < int(ne); i++ {
		origin, err := r.str(c.MaxIDLen)
		if err != nil {
			return err
		}
		seq, err := r.u64()
		if err != nil {
			return err
		}
		age, err := r.u32()
		if err != nil {
			return err
		}
		var hop uint16
		if traced {
			if hop, err = r.u16(); err != nil {
				return err
			}
		}
		plen, err := r.u32()
		if err != nil {
			return err
		}
		if int64(plen) > int64(c.MaxPayload) {
			return fmt.Errorf("%w: payload %d bytes", ErrTooLarge, plen)
		}
		if err := r.need(int(plen)); err != nil {
			return err
		}
		var payload []byte
		if plen > 0 {
			payload = make([]byte, plen)
			copy(payload, r.data[r.off:])
		}
		r.off += int(plen)
		m.AppendEvent(gossip.Event{
			ID:      gossip.EventID{Origin: gossip.NodeID(origin), Seq: seq},
			Age:     int(age),
			Hop:     int(hop),
			Payload: payload,
		})
	}
	return nil
}

// Package transport carries gossip messages between nodes: a versioned
// binary wire codec, an in-memory network with injectable latency and
// loss (the fabric for in-process clusters), and a UDP transport with
// datagram splitting (the fabric for real deployments, standing in for
// the paper's 60-workstation Ethernet testbed).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"adaptivegossip/internal/gossip"
)

// Wire format v5 (big endian fixed-width fields, unsigned varints where
// noted). The codec is layered: the frame and control encoding lives in
// frame.go, the columnar event section in events.go, the compression
// seam in compress.go; this file orchestrates them.
//
//	magic   [3]byte "AGB"
//	version u8      = 5
//	flags   u8      bit0: adaptation header present
//	                bit1: group tag present
//	                bit2: trace context present
//	                bit3: event section compressed (v5)
//	kind    u8      message kind (gossip | recovery request/response |
//	                ping | ping-ack | ping-req)
//	from    u16 len + bytes
//	[if group] group u16 len + bytes
//	round   u64
//	[if adaptive] samplePeriod u64, minBuff i32
//	kmin    u16 count, each: node u16 len + bytes, cap i32
//	digest  u16 count, each: origin u16 len + bytes, seq u64
//	request u16 count, each: origin u16 len + bytes, seq u64
//	probe   u16 len + bytes
//	probeSeq u64
//	updates u16 count, each: node u16 len + bytes, status u8,
//	        incarnation u64
//	subs    u16 count, each: u16 len + bytes
//	unsubs  u16 count, each: u16 len + bytes
//	health  u16 count, each:
//	        node u16 len + bytes, round u64, wallMillis u64,
//	        published u64, delivered u64, droppedCapacity u64,
//	        droppedExpired u64, messagesSent u64, messagesReceived u64,
//	        bytesSent u64, bytesReceived u64,
//	        bufferLen i32, bufferCap i32,
//	        hopsCount u64, hopsSum u64,
//	        buckets u8 count, each: index u8, value u64
//	        (bucket indexes strictly increasing, values non-zero —
//	        the canonical form, enforced on decode)
//	event section (last):
//	        rawLen  uvarint  decompressed section size
//	        comp    u8       compressor id (0 = stored)
//	        [if comp != 0] wireLen uvarint
//	        bytes            columnar event rows (events.go), stored or
//	                         compressed per comp
//
// Version 2 added the kind byte and the digest/request id lists (the
// anti-entropy recovery traffic). Version 3 added the probe kinds and
// the probe/probeSeq/updates fields (SWIM-style failure detection).
// Version 4 added the per-event trace context (the traced flag and hop
// counters) and the trailing health-digest section. Version 5 moved the
// event list behind the control fields into a length-prefixed section,
// re-encoded it columnar (origins written once per run, seqs and ages
// zigzag-delta varints — events.go) and added the compression seam
// (compress.go). Version 4 and 3 payloads still decode; older versions
// are rejected.

// Codec encodes and decodes gossip messages with hard limits that bound
// the memory a hostile or corrupt datagram can make the decoder commit.
type Codec struct {
	// MaxPayload bounds a single event payload.
	MaxPayload int
	// MaxIDLen bounds node identifier lengths.
	MaxIDLen int
	// MaxEvents bounds the events per message accepted when decoding.
	MaxEvents int

	// WireVersion selects the encoding version: 0 (the default) and 5
	// encode the current columnar format, 4 the legacy inline format
	// (for interop experiments and the wirecost comparison arm).
	// Decoding always accepts every supported version.
	WireVersion int
	// Compression, when non-nil, compresses the event section of every
	// encoded v5 frame (falling back to stored form when compression
	// does not pay). Decoding is independent: compressed frames from
	// peers decode regardless of this setting.
	Compression Compressor
	// Stats, when non-nil, accumulates pre-/post-compression event
	// section bytes across encodes.
	Stats *CodecStats
}

// CodecStats counts event-section bytes before and after compression,
// accumulated atomically across every v5 encode through the codec.
// Equal counters mean compression is off (or never paid for itself).
type CodecStats struct {
	PreCompressionBytes  atomic.Uint64
	PostCompressionBytes atomic.Uint64
}

// DefaultCodec returns the limits used across the repository.
func DefaultCodec() Codec {
	return Codec{MaxPayload: 1 << 20, MaxIDLen: 256, MaxEvents: 1 << 16}
}

// Errors reported by the codec.
var (
	ErrTruncated = errors.New("transport: truncated message")
	ErrBadMagic  = errors.New("transport: bad magic or version")
	ErrTooLarge  = errors.New("transport: field exceeds codec limit")
)

// maxEventSectionRaw caps the decompressed event-section size a decoder
// will commit to, independent of the (attacker-controlled) rawLen
// field. Real sections are datagram-sized; the cap only exists to bound
// decompression bombs.
const maxEventSectionRaw = 1 << 27

func (c Codec) limits() Codec {
	d := DefaultCodec()
	if c.MaxPayload <= 0 {
		c.MaxPayload = d.MaxPayload
	}
	if c.MaxIDLen <= 0 {
		c.MaxIDLen = d.MaxIDLen
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = d.MaxEvents
	}
	return c
}

// sectionPool holds scratch buffers for the compressed encode path (raw
// section staging and compressor output).
var sectionPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// Encode serializes the message into a freshly allocated buffer.
func (c Codec) Encode(m *gossip.Message) ([]byte, error) {
	c = c.limits()
	if err := c.validateForEncode(m); err != nil {
		return nil, err
	}
	return c.appendEncode(make([]byte, 0, c.encodedSize(m)), m), nil
}

// AppendEncode serializes the message, appending its wire encoding to
// buf and returning the extended slice (like append, the result may
// share backing storage with buf). When buf has at least EncodedSize(m)
// spare capacity the call performs no allocation — the hot-path
// contract the UDP transport's pooled send buffers rely on. Configured
// compression is the exception: it stages the event section through
// pooled scratch and the compressor's own state (an explicit
// CPU-and-allocation for bandwidth trade).
//
//gossip:hotpath
func (c Codec) AppendEncode(buf []byte, m *gossip.Message) ([]byte, error) {
	c = c.limits()
	if err := c.validateForEncode(m); err != nil {
		return nil, err
	}
	return c.appendEncode(buf, m), nil
}

// appendEncode writes the wire encoding of an already-validated
// message.
//
//gossip:hotpath
func (c Codec) appendEncode(buf []byte, m *gossip.Message) []byte {
	if c.WireVersion == wireV4 {
		return c.appendEncodeV4(buf, m)
	}
	if c.Compression != nil && c.Compression.ID() != compressorNone {
		//gossip:allocok compression is an opt-in slow path traded against wire bytes; the zero-alloc contract covers the default stored encode
		return c.appendEncodeCompressed(buf, m)
	}
	buf = appendFrame(buf, codecVersion, m)
	buf = appendControlPre(buf, m)
	buf = appendControlPost(buf, m)
	rawLen := eventSectionSize(m)
	buf = binary.AppendUvarint(buf, uint64(rawLen))
	buf = append(buf, compressorNone)
	buf = appendEventSection(buf, m)
	if c.Stats != nil {
		c.Stats.PreCompressionBytes.Add(uint64(rawLen))
		c.Stats.PostCompressionBytes.Add(uint64(rawLen))
	}
	return buf
}

// appendEncodeV4 writes the legacy v4 layout: inline fixed-width event
// list between the control sections, no compression seam.
//
//gossip:hotpath
func (c Codec) appendEncodeV4(buf []byte, m *gossip.Message) []byte {
	buf = appendFrame(buf, wireV4, m)
	buf = appendControlPre(buf, m)
	buf = appendEventsV4(buf, m)
	buf = appendControlPost(buf, m)
	return buf
}

// appendEncodeCompressed writes a v5 frame with the event section run
// through the configured compressor, storing the section raw when
// compression does not pay — which keeps the uncompressed EncodedSize
// an upper bound for buffer sizing either way. The compress flag is
// patched into the already-written frame header once the decision is
// made.
func (c Codec) appendEncodeCompressed(buf []byte, m *gossip.Message) []byte {
	flagOff := len(buf) + 4 // magic(3) + version(1)
	buf = appendFrame(buf, codecVersion, m)
	buf = appendControlPre(buf, m)
	buf = appendControlPost(buf, m)
	sp := sectionPool.Get().(*[]byte)
	raw := appendEventSection((*sp)[:0], m)
	rawLen := len(raw)
	cp := sectionPool.Get().(*[]byte)
	comp, err := c.Compression.Compress((*cp)[:0], raw)
	post := rawLen
	if err == nil && len(comp)+uvarintLen(uint64(len(comp))) < rawLen {
		buf[flagOff] |= flagCompress
		buf = binary.AppendUvarint(buf, uint64(rawLen))
		buf = append(buf, c.Compression.ID())
		buf = binary.AppendUvarint(buf, uint64(len(comp)))
		buf = append(buf, comp...)
		post = len(comp)
	} else {
		buf = binary.AppendUvarint(buf, uint64(rawLen))
		buf = append(buf, compressorNone)
		buf = append(buf, raw...)
	}
	*sp = raw[:0]
	sectionPool.Put(sp)
	*cp = comp[:0]
	sectionPool.Put(cp)
	if c.Stats != nil {
		c.Stats.PreCompressionBytes.Add(uint64(rawLen))
		c.Stats.PostCompressionBytes.Add(uint64(post))
	}
	return buf
}

//gossip:allocok allocates only when a limit check fails, which aborts the send; valid messages take no error branch
func (c Codec) validateForEncode(m *gossip.Message) error {
	if m == nil {
		return fmt.Errorf("transport: nil message")
	}
	if c.WireVersion != 0 && c.WireVersion != codecVersion && c.WireVersion != wireV4 {
		return fmt.Errorf("transport: unsupported encode wire version %d", c.WireVersion)
	}
	if len(m.From) > c.MaxIDLen || len(m.From) > maxUint16 {
		return fmt.Errorf("%w: from id %d bytes", ErrTooLarge, len(m.From))
	}
	if len(m.Group) > c.MaxIDLen {
		return fmt.Errorf("%w: group tag %d bytes", ErrTooLarge, len(m.Group))
	}
	if len(m.Events) > c.MaxEvents {
		return fmt.Errorf("%w: %d events", ErrTooLarge, len(m.Events))
	}
	if len(m.KMin) > maxUint16 || len(m.Subs) > maxUint16 || len(m.Unsubs) > maxUint16 ||
		len(m.Digest) > maxUint16 || len(m.Request) > maxUint16 || len(m.Updates) > maxUint16 {
		return fmt.Errorf("%w: header list too long", ErrTooLarge)
	}
	if !m.Kind.Valid() {
		return fmt.Errorf("transport: unknown message kind %d", m.Kind)
	}
	if len(m.Probe) > c.MaxIDLen {
		return fmt.Errorf("%w: probe id %d bytes", ErrTooLarge, len(m.Probe))
	}
	for _, u := range m.Updates {
		if len(u.Node) > c.MaxIDLen {
			return fmt.Errorf("%w: update id %d bytes", ErrTooLarge, len(u.Node))
		}
		if u.Status > gossip.MemberConfirmed {
			return fmt.Errorf("transport: unknown member status %d", u.Status)
		}
	}
	for _, ids := range [2][]gossip.EventID{m.Digest, m.Request} {
		for _, id := range ids {
			if len(id.Origin) > c.MaxIDLen {
				return fmt.Errorf("%w: digest id %d bytes", ErrTooLarge, len(id.Origin))
			}
		}
	}
	for _, ev := range m.Events {
		if len(ev.ID.Origin) > c.MaxIDLen {
			return fmt.Errorf("%w: origin id %d bytes", ErrTooLarge, len(ev.ID.Origin))
		}
		if len(ev.Payload) > c.MaxPayload {
			return fmt.Errorf("%w: payload %d bytes", ErrTooLarge, len(ev.Payload))
		}
		if ev.Age < 0 {
			return fmt.Errorf("transport: negative age %d", ev.Age)
		}
		// Hop rides the wire only on traced messages (a u16 in the v4
		// layout). Rejecting (rather than clamping) out-of-range hops
		// keeps the encoding exact: decode(encode(m)) == m.
		if m.Traced && (ev.Hop < 0 || ev.Hop > maxUint16) {
			return fmt.Errorf("%w: hop count %d", ErrTooLarge, ev.Hop)
		}
	}
	if len(m.Health) > maxUint16 {
		return fmt.Errorf("%w: %d health digests", ErrTooLarge, len(m.Health))
	}
	for _, d := range m.Health {
		if len(d.Node) > c.MaxIDLen {
			return fmt.Errorf("%w: health digest id %d bytes", ErrTooLarge, len(d.Node))
		}
	}
	for _, e := range m.KMin {
		if len(e.Node) > c.MaxIDLen {
			return fmt.Errorf("%w: kmin id %d bytes", ErrTooLarge, len(e.Node))
		}
	}
	for _, list := range [2][]gossip.NodeID{m.Subs, m.Unsubs} {
		for _, s := range list {
			if len(s) > c.MaxIDLen {
				return fmt.Errorf("%w: membership id %d bytes", ErrTooLarge, len(s))
			}
		}
	}
	return nil
}

// EncodedSize returns the wire size of m's encoding — the capacity
// AppendEncode needs to stay allocation-free. The size is exact for the
// default stored encoding; with compression configured it is the
// stored-form upper bound (the encoder falls back to stored whenever
// compression would not shrink the section).
func (c Codec) EncodedSize(m *gossip.Message) int { return c.encodedSize(m) }

// encodedSize returns the (uncompressed) encoding size of m.
func (c Codec) encodedSize(m *gossip.Message) int {
	if c.WireVersion == wireV4 {
		return frameHdrBytes + controlPreSize(m) + eventsSizeV4(m) + controlPostSize(m)
	}
	raw := eventSectionSize(m)
	return frameHdrBytes + controlPreSize(m) + controlPostSize(m) +
		uvarintLen(uint64(raw)) + 1 + raw
}

// chunkSizer tracks the exact encoded size of a chunk under
// construction, updated incrementally as events are appended (the
// columnar marginal cost of an event depends on the run it extends, so
// the sizer carries the run state instead of recomputing the section).
type chunkSizer struct {
	v4     bool
	traced bool
	header int // frame + control sections
	raw    int // event rows, excluding the leading count
	count  int
	runLen int
	prev   gossip.Event
}

func (c Codec) newChunkSizer(hdr *gossip.Message) chunkSizer {
	return chunkSizer{
		v4:     c.WireVersion == wireV4,
		traced: hdr.Traced,
		header: frameHdrBytes + controlPreSize(hdr) + controlPostSize(hdr),
	}
}

// size returns the exact encoded size of the chunk in its current
// state (for the compressed configuration: its stored-form upper
// bound, which is what datagram budgeting must use).
func (s *chunkSizer) size() int {
	if s.v4 {
		return s.header + 4 + s.raw
	}
	content := uvarintLen(uint64(s.count)) + s.raw
	return s.header + uvarintLen(uint64(content)) + 1 + content
}

// add appends ev to the chunk's size state.
func (s *chunkSizer) add(ev gossip.Event) {
	s.raw += s.marginal(ev)
	if !s.v4 {
		if s.count > 0 && s.prev.ID.Origin == ev.ID.Origin {
			s.runLen++
		} else {
			s.runLen = 1
		}
		s.prev = ev
	}
	s.count++
}

// marginal returns the row bytes appending ev would add, given the
// current run state (count growth is handled in size).
func (s *chunkSizer) marginal(ev gossip.Event) int {
	if s.v4 {
		return eventWireSizeV4(ev, s.traced)
	}
	var d int
	if s.count > 0 && s.prev.ID.Origin == ev.ID.Origin {
		d += uvarintLen(uint64(s.runLen+1)) - uvarintLen(uint64(s.runLen))
		d += uvarintLen(zigzag(int64(ev.ID.Seq - s.prev.ID.Seq)))
		d += uvarintLen(zigzag(int64(ev.Age) - int64(s.prev.Age)))
	} else {
		d += uvarintLen(uint64(len(ev.ID.Origin))) + len(ev.ID.Origin)
		d += 1 // runLen = 1
		d += uvarintLen(ev.ID.Seq)
		d += uvarintLen(uint64(ev.Age))
	}
	if s.traced {
		d += uvarintLen(uint64(ev.Hop))
	}
	d += uvarintLen(uint64(len(ev.Payload))) + len(ev.Payload)
	return d
}

// fits reports whether the chunk would still encode within maxSize
// after appending ev.
func (s *chunkSizer) fits(ev gossip.Event, maxSize int) bool {
	t := *s
	t.add(ev)
	return t.size() <= maxSize
}

// EncodeChunks encodes m into one or more datagrams of at most maxSize
// bytes each, splitting the event list when necessary. Fragmentation is
// measured on the uncompressed (stored-form) encoding — compression can
// only shrink a chunk below its budget, never grow it. Control headers
// (adaptation, κ-entries, membership, recovery digest/request lists,
// probe fields and failure-detection updates) ride on the first chunk
// only; every chunk is a valid standalone message carrying the same
// kind. A single event whose encoding cannot fit any chunk is an error,
// never an oversized datagram.
func (c Codec) EncodeChunks(m *gossip.Message, maxSize int) ([][]byte, error) {
	c = c.limits()
	if err := c.validateForEncode(m); err != nil {
		return nil, err
	}
	if c.encodedSize(m) <= maxSize {
		return [][]byte{c.appendEncode(make([]byte, 0, c.encodedSize(m)), m)}, nil
	}
	head := *m
	head.Events = nil
	// The digest and health sections are advisory (repair hints and
	// telemetry, rebroadcast every round): trim them rather than fail
	// when the fixed headers alone would leave no room for events —
	// e.g. MTU-sized datagram bounds with a large recovery digest.
	for len(head.Digest) > 0 && c.encodedSize(&head) > maxSize/2 {
		head.Digest = head.Digest[:len(head.Digest)-1]
	}
	for len(head.Health) > 0 && c.encodedSize(&head) > maxSize/2 {
		head.Health = head.Health[:len(head.Health)-1]
	}
	if hb := c.encodedSize(&head); hb > maxSize {
		return nil, fmt.Errorf("%w: %d-byte message header cannot fit a %d-byte datagram",
			ErrTooLarge, hb, maxSize)
	}
	rest := gossip.Message{Kind: m.Kind, From: m.From, Group: m.Group, Round: m.Round,
		Adaptive: m.Adaptive, SamplePeriod: m.SamplePeriod, MinBuff: m.MinBuff,
		Traced: m.Traced}

	var chunks [][]byte
	cur := head
	sz := c.newChunkSizer(&head)
	for i := 0; i < len(m.Events); {
		ev := m.Events[i]
		if sz.fits(ev, maxSize) {
			cur.Events = append(cur.Events, ev)
			sz.add(ev)
			i++
			continue
		}
		if len(cur.Events) == 0 && len(chunks) > 0 {
			evSize := sz.marginal(ev)
			return nil, fmt.Errorf("%w: event %s (%d bytes) cannot fit a %d-byte datagram",
				ErrTooLarge, ev.ID, evSize, maxSize)
		}
		// Flush the current chunk (possibly the header-only first chunk,
		// whose trimmed digest may leave less event room than the bare
		// continuation header) and retry the event on a fresh one.
		enc, err := c.Encode(&cur)
		if err != nil {
			return nil, err
		}
		chunks = append(chunks, enc)
		cur = rest
		cur.Events = nil
		sz = c.newChunkSizer(&rest)
	}
	enc, err := c.Encode(&cur)
	if err != nil {
		return nil, err
	}
	return append(chunks, enc), nil
}

// Decode parses a message of any supported wire version (5, 4, 3),
// enforcing the codec limits. The returned message owns all of its
// memory.
func (c Codec) Decode(data []byte) (*gossip.Message, error) {
	c = c.limits()
	r := &reader{data: data}
	if err := r.need(4); err != nil {
		return nil, err
	}
	if data[0] != codecMagic[0] || data[1] != codecMagic[1] || data[2] != codecMagic[2] {
		return nil, ErrBadMagic
	}
	version := data[3]
	if version != codecVersion && version != wireV4 && version != wireV3 {
		return nil, ErrBadMagic
	}
	r.off = 4
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	// Trace context exists only from v4 on; a v3 sender's flag bit 2 is
	// undefined and ignored.
	traced := version >= wireV4 && flags&flagTraced != 0
	m := &gossip.Message{Adaptive: flags&flagAdaptive != 0, Traced: traced}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	if !gossip.MessageKind(kind).Valid() {
		return nil, fmt.Errorf("transport: unknown message kind %d", kind)
	}
	m.Kind = gossip.MessageKind(kind)
	if err := c.decodeControlPre(r, m, flags); err != nil {
		return nil, err
	}
	if version == codecVersion {
		if err := c.decodeControlPost(r, m, true); err != nil {
			return nil, err
		}
		rows, err := c.readEventSection(r, flags)
		if err != nil {
			return nil, err
		}
		if r.off != len(data) {
			return nil, fmt.Errorf("transport: %d trailing bytes", len(data)-r.off)
		}
		if err := c.decodeEventSection(rows, m); err != nil {
			return nil, err
		}
		return m, nil
	}
	// Legacy v4/v3 layout: inline events between the control sections,
	// health digests (v4 only) last.
	if err := c.decodeEventsV4(r, m, traced); err != nil {
		return nil, err
	}
	if err := c.decodeControlPost(r, m, version == wireV4); err != nil {
		return nil, err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("transport: %d trailing bytes", len(data)-r.off)
	}
	return m, nil
}

// readEventSection consumes the v5 event section framing and returns
// the (decompressed) columnar rows. The advertised raw length is capped
// both absolutely and relative to the compressed input so a hostile
// frame cannot turn a small datagram into an unbounded allocation
// (DEFLATE tops out near 1:1032; anything claiming more is corrupt by
// definition).
func (c Codec) readEventSection(r *reader, flags byte) ([]byte, error) {
	rawLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if rawLen > maxEventSectionRaw {
		return nil, fmt.Errorf("%w: %d-byte event section", ErrTooLarge, rawLen)
	}
	comp, err := r.u8()
	if err != nil {
		return nil, err
	}
	if (comp != compressorNone) != (flags&flagCompress != 0) {
		return nil, fmt.Errorf("transport: compression flag/id mismatch (flag %t, id %d)",
			flags&flagCompress != 0, comp)
	}
	if comp == compressorNone {
		if err := r.need(int(rawLen)); err != nil {
			return nil, err
		}
		rows := r.data[r.off : r.off+int(rawLen)]
		r.off += int(rawLen)
		return rows, nil
	}
	wireLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if err := r.need(int(wireLen)); err != nil {
		return nil, err
	}
	if rawLen > 1040*wireLen+64 {
		return nil, fmt.Errorf("%w: event section claims %d bytes from %d compressed",
			ErrTooLarge, rawLen, wireLen)
	}
	d, ok := decompressors[comp]
	if !ok {
		return nil, fmt.Errorf("transport: unknown compressor id %d", comp)
	}
	src := r.data[r.off : r.off+int(wireLen)]
	r.off += int(wireLen)
	return d.Decompress(make([]byte, 0, rawLen), src, int(rawLen))
}

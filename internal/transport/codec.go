// Package transport carries gossip messages between nodes: a versioned
// binary wire codec, an in-memory network with injectable latency and
// loss (the fabric for in-process clusters), and a UDP transport with
// datagram splitting (the fabric for real deployments, standing in for
// the paper's 60-workstation Ethernet testbed).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"adaptivegossip/internal/gossip"
)

// Wire format (big endian):
//
//	magic   [3]byte "AGB"
//	version u8      = 4
//	flags   u8      bit0: adaptation header present
//	                bit1: group tag present
//	                bit2: trace context present (v4)
//	kind    u8      message kind (gossip | recovery request/response |
//	                ping | ping-ack | ping-req)
//	from    u16 len + bytes
//	[if group] group u16 len + bytes
//	round   u64
//	[if adaptive] samplePeriod u64, minBuff i32
//	kmin    u16 count, each: node u16 len + bytes, cap i32
//	digest  u16 count, each: origin u16 len + bytes, seq u64
//	request u16 count, each: origin u16 len + bytes, seq u64
//	probe   u16 len + bytes
//	probeSeq u64
//	updates u16 count, each: node u16 len + bytes, status u8,
//	        incarnation u64
//	events  u32 count, each: origin u16 len + bytes, seq u64, age u32,
//	        [if traced] hop u16,
//	        payload u32 len + bytes
//	subs    u16 count, each: u16 len + bytes
//	unsubs  u16 count, each: u16 len + bytes
//	health  u16 count (v4), each:
//	        node u16 len + bytes, round u64, wallMillis u64,
//	        published u64, delivered u64, droppedCapacity u64,
//	        droppedExpired u64, messagesSent u64, messagesReceived u64,
//	        bytesSent u64, bytesReceived u64,
//	        bufferLen i32, bufferCap i32,
//	        hopsCount u64, hopsSum u64,
//	        buckets u8 count, each: index u8, value u64
//	        (bucket indexes strictly increasing, values non-zero —
//	        the canonical form, enforced on decode)
//
// Version 2 added the kind byte and the digest/request id lists (the
// anti-entropy recovery traffic). Version 3 added the probe kinds and
// the probe/probeSeq/updates fields (SWIM-style failure detection).
// Version 4 added the per-event trace context (the traced flag and hop
// counters) and the trailing health-digest section; version 3 payloads
// still decode (no trace context, no health). Older versions' payloads
// are rejected.
const (
	codecVersion     = 4
	prevCodecVersion = 3
	flagAdaptive     = 1 << 0
	flagGroup        = 1 << 1
	flagTraced       = 1 << 2
	maxUint16        = 1<<16 - 1
)

var codecMagic = [3]byte{'A', 'G', 'B'}

// Codec encodes and decodes gossip messages with hard limits that bound
// the memory a hostile or corrupt datagram can make the decoder commit.
type Codec struct {
	// MaxPayload bounds a single event payload.
	MaxPayload int
	// MaxIDLen bounds node identifier lengths.
	MaxIDLen int
	// MaxEvents bounds the events per message accepted when decoding.
	MaxEvents int
}

// DefaultCodec returns the limits used across the repository.
func DefaultCodec() Codec {
	return Codec{MaxPayload: 1 << 20, MaxIDLen: 256, MaxEvents: 1 << 16}
}

// Errors reported by the codec.
var (
	ErrTruncated = errors.New("transport: truncated message")
	ErrBadMagic  = errors.New("transport: bad magic or version")
	ErrTooLarge  = errors.New("transport: field exceeds codec limit")
)

func (c Codec) limits() Codec {
	d := DefaultCodec()
	if c.MaxPayload <= 0 {
		c.MaxPayload = d.MaxPayload
	}
	if c.MaxIDLen <= 0 {
		c.MaxIDLen = d.MaxIDLen
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = d.MaxEvents
	}
	return c
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// Encode serializes the message into a freshly allocated buffer.
func (c Codec) Encode(m *gossip.Message) ([]byte, error) {
	c = c.limits()
	if err := c.validateForEncode(m); err != nil {
		return nil, err
	}
	return c.appendEncode(make([]byte, 0, c.encodedSize(m)), m), nil
}

// AppendEncode serializes the message, appending its wire encoding to
// buf and returning the extended slice (like append, the result may
// share backing storage with buf). When buf has at least EncodedSize(m)
// spare capacity the call performs no allocation — the hot-path
// contract the UDP transport's pooled send buffers rely on.
//
//gossip:hotpath
func (c Codec) AppendEncode(buf []byte, m *gossip.Message) ([]byte, error) {
	c = c.limits()
	if err := c.validateForEncode(m); err != nil {
		return nil, err
	}
	return c.appendEncode(buf, m), nil
}

// appendEncode writes the wire encoding of an already-validated
// message.
func (c Codec) appendEncode(buf []byte, m *gossip.Message) []byte {
	buf = append(buf, codecMagic[:]...)
	buf = append(buf, codecVersion)
	var flags byte
	if m.Adaptive {
		flags |= flagAdaptive
	}
	if m.Group != "" {
		flags |= flagGroup
	}
	if m.Traced {
		flags |= flagTraced
	}
	buf = append(buf, flags)
	buf = append(buf, byte(m.Kind))
	buf = appendString(buf, string(m.From))
	if m.Group != "" {
		buf = appendString(buf, m.Group)
	}
	buf = binary.BigEndian.AppendUint64(buf, m.Round)
	if m.Adaptive {
		buf = binary.BigEndian.AppendUint64(buf, m.SamplePeriod)
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(m.MinBuff)))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.KMin)))
	for _, e := range m.KMin {
		buf = appendString(buf, string(e.Node))
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(e.Cap)))
	}
	for _, ids := range [2][]gossip.EventID{m.Digest, m.Request} {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(ids)))
		for _, id := range ids {
			buf = appendString(buf, string(id.Origin))
			buf = binary.BigEndian.AppendUint64(buf, id.Seq)
		}
	}
	buf = appendString(buf, string(m.Probe))
	buf = binary.BigEndian.AppendUint64(buf, m.ProbeSeq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Updates)))
	for _, u := range m.Updates {
		buf = appendString(buf, string(u.Node))
		buf = append(buf, byte(u.Status))
		buf = binary.BigEndian.AppendUint64(buf, u.Incarnation)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Events)))
	for _, ev := range m.Events {
		buf = appendString(buf, string(ev.ID.Origin))
		buf = binary.BigEndian.AppendUint64(buf, ev.ID.Seq)
		buf = binary.BigEndian.AppendUint32(buf, uint32(ev.Age))
		if m.Traced {
			buf = binary.BigEndian.AppendUint16(buf, uint16(ev.Hop))
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(ev.Payload)))
		buf = append(buf, ev.Payload...)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Subs)))
	for _, s := range m.Subs {
		buf = appendString(buf, string(s))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Unsubs)))
	for _, s := range m.Unsubs {
		buf = appendString(buf, string(s))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Health)))
	for i := range m.Health {
		buf = appendHealthDigest(buf, &m.Health[i])
	}
	return buf
}

// appendHealthDigest writes one health digest: fixed counters, then the
// delivery-hops histogram in sparse canonical form (only non-zero
// buckets, indexes ascending).
func appendHealthDigest(buf []byte, d *gossip.HealthDigest) []byte {
	buf = appendString(buf, string(d.Node))
	buf = binary.BigEndian.AppendUint64(buf, d.Round)
	buf = binary.BigEndian.AppendUint64(buf, d.WallMillis)
	buf = binary.BigEndian.AppendUint64(buf, d.Published)
	buf = binary.BigEndian.AppendUint64(buf, d.Delivered)
	buf = binary.BigEndian.AppendUint64(buf, d.DroppedCapacity)
	buf = binary.BigEndian.AppendUint64(buf, d.DroppedExpired)
	buf = binary.BigEndian.AppendUint64(buf, d.MessagesSent)
	buf = binary.BigEndian.AppendUint64(buf, d.MessagesReceived)
	buf = binary.BigEndian.AppendUint64(buf, d.BytesSent)
	buf = binary.BigEndian.AppendUint64(buf, d.BytesReceived)
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(d.BufferLen)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(d.BufferCap)))
	buf = binary.BigEndian.AppendUint64(buf, d.DeliverHops.Count)
	buf = binary.BigEndian.AppendUint64(buf, d.DeliverHops.Sum)
	var nb byte
	for _, b := range d.DeliverHops.Buckets {
		if b != 0 {
			nb++
		}
	}
	buf = append(buf, nb)
	for i, b := range d.DeliverHops.Buckets {
		if b == 0 {
			continue
		}
		buf = append(buf, byte(i))
		buf = binary.BigEndian.AppendUint64(buf, b)
	}
	return buf
}

//gossip:allocok allocates only when a limit check fails, which aborts the send; valid messages take no error branch
func (c Codec) validateForEncode(m *gossip.Message) error {
	if m == nil {
		return fmt.Errorf("transport: nil message")
	}
	if len(m.From) > c.MaxIDLen || len(m.From) > maxUint16 {
		return fmt.Errorf("%w: from id %d bytes", ErrTooLarge, len(m.From))
	}
	if len(m.Group) > c.MaxIDLen {
		return fmt.Errorf("%w: group tag %d bytes", ErrTooLarge, len(m.Group))
	}
	if len(m.Events) > c.MaxEvents {
		return fmt.Errorf("%w: %d events", ErrTooLarge, len(m.Events))
	}
	if len(m.KMin) > maxUint16 || len(m.Subs) > maxUint16 || len(m.Unsubs) > maxUint16 ||
		len(m.Digest) > maxUint16 || len(m.Request) > maxUint16 || len(m.Updates) > maxUint16 {
		return fmt.Errorf("%w: header list too long", ErrTooLarge)
	}
	if !m.Kind.Valid() {
		return fmt.Errorf("transport: unknown message kind %d", m.Kind)
	}
	if len(m.Probe) > c.MaxIDLen {
		return fmt.Errorf("%w: probe id %d bytes", ErrTooLarge, len(m.Probe))
	}
	for _, u := range m.Updates {
		if len(u.Node) > c.MaxIDLen {
			return fmt.Errorf("%w: update id %d bytes", ErrTooLarge, len(u.Node))
		}
		if u.Status > gossip.MemberConfirmed {
			return fmt.Errorf("transport: unknown member status %d", u.Status)
		}
	}
	for _, ids := range [2][]gossip.EventID{m.Digest, m.Request} {
		for _, id := range ids {
			if len(id.Origin) > c.MaxIDLen {
				return fmt.Errorf("%w: digest id %d bytes", ErrTooLarge, len(id.Origin))
			}
		}
	}
	for _, ev := range m.Events {
		if len(ev.ID.Origin) > c.MaxIDLen {
			return fmt.Errorf("%w: origin id %d bytes", ErrTooLarge, len(ev.ID.Origin))
		}
		if len(ev.Payload) > c.MaxPayload {
			return fmt.Errorf("%w: payload %d bytes", ErrTooLarge, len(ev.Payload))
		}
		if ev.Age < 0 {
			return fmt.Errorf("transport: negative age %d", ev.Age)
		}
		// Hop only rides the wire on traced messages, as a u16. Rejecting
		// (rather than clamping) out-of-range hops keeps the encoding
		// exact: decode(encode(m)) == m.
		if m.Traced && (ev.Hop < 0 || ev.Hop > maxUint16) {
			return fmt.Errorf("%w: hop count %d", ErrTooLarge, ev.Hop)
		}
	}
	if len(m.Health) > maxUint16 {
		return fmt.Errorf("%w: %d health digests", ErrTooLarge, len(m.Health))
	}
	for _, d := range m.Health {
		if len(d.Node) > c.MaxIDLen {
			return fmt.Errorf("%w: health digest id %d bytes", ErrTooLarge, len(d.Node))
		}
	}
	for _, e := range m.KMin {
		if len(e.Node) > c.MaxIDLen {
			return fmt.Errorf("%w: kmin id %d bytes", ErrTooLarge, len(e.Node))
		}
	}
	for _, list := range [2][]gossip.NodeID{m.Subs, m.Unsubs} {
		for _, s := range list {
			if len(s) > c.MaxIDLen {
				return fmt.Errorf("%w: membership id %d bytes", ErrTooLarge, len(s))
			}
		}
	}
	return nil
}

// EncodedSize returns the exact wire size of m's encoding — the
// capacity AppendEncode needs to stay allocation-free.
func (c Codec) EncodedSize(m *gossip.Message) int { return c.encodedSize(m) }

// encodedSize returns the exact encoding size of m.
func (c Codec) encodedSize(m *gossip.Message) int {
	n := 3 + 1 + 1 + 1 + 2 + len(m.From) + 8
	if m.Group != "" {
		n += 2 + len(m.Group)
	}
	if m.Adaptive {
		n += 8 + 4
	}
	n += 2
	for _, e := range m.KMin {
		n += 2 + len(e.Node) + 4
	}
	n += 2 + 2
	for _, ids := range [2][]gossip.EventID{m.Digest, m.Request} {
		for _, id := range ids {
			n += 2 + len(id.Origin) + 8
		}
	}
	n += 2 + len(m.Probe) + 8
	n += 2
	for _, u := range m.Updates {
		n += 2 + len(u.Node) + 1 + 8
	}
	n += 4
	for _, ev := range m.Events {
		n += eventWireSize(ev, m.Traced)
	}
	n += 2
	for _, s := range m.Subs {
		n += 2 + len(s)
	}
	n += 2
	for _, s := range m.Unsubs {
		n += 2 + len(s)
	}
	n += 2
	for i := range m.Health {
		n += healthDigestWireSize(&m.Health[i])
	}
	return n
}

func eventWireSize(ev gossip.Event, traced bool) int {
	n := 2 + len(ev.ID.Origin) + 8 + 4 + 4 + len(ev.Payload)
	if traced {
		n += 2
	}
	return n
}

func healthDigestWireSize(d *gossip.HealthDigest) int {
	// node + round/wallMillis + 8 counters + bufferLen/Cap + hist
	// count/sum + bucket count byte.
	n := 2 + len(d.Node) + 8 + 8 + 8*8 + 4 + 4 + 8 + 8 + 1
	for _, b := range d.DeliverHops.Buckets {
		if b != 0 {
			n += 9
		}
	}
	return n
}

// EncodeChunks encodes m into one or more datagrams of at most maxSize
// bytes each, splitting the event list when necessary. Control headers
// (adaptation, κ-entries, membership, recovery digest/request lists,
// probe fields and failure-detection updates) ride on the first chunk
// only; every chunk is a valid standalone message carrying the same
// kind.
func (c Codec) EncodeChunks(m *gossip.Message, maxSize int) ([][]byte, error) {
	c = c.limits()
	full, err := c.Encode(m)
	if err != nil {
		return nil, err
	}
	if len(full) <= maxSize {
		return [][]byte{full}, nil
	}
	head := *m
	head.Events = nil
	// The digest and health sections are advisory (repair hints and
	// telemetry, rebroadcast every round): trim them rather than fail
	// when the fixed headers alone would leave no room for events —
	// e.g. MTU-sized datagram bounds with a large recovery digest.
	for len(head.Digest) > 0 && c.encodedSize(&head) > maxSize/2 {
		head.Digest = head.Digest[:len(head.Digest)-1]
	}
	for len(head.Health) > 0 && c.encodedSize(&head) > maxSize/2 {
		head.Health = head.Health[:len(head.Health)-1]
	}
	if hb := c.encodedSize(&head); hb > maxSize {
		return nil, fmt.Errorf("%w: %d-byte message header cannot fit a %d-byte datagram",
			ErrTooLarge, hb, maxSize)
	}
	rest := gossip.Message{Kind: m.Kind, From: m.From, Group: m.Group, Round: m.Round,
		Adaptive: m.Adaptive, SamplePeriod: m.SamplePeriod, MinBuff: m.MinBuff,
		Traced: m.Traced}
	headBase := c.encodedSize(&head)
	restBase := c.encodedSize(&rest)

	var chunks [][]byte
	cur := head
	base := headBase
	size := base
	for _, ev := range m.Events {
		evSize := eventWireSize(ev, m.Traced)
		if base+evSize > maxSize {
			return nil, fmt.Errorf("%w: event %s (%d bytes) cannot fit a %d-byte datagram",
				ErrTooLarge, ev.ID, evSize, maxSize)
		}
		if size+evSize > maxSize {
			enc, err := c.Encode(&cur)
			if err != nil {
				return nil, err
			}
			chunks = append(chunks, enc)
			cur = rest
			cur.Events = nil
			base = restBase
			size = base
		}
		cur.Events = append(cur.Events, ev)
		size += evSize
	}
	enc, err := c.Encode(&cur)
	if err != nil {
		return nil, err
	}
	return append(chunks, enc), nil
}

type reader struct {
	data []byte
	off  int
}

func (r *reader) need(n int) error {
	if r.off+n > len(r.data) {
		return ErrTruncated
	}
	return nil
}

func (r *reader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) str(maxLen int) (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if int(n) > maxLen {
		return "", fmt.Errorf("%w: id %d bytes", ErrTooLarge, n)
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// Decode parses a message, enforcing the codec limits. The returned
// message owns all of its memory.
func (c Codec) Decode(data []byte) (*gossip.Message, error) {
	c = c.limits()
	r := &reader{data: data}
	if err := r.need(4); err != nil {
		return nil, err
	}
	if data[0] != codecMagic[0] || data[1] != codecMagic[1] || data[2] != codecMagic[2] {
		return nil, ErrBadMagic
	}
	version := data[3]
	if version != codecVersion && version != prevCodecVersion {
		return nil, ErrBadMagic
	}
	r.off = 4
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	// Trace context exists only from v4 on; a v3 sender's flag bit 2 is
	// undefined and ignored.
	traced := version >= 4 && flags&flagTraced != 0
	m := &gossip.Message{Adaptive: flags&flagAdaptive != 0, Traced: traced}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	if !gossip.MessageKind(kind).Valid() {
		return nil, fmt.Errorf("transport: unknown message kind %d", kind)
	}
	m.Kind = gossip.MessageKind(kind)
	from, err := r.str(c.MaxIDLen)
	if err != nil {
		return nil, err
	}
	m.From = gossip.NodeID(from)
	if flags&flagGroup != 0 {
		group, err := r.str(c.MaxIDLen)
		if err != nil {
			return nil, err
		}
		if group == "" {
			return nil, fmt.Errorf("transport: empty group tag with group flag set")
		}
		m.Group = group
	}
	if m.Round, err = r.u64(); err != nil {
		return nil, err
	}
	if m.Adaptive {
		if m.SamplePeriod, err = r.u64(); err != nil {
			return nil, err
		}
		mb, err := r.u32()
		if err != nil {
			return nil, err
		}
		m.MinBuff = int(int32(mb))
	}
	nk, err := r.u16()
	if err != nil {
		return nil, err
	}
	if nk > 0 {
		m.KMin = make([]gossip.BuffCap, 0, nk)
		for i := 0; i < int(nk); i++ {
			node, err := r.str(c.MaxIDLen)
			if err != nil {
				return nil, err
			}
			cp, err := r.u32()
			if err != nil {
				return nil, err
			}
			m.KMin = append(m.KMin, gossip.BuffCap{Node: gossip.NodeID(node), Cap: int(int32(cp))})
		}
	}
	for _, dst := range []*[]gossip.EventID{&m.Digest, &m.Request} {
		nd, err := r.u16()
		if err != nil {
			return nil, err
		}
		if nd > 0 {
			// Cap the preallocation by what the remaining input could
			// possibly hold (≥10 bytes per id), so a spoofed count in a
			// tiny datagram cannot force a large allocation.
			capN := int(nd)
			if maxN := (len(r.data) - r.off) / 10; capN > maxN {
				capN = maxN
			}
			ids := make([]gossip.EventID, 0, capN)
			for i := 0; i < int(nd); i++ {
				origin, err := r.str(c.MaxIDLen)
				if err != nil {
					return nil, err
				}
				seq, err := r.u64()
				if err != nil {
					return nil, err
				}
				ids = append(ids, gossip.EventID{Origin: gossip.NodeID(origin), Seq: seq})
			}
			*dst = ids
		}
	}
	probe, err := r.str(c.MaxIDLen)
	if err != nil {
		return nil, err
	}
	m.Probe = gossip.NodeID(probe)
	if m.ProbeSeq, err = r.u64(); err != nil {
		return nil, err
	}
	nu, err := r.u16()
	if err != nil {
		return nil, err
	}
	if nu > 0 {
		// Preallocation capped by what the remaining input could hold
		// (≥11 bytes per update), as for the digest lists above.
		capN := int(nu)
		if maxN := (len(r.data) - r.off) / 11; capN > maxN {
			capN = maxN
		}
		m.Updates = make([]gossip.MemberUpdate, 0, capN)
		for i := 0; i < int(nu); i++ {
			node, err := r.str(c.MaxIDLen)
			if err != nil {
				return nil, err
			}
			status, err := r.u8()
			if err != nil {
				return nil, err
			}
			if gossip.MemberStatus(status) > gossip.MemberConfirmed {
				return nil, fmt.Errorf("transport: unknown member status %d", status)
			}
			inc, err := r.u64()
			if err != nil {
				return nil, err
			}
			m.Updates = append(m.Updates, gossip.MemberUpdate{
				Node:        gossip.NodeID(node),
				Status:      gossip.MemberStatus(status),
				Incarnation: inc,
			})
		}
	}
	ne, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int64(ne) > int64(c.MaxEvents) {
		return nil, fmt.Errorf("%w: %d events", ErrTooLarge, ne)
	}
	if ne > 0 {
		m.Events = make([]gossip.Event, 0, ne)
		for i := 0; i < int(ne); i++ {
			origin, err := r.str(c.MaxIDLen)
			if err != nil {
				return nil, err
			}
			seq, err := r.u64()
			if err != nil {
				return nil, err
			}
			age, err := r.u32()
			if err != nil {
				return nil, err
			}
			var hop uint16
			if traced {
				if hop, err = r.u16(); err != nil {
					return nil, err
				}
			}
			plen, err := r.u32()
			if err != nil {
				return nil, err
			}
			if int64(plen) > int64(c.MaxPayload) {
				return nil, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, plen)
			}
			if err := r.need(int(plen)); err != nil {
				return nil, err
			}
			var payload []byte
			if plen > 0 {
				payload = make([]byte, plen)
				copy(payload, r.data[r.off:])
			}
			r.off += int(plen)
			m.Events = append(m.Events, gossip.Event{
				ID:      gossip.EventID{Origin: gossip.NodeID(origin), Seq: seq},
				Age:     int(age),
				Hop:     int(hop),
				Payload: payload,
			})
		}
	}
	for _, dst := range []*[]gossip.NodeID{&m.Subs, &m.Unsubs} {
		n, err := r.u16()
		if err != nil {
			return nil, err
		}
		for i := 0; i < int(n); i++ {
			s, err := r.str(c.MaxIDLen)
			if err != nil {
				return nil, err
			}
			*dst = append(*dst, gossip.NodeID(s))
		}
	}
	if version >= 4 {
		if m.Health, err = c.decodeHealth(r); err != nil {
			return nil, err
		}
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("transport: %d trailing bytes", len(data)-r.off)
	}
	return m, nil
}

// decodeHealth parses the trailing health-digest section (v4+),
// enforcing the canonical sparse-histogram form so a decoded message
// re-encodes to identical bytes.
func (c Codec) decodeHealth(r *reader) ([]gossip.HealthDigest, error) {
	nh, err := r.u16()
	if err != nil {
		return nil, err
	}
	if nh == 0 {
		return nil, nil
	}
	// Preallocation capped by what the remaining input could hold
	// (≥107 bytes per digest), as for the id lists.
	capN := int(nh)
	if maxN := (len(r.data) - r.off) / 107; capN > maxN {
		capN = maxN
	}
	out := make([]gossip.HealthDigest, 0, capN)
	for i := 0; i < int(nh); i++ {
		var d gossip.HealthDigest
		node, err := r.str(c.MaxIDLen)
		if err != nil {
			return nil, err
		}
		d.Node = gossip.NodeID(node)
		for _, dst := range []*uint64{
			&d.Round, &d.WallMillis,
			&d.Published, &d.Delivered, &d.DroppedCapacity, &d.DroppedExpired,
			&d.MessagesSent, &d.MessagesReceived, &d.BytesSent, &d.BytesReceived,
		} {
			if *dst, err = r.u64(); err != nil {
				return nil, err
			}
		}
		bl, err := r.u32()
		if err != nil {
			return nil, err
		}
		bc, err := r.u32()
		if err != nil {
			return nil, err
		}
		d.BufferLen, d.BufferCap = int(int32(bl)), int(int32(bc))
		if d.DeliverHops.Count, err = r.u64(); err != nil {
			return nil, err
		}
		if d.DeliverHops.Sum, err = r.u64(); err != nil {
			return nil, err
		}
		nb, err := r.u8()
		if err != nil {
			return nil, err
		}
		if int(nb) > len(d.DeliverHops.Buckets) {
			return nil, fmt.Errorf("%w: %d histogram buckets", ErrTooLarge, nb)
		}
		last := -1
		for j := 0; j < int(nb); j++ {
			idx, err := r.u8()
			if err != nil {
				return nil, err
			}
			if int(idx) >= len(d.DeliverHops.Buckets) || int(idx) <= last {
				return nil, fmt.Errorf("transport: bad histogram bucket index %d", idx)
			}
			val, err := r.u64()
			if err != nil {
				return nil, err
			}
			if val == 0 {
				return nil, fmt.Errorf("transport: zero histogram bucket encoded")
			}
			d.DeliverHops.Buckets[idx] = val
			last = int(idx)
		}
		out = append(out, d)
	}
	return out, nil
}

package transport

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Compression layer (wire v5): the event section — the bulk of a round
// message — may be compressed before framing. The codec negotiates per
// frame: the flagCompress bit plus a one-byte compressor id say how the
// section bytes were produced, so a v5 decoder needs only the matching
// Compressor registered, not the same configuration. Control headers
// are never compressed; they are small and must stay parseable even
// when a payload codec is unavailable.

// Compressor compresses and decompresses event-section bytes.
//
// Compress appends the compressed form of src to dst and returns the
// extended slice. Decompress appends exactly rawLen decompressed bytes
// to dst, erroring if src does not decode to exactly that length.
// Implementations must be safe for concurrent use.
type Compressor interface {
	// ID is the one-byte wire identifier (0 is reserved for "stored",
	// i.e. no compression).
	ID() byte
	// Name is the config-facing name ("flate").
	Name() string
	Compress(dst, src []byte) ([]byte, error)
	Decompress(dst, src []byte, rawLen int) ([]byte, error)
}

// Wire compressor ids.
const (
	compressorNone  byte = 0
	compressorFlate byte = 1
)

// flateCompressor implements Compressor with stdlib DEFLATE. Writers
// are pooled (flate.NewWriter allocates ~600 KiB of match tables);
// readers are cheap enough to construct per call.
type flateCompressor struct {
	writers sync.Pool
}

// NewFlateCompressor returns the built-in DEFLATE compressor (wire id
// 1). One instance is shared safely by any number of codecs.
func NewFlateCompressor() Compressor {
	return &flateCompressor{}
}

func (f *flateCompressor) ID() byte     { return compressorFlate }
func (f *flateCompressor) Name() string { return "flate" }

// sliceWriter adapts an append target to io.Writer for flate.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (f *flateCompressor) Compress(dst, src []byte) ([]byte, error) {
	sw := &sliceWriter{buf: dst}
	fw, _ := f.writers.Get().(*flate.Writer)
	if fw == nil {
		var err error
		fw, err = flate.NewWriter(sw, flate.DefaultCompression)
		if err != nil {
			return dst, err
		}
	} else {
		fw.Reset(sw)
	}
	_, werr := fw.Write(src)
	cerr := fw.Close()
	f.writers.Put(fw)
	if werr != nil {
		return dst, werr
	}
	if cerr != nil {
		return dst, cerr
	}
	return sw.buf, nil
}

func (f *flateCompressor) Decompress(dst, src []byte, rawLen int) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(src))
	defer fr.Close()
	base := len(dst)
	dst = append(dst, make([]byte, rawLen)...)
	if _, err := io.ReadFull(fr, dst[base:]); err != nil {
		return dst[:base], fmt.Errorf("transport: corrupt compressed section: %w", err)
	}
	// The stream must end exactly at rawLen: a longer stream means the
	// advertised raw length lied.
	var probe [1]byte
	if n, err := fr.Read(probe[:]); n != 0 || err != io.EOF {
		return dst[:base], fmt.Errorf("transport: compressed section longer than advertised %d bytes", rawLen)
	}
	return dst, nil
}

// decompressors is the decode-side registry: every compressor a v5
// decoder accepts, keyed by wire id. Decoding is independent of the
// codec's own Compression setting — a node configured without
// compression still decodes compressed frames from peers that use it.
var decompressors = map[byte]Compressor{
	compressorFlate: NewFlateCompressor(),
}

// CompressorByName resolves a config-facing compression name. The empty
// string and "none" mean no compression (nil). Unknown names error.
func CompressorByName(name string) (Compressor, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "flate":
		return NewFlateCompressor(), nil
	default:
		return nil, fmt.Errorf("transport: unknown compression %q (have \"none\", \"flate\")", name)
	}
}

package transport

import (
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/observe"
)

// TestUDPPeerTelemetry: per-peer counters on both ends of a UDP
// exchange — messages and bytes by peer on the sender, attribution by
// decoded From on the receiver, fan-out counted per SendMany target.
func TestUDPPeerTelemetry(t *testing.T) {
	aLinks := observe.NewPeerTable(16)
	bLinks := observe.NewPeerTable(16)
	a := newUDP(t, "a", WithUDPPeerTable(aLinks))
	b := newUDP(t, "b")
	b.SetLinks(bLinks) // post-construction install, the facade's path
	got := make(chan *gossip.Message, 4)
	b.SetHandler(func(m *gossip.Message) { got <- m })
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Register("b", b.Addr().String()); err != nil {
		t.Fatal(err)
	}

	msg := sampleMessage()
	if n, err := a.SendMany([]gossip.NodeID{"b"}, msg); err != nil || n != 1 {
		t.Fatalf("SendMany = %d, %v", n, err)
	}
	select {
	case <-got:
	case <-time.After(3 * time.Second):
		t.Fatal("UDP delivery timed out")
	}

	as := aLinks.Get("b")
	if as.MessagesSent.Load() != 1 || as.BytesSent.Load() == 0 {
		t.Fatalf("sender peer stats: sent=%d bytes=%d", as.MessagesSent.Load(), as.BytesSent.Load())
	}
	if as.FanoutSends.Load() != 1 {
		t.Fatalf("fanout sends = %d, want 1", as.FanoutSends.Load())
	}
	// Receiver attribution keys on the decoded message's From field.
	bs := bLinks.Get(string(msg.From))
	if bs.MessagesReceived.Load() != 1 || bs.BytesReceived.Load() != as.BytesSent.Load() {
		t.Fatalf("receiver peer stats: recv=%d bytes=%d (sender sent %d)",
			bs.MessagesReceived.Load(), bs.BytesReceived.Load(), as.BytesSent.Load())
	}

	// Unknown peers surface as per-peer send errors.
	if _, err := a.SendMany([]gossip.NodeID{"ghost"}, msg); err == nil {
		t.Fatal("unknown peer accepted")
	}
	if g := aLinks.Get("ghost"); g.SendErrors.Load() != 1 {
		t.Fatalf("ghost send errors = %d, want 1", g.SendErrors.Load())
	}
}

// TestUDPPeerTelemetryLossDrops: injected loss is attributed to the
// target peer.
func TestUDPPeerTelemetryLossDrops(t *testing.T) {
	links := observe.NewPeerTable(16)
	a := newUDP(t, "a", WithUDPSendLoss(1.0, 7), WithUDPPeerTable(links))
	b := newUDP(t, "b")
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Register("b", b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", sampleMessage()); err != nil {
		t.Fatal(err)
	}
	ps := links.Get("b")
	if ps.Drops.Load() == 0 || ps.MessagesSent.Load() != 0 {
		t.Fatalf("loss not attributed: drops=%d sent=%d", ps.Drops.Load(), ps.MessagesSent.Load())
	}
}

// TestMemPeerTelemetry: the in-process fabric attributes the same
// counter families, with byte counters staying zero (no wire).
func TestMemPeerTelemetry(t *testing.T) {
	net, err := NewMemNetwork()
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	aLinks := observe.NewPeerTable(16)
	bLinks := observe.NewPeerTable(16)
	a.SetLinks(aLinks)
	b.SetLinks(bLinks)
	got := make(chan *gossip.Message, 4)
	b.SetHandler(func(m *gossip.Message) { got <- m })

	msg := &gossip.Message{From: "a", Round: 1}
	if n, err := a.SendMany([]gossip.NodeID{"b"}, msg); err != nil || n != 1 {
		t.Fatalf("SendMany = %d, %v", n, err)
	}
	select {
	case <-got:
	case <-time.After(3 * time.Second):
		t.Fatal("mem delivery timed out")
	}

	as := aLinks.Get("b")
	if as.MessagesSent.Load() != 1 || as.FanoutSends.Load() != 1 || as.BytesSent.Load() != 0 {
		t.Fatalf("sender peer stats: %d sent, %d fanout, %d bytes",
			as.MessagesSent.Load(), as.FanoutSends.Load(), as.BytesSent.Load())
	}
	if bs := bLinks.Get("a"); bs.MessagesReceived.Load() != 1 {
		t.Fatalf("receiver attribution missing: %d", bs.MessagesReceived.Load())
	}

	if err := a.Send("ghost", msg); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if g := aLinks.Get("ghost"); g.SendErrors.Load() != 1 {
		t.Fatalf("ghost send errors = %d, want 1", g.SendErrors.Load())
	}
}

// TestMemPeerTelemetryLoss: fabric loss lands in the sender's per-peer
// drop counter.
func TestMemPeerTelemetryLoss(t *testing.T) {
	net, err := NewMemNetwork(WithMemLoss(1.0))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	a, _ := net.Endpoint("a")
	if _, err := net.Endpoint("b"); err != nil {
		t.Fatal(err)
	}
	links := observe.NewPeerTable(16)
	a.SetLinks(links)
	if err := a.Send("b", &gossip.Message{From: "a"}); err != nil {
		t.Fatal(err)
	}
	if ps := links.Get("b"); ps.Drops.Load() != 1 || ps.MessagesSent.Load() != 0 {
		t.Fatalf("loss not attributed: drops=%d sent=%d", ps.Drops.Load(), ps.MessagesSent.Load())
	}
}

package transport

import (
	"bytes"
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
)

func newUDP(t *testing.T, id gossip.NodeID, opts ...UDPOption) *UDPTransport {
	t.Helper()
	tr, err := NewUDPTransport(id, "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatalf("NewUDPTransport(%s): %v", id, err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestUDPRoundTrip(t *testing.T) {
	a := newUDP(t, "a")
	b := newUDP(t, "b")
	got := make(chan *gossip.Message, 1)
	b.SetHandler(func(m *gossip.Message) { got <- m })
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Register("b", b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	msg := sampleMessage()
	if err := a.Send("b", msg); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if !msgEqual(msg, m) {
			t.Fatalf("mismatch over UDP:\n in %+v\nout %+v", msg, m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("UDP delivery timed out")
	}
	st := a.Stats()
	if st.Sent != 1 || st.SentBytes == 0 {
		t.Fatalf("sender stats %+v", st)
	}
	if st := b.Stats(); st.Received != 1 {
		t.Fatalf("receiver stats %+v", st)
	}
}

func TestUDPSplitLargeMessage(t *testing.T) {
	a := newUDP(t, "a", WithMaxDatagram(2048))
	b := newUDP(t, "b")
	got := make(chan *gossip.Message, 16)
	b.SetHandler(func(m *gossip.Message) { got <- m })
	b.Start()
	a.Start()
	a.Register("b", b.Addr().String())

	msg := &gossip.Message{From: "a", Adaptive: true, MinBuff: 90}
	for i := 0; i < 50; i++ {
		msg.Events = append(msg.Events, gossip.Event{
			ID:      gossip.EventID{Origin: "a", Seq: uint64(i)},
			Age:     1,
			Payload: bytes.Repeat([]byte{byte(i)}, 200),
		})
	}
	if err := a.Send("b", msg); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(3 * time.Second)
	var events int
	var chunks int
	for events < 50 {
		select {
		case m := <-got:
			chunks++
			events += len(m.Events)
			if m.MinBuff != 90 || !m.Adaptive {
				t.Fatal("chunk lost adaptation header")
			}
		case <-deadline:
			t.Fatalf("received %d/50 events in %d chunks before timeout", events, chunks)
		}
	}
	if chunks < 2 {
		t.Fatalf("expected multiple datagrams, got %d", chunks)
	}
	if a.Stats().SplitChunks == 0 {
		t.Fatal("SplitChunks not counted")
	}
}

func TestUDPUnknownPeer(t *testing.T) {
	a := newUDP(t, "a")
	if err := a.Send("ghost", &gossip.Message{From: "a"}); err == nil {
		t.Fatal("send to unregistered peer succeeded")
	}
	if a.Stats().SendErrors != 1 {
		t.Fatalf("stats %+v", a.Stats())
	}
}

func TestUDPGarbageDatagramsCounted(t *testing.T) {
	b := newUDP(t, "b")
	b.SetHandler(func(*gossip.Message) {})
	b.Start()
	a := newUDP(t, "a")
	a.Start()
	// Send raw garbage straight at b's socket.
	conn := a.conn
	addr := b.Addr()
	if _, err := conn.WriteToUDP([]byte("not a gossip message"), addr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if b.Stats().DecodeErrors >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("decode errors not counted: %+v", b.Stats())
}

func TestUDPValidation(t *testing.T) {
	if _, err := NewUDPTransport("", "127.0.0.1:0"); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := NewUDPTransport("a", "not-an-addr:xyz"); err == nil {
		t.Fatal("bad address accepted")
	}
	if _, err := NewUDPTransport("a", "127.0.0.1:0", WithMaxDatagram(10)); err == nil {
		t.Fatal("tiny datagram bound accepted")
	}
}

func TestUDPDoubleStartAndClose(t *testing.T) {
	a := newUDP(t, "a")
	a.SetHandler(func(*gossip.Message) {})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("second Close errored")
	}
}

func TestUDPNoHandlerCounted(t *testing.T) {
	b := newUDP(t, "b")
	b.Start()
	a := newUDP(t, "a")
	a.Start()
	a.Register("b", b.Addr().String())
	a.Send("b", &gossip.Message{From: "a"})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if b.Stats().NoHandler >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("NoHandler not counted: %+v", b.Stats())
}

package transport

import (
	"encoding/binary"
	"fmt"

	"adaptivegossip/internal/gossip"
)

// Frame constants shared by every wire version. The frame header is the
// fixed prefix of a datagram: magic, version, flags and the message
// kind; everything after it is version-dependent (see codec.go for the
// full layout and version history).
const (
	codecVersion  = 5 // current wire version (columnar events, compression seam)
	wireV4        = 4 // previous layout: fixed-width inline event list
	wireV3        = 3 // v4 minus trace context and health digests
	flagAdaptive  = 1 << 0
	flagGroup     = 1 << 1
	flagTraced    = 1 << 2
	flagCompress  = 1 << 3 // v5: the event section is compressed
	maxUint16     = 1<<16 - 1
	frameHdrBytes = 3 + 1 + 1 + 1 // magic + version + flags + kind
)

var codecMagic = [3]byte{'A', 'G', 'B'}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// appendFrame writes the fixed frame header: magic, wire version and
// the flag byte derived from the message, then the kind.
//
//gossip:hotpath
func appendFrame(buf []byte, version byte, m *gossip.Message) []byte {
	buf = append(buf, codecMagic[:]...)
	buf = append(buf, version)
	var flags byte
	if m.Adaptive {
		flags |= flagAdaptive
	}
	if m.Group != "" {
		flags |= flagGroup
	}
	if m.Traced {
		flags |= flagTraced
	}
	buf = append(buf, flags)
	buf = append(buf, byte(m.Kind))
	return buf
}

// appendControlPre writes the leading control fields shared by every
// wire version: addressing, round, adaptation header, κ-entries, the
// recovery id lists and the failure-detection fields. In v4 the inline
// event list follows; in v5 the trailing control fields do.
//
//gossip:hotpath
func appendControlPre(buf []byte, m *gossip.Message) []byte {
	buf = appendString(buf, string(m.From))
	if m.Group != "" {
		buf = appendString(buf, m.Group)
	}
	buf = binary.BigEndian.AppendUint64(buf, m.Round)
	if m.Adaptive {
		buf = binary.BigEndian.AppendUint64(buf, m.SamplePeriod)
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(m.MinBuff)))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.KMin)))
	for _, e := range m.KMin {
		buf = appendString(buf, string(e.Node))
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(e.Cap)))
	}
	for _, ids := range [2][]gossip.EventID{m.Digest, m.Request} {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(ids)))
		for _, id := range ids {
			buf = appendString(buf, string(id.Origin))
			buf = binary.BigEndian.AppendUint64(buf, id.Seq)
		}
	}
	buf = appendString(buf, string(m.Probe))
	buf = binary.BigEndian.AppendUint64(buf, m.ProbeSeq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Updates)))
	for _, u := range m.Updates {
		buf = appendString(buf, string(u.Node))
		buf = append(buf, byte(u.Status))
		buf = binary.BigEndian.AppendUint64(buf, u.Incarnation)
	}
	return buf
}

// appendControlPost writes the trailing control fields: membership
// churn and the health-digest piggyback.
//
//gossip:hotpath
func appendControlPost(buf []byte, m *gossip.Message) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Subs)))
	for _, s := range m.Subs {
		buf = appendString(buf, string(s))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Unsubs)))
	for _, s := range m.Unsubs {
		buf = appendString(buf, string(s))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Health)))
	for i := range m.Health {
		buf = appendHealthDigest(buf, &m.Health[i])
	}
	return buf
}

// appendHealthDigest writes one health digest: fixed counters, then the
// delivery-hops histogram in sparse canonical form (only non-zero
// buckets, indexes ascending).
//
//gossip:hotpath
func appendHealthDigest(buf []byte, d *gossip.HealthDigest) []byte {
	buf = appendString(buf, string(d.Node))
	buf = binary.BigEndian.AppendUint64(buf, d.Round)
	buf = binary.BigEndian.AppendUint64(buf, d.WallMillis)
	buf = binary.BigEndian.AppendUint64(buf, d.Published)
	buf = binary.BigEndian.AppendUint64(buf, d.Delivered)
	buf = binary.BigEndian.AppendUint64(buf, d.DroppedCapacity)
	buf = binary.BigEndian.AppendUint64(buf, d.DroppedExpired)
	buf = binary.BigEndian.AppendUint64(buf, d.MessagesSent)
	buf = binary.BigEndian.AppendUint64(buf, d.MessagesReceived)
	buf = binary.BigEndian.AppendUint64(buf, d.BytesSent)
	buf = binary.BigEndian.AppendUint64(buf, d.BytesReceived)
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(d.BufferLen)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(d.BufferCap)))
	buf = binary.BigEndian.AppendUint64(buf, d.DeliverHops.Count)
	buf = binary.BigEndian.AppendUint64(buf, d.DeliverHops.Sum)
	var nb byte
	for _, b := range d.DeliverHops.Buckets {
		if b != 0 {
			nb++
		}
	}
	buf = append(buf, nb)
	for i, b := range d.DeliverHops.Buckets {
		if b == 0 {
			continue
		}
		buf = append(buf, byte(i))
		buf = binary.BigEndian.AppendUint64(buf, b)
	}
	return buf
}

// controlPreSize returns the exact wire size of the leading control
// fields written by appendControlPre.
func controlPreSize(m *gossip.Message) int {
	n := 2 + len(m.From) + 8
	if m.Group != "" {
		n += 2 + len(m.Group)
	}
	if m.Adaptive {
		n += 8 + 4
	}
	n += 2
	for _, e := range m.KMin {
		n += 2 + len(e.Node) + 4
	}
	n += 2 + 2
	for _, ids := range [2][]gossip.EventID{m.Digest, m.Request} {
		for _, id := range ids {
			n += 2 + len(id.Origin) + 8
		}
	}
	n += 2 + len(m.Probe) + 8
	n += 2
	for _, u := range m.Updates {
		n += 2 + len(u.Node) + 1 + 8
	}
	return n
}

// controlPostSize returns the exact wire size of the trailing control
// fields written by appendControlPost.
func controlPostSize(m *gossip.Message) int {
	n := 2
	for _, s := range m.Subs {
		n += 2 + len(s)
	}
	n += 2
	for _, s := range m.Unsubs {
		n += 2 + len(s)
	}
	n += 2
	for i := range m.Health {
		n += healthDigestWireSize(&m.Health[i])
	}
	return n
}

func healthDigestWireSize(d *gossip.HealthDigest) int {
	// node + round/wallMillis + 8 counters + bufferLen/Cap + hist
	// count/sum + bucket count byte.
	n := 2 + len(d.Node) + 8 + 8 + 8*8 + 4 + 4 + 8 + 8 + 1
	for _, b := range d.DeliverHops.Buckets {
		if b != 0 {
			n += 9
		}
	}
	return n
}

// reader is the bounds-checked cursor every decode path shares.
type reader struct {
	data []byte
	off  int
}

func (r *reader) need(n int) error {
	if n < 0 || r.off+n > len(r.data) {
		return ErrTruncated
	}
	return nil
}

func (r *reader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

// uvarint reads one unsigned varint; truncated and over-long (>10 byte)
// encodings error.
func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n == 0 {
		return 0, ErrTruncated
	}
	if n < 0 {
		return 0, fmt.Errorf("%w: varint overflow", ErrTooLarge)
	}
	r.off += n
	return v, nil
}

func (r *reader) str(maxLen int) (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if int(n) > maxLen {
		return "", fmt.Errorf("%w: id %d bytes", ErrTooLarge, n)
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// decodeControlPre parses the leading control fields into m (the
// counterpart of appendControlPre; the frame header is already
// consumed and its flags applied to m).
func (c Codec) decodeControlPre(r *reader, m *gossip.Message, flags byte) error {
	from, err := r.str(c.MaxIDLen)
	if err != nil {
		return err
	}
	m.From = gossip.NodeID(from)
	if flags&flagGroup != 0 {
		group, err := r.str(c.MaxIDLen)
		if err != nil {
			return err
		}
		if group == "" {
			return fmt.Errorf("transport: empty group tag with group flag set")
		}
		m.Group = group
	}
	if m.Round, err = r.u64(); err != nil {
		return err
	}
	if m.Adaptive {
		if m.SamplePeriod, err = r.u64(); err != nil {
			return err
		}
		mb, err := r.u32()
		if err != nil {
			return err
		}
		m.MinBuff = int(int32(mb))
	}
	nk, err := r.u16()
	if err != nil {
		return err
	}
	if nk > 0 {
		m.KMin = make([]gossip.BuffCap, 0, nk)
		for i := 0; i < int(nk); i++ {
			node, err := r.str(c.MaxIDLen)
			if err != nil {
				return err
			}
			cp, err := r.u32()
			if err != nil {
				return err
			}
			m.KMin = append(m.KMin, gossip.BuffCap{Node: gossip.NodeID(node), Cap: int(int32(cp))})
		}
	}
	for _, dst := range []*[]gossip.EventID{&m.Digest, &m.Request} {
		nd, err := r.u16()
		if err != nil {
			return err
		}
		if nd > 0 {
			// Cap the preallocation by what the remaining input could
			// possibly hold (≥10 bytes per id), so a spoofed count in a
			// tiny datagram cannot force a large allocation.
			capN := int(nd)
			if maxN := (len(r.data) - r.off) / 10; capN > maxN {
				capN = maxN
			}
			ids := make([]gossip.EventID, 0, capN)
			for i := 0; i < int(nd); i++ {
				origin, err := r.str(c.MaxIDLen)
				if err != nil {
					return err
				}
				seq, err := r.u64()
				if err != nil {
					return err
				}
				ids = append(ids, gossip.EventID{Origin: gossip.NodeID(origin), Seq: seq})
			}
			*dst = ids
		}
	}
	probe, err := r.str(c.MaxIDLen)
	if err != nil {
		return err
	}
	m.Probe = gossip.NodeID(probe)
	if m.ProbeSeq, err = r.u64(); err != nil {
		return err
	}
	nu, err := r.u16()
	if err != nil {
		return err
	}
	if nu > 0 {
		// Preallocation capped by what the remaining input could hold
		// (≥11 bytes per update), as for the digest lists above.
		capN := int(nu)
		if maxN := (len(r.data) - r.off) / 11; capN > maxN {
			capN = maxN
		}
		m.Updates = make([]gossip.MemberUpdate, 0, capN)
		for i := 0; i < int(nu); i++ {
			node, err := r.str(c.MaxIDLen)
			if err != nil {
				return err
			}
			status, err := r.u8()
			if err != nil {
				return err
			}
			if gossip.MemberStatus(status) > gossip.MemberConfirmed {
				return fmt.Errorf("transport: unknown member status %d", status)
			}
			inc, err := r.u64()
			if err != nil {
				return err
			}
			m.Updates = append(m.Updates, gossip.MemberUpdate{
				Node:        gossip.NodeID(node),
				Status:      gossip.MemberStatus(status),
				Incarnation: inc,
			})
		}
	}
	return nil
}

// decodeControlPost parses the trailing control fields (membership and,
// for wire v4+, the health-digest section) into m.
func (c Codec) decodeControlPost(r *reader, m *gossip.Message, withHealth bool) error {
	for _, dst := range []*[]gossip.NodeID{&m.Subs, &m.Unsubs} {
		n, err := r.u16()
		if err != nil {
			return err
		}
		for i := 0; i < int(n); i++ {
			s, err := r.str(c.MaxIDLen)
			if err != nil {
				return err
			}
			*dst = append(*dst, gossip.NodeID(s))
		}
	}
	if withHealth {
		var err error
		if m.Health, err = c.decodeHealth(r); err != nil {
			return err
		}
	}
	return nil
}

// decodeHealth parses the health-digest section (wire v4+), enforcing
// the canonical sparse-histogram form so a decoded message re-encodes
// to identical bytes.
func (c Codec) decodeHealth(r *reader) ([]gossip.HealthDigest, error) {
	nh, err := r.u16()
	if err != nil {
		return nil, err
	}
	if nh == 0 {
		return nil, nil
	}
	// Preallocation capped by what the remaining input could hold
	// (≥107 bytes per digest), as for the id lists.
	capN := int(nh)
	if maxN := (len(r.data) - r.off) / 107; capN > maxN {
		capN = maxN
	}
	out := make([]gossip.HealthDigest, 0, capN)
	for i := 0; i < int(nh); i++ {
		var d gossip.HealthDigest
		node, err := r.str(c.MaxIDLen)
		if err != nil {
			return nil, err
		}
		d.Node = gossip.NodeID(node)
		for _, dst := range []*uint64{
			&d.Round, &d.WallMillis,
			&d.Published, &d.Delivered, &d.DroppedCapacity, &d.DroppedExpired,
			&d.MessagesSent, &d.MessagesReceived, &d.BytesSent, &d.BytesReceived,
		} {
			if *dst, err = r.u64(); err != nil {
				return nil, err
			}
		}
		bl, err := r.u32()
		if err != nil {
			return nil, err
		}
		bc, err := r.u32()
		if err != nil {
			return nil, err
		}
		d.BufferLen, d.BufferCap = int(int32(bl)), int(int32(bc))
		if d.DeliverHops.Count, err = r.u64(); err != nil {
			return nil, err
		}
		if d.DeliverHops.Sum, err = r.u64(); err != nil {
			return nil, err
		}
		nb, err := r.u8()
		if err != nil {
			return nil, err
		}
		if int(nb) > len(d.DeliverHops.Buckets) {
			return nil, fmt.Errorf("%w: %d histogram buckets", ErrTooLarge, nb)
		}
		last := -1
		for j := 0; j < int(nb); j++ {
			idx, err := r.u8()
			if err != nil {
				return nil, err
			}
			if int(idx) >= len(d.DeliverHops.Buckets) || int(idx) <= last {
				return nil, fmt.Errorf("transport: bad histogram bucket index %d", idx)
			}
			val, err := r.u64()
			if err != nil {
				return nil, err
			}
			if val == 0 {
				return nil, fmt.Errorf("transport: zero histogram bucket encoded")
			}
			d.DeliverHops.Buckets[idx] = val
			last = int(idx)
		}
		out = append(out, d)
	}
	return out, nil
}

package transport

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/observe"
)

// MemStats counts in-memory fabric traffic.
type MemStats struct {
	Sent        uint64
	Delivered   uint64
	LossDropped uint64
	NoRoute     uint64
	NoHandler   uint64
	ClosedDrops uint64
}

// MemNetwork is an in-process message fabric connecting MemEndpoints,
// with optional uniform latency and iid loss. It lets a full cluster of
// runtime nodes run inside one process — the harness for the prototype
// validation experiments, replacing the paper's Ethernet LAN.
type MemNetwork struct {
	mu        sync.Mutex
	rng       *rand.Rand
	latMin    time.Duration
	latMax    time.Duration
	loss      float64
	endpoints map[gossip.NodeID]*MemEndpoint
	stats     MemStats
	closed    bool
	inflight  sync.WaitGroup
	// timers tracks pending latency-delayed deliveries so Close can
	// cancel them instead of letting them fire into torn-down nodes (or
	// waiting a full latency bound for them to expire).
	timers map[*time.Timer]struct{}
}

// MemOption configures a MemNetwork.
type MemOption func(*MemNetwork) error

// WithMemLatency sets uniform delivery latency bounds.
func WithMemLatency(min, max time.Duration) MemOption {
	return func(n *MemNetwork) error {
		if min < 0 || max < min {
			return fmt.Errorf("transport: invalid latency bounds [%v, %v]", min, max)
		}
		n.latMin, n.latMax = min, max
		return nil
	}
}

// WithMemLoss sets the iid loss probability.
func WithMemLoss(p float64) MemOption {
	return func(n *MemNetwork) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("transport: loss probability %v out of [0,1]", p)
		}
		n.loss = p
		return nil
	}
}

// WithMemSeed seeds the fabric's randomness (loss and latency draws).
func WithMemSeed(seed uint64) MemOption {
	return func(n *MemNetwork) error {
		n.rng = rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))
		return nil
	}
}

// NewMemNetwork creates an empty fabric.
func NewMemNetwork(opts ...MemOption) (*MemNetwork, error) {
	n := &MemNetwork{
		rng:       rand.New(rand.NewPCG(1, 2)),
		endpoints: make(map[gossip.NodeID]*MemEndpoint),
		timers:    make(map[*time.Timer]struct{}),
	}
	for _, opt := range opts {
		if err := opt(n); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Endpoint creates (or returns an error for a duplicate) the transport
// endpoint for a node.
func (n *MemNetwork) Endpoint(id gossip.NodeID) (*MemEndpoint, error) {
	if id == "" {
		return nil, fmt.Errorf("transport: endpoint id must not be empty")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if _, dup := n.endpoints[id]; dup {
		return nil, fmt.Errorf("transport: duplicate endpoint %s", id)
	}
	ep := &MemEndpoint{net: n, id: id}
	n.endpoints[id] = ep
	return ep, nil
}

// Stats returns a copy of the traffic counters.
func (n *MemNetwork) Stats() MemStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close shuts the fabric down: pending latency timers are cancelled
// (counted as ClosedDrops), then in-flight deliveries are waited for.
// No delivery callback runs after Close returns.
func (n *MemNetwork) Close() {
	n.mu.Lock()
	n.closed = true
	for tm := range n.timers {
		if tm.Stop() {
			// The delivery will never run; settle its in-flight slot.
			n.stats.ClosedDrops++
			n.inflight.Done()
		}
		delete(n.timers, tm)
	}
	n.mu.Unlock()
	n.inflight.Wait()
}

func (n *MemNetwork) send(sender *MemEndpoint, to gossip.NodeID, msg *gossip.Message) error {
	ps := sender.peerStats(to)
	n.mu.Lock()
	if n.closed {
		n.stats.ClosedDrops++
		n.mu.Unlock()
		return fmt.Errorf("transport: network closed")
	}
	n.stats.Sent++
	if _, ok := n.endpoints[to]; !ok {
		n.stats.NoRoute++
		n.mu.Unlock()
		if ps != nil {
			ps.SendErrors.Inc()
		}
		return fmt.Errorf("transport: no endpoint %s", to)
	}
	if n.loss > 0 && n.rng.Float64() < n.loss {
		n.stats.LossDropped++
		n.mu.Unlock()
		if ps != nil {
			ps.Drops.Inc()
		}
		return nil
	}
	if ps != nil {
		ps.MessagesSent.Inc()
	}
	var lat time.Duration
	if n.latMax > 0 {
		lat = n.latMin
		if n.latMax > n.latMin {
			lat += time.Duration(n.rng.Int64N(int64(n.latMax - n.latMin + 1)))
		}
	}
	n.inflight.Add(1)
	deliver := func() {
		defer n.inflight.Done()
		n.mu.Lock()
		ep, ok := n.endpoints[to]
		closed := n.closed
		n.mu.Unlock()
		if closed || !ok {
			n.bump(func(s *MemStats) { s.ClosedDrops++ })
			return
		}
		h := ep.handler()
		if h == nil {
			n.bump(func(s *MemStats) { s.NoHandler++ })
			return
		}
		n.bump(func(s *MemStats) { s.Delivered++ })
		if rps := ep.peerStats(msg.From); rps != nil {
			rps.MessagesReceived.Inc()
		}
		h(msg)
	}
	if lat == 0 {
		n.mu.Unlock()
		go deliver()
		return nil
	}
	// The timer is created and registered while mu is held, and its
	// callback reads the tm variable only after re-acquiring mu — that
	// lock ordering is what makes the handoff race-free and lets Close
	// cancel the timer under the same lock.
	var tm *time.Timer
	tm = time.AfterFunc(lat, func() {
		n.mu.Lock()
		delete(n.timers, tm)
		n.mu.Unlock()
		deliver()
	})
	n.timers[tm] = struct{}{}
	n.mu.Unlock()
	return nil
}

func (n *MemNetwork) bump(f func(*MemStats)) {
	n.mu.Lock()
	f(&n.stats)
	n.mu.Unlock()
}

func (n *MemNetwork) detach(id gossip.NodeID) {
	n.mu.Lock()
	delete(n.endpoints, id)
	n.mu.Unlock()
}

// MemEndpoint is one node's attachment to a MemNetwork.
type MemEndpoint struct {
	net *MemNetwork
	id  gossip.NodeID

	// links, when set, receives per-peer telemetry. The in-process
	// fabric moves no wire bytes, so only the message counters, fan-out
	// sends, drops and send errors are attributed; the byte counters
	// stay zero.
	links atomic.Pointer[observe.PeerTable]

	mu sync.RWMutex
	h  Handler
}

// LocalID returns the endpoint's node id.
func (e *MemEndpoint) LocalID() gossip.NodeID { return e.id }

// SetLinks installs (or replaces) the per-peer telemetry table; nil
// detaches. Safe to call while traffic is flowing.
func (e *MemEndpoint) SetLinks(links *observe.PeerTable) { e.links.Store(links) }

// peerStats resolves the telemetry row for a peer, nil when telemetry
// is off.
func (e *MemEndpoint) peerStats(id gossip.NodeID) *observe.PeerStats {
	links := e.links.Load()
	if links == nil {
		return nil
	}
	return links.Get(string(id))
}

// SetHandler installs the receive callback.
func (e *MemEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.h = h
	e.mu.Unlock()
}

func (e *MemEndpoint) handler() Handler {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.h
}

// Send transmits msg through the fabric. The fabric delivers
// asynchronously (goroutine handoff, optional latency timers), which
// can outlive the sender's next gossip round, so the message is cloned
// once here — the in-process stand-in for the copy a wire encoding
// would have made. This keeps senders free to reuse per-round scratch
// messages (see gossip.Node.Tick's lifetime contract).
func (e *MemEndpoint) Send(to gossip.NodeID, msg *gossip.Message) error {
	return e.net.send(e, to, msg.CopyForSend())
}

// SendMany transmits msg to every target through the fabric. There is
// no wire encoding in process, so the fast path is one defensive clone
// (shared read-only by all receivers, mirroring Send's retention rule)
// followed by a loop; it exists so the ManySender seam behaves
// uniformly across the built-in transports. Targets are attempted
// independently; SendMany returns the number accepted and the first
// error.
func (e *MemEndpoint) SendMany(targets []gossip.NodeID, msg *gossip.Message) (int, error) {
	if len(targets) == 0 {
		return 0, nil
	}
	clone := msg.CopyForSend()
	sent := 0
	var first error
	for _, to := range targets {
		if err := e.net.send(e, to, clone); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		if ps := e.peerStats(to); ps != nil {
			ps.FanoutSends.Inc()
		}
		sent++
	}
	return sent, first
}

// Close detaches the endpoint from the fabric.
func (e *MemEndpoint) Close() error {
	e.net.detach(e.id)
	return nil
}

// ScratchSafe marks the endpoint as not retaining sent messages: Send
// and SendMany copy on entry.
func (e *MemEndpoint) ScratchSafe() {}

var (
	_ Transport   = (*MemEndpoint)(nil)
	_ ManySender  = (*MemEndpoint)(nil)
	_ ScratchSafe = (*MemEndpoint)(nil)
)

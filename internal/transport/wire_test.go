package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestUDPSendManyRoundTrip(t *testing.T) {
	a := newUDP(t, "a")
	a.Start()
	msg := sampleMessage()
	var targets []gossip.NodeID
	type rx struct {
		id  gossip.NodeID
		got chan *gossip.Message
	}
	var rxs []rx
	for i := 0; i < 3; i++ {
		id := gossip.NodeID(fmt.Sprintf("peer-%d", i))
		b := newUDP(t, id)
		got := make(chan *gossip.Message, 1)
		b.SetHandler(func(m *gossip.Message) { got <- m })
		b.Start()
		a.Register(id, b.Addr().String())
		targets = append(targets, id)
		rxs = append(rxs, rx{id: id, got: got})
	}
	sent, err := a.SendMany(targets, msg)
	if err != nil {
		t.Fatal(err)
	}
	if sent != len(targets) {
		t.Fatalf("sent %d of %d targets", sent, len(targets))
	}
	for _, r := range rxs {
		select {
		case m := <-r.got:
			if !msgEqual(msg, m) {
				t.Fatalf("%s: mismatch over SendMany", r.id)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("%s: delivery timed out", r.id)
		}
	}
	if st := a.Stats(); st.Sent != uint64(len(targets)) {
		t.Fatalf("sender stats %+v", st)
	}
}

func TestUDPSendManyUnknownPeer(t *testing.T) {
	a := newUDP(t, "a")
	b := newUDP(t, "b")
	got := make(chan *gossip.Message, 1)
	b.SetHandler(func(m *gossip.Message) { got <- m })
	b.Start()
	a.Start()
	a.Register("b", b.Addr().String())
	// The unknown target must not stop delivery to the known one.
	sent, err := a.SendMany([]gossip.NodeID{"ghost", "b"}, sampleMessage())
	if err == nil {
		t.Fatal("unknown peer not reported")
	}
	if sent != 1 {
		t.Fatalf("sent = %d, want 1", sent)
	}
	select {
	case <-got:
	case <-time.After(3 * time.Second):
		t.Fatal("known target not reached")
	}
	if st := a.Stats(); st.SendErrors != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestUDPSendManyFallbackShim(t *testing.T) {
	// A transport hidden behind the plain interface still fans out via
	// the per-peer shim.
	a := newUDP(t, "a")
	b := newUDP(t, "b")
	got := make(chan *gossip.Message, 1)
	b.SetHandler(func(m *gossip.Message) { got <- m })
	b.Start()
	a.Start()
	a.Register("b", b.Addr().String())
	shimmed := plainTransport{a}
	sent, err := SendMany(shimmed, []gossip.NodeID{"b"}, sampleMessage())
	if err != nil || sent != 1 {
		t.Fatalf("shim: sent=%d err=%v", sent, err)
	}
	select {
	case <-got:
	case <-time.After(3 * time.Second):
		t.Fatal("shim delivery timed out")
	}
}

// plainTransport strips the ManySender fast path, standing in for an
// external Transport implementation.
type plainTransport struct{ tr *UDPTransport }

func (p plainTransport) LocalID() gossip.NodeID                         { return p.tr.LocalID() }
func (p plainTransport) Send(to gossip.NodeID, m *gossip.Message) error { return p.tr.Send(to, m) }
func (p plainTransport) SetHandler(h Handler)                           { p.tr.SetHandler(h) }
func (p plainTransport) Close() error                                   { return p.tr.Close() }

// TestUDPSplitChunksCountsExtraFragments pins the accounting contract:
// a message split into n datagrams adds n-1, singles add nothing.
func TestUDPSplitChunksCountsExtraFragments(t *testing.T) {
	a := newUDP(t, "a", WithMaxDatagram(2048))
	b := newUDP(t, "b")
	b.SetHandler(func(*gossip.Message) {})
	b.Start()
	a.Start()
	a.Register("b", b.Addr().String())

	single := &gossip.Message{From: "a"}
	if err := a.Send("b", single); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.SplitChunks != 0 {
		t.Fatalf("single-datagram send counted as split: %+v", st)
	}

	big := sampleMessage()
	for i := 0; i < 60; i++ {
		big.Events = append(big.Events, gossip.Event{
			ID:      gossip.EventID{Origin: "a", Seq: uint64(100 + i)},
			Payload: make([]byte, 200),
		})
	}
	chunks, err := a.codec.EncodeChunks(big, a.maxDg)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("test message did not split (%d chunks)", len(chunks))
	}
	if err := a.Send("b", big); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Stats().SplitChunks, uint64(len(chunks)-1); got != want {
		t.Fatalf("SplitChunks = %d, want %d (extra fragments only)", got, want)
	}
}

// TestUDPSplitChunksSkipsLossDropped pins the other half of the
// contract: fragments dropped by injected loss never count as split.
func TestUDPSplitChunksSkipsLossDropped(t *testing.T) {
	a := newUDP(t, "a", WithMaxDatagram(2048), WithUDPSendLoss(1.0, 7))
	a.Start()
	if err := a.Register("b", "127.0.0.1:9"); err != nil {
		t.Fatal(err)
	}
	big := sampleMessage()
	for i := 0; i < 60; i++ {
		big.Events = append(big.Events, gossip.Event{
			ID:      gossip.EventID{Origin: "a", Seq: uint64(100 + i)},
			Payload: make([]byte, 200),
		})
	}
	if err := a.Send("b", big); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.LossDropped == 0 {
		t.Fatalf("full loss dropped nothing: %+v", st)
	}
	if st.SplitChunks != 0 || st.Sent != 0 {
		t.Fatalf("loss-dropped fragments counted: %+v", st)
	}
}

// failingConn injects persistent read errors without ever reporting
// net.ErrClosed, the regression shape for the read-loop spin bug.
type failingConn struct {
	closed atomic.Bool
	reads  atomic.Uint64
}

func (c *failingConn) ReadFromUDP(b []byte) (int, *net.UDPAddr, error) {
	c.reads.Add(1)
	if c.closed.Load() {
		return 0, nil, net.ErrClosed
	}
	return 0, nil, errors.New("injected read failure")
}

func (c *failingConn) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	return len(b), nil
}

func (c *failingConn) LocalAddr() net.Addr {
	return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
}

func (c *failingConn) Close() error {
	c.closed.Store(true)
	return nil
}

func TestUDPReadLoopBacksOffOnPersistentErrors(t *testing.T) {
	conn := &failingConn{}
	tr, err := newUDPTransport("a", conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	reads := conn.reads.Load()
	// A spinning loop would take millions of reads in 150ms; the
	// 1ms→100ms exponential backoff allows only a handful.
	if reads > 60 {
		t.Fatalf("read loop spun: %d reads in 150ms", reads)
	}
	if errs := tr.Stats().ReadErrors; errs < 2 {
		t.Fatalf("ReadErrors = %d, want at least 2", errs)
	}
	start := time.Now()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Close blocked %v behind the backoff", d)
	}
}

// TestUDPSlowHandlerKeepsSocketDraining proves the tentpole receive
// property: with the handler wedged, the read loop keeps pulling
// datagrams off the socket and the bounded queue absorbs or counts the
// overflow — no deadlock, no silent kernel-buffer loss.
func TestUDPSlowHandlerKeepsSocketDraining(t *testing.T) {
	b := newUDP(t, "b", WithUDPRecvQueue(2))
	release := make(chan struct{})
	var handled atomic.Uint64
	b.SetHandler(func(*gossip.Message) {
		<-release
		handled.Add(1)
	})
	b.Start()
	a := newUDP(t, "a")
	a.Start()
	a.Register("b", b.Addr().String())

	const sends = 40
	msg := &gossip.Message{From: "a"}
	for i := 0; i < sends; i++ {
		if err := a.Send("b", msg); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	// The handler is stuck on the first datagram, yet the socket must
	// keep draining: most datagrams are received, and everything beyond
	// the queue depth is counted as dropped.
	waitFor(t, "read loop to drain the socket", func() bool {
		st := b.Stats()
		return st.Received >= sends*3/4 && st.RecvQueueDrops >= 1
	})
	close(release)
	waitFor(t, "queued messages to dispatch", func() bool {
		// 1 wedged + queue depth 2 eventually dispatch once released.
		return handled.Load() >= 3
	})
	st := b.Stats()
	if st.Received < st.RecvQueueDrops {
		t.Fatalf("inconsistent stats %+v", st)
	}
}

// TestUDPCloseDiscardsQueuedBacklog pins the shutdown contract: Close
// must not push a backlogged dispatch queue through a slow handler —
// the backlog is discarded and counted, and only the in-flight handler
// call is waited for.
func TestUDPCloseDiscardsQueuedBacklog(t *testing.T) {
	b := newUDP(t, "b", WithUDPRecvQueue(16))
	var handled atomic.Uint64
	b.SetHandler(func(*gossip.Message) {
		handled.Add(1)
		time.Sleep(200 * time.Millisecond)
	})
	b.Start()
	a := newUDP(t, "a")
	a.Start()
	a.Register("b", b.Addr().String())
	msg := &gossip.Message{From: "a"}
	for i := 0; i < 12; i++ {
		if err := a.Send("b", msg); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	waitFor(t, "datagrams to queue", func() bool { return b.Stats().Received >= 10 })
	start := time.Now()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Draining ~10 queued datagrams through the 200ms handler would
	// take ~2s; discarding must finish within one in-flight call.
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Close took %v, backlog was dispatched instead of discarded", d)
	}
	if got := handled.Load(); got > 2 {
		t.Fatalf("%d handler calls ran during shutdown", got)
	}
	if st := b.Stats(); st.RecvQueueDrops == 0 {
		t.Fatalf("discarded backlog not counted: %+v", st)
	}
}

func TestUDPRecvQueueOptionValidation(t *testing.T) {
	if _, err := NewUDPTransport("a", "127.0.0.1:0", WithUDPRecvQueue(0)); err == nil {
		t.Fatal("zero recv queue depth accepted")
	}
}

// TestUDPConcurrentSendRegisterClose exercises the wire path under the
// race detector: sends, fanout sends, registrations and Close racing.
func TestUDPConcurrentSendRegisterClose(t *testing.T) {
	a := newUDP(t, "a")
	b := newUDP(t, "b")
	b.SetHandler(func(*gossip.Message) {})
	b.Start()
	a.Start()
	a.Register("b", b.Addr().String())

	msg := sampleMessage()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					a.Send("b", msg)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					a.SendMany([]gossip.NodeID{"b", "ghost"}, msg)
				}
			}
		}()
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					a.Register(gossip.NodeID(fmt.Sprintf("peer-%d", i)), b.Addr().String())
				}
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}

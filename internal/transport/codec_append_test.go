package transport

import (
	"bytes"
	"testing"

	"adaptivegossip/internal/gossip"
)

func TestAppendEncodeMatchesEncode(t *testing.T) {
	c := DefaultCodec()
	msg := sampleMessage()
	want, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("prefix-bytes")
	got, err := c.AppendEncode(append([]byte(nil), prefix...), msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, prefix) {
		t.Fatal("AppendEncode clobbered the existing buffer contents")
	}
	if !bytes.Equal(got[len(prefix):], want) {
		t.Fatal("AppendEncode produced different bytes than Encode")
	}
	dec, err := c.Decode(got[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if !msgEqual(msg, dec) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", msg, dec)
	}
}

func TestAppendEncodeRejectsInvalid(t *testing.T) {
	c := DefaultCodec()
	if _, err := c.AppendEncode(nil, nil); err == nil {
		t.Fatal("nil message accepted")
	}
	bad := &gossip.Message{From: gossip.NodeID(bytes.Repeat([]byte{'x'}, 300))}
	if _, err := c.AppendEncode(nil, bad); err == nil {
		t.Fatal("oversized from id accepted")
	}
}

func TestEncodedSizeExact(t *testing.T) {
	c := DefaultCodec()
	for _, msg := range []*gossip.Message{
		sampleMessage(),
		{From: "a"},
		{From: "a", Kind: gossip.KindPing, Probe: "b", ProbeSeq: 9},
	} {
		enc, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := c.EncodedSize(msg), len(enc); got != want {
			t.Fatalf("EncodedSize = %d, encoding is %d bytes", got, want)
		}
	}
}

// TestAppendEncodeZeroAlloc asserts the steady-state contract the
// pooled wire path depends on: encoding into a buffer with enough
// capacity allocates nothing.
func TestAppendEncodeZeroAlloc(t *testing.T) {
	c := DefaultCodec()
	msg := sampleMessage()
	buf := make([]byte, 0, c.EncodedSize(msg))
	allocs := testing.AllocsPerRun(200, func() {
		out, err := c.AppendEncode(buf[:0], msg)
		if err != nil {
			t.Fatal(err)
		}
		_ = out
	})
	if allocs != 0 {
		t.Fatalf("AppendEncode allocated %v times per run with sufficient capacity", allocs)
	}
}

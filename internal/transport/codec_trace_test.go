package transport

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"adaptivegossip/internal/gossip"
)

// tracedKindSamples returns one traced representative per wire kind:
// kindSamples with the v4 trace context (hop counters) and a health
// piggyback applied.
func tracedKindSamples() []*gossip.Message {
	msgs := kindSamples()
	for i, m := range msgs {
		m.Traced = true
		for j := range m.Events {
			m.Events[j].Hop = j + i
		}
		if len(m.Health) == 0 {
			m.Health = []gossip.HealthDigest{sampleHealthDigest(gossip.NodeID("h-" + string(rune('a'+i))))}
		}
	}
	return msgs
}

// TestCodecV4TraceRoundTripAllKinds: decode(encode(m)) == m for traced
// messages of every kind, hop counters and health digests included.
func TestCodecV4TraceRoundTripAllKinds(t *testing.T) {
	c := DefaultCodec()
	for _, m := range tracedKindSamples() {
		data, err := c.Encode(m)
		if err != nil {
			t.Fatalf("kind %v: encode: %v", m.Kind, err)
		}
		got, err := c.Decode(data)
		if err != nil {
			t.Fatalf("kind %v: decode: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("kind %v traced round trip mismatch:\n in: %#v\nout: %#v", m.Kind, m, got)
		}
	}
}

// encodeV3 renders the wire-v3 encoding of an untraced, health-free
// message via the codec's legacy v4 encoder: the v4 encoding of such a
// message differs from v3 only by the version byte and the trailing
// (empty, 2-byte) health section, so the v3 bytes are recovered
// exactly — a compatibility oracle that tracks the encoder instead of
// hand-maintained golden bytes.
func encodeV3(t *testing.T, c Codec, m *gossip.Message) []byte {
	t.Helper()
	if m.Traced || len(m.Health) > 0 {
		t.Fatal("encodeV3 needs an untraced, health-free message")
	}
	c4 := c
	c4.WireVersion = wireV4
	data, err := c4.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	data = data[:len(data)-2]
	data[3] = wireV3
	return data
}

// TestCodecV3StillDecodes: every kind's v3 encoding decodes under the
// v4 codec, with no trace context and no health attributed.
func TestCodecV3StillDecodes(t *testing.T) {
	c := DefaultCodec()
	for _, m := range kindSamples() {
		m.Traced = false
		m.Health = nil
		for j := range m.Events {
			m.Events[j].Hop = 0
		}
		data := encodeV3(t, c, m)
		got, err := c.Decode(data)
		if err != nil {
			t.Fatalf("kind %v: v3 decode: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("kind %v v3 decode mismatch:\n in: %#v\nout: %#v", m.Kind, m, got)
		}
		if got.Traced || got.Health != nil {
			t.Errorf("kind %v v3 decode invented v4 fields: %+v", m.Kind, got)
		}
	}
}

// TestCodecV3RejectsTruncations: the v3 acceptance path keeps the
// everywhere-truncation guarantee.
func TestCodecV3RejectsTruncations(t *testing.T) {
	c := DefaultCodec()
	m := kindSamples()[0]
	m.Traced = false
	m.Health = nil
	data := encodeV3(t, c, m)
	for cut := 0; cut < len(data); cut++ {
		if _, err := c.Decode(data[:cut]); err == nil {
			t.Fatalf("v3 truncation at %d/%d accepted", cut, len(data))
		}
	}
}

// TestCodecTracedHopRange: out-of-range hop counters are rejected on
// traced messages (they would not round-trip through the u16 field)
// and ignored on untraced ones (hop does not ride the wire).
func TestCodecTracedHopRange(t *testing.T) {
	c := DefaultCodec()
	ev := gossip.Event{ID: gossip.EventID{Origin: "o", Seq: 1}, Hop: maxUint16 + 1}
	if _, err := c.Encode(&gossip.Message{From: "a", Traced: true, Events: []gossip.Event{ev}}); err == nil {
		t.Fatal("oversized hop accepted on traced message")
	}
	ev.Hop = -1
	if _, err := c.Encode(&gossip.Message{From: "a", Traced: true, Events: []gossip.Event{ev}}); err == nil {
		t.Fatal("negative hop accepted on traced message")
	}
	ev.Hop = maxUint16 + 1
	if _, err := c.Encode(&gossip.Message{From: "a", Events: []gossip.Event{ev}}); err != nil {
		t.Fatalf("untraced message rejected for hop it does not encode: %v", err)
	}
}

// TestCodecQuickRoundTripTraced property-tests traced messages with
// random hop counters and sparse health histograms.
func TestCodecQuickRoundTripTraced(t *testing.T) {
	c := DefaultCodec()
	f := func(from string, round uint64, hops []uint16, seqs []uint64,
		hNode [4]byte, hRound uint64, hCounts [4]uint64, bucketVals [8]uint64) bool {
		if len(from) > 32 {
			from = from[:32]
		}
		if from == "" {
			from = "f"
		}
		m := &gossip.Message{From: gossip.NodeID(from), Round: round, Traced: true}
		n := min(len(hops), len(seqs), 12)
		for i := 0; i < n; i++ {
			m.Events = append(m.Events, gossip.Event{
				ID:  gossip.EventID{Origin: "o", Seq: seqs[i]},
				Hop: int(hops[i]),
			})
		}
		d := gossip.HealthDigest{
			Node:      gossip.NodeID(hNode[:]),
			Round:     hRound,
			Published: hCounts[0], Delivered: hCounts[1],
			MessagesSent: hCounts[2], MessagesReceived: hCounts[3],
		}
		for i, v := range bucketVals {
			// Scatter the buckets across the index range; zero values
			// stay zero (the canonical sparse form skips them).
			d.DeliverHops.Buckets[i*8] = v
			d.DeliverHops.Count += v
		}
		m.Health = []gossip.HealthDigest{d}
		data, err := c.Encode(m)
		if err != nil {
			return false
		}
		got, err := c.Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCodecRejectsNonCanonicalHealth: the decoder enforces the sparse
// histogram's canonical form (ascending indexes, non-zero values, valid
// range), so any accepted payload re-encodes to identical bytes.
func TestCodecRejectsNonCanonicalHealth(t *testing.T) {
	c := DefaultCodec()
	m := &gossip.Message{From: "a", Health: []gossip.HealthDigest{sampleHealthDigest("h")}}
	data, err := c.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// The histogram tail ends the control fields: ... nb, (idx,val)*,
	// followed only by the empty event section (3 bytes in v5). Locate
	// the first bucket index byte from the end: 3 entries of 9 bytes.
	idxPos := len(data) - 3 - 3*9
	corrupt := func(mutate func([]byte)) []byte {
		d := append([]byte(nil), data...)
		mutate(d)
		return d
	}
	if _, err := c.Decode(corrupt(func(d []byte) { d[idxPos] = 200 })); err == nil {
		t.Error("out-of-range bucket index accepted")
	}
	if _, err := c.Decode(corrupt(func(d []byte) { d[idxPos] = 60 })); err == nil {
		t.Error("descending bucket indexes accepted")
	}
	if _, err := c.Decode(corrupt(func(d []byte) {
		for i := idxPos + 1; i < idxPos+9; i++ {
			d[i] = 0
		}
	})); err == nil {
		t.Error("zero bucket value accepted")
	}
}

// TestCodecDecodeEncodeIdentityOnWire: for traced v4 bytes, the decoded
// message re-encodes to the identical byte string — the stronger wire
// identity the canonical health form buys.
func TestCodecDecodeEncodeIdentityOnWire(t *testing.T) {
	c := DefaultCodec()
	for _, m := range tracedKindSamples() {
		data, err := c.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		re, err := c.Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(data, re) {
			t.Errorf("kind %v: re-encode differs from wire bytes", m.Kind)
		}
	}
}

package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
)

// TestMemCloseCancelsLatentDeliveries is the shutdown regression for
// the latency-injection path: deliveries still waiting on their latency
// timer when Close runs must be cancelled, not fired into a torn-down
// node, and Close must not have to sit out the full latency bound.
func TestMemCloseCancelsLatentDeliveries(t *testing.T) {
	n, err := NewMemNetwork(WithMemLatency(500*time.Millisecond, 600*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	var delivered atomic.Uint64
	b.SetHandler(func(*gossip.Message) { delivered.Add(1) })
	const sends = 16
	for i := 0; i < sends; i++ {
		if err := a.Send("b", &gossip.Message{From: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	n.Close()
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Fatalf("Close waited %v for latency timers instead of cancelling them", d)
	}
	after := delivered.Load()
	if after != 0 {
		t.Fatalf("%d deliveries fired before their 500ms latency elapsed", after)
	}
	// Nothing may fire after Close returns, even once the latency
	// bound passes.
	time.Sleep(700 * time.Millisecond)
	if got := delivered.Load(); got != after {
		t.Fatalf("%d deliveries fired after Close", got-after)
	}
	if st := n.Stats(); st.ClosedDrops != sends {
		t.Fatalf("cancelled deliveries not accounted: %+v", st)
	}
}

func TestMemSendMany(t *testing.T) {
	n, err := NewMemNetwork()
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, _ := n.Endpoint("a")
	var got atomic.Uint64
	targets := make([]gossip.NodeID, 0, 3)
	for i := 0; i < 3; i++ {
		id := gossip.NodeID(fmt.Sprintf("peer-%d", i))
		ep, err := n.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		ep.SetHandler(func(*gossip.Message) { got.Add(1) })
		targets = append(targets, id)
	}
	sent, err := a.SendMany(append(targets, "ghost"), &gossip.Message{From: "a"})
	if err == nil {
		t.Fatal("unknown peer not reported")
	}
	if sent != len(targets) {
		t.Fatalf("sent = %d, want %d", sent, len(targets))
	}
	deadline := time.Now().Add(3 * time.Second)
	for got.Load() < uint64(len(targets)) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() != uint64(len(targets)) {
		t.Fatalf("delivered %d of %d", got.Load(), len(targets))
	}
}

// TestMemConcurrentSendClose drives the fabric under the race detector:
// senders (with latency timers in flight) racing registration and
// Close.
func TestMemConcurrentSendClose(t *testing.T) {
	n, err := NewMemNetwork(WithMemLatency(0, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	b.SetHandler(func(*gossip.Message) {})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					a.Send("b", &gossip.Message{From: "a"})
				}
			}
		}()
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
					n.Endpoint(gossip.NodeID(fmt.Sprintf("ep-%d-%d", i, j)))
				}
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	n.Close()
	close(stop)
	wg.Wait()
}

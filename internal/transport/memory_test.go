package transport

import (
	"sync"
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
)

func TestMemNetworkDelivers(t *testing.T) {
	net, err := NewMemNetwork()
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	if a.LocalID() != "a" {
		t.Fatalf("LocalID = %s", a.LocalID())
	}
	got := make(chan *gossip.Message, 1)
	b.SetHandler(func(m *gossip.Message) { got <- m })
	msg := &gossip.Message{From: "a", Round: 7, Events: []gossip.Event{
		{ID: gossip.EventID{Origin: "a", Seq: 1}, Age: 2, Payload: []byte("x")},
	}}
	if err := a.Send("b", msg); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		// The fabric copies on send (senders reuse per-round scratch
		// messages), so delivery carries an equal message, not the same
		// pointer.
		if m == msg {
			t.Fatal("fabric delivered the sender's message without copying")
		}
		if m.From != msg.From || m.Round != msg.Round || len(m.Events) != 1 ||
			m.Events[0].ID != msg.Events[0].ID || m.Events[0].Age != msg.Events[0].Age ||
			string(m.Events[0].Payload) != "x" {
			t.Fatalf("wrong message delivered: %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delivery timed out")
	}
}

func TestMemNetworkDuplicateEndpoint(t *testing.T) {
	net, _ := NewMemNetwork()
	defer net.Close()
	if _, err := net.Endpoint("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint("a"); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
	if _, err := net.Endpoint(""); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestMemNetworkNoRoute(t *testing.T) {
	net, _ := NewMemNetwork()
	defer net.Close()
	a, _ := net.Endpoint("a")
	if err := a.Send("ghost", &gossip.Message{}); err == nil {
		t.Fatal("send to unknown endpoint succeeded")
	}
	if net.Stats().NoRoute != 1 {
		t.Fatalf("stats %+v", net.Stats())
	}
}

func TestMemNetworkLoss(t *testing.T) {
	net, err := NewMemNetwork(WithMemLoss(1.0), WithMemSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	delivered := make(chan struct{}, 16)
	b.SetHandler(func(*gossip.Message) { delivered <- struct{}{} })
	for i := 0; i < 10; i++ {
		if err := a.Send("b", &gossip.Message{}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-delivered:
		t.Fatal("message delivered at 100% loss")
	case <-time.After(100 * time.Millisecond):
	}
	if got := net.Stats().LossDropped; got != 10 {
		t.Fatalf("LossDropped = %d", got)
	}
}

func TestMemNetworkLatency(t *testing.T) {
	net, err := NewMemNetwork(WithMemLatency(30*time.Millisecond, 30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	got := make(chan time.Time, 1)
	b.SetHandler(func(*gossip.Message) { got <- time.Now() })
	sent := time.Now()
	a.Send("b", &gossip.Message{})
	select {
	case at := <-got:
		if d := at.Sub(sent); d < 25*time.Millisecond {
			t.Fatalf("delivered after %v, want ≥ ~30ms", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delivery timed out")
	}
}

func TestMemNetworkInvalidOptions(t *testing.T) {
	if _, err := NewMemNetwork(WithMemLoss(-0.1)); err == nil {
		t.Fatal("negative loss accepted")
	}
	if _, err := NewMemNetwork(WithMemLatency(5, 1)); err == nil {
		t.Fatal("inverted latency accepted")
	}
}

func TestMemNetworkCloseStopsTraffic(t *testing.T) {
	net, _ := NewMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	var mu sync.Mutex
	count := 0
	b.SetHandler(func(*gossip.Message) { mu.Lock(); count++; mu.Unlock() })
	net.Close()
	if err := a.Send("b", &gossip.Message{}); err == nil {
		t.Fatal("send after close succeeded")
	}
}

func TestMemEndpointCloseDetaches(t *testing.T) {
	net, _ := NewMemNetwork()
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", &gossip.Message{}); err == nil {
		t.Fatal("send to closed endpoint succeeded")
	}
	// Re-registering the id works after detach.
	if _, err := net.Endpoint("b"); err != nil {
		t.Fatal(err)
	}
}

func TestMemNetworkNoHandlerCounts(t *testing.T) {
	net, _ := NewMemNetwork()
	a, _ := net.Endpoint("a")
	if _, err := net.Endpoint("b"); err != nil {
		t.Fatal(err)
	}
	a.Send("b", &gossip.Message{})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if net.Stats().NoHandler == 1 {
			net.Close()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	net.Close()
	t.Fatalf("NoHandler = %d, want 1", net.Stats().NoHandler)
}

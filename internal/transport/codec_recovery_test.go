package transport

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"adaptivegossip/internal/gossip"
)

// kindSamples returns one representative message per wire kind.
func kindSamples() []*gossip.Message {
	return []*gossip.Message{
		sampleMessage(), // KindGossip with digest piggyback
		{
			Kind:  gossip.KindRecoveryRequest,
			From:  "puller",
			Round: 12,
			Request: []gossip.EventID{
				{Origin: "origin-a", Seq: 3},
				{Origin: "origin-b", Seq: 1 << 50},
			},
		},
		{
			Kind:  gossip.KindRecoveryResponse,
			From:  "server",
			Round: 13,
			Events: []gossip.Event{
				{ID: gossip.EventID{Origin: "origin-a", Seq: 3}, Age: 9, Payload: []byte("repaired")},
			},
		},
		{
			Kind:     gossip.KindPing,
			From:     "prober",
			Round:    20,
			ProbeSeq: 41,
			Updates: []gossip.MemberUpdate{
				{Node: "m1", Status: gossip.MemberSuspect, Incarnation: 2},
				{Node: "m2", Status: gossip.MemberAlive, Incarnation: 3},
			},
		},
		{
			Kind:     gossip.KindPingAck,
			From:     "subject",
			Round:    21,
			Probe:    "subject",
			ProbeSeq: 41,
		},
		{
			Kind:     gossip.KindPingReq,
			From:     "prober",
			Round:    22,
			Probe:    "silent-node",
			ProbeSeq: 42,
			Updates: []gossip.MemberUpdate{
				{Node: "m3", Status: gossip.MemberConfirmed, Incarnation: 1 << 40},
			},
		},
	}
}

// TestCodecRoundTripAllKinds round-trips a representative message of
// every kind through Encode/Decode and EncodeChunks.
func TestCodecRoundTripAllKinds(t *testing.T) {
	c := DefaultCodec()
	for _, m := range kindSamples() {
		data, err := c.Encode(m)
		if err != nil {
			t.Fatalf("kind %v: encode: %v", m.Kind, err)
		}
		got, err := c.Decode(data)
		if err != nil {
			t.Fatalf("kind %v: decode: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("kind %v round trip mismatch:\n in: %#v\nout: %#v", m.Kind, m, got)
		}
		chunks, err := c.EncodeChunks(m, DefaultMaxDatagram)
		if err != nil {
			t.Fatalf("kind %v: chunks: %v", m.Kind, err)
		}
		for i, chunk := range chunks {
			dm, err := c.Decode(chunk)
			if err != nil {
				t.Fatalf("kind %v chunk %d: %v", m.Kind, i, err)
			}
			if dm.Kind != m.Kind {
				t.Errorf("kind %v chunk %d decoded as kind %v", m.Kind, i, dm.Kind)
			}
		}
	}
}

// TestCodecChunkingKeepsRecoveryHeadersOnFirstChunk: a split response
// keeps its kind on every chunk but the digest/request lists only on
// the first.
func TestCodecChunkingKeepsRecoveryHeadersOnFirstChunk(t *testing.T) {
	c := DefaultCodec()
	m := &gossip.Message{
		Kind:   gossip.KindRecoveryResponse,
		From:   "server",
		Digest: []gossip.EventID{{Origin: "x", Seq: 1}},
	}
	for i := 0; i < 200; i++ {
		m.Events = append(m.Events, gossip.Event{
			ID:      gossip.EventID{Origin: "origin", Seq: uint64(i)},
			Payload: make([]byte, 64),
		})
	}
	chunks, err := c.EncodeChunks(m, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("expected a split, got %d chunk(s)", len(chunks))
	}
	events := 0
	for i, chunk := range chunks {
		dm, err := c.Decode(chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if dm.Kind != gossip.KindRecoveryResponse {
			t.Errorf("chunk %d lost the kind: %v", i, dm.Kind)
		}
		if i == 0 && len(dm.Digest) != 1 {
			t.Error("first chunk lost the digest")
		}
		if i > 0 && len(dm.Digest) != 0 {
			t.Errorf("chunk %d duplicated the digest", i)
		}
		events += len(dm.Events)
	}
	if events != len(m.Events) {
		t.Errorf("chunks carry %d events, want %d", events, len(m.Events))
	}
}

// TestCodecChunkingTrimsDigestForSmallDatagrams: with an MTU-sized
// bound, a full recovery digest must not wedge the send path — the
// advisory digest is trimmed until events fit.
func TestCodecChunkingTrimsDigestForSmallDatagrams(t *testing.T) {
	c := DefaultCodec()
	m := &gossip.Message{From: "sender"}
	for i := 0; i < 256; i++ { // ~4KB of digest alone
		m.Digest = append(m.Digest, gossip.EventID{Origin: "some-origin", Seq: uint64(i)})
	}
	for i := 0; i < 50; i++ {
		m.Events = append(m.Events, gossip.Event{
			ID:      gossip.EventID{Origin: "origin", Seq: uint64(i)},
			Payload: make([]byte, 100),
		})
	}
	const maxSize = 1400
	chunks, err := c.EncodeChunks(m, maxSize)
	if err != nil {
		t.Fatalf("EncodeChunks: %v", err)
	}
	events, digest := 0, 0
	for i, chunk := range chunks {
		if len(chunk) > maxSize {
			t.Fatalf("chunk %d is %d bytes > %d", i, len(chunk), maxSize)
		}
		dm, err := c.Decode(chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		events += len(dm.Events)
		digest += len(dm.Digest)
	}
	if events != len(m.Events) {
		t.Errorf("chunks carry %d events, want %d", events, len(m.Events))
	}
	if digest == 0 || digest >= 256 {
		t.Errorf("digest should be trimmed but present, got %d of 256 ids", digest)
	}
}

// TestCodecChunkingRejectsOversizedHeader: a header that cannot fit
// even after digest trimming errors instead of emitting an oversized
// datagram.
func TestCodecChunkingRejectsOversizedHeader(t *testing.T) {
	c := DefaultCodec()
	m := &gossip.Message{Kind: gossip.KindRecoveryRequest, From: "puller"}
	for i := 0; i < 200; i++ { // requests are not trimmable
		m.Request = append(m.Request, gossip.EventID{Origin: "some-long-origin-name", Seq: uint64(i)})
	}
	if _, err := c.EncodeChunks(m, 600); err == nil {
		t.Fatal("oversized untrimmable header accepted")
	}
}

// TestCodecRejectsUnknownKind: kinds beyond the defined range fail
// encode and decode.
func TestCodecRejectsUnknownKind(t *testing.T) {
	c := DefaultCodec()
	if _, err := c.Encode(&gossip.Message{From: "a", Kind: 200}); err == nil {
		t.Error("unknown kind accepted by Encode")
	}
	data, err := c.Encode(&gossip.Message{From: "a"})
	if err != nil {
		t.Fatal(err)
	}
	data[4+1] = 200 // kind byte follows magic+version (4) and flags (1)
	if _, err := c.Decode(data); err == nil {
		t.Error("unknown kind accepted by Decode")
	}
}

// TestCodecQuickRoundTripAllKinds property-tests bounded random
// messages across every kind, digest and request lists included.
func TestCodecQuickRoundTripAllKinds(t *testing.T) {
	c := DefaultCodec()
	f := func(kindSel uint8, from string, round uint64,
		digestOrigins [][6]byte, digestSeqs []uint64,
		reqOrigins [][6]byte, reqSeqs []uint64,
		payloads [][]byte) bool {
		if len(from) > 32 {
			from = from[:32]
		}
		if from == "" {
			from = "f"
		}
		m := &gossip.Message{
			Kind:  gossip.MessageKind(kindSel % 3),
			From:  gossip.NodeID(from),
			Round: round,
		}
		mkIDs := func(origins [][6]byte, seqs []uint64) []gossip.EventID {
			n := min(len(origins), len(seqs), 12)
			ids := make([]gossip.EventID, 0, n)
			for i := 0; i < n; i++ {
				ids = append(ids, gossip.EventID{Origin: gossip.NodeID(origins[i][:]), Seq: seqs[i]})
			}
			return ids
		}
		if ids := mkIDs(digestOrigins, digestSeqs); len(ids) > 0 {
			m.Digest = ids
		}
		if ids := mkIDs(reqOrigins, reqSeqs); len(ids) > 0 {
			m.Request = ids
		}
		for i, pl := range payloads {
			if i >= 8 {
				break
			}
			if len(pl) > 512 {
				pl = pl[:512]
			}
			if len(pl) == 0 {
				pl = nil // the decoder leaves empty payloads nil
			}
			m.Events = append(m.Events, gossip.Event{
				ID:      gossip.EventID{Origin: "o", Seq: uint64(i)},
				Payload: pl,
			})
		}
		data, err := c.Encode(m)
		if err != nil {
			return false
		}
		got, err := c.Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// FuzzCodecDecode seeds the fuzzer with valid encodings of every kind
// plus malformed variants; the decoder must never panic and a
// successful decode must re-encode.
func FuzzCodecDecode(f *testing.F) {
	c := DefaultCodec()
	for _, m := range kindSamples() {
		data, err := c.Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Malformed seeds: truncated, kind-corrupted, flag-corrupted,
		// trailing garbage.
		f.Add(data[:len(data)/2])
		bad := append([]byte(nil), data...)
		bad[5] = 0xFF // kind byte
		f.Add(bad)
		flg := append([]byte(nil), data...)
		flg[4] ^= 0xFF // flags byte
		f.Add(flg)
		f.Add(append(append([]byte(nil), data...), 0xAA))
	}
	// Traced (wire v4) seeds: per-event hop counters and health digests
	// on the wire, plus corrupted variants aimed at the new sections.
	for _, m := range tracedKindSamples() {
		data, err := c.Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)-1]) // truncated inside the health tail
		tail := append([]byte(nil), data...)
		tail[len(tail)-9] ^= 0xFF // corrupt a histogram bucket entry
		f.Add(tail)
	}
	// Previous-version (v4 and v3) seeds: must still decode.
	{
		m := &gossip.Message{From: "v3-sender", Round: 7,
			Events: []gossip.Event{{ID: gossip.EventID{Origin: "o", Seq: 1}, Age: 2, Payload: []byte("p")}}}
		c4 := c
		c4.WireVersion = wireV4
		data, err := c4.Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), data...))
		v3 := data[:len(data)-2] // drop the (empty) health section...
		v3[3] = wireV3           // ...and patch the version byte
		f.Add(v3)
	}
	// Compressed (v5+flate) seeds: columnar sections compressed on the
	// wire, plus variants corrupting the compression envelope and the
	// deflate stream itself.
	{
		cz := c
		cz.Compression = NewFlateCompressor()
		for _, m := range []*gossip.Message{sampleMessage(), tracedKindSamples()[0]} {
			data, err := cz.Encode(m)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(append([]byte(nil), data...))
			f.Add(append([]byte(nil), data[:len(data)-4]...)) // truncated deflate stream
			bad := append([]byte(nil), data...)
			bad[len(bad)-1] ^= 0xFF // corrupt the deflate stream tail
			f.Add(bad)
			noflag := append([]byte(nil), data...)
			noflag[4] &^= flagCompress // compressed body, flag cleared
			f.Add(noflag)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("AGB"))
	f.Add([]byte{'A', 'G', 'B', 1}) // old version: must be rejected
	// Spoofed digest count (0xFFFF) in a tiny datagram: the decoder
	// must fail on truncation without committing large allocations.
	f.Add([]byte{'A', 'G', 'B', codecVersion, 0, 0, 0, 1, 'x', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF})
	// Spoofed health count in a minimal v5 message (the health count is
	// the 2 bytes before the 3-byte empty event section).
	if data, err := c.Encode(&gossip.Message{From: "x"}); err == nil {
		spoof := append([]byte(nil), data[:len(data)-5]...)
		spoof = append(spoof, 0xFF, 0xFF)
		f.Add(spoof)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := c.Decode(data)
		if err != nil {
			return
		}
		if _, err := c.Encode(m); err != nil {
			t.Errorf("decoded message fails re-encode: %v", err)
		}
	})
}

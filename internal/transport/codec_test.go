package transport

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"adaptivegossip/internal/gossip"
)

func sampleMessage() *gossip.Message {
	return &gossip.Message{
		From:         "node-1",
		Group:        "topic-a",
		Round:        42,
		Adaptive:     true,
		SamplePeriod: 7,
		MinBuff:      90,
		Traced:       true,
		KMin: []gossip.BuffCap{
			{Node: "node-2", Cap: 45},
			{Node: "node-3", Cap: 60},
		},
		Events: []gossip.Event{
			{ID: gossip.EventID{Origin: "node-2", Seq: 1}, Age: 3, Hop: 2, Payload: []byte("hello")},
			{ID: gossip.EventID{Origin: "node-1", Seq: 9}, Age: 0, Hop: 0, Payload: nil},
			{ID: gossip.EventID{Origin: "node-4", Seq: 1 << 40}, Age: 11, Hop: 7, Payload: bytes.Repeat([]byte{0xAB}, 300)},
		},
		Subs:   []gossip.NodeID{"node-5"},
		Unsubs: []gossip.NodeID{"node-6", "node-7"},
		Digest: []gossip.EventID{
			{Origin: "node-2", Seq: 1},
			{Origin: "node-9", Seq: 1 << 33},
		},
		Request: []gossip.EventID{{Origin: "node-8", Seq: 17}},
		Health:  []gossip.HealthDigest{sampleHealthDigest("node-2"), sampleHealthDigest("node-3")},
	}
}

func sampleHealthDigest(node gossip.NodeID) gossip.HealthDigest {
	d := gossip.HealthDigest{
		Node:             node,
		Round:            99,
		WallMillis:       1_700_000_000_123,
		Published:        12,
		Delivered:        340,
		DroppedCapacity:  5,
		DroppedExpired:   2,
		MessagesSent:     77,
		MessagesReceived: 81,
		BytesSent:        1 << 20,
		BytesReceived:    1<<20 + 17,
		BufferLen:        60,
		BufferCap:        120,
	}
	d.DeliverHops.Count = 340
	d.DeliverHops.Sum = 900
	d.DeliverHops.Buckets[0] = 12
	d.DeliverHops.Buckets[2] = 200
	d.DeliverHops.Buckets[3] = 128
	return d
}

func msgEqual(a, b *gossip.Message) bool {
	if a.From != b.From || a.Group != b.Group || a.Round != b.Round || a.Adaptive != b.Adaptive ||
		a.Traced != b.Traced {
		return false
	}
	if a.Adaptive && (a.SamplePeriod != b.SamplePeriod || a.MinBuff != b.MinBuff) {
		return false
	}
	if len(a.KMin) != len(b.KMin) || len(a.Events) != len(b.Events) ||
		len(a.Subs) != len(b.Subs) || len(a.Unsubs) != len(b.Unsubs) ||
		len(a.Health) != len(b.Health) {
		return false
	}
	for i := range a.KMin {
		if a.KMin[i] != b.KMin[i] {
			return false
		}
	}
	for i := range a.Events {
		if a.Events[i].ID != b.Events[i].ID || a.Events[i].Age != b.Events[i].Age ||
			!bytes.Equal(a.Events[i].Payload, b.Events[i].Payload) {
			return false
		}
		if a.Traced && a.Events[i].Hop != b.Events[i].Hop {
			return false
		}
	}
	for i := range a.Health {
		// HealthDigest is comparable (the histogram is a fixed array).
		if a.Health[i] != b.Health[i] {
			return false
		}
	}
	for i := range a.Subs {
		if a.Subs[i] != b.Subs[i] {
			return false
		}
	}
	for i := range a.Unsubs {
		if a.Unsubs[i] != b.Unsubs[i] {
			return false
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	c := DefaultCodec()
	m := sampleMessage()
	data, err := c.Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := c.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !msgEqual(m, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
	}
}

func TestCodecRoundTripMinimal(t *testing.T) {
	c := DefaultCodec()
	m := &gossip.Message{From: "x"}
	data, err := c.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !msgEqual(m, got) {
		t.Fatalf("minimal round trip mismatch: %+v", got)
	}
}

func TestCodecEncodedSizeIsExact(t *testing.T) {
	c := DefaultCodec()
	for _, m := range []*gossip.Message{sampleMessage(), {From: "y", Adaptive: true, MinBuff: -1}} {
		data, err := c.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.encodedSize(m); got != len(data) {
			t.Fatalf("encodedSize = %d, actual %d", got, len(data))
		}
	}
}

func TestCodecNegativeMinBuffSurvives(t *testing.T) {
	c := DefaultCodec()
	m := &gossip.Message{From: "a", Adaptive: true, MinBuff: -5}
	data, _ := c.Encode(m)
	got, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.MinBuff != -5 {
		t.Fatalf("MinBuff = %d, want -5", got.MinBuff)
	}
}

func TestCodecRejectsBadMagicAndVersion(t *testing.T) {
	c := DefaultCodec()
	data, _ := c.Encode(sampleMessage())
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := c.Decode(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), data...)
	bad[3] = 99
	if _, err := c.Decode(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := c.Decode(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCodecRejectsTruncationsEverywhere(t *testing.T) {
	c := DefaultCodec()
	data, _ := c.Encode(sampleMessage())
	for cut := 0; cut < len(data); cut++ {
		if _, err := c.Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(data))
		}
	}
}

func TestCodecRejectsTrailingGarbage(t *testing.T) {
	c := DefaultCodec()
	data, _ := c.Encode(sampleMessage())
	if _, err := c.Decode(append(data, 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestCodecLimits(t *testing.T) {
	c := Codec{MaxPayload: 8, MaxIDLen: 4, MaxEvents: 2}
	// Payload too large for encode.
	m := &gossip.Message{From: "a", Events: []gossip.Event{
		{ID: gossip.EventID{Origin: "b", Seq: 1}, Payload: bytes.Repeat([]byte{1}, 9)},
	}}
	if _, err := c.Encode(m); err == nil {
		t.Fatal("oversized payload encoded")
	}
	// ID too long.
	m = &gossip.Message{From: "abcdef"}
	if _, err := c.Encode(m); err == nil {
		t.Fatal("oversized id encoded")
	}
	// Too many events on decode: craft with permissive encoder, decode
	// with strict limits.
	big := &gossip.Message{From: "a", Events: []gossip.Event{
		{ID: gossip.EventID{Origin: "b", Seq: 1}},
		{ID: gossip.EventID{Origin: "b", Seq: 2}},
		{ID: gossip.EventID{Origin: "b", Seq: 3}},
	}}
	data, err := DefaultCodec().Encode(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(data); err == nil {
		t.Fatal("too many events accepted on decode")
	}
}

func TestCodecFuzzDecodeNeverPanics(t *testing.T) {
	c := DefaultCodec()
	rng := rand.New(rand.NewSource(99))
	valid, _ := c.Encode(sampleMessage())
	for i := 0; i < 3000; i++ {
		data := append([]byte(nil), valid...)
		// Flip a few random bytes.
		for k := 0; k < 1+rng.Intn(8); k++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		c.Decode(data) // must not panic; errors are fine
	}
	for i := 0; i < 2000; i++ {
		data := make([]byte, rng.Intn(200))
		rng.Read(data)
		c.Decode(data)
	}
}

// TestCodecQuickRoundTrip property-tests arbitrary (bounded) messages.
func TestCodecQuickRoundTrip(t *testing.T) {
	c := DefaultCodec()
	f := func(from string, round uint64, adaptive bool, sp uint64, mb int32,
		origins [][8]byte, seqs []uint64, ages []uint8, payloads [][]byte) bool {
		if len(from) > 64 {
			from = from[:64]
		}
		if from == "" {
			from = "f"
		}
		m := &gossip.Message{From: gossip.NodeID(from), Round: round,
			Adaptive: adaptive, SamplePeriod: sp, MinBuff: int(mb)}
		n := len(origins)
		if len(seqs) < n {
			n = len(seqs)
		}
		if len(ages) < n {
			n = len(ages)
		}
		if len(payloads) < n {
			n = len(payloads)
		}
		if n > 16 {
			n = 16
		}
		for i := 0; i < n; i++ {
			pl := payloads[i]
			if len(pl) > 1024 {
				pl = pl[:1024]
			}
			m.Events = append(m.Events, gossip.Event{
				ID:      gossip.EventID{Origin: gossip.NodeID(origins[i][:]), Seq: seqs[i]},
				Age:     int(ages[i]),
				Payload: pl,
			})
		}
		data, err := c.Encode(m)
		if err != nil {
			return false
		}
		got, err := c.Decode(data)
		if err != nil {
			return false
		}
		if !adaptive {
			// Non-adaptive headers do not carry sp/mb; normalize.
			m.SamplePeriod, m.MinBuff = 0, 0
		}
		return msgEqual(m, got)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeChunksSplitsAndEachChunkDecodes(t *testing.T) {
	c := DefaultCodec()
	m := sampleMessage()
	// Add enough events to exceed a small datagram bound.
	for i := 0; i < 100; i++ {
		m.Events = append(m.Events, gossip.Event{
			ID:      gossip.EventID{Origin: "bulk", Seq: uint64(i)},
			Age:     2,
			Payload: bytes.Repeat([]byte{byte(i)}, 100),
		})
	}
	const maxSize = 1024
	chunks, err := c.EncodeChunks(m, maxSize)
	if err != nil {
		t.Fatalf("EncodeChunks: %v", err)
	}
	if len(chunks) < 2 {
		t.Fatalf("expected a split, got %d chunk(s)", len(chunks))
	}
	var events int
	for i, chunk := range chunks {
		if len(chunk) > maxSize {
			t.Fatalf("chunk %d is %d bytes > %d", i, len(chunk), maxSize)
		}
		dm, err := c.Decode(chunk)
		if err != nil {
			t.Fatalf("chunk %d decode: %v", i, err)
		}
		if dm.From != m.From || dm.Adaptive != m.Adaptive || dm.MinBuff != m.MinBuff {
			t.Fatalf("chunk %d header mismatch", i)
		}
		if i == 0 {
			if len(dm.KMin) == 0 || len(dm.Subs) == 0 {
				t.Fatal("first chunk lost control headers")
			}
		} else if len(dm.KMin) != 0 || len(dm.Subs) != 0 {
			t.Fatalf("chunk %d duplicated control headers", i)
		}
		events += len(dm.Events)
	}
	if events != len(m.Events) {
		t.Fatalf("chunks carry %d events, want %d", events, len(m.Events))
	}
}

func TestEncodeChunksSingleWhenSmall(t *testing.T) {
	c := DefaultCodec()
	chunks, err := c.EncodeChunks(sampleMessage(), DefaultMaxDatagram)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 {
		t.Fatalf("small message split into %d chunks", len(chunks))
	}
}

func TestEncodeChunksRejectsUnsplittableEvent(t *testing.T) {
	c := DefaultCodec()
	m := &gossip.Message{From: "a", Events: []gossip.Event{
		{ID: gossip.EventID{Origin: "b", Seq: 1}, Payload: bytes.Repeat([]byte{1}, 4096)},
	}}
	if _, err := c.EncodeChunks(m, 1024); err == nil {
		t.Fatal("unsplittable event accepted")
	}
}

func TestCodecReflectDeepEqualGuard(t *testing.T) {
	// msgEqual must agree with reflect.DeepEqual on the sample message
	// round trip (guards against msgEqual drifting from the struct).
	c := DefaultCodec()
	m := sampleMessage()
	data, _ := c.Encode(m)
	got, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("DeepEqual mismatch:\n in: %#v\nout: %#v", m, got)
	}
}

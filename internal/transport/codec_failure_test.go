package transport

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"adaptivegossip/internal/gossip"
)

// TestCodecRoundTripFailureFields: the v3 probe fields survive a full
// round trip on every kind that carries them.
func TestCodecRoundTripFailureFields(t *testing.T) {
	c := DefaultCodec()
	m := &gossip.Message{
		Kind:     gossip.KindPingReq,
		From:     "requester",
		Round:    7,
		Probe:    "target-node",
		ProbeSeq: 1 << 50,
		Updates: []gossip.MemberUpdate{
			{Node: "a", Status: gossip.MemberAlive, Incarnation: 0},
			{Node: "b", Status: gossip.MemberSuspect, Incarnation: 9},
			{Node: "c", Status: gossip.MemberConfirmed, Incarnation: 1 << 60},
		},
	}
	data, err := c.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", m, got)
	}
}

// TestCodecUpdatesOnGossip: rumors piggyback on regular gossip, the
// detector's main dissemination channel.
func TestCodecUpdatesOnGossip(t *testing.T) {
	c := DefaultCodec()
	m := sampleMessage()
	m.Updates = []gossip.MemberUpdate{{Node: "x", Status: gossip.MemberSuspect, Incarnation: 4}}
	data, err := c.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("gossip+updates round trip mismatch:\n in: %#v\nout: %#v", m, got)
	}
}

// TestCodecRejectsBadMemberStatus: statuses beyond the defined range
// fail encode and decode.
func TestCodecRejectsBadMemberStatus(t *testing.T) {
	c := DefaultCodec()
	m := &gossip.Message{
		From:    "a",
		Updates: []gossip.MemberUpdate{{Node: "b", Status: 99}},
	}
	if _, err := c.Encode(m); err == nil {
		t.Error("unknown member status accepted by Encode")
	}
	good := &gossip.Message{
		From:    "a",
		Updates: []gossip.MemberUpdate{{Node: "b", Status: gossip.MemberAlive, Incarnation: 1}},
	}
	data, err := c.Encode(good)
	if err != nil {
		t.Fatal(err)
	}
	// The status byte sits right after the update's node string; corrupt
	// it and the decoder must reject.
	found := false
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] = 0x7F
		if m2, err := c.Decode(mut); err == nil && len(m2.Updates) > 0 && m2.Updates[0].Status > gossip.MemberConfirmed {
			t.Fatalf("corrupt status decoded as %d", m2.Updates[0].Status)
		} else if err != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("no corruption was ever rejected (test is vacuous)")
	}
}

// TestCodecRejectsOversizedProbeID: probe identifiers obey MaxIDLen.
func TestCodecRejectsOversizedProbeID(t *testing.T) {
	c := Codec{MaxIDLen: 4}
	if _, err := c.Encode(&gossip.Message{From: "a", Probe: "too-long"}); err == nil {
		t.Error("oversized probe id accepted")
	}
	if _, err := c.Encode(&gossip.Message{From: "a", Updates: []gossip.MemberUpdate{{Node: "too-long"}}}); err == nil {
		t.Error("oversized update id accepted")
	}
}

// TestCodecQuickRoundTripFailureKinds property-tests the probe kinds
// with bounded random probe fields and update lists.
func TestCodecQuickRoundTripFailureKinds(t *testing.T) {
	c := DefaultCodec()
	f := func(kindSel uint8, from, probe string, seq uint64,
		nodes [][5]byte, statuses []uint8, incs []uint64) bool {
		if len(from) > 32 {
			from = from[:32]
		}
		if from == "" {
			from = "f"
		}
		if len(probe) > 32 {
			probe = probe[:32]
		}
		m := &gossip.Message{
			Kind:     gossip.KindPing + gossip.MessageKind(kindSel%3),
			From:     gossip.NodeID(from),
			Probe:    gossip.NodeID(probe),
			ProbeSeq: seq,
		}
		n := min(len(nodes), len(statuses), len(incs), 10)
		for i := 0; i < n; i++ {
			m.Updates = append(m.Updates, gossip.MemberUpdate{
				Node:        gossip.NodeID(nodes[i][:]),
				Status:      gossip.MemberStatus(statuses[i] % 3),
				Incarnation: incs[i],
			})
		}
		data, err := c.Encode(m)
		if err != nil {
			return false
		}
		got, err := c.Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCodecChunkingKeepsKindForProbeTraffic: probe messages are tiny
// and never split, but a chunked gossip message carrying updates keeps
// them on the first chunk only.
func TestCodecChunkingKeepsUpdatesOnFirstChunk(t *testing.T) {
	c := DefaultCodec()
	m := sampleMessage()
	m.Updates = []gossip.MemberUpdate{{Node: "u", Status: gossip.MemberSuspect, Incarnation: 8}}
	for i := 0; i < 200; i++ {
		m.Events = append(m.Events, gossip.Event{
			ID:      gossip.EventID{Origin: "bulk", Seq: uint64(i)},
			Payload: make([]byte, 64),
		})
	}
	chunks, err := c.EncodeChunks(m, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("expected a split, got %d chunk(s)", len(chunks))
	}
	for i, chunk := range chunks {
		dm, err := c.Decode(chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if i == 0 && len(dm.Updates) != 1 {
			t.Error("first chunk lost the updates")
		}
		if i > 0 && len(dm.Updates) != 0 {
			t.Errorf("chunk %d duplicated the updates", i)
		}
	}
}

package transport

import (
	"fmt"
	"testing"

	"adaptivegossip/internal/gossip"
)

// benchMessage is a loaded round message: 30 events of 200 bytes, the
// regime of the paper's Figure 4 experiments (~6.5 KB on the wire).
func benchMessage() *gossip.Message {
	msg := &gossip.Message{From: "bench-sender", Round: 7}
	for i := 0; i < 30; i++ {
		msg.Events = append(msg.Events, gossip.Event{
			ID:      gossip.EventID{Origin: "bench-sender", Seq: uint64(i)},
			Age:     i % 10,
			Payload: make([]byte, 200),
		})
	}
	return msg
}

// benchFanoutSetup binds one sender and fanout sink sockets. The sinks
// are never started, so the measurement isolates the sender's
// encode+write work.
func benchFanoutSetup(tb testing.TB, fanout int) (*UDPTransport, []gossip.NodeID) {
	tb.Helper()
	sender, err := NewUDPTransport("bench-sender", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { sender.Close() })
	targets := make([]gossip.NodeID, 0, fanout)
	for i := 0; i < fanout; i++ {
		id := gossip.NodeID(fmt.Sprintf("sink-%d", i))
		sink, err := NewUDPTransport(id, "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() { sink.Close() })
		if err := sender.Register(id, sink.Addr().String()); err != nil {
			tb.Fatal(err)
		}
		targets = append(targets, id)
	}
	return sender, targets
}

// BenchmarkUDPFanout compares one gossip round over the wire at fanout
// 8: the encode-once SendMany path against the per-peer-encode Send
// baseline. One op is one full round (all targets).
func BenchmarkUDPFanout(b *testing.B) {
	const fanout = 8
	msg := benchMessage()
	b.Run("encode-once", func(b *testing.B) {
		sender, targets := benchFanoutSetup(b, fanout)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sender.SendMany(targets, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-peer", func(b *testing.B) {
		sender, targets := benchFanoutSetup(b, fanout)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, to := range targets {
				if err := sender.Send(to, msg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkCodecEncodeAppend compares the append-into-caller-buffer
// encode path against the allocating Encode.
func BenchmarkCodecEncodeAppend(b *testing.B) {
	c := DefaultCodec()
	msg := benchMessage()
	b.Run("append", func(b *testing.B) {
		buf := make([]byte, 0, c.EncodedSize(msg))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := c.AppendEncode(buf[:0], msg)
			if err != nil {
				b.Fatal(err)
			}
			buf = out[:0]
		}
	})
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Encode(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCodecEncodeV5 pins the columnar encode path for the
// benchgate baseline: ns/op and allocs/op through AppendEncode on the
// Figure-4 regime message, with the wire density as bytes/event.
func BenchmarkCodecEncodeV5(b *testing.B) {
	c := DefaultCodec()
	msg := benchMessage()
	data, err := c.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, c.EncodedSize(msg))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := c.AppendEncode(buf[:0], msg)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
	b.ReportMetric(float64(len(data))/float64(len(msg.Events)), "bytes/event")
}

// BenchmarkCodecDecodeV5 pins the columnar decode path for the
// benchgate baseline.
func BenchmarkCodecDecodeV5(b *testing.B) {
	c := DefaultCodec()
	msg := benchMessage()
	data, err := c.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data))/float64(len(msg.Events)), "bytes/event")
}

// TestEncodeOnceFanoutAllocs pins the tentpole's acceptance bound: at
// fanout 8 the encode-once path does at least 4× fewer allocations per
// round than the per-peer-encode baseline, and its allocation count
// does not grow with fanout.
func TestEncodeOnceFanoutAllocs(t *testing.T) {
	const fanout = 8
	msg := benchMessage()
	sender, targets := benchFanoutSetup(t, fanout)

	encodeOnce := testing.AllocsPerRun(100, func() {
		if _, err := sender.SendMany(targets, msg); err != nil {
			t.Fatal(err)
		}
	})
	perPeer := testing.AllocsPerRun(100, func() {
		for _, to := range targets {
			if err := sender.Send(to, msg); err != nil {
				t.Fatal(err)
			}
		}
	})
	t.Logf("allocs/round at fanout %d: encode-once %.1f, per-peer %.1f", fanout, encodeOnce, perPeer)
	if perPeer < float64(fanout) {
		t.Fatalf("per-peer baseline allocates %.1f/round — expected at least one encode buffer per target", perPeer)
	}
	if den := max(encodeOnce, 1); perPeer/den < 4 {
		t.Fatalf("encode-once path is only %.1fx cheaper (encode-once %.1f vs per-peer %.1f allocs/round), want >= 4x",
			perPeer/den, encodeOnce, perPeer)
	}
}

package transport

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/observe"
)

// DefaultMaxDatagram bounds UDP datagram sizes. Gossip messages above
// it are split into standalone chunks (see Codec.EncodeChunks).
const DefaultMaxDatagram = 60 * 1024

// DefaultRecvQueue is the depth of the queue between the socket read
// loop and the handler dispatch goroutine. Overflow is dropped and
// counted in RecvQueueDrops — gossip tolerates loss by design, and a
// slow handler must never stall the socket into kernel-buffer drops
// that no counter sees.
const DefaultRecvQueue = 1024

// Read-error backoff bounds: a persistent non-ErrClosed read failure
// backs off exponentially between these instead of spinning the CPU.
const (
	initialReadBackoff = time.Millisecond
	maxReadBackoff     = 100 * time.Millisecond
)

// UDPStats counts UDP transport activity.
type UDPStats struct {
	Sent      uint64
	SentBytes uint64
	// SplitChunks counts continuation fragments actually written to the
	// wire: a message sent in n datagrams adds n-1, single-datagram
	// sends add nothing, and fragments dropped by injected loss are not
	// counted.
	SplitChunks  uint64
	Received     uint64
	RecvBytes    uint64
	DecodeErrors uint64
	NoHandler    uint64
	SendErrors   uint64
	LossDropped  uint64 // datagrams dropped by injected send loss
	// ReadErrors counts transient socket read failures (the read loop
	// backs off and retries; net.ErrClosed terminates it instead).
	ReadErrors uint64
	// RecvQueueDrops counts inbound datagrams discarded undelivered:
	// either the dispatch queue was full (the consumer fell behind the
	// wire) or they were still queued when Close ran.
	RecvQueueDrops uint64
	// PreCompressionBytes and PostCompressionBytes measure the event
	// sections of encoded messages before and after the configured
	// payload compression (wire v5). Equal counters mean compression is
	// off or never paid for itself.
	PreCompressionBytes  uint64
	PostCompressionBytes uint64
}

// udpConn is the socket surface the transport uses, satisfied by
// *net.UDPConn; tests inject failing implementations.
type udpConn interface {
	ReadFromUDP(b []byte) (int, *net.UDPAddr, error)
	WriteToUDP(b []byte, addr *net.UDPAddr) (int, error)
	LocalAddr() net.Addr
	Close() error
}

// recvPacket is one queued datagram: a pooled buffer and the number of
// bytes the read filled in.
type recvPacket struct {
	buf *[]byte
	n   int
}

// sendBufPool recycles encode buffers across sends: with AppendEncode
// the steady-state hot path allocates nothing once the pooled buffers
// have grown to the working message size.
var sendBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 2048)
		return &b
	},
}

// recvBufPool recycles datagram read buffers between the read loop and
// the dispatch goroutine.
var recvBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 1<<16)
		return &b
	},
}

// UDPTransport carries gossip messages as UDP datagrams — the role the
// Ethernet LAN plays in the paper's prototype experiments. Peers are
// registered explicitly in an address book (the examples and cmd tools
// wire this from configuration).
//
// Receives are asynchronous: the read loop only moves datagrams into a
// bounded dispatch queue, a separate goroutine decodes and runs the
// handler, and overflow is counted in RecvQueueDrops rather than
// stalling the socket.
type UDPTransport struct {
	id    gossip.NodeID
	conn  udpConn
	codec Codec
	maxDg int

	mu      sync.RWMutex
	book    map[gossip.NodeID]*net.UDPAddr
	handler Handler

	lossMu   sync.Mutex
	lossRate float64
	lossRNG  *rand.Rand

	// links, when set, receives per-peer wire telemetry (bytes and
	// messages by peer, fan-out sends, drops). An atomic pointer so the
	// table can be installed after Start without racing the loops.
	links atomic.Pointer[observe.PeerTable]

	recvQ   chan recvPacket
	started atomic.Bool
	closed  atomic.Bool
	stopCh  chan struct{}
	wg      sync.WaitGroup

	sent           atomic.Uint64
	sentBytes      atomic.Uint64
	splitChunks    atomic.Uint64
	received       atomic.Uint64
	recvBytes      atomic.Uint64
	decodeErrors   atomic.Uint64
	noHandler      atomic.Uint64
	sendErrors     atomic.Uint64
	lossDropped    atomic.Uint64
	readErrors     atomic.Uint64
	recvQueueDrops atomic.Uint64
}

// UDPOption configures a UDPTransport.
type UDPOption func(*UDPTransport) error

// WithUDPCodec overrides the wire codec limits.
func WithUDPCodec(c Codec) UDPOption {
	return func(t *UDPTransport) error {
		t.codec = c
		return nil
	}
}

// WithUDPSendLoss drops outgoing datagrams with probability p — iid
// loss injection for demos and tests on loopback, where the real
// network never drops. Dropped datagrams are counted in LossDropped.
func WithUDPSendLoss(p float64, seed uint64) UDPOption {
	return func(t *UDPTransport) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("transport: loss probability %v out of [0,1]", p)
		}
		t.lossRate = p
		t.lossRNG = rand.New(rand.NewPCG(seed, seed^0x10551055))
		return nil
	}
}

// WithUDPPeerTable installs the per-peer telemetry table at
// construction; see SetLinks.
func WithUDPPeerTable(links *observe.PeerTable) UDPOption {
	return func(t *UDPTransport) error {
		t.links.Store(links)
		return nil
	}
}

// WithMaxDatagram overrides the datagram split threshold.
func WithMaxDatagram(n int) UDPOption {
	return func(t *UDPTransport) error {
		if n < 512 {
			return fmt.Errorf("transport: max datagram %d too small", n)
		}
		t.maxDg = n
		return nil
	}
}

// WithUDPCompression installs a payload compressor on the wire codec:
// every encoded message's event section is run through it (stored
// uncompressed when compression would not shrink it). nil disables
// compression. Decoding is unaffected — compressed frames from peers
// are accepted either way.
func WithUDPCompression(comp Compressor) UDPOption {
	return func(t *UDPTransport) error {
		t.codec.Compression = comp
		return nil
	}
}

// WithUDPRecvQueue overrides the dispatch queue depth
// (DefaultRecvQueue). Deeper queues absorb longer handler stalls;
// overflow is dropped and counted either way.
func WithUDPRecvQueue(depth int) UDPOption {
	return func(t *UDPTransport) error {
		if depth < 1 {
			return fmt.Errorf("transport: recv queue depth %d must be at least 1", depth)
		}
		t.recvQ = make(chan recvPacket, depth)
		return nil
	}
}

// NewUDPTransport binds a UDP socket at bind (e.g. "127.0.0.1:0").
// Call SetHandler then Start before expecting traffic.
func NewUDPTransport(id gossip.NodeID, bind string, opts ...UDPOption) (*UDPTransport, error) {
	if id == "" {
		return nil, fmt.Errorf("transport: node id must not be empty")
	}
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", bind, err)
	}
	return newUDPTransport(id, conn, opts...)
}

// newUDPTransport assembles a transport around an existing socket;
// tests inject failing conns here.
func newUDPTransport(id gossip.NodeID, conn udpConn, opts ...UDPOption) (*UDPTransport, error) {
	t := &UDPTransport{
		id:     id,
		conn:   conn,
		codec:  DefaultCodec(),
		maxDg:  DefaultMaxDatagram,
		book:   make(map[gossip.NodeID]*net.UDPAddr),
		stopCh: make(chan struct{}),
	}
	for _, opt := range opts {
		if err := opt(t); err != nil {
			conn.Close()
			return nil, err
		}
	}
	if t.recvQ == nil {
		t.recvQ = make(chan recvPacket, DefaultRecvQueue)
	}
	// Give the codec a stats sink (unless an override codec brought its
	// own) so the pre-/post-compression byte counters show up in Stats.
	if t.codec.Stats == nil {
		t.codec.Stats = &CodecStats{}
	}
	return t, nil
}

// LocalID returns the transport's node id.
func (t *UDPTransport) LocalID() gossip.NodeID { return t.id }

// Addr returns the bound local address.
func (t *UDPTransport) Addr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// Register maps a peer id to its UDP address.
func (t *UDPTransport) Register(id gossip.NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	t.mu.Lock()
	t.book[id] = ua
	t.mu.Unlock()
	return nil
}

// SetLinks installs (or replaces) the per-peer telemetry table: every
// datagram written or dispatched afterwards is attributed to its peer's
// counters. nil detaches. Safe to call while the transport is running;
// the hot path pays one atomic load and a read-locked map hit.
func (t *UDPTransport) SetLinks(links *observe.PeerTable) { t.links.Store(links) }

// peerStats resolves the telemetry row for a peer, nil when telemetry
// is off.
func (t *UDPTransport) peerStats(id gossip.NodeID) *observe.PeerStats {
	links := t.links.Load()
	if links == nil {
		return nil
	}
	return links.Get(string(id))
}

// SetHandler installs the receive callback.
func (t *UDPTransport) SetHandler(h Handler) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// Start launches the read and dispatch loops. It must be called exactly
// once.
func (t *UDPTransport) Start() error {
	if !t.started.CompareAndSwap(false, true) {
		return fmt.Errorf("transport: already started")
	}
	t.wg.Add(2)
	go t.readLoop()
	go t.dispatchLoop()
	return nil
}

// readLoop moves datagrams from the socket into the dispatch queue. It
// never blocks on the consumer: a full queue drops the datagram
// (counted), so kernel receive buffers keep draining no matter how slow
// the handler is.
func (t *UDPTransport) readLoop() {
	defer t.wg.Done()
	defer close(t.recvQ)
	backoff := initialReadBackoff
	for {
		bp := recvBufPool.Get().(*[]byte)
		n, _, err := t.conn.ReadFromUDP(*bp)
		if err != nil {
			recvBufPool.Put(bp)
			if t.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient failure: back off instead of spinning. The stop
			// channel cuts the wait short on Close.
			t.readErrors.Add(1)
			select {
			case <-t.stopCh:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxReadBackoff {
				backoff = maxReadBackoff
			}
			continue
		}
		backoff = initialReadBackoff
		t.received.Add(1)
		t.recvBytes.Add(uint64(n))
		select {
		case t.recvQ <- recvPacket{buf: bp, n: n}:
		default:
			t.recvQueueDrops.Add(1)
			recvBufPool.Put(bp)
		}
	}
}

// dispatchLoop decodes queued datagrams and runs the handler, off the
// socket goroutine. Once Close is underway the backlog is discarded
// (counted in RecvQueueDrops) rather than dispatched — a slow handler
// must not stretch shutdown by backlog × handler latency, nor keep
// receiving messages into a node being torn down.
func (t *UDPTransport) dispatchLoop() {
	defer t.wg.Done()
	for pkt := range t.recvQ {
		if t.closed.Load() {
			t.recvQueueDrops.Add(1)
			recvBufPool.Put(pkt.buf)
			continue
		}
		t.dispatch(pkt)
	}
}

func (t *UDPTransport) dispatch(pkt recvPacket) {
	// Decode copies everything it keeps, so the read buffer goes back to
	// the pool before the handler runs.
	msg, err := t.codec.Decode((*pkt.buf)[:pkt.n])
	recvBufPool.Put(pkt.buf)
	if err != nil {
		t.decodeErrors.Add(1)
		return
	}
	if ps := t.peerStats(msg.From); ps != nil {
		ps.MessagesReceived.Inc()
		ps.BytesReceived.Add(uint64(pkt.n))
	}
	t.mu.RLock()
	h := t.handler
	t.mu.RUnlock()
	if h == nil {
		t.noHandler.Add(1)
		return
	}
	h(msg)
}

// Send encodes and transmits msg to one peer, splitting into multiple
// datagrams when it exceeds the datagram bound. Every call pays one
// full encode; fanout traffic should go through SendMany, which
// serializes once for all targets from a pooled buffer.
func (t *UDPTransport) Send(to gossip.NodeID, msg *gossip.Message) error {
	t.mu.RLock()
	addr, ok := t.book[to]
	t.mu.RUnlock()
	if !ok {
		t.sendErrors.Add(1)
		if ps := t.peerStats(to); ps != nil {
			ps.SendErrors.Inc()
		}
		return fmt.Errorf("transport: unknown peer %s", to)
	}
	chunks, err := t.codec.EncodeChunks(msg, t.maxDg)
	if err != nil {
		t.sendErrors.Add(1)
		return err
	}
	return t.writeChunks(to, addr, chunks)
}

// SendMany transmits msg to every target, encoding once: the per-round
// gossip message is read-only, so one Codec pass serves all F fanout
// targets and the dissemination cost scales with message size, not
// fanout. Targets are attempted independently (best effort); SendMany
// returns the number of targets fully sent and the first error.
//
//gossip:hotpath
func (t *UDPTransport) SendMany(targets []gossip.NodeID, msg *gossip.Message) (int, error) {
	if len(targets) == 0 {
		return 0, nil
	}
	var chunks [][]byte
	var single []byte
	if t.codec.EncodedSize(msg) > t.maxDg {
		var err error
		//gossip:allocok oversized-message slow path: chunked encoding pays per message size, once for all fanout targets
		chunks, err = t.codec.EncodeChunks(msg, t.maxDg)
		if err != nil {
			t.sendErrors.Add(uint64(len(targets)))
			return 0, err
		}
	} else {
		bp := sendBufPool.Get().(*[]byte)
		defer sendBufPool.Put(bp)
		buf, err := t.codec.AppendEncode((*bp)[:0], msg)
		if err != nil {
			t.sendErrors.Add(uint64(len(targets)))
			return 0, err
		}
		*bp = buf
		single = buf
	}
	sent := 0
	var first error
	for _, to := range targets {
		t.mu.RLock()
		addr, ok := t.book[to]
		t.mu.RUnlock()
		if !ok {
			t.sendErrors.Add(1)
			if ps := t.peerStats(to); ps != nil {
				ps.SendErrors.Inc()
			}
			if first == nil {
				//gossip:allocok unknown-peer error path; healthy membership never takes it
				first = fmt.Errorf("transport: unknown peer %s", to)
			}
			continue
		}
		var err error
		if single != nil {
			err = t.writeDatagram(to, addr, single, false)
		} else {
			err = t.writeChunks(to, addr, chunks)
		}
		if err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		if ps := t.peerStats(to); ps != nil {
			ps.FanoutSends.Inc()
		}
		sent++
	}
	return sent, first
}

// writeChunks transmits a split message, one datagram per chunk;
// fragments after the first count toward SplitChunks.
func (t *UDPTransport) writeChunks(to gossip.NodeID, addr *net.UDPAddr, chunks [][]byte) error {
	for i, chunk := range chunks {
		if err := t.writeDatagram(to, addr, chunk, i > 0); err != nil {
			return err
		}
	}
	return nil
}

// writeDatagram sends one already-encoded datagram, applying loss
// injection and the wire counters. fragment marks a continuation chunk
// of a split message (counted in SplitChunks when actually written).
func (t *UDPTransport) writeDatagram(to gossip.NodeID, addr *net.UDPAddr, chunk []byte, fragment bool) error {
	ps := t.peerStats(to)
	if t.dropForLoss() {
		t.lossDropped.Add(1)
		if ps != nil {
			ps.Drops.Inc()
		}
		return nil
	}
	n, err := t.conn.WriteToUDP(chunk, addr)
	if err != nil {
		t.sendErrors.Add(1)
		if ps != nil {
			ps.SendErrors.Inc()
		}
		//gossip:allocok socket-failure error path, not taken on successful writes
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	t.sent.Add(1)
	t.sentBytes.Add(uint64(n))
	if ps != nil {
		ps.MessagesSent.Inc()
		ps.BytesSent.Add(uint64(n))
	}
	if fragment {
		t.splitChunks.Add(1)
	}
	return nil
}

// dropForLoss rolls the injected-loss dice (false when disabled).
func (t *UDPTransport) dropForLoss() bool {
	if t.lossRate <= 0 {
		return false
	}
	t.lossMu.Lock()
	defer t.lossMu.Unlock()
	return t.lossRNG.Float64() < t.lossRate
}

// Stats returns a snapshot of the counters.
func (t *UDPTransport) Stats() UDPStats {
	s := UDPStats{
		Sent:           t.sent.Load(),
		SentBytes:      t.sentBytes.Load(),
		SplitChunks:    t.splitChunks.Load(),
		Received:       t.received.Load(),
		RecvBytes:      t.recvBytes.Load(),
		DecodeErrors:   t.decodeErrors.Load(),
		NoHandler:      t.noHandler.Load(),
		SendErrors:     t.sendErrors.Load(),
		LossDropped:    t.lossDropped.Load(),
		ReadErrors:     t.readErrors.Load(),
		RecvQueueDrops: t.recvQueueDrops.Load(),
	}
	if t.codec.Stats != nil {
		s.PreCompressionBytes = t.codec.Stats.PreCompressionBytes.Load()
		s.PostCompressionBytes = t.codec.Stats.PostCompressionBytes.Load()
	}
	return s
}

// Close stops the read and dispatch loops and releases the socket.
// Datagrams still queued for dispatch are discarded (counted in
// RecvQueueDrops); only a handler call already in flight is waited for.
func (t *UDPTransport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(t.stopCh)
	err := t.conn.Close()
	t.wg.Wait()
	return err
}

// ScratchSafe marks the transport as not retaining sent messages: Send
// and SendMany encode synchronously before returning.
func (t *UDPTransport) ScratchSafe() {}

var (
	_ Transport   = (*UDPTransport)(nil)
	_ ManySender  = (*UDPTransport)(nil)
	_ ScratchSafe = (*UDPTransport)(nil)
)

package transport

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"

	"adaptivegossip/internal/gossip"
)

// DefaultMaxDatagram bounds UDP datagram sizes. Gossip messages above
// it are split into standalone chunks (see Codec.EncodeChunks).
const DefaultMaxDatagram = 60 * 1024

// UDPStats counts UDP transport activity.
type UDPStats struct {
	Sent         uint64
	SentBytes    uint64
	SplitChunks  uint64
	Received     uint64
	RecvBytes    uint64
	DecodeErrors uint64
	NoHandler    uint64
	SendErrors   uint64
	LossDropped  uint64 // datagrams dropped by injected send loss
}

// UDPTransport carries gossip messages as UDP datagrams — the role the
// Ethernet LAN plays in the paper's prototype experiments. Peers are
// registered explicitly in an address book (the examples and cmd tools
// wire this from configuration).
type UDPTransport struct {
	id    gossip.NodeID
	conn  *net.UDPConn
	codec Codec
	maxDg int

	mu      sync.RWMutex
	book    map[gossip.NodeID]*net.UDPAddr
	handler Handler

	lossMu   sync.Mutex
	lossRate float64
	lossRNG  *rand.Rand

	started atomic.Bool
	closed  atomic.Bool
	wg      sync.WaitGroup

	sent         atomic.Uint64
	sentBytes    atomic.Uint64
	splitChunks  atomic.Uint64
	received     atomic.Uint64
	recvBytes    atomic.Uint64
	decodeErrors atomic.Uint64
	noHandler    atomic.Uint64
	sendErrors   atomic.Uint64
	lossDropped  atomic.Uint64
}

// UDPOption configures a UDPTransport.
type UDPOption func(*UDPTransport) error

// WithUDPCodec overrides the wire codec limits.
func WithUDPCodec(c Codec) UDPOption {
	return func(t *UDPTransport) error {
		t.codec = c
		return nil
	}
}

// WithUDPSendLoss drops outgoing datagrams with probability p — iid
// loss injection for demos and tests on loopback, where the real
// network never drops. Dropped datagrams are counted in LossDropped.
func WithUDPSendLoss(p float64, seed uint64) UDPOption {
	return func(t *UDPTransport) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("transport: loss probability %v out of [0,1]", p)
		}
		t.lossRate = p
		t.lossRNG = rand.New(rand.NewPCG(seed, seed^0x10551055))
		return nil
	}
}

// WithMaxDatagram overrides the datagram split threshold.
func WithMaxDatagram(n int) UDPOption {
	return func(t *UDPTransport) error {
		if n < 512 {
			return fmt.Errorf("transport: max datagram %d too small", n)
		}
		t.maxDg = n
		return nil
	}
}

// NewUDPTransport binds a UDP socket at bind (e.g. "127.0.0.1:0").
// Call SetHandler then Start before expecting traffic.
func NewUDPTransport(id gossip.NodeID, bind string, opts ...UDPOption) (*UDPTransport, error) {
	if id == "" {
		return nil, fmt.Errorf("transport: node id must not be empty")
	}
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", bind, err)
	}
	t := &UDPTransport{
		id:    id,
		conn:  conn,
		codec: DefaultCodec(),
		maxDg: DefaultMaxDatagram,
		book:  make(map[gossip.NodeID]*net.UDPAddr),
	}
	for _, opt := range opts {
		if err := opt(t); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return t, nil
}

// LocalID returns the transport's node id.
func (t *UDPTransport) LocalID() gossip.NodeID { return t.id }

// Addr returns the bound local address.
func (t *UDPTransport) Addr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// Register maps a peer id to its UDP address.
func (t *UDPTransport) Register(id gossip.NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	t.mu.Lock()
	t.book[id] = ua
	t.mu.Unlock()
	return nil
}

// SetHandler installs the receive callback.
func (t *UDPTransport) SetHandler(h Handler) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// Start launches the read loop. It must be called exactly once.
func (t *UDPTransport) Start() error {
	if !t.started.CompareAndSwap(false, true) {
		return fmt.Errorf("transport: already started")
	}
	t.wg.Add(1)
	go t.readLoop()
	return nil
}

func (t *UDPTransport) readLoop() {
	defer t.wg.Done()
	buf := make([]byte, 1<<16)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			if t.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.received.Add(1)
		t.recvBytes.Add(uint64(n))
		msg, err := t.codec.Decode(buf[:n])
		if err != nil {
			t.decodeErrors.Add(1)
			continue
		}
		t.mu.RLock()
		h := t.handler
		t.mu.RUnlock()
		if h == nil {
			t.noHandler.Add(1)
			continue
		}
		h(msg)
	}
}

// Send encodes and transmits msg, splitting into multiple datagrams
// when it exceeds the datagram bound.
func (t *UDPTransport) Send(to gossip.NodeID, msg *gossip.Message) error {
	t.mu.RLock()
	addr, ok := t.book[to]
	t.mu.RUnlock()
	if !ok {
		t.sendErrors.Add(1)
		return fmt.Errorf("transport: unknown peer %s", to)
	}
	chunks, err := t.codec.EncodeChunks(msg, t.maxDg)
	if err != nil {
		t.sendErrors.Add(1)
		return err
	}
	if len(chunks) > 1 {
		t.splitChunks.Add(uint64(len(chunks)))
	}
	for _, chunk := range chunks {
		if t.dropForLoss() {
			t.lossDropped.Add(1)
			continue
		}
		n, err := t.conn.WriteToUDP(chunk, addr)
		if err != nil {
			t.sendErrors.Add(1)
			return fmt.Errorf("transport: send to %s: %w", to, err)
		}
		t.sent.Add(1)
		t.sentBytes.Add(uint64(n))
	}
	return nil
}

// dropForLoss rolls the injected-loss dice (false when disabled).
func (t *UDPTransport) dropForLoss() bool {
	if t.lossRate <= 0 {
		return false
	}
	t.lossMu.Lock()
	defer t.lossMu.Unlock()
	return t.lossRNG.Float64() < t.lossRate
}

// Stats returns a snapshot of the counters.
func (t *UDPTransport) Stats() UDPStats {
	return UDPStats{
		Sent:         t.sent.Load(),
		SentBytes:    t.sentBytes.Load(),
		SplitChunks:  t.splitChunks.Load(),
		Received:     t.received.Load(),
		RecvBytes:    t.recvBytes.Load(),
		DecodeErrors: t.decodeErrors.Load(),
		NoHandler:    t.noHandler.Load(),
		SendErrors:   t.sendErrors.Load(),
		LossDropped:  t.lossDropped.Load(),
	}
}

// Close stops the read loop and releases the socket.
func (t *UDPTransport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := t.conn.Close()
	t.wg.Wait()
	return err
}

var _ Transport = (*UDPTransport)(nil)

package transport

import "adaptivegossip/internal/gossip"

// Handler consumes an incoming gossip message. Handlers must be fast or
// hand off: transports call them from their delivery goroutines.
type Handler func(*gossip.Message)

// Transport moves gossip messages between nodes. Implementations:
// MemEndpoint (in-process fabric with latency/loss injection) and
// UDPTransport (real datagrams).
type Transport interface {
	// LocalID returns the node this endpoint belongs to.
	LocalID() gossip.NodeID
	// Send transmits msg to the named peer. Messages are treated as
	// read-only after Send.
	Send(to gossip.NodeID, msg *gossip.Message) error
	// SetHandler installs the receive callback. Must be called before
	// traffic is expected; messages arriving with no handler are
	// dropped.
	SetHandler(h Handler)
	// Close releases resources and stops delivery.
	Close() error
}

package transport

import "adaptivegossip/internal/gossip"

// Handler consumes an incoming gossip message. Handlers must be fast or
// hand off: transports call them from their delivery goroutines.
type Handler func(*gossip.Message)

// Transport moves gossip messages between nodes. Implementations:
// MemEndpoint (in-process fabric with latency/loss injection) and
// UDPTransport (real datagrams).
type Transport interface {
	// LocalID returns the node this endpoint belongs to.
	LocalID() gossip.NodeID
	// Send transmits msg to the named peer. Messages are treated as
	// read-only after Send.
	Send(to gossip.NodeID, msg *gossip.Message) error
	// SetHandler installs the receive callback. Must be called before
	// traffic is expected; messages arriving with no handler are
	// dropped.
	SetHandler(h Handler)
	// Close releases resources and stops delivery.
	Close() error
}

// ManySender is the optional fanout fast path of a Transport: one
// message addressed to many peers in a single call, letting the
// implementation pay the encode cost once instead of once per target
// (both built-in transports implement it). Delivery is best effort per
// target — a failing target does not stop the others. SendMany returns
// how many targets were sent to and the first error encountered.
type ManySender interface {
	SendMany(targets []gossip.NodeID, msg *gossip.Message) (int, error)
}

// ScratchSafe marks Transport implementations that never retain a sent
// *Message (or any slice reachable from it) past the return of
// Send/SendMany — the UDP transport encodes synchronously, the memory
// fabric copies on entry. Drivers hand their reused per-round scratch
// message (see gossip.Node.Tick's lifetime contract) directly to
// ScratchSafe transports and copy it first for any other
// implementation, so external Endpoints that queue messages for
// asynchronous delivery keep working unchanged.
type ScratchSafe interface {
	// ScratchSafe is a marker; implementations promise the retention
	// property documented on the interface.
	ScratchSafe()
}

// SendGroups coalesces a batch of outgoings into per-message fanouts
// (gossip.GroupOutgoing) and transmits each through t via SendMany, so
// encode-once transports pay the serialization cost once per round. It
// applies the scratch-safety protocol in one place for every driver:
// unless t is marked ScratchSafe, each message is copied out of the
// sender's per-round scratch state (Message.CopyForSend) before it
// reaches the transport. It returns the total targets sent and failed.
func SendGroups(t Transport, outs []gossip.Outgoing) (sent, failed int) {
	var g GroupSender
	return g.SendGroups(t, outs)
}

// GroupSender is the amortized form of SendGroups: the grouping scratch
// (fanout entries and the flattened target list) is retained across
// rounds, so a steady-state round groups and transmits with zero
// allocations. One GroupSender belongs to one sending loop; it is not
// safe for concurrent use.
type GroupSender struct {
	fans    []gossip.Fanout
	targets []gossip.NodeID
}

// SendGroups coalesces outs and transmits each fanout through t,
// exactly like the package-level SendGroups, reusing the receiver's
// scratch.
//
//gossip:hotpath
func (g *GroupSender) SendGroups(t Transport, outs []gossip.Outgoing) (sent, failed int) {
	// Drop last round's message pointers before reuse so the scratch
	// does not pin control messages past their round.
	for i := range g.fans {
		g.fans[i] = gossip.Fanout{}
	}
	g.fans, g.targets = gossip.AppendGroupOutgoing(g.fans[:0], g.targets[:0], outs)
	_, scratchSafe := t.(ScratchSafe)
	for _, f := range g.fans {
		msg := f.Msg
		if !scratchSafe {
			//gossip:allocok documented slow path: non-ScratchSafe transports get a copy, decoupling them from scratch reuse
			msg = msg.CopyForSend()
		}
		n, _ := SendMany(t, f.Targets, msg)
		sent += n
		failed += len(f.Targets) - n
	}
	return sent, failed
}

// SendMany transmits msg to every target through t, using the
// ManySender fast path when t implements it and falling back to one
// encode-per-peer Send per target otherwise — the shim that keeps
// external Transport implementations working unchanged. Like the fast
// path, the fallback is best effort per target: it attempts every
// target and returns the number sent plus the first error.
func SendMany(t Transport, targets []gossip.NodeID, msg *gossip.Message) (int, error) {
	if ms, ok := t.(ManySender); ok {
		return ms.SendMany(targets, msg)
	}
	sent := 0
	var first error
	for _, to := range targets {
		if err := t.Send(to, msg); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		sent++
	}
	return sent, first
}

package transport

import "adaptivegossip/internal/gossip"

// Handler consumes an incoming gossip message. Handlers must be fast or
// hand off: transports call them from their delivery goroutines.
type Handler func(*gossip.Message)

// Transport moves gossip messages between nodes. Implementations:
// MemEndpoint (in-process fabric with latency/loss injection) and
// UDPTransport (real datagrams).
type Transport interface {
	// LocalID returns the node this endpoint belongs to.
	LocalID() gossip.NodeID
	// Send transmits msg to the named peer. Messages are treated as
	// read-only after Send.
	Send(to gossip.NodeID, msg *gossip.Message) error
	// SetHandler installs the receive callback. Must be called before
	// traffic is expected; messages arriving with no handler are
	// dropped.
	SetHandler(h Handler)
	// Close releases resources and stops delivery.
	Close() error
}

// ManySender is the optional fanout fast path of a Transport: one
// message addressed to many peers in a single call, letting the
// implementation pay the encode cost once instead of once per target
// (both built-in transports implement it). Delivery is best effort per
// target — a failing target does not stop the others. SendMany returns
// how many targets were sent to and the first error encountered.
type ManySender interface {
	SendMany(targets []gossip.NodeID, msg *gossip.Message) (int, error)
}

// SendMany transmits msg to every target through t, using the
// ManySender fast path when t implements it and falling back to one
// encode-per-peer Send per target otherwise — the shim that keeps
// external Transport implementations working unchanged. Like the fast
// path, the fallback is best effort per target: it attempts every
// target and returns the number sent plus the first error.
func SendMany(t Transport, targets []gossip.NodeID, msg *gossip.Message) (int, error) {
	if ms, ok := t.(ManySender); ok {
		return ms.SendMany(targets, msg)
	}
	sent := 0
	var first error
	for _, to := range targets {
		if err := t.Send(to, msg); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		sent++
	}
	return sent, first
}

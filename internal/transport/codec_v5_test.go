package transport

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"adaptivegossip/internal/gossip"
)

// flateCodec returns the default codec with flate payload compression.
func flateCodec() Codec {
	c := DefaultCodec()
	c.Compression = NewFlateCompressor()
	return c
}

// TestCodecV5CompressedRoundTripAllKinds: messages of every kind
// compressed on encode decode back equal — through a plain codec with
// no compressor configured, pinning the decode-side independence of
// the compression seam.
func TestCodecV5CompressedRoundTripAllKinds(t *testing.T) {
	cz := flateCodec()
	plain := DefaultCodec()
	samples := append(kindSamples(), tracedKindSamples()...)
	compressed := 0
	for _, m := range samples {
		data, err := cz.Encode(m)
		if err != nil {
			t.Fatalf("kind %v: encode: %v", m.Kind, err)
		}
		if data[4]&flagCompress != 0 {
			compressed++
		}
		got, err := plain.Decode(data)
		if err != nil {
			t.Fatalf("kind %v: decode: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("kind %v compressed round trip mismatch:\n in: %#v\nout: %#v", m.Kind, m, got)
		}
	}
	if compressed == 0 {
		t.Fatal("no sample frame actually compressed — the seam was never exercised")
	}
}

// TestCodecV5DecodesV4 pins cross-version interop: frames produced by
// the legacy v4 encoder decode byte-identically through the current
// codec.
func TestCodecV5DecodesV4(t *testing.T) {
	c4 := DefaultCodec()
	c4.WireVersion = wireV4
	c := DefaultCodec()
	for _, m := range append(kindSamples(), tracedKindSamples()...) {
		data, err := c4.Encode(m)
		if err != nil {
			t.Fatalf("kind %v: v4 encode: %v", m.Kind, err)
		}
		if data[3] != wireV4 {
			t.Fatalf("kind %v: version byte = %d, want %d", m.Kind, data[3], wireV4)
		}
		got, err := c.Decode(data)
		if err != nil {
			t.Fatalf("kind %v: decode v4 frame: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("kind %v v4->v5 mismatch:\n in: %#v\nout: %#v", m.Kind, m, got)
		}
	}
}

// TestCodecCompressedStoredFallback: when compression cannot shrink the
// section (incompressible random payloads), the encoder stores it raw —
// so EncodedSize stays an exact bound and the compress flag stays
// clear.
func TestCodecCompressedStoredFallback(t *testing.T) {
	cz := flateCodec()
	rng := rand.New(rand.NewPCG(7, 7))
	m := &gossip.Message{From: "stored", Round: 3}
	for i := 0; i < 10; i++ {
		payload := make([]byte, 400)
		for j := range payload {
			payload[j] = byte(rng.Uint64())
		}
		m.AppendEvent(gossip.Event{
			ID:      gossip.EventID{Origin: "stored", Seq: rng.Uint64()},
			Age:     i,
			Payload: payload,
		})
	}
	data, err := cz.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if data[4]&flagCompress != 0 {
		t.Fatal("incompressible section was compressed anyway")
	}
	if len(data) != cz.EncodedSize(m) {
		t.Fatalf("stored fallback is %d bytes, EncodedSize promised %d", len(data), cz.EncodedSize(m))
	}
	got, err := DefaultCodec().Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("stored-fallback round trip mismatch")
	}
}

// TestCodecCompressedSmallerAndBounded: a compressible message shrinks
// on the wire yet never exceeds the EncodedSize upper bound.
func TestCodecCompressedSmallerAndBounded(t *testing.T) {
	cz := flateCodec()
	m := sampleMessage()
	plainData, err := DefaultCodec().Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	data, err := cz.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= len(plainData) {
		t.Fatalf("compressed frame %d bytes, uncompressed %d", len(data), len(plainData))
	}
	if len(data) > cz.EncodedSize(m) {
		t.Fatalf("compressed frame %d bytes exceeds EncodedSize bound %d", len(data), cz.EncodedSize(m))
	}
	if data[4]&flagCompress == 0 {
		t.Fatal("compressible frame did not set the compress flag")
	}
}

// TestCodecStatsCounters: the pre-/post-compression byte counters move
// apart exactly when compression pays, and stay equal on the stored
// path.
func TestCodecStatsCounters(t *testing.T) {
	cz := flateCodec()
	cz.Stats = &CodecStats{}
	if _, err := cz.Encode(sampleMessage()); err != nil {
		t.Fatal(err)
	}
	pre, post := cz.Stats.PreCompressionBytes.Load(), cz.Stats.PostCompressionBytes.Load()
	if pre == 0 || post == 0 || post >= pre {
		t.Fatalf("compressed encode: pre=%d post=%d, want 0 < post < pre", pre, post)
	}

	plain := DefaultCodec()
	plain.Stats = &CodecStats{}
	if _, err := plain.Encode(sampleMessage()); err != nil {
		t.Fatal(err)
	}
	pre, post = plain.Stats.PreCompressionBytes.Load(), plain.Stats.PostCompressionBytes.Load()
	if pre == 0 || pre != post {
		t.Fatalf("uncompressed encode: pre=%d post=%d, want equal and non-zero", pre, post)
	}
}

// compSectionOffset locates the event-section framing (rawLen varint)
// inside an encoded v5 frame of m.
func compSectionOffset(m *gossip.Message) int {
	return frameHdrBytes + controlPreSize(m) + controlPostSize(m)
}

// TestCodecCompressionEnvelopeErrors: every corruption of the
// compression envelope — flag/id disagreement, unknown compressor id,
// truncated or bit-flipped deflate stream, inflated rawLen claims —
// errors cleanly instead of panicking or over-allocating.
func TestCodecCompressionEnvelopeErrors(t *testing.T) {
	cz := flateCodec()
	m := sampleMessage()
	data, err := cz.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if data[4]&flagCompress == 0 {
		t.Fatal("sample frame did not compress; envelope tests need a compressed frame")
	}
	c := DefaultCodec()
	secOff := compSectionOffset(m)
	rawLen, n := uvarint(data[secOff:])
	if n <= 0 {
		t.Fatal("could not parse section rawLen")
	}
	compOff := secOff + n

	t.Run("flag-without-id", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[compOff] = compressorNone // flag still set
		if _, err := c.Decode(bad); err == nil || !strings.Contains(err.Error(), "mismatch") {
			t.Fatalf("flag/id mismatch not rejected: %v", err)
		}
	})
	t.Run("id-without-flag", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[4] &^= flagCompress
		if _, err := c.Decode(bad); err == nil || !strings.Contains(err.Error(), "mismatch") {
			t.Fatalf("flag/id mismatch not rejected: %v", err)
		}
	})
	t.Run("unknown-id", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[compOff] = 0x7F
		if _, err := c.Decode(bad); err == nil || !strings.Contains(err.Error(), "unknown compressor") {
			t.Fatalf("unknown compressor id not rejected: %v", err)
		}
	})
	t.Run("bomb-ratio", func(t *testing.T) {
		// Rewrite rawLen to claim far more than DEFLATE could ever
		// produce from this stream; the decoder must refuse before
		// allocating.
		rest := append([]byte(nil), data[secOff+n:]...)
		bad := append([]byte(nil), data[:secOff]...)
		bad = appendUvarintHelper(bad, 100_000_000)
		bad = append(bad, rest...)
		err := decodeErr(c, bad)
		if err == nil || !errors.Is(err, ErrTooLarge) {
			t.Fatalf("decompression bomb claim not rejected: %v", err)
		}
		_ = rawLen
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(data); cut++ {
			if _, err := c.Decode(data[:cut]); err == nil {
				t.Fatalf("strict prefix of %d/%d bytes decoded successfully", cut, len(data))
			}
		}
	})
	t.Run("bit-flips", func(t *testing.T) {
		// Flipping any single byte must never panic; a (lucky) successful
		// decode must still produce a re-encodable message.
		for i := range data {
			bad := append([]byte(nil), data...)
			bad[i] ^= 0xFF
			dm, err := c.Decode(bad)
			if err != nil {
				continue
			}
			if _, err := c.Encode(dm); err != nil {
				t.Fatalf("byte %d flipped: decoded message fails re-encode: %v", i, err)
			}
		}
	})
}

// uvarint is a test-local minimal varint reader (offset + length).
func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7F) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

func appendUvarintHelper(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func decodeErr(c Codec, data []byte) error {
	_, err := c.Decode(data)
	return err
}

// chunkPropertyMessage builds a multi-run message with uneven payload
// sizes so chunk splits land on and around run-group boundaries.
func chunkPropertyMessage(traced bool) *gossip.Message {
	m := &gossip.Message{
		Kind: gossip.KindGossip, From: "chunk-sender", Round: 9, Traced: traced,
		Digest: []gossip.EventID{{Origin: "d-1", Seq: 4}, {Origin: "d-2", Seq: 1 << 30}},
	}
	origins := []gossip.NodeID{"origin-a", "origin-bb-long-name", "o", "origin-a"}
	seq := uint64(100)
	for g, origin := range origins {
		for i := 0; i < 10; i++ {
			var payload []byte
			if n := (g*31 + i*17) % 120; n > 0 {
				payload = bytes.Repeat([]byte{byte(i + 1)}, n)
			}
			hop := 0
			if traced {
				hop = i % 5
			}
			m.AppendEvent(gossip.Event{
				ID:      gossip.EventID{Origin: origin, Seq: seq},
				Age:     (i * 3) % 11,
				Hop:     hop,
				Payload: payload,
			})
			seq += uint64(1 + (i%7)*(g+1))
		}
	}
	return m
}

// TestEncodeChunksBoundaryProperty sweeps the datagram bound one byte
// at a time across the whole message — every split point, including ±1
// byte around every run-group boundary — and asserts the chunking
// contract at each size: no chunk exceeds the bound, every chunk
// decodes standalone, control rides the first chunk only, and the
// reassembled event list is exactly the input.
func TestEncodeChunksBoundaryProperty(t *testing.T) {
	for _, tc := range []struct {
		name   string
		codec  Codec
		traced bool
	}{
		{"v5", DefaultCodec(), false},
		{"v5-traced", DefaultCodec(), true},
		{"v4", func() Codec { c := DefaultCodec(); c.WireVersion = wireV4; return c }(), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.codec
			m := chunkPropertyMessage(tc.traced)
			full := c.EncodedSize(m)
			multi := 0
			for maxSize := 128; maxSize <= full+4; maxSize++ {
				chunks, err := c.EncodeChunks(m, maxSize)
				if err != nil {
					// Tiny bounds may legitimately fail (header or a single
					// event cannot fit); from a comfortable bound on, the
					// split must always succeed.
					if maxSize >= 512 {
						t.Fatalf("maxSize %d: %v", maxSize, err)
					}
					continue
				}
				if len(chunks) >= 3 {
					multi++
				}
				var got []gossip.Event
				for ci, chunk := range chunks {
					if len(chunk) > maxSize {
						t.Fatalf("maxSize %d: chunk %d is %d bytes", maxSize, ci, len(chunk))
					}
					dec, err := DefaultCodec().Decode(chunk)
					if err != nil {
						t.Fatalf("maxSize %d: chunk %d decode: %v", maxSize, ci, err)
					}
					if dec.From != m.From || dec.Kind != m.Kind || dec.Round != m.Round || dec.Traced != tc.traced {
						t.Fatalf("maxSize %d: chunk %d header fields diverged", maxSize, ci)
					}
					if ci > 0 && len(dec.Digest) != 0 {
						t.Fatalf("maxSize %d: continuation chunk %d carries control sections", maxSize, ci)
					}
					got = append(got, dec.Events...)
				}
				if !reflect.DeepEqual(got, m.Events) {
					t.Fatalf("maxSize %d: reassembled %d events != input %d events", maxSize, len(got), len(m.Events))
				}
			}
			if multi == 0 {
				t.Fatal("sweep never produced a 3+-chunk split — the boundary logic went unexercised")
			}
		})
	}
}

// TestEncodeChunksOversizedEventFailsLoudly: a single event that cannot
// fit any datagram is a named error, never a silently oversized chunk.
func TestEncodeChunksOversizedEventFailsLoudly(t *testing.T) {
	c := DefaultCodec()
	m := &gossip.Message{From: "s", Events: []gossip.Event{
		{ID: gossip.EventID{Origin: "small", Seq: 1}, Payload: []byte("ok")},
		{ID: gossip.EventID{Origin: "big", Seq: 2}, Payload: bytes.Repeat([]byte{0x5A}, 4096)},
	}}
	_, err := c.EncodeChunks(m, 512)
	if err == nil {
		t.Fatal("oversized event silently chunked")
	}
	if !errors.Is(err, ErrTooLarge) || !strings.Contains(err.Error(), "cannot fit") {
		t.Fatalf("oversized event error is not loud enough: %v", err)
	}
}

// TestAppendEncodeZeroAllocV5 extends the zero-alloc contract to the
// columnar paths the old single-origin test never reached: multi-run
// messages and traced hop columns.
func TestAppendEncodeZeroAllocV5(t *testing.T) {
	c := DefaultCodec()
	for _, tc := range []struct {
		name string
		msg  *gossip.Message
	}{
		{"multi-origin", chunkPropertyMessage(false)},
		{"multi-origin-traced", chunkPropertyMessage(true)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			buf := make([]byte, 0, c.EncodedSize(tc.msg))
			allocs := testing.AllocsPerRun(200, func() {
				out, err := c.AppendEncode(buf[:0], tc.msg)
				if err != nil {
					t.Fatal(err)
				}
				_ = out
			})
			if allocs != 0 {
				t.Fatalf("AppendEncode allocated %v times per run with sufficient capacity", allocs)
			}
		})
	}
}

// FuzzEventSection targets the columnar event-section decoder directly:
// arbitrary rows must never panic, and a successful decode must
// re-encode to a section that decodes back identically (the
// canonicalization fixed point).
func FuzzEventSection(f *testing.F) {
	for _, m := range kindSamples() {
		f.Add(appendEventSection(nil, m), m.Traced)
	}
	for _, m := range tracedKindSamples() {
		f.Add(appendEventSection(nil, m), true)
	}
	f.Add([]byte{0x01, 0x01, 'x', 0x02}, false) // run longer than count
	f.Add([]byte{0x02, 0x01, 'x', 0x01, 0x00, 0x00, 0x00}, true)
	f.Fuzz(func(t *testing.T, rows []byte, traced bool) {
		c := DefaultCodec()
		m := &gossip.Message{From: "fuzz", Traced: traced}
		if err := c.decodeEventSection(rows, m); err != nil {
			return
		}
		re := appendEventSection(nil, m)
		m2 := &gossip.Message{From: "fuzz", Traced: traced}
		if err := c.decodeEventSection(re, m2); err != nil {
			t.Fatalf("re-encoded section fails decode: %v", err)
		}
		if !reflect.DeepEqual(m.Events, m2.Events) {
			t.Fatal("event section is not a canonicalization fixed point")
		}
	})
}

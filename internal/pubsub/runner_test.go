package pubsub

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/membership"
	"adaptivegossip/internal/transport"
)

func TestNewRunnerValidation(t *testing.T) {
	net, _ := transport.NewMemNetwork()
	defer net.Close()
	ep, _ := net.Endpoint("a")
	p := newPeer(t, "a", 30)
	if _, err := NewRunner(RunnerConfig{Peer: nil, Transport: ep, Period: time.Second}); err == nil {
		t.Fatal("nil peer accepted")
	}
	if _, err := NewRunner(RunnerConfig{Peer: p, Transport: nil, Period: time.Second}); err == nil {
		t.Fatal("nil transport accepted")
	}
	if _, err := NewRunner(RunnerConfig{Peer: p, Transport: ep, Period: 0}); err == nil {
		t.Fatal("zero period accepted")
	}
}

// TestRunnersDisseminatePerTopic runs a live two-topic cluster over the
// in-memory fabric and checks topic isolation end to end.
func TestRunnersDisseminatePerTopic(t *testing.T) {
	const n = 8
	net, err := transport.NewMemNetwork(transport.WithMemSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	names := make([]gossip.NodeID, n)
	for i := range names {
		names[i] = gossip.NodeID(fmt.Sprintf("p%02d", i))
	}
	regAll := membership.NewRegistry(names...)
	regHalf := membership.NewRegistry(names[:4]...)

	var mu sync.Mutex
	delivered := map[gossip.NodeID]map[Topic]int{}

	runners := make([]*Runner, n)
	for i := range runners {
		name := names[i]
		delivered[name] = map[Topic]int{}
		cfg := peerConfig(string(name), 40)
		cfg.Gossip.Period = 25 * time.Millisecond
		cfg.Deliver = func(topic Topic, ev gossip.Event) {
			mu.Lock()
			delivered[name][topic]++
			mu.Unlock()
		}
		p, err := NewPeer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := net.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(RunnerConfig{Peer: p, Transport: ep, Period: 25 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		runners[i] = r
		r.Start()
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()

	// Everyone subscribes to "wide"; only the first half to "narrow".
	for i, r := range runners {
		if err := r.Subscribe("wide", regAll); err != nil {
			t.Fatal(err)
		}
		if i < 4 {
			if err := r.Subscribe("narrow", regHalf); err != nil {
				t.Fatal(err)
			}
		}
	}

	if ok, err := runners[0].Publish("wide", []byte("w")); err != nil || !ok {
		t.Fatalf("publish wide: %v %v", ok, err)
	}
	if ok, err := runners[0].Publish("narrow", []byte("n")); err != nil || !ok {
		t.Fatalf("publish narrow: %v %v", ok, err)
	}
	if _, err := runners[5].Publish("narrow", nil); err == nil {
		t.Fatal("publish on unsubscribed topic accepted")
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		wide, narrow := 0, 0
		for _, byTopic := range delivered {
			if byTopic["wide"] > 0 {
				wide++
			}
			if byTopic["narrow"] > 0 {
				narrow++
			}
		}
		mu.Unlock()
		if wide == n && narrow == 4 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for i, name := range names {
		if delivered[name]["wide"] != 1 {
			t.Fatalf("%s wide deliveries = %d", name, delivered[name]["wide"])
		}
		wantNarrow := 0
		if i < 4 {
			wantNarrow = 1
		}
		if delivered[name]["narrow"] != wantNarrow {
			t.Fatalf("%s narrow deliveries = %d, want %d", name, delivered[name]["narrow"], wantNarrow)
		}
	}
}

func TestRunnerSubscribeUnsubscribeLive(t *testing.T) {
	net, _ := transport.NewMemNetwork()
	defer net.Close()
	p := newPeer(t, "solo", 30)
	ep, _ := net.Endpoint("solo")
	r, err := NewRunner(RunnerConfig{Peer: p, Transport: ep, Period: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()

	reg := membership.NewRegistry("solo", "other")
	if err := r.Subscribe("t1", reg); err != nil {
		t.Fatal(err)
	}
	if err := r.Subscribe("t2", reg); err != nil {
		t.Fatal(err)
	}
	state := r.State()
	if len(state) != 2 || state[0].BufferCap != 15 {
		t.Fatalf("state %+v", state)
	}
	if err := r.Unsubscribe("t1"); err != nil {
		t.Fatal(err)
	}
	state = r.State()
	if len(state) != 1 || state[0].BufferCap != 30 {
		t.Fatalf("state after unsubscribe %+v", state)
	}
}

func TestRunnerStopSemantics(t *testing.T) {
	net, _ := transport.NewMemNetwork()
	defer net.Close()
	p := newPeer(t, "x", 30)
	ep, _ := net.Endpoint("x")
	r, err := NewRunner(RunnerConfig{Peer: p, Transport: ep, Period: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r.Stop() // before start: no hang
	if r.Do(func(*Peer) {}) {
		t.Fatal("Do succeeded on never-started runner")
	}
	if _, err := r.Publish("t", nil); err == nil {
		t.Fatal("publish on stopped runner accepted")
	}
}

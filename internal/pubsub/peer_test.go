package pubsub

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"adaptivegossip/internal/core"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/membership"
)

var t0 = time.Unix(0, 0).UTC()

func peerConfig(id string, budget int) PeerConfig {
	cp := core.DefaultParams()
	cp.InitialRate = 10
	return PeerConfig{
		ID:           gossip.NodeID(id),
		BufferBudget: budget,
		Gossip:       gossip.Params{Fanout: 3, Period: time.Second, MaxAge: 8},
		Adaptive:     true,
		Core:         cp,
		RNG:          rand.New(rand.NewPCG(uint64(len(id)), 99)),
		Start:        t0,
	}
}

func newPeer(t *testing.T, id string, budget int) *Peer {
	t.Helper()
	p, err := NewPeer(peerConfig(id, budget))
	if err != nil {
		t.Fatalf("NewPeer(%s): %v", id, err)
	}
	return p
}

func TestNewPeerValidation(t *testing.T) {
	cfg := peerConfig("a", 60)
	cfg.ID = ""
	if _, err := NewPeer(cfg); err == nil {
		t.Fatal("empty id accepted")
	}
	cfg = peerConfig("a", 0)
	if _, err := NewPeer(cfg); err == nil {
		t.Fatal("zero budget accepted")
	}
	cfg = peerConfig("a", 60)
	cfg.RNG = nil
	if _, err := NewPeer(cfg); err == nil {
		t.Fatal("nil rng accepted")
	}
	cfg = peerConfig("a", 60)
	cfg.Gossip.Fanout = 0
	if _, err := NewPeer(cfg); err == nil {
		t.Fatal("bad gossip params accepted")
	}
	cfg = peerConfig("a", 60)
	cfg.Core.Window = -1
	if _, err := NewPeer(cfg); err == nil {
		t.Fatal("bad core params accepted")
	}
}

func TestSubscribeSplitsBudget(t *testing.T) {
	p := newPeer(t, "a", 60)
	reg := membership.NewRegistry("a", "b")
	if p.BudgetPerTopic() != 60 {
		t.Fatalf("unsubscribed budget = %d", p.BudgetPerTopic())
	}
	for i, want := range []int{60, 30, 20} {
		if err := p.Subscribe(Topic(fmt.Sprintf("t%d", i)), reg); err != nil {
			t.Fatal(err)
		}
		if got := p.BudgetPerTopic(); got != want {
			t.Fatalf("after %d subscriptions: budget %d, want %d", i+1, got, want)
		}
		for _, st := range p.State() {
			if st.BufferCap != want {
				t.Fatalf("topic %s capacity %d, want %d", st.Topic, st.BufferCap, want)
			}
		}
	}
	// Unsubscribe returns the budget.
	if err := p.Unsubscribe("t1"); err != nil {
		t.Fatal(err)
	}
	if got := p.BudgetPerTopic(); got != 30 {
		t.Fatalf("after unsubscribe: budget %d, want 30", got)
	}
	if p.Subscribed("t1") {
		t.Fatal("t1 still subscribed")
	}
	if got := p.Topics(); len(got) != 2 || got[0] != "t0" || got[1] != "t2" {
		t.Fatalf("topics %v", got)
	}
}

func TestSubscribeErrors(t *testing.T) {
	p := newPeer(t, "a", 60)
	reg := membership.NewRegistry("a", "b")
	if err := p.Subscribe("", reg); err == nil {
		t.Fatal("empty topic accepted")
	}
	if err := p.Subscribe("t", nil); err == nil {
		t.Fatal("nil sampler accepted")
	}
	if err := p.Subscribe("t", reg); err != nil {
		t.Fatal(err)
	}
	if err := p.Subscribe("t", reg); err == nil {
		t.Fatal("duplicate subscription accepted")
	}
	if err := p.Unsubscribe("ghost"); err == nil {
		t.Fatal("unsubscribe from unknown topic accepted")
	}
}

func TestPublishRequiresSubscription(t *testing.T) {
	p := newPeer(t, "a", 60)
	if _, _, err := p.Publish("nope", nil, t0); err == nil {
		t.Fatal("publish to unsubscribed topic accepted")
	}
	reg := membership.NewRegistry("a", "b")
	if err := p.Subscribe("t", reg); err != nil {
		t.Fatal(err)
	}
	ev, admitted, err := p.Publish("t", []byte("x"), t0)
	if err != nil || !admitted {
		t.Fatalf("publish failed: %v admitted=%v", err, admitted)
	}
	if ev.ID.Origin != "a" {
		t.Fatalf("event %+v", ev)
	}
}

func TestTickTagsMessagesWithTopic(t *testing.T) {
	p := newPeer(t, "a", 60)
	reg := membership.NewRegistry("a", "b", "c")
	if err := p.Subscribe("alpha", reg); err != nil {
		t.Fatal(err)
	}
	if err := p.Subscribe("beta", reg); err != nil {
		t.Fatal(err)
	}
	p.Publish("alpha", []byte("1"), t0)
	p.Publish("beta", []byte("2"), t0)
	outs := p.Tick(t0)
	if len(outs) == 0 {
		t.Fatal("no outgoing gossip")
	}
	groups := map[string]bool{}
	for _, o := range outs {
		groups[o.Msg.Group] = true
	}
	if !groups["alpha"] || !groups["beta"] {
		t.Fatalf("topics missing from outgoing groups: %v", groups)
	}
}

func TestReceiveRoutesByTopic(t *testing.T) {
	delivered := map[Topic]int{}
	cfg := peerConfig("b", 60)
	cfg.Deliver = func(topic Topic, ev gossip.Event) { delivered[topic]++ }
	p, err := NewPeer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := membership.NewRegistry("a", "b")
	if err := p.Subscribe("alpha", reg); err != nil {
		t.Fatal(err)
	}
	mkMsg := func(group string, seq uint64) *gossip.Message {
		return &gossip.Message{
			From: "a", Group: group,
			Events: []gossip.Event{{ID: gossip.EventID{Origin: "a", Seq: seq}, Age: 1}},
		}
	}
	p.Receive(mkMsg("alpha", 1), t0)
	p.Receive(mkMsg("beta", 2), t0) // not subscribed: dropped
	if delivered["alpha"] != 1 || delivered["beta"] != 0 {
		t.Fatalf("deliveries %v", delivered)
	}
	// Same (origin, seq) on different topics are distinct events.
	if err := p.Subscribe("beta", reg); err != nil {
		t.Fatal(err)
	}
	p.Receive(mkMsg("beta", 1), t0)
	if delivered["beta"] != 1 {
		t.Fatalf("cross-topic id collision: %v", delivered)
	}
}

// TestMultiTopicClusterIsolationAndAdaptation is the paper's motivating
// scenario end-to-end: two topics with overlapping subscribers, events
// stay within their topic, and a subscription wave that halves the
// overlapping nodes' budgets pulls the publisher's allowance down.
func TestMultiTopicClusterIsolationAndAdaptation(t *testing.T) {
	const n = 12
	names := make([]gossip.NodeID, n)
	for i := range names {
		names[i] = gossip.NodeID(fmt.Sprintf("p%02d", i))
	}
	regA := membership.NewRegistry(names...) // all 12 in topic A
	regB := membership.NewRegistry(names[6:]...)

	delivered := map[gossip.NodeID]map[Topic]int{}
	peers := make([]*Peer, n)
	for i := range peers {
		name := names[i]
		delivered[name] = map[Topic]int{}
		cfg := peerConfig(string(name), 16)
		cfg.RNG = rand.New(rand.NewPCG(uint64(i), 7))
		cfg.Core.InitialRate = 12
		cfg.Core.MaxRate = 24
		cfg.Deliver = func(topic Topic, ev gossip.Event) { delivered[name][topic]++ }
		p, err := NewPeer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Subscribe("A", regA); err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	index := map[gossip.NodeID]int{}
	for i, name := range names {
		index[name] = i
	}

	now := t0
	carry := 0.0
	round := func(publishRate float64) {
		now = now.Add(time.Second)
		carry += publishRate
		for carry >= 1 {
			peers[0].Publish("A", []byte("a"), now)
			carry--
		}
		type env struct {
			to  gossip.NodeID
			msg *gossip.Message
		}
		var mail []env
		for _, p := range peers {
			for _, out := range p.Tick(now) {
				mail = append(mail, env{out.To, out.Msg})
			}
		}
		for _, e := range mail {
			peers[index[e.to]].Receive(e.msg, now)
		}
	}

	// Phase 1: only topic A, full budget everywhere.
	for r := 0; r < 60; r++ {
		round(12)
	}
	nodeA, _ := peers[0].TopicNode("A")
	allowedBefore := nodeA.AllowedRate()
	if allowedBefore <= 0 {
		t.Fatal("publisher has no allowance")
	}

	// Phase 2: the last 6 peers subscribe to topic B, halving their
	// budget on A. Topic B stays silent; only the budget split matters.
	for i := 6; i < n; i++ {
		if err := peers[i].Subscribe("B", regB); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 60; r++ {
		round(12)
	}
	allowedAfter := nodeA.AllowedRate()
	if allowedAfter >= allowedBefore*0.85 {
		t.Fatalf("allowance did not adapt to the budget split: %.2f → %.2f",
			allowedBefore, allowedAfter)
	}
	if got := nodeA.MinBuffEstimate(); got != 8 {
		t.Fatalf("minBuff estimate %d, want the split budget 8", got)
	}

	// Isolation: nobody delivered anything on topic B, and all of
	// peer 0's messages stayed on A.
	for name, byTopic := range delivered {
		if byTopic["B"] != 0 {
			t.Fatalf("%s delivered %d events on silent topic B", name, byTopic["B"])
		}
		if byTopic["A"] == 0 {
			t.Fatalf("%s delivered nothing on topic A", name)
		}
	}
}

package pubsub

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/observe"
	"adaptivegossip/internal/transport"
)

// RunnerConfig drives a Peer in real time.
type RunnerConfig struct {
	// Peer is the state machine the runner owns; do not touch it after
	// Start except through Do.
	Peer *Peer
	// Transport carries gossip for all of the peer's topics.
	Transport transport.Transport
	// Period is the gossip round interval.
	Period time.Duration
	// InboxSize bounds the receive queue (default 256).
	InboxSize int
	// PhaseSeed randomizes the initial tick phase.
	PhaseSeed uint64
	// Metrics, when non-nil, receives wall-clock tick and receive
	// processing durations (nanoseconds).
	Metrics *observe.RunnerMetrics
}

// Runner owns a Peer: one goroutine serializes ticks, receives and
// commands, mirroring internal/runtime.Runner for single-group nodes.
type Runner struct {
	peer    *Peer
	tr      transport.Transport
	period  time.Duration
	phase   time.Duration
	metrics *observe.RunnerMetrics // nil = off

	inbox chan *gossip.Message
	cmds  chan func(*Peer)
	stop  chan struct{}
	done  chan struct{}

	startOnce sync.Once
	stopOnce  sync.Once
	started   atomic.Bool

	inboxDropped atomic.Uint64
	sendErrors   atomic.Uint64
}

// NewRunner wires the runner and installs the transport handler.
func NewRunner(cfg RunnerConfig) (*Runner, error) {
	if cfg.Peer == nil {
		return nil, fmt.Errorf("pubsub: peer must not be nil")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("pubsub: transport must not be nil")
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("pubsub: period must be positive, got %v", cfg.Period)
	}
	size := cfg.InboxSize
	if size <= 0 {
		size = 256
	}
	seed := cfg.PhaseSeed
	if seed == 0 {
		for _, b := range []byte(cfg.Peer.ID()) {
			seed = seed*131 + uint64(b)
		}
		seed++
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x517CC1B7))
	r := &Runner{
		peer:    cfg.Peer,
		tr:      cfg.Transport,
		period:  cfg.Period,
		phase:   time.Duration(rng.Int64N(int64(cfg.Period))),
		metrics: cfg.Metrics,
		inbox:   make(chan *gossip.Message, size),
		cmds:    make(chan func(*Peer)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	r.tr.SetHandler(func(msg *gossip.Message) {
		select {
		case r.inbox <- msg:
		default:
			r.inboxDropped.Add(1)
		}
	})
	return r, nil
}

// Start launches the peer loop. Idempotent.
func (r *Runner) Start() {
	r.startOnce.Do(func() {
		r.started.Store(true)
		go r.loop()
	})
}

// Stop terminates the loop and waits for it. Safe to call repeatedly
// and before Start.
func (r *Runner) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	if r.started.Load() {
		<-r.done
	}
}

func (r *Runner) loop() {
	defer close(r.done)
	phase := time.NewTimer(r.phase)
	defer phase.Stop()
waitPhase:
	for {
		select {
		case <-phase.C:
			break waitPhase
		case <-r.stop:
			return
		case msg := <-r.inbox:
			r.receive(msg)
		case cmd := <-r.cmds:
			cmd(r.peer)
		}
	}
	ticker := time.NewTicker(r.period)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			// transport.SendGroups coalesces each topic's shared round
			// message into one SendMany (encode-once transports pay per
			// round, not per fanout target) and copies for transports
			// not marked ScratchSafe.
			now := time.Now()
			_, failed := transport.SendGroups(r.tr, r.peer.Tick(now))
			r.sendErrors.Add(uint64(failed))
			if r.metrics != nil {
				r.metrics.TickNanos.ObserveInt(int64(time.Since(now)))
			}
		case msg := <-r.inbox:
			r.receive(msg)
		case cmd := <-r.cmds:
			cmd(r.peer)
		}
	}
}

// receive processes one inbound message, timing it when instrumented.
func (r *Runner) receive(msg *gossip.Message) {
	now := time.Now()
	r.peer.Receive(msg, now)
	if r.metrics != nil {
		r.metrics.ReceiveNanos.ObserveInt(int64(time.Since(now)))
	}
}

// Do runs fn serialized with the loop, reporting false after Stop.
func (r *Runner) Do(fn func(*Peer)) bool {
	if !r.started.Load() {
		return false
	}
	doneCh := make(chan struct{})
	select {
	case r.cmds <- func(p *Peer) { fn(p); close(doneCh) }:
		<-doneCh
		return true
	case <-r.done:
		return false
	}
}

// Subscribe joins a topic from outside the loop.
func (r *Runner) Subscribe(topic Topic, peers gossip.PeerSampler) error {
	err := fmt.Errorf("pubsub: runner stopped")
	r.Do(func(p *Peer) { err = p.Subscribe(topic, peers) })
	return err
}

// Unsubscribe leaves a topic from outside the loop.
func (r *Runner) Unsubscribe(topic Topic) error {
	err := fmt.Errorf("pubsub: runner stopped")
	r.Do(func(p *Peer) { err = p.Unsubscribe(topic) })
	return err
}

// Publish broadcasts on a topic, reporting admission.
func (r *Runner) Publish(topic Topic, payload []byte) (bool, error) {
	var admitted bool
	err := fmt.Errorf("pubsub: runner stopped")
	r.Do(func(p *Peer) {
		_, admitted, err = p.Publish(topic, payload, time.Now())
	})
	return admitted, err
}

// State snapshots all subscriptions.
func (r *Runner) State() []TopicState {
	var out []TopicState
	r.Do(func(p *Peer) { out = p.State() })
	return out
}

// InboxDropped counts receive-queue overflow drops.
func (r *Runner) InboxDropped() uint64 { return r.inboxDropped.Load() }

// Package pubsub implements the motivating scenario of the paper's
// introduction: topic-based publish/subscribe where each topic maps to
// its own gossip broadcast group, nodes subscribe to several topics,
// and every node must divide its fixed buffer budget among its current
// subscriptions. Each subscription change re-splits the budget, the
// per-topic minBuff estimates pick the change up from gossip headers,
// and publishers' allowed rates re-converge — with no coordination
// beyond the adaptation mechanism itself.
package pubsub

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"adaptivegossip/internal/core"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/observe"
)

// Topic names a broadcast group.
type Topic string

// DeliverFunc receives each event of a subscribed topic exactly once.
type DeliverFunc func(topic Topic, ev gossip.Event)

// PeerConfig assembles a pub/sub peer.
type PeerConfig struct {
	// ID is the node identifier, shared across all topics.
	ID gossip.NodeID
	// BufferBudget is the total number of events this node can buffer
	// across all subscribed topics. Subscribe splits it evenly.
	BufferBudget int
	// Gossip is the per-topic protocol configuration; MaxEvents is
	// ignored (the budget drives it).
	Gossip gossip.Params
	// Adaptive enables the adaptation mechanism per topic.
	Adaptive bool
	// Core parametrizes the adaptation.
	Core core.Params
	// RNG drives protocol randomness across all topics.
	RNG *rand.Rand
	// Deliver observes deliveries (optional).
	Deliver DeliverFunc
	// Metrics, when non-nil, is shared by every topic's broadcast node:
	// hop/drop-age/round-size observations across topics pool into one
	// instrumentation block.
	Metrics *observe.NodeMetrics
	// Tracer, when non-nil, samples rumor lifecycles on every topic.
	Tracer observe.Tracer
	// Start is the creation instant.
	Start time.Time
}

// Peer is one node's pub/sub endpoint: an independent broadcast node
// per subscribed topic, sharing one buffer budget and one identity.
//
// Peer is a single-threaded state machine like the nodes it wraps; a
// driver (Runner, or a simulation loop) serializes all calls.
type Peer struct {
	cfg    PeerConfig
	topics map[Topic]*core.AdaptiveNode
	order  []Topic // stable iteration: subscription order
}

// NewPeer validates the configuration and returns an unsubscribed peer.
func NewPeer(cfg PeerConfig) (*Peer, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("pubsub: peer id must not be empty")
	}
	if cfg.BufferBudget <= 0 {
		return nil, fmt.Errorf("pubsub: buffer budget must be positive, got %d", cfg.BufferBudget)
	}
	if cfg.RNG == nil {
		return nil, fmt.Errorf("pubsub: rng must not be nil")
	}
	probe := cfg.Gossip
	probe.MaxEvents = cfg.BufferBudget
	if probe.MaxEventIDs == 0 {
		probe.MaxEventIDs = gossip.DefaultIDCacheMult * probe.MaxEvents
	}
	if err := probe.Validate(); err != nil {
		return nil, fmt.Errorf("pubsub: %w", err)
	}
	if cfg.Adaptive {
		if err := cfg.Core.Validate(); err != nil {
			return nil, fmt.Errorf("pubsub: %w", err)
		}
	}
	return &Peer{cfg: cfg, topics: make(map[Topic]*core.AdaptiveNode)}, nil
}

// ID returns the peer identifier.
func (p *Peer) ID() gossip.NodeID { return p.cfg.ID }

// Topics returns the subscribed topics in subscription order.
func (p *Peer) Topics() []Topic {
	return append([]Topic(nil), p.order...)
}

// Subscribed reports whether the peer participates in topic.
func (p *Peer) Subscribed(topic Topic) bool {
	_, ok := p.topics[topic]
	return ok
}

// BudgetPerTopic returns the events-buffer capacity each subscribed
// topic currently gets (the budget split evenly, at least 1).
func (p *Peer) BudgetPerTopic() int {
	n := len(p.topics)
	if n == 0 {
		return p.cfg.BufferBudget
	}
	per := p.cfg.BufferBudget / n
	if per < 1 {
		per = 1
	}
	return per
}

// Subscribe joins a topic's broadcast group, drawing gossip targets for
// it from peers. The buffer budget is re-split across all
// subscriptions, which the per-topic adaptation mechanisms observe as
// capacity changes — exactly the dynamic the paper's introduction
// motivates.
func (p *Peer) Subscribe(topic Topic, peers gossip.PeerSampler) error {
	if topic == "" {
		return fmt.Errorf("pubsub: topic must not be empty")
	}
	if peers == nil {
		return fmt.Errorf("pubsub: peer sampler must not be nil")
	}
	if _, dup := p.topics[topic]; dup {
		return fmt.Errorf("pubsub: already subscribed to %q", topic)
	}
	gp := p.cfg.Gossip
	gp.MaxEvents = p.cfg.BufferBudget // placeholder; rebalance sets the real split
	var deliver gossip.DeliverFunc
	if p.cfg.Deliver != nil {
		fn := p.cfg.Deliver
		deliver = func(ev gossip.Event) { fn(topic, ev) }
	}
	node, err := core.NewAdaptiveNode(core.NodeConfig{
		ID:       p.cfg.ID,
		Gossip:   gp,
		Adaptive: p.cfg.Adaptive,
		Core:     p.cfg.Core,
		Peers:    peers,
		RNG:      p.cfg.RNG,
		Deliver:  deliver,
		Metrics:  p.cfg.Metrics,
		Tracer:   p.cfg.Tracer,
		Start:    p.cfg.Start,
	})
	if err != nil {
		return fmt.Errorf("pubsub: subscribe %q: %w", topic, err)
	}
	p.topics[topic] = node
	p.order = append(p.order, topic)
	return p.rebalance()
}

// Unsubscribe leaves a topic; the freed budget returns to the remaining
// subscriptions.
func (p *Peer) Unsubscribe(topic Topic) error {
	if _, ok := p.topics[topic]; !ok {
		return fmt.Errorf("pubsub: not subscribed to %q", topic)
	}
	delete(p.topics, topic)
	for i, t := range p.order {
		if t == topic {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	return p.rebalance()
}

func (p *Peer) rebalance() error {
	per := p.BudgetPerTopic()
	for topic, node := range p.topics {
		if err := node.SetBufferCapacity(per); err != nil {
			return fmt.Errorf("pubsub: rebalance %q: %w", topic, err)
		}
	}
	return nil
}

// Publish broadcasts payload on a subscribed topic. The bool reports
// token-bucket admission.
func (p *Peer) Publish(topic Topic, payload []byte, now time.Time) (gossip.Event, bool, error) {
	node, ok := p.topics[topic]
	if !ok {
		return gossip.Event{}, false, fmt.Errorf("pubsub: not subscribed to %q", topic)
	}
	ev, admitted := node.Publish(payload, now)
	return ev, admitted, nil
}

// Tick runs one gossip round for every subscribed topic and returns all
// outgoing messages, each tagged with its topic. The messages alias the
// per-topic nodes' reused round scratch: they are valid only until the
// next Tick.
//
//gossip:hotpath
//gossip:scratch
func (p *Peer) Tick(now time.Time) []gossip.Outgoing {
	var out []gossip.Outgoing
	for _, topic := range p.order {
		node := p.topics[topic]
		outs := node.Tick(now)
		if len(outs) == 0 {
			continue
		}
		// All Outgoing of one tick share a single Message.
		outs[0].Msg.Group = string(topic)
		out = append(out, outs...)
	}
	return out
}

// Receive routes an incoming gossip message to its topic's node.
// Messages for topics the peer no longer subscribes to are dropped.
//
// Anti-entropy recovery is not wired into the pub/sub layer:
// PeerConfig offers no recovery knob, so the per-topic nodes never
// produce control traffic and the discarded Receive return is always
// nil. Wiring recovery here would require forwarding that return (and
// Group-tagging the distinct request messages Tick would emit).
//
//gossip:hotpath
func (p *Peer) Receive(msg *gossip.Message, now time.Time) {
	node, ok := p.topics[Topic(msg.Group)]
	if !ok {
		return
	}
	node.Receive(msg, now)
}

// TopicState is a per-topic snapshot.
type TopicState struct {
	Topic       Topic
	BufferCap   int
	BufferLen   int
	AllowedRate float64
	AvgAge      float64
	MinBuff     int
	Gossip      gossip.NodeStats
	Adaptive    core.AdaptiveStats
}

// State snapshots every subscription, sorted by topic.
func (p *Peer) State() []TopicState {
	out := make([]TopicState, 0, len(p.topics))
	for topic, node := range p.topics {
		out = append(out, TopicState{
			Topic:       topic,
			BufferCap:   node.BufferCapacity(),
			BufferLen:   node.BufferLen(),
			AllowedRate: node.AllowedRate(),
			AvgAge:      node.AvgAge(),
			MinBuff:     node.MinBuffEstimate(),
			Gossip:      node.GossipStats(),
			Adaptive:    node.Stats(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Topic < out[j].Topic })
	return out
}

// TopicNode exposes the underlying node of a subscription (tests,
// diagnostics).
func (p *Peer) TopicNode(topic Topic) (*core.AdaptiveNode, bool) {
	node, ok := p.topics[topic]
	return node, ok
}

// Package failure implements SWIM-style failure detection on top of
// the push-gossip substrate (internal/gossip).
//
// The paper's adaptive broadcast assumes views converge to live
// members, but nothing in lpbcast ever removes a crashed node: it
// lingers in every registry and partial view, silently wasting fanout
// and skewing the adaptation signal. The detector closes that gap with
// the SWIM protocol (Das, Gupta, Motivala, "SWIM: Scalable
// Weakly-consistent Infection-style Process Group Membership", DSN
// 2002), adapted to this repository's round-driven extension model:
//
//   - Each gossip round (OnTick) the engine probes one random view
//     member with a ping and expects an ack within ProbeTimeoutRounds.
//   - On timeout it asks IndirectProbes random proxies to probe the
//     target on its behalf (ping-req), covering path asymmetry.
//   - If the indirect phase also times out, the target becomes
//     *suspect*; after SuspicionTimeoutRounds unrefuted, the suspicion
//     hardens into a *confirm* and the eviction callback fires.
//   - Status transitions (alive/suspect/confirm) are disseminated as
//     MemberUpdate rumors piggybacked on outgoing gossip and probes, so
//     detection costs O(1) extra messages per node per period.
//   - A node that learns it is suspected refutes by incrementing its
//     incarnation and gossiping a fresh alive update; alive updates
//     override suspicion only with a strictly higher incarnation.
//
// Two pragmatic guards temper SWIM's rumor mill for this codebase's
// traffic pattern (every node receives Fanout gossip messages per
// round, so direct evidence of liveness is plentiful):
//
//   - Any message received from a node is proof of life: it cancels
//     outstanding probes and locally clears suspicion.
//   - Suspect/confirm rumors about a node heard from within
//     FreshnessRounds are ignored — a peer we are actively exchanging
//     gossip with is not dead, whatever a stale rumor says.
//
// The Engine is a gossip.Extension plus a queue of outgoing control
// messages, exactly like recovery.Engine: drivers drain TakeOutgoing
// after every Tick and Receive and transmit the returned messages. The
// engine is single-threaded (the owning driver serializes all calls)
// and all iteration is in deterministic order so simulation runs stay
// reproducible under a seeded RNG.
package failure

import (
	"fmt"
	"math/rand/v2"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/observe"
)

// Defaults for Params, in gossip rounds. With the paper's 5-second
// period a crash is typically suspected within 2–3 rounds and confirmed
// within ProbeTimeout+Indirect+Suspicion ≈ 8 rounds (40 s).
const (
	DefaultProbePeriodRounds      = 1
	DefaultProbeTimeoutRounds     = 1
	DefaultIndirectTimeoutRounds  = 2
	DefaultIndirectProbes         = 3
	DefaultSuspicionTimeoutRounds = 5
	DefaultFreshnessRounds        = 2
	DefaultUpdatesPerMessage      = 8
	DefaultUpdateTransmits        = 6
	DefaultMaxMembers             = 4096
)

// Params configures the failure detector. The zero value of every
// field except Enabled means "use the default". All timing fields are
// in gossip rounds (multiples of the protocol period).
type Params struct {
	// Enabled turns the subsystem on. A disabled engine is never built;
	// the flag exists so configurations can carry detector settings
	// alongside the protocol's.
	Enabled bool
	// ProbePeriodRounds is how often a probe is launched: one random
	// member every this many rounds.
	ProbePeriodRounds int
	// ProbeTimeoutRounds is how long to wait for the direct ack before
	// falling back to indirect probes.
	ProbeTimeoutRounds int
	// IndirectTimeoutRounds is how long the indirect phase may run
	// before the target becomes suspect.
	IndirectTimeoutRounds int
	// IndirectProbes is k, the number of proxies asked to ping the
	// target when the direct probe times out.
	IndirectProbes int
	// SuspicionTimeoutRounds is how long a suspect may refute before
	// the suspicion hardens into a confirm.
	SuspicionTimeoutRounds int
	// FreshnessRounds guards against stale rumors: suspect/confirm
	// updates about a node heard from within this many rounds are
	// ignored.
	FreshnessRounds int
	// UpdatesPerMessage bounds the piggybacked rumors per outgoing
	// message.
	UpdatesPerMessage int
	// UpdateTransmits is how many outgoing messages each queued rumor
	// rides before it is dropped (SWIM's retransmission multiplier).
	UpdateTransmits int
	// MaxMembers bounds the per-node member-state table.
	MaxMembers int
}

// withDefaults fills zero-valued fields.
func (p Params) withDefaults() Params {
	if p.ProbePeriodRounds == 0 {
		p.ProbePeriodRounds = DefaultProbePeriodRounds
	}
	if p.ProbeTimeoutRounds == 0 {
		p.ProbeTimeoutRounds = DefaultProbeTimeoutRounds
	}
	if p.IndirectTimeoutRounds == 0 {
		p.IndirectTimeoutRounds = DefaultIndirectTimeoutRounds
	}
	if p.IndirectProbes == 0 {
		p.IndirectProbes = DefaultIndirectProbes
	}
	if p.SuspicionTimeoutRounds == 0 {
		p.SuspicionTimeoutRounds = DefaultSuspicionTimeoutRounds
	}
	if p.FreshnessRounds == 0 {
		p.FreshnessRounds = DefaultFreshnessRounds
	}
	if p.UpdatesPerMessage == 0 {
		p.UpdatesPerMessage = DefaultUpdatesPerMessage
	}
	if p.UpdateTransmits == 0 {
		p.UpdateTransmits = DefaultUpdateTransmits
	}
	if p.MaxMembers == 0 {
		p.MaxMembers = DefaultMaxMembers
	}
	return p
}

// Validate reports the first configuration error.
func (p Params) Validate() error {
	p = p.withDefaults()
	if p.ProbePeriodRounds < 0 || p.ProbeTimeoutRounds < 0 || p.IndirectTimeoutRounds < 0 ||
		p.SuspicionTimeoutRounds < 0 || p.FreshnessRounds < 0 {
		return fmt.Errorf("failure: round counts must be non-negative")
	}
	if p.IndirectProbes < 0 {
		return fmt.Errorf("failure: indirect probe count must be non-negative, got %d", p.IndirectProbes)
	}
	if p.UpdatesPerMessage < 0 || p.UpdateTransmits < 0 || p.MaxMembers < 0 {
		return fmt.Errorf("failure: bounds must be non-negative")
	}
	return nil
}

// Stats counts detector activity since the engine was created.
type Stats struct {
	ProbesSent       uint64 // direct pings launched
	AcksReceived     uint64 // acks received (direct and relayed)
	AcksSent         uint64 // pings answered
	PingReqsSent     uint64 // indirect probe requests emitted
	PingReqsReceived uint64 // indirect probe requests handled
	ProbesRelayed    uint64 // pings sent on another node's behalf
	AcksRelayed      uint64 // acks forwarded back to the requester
	Suspects         uint64 // local suspicions raised (probe timeouts)
	Confirms         uint64 // suspicions hardened into confirms
	Refutations      uint64 // own-suspicion refutations (incarnation bumps)
	Revivals         uint64 // suspect/confirmed peers seen alive again —
	// the node's locally observable false positives
	UpdatesSent     uint64 // rumors piggybacked on outgoing messages
	UpdatesReceived uint64 // rumors received
	UpdatesIgnored  uint64 // rumors dropped (stale incarnation or freshness guard)
}

// memberState is the detector's opinion of one remote member.
type memberState struct {
	status      gossip.MemberStatus
	incarnation uint64
	lastHeard   uint64 // round a message from the member last arrived
	suspectedAt uint64 // round the member became suspect
}

// probeState tracks one outstanding probe.
type probeState struct {
	target     gossip.NodeID
	seq        uint64
	sentAt     uint64
	sentWall   time.Time // wall-clock launch time; zero unless RTT harvesting is on
	indirect   bool      // indirect phase entered
	indirectAt uint64    // round the ping-reqs went out
	done       bool      // acked or resolved; swept on the next tick
}

// relayEntry remembers a ping sent on another node's behalf, so the
// subject's ack can be forwarded back to the original requester.
type relayEntry struct {
	subject   gossip.NodeID
	seq       uint64
	requester gossip.NodeID
	round     uint64
}

// update is a queued rumor with its remaining transmission budget.
type update struct {
	u         gossip.MemberUpdate
	transmits int
}

// OnChangeFunc observes membership-status transitions the detector
// decides or learns: MemberSuspect when suspicion is raised,
// MemberConfirmed when a member is declared crashed (drivers evict it
// from registries and partial views here), and MemberAlive when a
// suspected or confirmed member proves to be alive after all (drivers
// re-admit it). The callback runs synchronously on the driver's thread.
type OnChangeFunc func(id gossip.NodeID, status gossip.MemberStatus)

// Engine is the per-node SWIM state machine. It implements
// gossip.Extension (probing and rumor piggybacking from OnTick, probe
// handling and rumor application from OnReceive) and queues the probe
// messages drivers must send.
type Engine struct {
	self   gossip.NodeID
	params Params
	peers  gossip.PeerSampler
	rng    *rand.Rand

	onChange OnChangeFunc

	round       uint64
	incarnation uint64
	nextSeq     uint64

	members map[gossip.NodeID]*memberState
	// suspectOrder holds suspects in suspicion order for the
	// deterministic confirm sweep; entries may be stale.
	suspectOrder []gossip.NodeID

	probes     map[gossip.NodeID]*probeState
	probeOrder []*probeState // insertion order for deterministic sweeps

	relays []relayEntry

	// links receives ping→ack round-trip observations per peer; nil
	// (the default) keeps probes wall-clock-free so simulations stay
	// deterministic. now is consulted only when links is set.
	links *observe.PeerTable
	now   func() time.Time

	queue   []update
	pending []gossip.Outgoing
	stats   Stats
}

// NewEngine builds a detector for the node self, sampling probe targets
// from peers with randomness from rng (inject a seeded generator for
// deterministic simulation).
func NewEngine(self gossip.NodeID, params Params, peers gossip.PeerSampler, rng *rand.Rand) (*Engine, error) {
	params = params.withDefaults()
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if self == "" {
		return nil, fmt.Errorf("failure: self id must not be empty")
	}
	if peers == nil {
		return nil, fmt.Errorf("failure: peer sampler must not be nil")
	}
	if rng == nil {
		return nil, fmt.Errorf("failure: rng must not be nil")
	}
	return &Engine{
		self:    self,
		params:  params,
		peers:   peers,
		rng:     rng,
		now:     time.Now,
		members: make(map[gossip.NodeID]*memberState),
		probes:  make(map[gossip.NodeID]*probeState),
	}, nil
}

// SetOnChange installs the membership-transition callback.
func (e *Engine) SetOnChange(fn OnChangeFunc) { e.onChange = fn }

// SetLinks turns on per-peer RTT harvesting: each direct ping→ack
// round trip is observed into the target's RTTMicros histogram in the
// table. The detector's probes double as the cluster's latency sensors
// — no extra traffic. nil disables harvesting (the default; probes
// then never read the wall clock, keeping simulations deterministic).
func (e *Engine) SetLinks(t *observe.PeerTable) { e.links = t }

// SetClock overrides the wall-clock source used for RTT measurement
// (tests). The clock is only read while links are installed.
func (e *Engine) SetClock(fn func() time.Time) {
	if fn != nil {
		e.now = fn
	}
}

// Params returns the engine's effective parameters.
func (e *Engine) Params() Params { return e.params }

// Stats returns a copy of the activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// Incarnation returns the node's own incarnation number.
func (e *Engine) Incarnation() uint64 { return e.incarnation }

// Status reports the detector's current opinion of a member
// (MemberAlive for unknown members).
func (e *Engine) Status(id gossip.NodeID) gossip.MemberStatus {
	if st, ok := e.members[id]; ok {
		return st.status
	}
	return gossip.MemberAlive
}

// Rejoin resets the detector to a freshly-restarted process: all remote
// opinions and outstanding probes are dropped, the incarnation is
// bumped past anything the group may have gossiped about the old
// process, and an alive announcement is queued so the group re-admits
// the node quickly.
func (e *Engine) Rejoin() {
	e.members = make(map[gossip.NodeID]*memberState)
	e.suspectOrder = nil
	e.probes = make(map[gossip.NodeID]*probeState)
	e.probeOrder = nil
	e.relays = nil
	e.queue = nil
	e.pending = nil
	e.incarnation++
	e.queueUpdate(gossip.MemberUpdate{Node: e.self, Status: gossip.MemberAlive, Incarnation: e.incarnation})
}

// OnTick advances the detector round: relay and probe bookkeeping, the
// suspect→confirm sweep, this round's new probe, and rumor piggybacking
// on the outgoing gossip message.
func (e *Engine) OnTick(n *gossip.Node, out *gossip.Message) {
	e.round++
	e.expireRelays()
	e.sweepProbes()
	e.sweepSuspects()
	if e.params.ProbePeriodRounds > 0 && e.round%uint64(e.params.ProbePeriodRounds) == 0 {
		e.launchProbe()
	}
	e.attachUpdates(out)
}

// OnReceive handles probe traffic and applies piggybacked rumors. Any
// message is proof of life for its sender.
func (e *Engine) OnReceive(n *gossip.Node, in *gossip.Message) {
	// RTT must be captured before heardFrom resolves (and deletes) the
	// probe the ack answers. Only the direct phase measures: a relayed
	// ack's path (requester→proxy→subject→proxy→requester) is not the
	// link round trip.
	if in.Kind == gossip.KindPingAck && e.links != nil && in.From != "" {
		if p, ok := e.probes[in.From]; ok && !p.done && !p.indirect &&
			p.seq == in.ProbeSeq && !p.sentWall.IsZero() {
			if ps := e.links.Get(string(in.From)); ps != nil {
				ps.RTTMicros.ObserveInt(e.now().Sub(p.sentWall).Microseconds())
			}
		}
	}
	if in.From != "" && in.From != e.self {
		e.heardFrom(in.From)
	}
	switch in.Kind {
	case gossip.KindPing:
		e.stats.AcksSent++
		e.send(in.From, &gossip.Message{
			Kind:     gossip.KindPingAck,
			From:     e.self,
			Round:    e.round,
			Probe:    in.Probe,
			ProbeSeq: in.ProbeSeq,
		})
	case gossip.KindPingAck:
		e.stats.AcksReceived++
		if in.Probe != "" && in.Probe != e.self {
			// Relayed ack: the proxy vouches for the subject.
			e.heardFrom(in.Probe)
		}
		e.forwardRelayedAck(in)
	case gossip.KindPingReq:
		e.stats.PingReqsReceived++
		e.handlePingReq(in)
	}
	for _, u := range in.Updates {
		e.applyUpdate(u)
	}
}

// OnEvicted is a no-op; the detector does not track events.
func (e *Engine) OnEvicted(n *gossip.Node, evicted []gossip.Event, reason gossip.EvictReason) {}

// TakeOutgoing drains the queued probe messages (pings, acks and
// ping-reqs). Drivers call it after every Tick and Receive and transmit
// the returned messages.
func (e *Engine) TakeOutgoing() []gossip.Outgoing {
	if len(e.pending) == 0 {
		return nil
	}
	out := e.pending
	e.pending = nil
	return out
}

// send queues one control message, piggybacking rumors on probe kinds
// (not acks: acks are the latency-critical reply path).
func (e *Engine) send(to gossip.NodeID, msg *gossip.Message) {
	if to == "" || to == e.self {
		return
	}
	if msg.Kind == gossip.KindPing || msg.Kind == gossip.KindPingReq {
		e.attachUpdates(msg)
	}
	e.pending = append(e.pending, gossip.Outgoing{To: to, Msg: msg})
}

// state returns the member entry, creating an alive one when within the
// table bound.
func (e *Engine) state(id gossip.NodeID) *memberState {
	if st, ok := e.members[id]; ok {
		return st
	}
	if len(e.members) >= e.params.MaxMembers {
		return nil
	}
	st := &memberState{status: gossip.MemberAlive}
	e.members[id] = st
	return st
}

// heardFrom records direct proof of life: the probe (if any) resolves
// and local suspicion clears. No rumor is queued — only the subject
// itself may refute with a higher incarnation; this is local evidence.
func (e *Engine) heardFrom(id gossip.NodeID) {
	if p, ok := e.probes[id]; ok && !p.done {
		p.done = true
		delete(e.probes, id)
	}
	st := e.state(id)
	if st == nil {
		return
	}
	st.lastHeard = e.round
	if st.status != gossip.MemberAlive {
		st.status = gossip.MemberAlive
		e.stats.Revivals++
		e.notify(id, gossip.MemberAlive)
	}
}

// launchProbe picks a random member and pings it. Members with an
// outstanding probe or a confirmed state are skipped.
func (e *Engine) launchProbe() {
	// Draw a few candidates so an unlucky sample (already probed,
	// already confirmed) does not waste the round.
	candidates := e.peers.SamplePeers(e.self, 3, e.rng)
	for _, target := range candidates {
		if target == e.self {
			continue
		}
		if _, outstanding := e.probes[target]; outstanding {
			continue
		}
		if st, ok := e.members[target]; ok && st.status == gossip.MemberConfirmed {
			continue
		}
		e.nextSeq++
		p := &probeState{target: target, seq: e.nextSeq, sentAt: e.round}
		if e.links != nil {
			p.sentWall = e.now()
		}
		e.probes[target] = p
		e.probeOrder = append(e.probeOrder, p)
		e.stats.ProbesSent++
		e.send(target, &gossip.Message{
			Kind:     gossip.KindPing,
			From:     e.self,
			Round:    e.round,
			ProbeSeq: p.seq,
		})
		return
	}
}

// sweepProbes advances outstanding probes: direct timeout → indirect
// phase, indirect timeout → suspect.
func (e *Engine) sweepProbes() {
	live := e.probeOrder[:0]
	for _, p := range e.probeOrder {
		if p.done {
			continue
		}
		if cur, ok := e.probes[p.target]; !ok || cur != p {
			continue // superseded
		}
		if !p.indirect && e.round-p.sentAt >= uint64(e.params.ProbeTimeoutRounds) {
			p.indirect = true
			p.indirectAt = e.round
			e.sendPingReqs(p)
		}
		if p.indirect && e.round-p.indirectAt >= uint64(e.params.IndirectTimeoutRounds) {
			delete(e.probes, p.target)
			e.suspect(p.target)
			continue
		}
		live = append(live, p)
	}
	e.probeOrder = live
}

// sendPingReqs asks up to IndirectProbes proxies to probe the target.
func (e *Engine) sendPingReqs(p *probeState) {
	if e.params.IndirectProbes <= 0 {
		return
	}
	// Sample extra so filtering out the target still leaves k proxies.
	candidates := e.peers.SamplePeers(e.self, e.params.IndirectProbes+1, e.rng)
	sent := 0
	for _, proxy := range candidates {
		if proxy == p.target || proxy == e.self || sent >= e.params.IndirectProbes {
			continue
		}
		if st, ok := e.members[proxy]; ok && st.status != gossip.MemberAlive {
			continue
		}
		sent++
		e.stats.PingReqsSent++
		e.send(proxy, &gossip.Message{
			Kind:     gossip.KindPingReq,
			From:     e.self,
			Round:    e.round,
			Probe:    p.target,
			ProbeSeq: p.seq,
		})
	}
}

// handlePingReq probes the subject on the requester's behalf.
func (e *Engine) handlePingReq(in *gossip.Message) {
	subject := in.Probe
	if subject == "" || in.From == "" {
		return
	}
	if subject == e.self {
		// Degenerate: we are the subject; answer directly.
		e.stats.AcksSent++
		e.send(in.From, &gossip.Message{
			Kind:     gossip.KindPingAck,
			From:     e.self,
			Round:    e.round,
			Probe:    e.self,
			ProbeSeq: in.ProbeSeq,
		})
		return
	}
	e.relays = append(e.relays, relayEntry{
		subject:   subject,
		seq:       in.ProbeSeq,
		requester: in.From,
		round:     e.round,
	})
	e.stats.ProbesRelayed++
	e.send(subject, &gossip.Message{
		Kind:     gossip.KindPing,
		From:     e.self,
		Round:    e.round,
		ProbeSeq: in.ProbeSeq,
	})
}

// forwardRelayedAck forwards a subject's ack to the requester that
// asked us to probe it.
func (e *Engine) forwardRelayedAck(in *gossip.Message) {
	for i := range e.relays {
		r := &e.relays[i]
		if r.subject != in.From || r.seq != in.ProbeSeq {
			continue
		}
		e.stats.AcksRelayed++
		e.send(r.requester, &gossip.Message{
			Kind:     gossip.KindPingAck,
			From:     e.self,
			Round:    e.round,
			Probe:    r.subject,
			ProbeSeq: r.seq,
		})
		e.relays = append(e.relays[:i], e.relays[i+1:]...)
		return
	}
}

// expireRelays drops relay entries older than the indirect window.
func (e *Engine) expireRelays() {
	horizon := uint64(e.params.IndirectTimeoutRounds + e.params.ProbeTimeoutRounds + 1)
	live := e.relays[:0]
	for _, r := range e.relays {
		if e.round-r.round <= horizon {
			live = append(live, r)
		}
	}
	e.relays = live
}

// suspect raises local suspicion from probe evidence.
func (e *Engine) suspect(id gossip.NodeID) {
	st := e.state(id)
	if st == nil || st.status != gossip.MemberAlive {
		return
	}
	st.status = gossip.MemberSuspect
	st.suspectedAt = e.round
	e.suspectOrder = append(e.suspectOrder, id)
	e.stats.Suspects++
	e.queueUpdate(gossip.MemberUpdate{Node: id, Status: gossip.MemberSuspect, Incarnation: st.incarnation})
	e.notify(id, gossip.MemberSuspect)
}

// sweepSuspects hardens expired suspicions into confirms.
func (e *Engine) sweepSuspects() {
	live := e.suspectOrder[:0]
	for _, id := range e.suspectOrder {
		st, ok := e.members[id]
		if !ok || st.status != gossip.MemberSuspect {
			continue // refuted or already confirmed
		}
		if e.round-st.suspectedAt < uint64(e.params.SuspicionTimeoutRounds) {
			live = append(live, id)
			continue
		}
		st.status = gossip.MemberConfirmed
		e.stats.Confirms++
		e.queueUpdate(gossip.MemberUpdate{Node: id, Status: gossip.MemberConfirmed, Incarnation: st.incarnation})
		e.notify(id, gossip.MemberConfirmed)
	}
	e.suspectOrder = live
}

// applyUpdate folds one received rumor into local state, following
// SWIM's precedence: alive{i} refutes suspect/confirm{j} iff i > j;
// suspect/confirm{i} overrides alive{j} iff i >= j; confirm overrides
// suspect at the same incarnation. Rumors that change our opinion are
// re-queued so they keep spreading epidemically.
func (e *Engine) applyUpdate(u gossip.MemberUpdate) {
	e.stats.UpdatesReceived++
	if u.Node == e.self {
		if u.Status != gossip.MemberAlive && u.Incarnation >= e.incarnation {
			// We are being suspected (or buried). Refute: bump past the
			// rumor's incarnation and reannounce.
			e.incarnation = u.Incarnation + 1
			e.stats.Refutations++
			e.queueUpdate(gossip.MemberUpdate{Node: e.self, Status: gossip.MemberAlive, Incarnation: e.incarnation})
		}
		return
	}
	st := e.state(u.Node)
	if st == nil {
		e.stats.UpdatesIgnored++
		return
	}
	apply := false
	switch u.Status {
	case gossip.MemberAlive:
		apply = u.Incarnation > st.incarnation ||
			(u.Incarnation == st.incarnation && st.status == gossip.MemberAlive)
	case gossip.MemberSuspect:
		apply = (u.Incarnation >= st.incarnation && st.status == gossip.MemberAlive) ||
			u.Incarnation > st.incarnation
	case gossip.MemberConfirmed:
		apply = u.Incarnation >= st.incarnation && st.status != gossip.MemberConfirmed
	}
	if apply && u.Status != gossip.MemberAlive &&
		e.round-st.lastHeard < uint64(e.params.FreshnessRounds) && st.lastHeard > 0 {
		// Freshness guard: we are actively hearing from this node;
		// the rumor is stale, whatever its incarnation claims.
		apply = false
	}
	if !apply {
		e.stats.UpdatesIgnored++
		return
	}
	prev := st.status
	st.incarnation = u.Incarnation
	if u.Status == st.status {
		return
	}
	st.status = u.Status
	switch u.Status {
	case gossip.MemberSuspect:
		st.suspectedAt = e.round
		e.suspectOrder = append(e.suspectOrder, u.Node)
	case gossip.MemberAlive:
		if prev != gossip.MemberAlive {
			e.stats.Revivals++
		}
	}
	e.queueUpdate(u)
	e.notify(u.Node, u.Status)
}

// queueUpdate enqueues a rumor for piggybacked dissemination,
// replacing any queued rumor about the same node.
func (e *Engine) queueUpdate(u gossip.MemberUpdate) {
	for i := range e.queue {
		if e.queue[i].u.Node == u.Node {
			e.queue[i] = update{u: u, transmits: e.params.UpdateTransmits}
			return
		}
	}
	e.queue = append(e.queue, update{u: u, transmits: e.params.UpdateTransmits})
}

// attachUpdates piggybacks up to UpdatesPerMessage queued rumors onto
// an outgoing message, consuming their transmission budget. Rumors are
// taken in queue order; exhausted ones are dropped.
func (e *Engine) attachUpdates(out *gossip.Message) {
	if len(e.queue) == 0 {
		return
	}
	attached := 0
	live := e.queue[:0]
	for i := range e.queue {
		q := e.queue[i]
		if attached < e.params.UpdatesPerMessage && q.transmits > 0 {
			out.Updates = append(out.Updates, q.u)
			q.transmits--
			attached++
			e.stats.UpdatesSent++
		}
		if q.transmits > 0 {
			live = append(live, q)
		}
	}
	e.queue = live
}

// notify fires the transition callback, if installed.
func (e *Engine) notify(id gossip.NodeID, status gossip.MemberStatus) {
	if e.onChange != nil {
		e.onChange(id, status)
	}
}

var _ gossip.Extension = (*Engine)(nil)

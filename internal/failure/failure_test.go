package failure

import (
	"math/rand/v2"
	"testing"

	"adaptivegossip/internal/gossip"
)

// staticPeers is a deterministic sampler over a fixed list: it always
// returns the first k non-self members in order, which unit tests use
// to pin the probe target.
type staticPeers struct{ ids []gossip.NodeID }

func (s staticPeers) SamplePeers(self gossip.NodeID, k int, rng *rand.Rand) []gossip.NodeID {
	out := make([]gossip.NodeID, 0, k)
	for _, id := range s.ids {
		if id == self {
			continue
		}
		out = append(out, id)
		if len(out) == k {
			break
		}
	}
	return out
}

// randPeers samples uniformly, like membership.Registry.
type randPeers struct{ ids []gossip.NodeID }

func (s randPeers) SamplePeers(self gossip.NodeID, k int, rng *rand.Rand) []gossip.NodeID {
	pool := make([]gossip.NodeID, 0, len(s.ids))
	for _, id := range s.ids {
		if id != self {
			pool = append(pool, id)
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if k < len(pool) {
		pool = pool[:k]
	}
	return pool
}

func newTestEngine(t *testing.T, self gossip.NodeID, peers []gossip.NodeID, p Params) *Engine {
	t.Helper()
	e, err := NewEngine(self, p, staticPeers{ids: peers}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// tick runs one OnTick round and returns the outgoing gossip message
// plus the drained control messages.
func tick(e *Engine) (*gossip.Message, []gossip.Outgoing) {
	msg := &gossip.Message{Kind: gossip.KindGossip, From: e.self}
	e.OnTick(nil, msg)
	return msg, e.TakeOutgoing()
}

func kindsOf(outs []gossip.Outgoing) map[gossip.MessageKind]int {
	m := make(map[gossip.MessageKind]int)
	for _, o := range outs {
		m[o.Msg.Kind]++
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{}).Validate(); err != nil {
		t.Fatalf("zero params invalid: %v", err)
	}
	if err := (Params{IndirectProbes: -1}).Validate(); err == nil {
		t.Fatal("negative indirect probes accepted")
	}
	if err := (Params{SuspicionTimeoutRounds: -1}).Validate(); err == nil {
		t.Fatal("negative suspicion timeout accepted")
	}
}

func TestNewEngineRejectsBadArgs(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := NewEngine("", Params{}, staticPeers{}, rng); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := NewEngine("a", Params{}, nil, rng); err == nil {
		t.Fatal("nil sampler accepted")
	}
	if _, err := NewEngine("a", Params{}, staticPeers{}, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

// TestDirectProbeAck: a probe answered in time leaves the target alive
// and clears the outstanding probe.
func TestDirectProbeAck(t *testing.T) {
	e := newTestEngine(t, "a", []gossip.NodeID{"b"}, Params{Enabled: true})
	_, outs := tick(e)
	if kindsOf(outs)[gossip.KindPing] != 1 {
		t.Fatalf("expected one ping, got %v", kindsOf(outs))
	}
	ping := outs[0].Msg
	if outs[0].To != "b" || ping.From != "a" {
		t.Fatalf("ping misaddressed: to=%s from=%s", outs[0].To, ping.From)
	}
	// b answers.
	e.OnReceive(nil, &gossip.Message{Kind: gossip.KindPingAck, From: "b", ProbeSeq: ping.ProbeSeq})
	if got := e.Stats().AcksReceived; got != 1 {
		t.Fatalf("AcksReceived = %d, want 1", got)
	}
	// Several more rounds: no suspicion.
	for i := 0; i < 10; i++ {
		tick(e)
		// Keep answering so subsequent probes resolve too.
		for _, o := range e.TakeOutgoing() {
			_ = o
		}
		e.OnReceive(nil, &gossip.Message{Kind: gossip.KindGossip, From: "b"})
	}
	if e.Status("b") != gossip.MemberAlive {
		t.Fatalf("b = %v, want alive", e.Status("b"))
	}
	if e.Stats().Suspects != 0 {
		t.Fatalf("suspicions raised on an answering peer: %+v", e.Stats())
	}
}

// TestIndirectProbeThenSuspectThenConfirm walks the full SWIM
// escalation for a silent target.
func TestIndirectProbeThenSuspectThenConfirm(t *testing.T) {
	p := Params{
		Enabled:                true,
		ProbeTimeoutRounds:     1,
		IndirectTimeoutRounds:  1,
		IndirectProbes:         2,
		SuspicionTimeoutRounds: 2,
	}
	var transitions []string
	e := newTestEngine(t, "a", []gossip.NodeID{"b", "c", "d", "x"}, p)
	e.SetOnChange(func(id gossip.NodeID, st gossip.MemberStatus) {
		transitions = append(transitions, string(id)+":"+st.String())
	})
	// Round 1: ping b (first sampled target). b never answers; keep the
	// proxies fresh so ping-reqs go to them.
	_, outs := tick(e)
	if kindsOf(outs)[gossip.KindPing] != 1 {
		t.Fatalf("round 1: expected ping, got %v", kindsOf(outs))
	}
	target := outs[0].To

	// Round 2: direct timeout → ping-reqs to proxies; plus this round's
	// new probe of some other member.
	_, outs = tick(e)
	if got := kindsOf(outs)[gossip.KindPingReq]; got != p.IndirectProbes {
		t.Fatalf("round 2: %d ping-reqs, want %d (outs %v)", got, p.IndirectProbes, kindsOf(outs))
	}
	for _, o := range outs {
		if o.Msg.Kind == gossip.KindPingReq {
			if o.To == target {
				t.Fatal("ping-req sent to the probed target itself")
			}
			if o.Msg.Probe != target {
				t.Fatalf("ping-req subject = %s, want %s", o.Msg.Probe, target)
			}
		}
	}

	// Round 3: indirect timeout → suspect.
	tick(e)
	if e.Status(target) != gossip.MemberSuspect {
		t.Fatalf("after indirect timeout: %v, want suspect", e.Status(target))
	}
	if e.Stats().Suspects != 1 {
		t.Fatalf("Suspects = %d, want 1", e.Stats().Suspects)
	}

	// Two more rounds: suspicion timeout → confirm, callback fired,
	// confirm rumor piggybacked on the gossip message.
	tick(e)
	msg, _ := tick(e)
	if e.Status(target) != gossip.MemberConfirmed {
		t.Fatalf("after suspicion timeout: %v, want confirmed", e.Status(target))
	}
	found := false
	for _, u := range msg.Updates {
		if u.Node == target && u.Status == gossip.MemberConfirmed {
			found = true
		}
	}
	if !found {
		t.Fatalf("confirm rumor not piggybacked: %+v", msg.Updates)
	}
	// Other silent members get suspected too; check the probed target's
	// own transition sequence.
	var targetSeq []string
	for _, tr := range transitions {
		if len(tr) > len(target) && tr[:len(target)] == string(target) {
			targetSeq = append(targetSeq, tr)
		}
	}
	wantSeq := []string{string(target) + ":suspect", string(target) + ":confirmed"}
	if len(targetSeq) != 2 || targetSeq[0] != wantSeq[0] || targetSeq[1] != wantSeq[1] {
		t.Fatalf("target transitions = %v, want %v", targetSeq, wantSeq)
	}
}

// TestProofOfLifeRevivesSuspect: any direct message clears suspicion
// and fires the alive callback.
func TestProofOfLifeRevivesSuspect(t *testing.T) {
	p := Params{Enabled: true, SuspicionTimeoutRounds: 10}
	e := newTestEngine(t, "a", []gossip.NodeID{"b"}, p)
	var alive []gossip.NodeID
	e.SetOnChange(func(id gossip.NodeID, st gossip.MemberStatus) {
		if st == gossip.MemberAlive {
			alive = append(alive, id)
		}
	})
	for i := 0; i < 5; i++ {
		tick(e)
	}
	if e.Status("b") != gossip.MemberSuspect {
		t.Fatalf("b = %v, want suspect", e.Status("b"))
	}
	e.OnReceive(nil, &gossip.Message{Kind: gossip.KindGossip, From: "b"})
	if e.Status("b") != gossip.MemberAlive {
		t.Fatalf("b = %v after direct contact, want alive", e.Status("b"))
	}
	if len(alive) != 1 || alive[0] != "b" {
		t.Fatalf("alive callbacks = %v, want [b]", alive)
	}
	if e.Stats().Revivals != 1 {
		t.Fatalf("Revivals = %d, want 1", e.Stats().Revivals)
	}
}

// TestSelfRefutation: a suspect rumor about ourselves bumps the
// incarnation and queues an alive announcement.
func TestSelfRefutation(t *testing.T) {
	e := newTestEngine(t, "a", []gossip.NodeID{"b"}, Params{Enabled: true})
	e.OnReceive(nil, &gossip.Message{
		Kind: gossip.KindGossip, From: "b",
		Updates: []gossip.MemberUpdate{{Node: "a", Status: gossip.MemberSuspect, Incarnation: 0}},
	})
	if e.Incarnation() != 1 {
		t.Fatalf("incarnation = %d, want 1", e.Incarnation())
	}
	if e.Stats().Refutations != 1 {
		t.Fatalf("Refutations = %d, want 1", e.Stats().Refutations)
	}
	msg, _ := tick(e)
	found := false
	for _, u := range msg.Updates {
		if u.Node == "a" && u.Status == gossip.MemberAlive && u.Incarnation == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("refutation not piggybacked: %+v", msg.Updates)
	}
}

// TestAliveRumorRefutesSuspicionOnlyWithHigherIncarnation enforces
// SWIM's ordering.
func TestAliveRumorRefutesSuspicionOnlyWithHigherIncarnation(t *testing.T) {
	e := newTestEngine(t, "a", []gossip.NodeID{"b", "c"}, Params{Enabled: true, FreshnessRounds: 1})
	// Make round > FreshnessRounds so the guard cannot mask precedence.
	for i := 0; i < 3; i++ {
		tick(e)
	}
	e.applyUpdate(gossip.MemberUpdate{Node: "z", Status: gossip.MemberSuspect, Incarnation: 3})
	if e.Status("z") != gossip.MemberSuspect {
		t.Fatalf("z = %v, want suspect", e.Status("z"))
	}
	// Same incarnation: no refutation.
	e.applyUpdate(gossip.MemberUpdate{Node: "z", Status: gossip.MemberAlive, Incarnation: 3})
	if e.Status("z") != gossip.MemberSuspect {
		t.Fatalf("same-incarnation alive refuted suspicion")
	}
	// Higher incarnation: refuted.
	e.applyUpdate(gossip.MemberUpdate{Node: "z", Status: gossip.MemberAlive, Incarnation: 4})
	if e.Status("z") != gossip.MemberAlive {
		t.Fatalf("higher-incarnation alive did not refute: %v", e.Status("z"))
	}
	// Confirm beats alive at the same incarnation.
	e.applyUpdate(gossip.MemberUpdate{Node: "z", Status: gossip.MemberConfirmed, Incarnation: 4})
	if e.Status("z") != gossip.MemberConfirmed {
		t.Fatalf("same-incarnation confirm ignored: %v", e.Status("z"))
	}
	// A rejoin announcement (higher incarnation) revives even confirmed.
	e.applyUpdate(gossip.MemberUpdate{Node: "z", Status: gossip.MemberAlive, Incarnation: 5})
	if e.Status("z") != gossip.MemberAlive {
		t.Fatalf("rejoin alive ignored after confirm: %v", e.Status("z"))
	}
}

// TestFreshnessGuardIgnoresStaleRumors: suspect/confirm rumors about a
// node we are actively hearing from are dropped.
func TestFreshnessGuardIgnoresStaleRumors(t *testing.T) {
	e := newTestEngine(t, "a", []gossip.NodeID{"b", "c"}, Params{Enabled: true, FreshnessRounds: 3})
	for i := 0; i < 5; i++ {
		tick(e)
		e.OnReceive(nil, &gossip.Message{Kind: gossip.KindGossip, From: "c"})
	}
	before := e.Stats().UpdatesIgnored
	e.OnReceive(nil, &gossip.Message{
		Kind: gossip.KindGossip, From: "b",
		Updates: []gossip.MemberUpdate{{Node: "c", Status: gossip.MemberConfirmed, Incarnation: 9}},
	})
	if e.Status("c") != gossip.MemberAlive {
		t.Fatalf("fresh peer buried by stale rumor: %v", e.Status("c"))
	}
	if e.Stats().UpdatesIgnored != before+1 {
		t.Fatalf("UpdatesIgnored = %d, want %d", e.Stats().UpdatesIgnored, before+1)
	}
}

// TestPingReqRelay: a proxy probes the subject on the requester's
// behalf and forwards the ack back.
func TestPingReqRelay(t *testing.T) {
	e := newTestEngine(t, "p", []gossip.NodeID{"a", "b"}, Params{Enabled: true})
	e.OnReceive(nil, &gossip.Message{Kind: gossip.KindPingReq, From: "a", Probe: "b", ProbeSeq: 77})
	outs := e.TakeOutgoing()
	if len(outs) != 1 || outs[0].To != "b" || outs[0].Msg.Kind != gossip.KindPing || outs[0].Msg.ProbeSeq != 77 {
		t.Fatalf("relay ping wrong: %+v", outs)
	}
	// Subject answers the proxy.
	e.OnReceive(nil, &gossip.Message{Kind: gossip.KindPingAck, From: "b", ProbeSeq: 77})
	outs = e.TakeOutgoing()
	if len(outs) != 1 || outs[0].To != "a" || outs[0].Msg.Kind != gossip.KindPingAck ||
		outs[0].Msg.Probe != "b" || outs[0].Msg.ProbeSeq != 77 {
		t.Fatalf("relayed ack wrong: %+v", outs)
	}
	st := e.Stats()
	if st.ProbesRelayed != 1 || st.AcksRelayed != 1 {
		t.Fatalf("relay counters: %+v", st)
	}
}

// TestRelayedAckClearsRequesterProbe: the requester treats a relayed
// ack as proof of the subject's liveness.
func TestRelayedAckClearsRequesterProbe(t *testing.T) {
	p := Params{Enabled: true, ProbeTimeoutRounds: 1, IndirectTimeoutRounds: 5, SuspicionTimeoutRounds: 2}
	e := newTestEngine(t, "a", []gossip.NodeID{"b", "c"}, p)
	_, outs := tick(e) // ping b
	seq := outs[0].Msg.ProbeSeq
	tick(e) // direct timeout → ping-req phase
	// Proxy c relays b's ack.
	e.OnReceive(nil, &gossip.Message{Kind: gossip.KindPingAck, From: "c", Probe: "b", ProbeSeq: seq})
	for i := 0; i < 10; i++ {
		tick(e)
		e.OnReceive(nil, &gossip.Message{Kind: gossip.KindGossip, From: "b"})
		e.OnReceive(nil, &gossip.Message{Kind: gossip.KindGossip, From: "c"})
	}
	if e.Status("b") != gossip.MemberAlive {
		t.Fatalf("b = %v after relayed ack, want alive", e.Status("b"))
	}
	if e.Stats().Suspects != 0 {
		t.Fatalf("suspicion raised despite relayed ack: %+v", e.Stats())
	}
}

// TestUpdateTransmitBudget: a rumor rides at most UpdateTransmits
// outgoing messages.
func TestUpdateTransmitBudget(t *testing.T) {
	p := Params{Enabled: true, UpdateTransmits: 3, UpdatesPerMessage: 8, ProbePeriodRounds: 100}
	e := newTestEngine(t, "a", nil, p)
	e.queueUpdate(gossip.MemberUpdate{Node: "x", Status: gossip.MemberConfirmed, Incarnation: 1})
	rides := 0
	for i := 0; i < 10; i++ {
		msg, _ := tick(e)
		for _, u := range msg.Updates {
			if u.Node == "x" {
				rides++
			}
		}
	}
	if rides != 3 {
		t.Fatalf("rumor rode %d messages, want 3", rides)
	}
}

// TestUpdatesPerMessageBound: piggyback volume per message is capped.
func TestUpdatesPerMessageBound(t *testing.T) {
	p := Params{Enabled: true, UpdatesPerMessage: 2, UpdateTransmits: 1, ProbePeriodRounds: 100}
	e := newTestEngine(t, "a", nil, p)
	for i := 0; i < 5; i++ {
		e.queueUpdate(gossip.MemberUpdate{
			Node: gossip.NodeID([]byte{'m', byte('0' + i)}), Status: gossip.MemberSuspect,
		})
	}
	msg, _ := tick(e)
	if len(msg.Updates) != 2 {
		t.Fatalf("piggybacked %d updates, want 2", len(msg.Updates))
	}
	msg, _ = tick(e)
	if len(msg.Updates) != 2 {
		t.Fatalf("second round piggybacked %d updates, want 2", len(msg.Updates))
	}
}

// TestRejoinResetsStateAndAnnounces models a process restart.
func TestRejoinResetsStateAndAnnounces(t *testing.T) {
	e := newTestEngine(t, "a", []gossip.NodeID{"b"}, Params{Enabled: true, SuspicionTimeoutRounds: 1})
	for i := 0; i < 6; i++ {
		tick(e)
	}
	if e.Status("b") == gossip.MemberAlive {
		t.Fatal("precondition: b should be suspect/confirmed by now")
	}
	e.Rejoin()
	if e.Status("b") != gossip.MemberAlive {
		t.Fatalf("rejoin kept old opinion of b: %v", e.Status("b"))
	}
	if e.Incarnation() != 1 {
		t.Fatalf("incarnation = %d after rejoin, want 1", e.Incarnation())
	}
	msg, _ := tick(e)
	found := false
	for _, u := range msg.Updates {
		if u.Node == "a" && u.Status == gossip.MemberAlive && u.Incarnation == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("rejoin announcement missing: %+v", msg.Updates)
	}
}

// TestGroupDetectsCrashedMember drives four engines against each other
// with hand-routed messages, crashes one, and checks the survivors
// confirm it while never confirming each other.
func TestGroupDetectsCrashedMember(t *testing.T) {
	ids := []gossip.NodeID{"a", "b", "c", "d"}
	p := Params{
		Enabled:                true,
		ProbeTimeoutRounds:     1,
		IndirectTimeoutRounds:  1,
		IndirectProbes:         2,
		SuspicionTimeoutRounds: 2,
		FreshnessRounds:        2,
	}
	engines := make(map[gossip.NodeID]*Engine, len(ids))
	for i, id := range ids {
		e, err := NewEngine(id, p, randPeers{ids: ids}, rand.New(rand.NewPCG(uint64(i)+1, 99)))
		if err != nil {
			t.Fatal(err)
		}
		engines[id] = e
	}
	crashed := gossip.NodeID("d")
	down := false
	var route func(from gossip.NodeID, outs []gossip.Outgoing)
	route = func(from gossip.NodeID, outs []gossip.Outgoing) {
		for _, o := range outs {
			if down && (o.To == crashed || from == crashed) {
				continue
			}
			target := engines[o.To]
			target.OnReceive(nil, o.Msg)
			route(o.To, target.TakeOutgoing())
		}
	}
	runRound := func() {
		for _, id := range ids {
			if down && id == crashed {
				continue
			}
			e := engines[id]
			msg := &gossip.Message{Kind: gossip.KindGossip, From: id}
			e.OnTick(nil, msg)
			route(id, e.TakeOutgoing())
			// The gossip message itself fans out to everyone (stands in
			// for the protocol's Fanout targets).
			for _, other := range ids {
				if other == id || (down && other == crashed) {
					continue
				}
				engines[other].OnReceive(nil, msg)
				route(other, engines[other].TakeOutgoing())
			}
		}
	}
	for i := 0; i < 5; i++ {
		runRound()
	}
	down = true
	confirmedAt := -1
	for i := 0; i < 30; i++ {
		runRound()
		all := true
		for _, id := range ids[:3] {
			if engines[id].Status(crashed) != gossip.MemberConfirmed {
				all = false
			}
		}
		if all {
			confirmedAt = i
			break
		}
	}
	if confirmedAt < 0 {
		for _, id := range ids[:3] {
			t.Logf("%s: status(d)=%v stats=%+v", id, engines[id].Status(crashed), engines[id].Stats())
		}
		t.Fatal("survivors never all confirmed the crashed member")
	}
	// No survivor may have confirmed another survivor.
	for _, id := range ids[:3] {
		for _, other := range ids[:3] {
			if id == other {
				continue
			}
			if st := engines[id].Status(other); st == gossip.MemberConfirmed {
				t.Fatalf("%s confirmed live member %s", id, other)
			}
		}
	}
	t.Logf("all survivors confirmed %s within %d rounds after crash", crashed, confirmedAt+1)
}

package failure

import (
	"math/rand/v2"
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/observe"
)

// TestProbeRTTHarvest: a direct ping→ack round trip lands one RTT
// observation in the target's per-peer histogram; relayed acks and
// repeated acks for the same probe do not.
func TestProbeRTTHarvest(t *testing.T) {
	e, err := NewEngine("a", Params{Enabled: true}, staticPeers{ids: []gossip.NodeID{"b", "c"}}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	links := observe.NewPeerTable(8)
	e.SetLinks(links)
	now := time.Unix(100, 0)
	e.SetClock(func() time.Time { return now })

	_, outs := tick(e)
	if kindsOf(outs)[gossip.KindPing] != 1 {
		t.Fatalf("expected one ping, got %v", kindsOf(outs))
	}
	ping := outs[0].Msg
	target := outs[0].To

	now = now.Add(1500 * time.Microsecond)
	e.OnReceive(nil, &gossip.Message{Kind: gossip.KindPingAck, From: target, ProbeSeq: ping.ProbeSeq})

	snap := links.Get(string(target)).RTTMicros.Snapshot()
	if snap.Count != 1 || snap.Sum != 1500 {
		t.Fatalf("RTT histogram = count %d sum %d, want 1/1500", snap.Count, snap.Sum)
	}

	// A duplicate ack for the resolved probe adds nothing.
	e.OnReceive(nil, &gossip.Message{Kind: gossip.KindPingAck, From: target, ProbeSeq: ping.ProbeSeq})
	if got := links.Get(string(target)).RTTMicros.Snapshot().Count; got != 1 {
		t.Fatalf("duplicate ack observed: count %d", got)
	}
}

// TestProbeRTTSkipsIndirectAcks: once the probe enters the indirect
// phase the eventual ack no longer measures the direct link.
func TestProbeRTTSkipsIndirectAcks(t *testing.T) {
	e, err := NewEngine("a", Params{Enabled: true, ProbeTimeoutRounds: 1},
		staticPeers{ids: []gossip.NodeID{"b", "c", "d"}}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	links := observe.NewPeerTable(8)
	e.SetLinks(links)
	now := time.Unix(100, 0)
	e.SetClock(func() time.Time { return now })

	_, outs := tick(e)
	ping := outs[0].Msg
	target := outs[0].To
	tick(e) // direct timeout: indirect phase begins
	now = now.Add(time.Millisecond)
	e.OnReceive(nil, &gossip.Message{Kind: gossip.KindPingAck, From: target, ProbeSeq: ping.ProbeSeq})
	if ps := links.Get(string(target)); ps.RTTMicros.Snapshot().Count != 0 {
		t.Fatalf("indirect-phase ack observed as direct RTT")
	}
}

// TestProbeNoWallClockWithoutLinks: with no peer table installed,
// probes never stamp wall-clock state.
func TestProbeNoWallClockWithoutLinks(t *testing.T) {
	e := newTestEngine(t, "a", []gossip.NodeID{"b"}, Params{Enabled: true})
	tick(e)
	for _, p := range e.probeOrder {
		if !p.sentWall.IsZero() {
			t.Fatal("probe stamped wall clock with RTT harvesting off")
		}
	}
}

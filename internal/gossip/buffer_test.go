package gossip

import (
	"math/rand/v2"
	"testing"
)

func mkEvent(origin string, seq uint64, age int) Event {
	return Event{ID: EventID{Origin: NodeID(origin), Seq: seq}, Age: age}
}

func mustBuffer(t *testing.T, capacity int) *Buffer {
	t.Helper()
	b, err := NewBuffer(capacity)
	if err != nil {
		t.Fatalf("NewBuffer(%d): %v", capacity, err)
	}
	return b
}

func mustAdd(t *testing.T, b *Buffer, ev Event) []Event {
	t.Helper()
	evicted, err := b.Add(ev)
	if err != nil {
		t.Fatalf("Add(%v): %v", ev.ID, err)
	}
	return evicted
}

func TestNewBufferRejectsNonPositiveCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1, -100} {
		if _, err := NewBuffer(capacity); err == nil {
			t.Errorf("NewBuffer(%d): want error, got nil", capacity)
		}
	}
}

func TestBufferAddAndLen(t *testing.T) {
	b := mustBuffer(t, 3)
	for i := uint64(0); i < 3; i++ {
		if ev := mustAdd(t, b, mkEvent("a", i, 0)); len(ev) != 0 {
			t.Fatalf("unexpected eviction %v", ev)
		}
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferDuplicateAddFails(t *testing.T) {
	b := mustBuffer(t, 3)
	mustAdd(t, b, mkEvent("a", 1, 0))
	if _, err := b.Add(mkEvent("a", 1, 5)); err == nil {
		t.Fatal("duplicate Add: want error, got nil")
	}
}

func TestBufferEvictsHighestAgeFirst(t *testing.T) {
	b := mustBuffer(t, 3)
	mustAdd(t, b, mkEvent("a", 1, 5))
	mustAdd(t, b, mkEvent("a", 2, 2))
	mustAdd(t, b, mkEvent("a", 3, 7))
	evicted := mustAdd(t, b, mkEvent("a", 4, 1))
	if len(evicted) != 1 || evicted[0].ID.Seq != 3 {
		t.Fatalf("evicted %v, want event seq 3 (age 7)", evicted)
	}
}

func TestBufferEvictionTieBreaksOnResidency(t *testing.T) {
	b := mustBuffer(t, 2)
	mustAdd(t, b, mkEvent("a", 1, 4)) // resident longer
	mustAdd(t, b, mkEvent("a", 2, 4))
	evicted := mustAdd(t, b, mkEvent("a", 3, 0))
	if len(evicted) != 1 || evicted[0].ID.Seq != 1 {
		t.Fatalf("evicted %v, want the longest-resident of the tied ages (seq 1)", evicted)
	}
}

func TestBufferEvictsOldestEvenIfItIsTheNewcomer(t *testing.T) {
	b := mustBuffer(t, 2)
	mustAdd(t, b, mkEvent("a", 1, 1))
	mustAdd(t, b, mkEvent("a", 2, 2))
	// Newcomer is older than everything buffered: it is the victim.
	evicted := mustAdd(t, b, mkEvent("a", 3, 9))
	if len(evicted) != 1 || evicted[0].ID.Seq != 3 {
		t.Fatalf("evicted %v, want the old newcomer itself (seq 3)", evicted)
	}
	if b.Contains(EventID{Origin: "a", Seq: 3}) {
		t.Fatal("victim still buffered")
	}
}

func TestBufferRaiseAge(t *testing.T) {
	b := mustBuffer(t, 4)
	id := EventID{Origin: "a", Seq: 1}
	mustAdd(t, b, mkEvent("a", 1, 2))
	mustAdd(t, b, mkEvent("a", 2, 3))

	if !b.RaiseAge(id, 5) {
		t.Fatal("RaiseAge on present event returned false")
	}
	if age, _ := b.Age(id); age != 5 {
		t.Fatalf("age = %d, want 5", age)
	}
	// Lower ages never regress the stored age.
	b.RaiseAge(id, 1)
	if age, _ := b.Age(id); age != 5 {
		t.Fatalf("age regressed to %d after RaiseAge with lower value", age)
	}
	if b.RaiseAge(EventID{Origin: "zz", Seq: 9}, 4) {
		t.Fatal("RaiseAge on absent event returned true")
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// The raised event is now the oldest and is evicted first.
	mustAdd(t, b, mkEvent("a", 3, 0))
	mustAdd(t, b, mkEvent("a", 4, 0))
	evicted := mustAdd(t, b, mkEvent("a", 5, 0))
	if len(evicted) != 1 || evicted[0].ID != id {
		t.Fatalf("evicted %v, want raised event %v", evicted, id)
	}
}

func TestBufferIncrementAges(t *testing.T) {
	b := mustBuffer(t, 4)
	mustAdd(t, b, mkEvent("a", 1, 0))
	mustAdd(t, b, mkEvent("a", 2, 3))
	b.IncrementAges()
	if age, _ := b.Age(EventID{Origin: "a", Seq: 1}); age != 1 {
		t.Fatalf("age = %d, want 1", age)
	}
	if age, _ := b.Age(EventID{Origin: "a", Seq: 2}); age != 4 {
		t.Fatalf("age = %d, want 4", age)
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferDropExpired(t *testing.T) {
	b := mustBuffer(t, 8)
	mustAdd(t, b, mkEvent("a", 1, 2))
	mustAdd(t, b, mkEvent("a", 2, 11))
	mustAdd(t, b, mkEvent("a", 3, 15))
	mustAdd(t, b, mkEvent("a", 4, 10))

	expired := b.DropExpired(10)
	if len(expired) != 2 {
		t.Fatalf("expired %d events, want 2", len(expired))
	}
	if expired[0].Age < expired[1].Age {
		t.Fatalf("expired not oldest-first: %v", expired)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if b.DropExpired(10) != nil {
		t.Fatal("second DropExpired should remove nothing")
	}
}

func TestBufferSetCapacity(t *testing.T) {
	b := mustBuffer(t, 5)
	for i := uint64(0); i < 5; i++ {
		mustAdd(t, b, mkEvent("a", i, int(i)))
	}
	evicted, err := b.SetCapacity(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 3 {
		t.Fatalf("evicted %d, want 3", len(evicted))
	}
	// Oldest first: ages 4, 3, 2.
	for i, want := range []int{4, 3, 2} {
		if evicted[i].Age != want {
			t.Fatalf("evicted[%d].Age = %d, want %d", i, evicted[i].Age, want)
		}
	}
	if b.Capacity() != 2 || b.Len() != 2 {
		t.Fatalf("capacity/len = %d/%d, want 2/2", b.Capacity(), b.Len())
	}
	if _, err := b.SetCapacity(0); err == nil {
		t.Fatal("SetCapacity(0): want error")
	}
}

func TestBufferOldestUncounted(t *testing.T) {
	b := mustBuffer(t, 6)
	for i := uint64(0); i < 6; i++ {
		mustAdd(t, b, mkEvent("a", i, int(i)))
	}
	counted := map[EventID]struct{}{
		{Origin: "a", Seq: 5}: {}, // the oldest is already counted
	}
	got := b.OldestUncounted(2, func(id EventID) bool {
		_, ok := counted[id]
		return ok
	})
	if len(got) != 2 || got[0].Age != 4 || got[1].Age != 3 {
		t.Fatalf("OldestUncounted = %v, want ages [4 3]", got)
	}
	if got := b.OldestUncounted(0, nil); got != nil {
		t.Fatalf("limit 0 should return nil, got %v", got)
	}
	if got := b.OldestUncounted(100, nil); len(got) != 6 {
		t.Fatalf("limit beyond len should return all, got %d", len(got))
	}
}

func TestBufferSnapshotIsACopy(t *testing.T) {
	b := mustBuffer(t, 3)
	mustAdd(t, b, mkEvent("a", 1, 1))
	snap := b.Snapshot()
	snap[0].Age = 99
	if age, _ := b.Age(EventID{Origin: "a", Seq: 1}); age != 1 {
		t.Fatalf("snapshot mutation leaked into buffer: age %d", age)
	}
}

// TestBufferRandomOpsInvariants drives the buffer with a random workload
// and checks structural invariants plus the eviction-order contract
// after every operation.
func TestBufferRandomOpsInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	b := mustBuffer(t, 16)
	live := make(map[EventID]struct{})
	var seq uint64

	for op := 0; op < 5000; op++ {
		switch rng.IntN(5) {
		case 0, 1: // add
			ev := mkEvent("p", seq, rng.IntN(12))
			seq++
			evicted := mustAdd(t, b, ev)
			live[ev.ID] = struct{}{}
			for _, e := range evicted {
				delete(live, e.ID)
			}
		case 2: // raise a random live event's age
			for id := range live {
				b.RaiseAge(id, rng.IntN(15))
				break
			}
		case 3:
			b.IncrementAges()
		case 4:
			for _, e := range b.DropExpired(25) {
				delete(live, e.ID)
			}
		}
		if err := b.checkInvariants(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if b.Len() != len(live) {
			t.Fatalf("op %d: len %d != tracked %d", op, b.Len(), len(live))
		}
	}

	// Eviction order: drain the buffer via capacity 1 and verify ages
	// are non-increasing.
	prev := int(^uint(0) >> 1)
	evicted, err := b.SetCapacity(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evicted {
		if e.Age > prev {
			t.Fatalf("eviction order violated: %d after %d", e.Age, prev)
		}
		prev = e.Age
	}
}

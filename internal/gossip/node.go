package gossip

import (
	"fmt"
	"math/rand/v2"

	"adaptivegossip/internal/observe"
)

// PeerSampler supplies random gossip targets. Implementations include a
// static full-membership registry and an lpbcast-style partial view
// (internal/membership).
type PeerSampler interface {
	// SamplePeers returns up to k distinct peers, excluding self. Fewer
	// than k peers may be returned if the membership is small.
	SamplePeers(self NodeID, k int, rng *rand.Rand) []NodeID
}

// PeerAppender is the allocation-free fast path of PeerSampler: the
// same sample appended into a caller-owned slice. Node detects it at
// construction and routes its per-round target draw through it,
// reusing one scratch slice across rounds. Both membership
// implementations provide it; external samplers fall back to
// SamplePeers.
type PeerAppender interface {
	// AppendPeers appends up to k distinct peers, excluding self, to dst
	// and returns the extended slice. The appended sample must match
	// what SamplePeers would have returned for the same RNG state.
	AppendPeers(dst []NodeID, self NodeID, k int, rng *rand.Rand) []NodeID
}

// EvictReason says why events left the buffer.
type EvictReason int

const (
	// EvictCapacity: pushed out by newer events (the overload path the
	// adaptive mechanism observes).
	EvictCapacity EvictReason = iota + 1
	// EvictExpired: age exceeded the purge bound k.
	EvictExpired
	// EvictResize: the local buffer capacity was reduced at runtime.
	EvictResize
)

// String returns a short human-readable reason name.
func (r EvictReason) String() string {
	switch r {
	case EvictCapacity:
		return "capacity"
	case EvictExpired:
		return "expired"
	case EvictResize:
		return "resize"
	default:
		//gossip:allocok only reachable with an invalid reason value
		return fmt.Sprintf("EvictReason(%d)", int(r))
	}
}

// Extension observes and augments the protocol without modifying it.
// The adaptive mechanism (internal/core) and partial-view membership
// (internal/membership) are both Extensions.
//
// Hooks run synchronously on the Node's driver; they must not retain the
// passed Message or Events beyond the call.
type Extension interface {
	// OnTick runs while an outgoing gossip message is being built, after
	// ages were advanced and expired events purged. Extensions may set
	// header fields (e.g. the adaptation header) on out.
	OnTick(n *Node, out *Message)
	// OnReceive runs after the events of an incoming message have been
	// stored and their ages updated, per Figure 5(b)'s placement.
	OnReceive(n *Node, in *Message)
	// OnEvicted reports events leaving the buffer and why.
	OnEvicted(n *Node, evicted []Event, reason EvictReason)
}

// DeliverFunc receives events exactly once each, in arrival order.
type DeliverFunc func(e Event)

// Outgoing pairs a gossip message with its destination.
type Outgoing struct {
	To  NodeID
	Msg *Message
}

// Fanout pairs one read-only message with every destination of a round:
// the shape of Figure 1's emission, where the identical gossip message
// reaches F targets. Transports with an encode-once fast path
// (transport.ManySender) consume it directly.
type Fanout struct {
	Targets []NodeID
	Msg     *Message
}

// GroupOutgoing coalesces consecutive Outgoing entries that share one
// message into Fanouts, preserving order. Tick addresses its round
// message to all fanout targets back to back, so the per-round gossip
// collapses to a single Fanout; subsystem control traffic (recovery
// pulls, failure probes) stays one entry each. Messages are not copied.
func GroupOutgoing(outs []Outgoing) []Fanout {
	fans, _ := AppendGroupOutgoing(nil, nil, outs)
	return fans
}

// AppendGroupOutgoing is the scratch-reusing form of GroupOutgoing: the
// coalesced fanouts are appended to fans and the flattened target list
// to targets, and both are returned for the caller to retain as scratch
// for the next round (transport.GroupSender does). Each Fanout.Targets
// is a full-capacity subslice of the returned targets, so entries stay
// valid even when a later append grows targets into a new array.
func AppendGroupOutgoing(fans []Fanout, targets []NodeID, outs []Outgoing) ([]Fanout, []NodeID) {
	start := 0
	for i := 1; i <= len(outs); i++ {
		if i < len(outs) && outs[i].Msg == outs[start].Msg {
			continue
		}
		first := len(targets)
		for _, o := range outs[start:i] {
			targets = append(targets, o.To)
		}
		fans = append(fans, Fanout{Targets: targets[first:len(targets):len(targets)], Msg: outs[start].Msg})
		start = i
	}
	return fans, targets
}

// NodeStats counts protocol activity since the node was created.
type NodeStats struct {
	Broadcasts        uint64 // events originated locally
	Delivered         uint64 // events delivered (including own)
	Duplicates        uint64 // received events suppressed as duplicates
	MessagesSent      uint64
	MessagesReceived  uint64
	EventsSent        uint64
	EventsReceived    uint64
	DroppedCapacity   uint64 // buffer evictions due to overload
	DroppedExpired    uint64 // age-based purges
	DroppedResize     uint64 // evictions due to capacity reduction
	DroppedAgeSum     uint64 // total age of capacity-dropped events
	RedeliveriesAvoid uint64 // duplicate suppressed though event already left buffer
}

// AvgDroppedAge is the mean age of capacity-dropped events, the
// congestion signal of paper §2.3. It returns 0 when nothing dropped.
func (s NodeStats) AvgDroppedAge() float64 {
	if s.DroppedCapacity == 0 {
		return 0
	}
	return float64(s.DroppedAgeSum) / float64(s.DroppedCapacity)
}

// Node is the lpbcast state machine of Figure 1.
//
// Node is not safe for concurrent use: a driver (simulator or runtime
// loop) must serialize calls to Broadcast, Tick and Receive.
type Node struct {
	id         NodeID
	params     Params
	buf        *Buffer
	seen       *IDCache
	peers      PeerSampler
	sampleInto PeerAppender // non-nil when peers implements the fast path
	rng        *rand.Rand

	deliver DeliverFunc
	exts    []Extension

	round   uint64
	nextSeq uint64
	stats   NodeStats

	// Observability (nil = off, zero overhead beyond one nil check per
	// hot-path call site). metrics holds alloc-free histograms updated
	// inline; tracer observes sampled rumor lifecycles; traceAwait
	// tracks sampled locally-originated events between Broadcast and
	// their first gossip emission (allocated only when tracing).
	metrics    *observe.NodeMetrics
	tracer     observe.Tracer
	traceAwait map[EventID]struct{}

	// Per-round scratch state, reused across Ticks so a steady-state
	// gossip round allocates nothing. Everything Tick returns points
	// into these; see Tick's lifetime contract.
	scratchMsg     Message
	scratchEvents  []Event
	scratchTargets []NodeID
	scratchOut     []Outgoing
}

// Option configures a Node.
type Option func(*Node)

// WithDeliver sets the local delivery callback.
func WithDeliver(fn DeliverFunc) Option {
	return func(n *Node) { n.deliver = fn }
}

// WithExtensions appends protocol extensions, invoked in order.
func WithExtensions(exts ...Extension) Option {
	return func(n *Node) { n.exts = append(n.exts, exts...) }
}

// WithMetrics installs the alloc-free instrumentation block the node
// updates in its hot path: delivery-hop, drop-age and round-size
// histograms. The same block may be shared by several nodes (their
// observations pool). nil leaves instrumentation off.
func WithMetrics(m *observe.NodeMetrics) Option {
	return func(n *Node) { n.metrics = m }
}

// WithTracer installs a sampling rumor-lifecycle tracer. The node
// reports publish, first-send, receive, deliver and drop transitions
// of sampled events with their hop count (age) at each transition. nil
// (the default) is the zero-overhead path, and unsampled events cost
// one hash per touch.
func WithTracer(tr observe.Tracer) Option {
	return func(n *Node) { n.tracer = tr }
}

// NewNode creates a node. peers supplies gossip targets and rng drives
// all protocol randomness (inject a seeded generator for determinism).
func NewNode(id NodeID, params Params, peers PeerSampler, rng *rand.Rand, opts ...Option) (*Node, error) {
	if id == "" {
		return nil, fmt.Errorf("gossip: node id must not be empty")
	}
	if peers == nil {
		return nil, fmt.Errorf("gossip: node %s: peer sampler must not be nil", id)
	}
	if rng == nil {
		return nil, fmt.Errorf("gossip: node %s: rng must not be nil", id)
	}
	params = params.withDefaults()
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("gossip: node %s: invalid params: %w", id, err)
	}
	buf, err := NewBuffer(params.MaxEvents)
	if err != nil {
		return nil, fmt.Errorf("gossip: node %s: %w", id, err)
	}
	seen, err := NewIDCache(params.MaxEventIDs)
	if err != nil {
		return nil, fmt.Errorf("gossip: node %s: %w", id, err)
	}
	n := &Node{
		id:     id,
		params: params,
		buf:    buf,
		seen:   seen,
		peers:  peers,
		rng:    rng,
	}
	if pa, ok := peers.(PeerAppender); ok {
		n.sampleInto = pa
	}
	for _, opt := range opts {
		opt(n)
	}
	if n.tracer != nil {
		n.traceAwait = make(map[EventID]struct{})
	}
	return n, nil
}

// ID returns the node identifier.
func (n *Node) ID() NodeID { return n.id }

// Params returns the node's protocol parameters.
func (n *Node) Params() Params { return n.params }

// Round returns the number of completed gossip rounds.
func (n *Node) Round() uint64 { return n.round }

// Stats returns a copy of the activity counters.
func (n *Node) Stats() NodeStats { return n.stats }

// Seen reports whether the event identifier is in the eventIds
// duplicate-suppression set — i.e. the node has delivered (or
// originated) the event within the cache's memory horizon. The recovery
// subsystem diffs incoming digests against this set.
func (n *Node) Seen(id EventID) bool { return n.seen.Contains(id) }

// BufferLen reports the current number of buffered events.
func (n *Node) BufferLen() int { return n.buf.Len() }

// BufferCapacity reports the local events buffer bound |events|max.
func (n *Node) BufferCapacity() int { return n.buf.Capacity() }

// OldestUncounted exposes the buffer scan used by the congestion
// estimator; see Buffer.OldestUncounted.
func (n *Node) OldestUncounted(limit int, counted func(EventID) bool) []Event {
	return n.buf.OldestUncounted(limit, counted)
}

// SetBufferCapacity changes |events|max at runtime — the dynamic
// resource scenario of paper §4. Evicted events are reported to
// extensions with EvictResize.
func (n *Node) SetBufferCapacity(capacity int) error {
	evicted, err := n.buf.SetCapacity(capacity)
	if err != nil {
		return fmt.Errorf("gossip: node %s: %w", n.id, err)
	}
	if len(evicted) > 0 {
		n.stats.DroppedResize += uint64(len(evicted))
		n.notifyEvicted(evicted, EvictResize)
	}
	return nil
}

// Broadcast originates a new event with the given payload: the event is
// delivered locally, recorded in eventIds and buffered for gossiping
// (the buffering half of Figure 3; rate admission is the caller's
// concern, see internal/ratelimit and internal/core).
//
// The payload is retained and must not be modified afterwards.
//
//gossip:hotpath
func (n *Node) Broadcast(payload []byte) Event {
	ev := Event{
		ID:      EventID{Origin: n.id, Seq: n.nextSeq},
		Age:     0,
		Payload: payload,
	}
	n.nextSeq++
	n.stats.Broadcasts++
	n.seen.Add(ev.ID)
	if n.tracer != nil && n.tracer.Sampled(string(ev.ID.Origin), ev.ID.Seq) {
		n.tracer.Trace(observe.TraceEvent{
			Origin: string(ev.ID.Origin), Seq: ev.ID.Seq,
			Stage: observe.StagePublish, Node: string(n.id), Round: n.round,
		})
		n.traceAwait[ev.ID] = struct{}{}
	}
	n.deliverLocal(ev)
	n.store(ev)
	return ev
}

// Tick runs one gossip round (Figure 1's "every T ms" block): ages
// advance, expired events are purged, and the buffer contents are
// addressed to Fanout random peers. The returned messages share one
// Message value; drivers deliver them without mutation.
//
// Lifetime contract: the slice returned by Tick, the Message all its
// entries share, and every slice reachable from that Message are
// scratch state owned by the node, valid only until the next Tick on
// the same node. Drivers must finish delivering (or copy, see
// Message.Clone) before then. The in-process fabrics honor this: the
// simulator delivers within the sending round whenever network latency
// is below the gossip period (internal/experiments clones otherwise),
// the memory transport clones on send, and the UDP transport encodes
// synchronously.
//
// The driver is responsible for calling Tick every Period.
//
//gossip:hotpath
//gossip:scratch
func (n *Node) Tick() []Outgoing {
	n.round++
	n.buf.IncrementAges()
	if expired := n.buf.DropExpired(n.params.MaxAge); len(expired) > 0 {
		n.stats.DroppedExpired += uint64(len(expired))
		n.notifyEvicted(expired, EvictExpired)
	}

	// Rebuild the round message in place: scalar fields reset, the
	// events snapshot and the extension-appended piggyback slices reuse
	// last round's backing arrays.
	n.scratchEvents = n.buf.AppendSnapshot(n.scratchEvents[:0])
	msg := &n.scratchMsg
	*msg = Message{
		From:    n.id,
		Round:   n.round,
		Traced:  n.tracer != nil,
		Events:  n.scratchEvents,
		Subs:    msg.Subs[:0],
		Unsubs:  msg.Unsubs[:0],
		Updates: msg.Updates[:0],
		Health:  msg.Health[:0],
	}
	for _, ext := range n.exts {
		ext.OnTick(n, msg)
	}

	var targets []NodeID
	if n.sampleInto != nil {
		n.scratchTargets = n.sampleInto.AppendPeers(n.scratchTargets[:0], n.id, n.params.Fanout, n.rng)
		targets = n.scratchTargets
	} else {
		targets = n.peers.SamplePeers(n.id, n.params.Fanout, n.rng)
	}
	if len(targets) == 0 {
		return nil
	}
	out := n.scratchOut[:0]
	for _, t := range targets {
		if t == n.id {
			continue
		}
		out = append(out, Outgoing{To: t, Msg: msg})
	}
	n.scratchOut = out
	n.stats.MessagesSent += uint64(len(out))
	n.stats.EventsSent += uint64(len(out) * len(msg.Events))
	if n.metrics != nil {
		n.metrics.RoundEvents.Observe(uint64(len(msg.Events)))
	}
	if n.tracer != nil && len(n.traceAwait) > 0 && len(out) > 0 {
		n.traceFirstSends(msg)
	}
	return out
}

// traceFirstSends reports the first gossip emission of sampled
// locally-originated events. Called only when tracing is on and at
// least one sampled event awaits its first send, so the hot path pays
// one map-length check per round.
func (n *Node) traceFirstSends(msg *Message) {
	for _, ev := range msg.Events {
		if _, ok := n.traceAwait[ev.ID]; !ok {
			continue
		}
		delete(n.traceAwait, ev.ID)
		n.tracer.Trace(observe.TraceEvent{
			Origin: string(ev.ID.Origin), Seq: ev.ID.Seq,
			Stage: observe.StageFirstSend, Node: string(n.id),
			Hop: ev.Hop, Round: n.round,
		})
	}
}

// Receive processes an incoming gossip message: new events are delivered
// and buffered, duplicate copies raise stored ages to the maximum seen,
// and extensions observe the message afterwards (Figure 1 receive block
// plus the Figure 5 additions).
//
//gossip:hotpath
func (n *Node) Receive(msg *Message) {
	n.stats.MessagesReceived++
	n.stats.EventsReceived += uint64(len(msg.Events))
	for _, ev := range msg.Events {
		// ev is a value copy: adjust its hop count for this arrival.
		// Senders propagating trace context (wire v4) carry exact hop
		// counts — one more traversal landed the copy here; otherwise
		// fall back to the age approximation.
		if msg.Traced {
			ev.Hop++
		} else {
			ev.Hop = ev.Age
		}
		if !n.seen.Add(ev.ID) {
			n.stats.Duplicates++
			if !n.buf.RaiseAge(ev.ID, ev.Age) {
				n.stats.RedeliveriesAvoid++
			}
			continue
		}
		if n.tracer != nil && n.tracer.Sampled(string(ev.ID.Origin), ev.ID.Seq) {
			n.tracer.Trace(observe.TraceEvent{
				Origin: string(ev.ID.Origin), Seq: ev.ID.Seq,
				Stage: observe.StageReceive, Node: string(n.id),
				From: string(msg.From), Hop: ev.Hop, Round: n.round,
			})
			n.deliverLocal(ev)
			n.store(ev)
			n.tracer.Trace(observe.TraceEvent{
				Origin: string(ev.ID.Origin), Seq: ev.ID.Seq,
				Stage: observe.StageDeliver, Node: string(n.id),
				From: string(msg.From), Hop: ev.Hop, Round: n.round,
			})
			continue
		}
		n.deliverLocal(ev)
		n.store(ev)
	}
	for _, ext := range n.exts {
		ext.OnReceive(n, msg)
	}
}

func (n *Node) deliverLocal(ev Event) {
	n.stats.Delivered++
	if n.metrics != nil {
		// ev.Hop equals ev.Age unless the sender carried wire trace
		// context, so the histogram's semantics only sharpen (never
		// shift) when tracing is enabled cluster-wide.
		n.metrics.DeliverHops.ObserveInt(int64(ev.Hop))
	}
	if n.deliver != nil {
		n.deliver(ev)
	}
}

func (n *Node) store(ev Event) {
	evicted, err := n.buf.Add(ev)
	if err != nil {
		// Unreachable: the eventIds check precedes every Add. Surface
		// loudly in development rather than corrupting state.
		panic(err)
	}
	if len(evicted) > 0 {
		n.stats.DroppedCapacity += uint64(len(evicted))
		for _, e := range evicted {
			n.stats.DroppedAgeSum += uint64(e.Age)
		}
		n.notifyEvicted(evicted, EvictCapacity)
	}
}

func (n *Node) notifyEvicted(evicted []Event, reason EvictReason) {
	if n.metrics != nil && reason == EvictCapacity {
		for _, e := range evicted {
			n.metrics.DropAge.ObserveInt(int64(e.Age))
		}
	}
	if n.tracer != nil {
		rs := reason.String()
		for _, e := range evicted {
			delete(n.traceAwait, e.ID)
			if !n.tracer.Sampled(string(e.ID.Origin), e.ID.Seq) {
				continue
			}
			n.tracer.Trace(observe.TraceEvent{
				Origin: string(e.ID.Origin), Seq: e.ID.Seq,
				Stage: observe.StageDrop, Node: string(n.id),
				Hop: e.Hop, Round: n.round, Reason: rs,
			})
		}
	}
	for _, ext := range n.exts {
		ext.OnEvicted(n, evicted, reason)
	}
}

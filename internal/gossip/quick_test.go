package gossip

// Property-based tests (testing/quick) over the core data structures:
// random operation sequences are checked against invariants and, where
// practical, a reference model.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickBufferInvariants drives a buffer with quick-generated
// operation tapes and checks structural invariants after every step.
func TestQuickBufferInvariants(t *testing.T) {
	type op struct {
		Kind uint8 // 0-1: add, 2: raise, 3: incr, 4: expire, 5: resize
		Age  uint8
		Arg  uint16
	}
	f := func(capacity uint8, ops []op) bool {
		capn := int(capacity)%64 + 1
		b, err := NewBuffer(capn)
		if err != nil {
			return false
		}
		var seq uint64
		live := map[EventID]struct{}{}
		for _, o := range ops {
			switch o.Kind % 6 {
			case 0, 1:
				ev := Event{ID: EventID{Origin: "q", Seq: seq}, Age: int(o.Age % 20)}
				seq++
				evicted, err := b.Add(ev)
				if err != nil {
					return false
				}
				live[ev.ID] = struct{}{}
				for _, e := range evicted {
					delete(live, e.ID)
				}
			case 2:
				id := EventID{Origin: "q", Seq: uint64(o.Arg) % (seq + 1)}
				b.RaiseAge(id, int(o.Age%25))
			case 3:
				b.IncrementAges()
			case 4:
				for _, e := range b.DropExpired(int(o.Age%30) + 5) {
					delete(live, e.ID)
				}
			case 5:
				newCap := int(o.Arg)%64 + 1
				evicted, err := b.SetCapacity(newCap)
				if err != nil {
					return false
				}
				for _, e := range evicted {
					delete(live, e.ID)
				}
			}
			if err := b.checkInvariants(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
			if b.Len() != len(live) {
				t.Logf("len mismatch: %d vs %d", b.Len(), len(live))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBufferEvictionIsOldestFirst: whatever the op sequence, a
// forced full eviction yields non-increasing ages.
func TestQuickBufferEvictionIsOldestFirst(t *testing.T) {
	f := func(ages []uint8) bool {
		if len(ages) == 0 {
			return true
		}
		b, err := NewBuffer(len(ages))
		if err != nil {
			return false
		}
		for i, a := range ages {
			if _, err := b.Add(Event{ID: EventID{Origin: "q", Seq: uint64(i)}, Age: int(a % 30)}); err != nil {
				return false
			}
		}
		evicted, err := b.SetCapacity(1)
		if err != nil {
			return false
		}
		prev := 1 << 30
		for _, e := range evicted {
			if e.Age > prev {
				return false
			}
			prev = e.Age
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIDCacheModel checks the cache against a straightforward
// newest-window reference model.
func TestQuickIDCacheModel(t *testing.T) {
	f := func(capacity uint8, seqs []uint16) bool {
		capn := int(capacity)%32 + 1
		c, err := NewIDCache(capn)
		if err != nil {
			return false
		}
		var window []EventID // distinct ids, newest last
		for _, s := range seqs {
			id := EventID{Origin: "q", Seq: uint64(s % 64)}
			dup := false
			for _, w := range window {
				if w == id {
					dup = true
					break
				}
			}
			added := c.Add(id)
			if added == dup {
				return false // Add must report novelty exactly
			}
			if !dup {
				window = append(window, id)
				if len(window) > capn {
					window = window[1:]
				}
			}
			if c.Len() != len(window) || c.Len() > capn {
				return false
			}
			for _, w := range window {
				if !c.Contains(w) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

package gossip

import (
	"fmt"
	"sort"
)

// Buffer is the bounded events store of Figure 1.
//
// Entries are kept ordered by age (youngest first). When the buffer is
// over capacity the oldest event is discarded: highest age first and,
// among equal ages, the entry that has been resident longest — the
// paper's "remove oldest element from events" with age as the discard
// criterion. Ages advance in lockstep each round, which preserves the
// ordering, so only insertions and duplicate age updates reposition
// entries.
//
// Buffer is not safe for concurrent use; the owning Node serializes
// access.
type Buffer struct {
	capacity int
	entries  []*bufEntry // sorted by (age asc, insertion seq desc)
	index    map[EventID]*bufEntry
	nextSeq  uint64
}

type bufEntry struct {
	ev  Event
	seq uint64 // insertion order; lower = resident longer
}

// NewBuffer returns an empty buffer with the given capacity.
// The capacity must be positive.
func NewBuffer(capacity int) (*Buffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("gossip: buffer capacity must be positive, got %d", capacity)
	}
	return &Buffer{
		capacity: capacity,
		entries:  make([]*bufEntry, 0, capacity),
		index:    make(map[EventID]*bufEntry, capacity),
	}, nil
}

// Len reports the number of buffered events.
func (b *Buffer) Len() int { return len(b.entries) }

// Capacity reports the maximum number of buffered events.
func (b *Buffer) Capacity() int { return b.capacity }

// Contains reports whether an event with the given ID is buffered.
func (b *Buffer) Contains(id EventID) bool {
	_, ok := b.index[id]
	return ok
}

// Age returns the buffered age of the event and whether it is present.
func (b *Buffer) Age(id EventID) (int, bool) {
	e, ok := b.index[id]
	if !ok {
		return 0, false
	}
	return e.ev.Age, true
}

// insertPos returns the index at which an entry with the given age and
// insertion sequence keeps the slice ordered. Among equal ages newer
// insertions sort earlier, so the slice tail is always the eviction
// victim.
func (b *Buffer) insertPos(age int, seq uint64) int {
	return sort.Search(len(b.entries), func(i int) bool {
		e := b.entries[i]
		if e.ev.Age != age {
			return e.ev.Age > age
		}
		return e.seq < seq
	})
}

func (b *Buffer) insert(e *bufEntry) {
	pos := b.insertPos(e.ev.Age, e.seq)
	b.entries = append(b.entries, nil)
	copy(b.entries[pos+1:], b.entries[pos:])
	b.entries[pos] = e
}

func (b *Buffer) removeAt(pos int) *bufEntry {
	e := b.entries[pos]
	copy(b.entries[pos:], b.entries[pos+1:])
	b.entries[len(b.entries)-1] = nil
	b.entries = b.entries[:len(b.entries)-1]
	return e
}

// Add inserts a new event and returns the events evicted to make room,
// oldest first. Adding an event whose ID is already buffered is a
// programming error and reported as such; callers are expected to route
// duplicates through RaiseAge.
func (b *Buffer) Add(ev Event) ([]Event, error) {
	if _, ok := b.index[ev.ID]; ok {
		return nil, fmt.Errorf("gossip: duplicate add of event %s", ev.ID)
	}
	e := &bufEntry{ev: ev, seq: b.nextSeq}
	b.nextSeq++
	b.insert(e)
	b.index[ev.ID] = e

	var evicted []Event
	for len(b.entries) > b.capacity {
		victim := b.removeAt(len(b.entries) - 1)
		delete(b.index, victim.ev.ID)
		evicted = append(evicted, victim.ev)
	}
	return evicted, nil
}

// RaiseAge updates a buffered event's age to the maximum of its current
// and the given age (Figure 1's duplicate handling). It reports whether
// the event was present.
func (b *Buffer) RaiseAge(id EventID, age int) bool {
	e, ok := b.index[id]
	if !ok {
		return false
	}
	if age <= e.ev.Age {
		return true
	}
	// Reposition: remove and reinsert with the original insertion seq so
	// residency-based tie-breaking is preserved.
	pos := b.findPos(e)
	b.removeAt(pos)
	e.ev.Age = age
	b.insert(e)
	return true
}

// findPos locates the slice position of a known entry via binary search
// on its (age, seq) key.
func (b *Buffer) findPos(e *bufEntry) int {
	pos := b.insertPos(e.ev.Age, e.seq)
	// insertPos returns the slot the entry occupies, because the
	// predicate is false exactly for entries ordered before (age, seq)
	// and the entry itself compares equal.
	if pos < len(b.entries) && b.entries[pos] == e {
		return pos
	}
	// Defensive linear fallback; unreachable if invariants hold.
	for i, cand := range b.entries {
		if cand == e {
			return i
		}
	}
	panic(fmt.Sprintf("gossip: buffer index desynchronized for event %s", e.ev.ID))
}

// IncrementAges advances every buffered event's age by one, as done at
// the start of each gossip round (Figure 1). Ordering is preserved.
func (b *Buffer) IncrementAges() {
	for _, e := range b.entries {
		e.ev.Age++
	}
}

// DropExpired removes and returns all events with age strictly greater
// than maxAge, oldest first.
func (b *Buffer) DropExpired(maxAge int) []Event {
	// Entries are age-ascending, so expired entries form the tail.
	cut := sort.Search(len(b.entries), func(i int) bool {
		return b.entries[i].ev.Age > maxAge
	})
	if cut == len(b.entries) {
		return nil
	}
	expired := make([]Event, 0, len(b.entries)-cut)
	// Oldest first: walk the tail backwards.
	for i := len(b.entries) - 1; i >= cut; i-- {
		expired = append(expired, b.entries[i].ev)
		delete(b.index, b.entries[i].ev.ID)
		b.entries[i] = nil
	}
	b.entries = b.entries[:cut]
	return expired
}

// SetCapacity changes the buffer capacity, evicting oldest events first
// if the buffer shrinks below its current length. It returns the evicted
// events, oldest first.
func (b *Buffer) SetCapacity(capacity int) ([]Event, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("gossip: buffer capacity must be positive, got %d", capacity)
	}
	b.capacity = capacity
	var evicted []Event
	for len(b.entries) > b.capacity {
		victim := b.removeAt(len(b.entries) - 1)
		delete(b.index, victim.ev.ID)
		evicted = append(evicted, victim.ev)
	}
	return evicted, nil
}

// Snapshot returns copies of all buffered events, youngest first.
// Payload slices are shared (events are read-only by convention).
func (b *Buffer) Snapshot() []Event {
	out := make([]Event, len(b.entries))
	for i, e := range b.entries {
		out[i] = e.ev
	}
	return out
}

// OldestUncounted returns up to limit events, oldest first, for which
// counted reports false. It implements the scan used by the congestion
// estimator (paper Figure 5(b)): the events that would overflow a buffer
// of the group-minimum size, excluding those already accounted for in
// the estimator's lost set.
func (b *Buffer) OldestUncounted(limit int, counted func(EventID) bool) []Event {
	if limit <= 0 {
		return nil
	}
	out := make([]Event, 0, limit)
	for i := len(b.entries) - 1; i >= 0 && len(out) < limit; i-- {
		ev := b.entries[i].ev
		if counted != nil && counted(ev.ID) {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// checkInvariants validates ordering and index consistency. It is used
// by tests only.
func (b *Buffer) checkInvariants() error {
	if len(b.entries) > b.capacity {
		return fmt.Errorf("len %d exceeds capacity %d", len(b.entries), b.capacity)
	}
	if len(b.entries) != len(b.index) {
		return fmt.Errorf("entries %d != index %d", len(b.entries), len(b.index))
	}
	for i := 1; i < len(b.entries); i++ {
		prev, cur := b.entries[i-1], b.entries[i]
		if prev.ev.Age > cur.ev.Age {
			return fmt.Errorf("age order violated at %d: %d > %d", i, prev.ev.Age, cur.ev.Age)
		}
		if prev.ev.Age == cur.ev.Age && prev.seq < cur.seq {
			return fmt.Errorf("tie order violated at %d", i)
		}
	}
	for id, e := range b.index {
		if e.ev.ID != id {
			return fmt.Errorf("index key %s maps to event %s", id, e.ev.ID)
		}
	}
	return nil
}

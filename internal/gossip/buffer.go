package gossip

import (
	"fmt"
	"sort"
)

// Buffer is the bounded events store of Figure 1.
//
// Entries are kept ordered by age (youngest first). When the buffer is
// over capacity the oldest event is discarded: highest age first and,
// among equal ages, the entry that has been resident longest — the
// paper's "remove oldest element from events" with age as the discard
// criterion. Ages advance in lockstep each round, which preserves the
// ordering, so only insertions and duplicate age updates reposition
// entries.
//
// Storage is a value slab: entries live by value in a flat slice whose
// slots are recycled through a free list, and ordering is a separate
// slice of slot indices. After the slab reaches capacity, the steady
// state — insert, evict, reposition, expire — allocates nothing.
//
// The eviction slices returned by Add, DropExpired and SetCapacity
// share one scratch backing array: they are valid only until the next
// mutating Buffer call. Callers that need to retain them must copy.
//
// Buffer is not safe for concurrent use; the owning Node serializes
// access.
type Buffer struct {
	capacity int
	slab     []bufEntry // value storage; slots recycled via free
	order    []int      // slab indices sorted by (age asc, insertion seq desc)
	free     []int      // recycled slab slots
	index    map[EventID]int
	nextSeq  uint64
	scratch  []Event // reused backing for eviction returns
}

type bufEntry struct {
	ev  Event
	seq uint64 // insertion order; lower = resident longer
}

// NewBuffer returns an empty buffer with the given capacity.
// The capacity must be positive.
func NewBuffer(capacity int) (*Buffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("gossip: buffer capacity must be positive, got %d", capacity)
	}
	return &Buffer{
		capacity: capacity,
		slab:     make([]bufEntry, 0, capacity),
		order:    make([]int, 0, capacity),
		index:    make(map[EventID]int, capacity),
	}, nil
}

// Len reports the number of buffered events.
func (b *Buffer) Len() int { return len(b.order) }

// Capacity reports the maximum number of buffered events.
func (b *Buffer) Capacity() int { return b.capacity }

// Contains reports whether an event with the given ID is buffered.
func (b *Buffer) Contains(id EventID) bool {
	_, ok := b.index[id]
	return ok
}

// Age returns the buffered age of the event and whether it is present.
func (b *Buffer) Age(id EventID) (int, bool) {
	slot, ok := b.index[id]
	if !ok {
		return 0, false
	}
	return b.slab[slot].ev.Age, true
}

// insertPos returns the index at which an entry with the given age and
// insertion sequence keeps the order slice sorted. Among equal ages
// newer insertions sort earlier, so the slice tail is always the
// eviction victim.
func (b *Buffer) insertPos(age int, seq uint64) int {
	return sort.Search(len(b.order), func(i int) bool {
		e := &b.slab[b.order[i]]
		if e.ev.Age != age {
			return e.ev.Age > age
		}
		return e.seq < seq
	})
}

// insert places the slab slot into the order slice at its sorted
// position.
func (b *Buffer) insert(slot int) {
	pos := b.insertPos(b.slab[slot].ev.Age, b.slab[slot].seq)
	b.order = append(b.order, 0)
	copy(b.order[pos+1:], b.order[pos:])
	b.order[pos] = slot
}

// removeAt unlinks the order position and returns its slab slot. The
// slot is NOT freed; the caller either reinserts it (reposition) or
// releases it with freeSlot.
func (b *Buffer) removeAt(pos int) int {
	slot := b.order[pos]
	copy(b.order[pos:], b.order[pos+1:])
	b.order = b.order[:len(b.order)-1]
	return slot
}

// freeSlot recycles a slab slot, dropping payload references so the
// slab does not pin dead event payloads.
func (b *Buffer) freeSlot(slot int) {
	b.slab[slot] = bufEntry{}
	b.free = append(b.free, slot)
}

// takeScratch returns the reusable eviction scratch at length zero,
// first clearing the previous batch's entries so the scratch does not
// pin payloads of long-gone evictions (the slab makes the same
// guarantee via freeSlot).
func (b *Buffer) takeScratch() []Event {
	for i := range b.scratch {
		b.scratch[i] = Event{}
	}
	return b.scratch[:0]
}

// alloc claims a slab slot for ev, recycling a free one when available.
func (b *Buffer) alloc(ev Event) int {
	seq := b.nextSeq
	b.nextSeq++
	if n := len(b.free); n > 0 {
		slot := b.free[n-1]
		b.free = b.free[:n-1]
		b.slab[slot] = bufEntry{ev: ev, seq: seq}
		return slot
	}
	b.slab = append(b.slab, bufEntry{ev: ev, seq: seq})
	return len(b.slab) - 1
}

// Add inserts a new event and returns the events evicted to make room,
// oldest first. Adding an event whose ID is already buffered is a
// programming error and reported as such; callers are expected to route
// duplicates through RaiseAge. The returned slice is only valid until
// the next mutating call.
func (b *Buffer) Add(ev Event) ([]Event, error) {
	if _, ok := b.index[ev.ID]; ok {
		//gossip:allocok programming-error path; callers route duplicates through RaiseAge
		return nil, fmt.Errorf("gossip: duplicate add of event %s", ev.ID)
	}
	slot := b.alloc(ev)
	b.insert(slot)
	b.index[ev.ID] = slot
	return b.evictOverCapacity(), nil
}

// evictOverCapacity removes entries from the order tail until the
// buffer fits its capacity, maintaining index, free list and scratch.
// It returns the evicted events oldest first, nil when none (Add and
// SetCapacity share this bookkeeping).
func (b *Buffer) evictOverCapacity() []Event {
	evicted := b.takeScratch()
	for len(b.order) > b.capacity {
		victim := b.removeAt(len(b.order) - 1)
		delete(b.index, b.slab[victim].ev.ID)
		evicted = append(evicted, b.slab[victim].ev)
		b.freeSlot(victim)
	}
	b.scratch = evicted
	if len(evicted) == 0 {
		return nil
	}
	return evicted
}

// RaiseAge updates a buffered event's age to the maximum of its current
// and the given age (Figure 1's duplicate handling). It reports whether
// the event was present.
func (b *Buffer) RaiseAge(id EventID, age int) bool {
	slot, ok := b.index[id]
	if !ok {
		return false
	}
	if age <= b.slab[slot].ev.Age {
		return true
	}
	// Reposition: remove and reinsert with the original insertion seq so
	// residency-based tie-breaking is preserved.
	pos := b.findPos(slot)
	b.removeAt(pos)
	b.slab[slot].ev.Age = age
	b.insert(slot)
	return true
}

// findPos locates the order position of a known slab slot via binary
// search on its (age, seq) key.
func (b *Buffer) findPos(slot int) int {
	pos := b.insertPos(b.slab[slot].ev.Age, b.slab[slot].seq)
	// insertPos returns the position the slot occupies, because the
	// predicate is false exactly for entries ordered before (age, seq)
	// and the entry itself compares equal.
	if pos < len(b.order) && b.order[pos] == slot {
		return pos
	}
	// Defensive linear fallback; unreachable if invariants hold.
	for i, cand := range b.order {
		if cand == slot {
			return i
		}
	}
	//gossip:allocok invariant-violation panic, unreachable if index and order agree
	panic(fmt.Sprintf("gossip: buffer index desynchronized for event %s", b.slab[slot].ev.ID))
}

// IncrementAges advances every buffered event's age by one, as done at
// the start of each gossip round (Figure 1). Ordering is preserved.
func (b *Buffer) IncrementAges() {
	for _, slot := range b.order {
		b.slab[slot].ev.Age++
	}
}

// DropExpired removes and returns all events with age strictly greater
// than maxAge, oldest first. The returned slice is only valid until the
// next mutating call.
func (b *Buffer) DropExpired(maxAge int) []Event {
	// Entries are age-ascending, so expired entries form the tail.
	cut := sort.Search(len(b.order), func(i int) bool {
		return b.slab[b.order[i]].ev.Age > maxAge
	})
	if cut == len(b.order) {
		b.scratch = b.takeScratch()
		return nil
	}
	expired := b.takeScratch()
	// Oldest first: walk the tail backwards.
	for i := len(b.order) - 1; i >= cut; i-- {
		slot := b.order[i]
		expired = append(expired, b.slab[slot].ev)
		delete(b.index, b.slab[slot].ev.ID)
		b.freeSlot(slot)
	}
	b.order = b.order[:cut]
	b.scratch = expired
	return expired
}

// SetCapacity changes the buffer capacity, evicting oldest events first
// if the buffer shrinks below its current length. It returns the
// evicted events, oldest first. The returned slice is only valid until
// the next mutating call.
func (b *Buffer) SetCapacity(capacity int) ([]Event, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("gossip: buffer capacity must be positive, got %d", capacity)
	}
	b.capacity = capacity
	return b.evictOverCapacity(), nil
}

// AppendSnapshot appends copies of all buffered events to dst, youngest
// first, and returns the extended slice. Payload slices are shared
// (events are read-only by convention). Appending into a reused scratch
// slice makes the per-round snapshot allocation-free.
//
//gossip:scratch
func (b *Buffer) AppendSnapshot(dst []Event) []Event {
	for _, slot := range b.order {
		dst = append(dst, b.slab[slot].ev)
	}
	return dst
}

// Snapshot returns copies of all buffered events, youngest first.
// Payload slices are shared (events are read-only by convention).
func (b *Buffer) Snapshot() []Event {
	//gossip:scratchok the backing array is freshly allocated here, nothing aliases reused scratch
	return b.AppendSnapshot(make([]Event, 0, len(b.order)))
}

// OldestUncounted returns up to limit events, oldest first, for which
// counted reports false. It implements the scan used by the congestion
// estimator (paper Figure 5(b)): the events that would overflow a buffer
// of the group-minimum size, excluding those already accounted for in
// the estimator's lost set.
func (b *Buffer) OldestUncounted(limit int, counted func(EventID) bool) []Event {
	if limit <= 0 {
		return nil
	}
	out := make([]Event, 0, limit)
	for i := len(b.order) - 1; i >= 0 && len(out) < limit; i-- {
		ev := b.slab[b.order[i]].ev
		if counted != nil && counted(ev.ID) {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// checkInvariants validates ordering, index and free-list consistency.
// It is used by tests only.
func (b *Buffer) checkInvariants() error {
	if len(b.order) > b.capacity {
		return fmt.Errorf("len %d exceeds capacity %d", len(b.order), b.capacity)
	}
	if len(b.order) != len(b.index) {
		return fmt.Errorf("entries %d != index %d", len(b.order), len(b.index))
	}
	if len(b.order)+len(b.free) != len(b.slab) {
		return fmt.Errorf("order %d + free %d != slab %d", len(b.order), len(b.free), len(b.slab))
	}
	for i := 1; i < len(b.order); i++ {
		prev, cur := &b.slab[b.order[i-1]], &b.slab[b.order[i]]
		if prev.ev.Age > cur.ev.Age {
			return fmt.Errorf("age order violated at %d: %d > %d", i, prev.ev.Age, cur.ev.Age)
		}
		if prev.ev.Age == cur.ev.Age && prev.seq < cur.seq {
			return fmt.Errorf("tie order violated at %d", i)
		}
	}
	for id, slot := range b.index {
		if slot < 0 || slot >= len(b.slab) {
			return fmt.Errorf("index key %s maps to out-of-range slot %d", id, slot)
		}
		if b.slab[slot].ev.ID != id {
			return fmt.Errorf("index key %s maps to event %s", id, b.slab[slot].ev.ID)
		}
	}
	seen := make(map[int]bool, len(b.slab))
	for _, slot := range b.order {
		if seen[slot] {
			return fmt.Errorf("slot %d linked twice in order", slot)
		}
		seen[slot] = true
	}
	for _, slot := range b.free {
		if seen[slot] {
			return fmt.Errorf("slot %d both live and free", slot)
		}
		seen[slot] = true
	}
	return nil
}

package gossip

import (
	"testing"
	"time"
)

func TestDefaultParamsAreValid(t *testing.T) {
	p := DefaultParams().withDefaults()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if p.Fanout != 4 || p.Period != 5*time.Second || p.MaxEvents != 120 {
		t.Fatalf("defaults drifted from the paper's configuration: %+v", p)
	}
	if p.MaxEventIDs != DefaultIDCacheMult*p.MaxEvents {
		t.Fatalf("MaxEventIDs default = %d", p.MaxEventIDs)
	}
}

func TestParamsValidate(t *testing.T) {
	valid := Params{Fanout: 3, Period: time.Second, MaxEvents: 10, MaxEventIDs: 100, MaxAge: 8}
	cases := []struct {
		name   string
		mutate func(*Params)
		ok     bool
	}{
		{"valid", func(p *Params) {}, true},
		{"zero fanout", func(p *Params) { p.Fanout = 0 }, false},
		{"negative fanout", func(p *Params) { p.Fanout = -1 }, false},
		{"zero period", func(p *Params) { p.Period = 0 }, false},
		{"zero max events", func(p *Params) { p.MaxEvents = 0 }, false},
		{"negative ids", func(p *Params) { p.MaxEventIDs = -1 }, false},
		{"ids below events", func(p *Params) { p.MaxEventIDs = 5 }, false},
		{"zero max age", func(p *Params) { p.MaxAge = 0 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := valid
			tc.mutate(&p)
			err := p.Validate()
			if tc.ok && err != nil {
				t.Fatalf("want valid, got %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

package gossip

import (
	"errors"
	"fmt"
	"time"
)

// Default protocol parameters. Fanout, period and the 60-node group size
// come from the paper's experimental settings (§4); MaxAge and the
// eventIds sizing are reconstructed from the paper's constraints.
const (
	DefaultFanout      = 4
	DefaultPeriod      = 5 * time.Second
	DefaultMaxEvents   = 120
	DefaultMaxAge      = 10
	DefaultIDCacheMult = 30 // MaxEventIDs = mult × MaxEvents when unset
)

// Params are the configuration parameters of the base algorithm
// (Figure 1): fanout F, gossip period T, buffer bound |events|max,
// dedup-cache bound |eventIds|max and the age purge bound k.
type Params struct {
	// Fanout is the number of random targets each round (F).
	Fanout int
	// Period is the gossip round interval (T).
	Period time.Duration
	// MaxEvents bounds the events buffer (|events|max).
	MaxEvents int
	// MaxEventIDs bounds the duplicate-suppression set (|eventIds|max).
	// Zero means DefaultIDCacheMult × MaxEvents.
	MaxEventIDs int
	// MaxAge is the age k beyond which events are purged.
	MaxAge int
}

// DefaultParams returns the paper's experimental configuration.
func DefaultParams() Params {
	return Params{
		Fanout:    DefaultFanout,
		Period:    DefaultPeriod,
		MaxEvents: DefaultMaxEvents,
		MaxAge:    DefaultMaxAge,
	}
}

// withDefaults returns p with zero-valued optional fields filled in.
func (p Params) withDefaults() Params {
	if p.MaxEventIDs == 0 {
		p.MaxEventIDs = DefaultIDCacheMult * p.MaxEvents
	}
	return p
}

// Validate reports the first configuration error, if any.
func (p Params) Validate() error {
	var errs []error
	if p.Fanout <= 0 {
		errs = append(errs, fmt.Errorf("fanout must be positive, got %d", p.Fanout))
	}
	if p.Period <= 0 {
		errs = append(errs, fmt.Errorf("period must be positive, got %v", p.Period))
	}
	if p.MaxEvents <= 0 {
		errs = append(errs, fmt.Errorf("max events must be positive, got %d", p.MaxEvents))
	}
	if p.MaxEventIDs < 0 {
		errs = append(errs, fmt.Errorf("max event ids must be non-negative, got %d", p.MaxEventIDs))
	}
	if p.MaxEventIDs != 0 && p.MaxEventIDs < p.MaxEvents {
		errs = append(errs, fmt.Errorf("max event ids (%d) must be at least max events (%d)", p.MaxEventIDs, p.MaxEvents))
	}
	if p.MaxAge <= 0 {
		errs = append(errs, fmt.Errorf("max age must be positive, got %d", p.MaxAge))
	}
	return errors.Join(errs...)
}

package gossip

import (
	"math/rand/v2"
	"testing"
)

func mustCache(t *testing.T, capacity int) *IDCache {
	t.Helper()
	c, err := NewIDCache(capacity)
	if err != nil {
		t.Fatalf("NewIDCache(%d): %v", capacity, err)
	}
	return c
}

func id(origin string, seq uint64) EventID {
	return EventID{Origin: NodeID(origin), Seq: seq}
}

func TestNewIDCacheRejectsNonPositiveCapacity(t *testing.T) {
	for _, capacity := range []int{0, -3} {
		if _, err := NewIDCache(capacity); err == nil {
			t.Errorf("NewIDCache(%d): want error", capacity)
		}
	}
}

func TestIDCacheAddAndContains(t *testing.T) {
	c := mustCache(t, 4)
	if !c.Add(id("a", 1)) {
		t.Fatal("first Add returned false")
	}
	if c.Add(id("a", 1)) {
		t.Fatal("duplicate Add returned true")
	}
	if !c.Contains(id("a", 1)) {
		t.Fatal("Contains lost the id")
	}
	if c.Contains(id("a", 2)) {
		t.Fatal("Contains invented an id")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestIDCacheFIFOEviction(t *testing.T) {
	c := mustCache(t, 3)
	for i := uint64(1); i <= 3; i++ {
		c.Add(id("a", i))
	}
	c.Add(id("a", 4)) // evicts a/1
	if c.Contains(id("a", 1)) {
		t.Fatal("oldest id survived eviction")
	}
	for i := uint64(2); i <= 4; i++ {
		if !c.Contains(id("a", i)) {
			t.Fatalf("id a/%d lost", i)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// Re-adding an evicted id works and evicts the now-oldest (a/2).
	if !c.Add(id("a", 1)) {
		t.Fatal("re-add of evicted id returned false")
	}
	if c.Contains(id("a", 2)) {
		t.Fatal("a/2 should have been evicted")
	}
}

func TestIDCacheSetCapacityShrinkKeepsNewest(t *testing.T) {
	c := mustCache(t, 5)
	for i := uint64(1); i <= 5; i++ {
		c.Add(id("a", i))
	}
	if err := c.SetCapacity(2); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Fatalf("len/cap = %d/%d, want 2/2", c.Len(), c.Capacity())
	}
	for i := uint64(1); i <= 3; i++ {
		if c.Contains(id("a", i)) {
			t.Fatalf("old id a/%d survived shrink", i)
		}
	}
	for i := uint64(4); i <= 5; i++ {
		if !c.Contains(id("a", i)) {
			t.Fatalf("new id a/%d lost in shrink", i)
		}
	}
	// Eviction order still FIFO after resize.
	c.Add(id("b", 1))
	if c.Contains(id("a", 4)) {
		t.Fatal("a/4 should be the next FIFO victim")
	}
}

func TestIDCacheSetCapacityGrow(t *testing.T) {
	c := mustCache(t, 2)
	c.Add(id("a", 1))
	c.Add(id("a", 2))
	if err := c.SetCapacity(4); err != nil {
		t.Fatal(err)
	}
	c.Add(id("a", 3))
	c.Add(id("a", 4))
	for i := uint64(1); i <= 4; i++ {
		if !c.Contains(id("a", i)) {
			t.Fatalf("id a/%d lost after grow", i)
		}
	}
	if err := c.SetCapacity(0); err == nil {
		t.Fatal("SetCapacity(0): want error")
	}
}

func TestIDCacheRandomOps(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	c := mustCache(t, 32)
	var seq uint64
	window := make([]EventID, 0, 64) // newest-last shadow of expected content

	for op := 0; op < 4000; op++ {
		switch rng.IntN(10) {
		case 9:
			newCap := 1 + rng.IntN(64)
			if err := c.SetCapacity(newCap); err != nil {
				t.Fatal(err)
			}
			if len(window) > newCap {
				window = window[len(window)-newCap:]
			}
		default:
			eid := id("x", seq)
			seq++
			c.Add(eid)
			window = append(window, eid)
			if len(window) > c.Capacity() {
				window = window[len(window)-c.Capacity():]
			}
		}
		if c.Len() > c.Capacity() {
			t.Fatalf("op %d: len %d exceeds cap %d", op, c.Len(), c.Capacity())
		}
		if c.Len() != len(window) {
			t.Fatalf("op %d: len %d != shadow %d", op, c.Len(), len(window))
		}
		for _, w := range window {
			if !c.Contains(w) {
				t.Fatalf("op %d: lost %v", op, w)
			}
		}
	}
}

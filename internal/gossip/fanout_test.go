package gossip

import (
	"reflect"
	"testing"
)

func TestGroupOutgoing(t *testing.T) {
	round := &Message{From: "a", Round: 1}
	pullA := &Message{From: "a", Round: 1, Kind: KindRecoveryRequest}
	pullB := &Message{From: "a", Round: 1, Kind: KindRecoveryRequest}

	cases := []struct {
		name string
		outs []Outgoing
		want []Fanout
	}{
		{name: "empty", outs: nil, want: nil},
		{
			name: "single",
			outs: []Outgoing{{To: "b", Msg: round}},
			want: []Fanout{{Targets: []NodeID{"b"}, Msg: round}},
		},
		{
			name: "round fanout collapses",
			outs: []Outgoing{{To: "b", Msg: round}, {To: "c", Msg: round}, {To: "d", Msg: round}},
			want: []Fanout{{Targets: []NodeID{"b", "c", "d"}, Msg: round}},
		},
		{
			name: "control traffic stays separate",
			outs: []Outgoing{
				{To: "b", Msg: round}, {To: "c", Msg: round},
				{To: "d", Msg: pullA}, {To: "e", Msg: pullB},
			},
			want: []Fanout{
				{Targets: []NodeID{"b", "c"}, Msg: round},
				{Targets: []NodeID{"d"}, Msg: pullA},
				{Targets: []NodeID{"e"}, Msg: pullB},
			},
		},
		{
			name: "grouping is by pointer, not value",
			outs: []Outgoing{{To: "b", Msg: pullA}, {To: "c", Msg: pullB}},
			want: []Fanout{
				{Targets: []NodeID{"b"}, Msg: pullA},
				{Targets: []NodeID{"c"}, Msg: pullB},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := GroupOutgoing(tc.outs)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("GroupOutgoing mismatch:\n got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

// TestTickOutgoingsShareOneMessage pins the round-emission contract the
// encode-once wire path depends on: every Outgoing of a Tick points at
// the same Message, so GroupOutgoing collapses the round to one Fanout.
func TestTickOutgoingsShareOneMessage(t *testing.T) {
	peers := staticPeers{"a", "b", "c", "d"}
	n := newTestNode(t, "a", peers)
	n.Broadcast([]byte("x"))
	outs := n.Tick()
	if len(outs) != testParams().Fanout {
		t.Fatalf("got %d outgoings, want %d", len(outs), testParams().Fanout)
	}
	fans := GroupOutgoing(outs)
	if len(fans) != 1 {
		t.Fatalf("round emission split into %d fanouts, want 1", len(fans))
	}
	if len(fans[0].Targets) != len(outs) {
		t.Fatalf("fanout lost targets: %d vs %d", len(fans[0].Targets), len(outs))
	}
}

// Package gossip implements the lpbcast-style probabilistic broadcast
// algorithm of Eugster et al. (DSN 2001) as reproduced in Figure 1 of
// "Adaptive Gossip-Based Broadcast" (Rodrigues et al., DSN 2003).
//
// The package provides the protocol as a deterministic, single-threaded
// state machine (Node). Drivers — the discrete-event simulator in
// internal/sim or the goroutine runtime in internal/runtime — own time,
// randomness and message delivery, and serialize all calls into a Node.
// This is what lets one implementation back both the paper's simulation
// results and its prototype validation.
//
// Adaptation (the paper's contribution, implemented in internal/core) is
// layered on top through the Extension interface rather than by forking
// the algorithm, mirroring the paper's claim that the mechanism applies
// to gossip-based broadcast algorithms in general.
package gossip

import "strconv"

// NodeID identifies a member of the broadcast group. IDs are opaque
// strings; transports map them to addresses.
type NodeID string

// EventID uniquely identifies a broadcast event: the identifier of the
// origin node plus a per-origin sequence number.
type EventID struct {
	Origin NodeID
	Seq    uint64
}

// String renders the identifier as "origin/seq".
func (id EventID) String() string {
	return string(id.Origin) + "/" + strconv.FormatUint(id.Seq, 10)
}

// Event is a broadcast message together with its gossip age.
//
// Age counts how many gossip rounds the event has lived through: every
// node holding the event increments the age once per round before
// forwarding, and a node receiving a copy keeps the maximum of the known
// and received ages (paper Figure 1). Because all holders advance ages in
// lockstep, age approximates the number of times the event has been
// forwarded between nodes, which in turn tracks its level of
// dissemination — the property the adaptive mechanism relies on.
type Event struct {
	ID      EventID
	Age     int
	Payload []byte

	// Hop counts wire traversals from the origin: 0 at the origin,
	// incremented once each time a copy is received from another node.
	// When the sender propagates wire trace context (Message.Traced,
	// wire v4) the count is exact across real transports; otherwise
	// receivers fall back to Hop = Age, the pre-trace approximation.
	// Unlike Age, Hop is never advanced while the event sits in a
	// buffer, so traces distinguish "travelled far" from "lived long".
	Hop int
}

// NextEventRun returns the end index (exclusive) of the run of
// consecutive events sharing events[start]'s origin. Runs are the unit
// of the columnar wire encoding (wire v5 writes each origin once per
// run) and of datagram fragmentation (EncodeChunks cuts on run
// boundaries). start must be a valid index.
//
//gossip:hotpath
func NextEventRun(events []Event, start int) int {
	origin := events[start].ID.Origin
	end := start + 1
	for end < len(events) && events[end].ID.Origin == origin {
		end++
	}
	return end
}

// Clone returns a deep copy of the event, including the payload. Events
// exchanged through in-process transports share payload slices by
// convention (they are read-only after Broadcast); Clone is for callers
// that need ownership.
func (e Event) Clone() Event {
	c := e
	if e.Payload != nil {
		c.Payload = make([]byte, len(e.Payload))
		copy(c.Payload, e.Payload)
	}
	return c
}

package gossip

import (
	"math"
	"math/rand/v2"
	"os"
	"testing"
	"time"

	"adaptivegossip/internal/observe"
)

// TestNodeMetricsHistograms drives a small instrumented group and
// checks the histograms reflect the protocol: every delivery observes a
// hop count, capacity evictions observe drop ages, and each Tick
// observes the round's event count.
func TestNodeMetricsHistograms(t *testing.T) {
	var m observe.NodeMetrics
	node, payload := steadyNode(t, WithMetrics(&m))

	deliverBefore := m.DeliverHops.Count()
	roundsBefore := m.RoundEvents.Count()
	for i := 0; i < 5; i++ {
		tickRound(node, payload)
	}
	if got := m.RoundEvents.Count() - roundsBefore; got != 5 {
		t.Fatalf("RoundEvents observed %d rounds, want 5", got)
	}
	if got := m.DeliverHops.Count() - deliverBefore; got != 5*12 {
		t.Fatalf("DeliverHops observed %d deliveries, want %d", got, 5*12)
	}
	// Local broadcasts deliver at hop 0.
	snap := m.DeliverHops.Snapshot()
	if snap.Buckets[0] == 0 {
		t.Fatal("no hop-0 deliveries recorded for local broadcasts")
	}

	// Remote events arrive with positive ages and force capacity drops
	// (the buffer is already full): DropAge must pick them up.
	dropsBefore := m.DropAge.Count()
	msg := receiveMessage()
	rewriteSeqs(msg, 1000)
	node.Receive(msg)
	st := node.Stats()
	if st.DroppedCapacity == 0 {
		t.Fatal("receive into a full buffer dropped nothing; workload broken")
	}
	if got := m.DropAge.Count() - dropsBefore; got == 0 {
		t.Fatal("DropAge histogram missed capacity evictions")
	}
}

// TestNodeTracePath runs an instrumented two-node exchange and asserts
// the recorder reconstructs the full publish → first-send → receive →
// deliver lifecycle of a rumor with hop counts at each transition.
func TestNodeTracePath(t *testing.T) {
	rec := observe.NewRecorder(1, 256) // sample everything
	params := Params{Fanout: 2, Period: time.Second, MaxEvents: 16, MaxAge: 5}
	a, err := NewNode("alpha", params, fixedPeers{"beta"}, rand.New(rand.NewPCG(1, 2)), WithTracer(rec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode("beta", params, fixedPeers{"alpha"}, rand.New(rand.NewPCG(3, 4)), WithTracer(rec))
	if err != nil {
		t.Fatal(err)
	}

	ev := a.Broadcast([]byte("hello"))
	outs := a.Tick()
	if len(outs) != 1 {
		t.Fatalf("expected 1 outgoing, got %d", len(outs))
	}
	b.Receive(outs[0].Msg)

	path := rec.Path(string(ev.ID.Origin), ev.ID.Seq)
	wantStages := []observe.TraceStage{
		observe.StagePublish, observe.StageFirstSend,
		observe.StageReceive, observe.StageDeliver,
	}
	if len(path) != len(wantStages) {
		t.Fatalf("trace path has %d records, want %d: %+v", len(path), len(wantStages), path)
	}
	for i, rec := range path {
		if rec.Stage != wantStages[i] {
			t.Fatalf("path[%d].Stage = %v, want %v", i, rec.Stage, wantStages[i])
		}
	}
	if path[0].Node != "alpha" || path[2].Node != "beta" {
		t.Fatalf("trace path nodes wrong: %+v", path)
	}
	if path[1].Hop != 0 {
		t.Fatalf("first-send hop = %d, want 0 (not yet traversed the wire)", path[1].Hop)
	}
	if path[3].Hop != 1 {
		t.Fatalf("deliver hop = %d, want 1 (one wire traversal alpha→beta)", path[3].Hop)
	}
	if path[2].From != "alpha" || path[3].From != "alpha" {
		t.Fatalf("receive/deliver sender attribution wrong: %+v", path[2:])
	}
}

// TestNodeTraceDrop asserts capacity evictions of sampled events are
// traced with their reason.
func TestNodeTraceDrop(t *testing.T) {
	rec := observe.NewRecorder(1, 4096)
	node, payload := steadyNode(t, WithTracer(rec))
	for i := 0; i < 3; i++ {
		tickRound(node, payload)
	}
	// Flood with remote events: the full buffer must evict with
	// reason "capacity".
	msg := receiveMessage()
	rewriteSeqs(msg, 2000)
	node.Receive(msg)

	found := false
	for _, r := range rec.Records() {
		if r.Stage == observe.StageDrop && r.Reason == "capacity" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no capacity drop trace recorded")
	}
}

// TestNilTracerOverhead is the opt-in acceptance check for the
// "nil tracer = zero overhead" claim: with the tracer seam compiled in
// but no tracer installed, the steady-state round must stay within 2%
// of the uninstrumented baseline. (The metrics histograms are measured
// separately by BenchmarkNodeTickObserved; they do real atomic work,
// the nil tracer must not.) Wall-clock assertions are load-sensitive,
// so the test runs only when GOSSIP_PERF=1.
func TestNilTracerOverhead(t *testing.T) {
	if os.Getenv("GOSSIP_PERF") != "1" {
		t.Skip("set GOSSIP_PERF=1 to run the wall-clock overhead assertion")
	}
	measure := func(opts ...Option) float64 {
		// Best of three: a single testing.Benchmark sample is noisy
		// enough (scheduler, thermal state) to spuriously exceed a 2%
		// bound; the minimum is the stable estimate of intrinsic cost.
		best := math.Inf(1)
		for i := 0; i < 3; i++ {
			res := testing.Benchmark(func(b *testing.B) {
				node, payload := steadyNode(b, opts...)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tickRound(node, payload)
				}
			})
			best = math.Min(best, float64(res.NsPerOp()))
		}
		return best
	}
	base := measure()
	nilTracer := measure(WithTracer(nil))
	if limit := base * 1.02; nilTracer > limit {
		t.Fatalf("nil-tracer round costs %.0fns, bare round %.0fns: overhead %.1f%% exceeds 2%%",
			nilTracer, base, 100*(nilTracer/base-1))
	}
}

// BenchmarkNodeTickObserved is BenchmarkNodeTick with the hot-path
// instrumentation enabled and no tracer — the configuration every
// facade node now runs in. Compare against BenchmarkNodeTick to see
// the observability cost.
func BenchmarkNodeTickObserved(b *testing.B) {
	node, payload := steadyNode(b, WithMetrics(&observe.NodeMetrics{}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := tickRound(node, payload); len(out) != 4 {
			b.Fatalf("expected 4 outgoings, got %d", len(out))
		}
	}
}

// BenchmarkNodeReceiveObserved mirrors BenchmarkNodeReceive with
// instrumentation enabled.
func BenchmarkNodeReceiveObserved(b *testing.B) {
	node, _ := steadyNode(b, WithMetrics(&observe.NodeMetrics{}))
	msg := receiveMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewriteSeqs(msg, uint64(i))
		node.Receive(msg)
	}
}

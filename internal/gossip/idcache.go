package gossip

import "fmt"

// IDCache is the bounded eventIds duplicate-suppression set of Figure 1.
// When full, the oldest identifier is forgotten (FIFO), matching the
// paper's "remove oldest element from eventIds".
//
// IDCache is not safe for concurrent use.
type IDCache struct {
	capacity int
	ring     []EventID
	head     int // index of the oldest element
	size     int
	set      map[EventID]struct{}
}

// NewIDCache returns an empty cache with the given capacity.
func NewIDCache(capacity int) (*IDCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("gossip: id cache capacity must be positive, got %d", capacity)
	}
	return &IDCache{
		capacity: capacity,
		ring:     make([]EventID, capacity),
		set:      make(map[EventID]struct{}, capacity),
	}, nil
}

// Len reports the number of remembered identifiers.
func (c *IDCache) Len() int { return c.size }

// Capacity reports the maximum number of remembered identifiers.
func (c *IDCache) Capacity() int { return c.capacity }

// Contains reports whether id is remembered.
func (c *IDCache) Contains(id EventID) bool {
	_, ok := c.set[id]
	return ok
}

// Add remembers id and reports whether it was new. Adding a known id is
// a no-op returning false. When the cache is full the oldest identifier
// is evicted.
func (c *IDCache) Add(id EventID) bool {
	if _, ok := c.set[id]; ok {
		return false
	}
	if c.size == c.capacity {
		oldest := c.ring[c.head]
		delete(c.set, oldest)
		c.ring[c.head] = id
		c.head = (c.head + 1) % c.capacity
	} else {
		tail := (c.head + c.size) % c.capacity
		c.ring[tail] = id
		c.size++
	}
	c.set[id] = struct{}{}
	return true
}

// SetCapacity resizes the cache, forgetting oldest identifiers first when
// shrinking.
func (c *IDCache) SetCapacity(capacity int) error {
	if capacity <= 0 {
		return fmt.Errorf("gossip: id cache capacity must be positive, got %d", capacity)
	}
	// Rebuild the ring newest-last, keeping at most the newest capacity
	// identifiers.
	keep := c.size
	if keep > capacity {
		keep = capacity
	}
	ring := make([]EventID, capacity)
	drop := c.size - keep
	for i := 0; i < drop; i++ {
		delete(c.set, c.ring[(c.head+i)%c.capacity])
	}
	for i := 0; i < keep; i++ {
		ring[i] = c.ring[(c.head+drop+i)%c.capacity]
	}
	c.ring = ring
	c.head = 0
	c.size = keep
	c.capacity = capacity
	return nil
}

// IDs returns the remembered identifiers from oldest to newest. The
// recovery subsystem builds its gossip digests from a small IDCache via
// this accessor.
func (c *IDCache) IDs() []EventID {
	out := make([]EventID, 0, c.size)
	for i := 0; i < c.size; i++ {
		out = append(out, c.ring[(c.head+i)%c.capacity])
	}
	return out
}

// oldest returns the identifiers from oldest to newest. Test helper.
func (c *IDCache) oldest() []EventID { return c.IDs() }

package gossip

import (
	"math/rand/v2"
	"testing"
	"time"

	"adaptivegossip/internal/observe"
)

// fixedPeers is a fixed-membership sampler for benchmarks: it returns
// the first k peers without shuffling, so the protocol loop is measured
// without sampling noise (and without sampler allocations).
type fixedPeers []NodeID

func (s fixedPeers) SamplePeers(self NodeID, k int, rng *rand.Rand) []NodeID {
	if k >= len(s) {
		return s
	}
	return s[:k]
}

func (s fixedPeers) AppendPeers(dst []NodeID, self NodeID, k int, rng *rand.Rand) []NodeID {
	if k > len(s) {
		k = len(s)
	}
	return append(dst, s[:k]...)
}

func benchPeers(n int) fixedPeers {
	peers := make(fixedPeers, n)
	for i := range peers {
		peers[i] = NodeID(string(rune('a' + i)))
	}
	return peers
}

func benchParams() Params {
	return Params{Fanout: 4, Period: time.Second, MaxEvents: 120, MaxAge: 10}
}

// steadyNode builds a node whose buffer sits at the paper's steady
// state: 120 buffered events with the full age spread, so every round
// ages, expires and re-fills exactly DefaultMaxEvents/DefaultMaxAge
// events. Extra options (e.g. WithMetrics) apply on top.
func steadyNode(tb testing.TB, opts ...Option) (*Node, []byte) {
	tb.Helper()
	node, err := NewNode("bench", benchParams(), benchPeers(8), rand.New(rand.NewPCG(1, 2)), opts...)
	if err != nil {
		tb.Fatal(err)
	}
	payload := make([]byte, 16)
	// Warm to steady state: births per round = MaxEvents / MaxAge.
	for round := 0; round < 2*benchParams().MaxAge; round++ {
		for i := 0; i < benchParams().MaxEvents/benchParams().MaxAge; i++ {
			node.Broadcast(payload)
		}
		node.Tick()
	}
	return node, payload
}

// tickRound runs one full steady-state gossip round: the per-round
// broadcast quota followed by the Tick emission.
func tickRound(node *Node, payload []byte) []Outgoing {
	for i := 0; i < benchParams().MaxEvents/benchParams().MaxAge; i++ {
		node.Broadcast(payload)
	}
	return node.Tick()
}

// BenchmarkNodeTick measures one steady-state gossip round: 12 local
// births (keeping the 120-slot buffer full against age expiry) plus the
// Tick that ages, purges and addresses the buffer to 4 targets.
func BenchmarkNodeTick(b *testing.B) {
	node, payload := steadyNode(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := tickRound(node, payload); len(out) != 4 {
			b.Fatalf("expected 4 outgoings, got %d", len(out))
		}
	}
}

// receiveMessage pre-builds a full-buffer gossip message whose event
// identifiers are rewritten in place each iteration: even slots carry
// fresh events, odd slots repeat the previous iteration's identifiers
// (the ~half-duplicates regime of a fanout-4 group).
func receiveMessage() *Message {
	events := make([]Event, 120)
	payload := make([]byte, 16)
	for j := range events {
		events[j] = Event{Age: j % 10, Payload: payload}
	}
	return &Message{From: "peer", Events: events}
}

func rewriteSeqs(msg *Message, iter uint64) {
	for j := range msg.Events {
		seq := iter*uint64(len(msg.Events)) + uint64(j)
		if j%2 == 1 && iter > 0 {
			seq = (iter-1)*uint64(len(msg.Events)) + uint64(j)
		}
		msg.Events[j].ID = EventID{Origin: "peer", Seq: seq}
	}
}

// BenchmarkNodeReceive measures the full receive path: a 120-event
// gossip message, about half duplicates — the per-round inbound
// workload of a node in the paper's configuration.
func BenchmarkNodeReceive(b *testing.B) {
	node, _ := steadyNode(b)
	msg := receiveMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewriteSeqs(msg, uint64(i))
		node.Receive(msg)
	}
}

// BenchmarkBufferAdd measures the events-buffer insert path at
// steady-state occupancy (every insert evicts).
func BenchmarkBufferAdd(b *testing.B) {
	buf, err := NewBuffer(120)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	ages := make([]int, 4096)
	for i := range ages {
		ages[i] = rng.IntN(10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := Event{
			ID:  EventID{Origin: "bench", Seq: uint64(i)},
			Age: ages[i%len(ages)],
		}
		if _, err := buf.Add(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// The steady-state allocation contracts below are the acceptance
// criteria of the zero-allocation round work: once warmed up, a gossip
// round must not allocate — not in Tick, not in Receive, not in the
// buffer insert path. testing.AllocsPerRun runs on the exact workloads
// of the benchmarks above, with the observe instrumentation ENABLED:
// the histograms are part of the hot path now, so the contract covers
// them too.

func TestNodeTickAllocFree(t *testing.T) {
	node, payload := steadyNode(t, WithMetrics(&observe.NodeMetrics{}))
	// Warm the scratch state (first Tick after rework sizes it).
	for i := 0; i < 4; i++ {
		tickRound(node, payload)
	}
	allocs := testing.AllocsPerRun(100, func() {
		tickRound(node, payload)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Tick allocates %v times per round, want 0", allocs)
	}
}

func TestNodeReceiveAllocFree(t *testing.T) {
	node, _ := steadyNode(t, WithMetrics(&observe.NodeMetrics{}))
	msg := receiveMessage()
	iter := uint64(0)
	// Warm: populate the dedup cache and buffer with this stream.
	for ; iter < 4; iter++ {
		rewriteSeqs(msg, iter)
		node.Receive(msg)
	}
	allocs := testing.AllocsPerRun(100, func() {
		rewriteSeqs(msg, iter)
		node.Receive(msg)
		iter++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Receive allocates %v times per message, want 0", allocs)
	}
}

func TestBufferAddAllocFree(t *testing.T) {
	buf, err := NewBuffer(120)
	if err != nil {
		t.Fatal(err)
	}
	seq := uint64(0)
	add := func() {
		ev := Event{ID: EventID{Origin: "bench", Seq: seq}, Age: int(seq % 10)}
		seq++
		if _, err := buf.Add(ev); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ { // reach steady-state eviction
		add()
	}
	allocs := testing.AllocsPerRun(100, add)
	if allocs != 0 {
		t.Fatalf("steady-state Add allocates %v times per insert, want 0", allocs)
	}
}

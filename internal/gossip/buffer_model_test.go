package gossip

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
)

// refBuffer is a deliberately naive reference model of Buffer: a plain
// slice re-sorted after every mutation. It exists to check the slab
// implementation against an implementation whose correctness is
// obvious.
type refBuffer struct {
	capacity int
	entries  []refEntry
	nextSeq  uint64
}

type refEntry struct {
	ev  Event
	seq uint64
}

func newRefBuffer(capacity int) *refBuffer {
	return &refBuffer{capacity: capacity}
}

func (r *refBuffer) sort() {
	sort.SliceStable(r.entries, func(i, j int) bool {
		a, b := r.entries[i], r.entries[j]
		if a.ev.Age != b.ev.Age {
			return a.ev.Age < b.ev.Age
		}
		return a.seq > b.seq // newer insertions first among equal ages
	})
}

func (r *refBuffer) find(id EventID) int {
	for i, e := range r.entries {
		if e.ev.ID == id {
			return i
		}
	}
	return -1
}

func (r *refBuffer) evictOverflow() []Event {
	var evicted []Event
	for len(r.entries) > r.capacity {
		victim := r.entries[len(r.entries)-1]
		r.entries = r.entries[:len(r.entries)-1]
		evicted = append(evicted, victim.ev)
	}
	return evicted
}

func (r *refBuffer) add(ev Event) ([]Event, bool) {
	if r.find(ev.ID) >= 0 {
		return nil, false
	}
	r.entries = append(r.entries, refEntry{ev: ev, seq: r.nextSeq})
	r.nextSeq++
	r.sort()
	return r.evictOverflow(), true
}

func (r *refBuffer) raiseAge(id EventID, age int) bool {
	i := r.find(id)
	if i < 0 {
		return false
	}
	if age > r.entries[i].ev.Age {
		r.entries[i].ev.Age = age
		r.sort()
	}
	return true
}

func (r *refBuffer) incrementAges() {
	for i := range r.entries {
		r.entries[i].ev.Age++
	}
}

func (r *refBuffer) dropExpired(maxAge int) []Event {
	var expired []Event
	// Sorted age-ascending: the expired tail, oldest first.
	for i := len(r.entries) - 1; i >= 0; i-- {
		if r.entries[i].ev.Age > maxAge {
			expired = append(expired, r.entries[i].ev)
		}
	}
	kept := r.entries[:0]
	for _, e := range r.entries {
		if e.ev.Age <= maxAge {
			kept = append(kept, e)
		}
	}
	r.entries = kept
	return expired
}

func (r *refBuffer) setCapacity(capacity int) []Event {
	r.capacity = capacity
	return r.evictOverflow()
}

func (r *refBuffer) snapshot() []Event {
	out := make([]Event, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.ev
	}
	return out
}

func sameEvents(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Age != b[i].Age {
			return false
		}
	}
	return true
}

// TestBufferMatchesModel drives the slab Buffer and the naive reference
// with identical random operation sequences and asserts identical
// eviction order and snapshots after every step.
func TestBufferMatchesModel(t *testing.T) {
	for seedIdx, seed := range []uint64{1, 2, 3, 17, 99} {
		rng := rand.New(rand.NewPCG(seed, seed*7+3))
		const capacity = 12
		buf, err := NewBuffer(capacity)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefBuffer(capacity)
		var nextSeq uint64
		var known []EventID // every id ever inserted, for RaiseAge draws

		for step := 0; step < 3000; step++ {
			var opName string
			var got, want []Event
			switch op := rng.IntN(100); {
			case op < 55: // Add
				ev := Event{
					ID:  EventID{Origin: "m", Seq: nextSeq},
					Age: rng.IntN(8),
				}
				nextSeq++
				known = append(known, ev.ID)
				opName = fmt.Sprintf("Add(%s age=%d)", ev.ID, ev.Age)
				var err error
				got, err = buf.Add(ev)
				if err != nil {
					t.Fatalf("seed %d step %d: %s: %v", seedIdx, step, opName, err)
				}
				want, _ = ref.add(ev)
			case op < 75: // RaiseAge on a known id (present or long gone)
				if len(known) == 0 {
					continue
				}
				id := known[rng.IntN(len(known))]
				age := rng.IntN(12)
				opName = fmt.Sprintf("RaiseAge(%s, %d)", id, age)
				if g, w := buf.RaiseAge(id, age), ref.raiseAge(id, age); g != w {
					t.Fatalf("seed %d step %d: %s: present=%v, model says %v", seedIdx, step, opName, g, w)
				}
			case op < 85: // IncrementAges
				opName = "IncrementAges"
				buf.IncrementAges()
				ref.incrementAges()
			case op < 95: // DropExpired
				maxAge := 2 + rng.IntN(8)
				opName = fmt.Sprintf("DropExpired(%d)", maxAge)
				got = buf.DropExpired(maxAge)
				want = ref.dropExpired(maxAge)
			default: // SetCapacity
				capacity := 4 + rng.IntN(16)
				opName = fmt.Sprintf("SetCapacity(%d)", capacity)
				var err error
				got, err = buf.SetCapacity(capacity)
				if err != nil {
					t.Fatalf("seed %d step %d: %s: %v", seedIdx, step, opName, err)
				}
				want = ref.setCapacity(capacity)
			}

			if !sameEvents(got, want) {
				t.Fatalf("seed %d step %d: %s: eviction order diverged:\n slab: %v\nmodel: %v",
					seedIdx, step, opName, got, want)
			}
			if snap, wantSnap := buf.Snapshot(), ref.snapshot(); !sameEvents(snap, wantSnap) {
				t.Fatalf("seed %d step %d: %s: snapshot diverged:\n slab: %v\nmodel: %v",
					seedIdx, step, opName, snap, wantSnap)
			}
			if appended := buf.AppendSnapshot(nil); !sameEvents(appended, buf.Snapshot()) {
				t.Fatalf("seed %d step %d: AppendSnapshot != Snapshot", seedIdx, step)
			}
			if buf.Len() != len(ref.entries) {
				t.Fatalf("seed %d step %d: Len = %d, model has %d", seedIdx, step, buf.Len(), len(ref.entries))
			}
			if err := buf.checkInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %s: invariants: %v", seedIdx, step, opName, err)
			}
		}
	}
}

package gossip

import "fmt"

// MessageKind discriminates the message types on the wire. The zero
// value is a regular gossip exchange; the recovery kinds carry the
// anti-entropy pull-repair traffic (internal/recovery) and the probe
// kinds carry the SWIM-style failure-detection traffic
// (internal/failure).
type MessageKind uint8

const (
	// KindGossip is a regular push-gossip round message (Figure 1),
	// optionally piggybacking a recovery digest.
	KindGossip MessageKind = iota
	// KindRecoveryRequest asks the receiver to retransmit the events
	// listed in Request.
	KindRecoveryRequest
	// KindRecoveryResponse carries retransmitted events answering a
	// request; Events holds the payloads.
	KindRecoveryResponse
	// KindPing is a failure-detector liveness probe; the receiver
	// answers with KindPingAck. Probe names the probed subject when the
	// ping is sent by a proxy on another node's behalf.
	KindPing
	// KindPingAck answers a ping, echoing ProbeSeq. Probe carries the
	// subject when the ack is relayed through a proxy.
	KindPingAck
	// KindPingReq asks the receiver to probe Probe on the sender's
	// behalf (SWIM's indirect probe) and relay the ack back.
	KindPingReq

	// maxMessageKind is the highest defined kind; codecs reject beyond.
	maxMessageKind = KindPingReq
)

// String returns a short kind name.
func (k MessageKind) String() string {
	switch k {
	case KindGossip:
		return "gossip"
	case KindRecoveryRequest:
		return "recovery-request"
	case KindRecoveryResponse:
		return "recovery-response"
	case KindPing:
		return "ping"
	case KindPingAck:
		return "ping-ack"
	case KindPingReq:
		return "ping-req"
	default:
		return fmt.Sprintf("MessageKind(%d)", uint8(k))
	}
}

// Valid reports whether the kind is one of the defined wire kinds.
func (k MessageKind) Valid() bool { return k <= maxMessageKind }

// MemberStatus is a failure detector's opinion of a group member,
// disseminated in MemberUpdate entries piggybacked on gossip.
type MemberStatus uint8

const (
	// MemberAlive: the member is (again) reachable.
	MemberAlive MemberStatus = iota
	// MemberSuspect: probes failed; the member may have crashed.
	MemberSuspect
	// MemberConfirmed: the suspicion timeout elapsed unrefuted — the
	// member is declared crashed and should leave views.
	MemberConfirmed
)

// String names the status.
func (s MemberStatus) String() string {
	switch s {
	case MemberAlive:
		return "alive"
	case MemberSuspect:
		return "suspect"
	case MemberConfirmed:
		return "confirmed"
	default:
		return fmt.Sprintf("MemberStatus(%d)", uint8(s))
	}
}

// MemberUpdate is one failure-detection rumor: a (node, status,
// incarnation) triple. Incarnations totally order updates about the
// same node: an alive update refutes suspicion only with a strictly
// higher incarnation, which only the subject itself can issue (SWIM's
// refutation rule).
type MemberUpdate struct {
	Node        NodeID
	Status      MemberStatus
	Incarnation uint64
}

// Message is one gossip exchange: the sender's buffered events plus the
// small control headers that ride along with them. Per the paper, the
// adaptation mechanism adds no messages of its own — the SamplePeriod
// and MinBuff header fields are the entirety of its wire footprint
// (Figure 5(a)), and the Subs/Unsubs fields carry lpbcast's partial-view
// membership traffic.
//
// A message built by Node.Tick is shared read-only between the fanout
// targets; receivers copy event values into their own buffers and must
// not mutate the message.
type Message struct {
	// Kind discriminates gossip from recovery control traffic. The zero
	// value is a regular gossip message.
	Kind MessageKind
	// From is the sending node.
	From NodeID
	// Group tags the broadcast group (topic) this gossip belongs to.
	// Empty for single-group deployments; the pub/sub layer routes by
	// it (the paper's motivating multi-group scenario).
	Group string
	// Round is the sender's local round counter. Diagnostic only.
	Round uint64

	// Adaptive reports whether the adaptation header fields below are
	// meaningful. Plain lpbcast nodes leave it false.
	Adaptive bool
	// SamplePeriod is the sender's current sample period s.
	SamplePeriod uint64
	// MinBuff is the sender's running estimate of the smallest buffer
	// capacity in the group for SamplePeriod.
	MinBuff int

	// Events are the sender's buffered events (its full buffer, as in
	// Figure 1).
	Events []Event

	// KMin carries the κ-smallest extension's per-node capacity
	// observations (empty for the paper's base mechanism, which needs
	// only the scalar MinBuff).
	KMin []BuffCap

	// Subs and Unsubs piggyback partial-view membership churn
	// (subscriptions and unsubscriptions) on data gossip.
	Subs   []NodeID
	Unsubs []NodeID

	// Digest piggybacks the identifiers of events the sender has seen
	// recently and can retransmit — the anti-entropy advertisement
	// (internal/recovery). Empty when recovery is disabled.
	Digest []EventID
	// Request lists the event identifiers a KindRecoveryRequest asks
	// the receiver to retransmit.
	Request []EventID

	// Traced reports that the sender propagates wire trace context:
	// each event's Hop counter rides the wire (wire v4's trace flag),
	// so receivers stitch exact causal hop paths instead of the age
	// approximation. Senders set it when a rumor tracer is attached.
	Traced bool

	// Health piggybacks gossip-disseminated node health digests
	// (internal/health): each entry is one member's self-reported
	// counters and delivery-hops histogram. Empty when health
	// dissemination is off.
	Health []HealthDigest

	// Probe is the failure-detection subject: the node a KindPingReq
	// asks the receiver to probe, or the node a relayed KindPing /
	// KindPingAck is about. Empty for direct probes and non-probe
	// traffic.
	Probe NodeID
	// ProbeSeq correlates an ack with the probe that solicited it.
	ProbeSeq uint64
	// Updates piggybacks failure-detection rumors (alive / suspect /
	// confirmed transitions) on gossip and probe traffic — the SWIM
	// dissemination component. Empty when failure detection is off.
	Updates []MemberUpdate
}

// BuffCap is one (node, buffer capacity) observation, the unit of the
// κ-smallest extension's header.
type BuffCap struct {
	Node NodeID
	Cap  int
}

// AppendEvent appends one event to the message, reusing the Events
// backing array when capacity allows (decoders preallocate it).
func (m *Message) AppendEvent(ev Event) {
	m.Events = append(m.Events, ev)
}

// AppendEvents appends a batch of events to the message.
func (m *Message) AppendEvents(evs ...Event) {
	m.Events = append(m.Events, evs...)
}

// CopyForSend returns a copy of the message that is independent of the
// sender's per-round scratch state: the Message value and every slice
// hanging off it are copied, while event payload bytes — immutable by
// convention — stay shared. Transports and drivers that retain a
// message beyond the sending round (see Node.Tick's lifetime contract)
// use it instead of the deep Clone, which also duplicates payloads.
func (m *Message) CopyForSend() *Message {
	c := *m
	c.Events = append([]Event(nil), m.Events...)
	c.KMin = append([]BuffCap(nil), m.KMin...)
	c.Subs = append([]NodeID(nil), m.Subs...)
	c.Unsubs = append([]NodeID(nil), m.Unsubs...)
	c.Digest = append([]EventID(nil), m.Digest...)
	c.Request = append([]EventID(nil), m.Request...)
	c.Updates = append([]MemberUpdate(nil), m.Updates...)
	c.Health = append([]HealthDigest(nil), m.Health...)
	return &c
}

// Clone returns a deep copy of the message, including payloads. Used
// when a driver needs to hand the same logical message to mutating
// consumers. CopyForSend owns the one authoritative list of Message
// slice fields; Clone only deepens the event payloads on top of it.
func (m *Message) Clone() *Message {
	c := m.CopyForSend()
	for i, e := range c.Events {
		c.Events[i] = e.Clone()
	}
	return c
}

package gossip

import (
	"math/rand/v2"
	"testing"
	"time"
)

// staticPeers samples uniformly from a fixed member list.
type staticPeers []NodeID

func (s staticPeers) SamplePeers(self NodeID, k int, rng *rand.Rand) []NodeID {
	candidates := make([]NodeID, 0, len(s))
	for _, p := range s {
		if p != self {
			candidates = append(candidates, p)
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if len(candidates) > k {
		candidates = candidates[:k]
	}
	return candidates
}

func testParams() Params {
	return Params{Fanout: 2, Period: time.Second, MaxEvents: 8, MaxAge: 5}
}

func newTestNode(t *testing.T, id NodeID, peers PeerSampler, opts ...Option) *Node {
	t.Helper()
	n, err := NewNode(id, testParams(), peers, rand.New(rand.NewPCG(42, uint64(len(id)))), opts...)
	if err != nil {
		t.Fatalf("NewNode(%s): %v", id, err)
	}
	return n
}

func TestNewNodeValidation(t *testing.T) {
	peers := staticPeers{"a", "b"}
	rng := rand.New(rand.NewPCG(1, 1))
	cases := []struct {
		name string
		fn   func() (*Node, error)
	}{
		{"empty id", func() (*Node, error) { return NewNode("", testParams(), peers, rng) }},
		{"nil peers", func() (*Node, error) { return NewNode("a", testParams(), nil, rng) }},
		{"nil rng", func() (*Node, error) { return NewNode("a", testParams(), peers, nil) }},
		{"bad params", func() (*Node, error) {
			p := testParams()
			p.Fanout = 0
			return NewNode("a", p, peers, rng)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.fn(); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

func TestBroadcastDeliversLocallyAndBuffers(t *testing.T) {
	var delivered []Event
	n := newTestNode(t, "a", staticPeers{"a", "b"}, WithDeliver(func(e Event) {
		delivered = append(delivered, e)
	}))
	ev := n.Broadcast([]byte("hello"))
	if ev.ID.Origin != "a" || ev.ID.Seq != 0 || ev.Age != 0 {
		t.Fatalf("unexpected event %+v", ev)
	}
	if len(delivered) != 1 || string(delivered[0].Payload) != "hello" {
		t.Fatalf("local delivery missing: %v", delivered)
	}
	if n.BufferLen() != 1 {
		t.Fatalf("buffer len %d, want 1", n.BufferLen())
	}
	ev2 := n.Broadcast(nil)
	if ev2.ID.Seq != 1 {
		t.Fatalf("seq %d, want 1", ev2.ID.Seq)
	}
}

func TestTickAdvancesAgesAndFansOut(t *testing.T) {
	n := newTestNode(t, "a", staticPeers{"a", "b", "c", "d"})
	n.Broadcast([]byte("x"))
	outs := n.Tick()
	if len(outs) != 2 {
		t.Fatalf("fanout %d, want 2", len(outs))
	}
	seen := map[NodeID]bool{}
	for _, o := range outs {
		if o.To == "a" {
			t.Fatal("node gossiped to itself")
		}
		if seen[o.To] {
			t.Fatalf("duplicate target %s", o.To)
		}
		seen[o.To] = true
		if len(o.Msg.Events) != 1 || o.Msg.Events[0].Age != 1 {
			t.Fatalf("message events %+v, want one event with age 1", o.Msg.Events)
		}
		if o.Msg.From != "a" {
			t.Fatalf("message from %s", o.Msg.From)
		}
	}
	if n.Round() != 1 {
		t.Fatalf("round %d, want 1", n.Round())
	}
}

func TestTickExpiresOldEvents(t *testing.T) {
	n := newTestNode(t, "a", staticPeers{"a", "b"})
	n.Broadcast(nil)
	for i := 0; i < 5; i++ {
		n.Tick()
	}
	if n.BufferLen() != 1 {
		t.Fatalf("event should still be buffered at age 5 (k=5), len=%d", n.BufferLen())
	}
	n.Tick() // age 6 > k
	if n.BufferLen() != 0 {
		t.Fatalf("event not expired, len=%d", n.BufferLen())
	}
	if got := n.Stats().DroppedExpired; got != 1 {
		t.Fatalf("DroppedExpired = %d, want 1", got)
	}
}

func TestReceiveDeliversOnceAndSuppressesDuplicates(t *testing.T) {
	var got []Event
	n := newTestNode(t, "b", staticPeers{"a", "b"}, WithDeliver(func(e Event) {
		got = append(got, e)
	}))
	msg := &Message{From: "a", Events: []Event{mkEvent("a", 0, 1), mkEvent("a", 1, 2)}}
	n.Receive(msg)
	if len(got) != 2 {
		t.Fatalf("delivered %d, want 2", len(got))
	}
	n.Receive(msg)
	if len(got) != 2 {
		t.Fatalf("duplicates delivered: %d", len(got))
	}
	st := n.Stats()
	if st.Duplicates != 2 {
		t.Fatalf("Duplicates = %d, want 2", st.Duplicates)
	}
	if st.MessagesReceived != 2 || st.EventsReceived != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestReceiveRaisesAgeOfDuplicates(t *testing.T) {
	n := newTestNode(t, "b", staticPeers{"a", "b"})
	n.Receive(&Message{From: "a", Events: []Event{mkEvent("a", 0, 1)}})
	n.Receive(&Message{From: "c", Events: []Event{mkEvent("a", 0, 4)}})
	if age, ok := n.buf.Age(EventID{Origin: "a", Seq: 0}); !ok || age != 4 {
		t.Fatalf("age = %d (present=%v), want 4", age, ok)
	}
}

func TestReceiveCapacityEvictionUpdatesStats(t *testing.T) {
	n := newTestNode(t, "b", staticPeers{"a", "b"})
	// Capacity is 8: send 10 events with distinct ages.
	events := make([]Event, 10)
	for i := range events {
		events[i] = mkEvent("a", uint64(i), i)
	}
	n.Receive(&Message{From: "a", Events: events})
	if n.BufferLen() != 8 {
		t.Fatalf("buffer len %d, want 8", n.BufferLen())
	}
	st := n.Stats()
	if st.DroppedCapacity != 2 {
		t.Fatalf("DroppedCapacity = %d, want 2", st.DroppedCapacity)
	}
	// Victims are the oldest: ages 9 and 8 (17 total). Note the events
	// arrive youngest-first so the last two arrivals displace them.
	if st.DroppedAgeSum != 17 {
		t.Fatalf("DroppedAgeSum = %d, want 17", st.DroppedAgeSum)
	}
	if got := st.AvgDroppedAge(); got != 8.5 {
		t.Fatalf("AvgDroppedAge = %v, want 8.5", got)
	}
}

func TestSetBufferCapacityEvictsAndCounts(t *testing.T) {
	n := newTestNode(t, "a", staticPeers{"a", "b"})
	for i := 0; i < 8; i++ {
		n.Broadcast(nil)
	}
	if err := n.SetBufferCapacity(3); err != nil {
		t.Fatal(err)
	}
	if n.BufferLen() != 3 || n.BufferCapacity() != 3 {
		t.Fatalf("len/cap = %d/%d, want 3/3", n.BufferLen(), n.BufferCapacity())
	}
	if got := n.Stats().DroppedResize; got != 5 {
		t.Fatalf("DroppedResize = %d, want 5", got)
	}
	if err := n.SetBufferCapacity(0); err == nil {
		t.Fatal("SetBufferCapacity(0): want error")
	}
}

// recordingExt records hook invocations.
type recordingExt struct {
	ticks    int
	receives int
	evicted  map[EvictReason]int
	lastMsg  *Message
}

func (r *recordingExt) OnTick(n *Node, out *Message) {
	r.ticks++
	out.Adaptive = true
	out.SamplePeriod = 7
	out.MinBuff = 42
}

func (r *recordingExt) OnReceive(n *Node, in *Message) {
	r.receives++
	r.lastMsg = in
}

func (r *recordingExt) OnEvicted(n *Node, evicted []Event, reason EvictReason) {
	if r.evicted == nil {
		r.evicted = map[EvictReason]int{}
	}
	r.evicted[reason] += len(evicted)
}

func TestExtensionHooks(t *testing.T) {
	ext := &recordingExt{}
	n := newTestNode(t, "a", staticPeers{"a", "b"}, WithExtensions(ext))

	n.Broadcast(nil)
	outs := n.Tick()
	if ext.ticks != 1 {
		t.Fatalf("OnTick calls = %d, want 1", ext.ticks)
	}
	if len(outs) == 0 || !outs[0].Msg.Adaptive || outs[0].Msg.SamplePeriod != 7 || outs[0].Msg.MinBuff != 42 {
		t.Fatalf("extension header not applied: %+v", outs[0].Msg)
	}

	// Receive triggers OnReceive after events are stored.
	in := &Message{From: "b", Events: []Event{mkEvent("b", 0, 1)}}
	n.Receive(in)
	if ext.receives != 1 || ext.lastMsg != in {
		t.Fatalf("OnReceive not called with the incoming message")
	}

	// Capacity eviction reaches OnEvicted.
	events := make([]Event, 12)
	for i := range events {
		events[i] = mkEvent("c", uint64(i), i)
	}
	n.Receive(&Message{From: "c", Events: events})
	if ext.evicted[EvictCapacity] == 0 {
		t.Fatal("OnEvicted(EvictCapacity) never called")
	}

	// Resize eviction reaches OnEvicted.
	if err := n.SetBufferCapacity(1); err != nil {
		t.Fatal(err)
	}
	if ext.evicted[EvictResize] == 0 {
		t.Fatal("OnEvicted(EvictResize) never called")
	}
}

func TestEvictReasonString(t *testing.T) {
	cases := map[EvictReason]string{
		EvictCapacity:   "capacity",
		EvictExpired:    "expired",
		EvictResize:     "resize",
		EvictReason(99): "EvictReason(99)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(r), got, want)
		}
	}
}

// TestTwoNodeDissemination wires two nodes directly and checks an event
// crosses over with its age advanced.
func TestTwoNodeDissemination(t *testing.T) {
	peers := staticPeers{"a", "b"}
	var deliveredAtB []Event
	na := newTestNode(t, "a", peers)
	nb := newTestNode(t, "b", peers, WithDeliver(func(e Event) {
		deliveredAtB = append(deliveredAtB, e)
	}))

	na.Broadcast([]byte("payload"))
	for _, out := range na.Tick() {
		if out.To == "b" {
			nb.Receive(out.Msg)
		}
	}
	if len(deliveredAtB) != 1 {
		t.Fatalf("delivered %d at b, want 1", len(deliveredAtB))
	}
	if deliveredAtB[0].Age != 1 {
		t.Fatalf("age at delivery = %d, want 1", deliveredAtB[0].Age)
	}
	if string(deliveredAtB[0].Payload) != "payload" {
		t.Fatalf("payload %q", deliveredAtB[0].Payload)
	}
}

func TestEventIDString(t *testing.T) {
	eid := EventID{Origin: "node-3", Seq: 17}
	if got := eid.String(); got != "node-3/17" {
		t.Fatalf("String = %q", got)
	}
}

func TestEventCloneIsDeep(t *testing.T) {
	e := Event{ID: id("a", 1), Age: 2, Payload: []byte{1, 2, 3}}
	c := e.Clone()
	c.Payload[0] = 9
	if e.Payload[0] != 1 {
		t.Fatal("Clone shares payload")
	}
}

func TestMessageCloneIsDeep(t *testing.T) {
	m := &Message{
		From:   "a",
		Events: []Event{{ID: id("a", 1), Payload: []byte{5}}},
		Subs:   []NodeID{"x"},
		Unsubs: []NodeID{"y"},
	}
	c := m.Clone()
	c.Events[0].Payload[0] = 7
	c.Subs[0] = "z"
	if m.Events[0].Payload[0] != 5 || m.Subs[0] != "x" {
		t.Fatal("Clone shares state with original")
	}
}

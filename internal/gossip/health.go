package gossip

import "adaptivegossip/internal/observe"

// HealthDigest is one member's self-reported health summary, the unit
// of gossip-disseminated cluster observability (internal/health). A
// node periodically folds its own counters and delivery-hops histogram
// into a digest and piggybacks it — plus a rotating sample of digests
// heard from others — on outgoing gossip, so every member converges on
// a view of every other member without new message types (the same
// piggyback seam the recovery digest uses).
//
// Digests about the same node are ordered by Round: receivers keep the
// digest with the highest Round and discard the rest, so stale relays
// can circulate harmlessly.
type HealthDigest struct {
	// Node is the member the digest describes (its reporter).
	Node NodeID
	// Round is the reporter's gossip round when the digest was built.
	// It versions the digest: higher Round wins a merge.
	Round uint64
	// WallMillis is the reporter's wall clock (Unix milliseconds) when
	// the digest was built. Zero in deterministic drivers (simulator).
	WallMillis uint64

	// Published counts events the reporter originated.
	Published uint64
	// Delivered counts events the reporter delivered to its
	// application.
	Delivered uint64
	// DroppedCapacity counts buffer evictions by capacity pressure.
	DroppedCapacity uint64
	// DroppedExpired counts buffer evictions by age expiry.
	DroppedExpired uint64
	// MessagesSent counts gossip messages the reporter sent.
	MessagesSent uint64
	// MessagesReceived counts gossip messages the reporter received.
	MessagesReceived uint64
	// BytesSent counts wire bytes sent (zero on fabrics that do not
	// serialize).
	BytesSent uint64
	// BytesReceived counts wire bytes received.
	BytesReceived uint64

	// BufferLen and BufferCap are the reporter's events-buffer
	// occupancy and capacity at digest time.
	BufferLen int
	BufferCap int

	// DeliverHops is the reporter's delivery hop-count distribution —
	// merged across members (HistogramSnapshot.Merge) it measures the
	// cluster's live rounds-to-convergence.
	DeliverHops observe.HistogramSnapshot
}

// Package plot renders small multi-series line charts as text — enough
// to eyeball the shape of every reproduced figure straight from the
// terminal (`gossipsim -plot`), the way one would compare against the
// paper's plots.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is one named curve.
type Series struct {
	Name   string
	Points []Point
}

// Config sizes and labels a chart.
type Config struct {
	// Title is printed above the chart.
	Title string
	// Width and Height are the plot area size in characters (axes and
	// labels excluded). Zero values default to 64×16.
	Width  int
	Height int
	// XLabel and YLabel annotate the axes.
	XLabel string
	YLabel string
	// YMin/YMax fix the y range; both zero means auto-scale.
	YMin float64
	YMax float64
}

var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Render draws the series onto w. Series beyond the marker palette
// reuse markers cyclically.
func Render(w io.Writer, cfg Config, series ...Series) error {
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	width := cfg.Width
	if width <= 0 {
		width = 64
	}
	height := cfg.Height
	if height <= 0 {
		height = 16
	}
	if width < 8 || height < 4 {
		return fmt.Errorf("plot: area %dx%d too small", width, height)
	}

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			points++
			xMin = math.Min(xMin, p.X)
			xMax = math.Max(xMax, p.X)
			yMin = math.Min(yMin, p.Y)
			yMax = math.Max(yMax, p.Y)
		}
	}
	if points == 0 {
		return fmt.Errorf("plot: no finite points")
	}
	if cfg.YMin != 0 || cfg.YMax != 0 {
		yMin, yMax = cfg.YMin, cfg.YMax
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			col := int((p.X - xMin) / (xMax - xMin) * float64(width-1))
			row := int((p.Y - yMin) / (yMax - yMin) * float64(height-1))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			r := height - 1 - row
			grid[r][col] = m
		}
	}

	if cfg.Title != "" {
		fmt.Fprintf(w, "  %s\n", cfg.Title)
	}
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "  [%s]\n", strings.Join(legend, "   "))

	yLabelAt := func(row int) string {
		v := yMax - (yMax-yMin)*float64(row)/float64(height-1)
		return fmt.Sprintf("%8.1f", v)
	}
	for row := 0; row < height; row++ {
		label := strings.Repeat(" ", 8)
		if row == 0 || row == height-1 || row == height/2 {
			label = yLabelAt(row)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(grid[row]))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	left := fmt.Sprintf("%.1f", xMin)
	right := fmt.Sprintf("%.1f", xMax)
	pad := width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(w, "%s %s%s%s\n", strings.Repeat(" ", 8), left, strings.Repeat(" ", pad), right)
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(w, "%s  x: %s, y: %s\n", strings.Repeat(" ", 8), cfg.XLabel, cfg.YLabel)
	}
	return nil
}

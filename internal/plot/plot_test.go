package plot

import (
	"math"
	"strings"
	"testing"
)

func line(from, to float64, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		x := float64(i)
		pts[i] = Point{X: x, Y: from + (to-from)*x/float64(n-1)}
	}
	return pts
}

func TestRenderBasics(t *testing.T) {
	var sb strings.Builder
	err := Render(&sb, Config{Title: "demo", XLabel: "t", YLabel: "v"},
		Series{Name: "up", Points: line(0, 10, 20)},
		Series{Name: "down", Points: line(10, 0, 20)},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "* up", "+ down", "x: t, y: v", "10.0", "0.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("markers missing")
	}
}

func TestRenderShapeOrientation(t *testing.T) {
	// A rising line must put its marker high-right and low-left.
	var sb strings.Builder
	if err := Render(&sb, Config{Width: 20, Height: 5}, Series{Name: "r", Points: line(0, 1, 10)}); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(sb.String(), "\n")
	// Find first and last grid rows (those containing '|').
	var gridRows []string
	for _, r := range rows {
		if strings.Contains(r, "|") {
			gridRows = append(gridRows, r[strings.Index(r, "|")+1:])
		}
	}
	if len(gridRows) != 5 {
		t.Fatalf("grid rows %d", len(gridRows))
	}
	top, bottom := gridRows[0], gridRows[len(gridRows)-1]
	if strings.IndexByte(top, '*') < strings.IndexByte(bottom, '*') {
		t.Fatalf("rising line rendered falling:\n%s", sb.String())
	}
}

func TestRenderErrors(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, Config{}); err == nil {
		t.Fatal("no series accepted")
	}
	if err := Render(&sb, Config{}, Series{Name: "empty"}); err == nil {
		t.Fatal("no points accepted")
	}
	if err := Render(&sb, Config{Width: 2, Height: 2}, Series{Points: line(0, 1, 3)}); err == nil {
		t.Fatal("tiny area accepted")
	}
	nan := Series{Points: []Point{{X: math.NaN(), Y: math.NaN()}}}
	if err := Render(&sb, Config{}, nan); err == nil {
		t.Fatal("all-NaN series accepted")
	}
}

func TestRenderFixedYRangeAndClipping(t *testing.T) {
	var sb strings.Builder
	err := Render(&sb, Config{YMin: 0, YMax: 5, Width: 20, Height: 5},
		Series{Name: "s", Points: []Point{{0, 1}, {1, 99}}}) // 99 clipped
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "5.0") {
		t.Fatalf("fixed y max not used:\n%s", sb.String())
	}
}

func TestRenderConstantSeries(t *testing.T) {
	var sb strings.Builder
	err := Render(&sb, Config{}, Series{Name: "flat", Points: []Point{{0, 3}, {1, 3}}})
	if err != nil {
		t.Fatal(err)
	}
}

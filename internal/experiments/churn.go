package experiments

import (
	"fmt"
	"io"
	"time"

	"adaptivegossip/internal/workload"
)

// ChurnRow is one churn-rate point of the failure-detection experiment:
// the same crash/restart trace run twice, with the detector off and on.
type ChurnRow struct {
	// Rate is the churn intensity in crash events per minute.
	Rate float64
	// Delivery ratio (mean % of members reached per message; crashed
	// members count in the denominator, so both arms share the same
	// unavoidable downtime loss).
	OffCoveragePct float64
	OnCoveragePct  float64
	// Mean view accuracy: % of view entries pointing at live members.
	OffViewAccPct float64
	OnViewAccPct  float64
	// Detector behaviour in the on-run.
	DetectionRounds float64 // mean crash→confirm latency per observer, in rounds
	Confirms        uint64  // confirm verdicts across the group
	FalseConfirms   uint64  // confirms of actually-live nodes (ground truth)
	// OverheadPct is the on-run's probe traffic (pings, acks,
	// ping-reqs) as a percentage of its push-gossip messages.
	OverheadPct float64
}

// DefaultChurnConfig shapes base into the regime the detector exists
// for: every node holds its own view (PerNodeViews), so without
// detection a crashed member keeps soaking up fanout from everyone
// until it restarts. Redundancy is kept deliberately lean (small
// fanout, short event lifetime) so that wasted fanout actually costs
// coverage, as it would at production fan-in.
func DefaultChurnConfig(base Config) Config {
	cfg := base
	cfg.Adaptive = false // isolate the detector from rate adaptation
	cfg.PerNodeViews = true
	cfg.Fanout = 3
	cfg.MaxAge = 5
	// Roomy buffer: coverage differences should come from fanout
	// targeting, not capacity drops.
	if births := int(cfg.OfferedRate * cfg.Period.Seconds()); births > 0 {
		cfg.Buffer = 4 * births
	}
	// Suspicion sized so detection completes well inside a typical
	// downtime, leaving rounds of reclaimed fanout.
	cfg.FailureSuspicionRounds = 4
	return cfg
}

// ChurnDowntime is the modelled outage length in rounds: long enough
// that the detector's confirm (≈ probe + indirect + suspicion rounds)
// buys many rounds of reclaimed fanout before the node returns.
const ChurnDowntime = 40

// RunChurn sweeps the churn rate (crash events per minute) and measures
// delivery and view accuracy with the failure detector disabled and
// enabled. The crash/restart trace, workload and membership are
// identical between the paired runs. Churn points and their off/on arms
// run on the package worker pool.
func RunChurn(base Config, rates []float64, seeds int) ([]ChurnRow, error) {
	rows := make([]ChurnRow, len(rates))
	err := forEach(len(rates), func(i int) error {
		rate := rates[i]
		cfg := base
		downFor := time.Duration(ChurnDowntime) * cfg.Period
		// Churn runs from shortly after start through the end of the
		// measured window; restarts beyond the window land in the drain.
		cfg.Crashes, cfg.Restarts = workload.ChurnTrace(
			cfg.N, rate/60, downFor, cfg.Warmup/2, cfg.Warmup/2+cfg.Duration, cfg.Seed)

		offRes, onRes, err := runPair(
			func() (RunResult, error) {
				off := cfg
				off.FailureDetection = false
				res, err := RunSeeds(off, seeds)
				if err != nil {
					return RunResult{}, fmt.Errorf("churn experiment rate %v (off): %w", rate, err)
				}
				return res, nil
			},
			func() (RunResult, error) {
				on := cfg
				on.FailureDetection = true
				res, err := RunSeeds(on, seeds)
				if err != nil {
					return RunResult{}, fmt.Errorf("churn experiment rate %v (on): %w", rate, err)
				}
				return res, nil
			})
		if err != nil {
			return err
		}

		row := ChurnRow{
			Rate:            rate,
			OffCoveragePct:  offRes.Summary.MeanReceiversPct,
			OnCoveragePct:   onRes.Summary.MeanReceiversPct,
			OffViewAccPct:   offRes.ViewAccuracyPct,
			OnViewAccPct:    onRes.ViewAccuracyPct,
			DetectionRounds: onRes.DetectionLatencyRounds,
			Confirms:        onRes.Failure.Confirms,
			FalseConfirms:   onRes.FalseConfirms,
		}
		if g := onRes.Network.GossipSent; g > 0 {
			row.OverheadPct = 100 * float64(onRes.Network.ProbeSent()) / float64(g)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderChurn prints the churn-sweep table.
func RenderChurn(w io.Writer, rows []ChurnRow) {
	fmt.Fprintln(w, "# Churn — Delivery ratio and view accuracy vs churn rate, failure detection off/on")
	fmt.Fprintln(w, "# churn(/min)  coverage-off(%)  coverage-on(%)  viewacc-off(%)  viewacc-on(%)  detect(rounds)  confirms  false+  overhead(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%12.1f  %15.2f  %14.2f  %14.2f  %13.2f  %14.1f  %8d  %6d  %11.2f\n",
			r.Rate, r.OffCoveragePct, r.OnCoveragePct, r.OffViewAccPct, r.OnViewAccPct,
			r.DetectionRounds, r.Confirms, r.FalseConfirms, r.OverheadPct)
	}
}

package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"adaptivegossip/internal/metrics"
	"adaptivegossip/internal/workload"
)

// AblationRow is one measurement of an ablation study (A1–A4): the
// design-choice knobs the paper argues for in §3.3–§3.4.
type AblationRow struct {
	Study   string
	Variant string
	// AllowedMean/AllowedStd describe the aggregate allowed rate in the
	// measured window (oscillation shows up in the std).
	AllowedMean float64
	AllowedStd  float64
	// AtomicityPct is the reliability achieved.
	AtomicityPct float64
	// InputRate is the admitted load.
	InputRate float64
	// Note carries a per-study reading aid.
	Note string
}

// allowedStats computes mean/std of the aggregate allowed-rate series
// within [from, to) offsets.
func allowedStats(series []metrics.GaugePoint, epochOffsetFrom, epochOffsetTo time.Duration, bucket time.Duration) (mean, std float64) {
	var xs []float64
	for i, p := range series {
		off := time.Duration(i) * bucket
		if off < epochOffsetFrom || off >= epochOffsetTo {
			continue
		}
		if p.N > 0 {
			xs = append(xs, p.Mean)
		}
	}
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// RunAblationRandomization compares the paper's randomized increase
// (pr<1) against synchronized increases (pr=1) in an overloaded group:
// without randomization all senders surge together and the allowed rate
// oscillates more (paper §3.3).
func RunAblationRandomization(base Config, seeds int) ([]AblationRow, error) {
	prs := []float64{0.25, 1.0}
	rows := make([]AblationRow, len(prs))
	err := forEach(len(prs), func(i int) error {
		pr := prs[i]
		cfg := base
		cfg.Adaptive = true
		cfg.Buffer = 60
		cfg.OfferedRate = 30
		cfg.Core = DefaultExperimentCore(cfg.OfferedRate / float64(orAll(cfg.Senders, cfg.N)))
		cfg.Core.IncreaseProb = pr
		res, err := RunSeeds(cfg, seeds)
		if err != nil {
			return fmt.Errorf("ablation randomization pr=%v: %w", pr, err)
		}
		mean, std := allowedStats(res.AllowedSeries, cfg.Warmup, cfg.Warmup+cfg.Duration, res.Config.Bucket)
		rows[i] = AblationRow{
			Study:        "A1 randomized increase",
			Variant:      fmt.Sprintf("pr=%.2f", pr),
			AllowedMean:  mean,
			AllowedStd:   std,
			AtomicityPct: res.Summary.AtomicityPct,
			InputRate:    res.InputRate,
			Note:         "higher std = synchronized surges",
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunAblationTokenCheck compares the avgTokens usage guard on and off
// with a sender population offering well below capacity: without the
// guard the unused allowance inflates toward MaxRate (paper §3.3's
// inflated-allowance attack).
func RunAblationTokenCheck(base Config, seeds int) ([]AblationRow, error) {
	variants := []bool{false, true}
	rows := make([]AblationRow, len(variants))
	err := forEach(len(variants), func(i int) error {
		disabled := variants[i]
		cfg := base
		cfg.Adaptive = true
		cfg.Buffer = 150
		cfg.OfferedRate = 10 // far below the ~37 msg/s capacity
		share := cfg.OfferedRate / float64(orAll(cfg.Senders, cfg.N))
		cfg.Core = DefaultExperimentCore(share)
		cfg.Core.MaxRate = 20 * share // room to inflate into
		cfg.Core.DisableTokenCheck = disabled
		res, err := RunSeeds(cfg, seeds)
		if err != nil {
			return fmt.Errorf("ablation token check disabled=%v: %w", disabled, err)
		}
		mean, std := allowedStats(res.AllowedSeries, cfg.Warmup, cfg.Warmup+cfg.Duration, res.Config.Bucket)
		rows[i] = AblationRow{
			Study:        "A2 avgTokens guard",
			Variant:      fmt.Sprintf("check=%v", !disabled),
			AllowedMean:  mean,
			AllowedStd:   std,
			AtomicityPct: res.Summary.AtomicityPct,
			InputRate:    res.InputRate,
			Note:         fmt.Sprintf("offered %.1f; inflation = allowed ≫ offered", cfg.OfferedRate),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunAblationWindow varies W in a recovery scenario: 20% of nodes start
// constrained and grow mid-run. Small W reclaims capacity fast but
// flaps; large W holds the stale minimum for W periods (paper §3.4).
func RunAblationWindow(base Config, windows []int, seeds int) ([]AblationRow, error) {
	rows := make([]AblationRow, len(windows))
	affected := workload.FirstFraction(base.N, 0.2)
	err := forEach(len(windows), func(i int) error {
		w := windows[i]
		cfg := base
		cfg.Adaptive = true
		cfg.Buffer = 120
		cfg.OfferedRate = 30
		cfg.Warmup = 0
		grow := cfg.Duration / 2
		cfg.Resizes = []workload.Resize{
			{At: 0, Nodes: affected, Capacity: 45},
			{At: grow, Nodes: affected, Capacity: 120},
		}
		cfg.Core = DefaultExperimentCore(cfg.OfferedRate / float64(orAll(cfg.Senders, cfg.N)))
		cfg.Core.Window = w
		res, err := RunSeeds(cfg, seeds)
		if err != nil {
			return fmt.Errorf("ablation window W=%d: %w", w, err)
		}
		// Measure the recovery half only: how much of the restored
		// capacity the group reclaims.
		mean, std := allowedStats(res.AllowedSeries, grow, cfg.Duration, res.Config.Bucket)
		rows[i] = AblationRow{
			Study:        "A3 estimate window",
			Variant:      fmt.Sprintf("W=%d", w),
			AllowedMean:  mean,
			AllowedStd:   std,
			AtomicityPct: res.Summary.AtomicityPct,
			InputRate:    res.InputRate,
			Note:         "mean allowed in the post-recovery half",
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunAblationAlpha varies the EMA weight under overload: a low α makes
// avgAge noisy and the allowed rate oscillate (paper §3.4).
func RunAblationAlpha(base Config, alphas []float64, seeds int) ([]AblationRow, error) {
	rows := make([]AblationRow, len(alphas))
	err := forEach(len(alphas), func(i int) error {
		a := alphas[i]
		cfg := base
		cfg.Adaptive = true
		cfg.Buffer = 60
		cfg.OfferedRate = 30
		cfg.Core = DefaultExperimentCore(cfg.OfferedRate / float64(orAll(cfg.Senders, cfg.N)))
		cfg.Core.Alpha = a
		res, err := RunSeeds(cfg, seeds)
		if err != nil {
			return fmt.Errorf("ablation alpha=%v: %w", a, err)
		}
		mean, std := allowedStats(res.AllowedSeries, cfg.Warmup, cfg.Warmup+cfg.Duration, res.Config.Bucket)
		rows[i] = AblationRow{
			Study:        "A4 EMA weight",
			Variant:      fmt.Sprintf("alpha=%.2f", a),
			AllowedMean:  mean,
			AllowedStd:   std,
			AtomicityPct: res.Summary.AtomicityPct,
			InputRate:    res.InputRate,
			Note:         "higher std = noisier congestion signal",
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunAblations runs the full A1–A4 battery. The four studies are
// independent and fan out on the package worker pool; rows keep the
// A1..A4 order.
func RunAblations(base Config, seeds int) ([]AblationRow, error) {
	studies := []func() ([]AblationRow, error){
		func() ([]AblationRow, error) { return RunAblationRandomization(base, seeds) },
		func() ([]AblationRow, error) { return RunAblationTokenCheck(base, seeds) },
		func() ([]AblationRow, error) { return RunAblationWindow(base, []int{1, 2, 4}, seeds) },
		func() ([]AblationRow, error) { return RunAblationAlpha(base, []float64{0.5, 0.9}, seeds) },
	}
	perStudy := make([][]AblationRow, len(studies))
	err := forEach(len(studies), func(i int) error {
		r, err := studies[i]()
		if err != nil {
			return err
		}
		perStudy[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, r := range perStudy {
		rows = append(rows, r...)
	}
	return rows, nil
}

// RenderAblations prints the ablation battery.
func RenderAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "# Ablations — design-choice studies")
	fmt.Fprintln(w, "# study                    variant        allowed(msg/s)  std     atomic(%)  input(msg/s)  note")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s  %-12s  %13.2f  %6.2f  %8.1f  %11.2f  %s\n",
			r.Study, r.Variant, r.AllowedMean, r.AllowedStd, r.AtomicityPct, r.InputRate, r.Note)
	}
}

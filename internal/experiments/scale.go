package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/membership"
	"adaptivegossip/internal/sim"
	"adaptivegossip/internal/transport"
)

// ScaleConfig describes the large-n scale sweep: groups of up to 10,000+
// nodes spread over WAN regions, gossiping through lpbcast partial
// views, comparing uniform against proximity-biased peer sampling (Haas
// et al.'s topology-aware gossip probability). The paper evaluates at
// n=60–125; this sweep is the repository's extension to production
// scale (ROADMAP item 2).
type ScaleConfig struct {
	// Sizes are the group sizes to sweep.
	Sizes []int
	// Fanout is F, the gossip targets per round.
	Fanout int
	// Period is the gossip round interval (virtual time).
	Period time.Duration
	// Regions is the number of WAN regions; node i lives in region
	// i mod Regions.
	Regions int
	// Intra and Inter are the link latency classes within and across
	// regions.
	Intra, Inter sim.LatencyClass
	// ViewSize bounds each node's partial view (lpbcast's ℓ).
	ViewSize int
	// Contacts is how many random bootstrap contacts seed each view.
	Contacts int
	// WarmupRounds is how many gossip periods run before the publish
	// instant, letting lpbcast subscription propagation symmetrize the
	// membership graph first.
	WarmupRounds int
	// Rounds is how many gossip periods the run measures after the
	// publish instant.
	Rounds int
	// Messages is how many events are broadcast, from origins spread
	// evenly across the group.
	Messages int
	// PayloadSize is the event payload size in bytes.
	PayloadSize int
	// ProximityWeight is the same-region selection weight of the
	// proximity-biased arm (cross-region peers weigh 1).
	ProximityWeight float64
	// MaxAge is the purge bound k.
	MaxAge int
	// Buffer is |events|max at every node.
	Buffer int
	// Seed drives all randomness; every per-node stream is derived from
	// it by node index (sim.NodeRNG and friends), so results are
	// bit-identical regardless of sweep parallelism.
	Seed int64
}

// DefaultScaleConfig is the standard sweep: 1k/5k/10k nodes over four
// regions, 2–10ms intra-region links against 60–120ms cross-region
// links, fanout 4 over 24-entry partial views.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{
		Sizes:           []int{1000, 5000, 10000},
		Fanout:          4,
		Period:          time.Second,
		Regions:         4,
		Intra:           sim.LatencyClass{Min: 2 * time.Millisecond, Max: 10 * time.Millisecond},
		Inter:           sim.LatencyClass{Min: 60 * time.Millisecond, Max: 120 * time.Millisecond},
		ViewSize:        24,
		Contacts:        8,
		WarmupRounds:    6,
		Rounds:          30,
		Messages:        8,
		PayloadSize:     16,
		ProximityWeight: 8,
		MaxAge:          20,
		Buffer:          64,
		Seed:            1,
	}
}

// Validate reports the first configuration error.
func (c ScaleConfig) Validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("experiments: scale sweep needs at least one size")
	}
	for _, n := range c.Sizes {
		if n < c.Regions || n < 2 {
			return fmt.Errorf("experiments: scale size %d too small for %d regions", n, c.Regions)
		}
	}
	if c.Fanout <= 0 || c.ViewSize <= 0 || c.Contacts <= 0 || c.Rounds <= 0 || c.Messages <= 0 {
		return fmt.Errorf("experiments: scale fanout/view/contacts/rounds/messages must be positive")
	}
	if c.WarmupRounds < 0 {
		return fmt.Errorf("experiments: scale warmup rounds must be non-negative")
	}
	if c.Regions <= 0 {
		return fmt.Errorf("experiments: scale needs at least 1 region, got %d", c.Regions)
	}
	if c.Period <= 0 {
		return fmt.Errorf("experiments: scale period must be positive")
	}
	if c.ProximityWeight < 1 {
		return fmt.Errorf("experiments: proximity weight %v must be >= 1", c.ProximityWeight)
	}
	return nil
}

// ScaleRow is one (size, sampling mode) cell of the sweep.
type ScaleRow struct {
	N         int
	Proximity bool
	// CoveragePct is the mean delivery coverage over events, percent.
	CoveragePct float64
	// RoundsTo99 is the mean number of gossip periods from publish
	// until 99% of the group held the event; +Inf when any event never
	// got there within the run.
	RoundsTo99 float64
	// BytesPerNode / CrossBytesPerNode are total and cross-region wire
	// bytes (codec-encoded sizes) divided by the group size.
	BytesPerNode      float64
	CrossBytesPerNode float64
	// CrossBytesPct is the cross-region share of wire bytes, percent.
	CrossBytesPct float64
	// LatencyP50 and LatencyP95 are delivery-latency percentiles over
	// every remote delivery.
	LatencyP50, LatencyP95 time.Duration
	// Events is the number of simulator events executed and EventsPerSec
	// the wall-clock execution rate — the simulator-throughput reading
	// recorded in BENCH_7.json.
	Events       uint64
	EventsPerSec float64
	Wall         time.Duration
}

// Mode names the sampling arm.
func (r ScaleRow) Mode() string {
	if r.Proximity {
		return "proximity"
	}
	return "uniform"
}

// RunScale executes the sweep: every size with uniform and with
// proximity-biased sampling. Cells are independent simulations (all
// randomness derived from the seed by node index), so they fan out on
// the package worker pool; rows come back in input order, bit-identical
// to a sequential sweep.
func RunScale(cfg ScaleConfig) ([]ScaleRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rows := make([]ScaleRow, 2*len(cfg.Sizes))
	err := forEach(len(rows), func(i int) error {
		row, err := runScaleArm(cfg, cfg.Sizes[i/2], i%2 == 1)
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// runScaleArm simulates one (size, mode) cell.
func runScaleArm(cfg ScaleConfig, n int, proximity bool) (ScaleRow, error) {
	sched := sim.NewScheduler(sim.Epoch)
	codec := transport.Codec{}
	network, err := sim.NewNetwork(sched, sim.NetworkRNG(cfg.Seed),
		sim.WithTopology(sim.NewTwoTierTopology(cfg.Regions, cfg.Intra, cfg.Inter)),
		sim.WithMessageSizer(codec.EncodedSize),
	)
	if err != nil {
		return ScaleRow{}, err
	}

	names := make([]gossip.NodeID, n)
	region := make(map[gossip.NodeID]int32, n)
	for i := range names {
		names[i] = gossip.NodeID(fmt.Sprintf("n%05d", i))
		region[names[i]] = int32(i % cfg.Regions)
		if err := network.SetRegion(names[i], i%cfg.Regions); err != nil {
			return ScaleRow{}, err
		}
	}

	// Delivery accounting: per-event coverage counts and the instant
	// 99% of the group first held the event.
	type evRecord struct {
		birth time.Time
		count int
		t99   time.Duration
	}
	records := make([]evRecord, 0, cfg.Messages)
	evIndex := make(map[gossip.EventID]int, cfg.Messages)
	need99 := (99*n + 99) / 100 // ceil(0.99 n)
	latencies := make([]time.Duration, 0, n*cfg.Messages)

	viewCfg := membership.PartialViewConfig{
		MaxView:         cfg.ViewSize,
		MaxSubs:         cfg.ViewSize,
		MaxUnsubs:       cfg.ViewSize,
		SubsPerGossip:   4,
		UnsubsPerGossip: 1,
	}
	params := gossip.Params{
		Fanout:    cfg.Fanout,
		Period:    cfg.Period,
		MaxEvents: cfg.Buffer,
		MaxAge:    cfg.MaxAge,
	}

	nodes := make([]*gossip.Node, n)
	for i := range nodes {
		name := names[i]
		// One stream per node index drives both the protocol and the
		// view's pool sampling; the run is single-threaded, so the
		// interleaving is deterministic.
		rng := sim.NodeRNG(cfg.Seed, i)
		seeds := make([]gossip.NodeID, 0, cfg.Contacts)
		for len(seeds) < cfg.Contacts {
			c := names[rng.IntN(n)]
			if c != name {
				seeds = append(seeds, c)
			}
		}
		view, err := membership.NewPartialView(name, seeds, viewCfg, rng)
		if err != nil {
			return ScaleRow{}, err
		}
		if proximity {
			myRegion := region[name]
			view.SetSampleWeights(func(peer gossip.NodeID) float64 {
				if region[peer] == myRegion {
					return cfg.ProximityWeight
				}
				return 1
			})
		}
		node, err := gossip.NewNode(name, params, view, rng,
			gossip.WithExtensions(view),
			gossip.WithDeliver(func(ev gossip.Event) {
				idx, ok := evIndex[ev.ID]
				if !ok {
					// The origin's own delivery fires inside Broadcast,
					// before the event is registered; it is counted at
					// registration instead.
					return
				}
				rec := &records[idx]
				rec.count++
				latencies = append(latencies, sched.Now().Sub(rec.birth))
				if rec.count == need99 {
					rec.t99 = sched.Now().Sub(rec.birth)
				}
			}),
		)
		if err != nil {
			return ScaleRow{}, err
		}
		nodes[i] = node
	}

	// The WAN model keeps delivery latency under the gossip period, so
	// round messages may ride the sender's scratch state; mirror the
	// common-experiment clone guard in case a config stretches links
	// beyond the period.
	maxLat := cfg.Intra.Max
	if cfg.Inter.Max > maxLat {
		maxLat = cfg.Inter.Max
	}
	cloneSends := maxLat >= cfg.Period

	for i := range nodes {
		i := i
		name := names[i]
		node := nodes[i]
		network.Attach(name, func(m *gossip.Message) { node.Receive(m) })
		var tick func()
		tick = func() {
			outs := node.Tick()
			var roundMsg, roundCopy *gossip.Message
			if cloneSends && len(outs) > 0 {
				roundMsg = outs[0].Msg
				roundCopy = roundMsg.CopyForSend()
			}
			for _, out := range outs {
				msg := out.Msg
				if msg == roundMsg {
					msg = roundCopy
				}
				//gossip:scratchok cloneSends substitutes roundCopy above whenever delivery latency can outlive the round
				network.Send(name, out.To, msg)
			}
			sched.After(cfg.Period, tick)
		}
		phase := time.Duration(sim.PhaseRNG(cfg.Seed, i).Float64() * float64(cfg.Period))
		sched.After(phase, tick)
	}

	// Publish after the warmup window, from origins spread evenly over
	// the group (and therefore over the regions).
	publishAt := sim.Epoch.Add(time.Duration(cfg.WarmupRounds) * cfg.Period)
	for j := 0; j < cfg.Messages; j++ {
		origin := nodes[j*n/cfg.Messages]
		sched.At(publishAt, func() {
			payload := make([]byte, cfg.PayloadSize)
			ev := origin.Broadcast(payload)
			evIndex[ev.ID] = len(records)
			records = append(records, evRecord{birth: sched.Now(), count: 1})
		})
	}

	started := time.Now()
	sched.RunUntil(publishAt.Add(time.Duration(cfg.Rounds)*cfg.Period + maxLat))
	wall := time.Since(started)

	row := ScaleRow{N: n, Proximity: proximity, Wall: wall, Events: sched.Executed()}
	if wall > 0 {
		row.EventsPerSec = float64(row.Events) / wall.Seconds()
	}
	var coverage float64
	var rounds99 float64
	for _, rec := range records {
		coverage += float64(rec.count) / float64(n)
		if rec.count >= need99 && rec.t99 > 0 {
			rounds99 += rec.t99.Seconds() / cfg.Period.Seconds()
		} else {
			rounds99 = math.Inf(1)
		}
	}
	row.CoveragePct = 100 * coverage / float64(len(records))
	row.RoundsTo99 = rounds99 / float64(len(records))
	stats := network.Stats()
	total := stats.IntraRegionBytes + stats.CrossRegionBytes
	row.BytesPerNode = float64(total) / float64(n)
	row.CrossBytesPerNode = float64(stats.CrossRegionBytes) / float64(n)
	if total > 0 {
		row.CrossBytesPct = 100 * float64(stats.CrossRegionBytes) / float64(total)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		row.LatencyP50 = latencies[len(latencies)*50/100]
		row.LatencyP95 = latencies[len(latencies)*95/100]
	}
	return row, nil
}

// RenderScale prints the sweep as an aligned table.
func RenderScale(w io.Writer, cfg ScaleConfig, rows []ScaleRow) {
	fmt.Fprintf(w, "Simulator scale sweep: lpbcast over %d-entry partial views, fanout %d,\n", cfg.ViewSize, cfg.Fanout)
	fmt.Fprintf(w, "%d WAN regions (intra %v-%v, inter %v-%v), %d broadcasts per run.\n",
		cfg.Regions, cfg.Intra.Min, cfg.Intra.Max, cfg.Inter.Min, cfg.Inter.Max, cfg.Messages)
	fmt.Fprintf(w, "Proximity arm: same-region peers weighted %.0fx (Haas-style topology bias).\n\n", cfg.ProximityWeight)
	fmt.Fprintf(w, "%7s %10s %7s %9s %11s %13s %8s %9s %9s %11s %8s\n",
		"n", "sampling", "cover%", "rounds99", "bytes/node", "xbytes/node", "xbytes%", "p50", "p95", "events/s", "wall")
	for _, r := range rows {
		rounds := fmt.Sprintf("%.1f", r.RoundsTo99)
		if math.IsInf(r.RoundsTo99, 1) {
			rounds = ">" + fmt.Sprint(cfg.Rounds)
		}
		fmt.Fprintf(w, "%7d %10s %7.2f %9s %11.0f %13.0f %8.1f %9s %9s %11.0f %8s\n",
			r.N, r.Mode(), r.CoveragePct, rounds, r.BytesPerNode, r.CrossBytesPerNode, r.CrossBytesPct,
			r.LatencyP50.Round(time.Millisecond), r.LatencyP95.Round(time.Millisecond),
			r.EventsPerSec, r.Wall.Round(10*time.Millisecond))
	}
}

package experiments

import (
	"strings"
	"testing"
)

func TestRunWirecostValidation(t *testing.T) {
	if _, err := RunWirecost(WirecostConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := RunWirecost(WirecostConfig{Fanouts: []int{0}, Rounds: 10}); err == nil {
		t.Fatal("zero fanout accepted")
	}
}

// TestRunWirecostEncodeIndependentOfFanout is the sweep's acceptance
// check: the encode-once path's allocation cost stays flat as fanout
// grows, while the per-peer baseline scales with it — at fanout 8 by at
// least the tentpole's 4× bound.
func TestRunWirecostEncodeIndependentOfFanout(t *testing.T) {
	cfg := WirecostConfig{Fanouts: []int{1, 8}, Events: 20, Payload: 100, Rounds: 50}
	rows, err := RunWirecost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	one, eight := rows[0], rows[1]
	if eight.BytesPerRound < 7*one.BytesPerRound {
		t.Fatalf("bytes/round did not scale with fanout: %v vs %v", one.BytesPerRound, eight.BytesPerRound)
	}
	// Encode work independent of fanout: no per-target allocations.
	if eight.EncodeOnceAllocs > one.EncodeOnceAllocs+1 {
		t.Fatalf("encode-once allocs grew with fanout: %v -> %v", one.EncodeOnceAllocs, eight.EncodeOnceAllocs)
	}
	if eight.PerPeerAllocs < 8 {
		t.Fatalf("per-peer baseline allocs = %v, expected at least one per target", eight.PerPeerAllocs)
	}
	if eight.AllocRatio() < 4 {
		t.Fatalf("encode-once only %vx cheaper at fanout 8, want >= 4x", eight.AllocRatio())
	}
	// Wire-generation comparison at fanout 8: columnar v5 never costs
	// more than row-wise v4, and compressed v5 meets the tentpole's 3×
	// reduction against the v4 baseline.
	if eight.BytesPerRound > eight.V4BytesPerRound {
		t.Fatalf("v5 costs more than v4: %v vs %v bytes/round", eight.BytesPerRound, eight.V4BytesPerRound)
	}
	if 3*eight.CompressedBytesPerRound > eight.V4BytesPerRound {
		t.Fatalf("v5+flate only %.1fx smaller than v4 at fanout 8, want >= 3x (%v vs %v bytes/round)",
			eight.CompressionRatio(), eight.CompressedBytesPerRound, eight.V4BytesPerRound)
	}

	var sb strings.Builder
	RenderWirecost(&sb, cfg, rows)
	if !strings.Contains(sb.String(), "fanout") || !strings.Contains(sb.String(), "encode-once") {
		t.Fatalf("render missing headers:\n%s", sb.String())
	}
}

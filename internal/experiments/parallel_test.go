package experiments

import (
	"bytes"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// withParallelism runs fn under the given pool bound, restoring the
// previous bound afterwards.
func withParallelism(n int, fn func()) {
	prev := Parallelism()
	SetParallelism(n)
	defer SetParallelism(prev)
	fn()
}

// sweepConfig is small enough for a sub-second point but large enough
// that a multi-point sweep has real work to spread across cores.
func sweepConfig() Config {
	cfg := smallConfig()
	cfg.Warmup = 30 * time.Second
	cfg.Duration = 90 * time.Second
	return cfg
}

// TestParallelSweepBitIdentical pins the engine's core guarantee: a
// sweep run on the worker pool produces byte-identical output to the
// sequential engine — same rows, same rendered tables, to the last
// bit. Every point is deterministically seeded and assembled in input
// order, so parallelism may only change wall-clock time.
func TestParallelSweepBitIdentical(t *testing.T) {
	rates := []float64{2, 4, 6, 8}
	seeds := 3

	var seqRows, parRows []Figure2Row
	withParallelism(1, func() {
		rows, err := RunFigure2(sweepConfig(), rates, seeds)
		if err != nil {
			t.Fatalf("sequential sweep: %v", err)
		}
		seqRows = rows
	})
	withParallelism(8, func() {
		rows, err := RunFigure2(sweepConfig(), rates, seeds)
		if err != nil {
			t.Fatalf("parallel sweep: %v", err)
		}
		parRows = rows
	})

	if !reflect.DeepEqual(seqRows, parRows) {
		t.Fatalf("parallel rows diverge from sequential:\nseq: %+v\npar: %+v", seqRows, parRows)
	}
	var seqOut, parOut bytes.Buffer
	RenderFigure2(&seqOut, seqRows)
	RenderFigure2(&parOut, parRows)
	if !bytes.Equal(seqOut.Bytes(), parOut.Bytes()) {
		t.Fatalf("rendered tables diverge:\nseq:\n%s\npar:\n%s", seqOut.String(), parOut.String())
	}
}

// TestParallelSeedsBitIdentical covers the inner fan-out: seed
// replications of one point, pooled and averaged.
func TestParallelSeedsBitIdentical(t *testing.T) {
	var seq, par RunResult
	withParallelism(1, func() {
		res, err := RunSeeds(sweepConfig(), 4)
		if err != nil {
			t.Fatal(err)
		}
		seq = res
	})
	withParallelism(4, func() {
		res, err := RunSeeds(sweepConfig(), 4)
		if err != nil {
			t.Fatal(err)
		}
		par = res
	})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel RunSeeds diverges from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestRunSeedsAveragesRoundToNearest pins the pooled Messages average:
// across 3 seeds the per-seed counts do not generally divide evenly,
// and the average must round to nearest instead of truncating.
func TestRunSeedsAveragesRoundToNearest(t *testing.T) {
	cfg := sweepConfig()
	const seeds = 3
	perSeed := make([]RunResult, seeds)
	for s := 0; s < seeds; s++ {
		c := cfg
		c.Seed = cfg.Seed + int64(s)
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		perSeed[s] = res
	}
	avg, err := RunSeeds(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}

	sum := 0
	var meanRecv, atom float64
	for _, res := range perSeed {
		sum += res.Summary.Messages
		meanRecv += res.Summary.MeanReceiversPct
		atom += res.Summary.AtomicityPct
	}
	wantMessages := (sum + seeds/2) / seeds
	if avg.Summary.Messages != wantMessages {
		t.Fatalf("Messages = %d, want round-to-nearest %d (sum %d over %d seeds)",
			avg.Summary.Messages, wantMessages, sum, seeds)
	}
	if got, want := avg.Summary.MeanReceiversPct, meanRecv/seeds; got != want {
		t.Fatalf("MeanReceiversPct = %v, want %v", got, want)
	}
	if got, want := avg.Summary.AtomicityPct, atom/seeds; got != want {
		t.Fatalf("AtomicityPct = %v, want %v", got, want)
	}
}

// BenchmarkSweepSequential and BenchmarkSweepParallel time the same
// 4-point × 3-seed figure sweep on one worker versus all cores; their
// ns/op ratio is the sweep engine's wall-clock speedup on this machine.
func BenchmarkSweepSequential(b *testing.B) {
	benchmarkSweep(b, 1)
}

func BenchmarkSweepParallel(b *testing.B) {
	benchmarkSweep(b, runtime.NumCPU())
}

func benchmarkSweep(b *testing.B, par int) {
	rates := []float64{2, 4, 6, 8}
	withParallelism(par, func() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunFigure2(sweepConfig(), rates, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestParallelSweepSpeedup is the opt-in wall-clock acceptance check:
// on a machine with at least 4 cores, the pooled sweep must beat the
// sequential engine by at least 1.5x. Wall-clock assertions are
// load-sensitive, so the test only runs when GOSSIP_PERF=1.
func TestParallelSweepSpeedup(t *testing.T) {
	if os.Getenv("GOSSIP_PERF") != "1" {
		t.Skip("set GOSSIP_PERF=1 to run the wall-clock speedup assertion")
	}
	cores := runtime.NumCPU()
	if cores < 4 {
		t.Skipf("need at least 4 cores, have %d", cores)
	}
	cfg := sweepConfig()
	cfg.N = 40
	rates := []float64{2, 3, 4, 5, 6, 7, 8, 9}
	const seeds = 2

	measure := func(par int) time.Duration {
		var elapsed time.Duration
		withParallelism(par, func() {
			start := time.Now()
			if _, err := RunFigure2(cfg, rates, seeds); err != nil {
				t.Fatal(err)
			}
			elapsed = time.Since(start)
		})
		return elapsed
	}
	measure(1) // warm caches so the timed passes compare fairly
	seq := measure(1)
	par := measure(cores)
	speedup := float64(seq) / float64(par)
	t.Logf("sequential %v, parallel(%d) %v, speedup %.2fx", seq, cores, par, speedup)
	if speedup < 1.5 {
		t.Fatalf("parallel sweep speedup %.2fx < 1.5x (sequential %v, parallel %v)", speedup, seq, par)
	}
}

package experiments

import (
	"strings"
	"testing"
	"time"

	"adaptivegossip/internal/workload"
)

// churnTestConfig is the churn experiment shrunk to test scale: 30
// nodes, 1-second virtual rounds.
func churnTestConfig() Config {
	cfg := DefaultChurnConfig(Config{
		N:           30,
		Fanout:      3,
		Period:      time.Second,
		MaxAge:      10,
		Buffer:      30,
		OfferedRate: 6,
		PayloadSize: 8,
		Warmup:      60 * time.Second,
		Duration:    240 * time.Second,
		Seed:        3,
	})
	return cfg
}

// TestRunChurnDetectorDominates is the subsystem's acceptance check:
// across a churn-rate sweep, the detector-on arm must deliver at least
// as well as the detector-off arm at every rate, and mean view accuracy
// must improve measurably.
func TestRunChurnDetectorDominates(t *testing.T) {
	rates := []float64{2, 6}
	rows, err := RunChurn(churnTestConfig(), rates, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rates) {
		t.Fatalf("got %d rows, want %d", len(rows), len(rates))
	}
	for _, r := range rows {
		if r.OnCoveragePct < r.OffCoveragePct {
			t.Errorf("rate %.1f/min: detector-on coverage %.2f%% below detector-off %.2f%%",
				r.Rate, r.OnCoveragePct, r.OffCoveragePct)
		}
		if r.OnViewAccPct < r.OffViewAccPct+1 {
			t.Errorf("rate %.1f/min: view accuracy %.2f%% (on) vs %.2f%% (off): no measurable improvement",
				r.Rate, r.OnViewAccPct, r.OffViewAccPct)
		}
		if r.Confirms == 0 {
			t.Errorf("rate %.1f/min: detector confirmed nothing under churn", r.Rate)
		}
		if r.DetectionRounds <= 0 || r.DetectionRounds > float64(ChurnDowntime) {
			t.Errorf("rate %.1f/min: detection latency %.1f rounds out of (0,%d]",
				r.Rate, r.DetectionRounds, ChurnDowntime)
		}
		if r.OverheadPct <= 0 {
			t.Errorf("rate %.1f/min: probe overhead not measured", r.Rate)
		}
	}
}

// TestRunChurnStaleViewsWithoutDetector pins the problem the subsystem
// fixes: with per-node views and no detector, crashed members linger in
// every view for the whole outage, dragging accuracy down.
func TestRunChurnStaleViewsWithoutDetector(t *testing.T) {
	cfg := churnTestConfig()
	downFor := time.Duration(ChurnDowntime) * cfg.Period
	cfg.Crashes, cfg.Restarts = workload.ChurnTrace(
		cfg.N, 4.0/60, downFor, cfg.Warmup/2, cfg.Warmup/2+cfg.Duration, cfg.Seed)
	if len(cfg.Crashes) == 0 {
		t.Fatal("trace empty")
	}
	cfg.FailureDetection = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ViewAccuracyPct >= 99 {
		t.Fatalf("view accuracy %.2f%% without a detector under churn — dead members should linger",
			res.ViewAccuracyPct)
	}
	if res.Failure.Confirms != 0 || res.DetectionLatencyRounds != 0 {
		t.Fatalf("detector metrics nonzero with detection off: %+v", res.Failure)
	}
}

// TestRunRestartScheduleRevivesNode: a crashed-then-restarted node
// resumes receiving; coverage recovers past the crash-only level.
func TestRunRestartScheduleRevivesNode(t *testing.T) {
	cfg := smallConfig()
	cfg.Warmup = 0
	cfg.Duration = 200 * time.Second
	crashOnly := cfg
	crashOnly.Crashes = []workload.Crash{{At: 20 * time.Second, Nodes: []int{5, 6}}}
	a, err := Run(crashOnly)
	if err != nil {
		t.Fatal(err)
	}
	restarted := crashOnly
	restarted.Restarts = []workload.Restart{{At: 60 * time.Second, Nodes: []int{5, 6}}}
	b, err := Run(restarted)
	if err != nil {
		t.Fatal(err)
	}
	if b.Summary.MeanReceiversPct <= a.Summary.MeanReceiversPct+3 {
		t.Fatalf("restart did not recover coverage: crash-only %.1f%%, with restarts %.1f%%",
			a.Summary.MeanReceiversPct, b.Summary.MeanReceiversPct)
	}
}

// TestRunChurnDeterministic: the churn machinery preserves the
// simulator's reproducibility.
func TestRunChurnDeterministic(t *testing.T) {
	cfg := churnTestConfig()
	cfg.Duration = 120 * time.Second
	downFor := time.Duration(ChurnDowntime) * cfg.Period
	cfg.Crashes, cfg.Restarts = workload.ChurnTrace(
		cfg.N, 4.0/60, downFor, cfg.Warmup/2, cfg.Warmup/2+cfg.Duration, cfg.Seed)
	cfg.FailureDetection = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary || a.Failure != b.Failure ||
		a.ViewAccuracyPct != b.ViewAccuracyPct ||
		a.DetectionLatencyRounds != b.DetectionLatencyRounds {
		t.Fatalf("same seed diverged:\n a=%+v %+v\n b=%+v %+v",
			a.Summary, a.Failure, b.Summary, b.Failure)
	}
}

func TestRenderChurn(t *testing.T) {
	var sb strings.Builder
	RenderChurn(&sb, []ChurnRow{{
		Rate: 2, OffCoveragePct: 80, OnCoveragePct: 85,
		OffViewAccPct: 90, OnViewAccPct: 97,
		DetectionRounds: 7.5, Confirms: 42, FalseConfirms: 1, OverheadPct: 70,
	}})
	out := sb.String()
	for _, want := range []string{"churn(/min)", "2.0", "85.00", "97.00", "42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFigure2ShapeReliabilityFalls(t *testing.T) {
	base := smallConfig()
	rows, err := RunFigure2(base, []float64{8, 120}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	low, high := rows[0], rows[1]
	if low.AtomicityPct < high.AtomicityPct+30 {
		t.Fatalf("atomicity did not collapse: %.1f%% → %.1f%%", low.AtomicityPct, high.AtomicityPct)
	}
	// Under overload drops are young — the paper's congestion signal.
	if high.AvgDroppedAge >= 5 {
		t.Fatalf("overload dropped age %.2f, want young drops", high.AvgDroppedAge)
	}
	// At low rate either nothing is capacity-dropped or drops are old.
	if low.AvgDroppedAge != 0 && low.AvgDroppedAge <= high.AvgDroppedAge {
		t.Fatalf("dropped age did not fall with rate: %.2f → %.2f", low.AvgDroppedAge, high.AvgDroppedAge)
	}
	// Every run now carries the pooled delivery distributions.
	for _, r := range rows {
		if r.Latency.Count == 0 || r.Hops.Count == 0 {
			t.Fatalf("rate %v: empty latency/hops distribution", r.Rate)
		}
		if r.Latency.Count != r.Hops.Count {
			t.Fatalf("rate %v: latency count %d != hops count %d", r.Rate, r.Latency.Count, r.Hops.Count)
		}
	}
	var sb strings.Builder
	RenderFigure2(&sb, rows)
	if !strings.Contains(sb.String(), "Figure 2") {
		t.Fatal("render missing header")
	}
	if !strings.Contains(sb.String(), "delivery latency p50/p95/p99") {
		t.Fatal("render missing delivery-latency percentile line")
	}
}

func TestFigure4MaxRateGrowsWithBufferAndCriticalAgeConstant(t *testing.T) {
	base := smallConfig()
	base.Duration = 100 * time.Second
	rows, err := RunFigure4(base, []int{20, 40}, 95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].MaxRate < 1.5*rows[0].MaxRate {
		t.Fatalf("max rate not ≈linear in buffer: %v vs %v", rows[0].MaxRate, rows[1].MaxRate)
	}
	for _, r := range rows {
		if r.CoveragePct < 95 {
			t.Fatalf("buffer %d: coverage %.1f%% below target at reported max", r.Buffer, r.CoveragePct)
		}
	}
	// The §2.3 phenomenon: critical ages approximately equal.
	if spread := CriticalAgeSpread(rows); spread > 1.0 {
		t.Fatalf("critical age spread %.2f hops, want ≈constant", spread)
	}
	if ta := CriticalAge(rows); ta < 2 || ta > 10 {
		t.Fatalf("critical age %.2f out of sane range", ta)
	}
	var sb strings.Builder
	RenderFigure4(&sb, rows)
	if !strings.Contains(sb.String(), "critical age") {
		t.Fatal("render missing critical age line")
	}
}

func TestCriticalAgeEmpty(t *testing.T) {
	if CriticalAge(nil) != 0 || CriticalAgeSpread(nil) != 0 {
		t.Fatal("empty rows should yield 0")
	}
}

func TestFigure6AllowedTracksCapacityAndOffered(t *testing.T) {
	base := smallConfig()
	base.OfferedRate = 20
	fig4 := []Figure4Row{{Buffer: 6, MaxRate: 5.5}, {Buffer: 60, MaxRate: 55}}
	rows, err := RunFigure6(base, []int{6, 60}, fig4, 1)
	if err != nil {
		t.Fatal(err)
	}
	congested, uncongested := rows[0], rows[1]
	// Congested: allowed well below offered, in the vicinity of max.
	if congested.Allowed >= 0.8*congested.Offered {
		t.Fatalf("buffer 6: allowed %.2f did not throttle below offered %.1f",
			congested.Allowed, congested.Offered)
	}
	if congested.Maximum != 5.5 {
		t.Fatalf("fig4 join broken: %v", congested.Maximum)
	}
	// Uncongested: the offered load is accepted (within 25%).
	if uncongested.Input < 0.75*uncongested.Offered {
		t.Fatalf("buffer 60: input %.2f rejected too much of offered %.1f",
			uncongested.Input, uncongested.Offered)
	}
	var sb strings.Builder
	RenderFigure6(&sb, rows)
	if !strings.Contains(sb.String(), "Figure 6") {
		t.Fatal("render missing header")
	}
}

func TestFigures78AdaptiveWins(t *testing.T) {
	base := smallConfig()
	base.OfferedRate = 40
	rows7, rows8, err := RunFigures78(base, []int{12}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r7, r8 := rows7[0], rows8[0]
	// lpbcast pushes the whole offered load and loses much of it.
	if r7.LpInput < 38 {
		t.Fatalf("lp input %.2f, want ≈40", r7.LpInput)
	}
	if r7.LpOutput > 0.8*r7.LpInput {
		t.Fatalf("lp output %.2f vs input %.2f: expected heavy loss", r7.LpOutput, r7.LpInput)
	}
	// adaptive throttles and keeps input ≈ output.
	if r7.AdInput >= 0.7*r7.LpInput {
		t.Fatalf("adaptive input %.2f did not throttle", r7.AdInput)
	}
	if r7.AdOutput < 0.9*r7.AdInput {
		t.Fatalf("adaptive output %.2f ≪ input %.2f", r7.AdOutput, r7.AdInput)
	}
	// the congestion signal: lp dropped age collapses, adaptive holds
	// it higher.
	if r7.AdDroppedAge <= r7.LpDroppedAge {
		t.Fatalf("dropped ages: adaptive %.2f vs lpbcast %.2f", r7.AdDroppedAge, r7.LpDroppedAge)
	}
	// Figure 8: reliability gap.
	if r8.AdMeanReceivers < r8.LpMeanReceivers+10 {
		t.Fatalf("mean receivers: adaptive %.1f%% vs lp %.1f%%", r8.AdMeanReceivers, r8.LpMeanReceivers)
	}
	if r8.AdAtomicity < r8.LpAtomicity+30 {
		t.Fatalf("atomicity: adaptive %.1f%% vs lp %.1f%%", r8.AdAtomicity, r8.LpAtomicity)
	}
	// Both arms carry delivery distributions; the adaptive arm's hop
	// distribution must not be empty while its coverage is near-full.
	if r7.LpLatency.Count == 0 || r7.AdLatency.Count == 0 {
		t.Fatalf("empty latency distributions: lp=%d ad=%d", r7.LpLatency.Count, r7.AdLatency.Count)
	}
	if p50 := r7.AdHops.Quantile(0.5); p50 <= 0 {
		t.Fatalf("adaptive hop p50 = %.1f, want > 0 (most receivers are remote)", p50)
	}
	var sb strings.Builder
	RenderFigure7(&sb, rows7)
	RenderFigure8(&sb, rows8)
	if !strings.Contains(sb.String(), "Figure 7") || !strings.Contains(sb.String(), "Figure 8") {
		t.Fatal("render missing headers")
	}
	if !strings.Contains(sb.String(), "# lpbcast delivery latency p50/p95/p99") ||
		!strings.Contains(sb.String(), "# adaptive delivery latency p50/p95/p99") {
		t.Fatal("render missing per-arm delivery-latency lines")
	}
}

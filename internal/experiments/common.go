// Package experiments regenerates every figure of the paper's
// evaluation (§2 and §4) plus this repository's own studies (the
// ablations and the anti-entropy loss sweep). Each RunFigureN function
// sweeps the same parameter axes as the paper and returns rows/series
// shaped like the published plots; Render methods print them as
// aligned text tables. cmd/gossipsim is the command-line front end.
package experiments

import (
	"fmt"
	"time"

	"adaptivegossip/internal/core"
	"adaptivegossip/internal/failure"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/membership"
	"adaptivegossip/internal/metrics"
	"adaptivegossip/internal/observe"
	"adaptivegossip/internal/recovery"
	"adaptivegossip/internal/sim"
	"adaptivegossip/internal/workload"
)

// Config describes one simulated experiment run.
type Config struct {
	// N is the group size (paper: 60).
	N int
	// Fanout is F (paper: 4).
	Fanout int
	// Period is the gossip period T (paper: 5s; virtual time, so the
	// value does not affect wall-clock cost).
	Period time.Duration
	// MaxAge is the purge bound k.
	MaxAge int
	// Buffer is |events|max at every node.
	Buffer int
	// IDCacheMult sizes |eventIds|max as a multiple of Buffer.
	IDCacheMult int
	// Senders is the number of publishing nodes (the first Senders
	// node indexes). Zero means all nodes publish.
	Senders int
	// OfferedRate is the aggregate offered load in msg/s, split evenly
	// across senders.
	OfferedRate float64
	// Poisson selects exponential instead of periodic inter-arrivals.
	Poisson bool
	// PayloadSize is the event payload size in bytes.
	PayloadSize int
	// Adaptive enables the paper's mechanism; false runs the lpbcast
	// baseline.
	Adaptive bool
	// Core parametrizes the adaptation (ignored for the baseline).
	// The zero value means DefaultExperimentCore().
	Core core.Params
	// Warmup is excluded from measurements at the start.
	Warmup time.Duration
	// Duration is the measured window length.
	Duration time.Duration
	// Drain extends the run past the measured window so messages born
	// late can finish disseminating. Zero means MaxAge×Period.
	Drain time.Duration
	// Seed drives all randomness.
	Seed int64
	// LatencyMin/LatencyMax bound network delay (uniform).
	LatencyMin time.Duration
	LatencyMax time.Duration
	// Loss is the iid message loss probability.
	Loss float64
	// Recovery enables the digest-based anti-entropy pull-repair
	// subsystem (internal/recovery) at every node.
	Recovery bool
	// RecoveryDigestLen overrides the digest length (0 = default).
	RecoveryDigestLen int
	// RecoveryBudget overrides the per-round request budget (0 =
	// default).
	RecoveryBudget int
	// Resizes is the buffer-resize schedule (offsets relative to run
	// start, i.e. before the warmup window ends or after — caller's
	// choice).
	Resizes []workload.Resize
	// Crashes is the failure schedule: listed nodes become unreachable
	// at the given offsets (simulation runs only). Crashed nodes still
	// count in the delivery denominator; size assertions accordingly.
	Crashes []workload.Crash
	// Joins is the membership-growth schedule: listed nodes stay idle
	// and unknown until their join offset (simulation runs only). Like
	// crashed nodes, late joiners count in the delivery denominator
	// from the start.
	Joins []workload.Join
	// Restarts is the rejoin schedule: listed crashed nodes come back
	// up at the given offsets (simulation runs only). A restarted node
	// resumes ticking and publishing with a fresh detector state, as a
	// real process restart would.
	Restarts []workload.Restart
	// PerNodeViews gives every node its own membership registry and
	// disables the omniscient registry maintenance on crash: dead
	// members linger in each node's view, wasting fanout, until a
	// failure detector (if enabled) evicts them — the realistic regime
	// the churn experiment measures. Without it (the default) a single
	// shared registry is magically updated at crash instants, as in the
	// paper's experiments.
	PerNodeViews bool
	// FailureDetection enables the SWIM-style failure detector
	// (internal/failure) at every node. With PerNodeViews, confirmed
	// members are evicted from the observer's own registry and members
	// that prove alive again are re-admitted.
	FailureDetection bool
	// FailureSuspicionRounds overrides the suspect→confirm timeout in
	// rounds (0 = subsystem default).
	FailureSuspicionRounds int
	// FailureIndirectProbes overrides k, the indirect probe count (0 =
	// subsystem default).
	FailureIndirectProbes int
	// Bucket is the series granularity. Zero means Period.
	Bucket time.Duration
}

// DefaultConfig is the paper's experimental setting (§4): 60 processes,
// fanout 4, 5-second gossip period, every node publishing.
func DefaultConfig() Config {
	return Config{
		N:           60,
		Fanout:      4,
		Period:      5 * time.Second,
		MaxAge:      10,
		Buffer:      120,
		IDCacheMult: gossip.DefaultIDCacheMult,
		Senders:     0, // all
		OfferedRate: 30,
		PayloadSize: 16,
		Warmup:      150 * time.Second,
		Duration:    450 * time.Second,
		Seed:        1,
	}
}

// DefaultExperimentCore adapts core.DefaultParams to a per-sender share
// of the offered load.
func DefaultExperimentCore(offeredShare float64) core.Params {
	p := core.DefaultParams()
	p.InitialRate = offeredShare
	p.MaxRate = 2 * offeredShare // headroom: "offered load is accepted" without pinning
	return p
}

func (c Config) withDefaults() Config {
	if c.Senders <= 0 || c.Senders > c.N {
		c.Senders = c.N
	}
	if c.IDCacheMult <= 0 {
		c.IDCacheMult = gossip.DefaultIDCacheMult
	}
	if c.Drain == 0 {
		c.Drain = time.Duration(c.MaxAge) * c.Period
	}
	if c.Bucket <= 0 {
		c.Bucket = c.Period
	}
	if c.Adaptive && c.Core == (core.Params{}) {
		c.Core = DefaultExperimentCore(c.OfferedRate / float64(c.Senders))
	}
	return c
}

// recoveryParams maps the experiment knobs onto the subsystem's config.
func (c Config) recoveryParams() recovery.Params {
	return recovery.Params{
		Enabled:       c.Recovery,
		DigestLen:     c.RecoveryDigestLen,
		RequestBudget: c.RecoveryBudget,
	}
}

// failureParams maps the experiment knobs onto the detector's config.
func (c Config) failureParams() failure.Params {
	return failure.Params{
		Enabled:                c.FailureDetection,
		SuspicionTimeoutRounds: c.FailureSuspicionRounds,
		IndirectProbes:         c.FailureIndirectProbes,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("experiments: need at least 2 nodes, got %d", c.N)
	}
	if c.OfferedRate < 0 {
		return fmt.Errorf("experiments: offered rate must be non-negative, got %v", c.OfferedRate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("experiments: duration must be positive, got %v", c.Duration)
	}
	if c.Warmup < 0 || c.Drain < 0 {
		return fmt.Errorf("experiments: warmup/drain must be non-negative")
	}
	for _, r := range c.Resizes {
		if err := r.Validate(c.N); err != nil {
			return err
		}
	}
	for _, cr := range c.Crashes {
		if err := cr.Validate(c.N); err != nil {
			return err
		}
	}
	for _, j := range c.Joins {
		if err := j.Validate(c.N); err != nil {
			return err
		}
	}
	for _, r := range c.Restarts {
		if err := r.Validate(c.N); err != nil {
			return err
		}
	}
	return nil
}

// RunResult aggregates one run's measurements over the window
// [Warmup, Warmup+Duration).
type RunResult struct {
	Config Config
	// Summary holds delivery coverage and atomicity (threshold 95%).
	Summary metrics.Summary
	// InputRate is the admitted broadcast rate in msg/s (aggregate).
	InputRate float64
	// OutputRate is the average per-receiver goodput in msg/s:
	// InputRate × mean coverage. This is the paper's Figure 7(b)
	// "output rate (input-loss)" reading.
	OutputRate float64
	// AtomicRate is the rate of messages reaching >95% of members.
	AtomicRate float64
	// AvgDroppedAge is the mean age of capacity-dropped events across
	// all nodes within the window — the §2.3 congestion signal.
	AvgDroppedAge float64
	// DroppedEvents counts capacity drops in the window.
	DroppedEvents uint64
	// AllowedRate is the aggregate allowed sending rate (adaptive runs;
	// 0 for the baseline).
	AllowedRate float64
	// OfferedRate echoes the aggregate offered load.
	OfferedRate float64
	// AllowedSeries is the aggregate allowed rate per bucket over the
	// whole run (adaptive only).
	AllowedSeries []metrics.GaugePoint
	// AtomicitySeries is the per-bucket atomicity over the whole run.
	AtomicitySeries []metrics.BucketStat
	// MinBuffFinal is the minimum over nodes of the final minBuff
	// estimate (adaptive only) — convergence diagnostic.
	MinBuffFinal int
	// Recovery aggregates the anti-entropy counters across all nodes
	// (zero when the subsystem is disabled).
	Recovery metrics.RecoverySummary
	// Failure aggregates the failure-detector counters across all nodes
	// (zero when the subsystem is disabled).
	Failure metrics.FailureSummary
	// ViewAccuracyPct is the mean over samples and live nodes of the
	// fraction of each node's view that points at live members
	// (PerNodeViews runs only; 0 otherwise).
	ViewAccuracyPct float64
	// DetectionLatencyRounds is the mean per-observer latency from a
	// crash instant to the observer's confirm, in gossip rounds
	// (FailureDetection runs with crashes only).
	DetectionLatencyRounds float64
	// FalseConfirms counts confirms of nodes that were actually up —
	// ground-truth false positives (FailureDetection runs only).
	FalseConfirms uint64
	// Network counts fabric traffic by kind (simulation runs only).
	Network sim.NetworkStats
	// Latency is the pooled birth→delivery latency distribution in
	// microseconds over every delivery of the whole run (warmup and
	// drain included) — the p50/p95/p99 the figure tables report.
	Latency observe.HistogramSnapshot
	// Hops is the pooled hop-count (event age at delivery) distribution
	// over the same deliveries.
	Hops observe.HistogramSnapshot
}

// Run executes one simulated experiment.
func Run(cfg Config) (RunResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return RunResult{}, err
	}

	epoch := sim.Epoch
	sched := sim.NewScheduler(epoch)
	netOpts := []sim.NetworkOption{}
	if cfg.LatencyMax > 0 {
		netOpts = append(netOpts, sim.WithLatency(cfg.LatencyMin, cfg.LatencyMax))
	}
	if cfg.Loss > 0 {
		netOpts = append(netOpts, sim.WithLoss(cfg.Loss))
	}
	network, err := sim.NewNetwork(sched, sim.NetworkRNG(cfg.Seed), netOpts...)
	if err != nil {
		return RunResult{}, err
	}

	names := make([]gossip.NodeID, cfg.N)
	nameIdx := make(map[gossip.NodeID]int, cfg.N)
	for i := range names {
		names[i] = gossip.NodeID(fmt.Sprintf("n%03d", i))
		nameIdx[names[i]] = i
	}
	// Late joiners stay out of the membership (and idle) until their
	// scheduled join instant.
	joinAt := make(map[int]time.Duration, len(cfg.Joins))
	for _, j := range cfg.Joins {
		for _, idx := range j.Nodes {
			joinAt[idx] = j.At
		}
	}
	seedMembers := func(r *membership.Registry) {
		for i, name := range names {
			if _, late := joinAt[i]; !late {
				r.Add(name)
			}
		}
	}
	// Membership: one omniscient shared registry (the paper's model),
	// or one registry per node so views degrade realistically under
	// churn and failure detection has something to repair.
	var registry *membership.Registry
	regs := make([]*membership.Registry, cfg.N)
	if cfg.PerNodeViews {
		for i := range regs {
			regs[i] = membership.NewRegistry()
			seedMembers(regs[i])
		}
	} else {
		registry = membership.NewRegistry()
		seedMembers(registry)
		for i := range regs {
			regs[i] = registry
		}
	}
	tracker, err := metrics.NewDeliveryTracker(names)
	if err != nil {
		return RunResult{}, err
	}
	allowed := metrics.NewGaugeMeter(epoch, cfg.Bucket)

	// Ground truth for the detector metrics: which nodes are down, and
	// since when.
	downNode := make([]bool, cfg.N)
	downSince := make(map[gossip.NodeID]time.Time, cfg.N)
	var (
		latencySum    time.Duration
		latencyN      int
		falseConfirms uint64
	)

	gp := gossip.Params{
		Fanout:      cfg.Fanout,
		Period:      cfg.Period,
		MaxEvents:   cfg.Buffer,
		MaxEventIDs: cfg.IDCacheMult * cfg.Buffer,
		MaxAge:      cfg.MaxAge,
	}
	nodes := make([]*core.AdaptiveNode, cfg.N)
	for i := range nodes {
		name := names[i]
		ownReg := regs[i]
		// Detector verdicts: with per-node views the observer maintains
		// its own registry; either way, confirms are scored against the
		// ground-truth down set for latency and false positives.
		var onMembership failure.OnChangeFunc
		if cfg.FailureDetection {
			onMembership = func(id gossip.NodeID, status gossip.MemberStatus) {
				switch status {
				case gossip.MemberConfirmed:
					if since, isDown := downSince[id]; isDown {
						latencySum += sched.Now().Sub(since)
						latencyN++
					} else {
						falseConfirms++
					}
					if cfg.PerNodeViews {
						ownReg.Remove(id)
					}
				case gossip.MemberAlive:
					if cfg.PerNodeViews {
						ownReg.Add(id)
					}
				}
			}
		}
		node, err := core.NewAdaptiveNode(core.NodeConfig{
			ID:           name,
			Gossip:       gp,
			Adaptive:     cfg.Adaptive,
			Core:         cfg.Core,
			Recovery:     cfg.recoveryParams(),
			Failure:      cfg.failureParams(),
			OnMembership: onMembership,
			Peers:        ownReg,
			RNG:          sim.NodeRNG(cfg.Seed, i),
			Deliver: func(ev gossip.Event) {
				tracker.DeliverHop(ev.ID, name, sched.Now(), ev.Age)
			},
			Start: epoch,
		})
		if err != nil {
			return RunResult{}, err
		}
		nodes[i] = node
		network.AttachNode(name, func(m *gossip.Message) []gossip.Outgoing {
			return node.Receive(m, sched.Now())
		})
	}

	// The simulated fabric holds a sent message until its delivery
	// instant. Gossip rounds reuse the sender's scratch message
	// (gossip.Node.Tick's lifetime contract), which is safe while
	// deliveries land before the sender's next tick; with latencies at
	// or beyond the gossip period the round message must be copied out
	// of the scratch state once per round.
	cloneSends := cfg.LatencyMax >= cfg.Period

	// Gossip rounds: each node ticks every Period with a random initial
	// phase so the cluster does not tick in lockstep. Late joiners'
	// first tick is deferred to their join instant.
	startTicks := func(i int) {
		phaseRNG := sim.PhaseRNG(cfg.Seed, i)
		var tick func()
		tick = func() {
			// A crashed process executes nothing: the timer keeps
			// running so the node resumes at its old phase on restart,
			// but the state machine is not driven while down.
			if downNode[i] {
				sched.After(cfg.Period, tick)
				return
			}
			node := nodes[i]
			outs := node.Tick(sched.Now())
			var roundMsg, roundCopy *gossip.Message
			if cloneSends && len(outs) > 0 {
				// Only the shared round message is node scratch;
				// subsystem control messages (recovery pulls, probes)
				// are freshly allocated each drain and need no copy.
				roundMsg = outs[0].Msg
				roundCopy = roundMsg.CopyForSend()
			}
			for _, out := range outs {
				msg := out.Msg
				if msg == roundMsg {
					msg = roundCopy
				}
				//gossip:scratchok cloneSends substitutes roundCopy above whenever delivery latency can outlive the round
				network.Send(names[i], out.To, msg)
			}
			if cfg.Adaptive && i < cfg.Senders {
				allowed.Observe(sched.Now(), node.AllowedRate())
			}
			sched.After(cfg.Period, tick)
		}
		phase := time.Duration(phaseRNG.Float64() * float64(cfg.Period))
		sched.After(phase, tick)
	}

	// Offered load: senders are indexed by node; late-joining senders
	// are created at join time.
	senders := make([]*workload.SimSender, cfg.Senders)
	perSender := cfg.OfferedRate / float64(cfg.Senders)
	startSender := func(i int) error {
		node := nodes[i]
		sender, err := workload.StartSimSender(sched, workload.SenderConfig{
			Rate:        perSender,
			PayloadSize: cfg.PayloadSize,
			Poisson:     cfg.Poisson,
		}, func(payload []byte) bool {
			ev, ok := node.Publish(payload, sched.Now())
			if ok {
				tracker.Broadcast(ev.ID, sched.Now())
			}
			return ok
		}, sim.WorkloadRNG(cfg.Seed, i))
		if err != nil {
			return err
		}
		senders[i] = sender
		return nil
	}
	for i := 0; i < cfg.N; i++ {
		if _, late := joinAt[i]; late {
			continue
		}
		startTicks(i)
		if i < cfg.Senders {
			if err := startSender(i); err != nil {
				return RunResult{}, err
			}
		}
	}

	// addMemberAll introduces a member to every view (a no-op beyond the
	// first call in shared-registry mode, where all regs alias one).
	addMemberAll := func(name gossip.NodeID) {
		for _, r := range regs {
			r.Add(name)
		}
	}

	// Join schedule: at the join instant a node enters the membership,
	// starts ticking and starts offering load.
	for _, j := range cfg.Joins {
		j := j
		sched.At(epoch.Add(j.At), func() {
			for _, idx := range j.Nodes {
				addMemberAll(names[idx])
				startTicks(idx)
				if idx < cfg.Senders && senders[idx] == nil {
					if err := startSender(idx); err != nil {
						panic(fmt.Sprintf("experiments: join: %v", err))
					}
				}
			}
		})
	}

	// Buffer-resize schedule.
	for _, r := range cfg.Resizes {
		r := r
		sched.At(epoch.Add(r.At), func() {
			for _, idx := range r.Nodes {
				if err := nodes[idx].SetBufferCapacity(r.Capacity); err != nil {
					panic(fmt.Sprintf("experiments: resize: %v", err))
				}
			}
		})
	}

	// Failure schedule: crashed nodes stop executing, drop all traffic
	// and stop publishing. In shared-registry mode the registry is
	// omnisciently updated (the paper's model); with PerNodeViews the
	// dead member lingers in every view until a detector evicts it.
	for _, cr := range cfg.Crashes {
		cr := cr
		sched.At(epoch.Add(cr.At), func() {
			for _, idx := range cr.Nodes {
				network.SetDown(names[idx], true)
				downNode[idx] = true
				downSince[names[idx]] = sched.Now()
				if !cfg.PerNodeViews {
					registry.Remove(names[idx])
				}
				if idx < len(senders) && senders[idx] != nil {
					senders[idx].Stop()
				}
			}
		})
	}

	// Restart schedule: a crashed node comes back as a fresh process —
	// reachable again, detector state reset with a bumped incarnation,
	// its own view re-seeded from the static member list, and its
	// publisher resumed.
	for _, rs := range cfg.Restarts {
		rs := rs
		sched.At(epoch.Add(rs.At), func() {
			for _, idx := range rs.Nodes {
				if !downNode[idx] {
					continue
				}
				network.SetDown(names[idx], false)
				downNode[idx] = false
				delete(downSince, names[idx])
				nodes[idx].FailureRejoin()
				if cfg.PerNodeViews {
					seedMembers(regs[idx])
				} else {
					registry.Add(names[idx])
				}
				if idx < cfg.Senders {
					if err := startSender(idx); err != nil {
						panic(fmt.Sprintf("experiments: restart: %v", err))
					}
				}
			}
		})
	}

	// View accuracy: with per-node views, sample each live node's
	// registry once per bucket inside the measurement window and score
	// the fraction of non-self entries that point at live members.
	var accSum float64
	var accN int
	if cfg.PerNodeViews {
		var sampleAcc func()
		sampleAcc = func() {
			for i, r := range regs {
				if downNode[i] {
					continue
				}
				live, total := 0, 0
				for _, id := range r.IDs() {
					if id == names[i] {
						continue
					}
					total++
					if !downNode[nameIdx[id]] {
						live++
					}
				}
				if total > 0 {
					accSum += float64(live) / float64(total)
					accN++
				}
			}
			if next := sched.Now().Add(cfg.Bucket); next.Before(epoch.Add(cfg.Warmup + cfg.Duration)) {
				sched.At(next, sampleAcc)
			}
		}
		sched.At(epoch.Add(cfg.Warmup), sampleAcc)
	}

	// Capture dropped-age counters at the window edges so the measured
	// average covers exactly the measurement window.
	from := epoch.Add(cfg.Warmup)
	to := from.Add(cfg.Duration)
	var startAgeSum, startDropped uint64
	sched.At(from, func() {
		for _, n := range nodes {
			st := n.GossipStats()
			startAgeSum += st.DroppedAgeSum
			startDropped += st.DroppedCapacity
		}
	})
	var endAgeSum, endDropped uint64
	sched.At(to, func() {
		for _, n := range nodes {
			st := n.GossipStats()
			endAgeSum += st.DroppedAgeSum
			endDropped += st.DroppedCapacity
		}
	})

	end := to.Add(cfg.Drain)
	sched.RunUntil(end)

	// Senders stop implicitly: the scheduler simply stops executing.
	for _, s := range senders {
		if s != nil {
			s.Stop()
		}
	}

	res := RunResult{
		Config:      cfg,
		OfferedRate: cfg.OfferedRate,
		Summary:     tracker.Results(from, to, metrics.DefaultAtomicityThreshold),
	}
	secs := cfg.Duration.Seconds()
	res.InputRate = float64(res.Summary.Messages) / secs
	res.OutputRate = res.InputRate * res.Summary.MeanReceiversPct / 100
	res.AtomicRate = res.InputRate * res.Summary.AtomicityPct / 100
	if d := endDropped - startDropped; d > 0 {
		res.AvgDroppedAge = float64(endAgeSum-startAgeSum) / float64(d)
		res.DroppedEvents = d
	}
	if cfg.Adaptive {
		if mean, ok := allowed.MeanWindow(from, to); ok {
			res.AllowedRate = mean * float64(cfg.Senders)
		}
		res.AllowedSeries = scaleGauge(allowed.Series(epoch, end), float64(cfg.Senders))
		res.MinBuffFinal = nodes[0].MinBuffEstimate()
		for _, n := range nodes[1:] {
			if mb := n.MinBuffEstimate(); mb < res.MinBuffFinal {
				res.MinBuffFinal = mb
			}
		}
	}
	if cfg.Recovery {
		for _, n := range nodes {
			res.Recovery.Add(n.RecoveryStats())
		}
	}
	if cfg.FailureDetection {
		for _, n := range nodes {
			res.Failure.Add(n.FailureStats())
		}
		if latencyN > 0 {
			res.DetectionLatencyRounds = latencySum.Seconds() / float64(latencyN) / cfg.Period.Seconds()
		}
		res.FalseConfirms = falseConfirms
	}
	if accN > 0 {
		res.ViewAccuracyPct = 100 * accSum / float64(accN)
	}
	res.Network = network.Stats()
	res.AtomicitySeries = tracker.Series(epoch, end, cfg.Bucket, metrics.DefaultAtomicityThreshold)
	res.Latency = tracker.LatencySnapshot()
	res.Hops = tracker.HopsSnapshot()
	return res, nil
}

func scaleGauge(points []metrics.GaugePoint, factor float64) []metrics.GaugePoint {
	out := make([]metrics.GaugePoint, len(points))
	for i, p := range points {
		p.Mean *= factor
		out[i] = p
	}
	return out
}

// RunSeeds runs cfg with consecutive seeds and averages the scalar
// results. Series come from the first seed; the recovery and network
// counter blocks are pooled (summed) across seeds, so ratios derived
// from them are pooled estimates. The averaged Messages count rounds to
// nearest.
//
// Seed replications are independent (each run owns its scheduler,
// network and RNGs, all derived from its seed), so they execute on the
// package worker pool; results are folded in seed order afterwards,
// keeping the output identical to a sequential sweep.
func RunSeeds(cfg Config, seeds int) (RunResult, error) {
	if seeds <= 0 {
		seeds = 1
	}
	results := make([]RunResult, seeds)
	err := forEach(seeds, func(s int) error {
		c := cfg
		c.Seed = cfg.Seed + int64(s)
		res, err := Run(c)
		if err != nil {
			return err
		}
		results[s] = res
		return nil
	})
	if err != nil {
		return RunResult{}, err
	}
	agg := results[0]
	for _, res := range results[1:] {
		agg.Summary.MeanReceiversPct += res.Summary.MeanReceiversPct
		agg.Summary.AtomicityPct += res.Summary.AtomicityPct
		agg.Summary.Messages += res.Summary.Messages
		agg.InputRate += res.InputRate
		agg.OutputRate += res.OutputRate
		agg.AtomicRate += res.AtomicRate
		agg.AvgDroppedAge += res.AvgDroppedAge
		agg.AllowedRate += res.AllowedRate
		agg.Recovery.Merge(res.Recovery)
		agg.Failure.Merge(res.Failure)
		agg.ViewAccuracyPct += res.ViewAccuracyPct
		agg.DetectionLatencyRounds += res.DetectionLatencyRounds
		agg.FalseConfirms += res.FalseConfirms
		agg.Network.Merge(res.Network)
		agg.Latency.Merge(res.Latency)
		agg.Hops.Merge(res.Hops)
	}
	k := float64(seeds)
	agg.Summary.Messages = (agg.Summary.Messages + seeds/2) / seeds
	agg.Summary.MeanReceiversPct /= k
	agg.Summary.AtomicityPct /= k
	agg.InputRate /= k
	agg.OutputRate /= k
	agg.AtomicRate /= k
	agg.AvgDroppedAge /= k
	agg.AllowedRate /= k
	agg.ViewAccuracyPct /= k
	agg.DetectionLatencyRounds /= k
	return agg, nil
}

package experiments

import (
	"testing"
	"time"

	"adaptivegossip/internal/workload"
)

// smallConfig is a fast (sub-second) experiment configuration used by
// the shape tests: 20 nodes, fanout 3, 1-second virtual rounds.
func smallConfig() Config {
	return Config{
		N:           20,
		Fanout:      3,
		Period:      time.Second,
		MaxAge:      10,
		Buffer:      30,
		OfferedRate: 4,
		PayloadSize: 8,
		Warmup:      40 * time.Second,
		Duration:    120 * time.Second,
		Seed:        11,
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"too few nodes", func(c *Config) { c.N = 1 }},
		{"negative rate", func(c *Config) { c.OfferedRate = -1 }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"negative warmup", func(c *Config) { c.Warmup = -time.Second }},
		{"bad resize", func(c *Config) {
			c.Resizes = []workload.Resize{{At: 0, Nodes: []int{99}, Capacity: 5}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig().withDefaults()
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
	if err := smallConfig().withDefaults().Validate(); err != nil {
		t.Fatalf("small config invalid: %v", err)
	}
	if err := DefaultConfig().withDefaults().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestRunBaselineHealthyAtLowRate(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Messages < 300 {
		t.Fatalf("only %d messages measured", res.Summary.Messages)
	}
	if res.Summary.MeanReceiversPct < 97 {
		t.Fatalf("mean receivers %.1f%%, want healthy ≥97%%", res.Summary.MeanReceiversPct)
	}
	if res.Summary.AtomicityPct < 90 {
		t.Fatalf("atomicity %.1f%%, want ≥90%% at low rate", res.Summary.AtomicityPct)
	}
	// Input equals offered for the unbounded baseline.
	if res.InputRate < 3.8 || res.InputRate > 4.2 {
		t.Fatalf("input rate %.2f, want ≈4", res.InputRate)
	}
}

// Capacity note: with T=1s, F=3, B=30, the maximum reliable rate is
// ≈28 msg/s (rate ∝ F·B/T), so "overload" in these tests means ≳100.

func TestRunBaselineDegradesUnderOverload(t *testing.T) {
	cfg := smallConfig()
	cfg.OfferedRate = 120 // ≈4× capacity for buffer 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MeanReceiversPct > 90 {
		t.Fatalf("mean receivers %.1f%% under overload, want degradation", res.Summary.MeanReceiversPct)
	}
	if res.Summary.AtomicityPct > 30 {
		t.Fatalf("atomicity %.1f%% under overload, want collapse", res.Summary.AtomicityPct)
	}
	if res.AvgDroppedAge >= 5 {
		t.Fatalf("dropped age %.1f under overload, want young drops", res.AvgDroppedAge)
	}
}

func TestRunAdaptiveProtectsReliability(t *testing.T) {
	base := smallConfig()
	base.OfferedRate = 120

	lp, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ad := base
	ad.Adaptive = true
	adRes, err := Run(ad)
	if err != nil {
		t.Fatal(err)
	}
	// The mechanism throttles input below offered...
	if adRes.InputRate >= 0.8*base.OfferedRate {
		t.Fatalf("adaptive input %.2f did not throttle below offered %v", adRes.InputRate, base.OfferedRate)
	}
	// ...and reliability is far better than the baseline's.
	if adRes.Summary.AtomicityPct < lp.Summary.AtomicityPct+30 {
		t.Fatalf("adaptive atomicity %.1f%% vs baseline %.1f%%: no clear win",
			adRes.Summary.AtomicityPct, lp.Summary.AtomicityPct)
	}
	if adRes.Summary.MeanReceiversPct < 92 {
		t.Fatalf("adaptive mean receivers %.1f%%", adRes.Summary.MeanReceiversPct)
	}
	// Input ≈ output for the adaptive run (Fig. 7's no-loss claim).
	if adRes.OutputRate < 0.9*adRes.InputRate {
		t.Fatalf("adaptive output %.2f ≪ input %.2f", adRes.OutputRate, adRes.InputRate)
	}
	if adRes.AllowedRate <= 0 {
		t.Fatal("allowed rate not measured")
	}
	if adRes.MinBuffFinal != base.Buffer {
		t.Fatalf("minBuff converged to %d, want %d", adRes.MinBuffFinal, base.Buffer)
	}
}

func TestRunDeterministicForSameSeed(t *testing.T) {
	cfg := smallConfig()
	cfg.OfferedRate = 120 // overload: per-message outcomes vary with the seed
	cfg.Duration = 60 * time.Second
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary || a.InputRate != b.InputRate || a.AvgDroppedAge != b.AvgDroppedAge {
		t.Fatalf("same seed diverged:\n a=%+v\n b=%+v", a, b)
	}
	c := cfg
	c.Seed = 999
	d, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary == d.Summary {
		t.Fatal("different seeds produced identical summaries (suspicious)")
	}
}

func TestRunWithLossStillDelivers(t *testing.T) {
	cfg := smallConfig()
	cfg.Loss = 0.1
	cfg.LatencyMin = 5 * time.Millisecond
	cfg.LatencyMax = 80 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Gossip's redundancy shrugs off 10% iid loss at low load.
	if res.Summary.MeanReceiversPct < 95 {
		t.Fatalf("mean receivers %.1f%% with 10%% loss", res.Summary.MeanReceiversPct)
	}
}

func TestRunResizeScheduleApplies(t *testing.T) {
	cfg := smallConfig()
	cfg.Adaptive = true
	cfg.Resizes = []workload.Resize{
		{At: 60 * time.Second, Nodes: []int{0, 1}, Capacity: 8},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinBuffFinal != 8 {
		t.Fatalf("minBuff final %d, want the resized 8", res.MinBuffFinal)
	}
}

func TestRunSeedsAverages(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 60 * time.Second
	res, err := RunSeeds(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MeanReceiversPct <= 0 || res.InputRate <= 0 {
		t.Fatalf("averaged result empty: %+v", res)
	}
	if _, err := RunSeeds(Config{}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

package experiments

import (
	"fmt"
	"io"
)

// RecoveryRow is one loss-rate point of the anti-entropy experiment:
// the same workload run twice, with the recovery subsystem off and on.
type RecoveryRow struct {
	Loss float64 // iid message loss probability
	// Delivery ratio (mean % of members reached per message).
	OffCoveragePct float64
	OnCoveragePct  float64
	// Atomicity (messages reaching >95% of members).
	OffAtomicityPct float64
	OnAtomicityPct  float64
	// Recovery activity in the on-run.
	EventsRecovered uint64
	IDsRequested    uint64
	ServeRatio      float64
	// OverheadPct is the on-run's recovery control traffic (requests +
	// responses) as a percentage of its push-gossip messages.
	OverheadPct float64
}

// DefaultRecoveryConfig stresses base so that pure push gossip actually
// loses events under iid loss: the buffer is sized well below one
// round's event births, so each event's push window is only a couple of
// rounds and a lost transmission is frequently the event's last chance.
// This is the regime the recovery subsystem exists for — with the
// paper's roomy defaults, gossip redundancy alone absorbs 20% loss and
// both curves sit at 100%.
func DefaultRecoveryConfig(base Config) Config {
	cfg := base
	cfg.Adaptive = false // isolate the repair mechanism from rate adaptation
	// Buffer ≈ one round of event births: each event is pushed for
	// about one round before capacity eviction ends its window, the
	// knee of the reliability curve (paper Figure 4).
	if births := int(cfg.OfferedRate * cfg.Period.Seconds()); births > 0 {
		cfg.Buffer = births
	}
	cfg.MaxAge = 8
	// Digest and budget sized to the per-round event volume so repair
	// keeps up with loss at the sweep's upper end.
	cfg.RecoveryDigestLen = 256
	cfg.RecoveryBudget = 128
	return cfg
}

// RunRecovery sweeps the loss rate and measures delivery with the
// anti-entropy subsystem disabled and enabled. Everything else —
// workload, seeds, membership — is identical between the paired runs.
// Loss points and their off/on arms run on the package worker pool.
func RunRecovery(base Config, losses []float64, seeds int) ([]RecoveryRow, error) {
	rows := make([]RecoveryRow, len(losses))
	err := forEach(len(losses), func(i int) error {
		loss := losses[i]
		cfg := base
		cfg.Loss = loss

		offRes, onRes, err := runPair(
			func() (RunResult, error) {
				off := cfg
				off.Recovery = false
				res, err := RunSeeds(off, seeds)
				if err != nil {
					return RunResult{}, fmt.Errorf("recovery experiment loss %v (off): %w", loss, err)
				}
				return res, nil
			},
			func() (RunResult, error) {
				on := cfg
				on.Recovery = true
				res, err := RunSeeds(on, seeds)
				if err != nil {
					return RunResult{}, fmt.Errorf("recovery experiment loss %v (on): %w", loss, err)
				}
				return res, nil
			})
		if err != nil {
			return err
		}

		row := RecoveryRow{
			Loss:            loss,
			OffCoveragePct:  offRes.Summary.MeanReceiversPct,
			OnCoveragePct:   onRes.Summary.MeanReceiversPct,
			OffAtomicityPct: offRes.Summary.AtomicityPct,
			OnAtomicityPct:  onRes.Summary.AtomicityPct,
			EventsRecovered: onRes.Recovery.EventsRecovered,
			IDsRequested:    onRes.Recovery.IDsRequested,
			ServeRatio:      onRes.Recovery.ServeRatio(),
		}
		if g := onRes.Network.GossipSent; g > 0 {
			ctrl := onRes.Network.RecoveryRequestSent + onRes.Network.RecoveryResponseSent
			row.OverheadPct = 100 * float64(ctrl) / float64(g)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderRecovery prints the loss-sweep table.
func RenderRecovery(w io.Writer, rows []RecoveryRow) {
	fmt.Fprintln(w, "# Recovery — Delivery ratio vs loss rate, anti-entropy off/on")
	fmt.Fprintln(w, "# loss(%)  coverage-off(%)  coverage-on(%)  atomic-off(%)  atomic-on(%)  recovered  requested  served(%)  overhead(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.1f  %15.2f  %14.2f  %13.1f  %12.1f  %9d  %9d  %9.1f  %11.2f\n",
			100*r.Loss, r.OffCoveragePct, r.OnCoveragePct, r.OffAtomicityPct, r.OnAtomicityPct,
			r.EventsRecovered, r.IDsRequested, 100*r.ServeRatio, r.OverheadPct)
	}
}

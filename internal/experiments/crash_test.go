package experiments

import (
	"testing"
	"time"

	"adaptivegossip/internal/workload"
)

// TestRunSurvivesCrashes injects crashes of 10% of the group mid-run
// and checks the epidemic still reaches essentially all survivors —
// the resilience property gossip is chosen for (paper §2).
func TestRunSurvivesCrashes(t *testing.T) {
	cfg := smallConfig()
	cfg.Warmup = 60 * time.Second
	crashed := []int{18, 19} // non-senders-only is irrelevant; they also publish
	cfg.Crashes = []workload.Crash{{At: 30 * time.Second, Nodes: crashed}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 of 20 members are gone, so perfect coverage is 90%. Survivors
	// should still see nearly everything: ≥88% mean coverage overall.
	if res.Summary.MeanReceiversPct < 88 {
		t.Fatalf("mean receivers %.1f%% with 10%% crashed, want ≥88%%", res.Summary.MeanReceiversPct)
	}
	// And nothing should exceed the survivor ceiling.
	if res.Summary.MeanReceiversPct > 90.01 {
		t.Fatalf("mean receivers %.1f%% exceeds survivor ceiling", res.Summary.MeanReceiversPct)
	}
}

// TestRunAdaptiveSurvivesCrashOfConstrainedNode: when the most
// constrained node crashes, its stale minimum ages out of the window
// and the allowance recovers.
func TestRunAdaptiveSurvivesCrashOfConstrainedNode(t *testing.T) {
	cfg := smallConfig()
	cfg.Adaptive = true
	cfg.OfferedRate = 20
	cfg.Warmup = 0
	cfg.Duration = 200 * time.Second
	// Node 19 starts tiny, throttling everyone; it crashes at t=100s.
	cfg.Resizes = []workload.Resize{{At: 0, Nodes: []int{19}, Capacity: 5}}
	cfg.Crashes = []workload.Crash{{At: 100 * time.Second, Nodes: []int{19}}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bucket := res.Config.Bucket
	before, okB := meanAllowedBetween(res, 60*time.Second, 100*time.Second, bucket)
	after, okA := meanAllowedBetween(res, 150*time.Second, 200*time.Second, bucket)
	if !okB || !okA {
		t.Fatalf("allowed series incomplete: %v %v", okB, okA)
	}
	if after <= before*1.3 {
		t.Fatalf("allowance did not recover after the constrained node crashed: %.2f → %.2f", before, after)
	}
}

func meanAllowedBetween(res RunResult, from, to, bucket time.Duration) (float64, bool) {
	var sum float64
	var n int
	for i, p := range res.AllowedSeries {
		off := time.Duration(i) * bucket
		if off < from || off >= to || p.N == 0 {
			continue
		}
		sum += p.Mean
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

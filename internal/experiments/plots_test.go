package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestPlotFigures(t *testing.T) {
	var sb strings.Builder
	fig2 := []Figure2Row{{Rate: 10, AtomicityPct: 99}, {Rate: 60, AtomicityPct: 1}}
	if err := PlotFigure2(&sb, fig2); err != nil {
		t.Fatal(err)
	}
	fig4 := []Figure4Row{{Buffer: 30, MaxRate: 8}, {Buffer: 180, MaxRate: 49}}
	if err := PlotFigure4(&sb, fig4); err != nil {
		t.Fatal(err)
	}
	fig6 := []Figure6Row{
		{Buffer: 30, Offered: 30, Allowed: 6, Maximum: 8},
		{Buffer: 180, Offered: 30, Allowed: 29, Maximum: 49},
	}
	if err := PlotFigure6(&sb, fig6); err != nil {
		t.Fatal(err)
	}
	fig8 := []Figure8Row{
		{Buffer: 30, LpAtomicity: 0, AdAtomicity: 85},
		{Buffer: 180, LpAtomicity: 98, AdAtomicity: 99},
	}
	if err := PlotFigure8(&sb, fig8); err != nil {
		t.Fatal(err)
	}
	fig9 := Figure9Result{Points: []Figure9Point{
		{Start: 0, AllowedRate: 20, IdealRate: 24, AtomicityAdaptive: 90, AtomicityLpbcast: 80, Messages: 50},
		{Start: 200 * time.Second, AllowedRate: 12, IdealRate: 12, AtomicityAdaptive: 99, AtomicityLpbcast: 60, Messages: 50},
	}}
	if err := PlotFigure9(&sb, fig9); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 2", "Figure 4", "Figure 6", "Figure 8(b)", "Figure 9(a)", "Figure 9(b)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plots missing %q", want)
		}
	}
}

func TestPlotFigure9NoIdeal(t *testing.T) {
	var sb strings.Builder
	fig9 := Figure9Result{Points: []Figure9Point{
		{Start: 0, AllowedRate: 20, AtomicityAdaptive: 90, AtomicityLpbcast: 80, Messages: 10},
		{Start: 5 * time.Second, AllowedRate: 18, AtomicityAdaptive: 91, AtomicityLpbcast: 70, Messages: 10},
	}}
	if err := PlotFigure9(&sb, fig9); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "ideal") {
		t.Fatal("ideal series drawn without data")
	}
}

package experiments

import (
	"strings"
	"testing"
	"time"
)

// smallFigure9 shrinks the dynamic scenario: 20 nodes, capacities
// 30 → 10 → 20, over 300 virtual seconds.
func smallFigure9() Figure9Config {
	base := smallConfig()
	base.OfferedRate = 24 // between max(10)≈9.5 and max(30)≈28 msg/s
	base.Warmup = 0
	return Figure9Config{
		Base:            base,
		InitialBuffer:   30,
		ReducedBuffer:   10,
		RecoveredBuffer: 20,
		Fraction:        0.2,
		ChangeAt1:       100 * time.Second,
		ChangeAt2:       200 * time.Second,
		Total:           300 * time.Second,
		IdealFor:        Figure4Fit([]Figure4Row{{Buffer: 10, MaxRate: 9.5}, {Buffer: 30, MaxRate: 28}}),
	}
}

func TestFigure9SimAdaptsToBufferChanges(t *testing.T) {
	res, err := RunFigure9Sim(smallFigure9())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no series points")
	}
	phases := res.Phases(40 * time.Second)
	if len(phases) != 3 {
		t.Fatalf("phases %d", len(phases))
	}
	initial, reduced, recovered := phases[0], phases[1], phases[2]
	// The allowance falls when buffers shrink...
	if reduced.MeanAllowed >= 0.8*initial.MeanAllowed {
		t.Fatalf("allowed did not fall on shrink: %.2f → %.2f", initial.MeanAllowed, reduced.MeanAllowed)
	}
	// ...and recovers (partially) when they grow back.
	if recovered.MeanAllowed <= reduced.MeanAllowed {
		t.Fatalf("allowed did not recover: %.2f → %.2f", reduced.MeanAllowed, recovered.MeanAllowed)
	}
	// The adaptive run beats the baseline during the constrained phase.
	if reduced.AtomicityAdaptive < reduced.AtomicityLpbcast+15 {
		t.Fatalf("constrained phase: adaptive %.1f%% vs lpbcast %.1f%%",
			reduced.AtomicityAdaptive, reduced.AtomicityLpbcast)
	}
	var sb strings.Builder
	RenderFigure9(&sb, res)
	if !strings.Contains(sb.String(), "Figure 9") {
		t.Fatal("render missing header")
	}
}

func TestFigure4FitInterpolatesAndExtrapolates(t *testing.T) {
	fit := Figure4Fit([]Figure4Row{{Buffer: 30, MaxRate: 8}, {Buffer: 90, MaxRate: 24}})
	if got := fit(60); got < 15.9 || got > 16.1 {
		t.Fatalf("fit(60) = %v, want 16", got)
	}
	if got := fit(15); got < 3.9 || got > 4.1 {
		t.Fatalf("fit(15) = %v, want 4", got)
	}
	if got := fit(180); got < 47.9 || got > 48.1 {
		t.Fatalf("fit(180) = %v, want 48", got)
	}
	if Figure4Fit(nil) != nil {
		t.Fatal("empty fit should be nil")
	}
}

func TestDefaultFigure9ConfigMatchesPaper(t *testing.T) {
	cfg := DefaultFigure9Config(DefaultConfig())
	if cfg.InitialBuffer != 90 || cfg.ReducedBuffer != 45 || cfg.RecoveredBuffer != 60 {
		t.Fatalf("capacities %d/%d/%d", cfg.InitialBuffer, cfg.ReducedBuffer, cfg.RecoveredBuffer)
	}
	if cfg.Fraction != 0.2 || cfg.Total != 450*time.Second {
		t.Fatalf("fraction/total %v/%v", cfg.Fraction, cfg.Total)
	}
	if cfg.Base.OfferedRate != 20 {
		t.Fatalf("offered %v", cfg.Base.OfferedRate)
	}
}

//go:build race

package experiments

// raceEnabled lets tests whose cost is dominated by sheer simulation
// volume (not by concurrency) skip under the race detector; the
// concurrency they exercise is covered by smaller race-enabled tests.
const raceEnabled = true

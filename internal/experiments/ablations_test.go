package experiments

import (
	"strings"
	"testing"
)

func TestAblationTokenCheckShowsInflation(t *testing.T) {
	base := smallConfig()
	rows, err := RunAblationTokenCheck(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	withCheck, without := rows[0], rows[1]
	// Without the guard, the unused allowance inflates well beyond the
	// guarded variant's.
	if without.AllowedMean < 1.5*withCheck.AllowedMean {
		t.Fatalf("no inflation visible: with=%.2f without=%.2f",
			withCheck.AllowedMean, without.AllowedMean)
	}
	var sb strings.Builder
	RenderAblations(&sb, rows)
	if !strings.Contains(sb.String(), "avgTokens") {
		t.Fatal("render missing study name")
	}
}

func TestAblationRandomizationRuns(t *testing.T) {
	base := smallConfig()
	base.Duration = 100 * 1e9 // 100s
	rows, err := RunAblationRandomization(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.AllowedMean <= 0 {
			t.Fatalf("allowed mean empty: %+v", r)
		}
	}
}

func TestAblationWindowRuns(t *testing.T) {
	base := smallConfig()
	rows, err := RunAblationWindow(base, []int{1, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	// Both variants keep the group functional.
	for _, r := range rows {
		if r.AllowedMean <= 0 {
			t.Fatalf("window variant dead: %+v", r)
		}
	}
}

func TestAblationAlphaRuns(t *testing.T) {
	base := smallConfig()
	rows, err := RunAblationAlpha(base, []float64{0.5, 0.9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
}

package experiments

import (
	"fmt"
	"io"

	"adaptivegossip/internal/observe"
)

// BucketCount is one non-empty power-of-two histogram bucket in a
// DistributionSummary: Count observations in [Low, High).
type BucketCount struct {
	Low   uint64 `json:"low"`
	High  uint64 `json:"high"`
	Count uint64 `json:"count"`
}

// DistributionSummary is the JSON-friendly digest of one pooled
// histogram — the shape cmd/gossipsim's -metrics-out file carries.
// Values are in the histogram's native unit (microseconds for delivery
// latency, hops for hop counts).
type DistributionSummary struct {
	Count   uint64        `json:"count"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Summarize digests a histogram snapshot into quantiles, the mean and
// the non-empty buckets.
func Summarize(s observe.HistogramSnapshot) DistributionSummary {
	out := DistributionSummary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		out.Buckets = append(out.Buckets, BucketCount{
			Low:   observe.BucketLow(i),
			High:  observe.BucketHigh(i),
			Count: c,
		})
	}
	return out
}

// renderDistributions appends one figure's pooled delivery-latency
// (printed in seconds) and hop-count percentile line to its table.
// label distinguishes multiple series within a figure ("" for one).
func renderDistributions(w io.Writer, label string, latency, hops observe.HistogramSnapshot) {
	if latency.Count == 0 && hops.Count == 0 {
		return
	}
	prefix := "# "
	if label != "" {
		prefix = fmt.Sprintf("# %s ", label)
	}
	const us = 1e6 // histograms observe microseconds
	fmt.Fprintf(w, "%sdelivery latency p50/p95/p99 = %.1f/%.1f/%.1f s (mean %.1f); hops p50/p95/p99 = %.0f/%.0f/%.0f\n",
		prefix,
		latency.Quantile(0.50)/us, latency.Quantile(0.95)/us, latency.Quantile(0.99)/us,
		latency.Mean()/us,
		hops.Quantile(0.50), hops.Quantile(0.95), hops.Quantile(0.99))
}

// Figure2Distributions pools the per-row latency and hop distributions
// of a Figure 2 sweep.
func Figure2Distributions(rows []Figure2Row) (latency, hops observe.HistogramSnapshot) {
	for _, r := range rows {
		latency.Merge(r.Latency)
		hops.Merge(r.Hops)
	}
	return latency, hops
}

// Figure6Distributions pools the per-row latency and hop distributions
// of a Figure 6 sweep.
func Figure6Distributions(rows []Figure6Row) (latency, hops observe.HistogramSnapshot) {
	for _, r := range rows {
		latency.Merge(r.Latency)
		hops.Merge(r.Hops)
	}
	return latency, hops
}

// Figure7Distributions pools the per-row latency and hop distributions
// of a Figure 7/8 sweep, keeping the lpbcast and adaptive arms apart.
func Figure7Distributions(rows []Figure7Row) (lpLatency, lpHops, adLatency, adHops observe.HistogramSnapshot) {
	for _, r := range rows {
		lpLatency.Merge(r.LpLatency)
		lpHops.Merge(r.LpHops)
		adLatency.Merge(r.AdLatency)
		adHops.Merge(r.AdHops)
	}
	return lpLatency, lpHops, adLatency, adHops
}

package experiments

import (
	"strings"
	"testing"
	"time"
)

// runtimeConfig is a sub-second real-time configuration: 10 nodes,
// 30ms rounds.
func runtimeConfig() Config {
	return Config{
		N:           10,
		Fanout:      3,
		Period:      30 * time.Millisecond,
		MaxAge:      8,
		Buffer:      30,
		OfferedRate: 100, // msg/s aggregate ≈ 3 per round
		PayloadSize: 8,
		Warmup:      300 * time.Millisecond,
		Duration:    900 * time.Millisecond,
		Seed:        5,
	}
}

func TestRunRuntimeBaselineSmoke(t *testing.T) {
	res, err := RunRuntime(runtimeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Messages < 30 {
		t.Fatalf("only %d messages measured", res.Summary.Messages)
	}
	if res.Summary.MeanReceiversPct < 90 {
		t.Fatalf("mean receivers %.1f%% in healthy runtime run", res.Summary.MeanReceiversPct)
	}
}

func TestRunRuntimeAdaptiveSmoke(t *testing.T) {
	cfg := runtimeConfig()
	cfg.Adaptive = true
	cfg.Core = DefaultExperimentCore(cfg.OfferedRate / float64(cfg.N))
	res, err := RunRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllowedRate <= 0 {
		t.Fatal("allowed rate not sampled")
	}
	if res.Summary.Messages == 0 {
		t.Fatal("no messages admitted")
	}
	if res.MinBuffFinal != cfg.Buffer {
		t.Fatalf("minBuff %d, want %d", res.MinBuffFinal, cfg.Buffer)
	}
}

func TestRunRuntimeInvalidConfig(t *testing.T) {
	cfg := runtimeConfig()
	cfg.N = 0
	if _, err := RunRuntime(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunFigure9RuntimeScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time scenario, ~3s")
	}
	base := Config{
		N:           12,
		Fanout:      3,
		Period:      time.Second, // scaled ÷40 → 25ms
		MaxAge:      8,
		Buffer:      30,
		OfferedRate: 6,
		PayloadSize: 8,
		Seed:        3,
	}
	cfg := Figure9Config{
		Base:            base,
		InitialBuffer:   30,
		ReducedBuffer:   10,
		RecoveredBuffer: 20,
		Fraction:        0.25,
		ChangeAt1:       20 * time.Second,
		ChangeAt2:       40 * time.Second,
		Total:           60 * time.Second,
		IdealFor:        func(buffer int) float64 { return float64(buffer) / 4 },
	}
	res, err := RunFigure9Runtime(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// Points are rescaled back to scenario time.
	last := res.Points[len(res.Points)-1]
	if last.Start < 30*time.Second {
		t.Fatalf("series too short after rescale: last at %v", last.Start)
	}
	var sb strings.Builder
	RenderFigure9(&sb, res)
	if !strings.Contains(sb.String(), "Figure 9") {
		t.Fatal("render missing header")
	}
}

func TestRunRuntimeFailureDetectionSmoke(t *testing.T) {
	cfg := runtimeConfig()
	cfg.PerNodeViews = true
	cfg.FailureDetection = true
	// Generous suspicion window so a goroutine stalled by a loaded CI
	// runner (-race slowdown) is not falsely confirmed at 30ms rounds.
	cfg.FailureSuspicionRounds = 40
	res, err := RunRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure.Nodes != cfg.N {
		t.Fatalf("failure stats cover %d nodes, want %d", res.Failure.Nodes, cfg.N)
	}
	if res.Failure.ProbesSent == 0 {
		t.Fatal("no probes sent over the goroutine runtime")
	}
	// Everyone is up: probing must not bury live members.
	if res.Failure.Confirms != 0 {
		t.Fatalf("%d confirms in a healthy runtime cluster", res.Failure.Confirms)
	}
	if ratio := res.Failure.AckRatio(); ratio < 0.5 {
		t.Fatalf("ack ratio %.2f in a healthy cluster, want most probes answered", ratio)
	}
	if res.Summary.MeanReceiversPct < 90 {
		t.Fatalf("mean receivers %.1f%% with detector on, healthy cluster", res.Summary.MeanReceiversPct)
	}
}

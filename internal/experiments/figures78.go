package experiments

import (
	"fmt"
	"io"

	"adaptivegossip/internal/observe"
)

// Figure7Row pairs baseline and adaptive rate/age measurements for one
// buffer size (paper Figure 7 a/b/c).
type Figure7Row struct {
	Buffer int
	// lpbcast: unbounded input equals the offered load.
	LpInput, LpOutput, LpDroppedAge float64
	// adaptive: input tracks the allowance; output equals input when no
	// messages are lost.
	AdInput, AdOutput, AdDroppedAge float64
	// Per-arm pooled delivery distributions: latency in µs, hop count.
	LpLatency, LpHops observe.HistogramSnapshot
	AdLatency, AdHops observe.HistogramSnapshot
}

// Figure8Row pairs baseline and adaptive reliability for one buffer
// size (paper Figure 8 a/b).
type Figure8Row struct {
	Buffer int
	// Average % of receivers per message (Fig. 8a).
	LpMeanReceivers, AdMeanReceivers float64
	// % of messages delivered to >95% of nodes (Fig. 8b).
	LpAtomicity, AdAtomicity float64
}

// RunFigures78 sweeps buffer sizes running the baseline and the
// adaptive algorithm at the same constant offered load, returning both
// figures' rows from the same runs (as the paper does). Buffer points
// run on the package worker pool; within a point, the baseline/adaptive
// pair fans out too.
func RunFigures78(base Config, buffers []int, seeds int) ([]Figure7Row, []Figure8Row, error) {
	rows7 := make([]Figure7Row, len(buffers))
	rows8 := make([]Figure8Row, len(buffers))
	err := forEach(len(buffers), func(i int) error {
		buffer := buffers[i]
		lp, ad, err := runPair(
			func() (RunResult, error) {
				lpCfg := base
				lpCfg.Adaptive = false
				lpCfg.Buffer = buffer
				res, err := RunSeeds(lpCfg, seeds)
				if err != nil {
					return RunResult{}, fmt.Errorf("figure 7/8 lpbcast buffer %d: %w", buffer, err)
				}
				return res, nil
			},
			func() (RunResult, error) {
				adCfg := base
				adCfg.Adaptive = true
				adCfg.Buffer = buffer
				adCfg.Core = DefaultExperimentCore(adCfg.OfferedRate / float64(orAll(adCfg.Senders, adCfg.N)))
				res, err := RunSeeds(adCfg, seeds)
				if err != nil {
					return RunResult{}, fmt.Errorf("figure 7/8 adaptive buffer %d: %w", buffer, err)
				}
				return res, nil
			})
		if err != nil {
			return err
		}
		rows7[i] = Figure7Row{
			Buffer:       buffer,
			LpInput:      lp.InputRate,
			LpOutput:     lp.OutputRate,
			LpDroppedAge: lp.AvgDroppedAge,
			AdInput:      ad.InputRate,
			AdOutput:     ad.OutputRate,
			AdDroppedAge: ad.AvgDroppedAge,
			LpLatency:    lp.Latency,
			LpHops:       lp.Hops,
			AdLatency:    ad.Latency,
			AdHops:       ad.Hops,
		}
		rows8[i] = Figure8Row{
			Buffer:          buffer,
			LpMeanReceivers: lp.Summary.MeanReceiversPct,
			AdMeanReceivers: ad.Summary.MeanReceiversPct,
			LpAtomicity:     lp.Summary.AtomicityPct,
			AdAtomicity:     ad.Summary.AtomicityPct,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rows7, rows8, nil
}

// RenderFigure7 prints the Figure 7 series (input rate, output rate and
// dropped age, lpbcast vs adaptive).
func RenderFigure7(w io.Writer, rows []Figure7Row) {
	fmt.Fprintln(w, "# Figure 7 — Rates and average ages (lpbcast vs adaptive)")
	fmt.Fprintln(w, "# buffer(msg)  lp-in(msg/s)  lp-out(msg/s)  lp-age(hops)  ad-in(msg/s)  ad-out(msg/s)  ad-age(hops)")
	for _, r := range rows {
		fmt.Fprintf(w, "%12d  %12.2f  %13.2f  %12.2f  %12.2f  %13.2f  %12.2f\n",
			r.Buffer, r.LpInput, r.LpOutput, r.LpDroppedAge,
			r.AdInput, r.AdOutput, r.AdDroppedAge)
	}
	lpLat, lpHops, adLat, adHops := Figure7Distributions(rows)
	renderDistributions(w, "lpbcast", lpLat, lpHops)
	renderDistributions(w, "adaptive", adLat, adHops)
}

// RenderFigure8 prints the Figure 8 series (average receivers and
// atomically delivered messages, lpbcast vs adaptive).
func RenderFigure8(w io.Writer, rows []Figure8Row) {
	fmt.Fprintln(w, "# Figure 8 — Reliability degradation (lpbcast vs adaptive)")
	fmt.Fprintln(w, "# buffer(msg)  lp-receivers(%)  ad-receivers(%)  lp-atomic(%)  ad-atomic(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%12d  %15.1f  %15.1f  %12.1f  %12.1f\n",
			r.Buffer, r.LpMeanReceivers, r.AdMeanReceivers, r.LpAtomicity, r.AdAtomicity)
	}
}

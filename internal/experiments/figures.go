package experiments

import (
	"fmt"
	"io"
	"math"

	"adaptivegossip/internal/observe"
)

// Figure2Row is one point of paper Figure 2 (reliability degradation of
// static lpbcast as the input rate grows).
type Figure2Row struct {
	Rate             float64 // offered = input rate, msg/s
	AtomicityPct     float64 // messages reaching >95% of receivers
	MeanReceiversPct float64
	AvgDroppedAge    float64 // the §2 text's 8.5 → 3.7 → 2.7 progression
	// Latency (µs) and Hops are this point's pooled delivery
	// distributions.
	Latency observe.HistogramSnapshot
	Hops    observe.HistogramSnapshot
}

// RunFigure2 sweeps the offered rate with the baseline algorithm. The
// rate points run on the package worker pool, assembled in input order.
func RunFigure2(base Config, rates []float64, seeds int) ([]Figure2Row, error) {
	rows := make([]Figure2Row, len(rates))
	err := forEach(len(rates), func(i int) error {
		rate := rates[i]
		cfg := base
		cfg.Adaptive = false
		cfg.OfferedRate = rate
		res, err := RunSeeds(cfg, seeds)
		if err != nil {
			return fmt.Errorf("figure 2 rate %v: %w", rate, err)
		}
		rows[i] = Figure2Row{
			Rate:             rate,
			AtomicityPct:     res.Summary.AtomicityPct,
			MeanReceiversPct: res.Summary.MeanReceiversPct,
			AvgDroppedAge:    res.AvgDroppedAge,
			Latency:          res.Latency,
			Hops:             res.Hops,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure2 prints the Figure 2 series.
func RenderFigure2(w io.Writer, rows []Figure2Row) {
	fmt.Fprintln(w, "# Figure 2 — Reliability degradation (lpbcast, static buffers)")
	fmt.Fprintln(w, "# rate(msg/s)  msgs>95%(%)  mean-receivers(%)  avg-dropped-age(hops)")
	for _, r := range rows {
		fmt.Fprintf(w, "%12.1f  %10.1f  %17.1f  %21.2f\n",
			r.Rate, r.AtomicityPct, r.MeanReceiversPct, r.AvgDroppedAge)
	}
	lat, hops := Figure2Distributions(rows)
	renderDistributions(w, "", lat, hops)
}

// Figure4Row is one point of paper Figure 4 (maximum input rate
// sustaining the reliability target, per buffer size) and of the §2.3
// critical-age table (T1).
type Figure4Row struct {
	Buffer        int
	MaxRate       float64 // msg/s: largest rate with mean coverage ≥ target
	AvgDroppedAge float64 // dropped age at that rate — ta's constancy
	CoveragePct   float64 // achieved coverage at MaxRate
}

// RunFigure4 finds, for each buffer size, the maximum aggregate rate
// that still delivers messages to at least targetPct of members on
// average (paper: 95%), by bisection over the offered rate. The
// per-buffer bisections are independent and run on the package worker
// pool; each bisection stays sequential (every probe depends on the
// last).
func RunFigure4(base Config, buffers []int, targetPct float64, seeds int) ([]Figure4Row, error) {
	if targetPct <= 0 {
		targetPct = 95
	}
	rows := make([]Figure4Row, len(buffers))
	err := forEach(len(buffers), func(i int) error {
		row, err := maxRateFor(base, buffers[i], targetPct, seeds)
		if err != nil {
			return fmt.Errorf("figure 4 buffer %d: %w", buffers[i], err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func maxRateFor(base Config, buffer int, targetPct float64, seeds int) (Figure4Row, error) {
	cfg := base
	cfg.Adaptive = false
	cfg.Buffer = buffer

	measure := func(rate float64) (RunResult, error) {
		c := cfg
		c.OfferedRate = rate
		return RunSeeds(c, seeds)
	}

	// Bracket: grow hi until coverage drops below target (or a cap).
	lo, hi := 0.5, float64(buffer) // rates scale ~linearly with buffer
	loRes, err := measure(lo)
	if err != nil {
		return Figure4Row{}, err
	}
	if loRes.Summary.MeanReceiversPct < targetPct {
		// Even a trickle fails: report the floor.
		return Figure4Row{Buffer: buffer, MaxRate: lo,
			AvgDroppedAge: loRes.AvgDroppedAge, CoveragePct: loRes.Summary.MeanReceiversPct}, nil
	}
	best := loRes
	bestRate := lo
	for iter := 0; iter < 8; iter++ {
		mid := (lo + hi) / 2
		res, err := measure(mid)
		if err != nil {
			return Figure4Row{}, err
		}
		if res.Summary.MeanReceiversPct >= targetPct {
			lo, best, bestRate = mid, res, mid
		} else {
			hi = mid
		}
	}
	return Figure4Row{
		Buffer:        buffer,
		MaxRate:       bestRate,
		AvgDroppedAge: best.AvgDroppedAge,
		CoveragePct:   best.Summary.MeanReceiversPct,
	}, nil
}

// CriticalAge is the §2.3 calibration: the mean of the per-buffer
// dropped ages at the maximum rate. The paper's observation is that
// these are all ≈ equal (5.3 hops in their system); the estimator's
// TargetAge should be set to this value.
func CriticalAge(rows []Figure4Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rows {
		sum += r.AvgDroppedAge
	}
	return sum / float64(len(rows))
}

// CriticalAgeSpread returns the max absolute deviation from the mean —
// how constant the critical age is across buffer sizes.
func CriticalAgeSpread(rows []Figure4Row) float64 {
	mean := CriticalAge(rows)
	var worst float64
	for _, r := range rows {
		if d := math.Abs(r.AvgDroppedAge - mean); d > worst {
			worst = d
		}
	}
	return worst
}

// RenderFigure4 prints the Figure 4 series plus the T1 critical-age
// table.
func RenderFigure4(w io.Writer, rows []Figure4Row) {
	fmt.Fprintln(w, "# Figure 4 / Table T1 — Maximum input rate and critical age per buffer size")
	fmt.Fprintln(w, "# buffer(msg)  max-rate(msg/s)  coverage(%)  avg-dropped-age(hops)")
	for _, r := range rows {
		fmt.Fprintf(w, "%12d  %15.2f  %11.1f  %21.2f\n",
			r.Buffer, r.MaxRate, r.CoveragePct, r.AvgDroppedAge)
	}
	fmt.Fprintf(w, "# critical age ta = %.2f hops (max deviation %.2f)\n",
		CriticalAge(rows), CriticalAgeSpread(rows))
}

// Figure6Row is one point of paper Figure 6 (offered, adaptive-allowed
// and maximum rates per buffer size).
type Figure6Row struct {
	Buffer  int
	Offered float64
	Allowed float64 // mean aggregate allowed rate computed by the mechanism
	Maximum float64 // the Figure 4 ideal
	Input   float64 // admitted rate under the allowance
	// Latency (µs) and Hops are this point's pooled delivery
	// distributions.
	Latency observe.HistogramSnapshot
	Hops    observe.HistogramSnapshot
}

// RunFigure6 runs the adaptive algorithm at a constant offered load
// across buffer sizes. fig4 supplies the "maximum" line; rows are
// matched by buffer size (missing buffers get Maximum = 0).
func RunFigure6(base Config, buffers []int, fig4 []Figure4Row, seeds int) ([]Figure6Row, error) {
	maxFor := make(map[int]float64, len(fig4))
	for _, r := range fig4 {
		maxFor[r.Buffer] = r.MaxRate
	}
	rows := make([]Figure6Row, len(buffers))
	err := forEach(len(buffers), func(i int) error {
		buffer := buffers[i]
		cfg := base
		cfg.Adaptive = true
		cfg.Buffer = buffer
		cfg.Core = DefaultExperimentCore(cfg.OfferedRate / float64(orAll(cfg.Senders, cfg.N)))
		res, err := RunSeeds(cfg, seeds)
		if err != nil {
			return fmt.Errorf("figure 6 buffer %d: %w", buffer, err)
		}
		rows[i] = Figure6Row{
			Buffer:  buffer,
			Offered: cfg.OfferedRate,
			Allowed: res.AllowedRate,
			Maximum: maxFor[buffer],
			Input:   res.InputRate,
			Latency: res.Latency,
			Hops:    res.Hops,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func orAll(senders, n int) int {
	if senders <= 0 || senders > n {
		return n
	}
	return senders
}

// RenderFigure6 prints the Figure 6 series.
func RenderFigure6(w io.Writer, rows []Figure6Row) {
	fmt.Fprintln(w, "# Figure 6 — Ideal and adaptive rates")
	fmt.Fprintln(w, "# buffer(msg)  offered(msg/s)  allowed(msg/s)  maximum(msg/s)  input(msg/s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%12d  %14.1f  %14.2f  %14.2f  %12.2f\n",
			r.Buffer, r.Offered, r.Allowed, r.Maximum, r.Input)
	}
	lat, hops := Figure6Distributions(rows)
	renderDistributions(w, "", lat, hops)
}

package experiments

import (
	"math"
	"strings"
	"testing"
)

// scaleTestConfig trims the default sweep so the acceptance run fits a
// unit-test budget while keeping the n=10,000 cell the issue gates on.
func scaleTestConfig() ScaleConfig {
	cfg := DefaultScaleConfig()
	cfg.Sizes = []int{10000}
	cfg.WarmupRounds = 4
	cfg.Rounds = 12
	return cfg
}

// TestScaleProximityAcceptance is the scale figure's acceptance gate:
// at n=10,000 the proximity-biased arm must spend strictly fewer
// cross-region bytes than uniform sampling while delivering no worse.
// "No worse" allows the intrinsic lpbcast straggler noise — a handful
// of nodes per run end up isolated in the partial-view graph regardless
// of sampling mode (the paper reports the same sub-100% reliability
// without recovery) — so coverage may differ by at most half a
// percentage point and both arms must stay above 99%.
func TestScaleProximityAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("n=10,000 sweep skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("n=10,000 sweep skipped under the race detector: the cost is simulation volume, and the sweep's worker-pool concurrency is raced by TestScaleDeterministic")
	}
	rows, err := RunScale(scaleTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("RunScale returned %d rows, want 2", len(rows))
	}
	uniform, proximity := rows[0], rows[1]
	if uniform.Proximity || !proximity.Proximity {
		t.Fatalf("row order: got modes %s,%s, want uniform,proximity", uniform.Mode(), proximity.Mode())
	}
	if proximity.CrossBytesPerNode >= uniform.CrossBytesPerNode {
		t.Errorf("proximity cross-region bytes/node = %.0f, want < uniform %.0f",
			proximity.CrossBytesPerNode, uniform.CrossBytesPerNode)
	}
	if proximity.CrossBytesPerNode > uniform.CrossBytesPerNode/2 {
		t.Errorf("proximity cross-region bytes/node = %.0f, want at most half of uniform %.0f",
			proximity.CrossBytesPerNode, uniform.CrossBytesPerNode)
	}
	if proximity.CoveragePct < uniform.CoveragePct-0.5 {
		t.Errorf("proximity coverage %.2f%% more than 0.5pp below uniform %.2f%%",
			proximity.CoveragePct, uniform.CoveragePct)
	}
	for _, r := range rows {
		if r.CoveragePct < 99 {
			t.Errorf("%s coverage %.2f%%, want >= 99%%", r.Mode(), r.CoveragePct)
		}
		if math.IsInf(r.RoundsTo99, 1) {
			t.Errorf("%s never reached 99%% of the group", r.Mode())
		}
		if r.Events == 0 || r.EventsPerSec <= 0 {
			t.Errorf("%s executed-event accounting empty: events=%d rate=%f", r.Mode(), r.Events, r.EventsPerSec)
		}
	}
	// The WAN model puts cross-region links at 6-60x intra-region
	// latency, so spending fewer cross-region bytes should not slow
	// delivery down.
	if proximity.LatencyP95 > uniform.LatencyP95+uniform.LatencyP95/10 {
		t.Errorf("proximity p95 latency %v more than 10%% above uniform %v",
			proximity.LatencyP95, uniform.LatencyP95)
	}
}

// TestScaleDeterministic pins that a sweep is a pure function of its
// seed: rerunning the same config — sequentially and on the parallel
// worker pool — reproduces every row bit for bit, across three seeds.
// This is the regression guard for the index-derived RNG streams
// (sim.NodeRNG and friends): attach order and sweep parallelism must
// not leak into results.
func TestScaleDeterministic(t *testing.T) {
	cfg := DefaultScaleConfig()
	cfg.Sizes = []int{300}
	cfg.WarmupRounds = 3
	cfg.Rounds = 8
	for _, seed := range []int64{1, 2, 42} {
		cfg.Seed = seed
		first, err := RunScale(cfg)
		if err != nil {
			t.Fatal(err)
		}
		prev := Parallelism()
		SetParallelism(1)
		second, err := RunScale(cfg)
		SetParallelism(prev)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			a, b := first[i], second[i]
			// Wall-clock and derived throughput legitimately vary.
			a.Wall, b.Wall = 0, 0
			a.EventsPerSec, b.EventsPerSec = 0, 0
			if a != b {
				t.Errorf("seed %d row %d differs between parallel and sequential runs:\n  %+v\n  %+v", seed, i, a, b)
			}
		}
	}
}

// TestScaleValidate exercises the config validator's rejections.
func TestScaleValidate(t *testing.T) {
	bad := []func(*ScaleConfig){
		func(c *ScaleConfig) { c.Sizes = nil },
		func(c *ScaleConfig) { c.Sizes = []int{1} },
		func(c *ScaleConfig) { c.Fanout = 0 },
		func(c *ScaleConfig) { c.Regions = 0 },
		func(c *ScaleConfig) { c.Period = 0 },
		func(c *ScaleConfig) { c.WarmupRounds = -1 },
		func(c *ScaleConfig) { c.ProximityWeight = 0.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultScaleConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config %+v", i, cfg)
		}
	}
	if err := DefaultScaleConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	if _, err := RunScale(ScaleConfig{}); err == nil {
		t.Error("RunScale accepted the zero config")
	}
}

// TestRenderScale smoke-checks the table renderer, including the
// never-reached-99% marker.
func TestRenderScale(t *testing.T) {
	cfg := DefaultScaleConfig()
	rows := []ScaleRow{
		{N: 1000, CoveragePct: 99.9, RoundsTo99: 4.2, BytesPerNode: 8000, CrossBytesPerNode: 6000, CrossBytesPct: 75},
		{N: 1000, Proximity: true, CoveragePct: 99.8, RoundsTo99: math.Inf(1), BytesPerNode: 7500, CrossBytesPerNode: 1500, CrossBytesPct: 20},
	}
	var sb strings.Builder
	RenderScale(&sb, cfg, rows)
	out := sb.String()
	for _, want := range []string{"uniform", "proximity", ">30", "xbytes/node"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderScale output missing %q:\n%s", want, out)
		}
	}
}

package experiments

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"adaptivegossip/internal/core"
	"adaptivegossip/internal/failure"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/membership"
	"adaptivegossip/internal/metrics"
	"adaptivegossip/internal/runtime"
	"adaptivegossip/internal/transport"
	"adaptivegossip/internal/workload"
)

// RunRuntime executes the same experiment as Run, but on the real-time
// goroutine runtime over the in-memory transport — the "prototype
// implementation" half of the paper's evaluation. All durations in cfg
// are wall-clock here, so callers scale the paper's 5-second period
// down (e.g. to 50ms) to keep runs short; the protocol depends on
// rounds, not on wall seconds.
func RunRuntime(cfg Config) (RunResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return RunResult{}, err
	}

	memOpts := []transport.MemOption{transport.WithMemSeed(uint64(cfg.Seed) + 1)}
	if cfg.LatencyMax > 0 {
		memOpts = append(memOpts, transport.WithMemLatency(cfg.LatencyMin, cfg.LatencyMax))
	}
	if cfg.Loss > 0 {
		memOpts = append(memOpts, transport.WithMemLoss(cfg.Loss))
	}
	net, err := transport.NewMemNetwork(memOpts...)
	if err != nil {
		return RunResult{}, err
	}
	defer net.Close()

	names := make([]gossip.NodeID, cfg.N)
	for i := range names {
		names[i] = gossip.NodeID(fmt.Sprintf("n%03d", i))
	}
	registry := membership.NewRegistry(names...)
	tracker, err := metrics.NewDeliveryTracker(names)
	if err != nil {
		return RunResult{}, err
	}
	epoch := time.Now()
	allowed := metrics.NewGaugeMeter(epoch, cfg.Bucket)

	gp := gossip.Params{
		Fanout:      cfg.Fanout,
		Period:      cfg.Period,
		MaxEvents:   cfg.Buffer,
		MaxEventIDs: cfg.IDCacheMult * cfg.Buffer,
		MaxAge:      cfg.MaxAge,
	}
	runners := make([]*runtime.Runner, cfg.N)
	for i := range runners {
		name := names[i]
		// Like the simulation driver: with PerNodeViews each node owns
		// its membership so detector verdicts evict per-observer;
		// otherwise all nodes share the omniscient registry.
		ownReg := registry
		if cfg.PerNodeViews {
			ownReg = membership.NewRegistry(names...)
		}
		var onMembership failure.OnChangeFunc
		if cfg.FailureDetection && cfg.PerNodeViews {
			reg := ownReg
			onMembership = func(id gossip.NodeID, status gossip.MemberStatus) {
				switch status {
				case gossip.MemberConfirmed:
					reg.Remove(id)
				case gossip.MemberAlive:
					reg.Add(id)
				}
			}
		}
		node, err := core.NewAdaptiveNode(core.NodeConfig{
			ID:           name,
			Gossip:       gp,
			Adaptive:     cfg.Adaptive,
			Core:         cfg.Core,
			Recovery:     cfg.recoveryParams(),
			Failure:      cfg.failureParams(),
			OnMembership: onMembership,
			Peers:        ownReg,
			RNG:          rand.New(rand.NewPCG(uint64(cfg.Seed), uint64(i)+1)),
			Deliver: func(ev gossip.Event) {
				tracker.DeliverHop(ev.ID, name, time.Now(), ev.Age)
			},
			Start: epoch,
		})
		if err != nil {
			return RunResult{}, err
		}
		ep, err := net.Endpoint(name)
		if err != nil {
			return RunResult{}, err
		}
		r, err := runtime.NewRunner(runtime.Config{
			Node:      node,
			Transport: ep,
			Period:    cfg.Period,
			PhaseSeed: uint64(cfg.Seed)*1_000_003 + uint64(i) + 1,
		})
		if err != nil {
			return RunResult{}, err
		}
		runners[i] = r
	}
	for _, r := range runners {
		r.Start()
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()

	// Offered load.
	perSender := cfg.OfferedRate / float64(cfg.Senders)
	senders := make([]*workload.TimedSender, 0, cfg.Senders)
	for i := 0; i < cfg.Senders; i++ {
		r := runners[i]
		s, err := workload.StartTimedSender(workload.SenderConfig{
			Rate:        perSender,
			PayloadSize: cfg.PayloadSize,
			Poisson:     cfg.Poisson,
		}, func(payload []byte) bool {
			admitted := false
			r.Do(func(n *core.AdaptiveNode) {
				ev, ok := n.Publish(payload, time.Now())
				if ok {
					tracker.Broadcast(ev.ID, time.Now())
					admitted = true
				}
			})
			return admitted
		}, uint64(cfg.Seed)*7_777_777+uint64(i)+1)
		if err != nil {
			return RunResult{}, err
		}
		senders = append(senders, s)
	}
	defer func() {
		for _, s := range senders {
			s.Stop()
		}
	}()

	stopAux := make(chan struct{})
	var aux sync.WaitGroup

	// Allowed-rate sampler.
	if cfg.Adaptive {
		aux.Add(1)
		go func() {
			defer aux.Done()
			ticker := time.NewTicker(cfg.Bucket)
			defer ticker.Stop()
			for {
				select {
				case <-stopAux:
					return
				case <-ticker.C:
					now := time.Now()
					for i := 0; i < cfg.Senders; i++ {
						allowed.Observe(now, runners[i].Snapshot().AllowedRate)
					}
				}
			}
		}()
	}

	// Resize schedule.
	if len(cfg.Resizes) > 0 {
		resizes := append([]workload.Resize(nil), cfg.Resizes...)
		sort.Slice(resizes, func(i, j int) bool { return resizes[i].At < resizes[j].At })
		aux.Add(1)
		go func() {
			defer aux.Done()
			for _, r := range resizes {
				wait := time.Until(epoch.Add(r.At))
				if wait > 0 {
					select {
					case <-stopAux:
						return
					case <-time.After(wait):
					}
				}
				for _, idx := range r.Nodes {
					// Ignore errors from stopped runners during teardown.
					_ = runners[idx].SetBufferCapacity(r.Capacity)
				}
			}
		}()
	}

	captureDropped := func() (ageSum, dropped uint64) {
		for _, r := range runners {
			st := r.Snapshot().Gossip
			ageSum += st.DroppedAgeSum
			dropped += st.DroppedCapacity
		}
		return
	}

	time.Sleep(cfg.Warmup)
	from := time.Now()
	startAgeSum, startDropped := captureDropped()
	time.Sleep(cfg.Duration)
	to := time.Now()
	endAgeSum, endDropped := captureDropped()
	time.Sleep(cfg.Drain)

	close(stopAux)
	aux.Wait()
	for _, s := range senders {
		s.Stop()
	}

	res := RunResult{
		Config:      cfg,
		OfferedRate: cfg.OfferedRate,
		Summary:     tracker.Results(from, to, metrics.DefaultAtomicityThreshold),
	}
	secs := to.Sub(from).Seconds()
	res.InputRate = float64(res.Summary.Messages) / secs
	res.OutputRate = res.InputRate * res.Summary.MeanReceiversPct / 100
	res.AtomicRate = res.InputRate * res.Summary.AtomicityPct / 100
	if d := endDropped - startDropped; d > 0 {
		res.AvgDroppedAge = float64(endAgeSum-startAgeSum) / float64(d)
		res.DroppedEvents = d
	}
	end := time.Now()
	if cfg.Adaptive {
		if mean, ok := allowed.MeanWindow(from, to); ok {
			res.AllowedRate = mean * float64(cfg.Senders)
		}
		res.AllowedSeries = scaleGauge(allowed.Series(epoch, end), float64(cfg.Senders))
		res.MinBuffFinal = runners[0].Snapshot().MinBuff
		for _, r := range runners[1:] {
			if mb := r.Snapshot().MinBuff; mb < res.MinBuffFinal {
				res.MinBuffFinal = mb
			}
		}
	}
	if cfg.Recovery {
		for _, r := range runners {
			res.Recovery.Add(r.Snapshot().Recovery)
		}
	}
	if cfg.FailureDetection {
		for _, r := range runners {
			res.Failure.Add(r.Snapshot().Failure)
		}
	}
	res.AtomicitySeries = tracker.Series(epoch, end, cfg.Bucket, metrics.DefaultAtomicityThreshold)
	res.Latency = tracker.LatencySnapshot()
	res.Hops = tracker.HopsSnapshot()
	return res, nil
}

// RunFigure9Runtime replays the dynamic-buffer scenario on the
// goroutine runtime with all durations divided by scale and all rates
// multiplied by it, preserving the round structure (e.g. scale=100
// turns the 450s/5s-period run into 4.5s/50ms).
func RunFigure9Runtime(cfg Figure9Config, scale float64) (Figure9Result, error) {
	if scale <= 0 {
		scale = 1
	}
	shrink := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) / scale)
	}
	scaled := cfg
	scaled.Base.Period = shrink(cfg.Base.Period)
	scaled.Base.Bucket = shrink(orDuration(cfg.Base.Bucket, cfg.Base.Period))
	scaled.Base.OfferedRate = cfg.Base.OfferedRate * scale
	scaled.ChangeAt1 = shrink(cfg.ChangeAt1)
	scaled.ChangeAt2 = shrink(cfg.ChangeAt2)
	scaled.Total = shrink(cfg.Total)

	adCfg := scaled.runConfig(true)
	adCfg.Core = DefaultExperimentCore(adCfg.OfferedRate / float64(orAll(adCfg.Senders, adCfg.N)))
	ad, err := RunRuntime(adCfg)
	if err != nil {
		return Figure9Result{}, fmt.Errorf("figure 9 runtime adaptive: %w", err)
	}
	lp, err := RunRuntime(scaled.runConfig(false))
	if err != nil {
		return Figure9Result{}, fmt.Errorf("figure 9 runtime lpbcast: %w", err)
	}
	// Rescale the result back to paper time for rendering: rates ÷
	// scale, durations × scale.
	res := assembleFigure9(scaled, ad, lp)
	res.Config = cfg
	for i := range res.Points {
		res.Points[i].Start = time.Duration(float64(res.Points[i].Start) * scale)
		res.Points[i].AllowedRate /= scale
		if cfg.IdealFor != nil {
			res.Points[i].IdealRate = cfg.IdealFor(cfg.bufferAt(res.Points[i].Start))
		} else {
			res.Points[i].IdealRate = 0
		}
	}
	res.Bucket = time.Duration(float64(res.Bucket) * scale)
	return res, nil
}

func orDuration(d, fallback time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return fallback
}

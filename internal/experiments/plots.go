package experiments

import (
	"io"

	"adaptivegossip/internal/plot"
)

// Terminal plots of the reproduced figures (`gossipsim -plot`): the
// same series as the Render tables, shaped like the paper's plots.

// PlotFigure2 draws reliability vs input rate.
func PlotFigure2(w io.Writer, rows []Figure2Row) error {
	atomic := plot.Series{Name: "msgs >95% (%)"}
	for _, r := range rows {
		atomic.Points = append(atomic.Points, plot.Point{X: r.Rate, Y: r.AtomicityPct})
	}
	return plot.Render(w, plot.Config{
		Title:  "Figure 2 — reliability vs input rate",
		XLabel: "input rate (msg/s)", YLabel: "%", YMin: 0, YMax: 100,
	}, atomic)
}

// PlotFigure4 draws the maximum rate line.
func PlotFigure4(w io.Writer, rows []Figure4Row) error {
	max := plot.Series{Name: "max rate (msg/s)"}
	for _, r := range rows {
		max.Points = append(max.Points, plot.Point{X: float64(r.Buffer), Y: r.MaxRate})
	}
	return plot.Render(w, plot.Config{
		Title:  "Figure 4 — maximum input rate vs buffer size",
		XLabel: "buffer (msg)", YLabel: "msg/s",
	}, max)
}

// PlotFigure6 draws offered, allowed and maximum rates.
func PlotFigure6(w io.Writer, rows []Figure6Row) error {
	offered := plot.Series{Name: "offered"}
	allowed := plot.Series{Name: "allowed"}
	maximum := plot.Series{Name: "maximum"}
	for _, r := range rows {
		x := float64(r.Buffer)
		offered.Points = append(offered.Points, plot.Point{X: x, Y: r.Offered})
		allowed.Points = append(allowed.Points, plot.Point{X: x, Y: r.Allowed})
		maximum.Points = append(maximum.Points, plot.Point{X: x, Y: r.Maximum})
	}
	return plot.Render(w, plot.Config{
		Title:  "Figure 6 — ideal and adaptive rates",
		XLabel: "buffer (msg)", YLabel: "msg/s",
	}, offered, allowed, maximum)
}

// PlotFigure8 draws atomicity of both algorithms.
func PlotFigure8(w io.Writer, rows []Figure8Row) error {
	lp := plot.Series{Name: "lpbcast"}
	ad := plot.Series{Name: "adaptive"}
	for _, r := range rows {
		x := float64(r.Buffer)
		lp.Points = append(lp.Points, plot.Point{X: x, Y: r.LpAtomicity})
		ad.Points = append(ad.Points, plot.Point{X: x, Y: r.AdAtomicity})
	}
	return plot.Render(w, plot.Config{
		Title:  "Figure 8(b) — atomically delivered messages",
		XLabel: "buffer (msg)", YLabel: "%", YMin: 0, YMax: 100,
	}, lp, ad)
}

// PlotFigure9 draws the allowed-vs-ideal rate series and the atomicity
// series of the dynamic scenario.
func PlotFigure9(w io.Writer, r Figure9Result) error {
	allowed := plot.Series{Name: "allowed"}
	ideal := plot.Series{Name: "ideal"}
	atomicAd := plot.Series{Name: "adaptive"}
	atomicLp := plot.Series{Name: "lpbcast"}
	for _, p := range r.Points {
		x := p.Start.Seconds()
		if p.AllowedRate > 0 {
			allowed.Points = append(allowed.Points, plot.Point{X: x, Y: p.AllowedRate})
		}
		if p.IdealRate > 0 {
			ideal.Points = append(ideal.Points, plot.Point{X: x, Y: p.IdealRate})
		}
		if p.Messages > 0 {
			atomicAd.Points = append(atomicAd.Points, plot.Point{X: x, Y: p.AtomicityAdaptive})
			atomicLp.Points = append(atomicLp.Points, plot.Point{X: x, Y: p.AtomicityLpbcast})
		}
	}
	rate := []plot.Series{allowed}
	if len(ideal.Points) > 0 {
		rate = append(rate, ideal)
	}
	if err := plot.Render(w, plot.Config{
		Title:  "Figure 9(a) — allowed rate over time",
		XLabel: "time (s)", YLabel: "msg/s",
	}, rate...); err != nil {
		return err
	}
	return plot.Render(w, plot.Config{
		Title:  "Figure 9(b) — atomicity over time",
		XLabel: "time (s)", YLabel: "%", YMin: 0, YMax: 100,
	}, atomicAd, atomicLp)
}

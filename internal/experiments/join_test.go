package experiments

import (
	"testing"
	"time"

	"adaptivegossip/internal/workload"
)

// TestRunJoinScheduleValidation rejects out-of-range join indexes.
func TestRunJoinScheduleValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Joins = []workload.Join{{At: 0, Nodes: []int{99}}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("bad join index accepted")
	}
	cfg.Joins = []workload.Join{{At: -time.Second, Nodes: []int{0}}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative join offset accepted")
	}
}

// TestRunLateJoinersIntegrate: nodes joining mid-run start receiving
// broadcasts; messages born after the join reach the full group.
func TestRunLateJoinersIntegrate(t *testing.T) {
	cfg := smallConfig()
	cfg.Warmup = 100 * time.Second // measure only after the join settles
	cfg.Duration = 100 * time.Second
	cfg.Joins = []workload.Join{{At: 40 * time.Second, Nodes: []int{17, 18, 19}}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After the join, coverage includes the newcomers: near-complete.
	if res.Summary.MeanReceiversPct < 97 {
		t.Fatalf("mean receivers %.1f%% after join, want ≥97%%", res.Summary.MeanReceiversPct)
	}
	if res.Summary.AtomicityPct < 85 {
		t.Fatalf("atomicity %.1f%% after join", res.Summary.AtomicityPct)
	}
}

// TestRunJoinOfConstrainedNodeThrottles is the inverse of the crash
// recovery test: a tiny-buffered node joining mid-run must pull the
// group's allowance down once its capacity circulates in the headers.
func TestRunJoinOfConstrainedNodeThrottles(t *testing.T) {
	cfg := smallConfig()
	cfg.Adaptive = true
	cfg.OfferedRate = 20
	cfg.Warmup = 0
	cfg.Duration = 240 * time.Second
	// Node 19 has a tiny buffer and joins at t=120s.
	cfg.Resizes = []workload.Resize{{At: 0, Nodes: []int{19}, Capacity: 5}}
	cfg.Joins = []workload.Join{{At: 120 * time.Second, Nodes: []int{19}}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bucket := res.Config.Bucket
	before, okB := meanAllowedBetween(res, 60*time.Second, 120*time.Second, bucket)
	after, okA := meanAllowedBetween(res, 180*time.Second, 240*time.Second, bucket)
	if !okB || !okA {
		t.Fatalf("allowed series incomplete: %v %v", okB, okA)
	}
	if after >= before*0.7 {
		t.Fatalf("allowance did not adapt to the constrained joiner: %.2f → %.2f", before, after)
	}
	if res.MinBuffFinal != 5 {
		t.Fatalf("minBuff final %d, want the joiner's 5", res.MinBuffFinal)
	}
}

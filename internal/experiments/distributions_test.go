package experiments

import (
	"strings"
	"testing"

	"adaptivegossip/internal/observe"
)

func TestSummarize(t *testing.T) {
	var h observe.Histogram
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000, 1000, 5000} {
		h.Observe(v)
	}
	s := Summarize(h.Snapshot())
	if s.Count != 8 {
		t.Fatalf("count %d, want 8", s.Count)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles out of order: p50=%.1f p95=%.1f p99=%.1f", s.P50, s.P95, s.P99)
	}
	if s.Mean != (0+1+2+3+100+1000+1000+5000)/8.0 {
		t.Fatalf("mean %.2f", s.Mean)
	}
	var total uint64
	for _, b := range s.Buckets {
		if b.Count == 0 {
			t.Fatal("empty bucket included")
		}
		if b.Low >= b.High {
			t.Fatalf("bucket bounds [%d,%d)", b.Low, b.High)
		}
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}

	empty := Summarize(observe.HistogramSnapshot{})
	if empty.Count != 0 || empty.P99 != 0 || len(empty.Buckets) != 0 {
		t.Fatalf("empty snapshot summary not zero: %+v", empty)
	}
}

func TestRenderDistributionsEmptyIsSilent(t *testing.T) {
	var sb strings.Builder
	renderDistributions(&sb, "x", observe.HistogramSnapshot{}, observe.HistogramSnapshot{})
	if sb.Len() != 0 {
		t.Fatalf("empty distributions rendered: %q", sb.String())
	}
}

package experiments

import (
	"fmt"
	"io"
	"testing"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/transport"
)

// WirecostConfig parameterizes the wire-cost sweep: how much one
// gossip round costs the sender in bytes and allocations as the fanout
// grows. The paper's protocol addresses one read-only message to F
// targets per round; with the encode-once fast path the serialization
// cost should be independent of F.
type WirecostConfig struct {
	// Fanouts are the sweep points (number of targets per round).
	Fanouts []int
	// Events is the number of events carried by the round message.
	Events int
	// Payload is the payload size of each event in bytes.
	Payload int
	// Rounds is the number of measured rounds per sweep point.
	Rounds int
}

// DefaultWirecostConfig mirrors a loaded gossip round: a message-buffer
// snapshot of 30 events of 200 bytes, the regime of the paper's
// Figure 4 experiments.
func DefaultWirecostConfig() WirecostConfig {
	return WirecostConfig{
		Fanouts: []int{1, 2, 4, 8, 16, 32},
		Events:  30,
		Payload: 200,
		Rounds:  200,
	}
}

// WirecostRow is one fanout point of the sweep. It compares the
// encode-once SendMany path against the per-peer-encode baseline (the
// allocation axis) and the three wire generations against each other
// (the bytes axis): legacy row-wise v4 frames, columnar
// delta-encoded v5 frames, and v5 with flate payload compression.
type WirecostRow struct {
	Fanout int
	// BytesPerRound is the v5 columnar wire cost of one round — the
	// format the default codec speaks.
	BytesPerRound float64
	// V4BytesPerRound is the same round encoded row-wise as wire v4:
	// every event repeats its origin and carries fixed-width seq/age.
	V4BytesPerRound float64
	// CompressedBytesPerRound is the same round as v5 with the flate
	// compressor on the event section.
	CompressedBytesPerRound float64
	// Allocations per round, sender side (v5 path).
	EncodeOnceAllocs float64
	PerPeerAllocs    float64
}

// AllocRatio reports how many times cheaper (in allocations) the
// encode-once path is; per-peer-allocs / encode-once-allocs, with the
// zero-alloc case reported against one allocation.
func (r WirecostRow) AllocRatio() float64 {
	den := r.EncodeOnceAllocs
	if den < 1 {
		den = 1
	}
	return r.PerPeerAllocs / den
}

// CompressionRatio reports how many times fewer bytes one round costs
// as compressed v5 compared to the v4 baseline.
func (r WirecostRow) CompressionRatio() float64 {
	den := r.CompressedBytesPerRound
	if den < 1 {
		den = 1
	}
	return r.V4BytesPerRound / den
}

// RunWirecost measures per-round send cost versus fanout over real
// loopback UDP sockets. The receiver sockets are bound but never read —
// the measurement isolates the sender's encode+write work, which is the
// hot path the encode-once fanout optimizes. Three sender sockets carry
// the same round: one per wire arm (v4, v5, v5+flate), so the byte
// columns come from real datagram writes, not size arithmetic.
func RunWirecost(cfg WirecostConfig) ([]WirecostRow, error) {
	if len(cfg.Fanouts) == 0 || cfg.Events < 0 || cfg.Payload < 0 || cfg.Rounds < 1 {
		return nil, fmt.Errorf("wirecost: invalid config %+v", cfg)
	}
	maxFanout := 0
	for _, f := range cfg.Fanouts {
		if f < 1 {
			return nil, fmt.Errorf("wirecost: fanout %d must be at least 1", f)
		}
		if f > maxFanout {
			maxFanout = f
		}
	}

	sender, err := transport.NewUDPTransport("wirecost-sender", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer sender.Close()
	v4Codec := transport.DefaultCodec()
	v4Codec.WireVersion = 4
	senderV4, err := transport.NewUDPTransport("wirecost-sender", "127.0.0.1:0",
		transport.WithUDPCodec(v4Codec))
	if err != nil {
		return nil, err
	}
	defer senderV4.Close()
	senderComp, err := transport.NewUDPTransport("wirecost-sender", "127.0.0.1:0",
		transport.WithUDPCompression(transport.NewFlateCompressor()))
	if err != nil {
		return nil, err
	}
	defer senderComp.Close()

	targets := make([]gossip.NodeID, 0, maxFanout)
	for i := 0; i < maxFanout; i++ {
		id := gossip.NodeID(fmt.Sprintf("wirecost-peer-%d", i))
		ep, err := transport.NewUDPTransport(id, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer ep.Close()
		for _, s := range []*transport.UDPTransport{sender, senderV4, senderComp} {
			if err := s.Register(id, ep.Addr().String()); err != nil {
				return nil, err
			}
		}
		targets = append(targets, id)
	}

	msg := wirecostMessage(cfg.Events, cfg.Payload)
	// bytesPerRound drives one arm's sender for the configured rounds
	// and reads the cost off its wire counter.
	bytesPerRound := func(s *transport.UDPTransport, tos []gossip.NodeID) (float64, error) {
		before := s.Stats().SentBytes
		for r := 0; r < cfg.Rounds; r++ {
			if _, err := s.SendMany(tos, msg); err != nil {
				return 0, err
			}
		}
		return float64(s.Stats().SentBytes-before) / float64(cfg.Rounds), nil
	}
	rows := make([]WirecostRow, 0, len(cfg.Fanouts))
	for _, fanout := range cfg.Fanouts {
		tos := targets[:fanout]
		before := sender.Stats()
		encodeOnce := testing.AllocsPerRun(cfg.Rounds, func() {
			if _, err := sender.SendMany(tos, msg); err != nil {
				panic(err)
			}
		})
		after := sender.Stats()
		// AllocsPerRun invokes the round once extra as warmup.
		v5Bytes := float64(after.SentBytes-before.SentBytes) / float64(cfg.Rounds+1)
		v4Bytes, err := bytesPerRound(senderV4, tos)
		if err != nil {
			return nil, err
		}
		compBytes, err := bytesPerRound(senderComp, tos)
		if err != nil {
			return nil, err
		}
		// Baseline: one Send per target — each call re-encodes the
		// identical message, the pre-SendMany wire path.
		perPeer := testing.AllocsPerRun(cfg.Rounds, func() {
			for _, to := range tos {
				if err := sender.Send(to, msg); err != nil {
					panic(err)
				}
			}
		})
		rows = append(rows, WirecostRow{
			Fanout:                  fanout,
			BytesPerRound:           v5Bytes,
			V4BytesPerRound:         v4Bytes,
			CompressedBytesPerRound: compBytes,
			EncodeOnceAllocs:        encodeOnce,
			PerPeerAllocs:           perPeer,
		})
	}
	return rows, nil
}

// wirecostMessage builds a representative round message: a buffer
// snapshot of events from one origin, ages spread across the window.
func wirecostMessage(events, payload int) *gossip.Message {
	msg := &gossip.Message{
		Kind:  gossip.KindGossip,
		From:  "wirecost-sender",
		Round: 42,
	}
	for i := 0; i < events; i++ {
		body := make([]byte, payload)
		for j := range body {
			body[j] = byte(i + j)
		}
		msg.AppendEvent(gossip.Event{
			ID:      gossip.EventID{Origin: "wirecost-sender", Seq: uint64(i)},
			Age:     i % 10,
			Payload: body,
		})
	}
	return msg
}

// RenderWirecost prints the sweep table.
func RenderWirecost(w io.Writer, cfg WirecostConfig, rows []WirecostRow) {
	fmt.Fprintf(w, "# Wirecost — per-round send cost vs fanout (loopback UDP, %d events × %d B)\n",
		cfg.Events, cfg.Payload)
	fmt.Fprintln(w, "# fanout  v4-bytes/rnd  v5-bytes/rnd  v5+flate/rnd  v4/flate  allocs/round(encode-once)  allocs/round(per-peer)  ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d  %12.0f  %12.0f  %12.0f  %7.1fx  %25.1f  %22.1f  %5.1fx\n",
			r.Fanout, r.V4BytesPerRound, r.BytesPerRound, r.CompressedBytesPerRound,
			r.CompressionRatio(), r.EncodeOnceAllocs, r.PerPeerAllocs, r.AllocRatio())
	}
}

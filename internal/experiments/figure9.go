package experiments

import (
	"fmt"
	"io"
	"time"

	"adaptivegossip/internal/workload"
)

// Figure9Config describes the paper's dynamic-buffer scenario (§4,
// "Adaptation to Dynamic Buffer Size"): the system starts uncongested,
// a fraction of nodes shrink their buffers at ChangeAt1, then partially
// recover at ChangeAt2.
type Figure9Config struct {
	// Base supplies group size, fanout, period, load, seeds. Warmup and
	// Duration are overridden: the whole Total window is measured.
	Base Config
	// InitialBuffer, ReducedBuffer, RecoveredBuffer are the three
	// capacities (paper: 90 → 45 → 60).
	InitialBuffer   int
	ReducedBuffer   int
	RecoveredBuffer int
	// Fraction of nodes affected (paper: 20%).
	Fraction float64
	// ChangeAt1, ChangeAt2 are the resize instants (paper: ≈150s and
	// ≈300s on a 0–450s time axis).
	ChangeAt1 time.Duration
	ChangeAt2 time.Duration
	// Total is the experiment length.
	Total time.Duration
	// IdealFor maps a buffer capacity to the ideal maximum rate (the
	// dotted lines of Fig. 9a). Supply Figure4Fit(fig4Rows) or nil to
	// omit the ideal series.
	IdealFor func(buffer int) float64
}

// DefaultFigure9Config reproduces the paper's scenario on top of base.
func DefaultFigure9Config(base Config) Figure9Config {
	base.OfferedRate = 20
	return Figure9Config{
		Base:            base,
		InitialBuffer:   90,
		ReducedBuffer:   45,
		RecoveredBuffer: 60,
		Fraction:        0.2,
		ChangeAt1:       150 * time.Second,
		ChangeAt2:       300 * time.Second,
		Total:           450 * time.Second,
	}
}

// Figure4Fit builds an IdealFor function by linear interpolation over
// Figure 4 rows (extrapolating with the nearest slope outside the
// measured range).
func Figure4Fit(rows []Figure4Row) func(int) float64 {
	if len(rows) == 0 {
		return nil
	}
	return func(buffer int) float64 {
		// rows are produced in ascending buffer order.
		if buffer <= rows[0].Buffer {
			return rows[0].MaxRate * float64(buffer) / float64(rows[0].Buffer)
		}
		for i := 1; i < len(rows); i++ {
			if buffer <= rows[i].Buffer {
				lo, hi := rows[i-1], rows[i]
				t := float64(buffer-lo.Buffer) / float64(hi.Buffer-lo.Buffer)
				return lo.MaxRate + t*(hi.MaxRate-lo.MaxRate)
			}
		}
		last := rows[len(rows)-1]
		return last.MaxRate * float64(buffer) / float64(last.Buffer)
	}
}

// Figure9Point is one bucket of the dynamic scenario's time series.
type Figure9Point struct {
	Start time.Duration // offset from run start
	// AllowedRate is the aggregate allowed rate (adaptive run).
	AllowedRate float64
	// IdealRate is the per-configuration maximum (0 if no IdealFor).
	IdealRate float64
	// AtomicityAdaptive / AtomicityLpbcast: % of messages born in this
	// bucket delivered to >95% of members.
	AtomicityAdaptive float64
	AtomicityLpbcast  float64
	// Messages born in the bucket (adaptive run).
	Messages int
}

// Figure9Result is the full dynamic-scenario output.
type Figure9Result struct {
	Config   Figure9Config
	Bucket   time.Duration
	Points   []Figure9Point
	Adaptive RunResult
	Baseline RunResult
}

// resizeSchedule builds the workload schedule for the scenario.
func (c Figure9Config) resizeSchedule() []workload.Resize {
	affected := workload.FirstFraction(c.Base.N, c.Fraction)
	return []workload.Resize{
		{At: c.ChangeAt1, Nodes: affected, Capacity: c.ReducedBuffer},
		{At: c.ChangeAt2, Nodes: affected, Capacity: c.RecoveredBuffer},
	}
}

func (c Figure9Config) runConfig(adaptive bool) Config {
	cfg := c.Base
	cfg.Buffer = c.InitialBuffer
	cfg.Adaptive = adaptive
	cfg.Warmup = 0
	cfg.Duration = c.Total
	cfg.Resizes = c.resizeSchedule()
	if adaptive {
		cfg.Core = DefaultExperimentCore(cfg.OfferedRate / float64(orAll(cfg.Senders, cfg.N)))
	}
	return cfg
}

// bufferAt returns the constrained-minimum capacity at offset t.
func (c Figure9Config) bufferAt(t time.Duration) int {
	switch {
	case t >= c.ChangeAt2:
		return c.RecoveredBuffer
	case t >= c.ChangeAt1:
		return c.ReducedBuffer
	default:
		return c.InitialBuffer
	}
}

// RunFigure9Sim runs the dynamic scenario on the discrete-event
// simulator, once adaptive and once with the baseline (the two arms
// fan out on the package worker pool), and assembles the Fig. 9(a)+(b)
// series.
func RunFigure9Sim(cfg Figure9Config) (Figure9Result, error) {
	ad, lp, err := runPair(
		func() (RunResult, error) {
			res, err := Run(cfg.runConfig(true))
			if err != nil {
				return RunResult{}, fmt.Errorf("figure 9 adaptive: %w", err)
			}
			return res, nil
		},
		func() (RunResult, error) {
			res, err := Run(cfg.runConfig(false))
			if err != nil {
				return RunResult{}, fmt.Errorf("figure 9 lpbcast: %w", err)
			}
			return res, nil
		})
	if err != nil {
		return Figure9Result{}, err
	}
	return assembleFigure9(cfg, ad, lp), nil
}

func assembleFigure9(cfg Figure9Config, ad, lp RunResult) Figure9Result {
	bucket := ad.Config.Bucket
	if bucket <= 0 {
		bucket = cfg.Base.Period
	}
	n := len(ad.AtomicitySeries)
	if len(lp.AtomicitySeries) < n {
		n = len(lp.AtomicitySeries)
	}
	points := make([]Figure9Point, 0, n)
	for i := 0; i < n; i++ {
		start := time.Duration(i) * bucket
		if start >= cfg.Total {
			break // exclude the drain tail: its messages are cut off
		}
		p := Figure9Point{
			Start:             start,
			AtomicityAdaptive: ad.AtomicitySeries[i].AtomicityPct,
			AtomicityLpbcast:  lp.AtomicitySeries[i].AtomicityPct,
			Messages:          ad.AtomicitySeries[i].Messages,
		}
		if i < len(ad.AllowedSeries) && ad.AllowedSeries[i].N > 0 {
			p.AllowedRate = ad.AllowedSeries[i].Mean
		}
		if cfg.IdealFor != nil {
			p.IdealRate = cfg.IdealFor(cfg.bufferAt(start))
		}
		points = append(points, p)
	}
	return Figure9Result{Config: cfg, Bucket: bucket, Points: points, Adaptive: ad, Baseline: lp}
}

// PhaseSummary aggregates a Figure9Result over one configuration phase.
type PhaseSummary struct {
	Name              string
	From, To          time.Duration
	MeanAllowed       float64
	IdealRate         float64
	AtomicityAdaptive float64
	AtomicityLpbcast  float64
}

// Phases summarizes the three configuration regimes, skipping the
// settle buckets right after each change (the paper observes ≈60s of
// stabilization).
func (r Figure9Result) Phases(settle time.Duration) []PhaseSummary {
	cfg := r.Config
	spans := []struct {
		name     string
		from, to time.Duration
	}{
		{fmt.Sprintf("buffer=%d", cfg.InitialBuffer), settle, cfg.ChangeAt1},
		{fmt.Sprintf("buffer=%d", cfg.ReducedBuffer), cfg.ChangeAt1 + settle, cfg.ChangeAt2},
		{fmt.Sprintf("buffer=%d", cfg.RecoveredBuffer), cfg.ChangeAt2 + settle, cfg.Total},
	}
	out := make([]PhaseSummary, 0, 3)
	for _, span := range spans {
		s := PhaseSummary{Name: span.name, From: span.from, To: span.to}
		if cfg.IdealFor != nil {
			s.IdealRate = cfg.IdealFor(cfg.bufferAt(span.from))
		}
		var nAllowed, nAtomA, nAtomL int
		for _, p := range r.Points {
			if p.Start < span.from || p.Start >= span.to {
				continue
			}
			if p.AllowedRate > 0 {
				s.MeanAllowed += p.AllowedRate
				nAllowed++
			}
			if p.Messages > 0 {
				s.AtomicityAdaptive += p.AtomicityAdaptive
				nAtomA++
				s.AtomicityLpbcast += p.AtomicityLpbcast
				nAtomL++
			}
		}
		if nAllowed > 0 {
			s.MeanAllowed /= float64(nAllowed)
		}
		if nAtomA > 0 {
			s.AtomicityAdaptive /= float64(nAtomA)
		}
		if nAtomL > 0 {
			s.AtomicityLpbcast /= float64(nAtomL)
		}
		out = append(out, s)
	}
	return out
}

// RenderFigure9 prints the time series and the per-phase summary.
func RenderFigure9(w io.Writer, r Figure9Result) {
	fmt.Fprintln(w, "# Figure 9 — Dynamic buffer size")
	fmt.Fprintf(w, "# schedule: buffer %d → %d @ %v → %d @ %v (%.0f%% of nodes), offered %.1f msg/s\n",
		r.Config.InitialBuffer, r.Config.ReducedBuffer, r.Config.ChangeAt1,
		r.Config.RecoveredBuffer, r.Config.ChangeAt2,
		100*r.Config.Fraction, r.Config.Base.OfferedRate)
	fmt.Fprintln(w, "# t(s)  allowed(msg/s)  ideal(msg/s)  atomic-adaptive(%)  atomic-lpbcast(%)  msgs")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%6.0f  %14.2f  %12.2f  %18.1f  %17.1f  %4d\n",
			p.Start.Seconds(), p.AllowedRate, p.IdealRate,
			p.AtomicityAdaptive, p.AtomicityLpbcast, p.Messages)
	}
	fmt.Fprintln(w, "# phase summary (settle 60s excluded)")
	for _, s := range r.Phases(60 * time.Second) {
		fmt.Fprintf(w, "# %-12s allowed=%6.2f ideal=%6.2f atomic(ad)=%5.1f%% atomic(lp)=%5.1f%%\n",
			s.Name, s.MeanAllowed, s.IdealRate, s.AtomicityAdaptive, s.AtomicityLpbcast)
	}
	renderDistributions(w, "adaptive", r.Adaptive.Latency, r.Adaptive.Hops)
	renderDistributions(w, "lpbcast", r.Baseline.Latency, r.Baseline.Hops)
}

package experiments

import (
	"testing"
	"time"
)

// recoveryTestBase is a reduced-scale config for the loss sweep: small
// enough to run in seconds, stressed enough (via DefaultRecoveryConfig)
// that push gossip visibly loses events under iid loss.
func recoveryTestBase() Config {
	cfg := DefaultConfig()
	cfg.N = 40
	cfg.OfferedRate = 20
	cfg.Warmup = 100 * time.Second
	cfg.Duration = 200 * time.Second
	cfg.Seed = 7
	return DefaultRecoveryConfig(cfg)
}

// TestRecoveryImprovesDeliveryUnderLoss is the subsystem's acceptance
// gate: at every simulated loss rate the recovery-on delivery ratio
// must dominate recovery-off, strictly at ≥10% loss, deterministically
// under the seeded sim RNG.
func TestRecoveryImprovesDeliveryUnderLoss(t *testing.T) {
	losses := []float64{0.05, 0.10, 0.20}
	rows, err := RunRecovery(recoveryTestBase(), losses, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("loss %.0f%%: coverage off %.2f%% on %.2f%%, atomicity off %.1f%% on %.1f%%, recovered %d, overhead %.2f%%",
			100*r.Loss, r.OffCoveragePct, r.OnCoveragePct, r.OffAtomicityPct, r.OnAtomicityPct,
			r.EventsRecovered, r.OverheadPct)
		if r.OnCoveragePct < r.OffCoveragePct {
			t.Errorf("loss %.0f%%: recovery-on coverage %.2f%% below recovery-off %.2f%%",
				100*r.Loss, r.OnCoveragePct, r.OffCoveragePct)
		}
		if r.Loss >= 0.10 {
			if r.OnCoveragePct <= r.OffCoveragePct {
				t.Errorf("loss %.0f%%: recovery-on coverage %.2f%% not strictly above recovery-off %.2f%%",
					100*r.Loss, r.OnCoveragePct, r.OffCoveragePct)
			}
			if r.EventsRecovered == 0 {
				t.Errorf("loss %.0f%%: no events recovered", 100*r.Loss)
			}
		}
	}
}

// TestRecoveryExperimentDeterministic replays one sweep point and
// expects bit-identical results — the discrete-event sim plus the
// engine's ordered iteration must be reproducible.
func TestRecoveryExperimentDeterministic(t *testing.T) {
	run := func() RecoveryRow {
		rows, err := RunRecovery(recoveryTestBase(), []float64{0.10}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return rows[0]
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("recovery experiment not deterministic:\n  first  %+v\n  second %+v", a, b)
	}
}

package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The sweep engine fans independent, deterministically-seeded
// simulation runs across a bounded worker pool. Every parameter point
// and seed replication writes its result into its own input-order slot,
// and all aggregation walks those slots sequentially afterwards, so a
// parallel sweep is bit-identical to the sequential one — parallelism
// only changes wall-clock time, never output.

var (
	parMu sync.RWMutex
	// parallelism is the maximum number of simulation runs in flight at
	// once (the caller's goroutine plus parallelism-1 pool workers).
	parallelism = runtime.GOMAXPROCS(0)
	// workSlots tokens gate the pool workers. Nested sweeps (a figure
	// over buffers whose points each average seeds) share the same
	// tokens: whoever asks first gets the free cores, everyone else
	// degrades to inline execution, so total concurrency stays bounded
	// and nesting cannot deadlock.
	workSlots = newSlots(runtime.GOMAXPROCS(0))
)

func newSlots(n int) chan struct{} {
	if n <= 1 {
		return nil
	}
	return make(chan struct{}, n-1)
}

// SetParallelism bounds the number of concurrently executing
// experiment runs. Values below 1 mean 1 (fully sequential). The
// default is GOMAXPROCS. It only affects sweeps started afterwards.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parMu.Lock()
	parallelism = n
	workSlots = newSlots(n)
	parMu.Unlock()
}

// Parallelism reports the current worker-pool bound.
func Parallelism() int {
	parMu.RLock()
	defer parMu.RUnlock()
	return parallelism
}

// forEach runs fn(0..n-1) with the caller participating as one worker
// and up to the free pool-slot count of extra workers, all pulling
// indices from a shared queue — so a worker finishing early immediately
// picks up the next index instead of idling behind a slow sibling.
// Each iteration owns its own output slot (closured by fn), so
// completion order does not matter. Once any iteration fails, queued
// indices are skipped (fail-fast, like the sequential loop's early
// return); the returned error is the lowest-index failure among the
// iterations that ran.
func forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	parMu.RLock()
	slots := workSlots
	parMu.RUnlock()
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	worker := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n || failed.Load() {
				return
			}
			if err := fn(i); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}
	}
	// Recruit extra workers while free slots and unclaimed indices
	// remain; the caller always works too, so a nil pool (parallelism
	// 1) degrades to the plain sequential loop.
	var wg sync.WaitGroup
	if slots != nil {
	recruit:
		for extra := 0; extra < n-1; extra++ {
			select {
			case slots <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-slots }()
					worker()
				}()
			default:
				break recruit
			}
		}
	}
	worker()
	wg.Wait()
	return firstError(errs)
}

// runPair fans an independent two-arm measurement (a baseline/treated
// pair, an off/on pair) out on the worker pool and returns both
// results. It is the shared shape of the paired sweeps (figures 7/8,
// figure 9, recovery, churn).
func runPair(a, b func() (RunResult, error)) (RunResult, RunResult, error) {
	var resA, resB RunResult
	err := forEach(2, func(arm int) error {
		var err error
		if arm == 0 {
			resA, err = a()
		} else {
			resB, err = b()
		}
		return err
	})
	return resA, resB, err
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

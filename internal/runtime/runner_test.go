package runtime

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"adaptivegossip/internal/core"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/membership"
	"adaptivegossip/internal/transport"
)

func testCluster(t *testing.T, n int, adaptive bool, period time.Duration) ([]*Runner, *transport.MemNetwork) {
	t.Helper()
	net, err := transport.NewMemNetwork(WithClusterSeed())
	if err != nil {
		t.Fatal(err)
	}
	names := make([]gossip.NodeID, n)
	for i := range names {
		names[i] = gossip.NodeID(fmt.Sprintf("n%02d", i))
	}
	reg := membership.NewRegistry(names...)
	runners := make([]*Runner, n)
	for i := range runners {
		gp := gossip.Params{Fanout: 3, Period: period, MaxEvents: 30, MaxAge: 8}
		cp := core.DefaultParams()
		cp.InitialRate = 20
		node, err := core.NewAdaptiveNode(core.NodeConfig{
			ID:       names[i],
			Gossip:   gp,
			Adaptive: adaptive,
			Core:     cp,
			Peers:    reg,
			RNG:      rand.New(rand.NewPCG(uint64(i), 42)),
			Start:    time.Now(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ep, err := net.Endpoint(names[i])
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(Config{Node: node, Transport: ep, Period: period})
		if err != nil {
			t.Fatal(err)
		}
		runners[i] = r
	}
	t.Cleanup(func() {
		for _, r := range runners {
			r.Stop()
		}
		net.Close()
	})
	return runners, net
}

// WithClusterSeed keeps the fabric deterministic where possible.
func WithClusterSeed() transport.MemOption { return transport.WithMemSeed(1234) }

func TestNewRunnerValidation(t *testing.T) {
	net, _ := transport.NewMemNetwork()
	defer net.Close()
	ep, _ := net.Endpoint("a")
	reg := membership.NewRegistry("a", "b")
	node, err := core.NewAdaptiveNode(core.NodeConfig{
		ID:     "a",
		Gossip: gossip.Params{Fanout: 1, Period: time.Second, MaxEvents: 4, MaxAge: 5},
		Peers:  reg,
		RNG:    rand.New(rand.NewPCG(1, 2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(Config{Node: nil, Transport: ep, Period: time.Second}); err == nil {
		t.Fatal("nil node accepted")
	}
	if _, err := NewRunner(Config{Node: node, Transport: nil, Period: time.Second}); err == nil {
		t.Fatal("nil transport accepted")
	}
	if _, err := NewRunner(Config{Node: node, Transport: ep, Period: 0}); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestRunnerDisseminates(t *testing.T) {
	runners, _ := testCluster(t, 8, false, 25*time.Millisecond)
	for _, r := range runners {
		r.Start()
	}
	if !runners[0].Publish([]byte("hello")) {
		t.Fatal("publish rejected on baseline node")
	}
	// Wait for dissemination: every node should deliver the event.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, r := range runners {
			if r.Snapshot().Gossip.Delivered < 1 {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, r := range runners {
		t.Logf("node %d: %+v", i, r.Snapshot().Gossip)
	}
	t.Fatal("event did not reach every node")
}

func TestRunnerStopIsIdempotentAndBeforeStart(t *testing.T) {
	runners, _ := testCluster(t, 2, false, 50*time.Millisecond)
	r := runners[0]
	r.Stop() // before Start: no hang
	r.Stop()
	// Do on a never-started runner returns false.
	if ok := r.Do(func(*core.AdaptiveNode) {}); ok {
		t.Fatal("Do on stopped runner returned true")
	}
	r2 := runners[1]
	r2.Start()
	r2.Stop()
	r2.Stop()
	if ok := r2.Publish(nil); ok {
		t.Fatal("publish after stop succeeded")
	}
}

func TestRunnerSnapshotAndCapacity(t *testing.T) {
	runners, _ := testCluster(t, 2, true, 30*time.Millisecond)
	r := runners[0]
	r.Start()
	snap := r.Snapshot()
	if snap.BufferCap != 30 {
		t.Fatalf("snapshot %+v", snap)
	}
	if err := r.SetBufferCapacity(12); err != nil {
		t.Fatal(err)
	}
	if got := r.Snapshot().BufferCap; got != 12 {
		t.Fatalf("capacity = %d after resize", got)
	}
	if got := r.Snapshot().MinBuff; got != 12 {
		t.Fatalf("minbuff estimate = %d after resize", got)
	}
	if err := r.SetBufferCapacity(-1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestRunnerTicksHappen(t *testing.T) {
	runners, _ := testCluster(t, 3, false, 20*time.Millisecond)
	for _, r := range runners {
		r.Start()
	}
	time.Sleep(300 * time.Millisecond)
	for i, r := range runners {
		if r.Stats().Ticks == 0 {
			t.Fatalf("runner %d never ticked", i)
		}
	}
}

func TestRunnerAdaptiveHeadersFlow(t *testing.T) {
	runners, _ := testCluster(t, 6, true, 20*time.Millisecond)
	for _, r := range runners {
		r.Start()
	}
	// Shrink one node's buffer; the estimate must propagate to others.
	if err := runners[3].SetBufferCapacity(7); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		reached := 0
		for _, r := range runners {
			if r.Snapshot().MinBuff == 7 {
				reached++
			}
		}
		if reached == len(runners) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, r := range runners {
		t.Logf("node %d minbuff=%d", i, r.Snapshot().MinBuff)
	}
	t.Fatal("minBuff estimate did not propagate to all runners")
}

func TestRunnerPublishThrottlesWhenAdaptive(t *testing.T) {
	runners, _ := testCluster(t, 2, true, 30*time.Millisecond)
	r := runners[0]
	r.Start()
	admitted := 0
	for i := 0; i < 50; i++ {
		if r.Publish(nil) {
			admitted++
		}
	}
	if admitted == 0 || admitted == 50 {
		t.Fatalf("admitted %d of 50, want partial admission (bucket-limited)", admitted)
	}
	snap := r.Snapshot()
	if snap.Adaptive.Published != uint64(admitted) {
		t.Fatalf("snapshot %+v vs admitted %d", snap.Adaptive, admitted)
	}
}

// externalAsyncTransport models a third-party Endpoint written against
// the pre-scratch contract: it retains every sent *Message for later
// inspection, as an asynchronous queue-and-drain transport would. It
// deliberately implements neither ManySender nor ScratchSafe.
type externalAsyncTransport struct {
	mu       sync.Mutex
	retained []*gossip.Message
	rounds   []uint64
	events   []int
}

func (f *externalAsyncTransport) LocalID() gossip.NodeID { return "ext" }

func (f *externalAsyncTransport) Send(to gossip.NodeID, msg *gossip.Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.retained = append(f.retained, msg)
	f.rounds = append(f.rounds, msg.Round)
	f.events = append(f.events, len(msg.Events))
	return nil
}

func (f *externalAsyncTransport) SetHandler(transport.Handler) {}
func (f *externalAsyncTransport) Close() error                 { return nil }

// TestRunnerCopiesForExternalTransports pins the scratch-lifetime
// safety net: a transport that is not marked transport.ScratchSafe
// receives copies of the round message, so messages it retains across
// rounds are never rewritten by the node's next Tick.
func TestRunnerCopiesForExternalTransports(t *testing.T) {
	reg := membership.NewRegistry("ext", "peer")
	node, err := core.NewAdaptiveNode(core.NodeConfig{
		ID:     "ext",
		Gossip: gossip.Params{Fanout: 2, Period: 5 * time.Millisecond, MaxEvents: 30, MaxAge: 8},
		Peers:  reg,
		RNG:    rand.New(rand.NewPCG(7, 7)),
		Start:  time.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &externalAsyncTransport{}
	r, err := NewRunner(Config{Node: node, Transport: tr, Period: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()
	if !r.Publish([]byte("retained payload")) {
		t.Fatal("publish rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr.mu.Lock()
		n := len(tr.retained)
		tr.mu.Unlock()
		if n >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d sends observed", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.Stop()

	tr.mu.Lock()
	defer tr.mu.Unlock()
	distinct := make(map[*gossip.Message]bool)
	for i, msg := range tr.retained {
		distinct[msg] = true
		// Retention check: the message must still read exactly as it did
		// at send time — a runner handing out the scratch pointer would
		// have rewritten Round and Events on the next tick.
		if msg.Round != tr.rounds[i] {
			t.Fatalf("retained message %d mutated: Round %d, was %d at send time",
				i, msg.Round, tr.rounds[i])
		}
		if len(msg.Events) != tr.events[i] {
			t.Fatalf("retained message %d mutated: %d events, was %d at send time",
				i, len(msg.Events), tr.events[i])
		}
	}
	// Distinct rounds must arrive as distinct Message values.
	roundsSeen := make(map[uint64]bool)
	for _, rd := range tr.rounds {
		roundsSeen[rd] = true
	}
	if len(distinct) < len(roundsSeen) {
		t.Fatalf("%d distinct messages for %d distinct rounds — scratch pointer leaked", len(distinct), len(roundsSeen))
	}
}

// Package runtime drives protocol nodes in real time: one goroutine per
// node owns the (single-threaded) state machine, fed by a gossip
// ticker, the transport's inbox and a command queue. This is the
// "prototype implementation" half of the paper's evaluation — the same
// state machine the simulator drives, under real concurrency, timers
// and a real wire.
package runtime

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"adaptivegossip/internal/core"
	"adaptivegossip/internal/failure"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/health"
	"adaptivegossip/internal/observe"
	"adaptivegossip/internal/recovery"
	"adaptivegossip/internal/transport"
)

// DefaultInboxSize bounds the queue between the transport's delivery
// goroutines and the node loop. Overflow drops messages — acceptable
// for gossip, which tolerates loss by design — and is counted.
const DefaultInboxSize = 256

// Config assembles a Runner.
type Config struct {
	// Node is the protocol state machine the runner owns. The caller
	// must not touch it after Start; use Do for serialized access.
	Node *core.AdaptiveNode
	// Transport carries gossip to and from peers. The runner installs
	// its handler.
	Transport transport.Transport
	// Period is the gossip round interval T.
	Period time.Duration
	// InboxSize overrides DefaultInboxSize when positive.
	InboxSize int
	// PhaseSeed randomizes the initial tick phase in [0, Period) so a
	// cluster started at once does not tick in lockstep. Zero seeds
	// from the node id.
	PhaseSeed uint64
	// Metrics, when non-nil, receives wall-clock tick and receive
	// processing durations (nanoseconds). May be shared across runners.
	Metrics *observe.RunnerMetrics
}

// Stats counts runner activity.
type Stats struct {
	Ticks         uint64
	InboxDropped  uint64
	SendErrors    uint64
	MessagesMoved uint64
}

// Runner drives one node. Create with NewRunner, then Start; Stop waits
// for the loop to exit.
type Runner struct {
	node    *core.AdaptiveNode
	tr      transport.Transport
	period  time.Duration
	phase   time.Duration
	metrics *observe.RunnerMetrics // nil = off

	inbox chan *gossip.Message
	cmds  chan func(*core.AdaptiveNode)
	stop  chan struct{}
	done  chan struct{}

	// sender amortizes the per-round grouping scratch (only the loop
	// goroutine touches it).
	sender transport.GroupSender

	startOnce sync.Once
	stopOnce  sync.Once
	started   atomic.Bool

	ticks        atomic.Uint64
	inboxDropped atomic.Uint64
	sendErrors   atomic.Uint64
	moved        atomic.Uint64
}

// NewRunner wires a runner and installs the transport handler. The
// runner does not tick until Start.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Node == nil {
		return nil, fmt.Errorf("runtime: node must not be nil")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("runtime: transport must not be nil")
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("runtime: period must be positive, got %v", cfg.Period)
	}
	size := cfg.InboxSize
	if size <= 0 {
		size = DefaultInboxSize
	}
	seed := cfg.PhaseSeed
	if seed == 0 {
		for _, b := range []byte(cfg.Node.ID()) {
			seed = seed*131 + uint64(b)
		}
		seed++
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xA5A5A5A5))
	r := &Runner{
		node:    cfg.Node,
		tr:      cfg.Transport,
		period:  cfg.Period,
		phase:   time.Duration(rng.Int64N(int64(cfg.Period))),
		metrics: cfg.Metrics,
		inbox:   make(chan *gossip.Message, size),
		cmds:    make(chan func(*core.AdaptiveNode)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	r.tr.SetHandler(r.enqueue)
	return r, nil
}

// ID returns the owned node's identifier.
func (r *Runner) ID() gossip.NodeID { return r.node.ID() }

func (r *Runner) enqueue(msg *gossip.Message) {
	select {
	case r.inbox <- msg:
	default:
		r.inboxDropped.Add(1)
	}
}

// Start launches the node loop. Calling Start twice is a no-op.
func (r *Runner) Start() {
	r.startOnce.Do(func() {
		r.started.Store(true)
		go r.loop()
	})
}

// Stop terminates the loop and waits for it to exit. Safe to call
// multiple times and before Start.
func (r *Runner) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	if r.started.Load() {
		<-r.done
	}
}

func (r *Runner) loop() {
	defer close(r.done)
	// Random initial phase desynchronizes cluster-wide ticks. Inbox and
	// command traffic is serviced while waiting — it must not cut the
	// phase short, or a cluster started under load ticks in lockstep.
	phase := time.NewTimer(r.phase)
	defer phase.Stop()
waitPhase:
	for {
		select {
		case <-phase.C:
			break waitPhase
		case <-r.stop:
			return
		case msg := <-r.inbox:
			r.receive(msg)
		case cmd := <-r.cmds:
			cmd(r.node)
		}
	}

	ticker := time.NewTicker(r.period)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.tick()
		case msg := <-r.inbox:
			r.receive(msg)
		case cmd := <-r.cmds:
			cmd(r.node)
		}
	}
}

//gossip:hotpath
func (r *Runner) tick() {
	r.ticks.Add(1)
	now := time.Now()
	r.send(r.node.Tick(now))
	if r.metrics != nil {
		r.metrics.TickNanos.ObserveInt(int64(time.Since(now)))
	}
}

// receive processes one inbound message and transmits any recovery
// control traffic (retransmission responses) it triggered.
//
//gossip:hotpath
func (r *Runner) receive(msg *gossip.Message) {
	now := time.Now()
	r.send(r.node.Receive(msg, now))
	if r.metrics != nil {
		r.metrics.ReceiveNanos.ObserveInt(int64(time.Since(now)))
	}
}

// send transmits a batch of outgoings through the runner's GroupSender:
// the round's shared gossip message collapses into one SendMany so
// encode-once transports pay the serialization cost once per round,
// and non-ScratchSafe transports get copies, decoupling them from the
// node's scratch reuse. The grouping scratch is reused across rounds.
func (r *Runner) send(outs []gossip.Outgoing) {
	sent, failed := r.sender.SendGroups(r.tr, outs)
	r.moved.Add(uint64(sent))
	r.sendErrors.Add(uint64(failed))
}

// Do runs fn inside the node loop, serialized with ticks and receives,
// and waits for it to finish. It reports false if the runner stopped
// before fn could run.
func (r *Runner) Do(fn func(*core.AdaptiveNode)) bool {
	if !r.started.Load() {
		return false
	}
	doneCh := make(chan struct{})
	wrapped := func(n *core.AdaptiveNode) {
		fn(n)
		close(doneCh)
	}
	select {
	case r.cmds <- wrapped:
		<-doneCh
		return true
	case <-r.done:
		return false
	}
}

// Publish submits a broadcast through the node's admission control. It
// reports whether the message was admitted (false also when the runner
// is stopped).
func (r *Runner) Publish(payload []byte) bool {
	admitted := false
	r.Do(func(n *core.AdaptiveNode) {
		_, admitted = n.Publish(payload, time.Now())
	})
	return admitted
}

// SetBufferCapacity resizes the node's buffer from outside the loop.
func (r *Runner) SetBufferCapacity(capacity int) error {
	err := fmt.Errorf("runtime: runner stopped")
	ok := r.Do(func(n *core.AdaptiveNode) {
		err = n.SetBufferCapacity(capacity)
	})
	if !ok {
		return fmt.Errorf("runtime: runner stopped")
	}
	return err
}

// NodeSnapshot is a point-in-time view of the node's adaptation state.
type NodeSnapshot struct {
	AllowedRate float64
	AvgAge      float64
	MinBuff     int
	BufferLen   int
	BufferCap   int
	Gossip      gossip.NodeStats
	Adaptive    core.AdaptiveStats
	Recovery    recovery.Stats
	Failure     failure.Stats
	Health      health.Stats
}

// Snapshot captures the node state, serialized with the loop. The zero
// snapshot is returned after Stop.
func (r *Runner) Snapshot() NodeSnapshot {
	var snap NodeSnapshot
	r.Do(func(n *core.AdaptiveNode) {
		snap = NodeSnapshot{
			AllowedRate: n.AllowedRate(),
			AvgAge:      n.AvgAge(),
			MinBuff:     n.MinBuffEstimate(),
			BufferLen:   n.BufferLen(),
			BufferCap:   n.BufferCapacity(),
			Gossip:      n.GossipStats(),
			Adaptive:    n.Stats(),
			Recovery:    n.RecoveryStats(),
			Failure:     n.FailureStats(),
			Health:      n.HealthStats(),
		}
	})
	return snap
}

// ClusterHealth returns the node's converged view of the cluster's
// health digests, serialized with the loop (nil when dissemination is
// disabled or the runner has stopped).
func (r *Runner) ClusterHealth() []health.MemberHealth {
	var view []health.MemberHealth
	r.Do(func(n *core.AdaptiveNode) { view = n.ClusterHealth() })
	return view
}

// ClusterDeliverHops returns the cluster-merged delivery-hop histogram,
// serialized with the loop (zero when dissemination is disabled or the
// runner has stopped).
func (r *Runner) ClusterDeliverHops() observe.HistogramSnapshot {
	var snap observe.HistogramSnapshot
	r.Do(func(n *core.AdaptiveNode) { snap = n.ClusterDeliverHops() })
	return snap
}

// Stats returns the runner's counters.
func (r *Runner) Stats() Stats {
	return Stats{
		Ticks:         r.ticks.Load(),
		InboxDropped:  r.inboxDropped.Load(),
		SendErrors:    r.sendErrors.Load(),
		MessagesMoved: r.moved.Load(),
	}
}

package core

import (
	"fmt"

	"adaptivegossip/internal/gossip"
)

// Adaptor packages the three Figure 5 mechanisms as a gossip.Extension:
// OnTick stamps the adaptation header onto outgoing gossip, OnReceive
// folds received headers into the minBuff estimate and feeds the
// congestion estimator from the post-receive buffer state, and
// OnEvicted maintains the estimator's lost set. The rate decision
// itself runs from AdaptiveNode.Tick, which owns time.
//
// Adaptor is not safe for concurrent use.
type Adaptor struct {
	params Params
	min    *MinBuffEstimator
	kmin   *KMinEstimator // non-nil when params.MinBuffRank > 1
	cong   *CongestionEstimator

	samplesAtTick uint64 // congestion samples seen as of the last tick
	driftRounds   uint64

	// scalarHdr is reused scratch for promoting a rank-1 scalar header
	// to a single-entry κ-min observation without a per-receive slice.
	scalarHdr [1]MinEntry
}

// NewAdaptor builds the estimator stack for a node with the given id
// and local buffer capacity.
func NewAdaptor(id gossip.NodeID, params Params, localCap int) (*Adaptor, error) {
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid params: %w", err)
	}
	cong, err := NewCongestionEstimator(params.Alpha, params.TargetAge)
	if err != nil {
		return nil, err
	}
	a := &Adaptor{params: params, cong: cong}
	if params.MinBuffRank > 1 {
		a.kmin, err = NewKMinEstimator(id, params.MinBuffRank, params.MinBuffFloor,
			params.Window, params.SamplePeriodRounds, localCap)
	} else {
		a.min, err = NewMinBuffEstimator(params.Window, params.SamplePeriodRounds, localCap)
	}
	if err != nil {
		return nil, err
	}
	return a, nil
}

// MinBuff returns the working estimate of the relevant smallest buffer
// in the group.
func (a *Adaptor) MinBuff() int {
	if a.kmin != nil {
		return a.kmin.Estimate()
	}
	return a.min.Estimate()
}

// AvgAge returns the congestion estimate.
func (a *Adaptor) AvgAge() float64 { return a.cong.AvgAge() }

// SamplePeriod returns the current period s.
func (a *Adaptor) SamplePeriod() uint64 {
	if a.kmin != nil {
		return a.kmin.Period()
	}
	return a.min.Period()
}

// DriftRounds counts rounds in which the frozen-signal drift applied.
func (a *Adaptor) DriftRounds() uint64 { return a.driftRounds }

// CongestionSamples counts events that have fed avgAge.
func (a *Adaptor) CongestionSamples() uint64 { return a.cong.Samples() }

// SetLocalCapacity tracks a local buffer resize.
func (a *Adaptor) SetLocalCapacity(capacity int) error {
	if a.kmin != nil {
		return a.kmin.SetLocalCapacity(capacity)
	}
	return a.min.SetLocalCapacity(capacity)
}

// OnTick advances the sample-period clock and stamps the adaptation
// header (Figure 5(a), "add information to gossip message").
//
//gossip:hotpath
func (a *Adaptor) OnTick(n *gossip.Node, out *Message) {
	out.Adaptive = true
	if a.kmin != nil {
		a.kmin.OnRound()
		period, entries := a.kmin.Header()
		out.SamplePeriod = period
		//gossip:scratchok out is the node's reused round message, encoded or cloned before the next tick refreshes the header
		out.KMin = entries
		// The scalar header remains meaningful for rank-1 receivers.
		if len(entries) > 0 {
			out.MinBuff = entries[0].Cap
		} else {
			out.MinBuff = a.kmin.localCap
		}
		return
	}
	a.min.OnRound()
	out.SamplePeriod, out.MinBuff = a.min.Header()
}

// Message aliases gossip.Message for hook signatures.
type Message = gossip.Message

// OnReceive folds the incoming header into the minBuff estimate and
// updates the congestion estimate from the post-receive buffer state
// (Figure 5(a) "compute new known minimum" + Figure 5(b)).
//
//gossip:hotpath
func (a *Adaptor) OnReceive(n *gossip.Node, in *Message) {
	if in.Adaptive {
		if a.kmin != nil {
			if len(in.KMin) > 0 {
				a.kmin.Observe(in.SamplePeriod, in.KMin)
			} else {
				a.scalarHdr[0] = MinEntry{Node: in.From, Cap: in.MinBuff}
				a.kmin.Observe(in.SamplePeriod, a.scalarHdr[:])
			}
		} else {
			a.min.Observe(in.SamplePeriod, in.MinBuff)
		}
	}
	overflow := n.BufferLen() - a.cong.LostLen() - a.MinBuff()
	if overflow > 0 {
		//gossip:allocok congestion path: the scan runs only while the buffer exceeds the group-minimum estimate
		a.cong.ObserveOverflow(n.OldestUncounted(overflow, a.cong.Counted))
	}
}

// OnEvicted maintains the congestion estimate as events leave the real
// buffer. Capacity evictions are true drops at a size ≥ minBuff, so
// uncounted ones feed avgAge (the pre-GC accounting of Figure 5(b) —
// see CongestionEstimator.ObserveDrop). Age expiry and resize evictions
// only prune the lost set: expiry is the protocol's normal end of life,
// and a resize transient is already handled by the minBuff mechanism.
func (a *Adaptor) OnEvicted(n *gossip.Node, evicted []gossip.Event, reason gossip.EvictReason) {
	if reason == gossip.EvictCapacity {
		for _, ev := range evicted {
			if a.cong.Counted(ev.ID) {
				a.cong.Forget(ev.ID)
			} else {
				a.cong.ObserveDrop(ev)
			}
		}
		return
	}
	for _, ev := range evicted {
		a.cong.Forget(ev.ID)
	}
}

// onRoundEnd applies the optimistic drift when a whole round produced
// no congestion samples. Called by AdaptiveNode after each Tick.
func (a *Adaptor) onRoundEnd(maxAge int) {
	if !a.params.OptimisticDrift {
		return
	}
	if a.cong.Samples() == a.samplesAtTick {
		a.cong.Drift(float64(maxAge))
		a.driftRounds++
	}
	a.samplesAtTick = a.cong.Samples()
}

var _ gossip.Extension = (*Adaptor)(nil)

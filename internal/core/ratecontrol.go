package core

import (
	"fmt"
	"math/rand/v2"
)

// Adjustment describes a rate controller decision.
type Adjustment int

const (
	// AdjustNone: thresholds not crossed; rate unchanged.
	AdjustNone Adjustment = iota
	// AdjustDecreaseAge: avgAge at or below the low-age mark — the
	// group is congested.
	AdjustDecreaseAge
	// AdjustDecreaseUnused: the allowance is going unused (high
	// avgTokens); it shrinks toward actual usage so it cannot inflate.
	AdjustDecreaseUnused
	// AdjustIncrease: resources are free (high avgAge, fully used
	// allowance) and the randomized coin allowed an increase.
	AdjustIncrease
	// AdjustIncreaseSkipped: increase conditions held but the
	// randomization deferred it to a later round.
	AdjustIncreaseSkipped
)

// String names the adjustment.
func (a Adjustment) String() string {
	switch a {
	case AdjustNone:
		return "none"
	case AdjustDecreaseAge:
		return "decrease(age)"
	case AdjustDecreaseUnused:
		return "decrease(unused)"
	case AdjustIncrease:
		return "increase"
	case AdjustIncreaseSkipped:
		return "increase(skipped)"
	default:
		return fmt.Sprintf("Adjustment(%d)", int(a))
	}
}

// RateStats counts controller decisions.
type RateStats struct {
	DecreasesAge    uint64
	DecreasesUnused uint64
	Increases       uint64
	IncreasesSkip   uint64
}

// RateController implements the sender throttling of paper Figure 5(c).
// Each round it compares avgAge with the low/high-age marks and the
// average token-bucket occupancy with the usage marks, then adjusts the
// allowed rate multiplicatively.
//
// RateController is not safe for concurrent use.
type RateController struct {
	params Params
	rate   float64
	rng    *rand.Rand
	stats  RateStats
}

// NewRateController creates a controller starting at params.InitialRate.
func NewRateController(params Params, rng *rand.Rand) (*RateController, error) {
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid params: %w", err)
	}
	if rng == nil {
		return nil, fmt.Errorf("core: rng must not be nil")
	}
	c := &RateController{params: params, rng: rng}
	c.rate = clamp(params.InitialRate, params.MinRate, params.MaxRate)
	return c, nil
}

// Rate returns the current allowed rate in msg/s.
func (c *RateController) Rate() float64 { return c.rate }

// SetRate overrides the allowed rate (clamped). Intended for tests and
// for seeding the controller with the offered load.
func (c *RateController) SetRate(rate float64) {
	c.rate = clamp(rate, c.params.MinRate, c.params.MaxRate)
}

// Stats returns a copy of the decision counters.
func (c *RateController) Stats() RateStats { return c.stats }

// Adjust runs one round of the Figure 5(c) decision rule and returns
// what happened. maxTokens is the bucket capacity against which
// avgTokens is compared.
func (c *RateController) Adjust(avgAge, avgTokens, maxTokens float64) Adjustment {
	p := c.params

	// Decrease takes precedence: congestion or an unused allowance must
	// never be masked by a simultaneous increase condition.
	if avgAge <= p.LowAge {
		c.rate = clamp(c.rate*(1-p.DecreaseFactor), p.MinRate, p.MaxRate)
		c.stats.DecreasesAge++
		return AdjustDecreaseAge
	}
	if !p.DisableTokenCheck && avgTokens >= p.HighTokensFrac*maxTokens {
		c.rate = clamp(c.rate*(1-p.DecreaseFactor), p.MinRate, p.MaxRate)
		c.stats.DecreasesUnused++
		return AdjustDecreaseUnused
	}

	if avgAge >= p.HighAge && (p.DisableTokenCheck || avgTokens <= p.LowTokensFrac*maxTokens) {
		if c.rng.Float64() >= p.IncreaseProb {
			c.stats.IncreasesSkip++
			return AdjustIncreaseSkipped
		}
		c.rate = clamp(c.rate*(1+p.IncreaseFactor), p.MinRate, p.MaxRate)
		c.stats.Increases++
		return AdjustIncrease
	}
	return AdjustNone
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

package core

import (
	"errors"
	"fmt"
)

// Default adaptation parameters, reconstructed from paper §3.3–§3.4
// (including values garbled in the paper's text) and calibrated against
// the regenerated figures.
const (
	// DefaultCriticalAge is the measured critical age ta of our system:
	// the average age of dropped messages at the maximum rate that still
	// delivers to ≥95% of members on average, constant across buffer
	// sizes (5.39±0.03 hops measured by experiments.RunFigure4; the
	// paper reports 5.3 for its configuration).
	DefaultCriticalAge = 5.4

	DefaultSamplePeriodRounds = 6   // Ts = ta·T rounded up, in rounds
	DefaultWindow             = 2   // W
	DefaultAlpha              = 0.9 // α, EMA weight on history

	// The controller's operating marks sit slightly above the critical
	// age: ta guarantees 95% *mean* coverage, but the atomicity target
	// (each message to >95% of members) needs margin, so the neutral
	// zone [tl, th] straddles ta+0.6. Calibrated to reproduce the
	// paper's ≈87% atomicity at buffer 60.
	DefaultTargetAge = 6.0 // operating point
	DefaultLowAge    = 5.6 // tl
	DefaultHighAge   = 6.6 // th

	DefaultDecreaseFactor = 0.12 // δdec
	DefaultIncreaseFactor = 0.05 // δinc
	DefaultIncreaseProb   = 0.25 // pr
	DefaultTokenBucketMax = 2.5
	DefaultHighTokensFrac = 0.75
	DefaultLowTokensFrac  = 0.5
	DefaultMinRate        = 0.01 // msg/s floor, keeps the controller live
	DefaultMaxRate        = 1000 // msg/s ceiling
	DefaultInitialRate    = 1.0  // msg/s until the controller takes over
)

// Params configure the adaptive mechanism. Zero values are invalid for
// most fields; start from DefaultParams and override.
type Params struct {
	// SamplePeriodRounds is the sample period Ts expressed in gossip
	// rounds. The paper sets Ts to the time a minimum takes to reach
	// all members (ta gossip periods, §3.4).
	SamplePeriodRounds int
	// Window is W: the number of recent sample periods whose minima are
	// combined into the working estimate.
	Window int
	// Alpha is the weight α of history in the avgAge and avgTokens
	// moving averages.
	Alpha float64
	// TargetAge is the critical age ta: the average dropped-message age
	// observed at the maximum reliable rate (paper §2.3). Calibrate
	// with experiments.CriticalAge for a new configuration.
	TargetAge float64
	// LowAge is the low-age mark tl: avgAge at or below it signals
	// congestion and decreases the rate.
	LowAge float64
	// HighAge is the high-age mark th: avgAge at or above it allows a
	// rate increase.
	HighAge float64
	// DecreaseFactor is δdec, the multiplicative rate cut on congestion.
	DecreaseFactor float64
	// IncreaseFactor is δinc, the multiplicative rate growth when
	// resources free up.
	IncreaseFactor float64
	// IncreaseProb is pr: each round a sender eligible to increase does
	// so with this probability, desynchronizing group-wide surges.
	IncreaseProb float64
	// InitialRate is the sender's allowed rate (msg/s) before the
	// controller has observed anything.
	InitialRate float64
	// MinRate and MaxRate clamp the allowed rate (msg/s).
	MinRate float64
	MaxRate float64
	// TokenBucketMax is the bucket capacity (burst bound) of Figure 3.
	TokenBucketMax float64
	// HighTokensFrac: avgTokens at or above this fraction of the bucket
	// capacity marks the allowance as unused, forcing a decrease (the
	// inflated-allowance guard of §3.3).
	HighTokensFrac float64
	// LowTokensFrac: avgTokens at or below this fraction marks the
	// allowance as fully used, a precondition for increases.
	LowTokensFrac float64
	// OptimisticDrift controls recovery from a frozen congestion
	// signal: in rounds with no overflow samples, avgAge drifts toward
	// the age bound so an idle system does not stay throttled forever.
	OptimisticDrift bool
	// DisableTokenCheck removes the avgTokens conditions (ablation A2).
	DisableTokenCheck bool
	// MinBuffRank is κ: adapt to the κ-th smallest buffer instead of
	// the smallest (paper §6, concluding remarks). 1 is the paper's
	// base mechanism.
	MinBuffRank int
	// MinBuffFloor clamps the estimate from below so a single
	// pathological node cannot stall the whole group (paper §6). 0
	// disables the floor.
	MinBuffFloor int
}

// DefaultParams returns the configuration reconstructed from paper
// §3.4.
func DefaultParams() Params {
	return Params{
		SamplePeriodRounds: DefaultSamplePeriodRounds,
		Window:             DefaultWindow,
		Alpha:              DefaultAlpha,
		TargetAge:          DefaultTargetAge,
		LowAge:             DefaultLowAge,
		HighAge:            DefaultHighAge,
		DecreaseFactor:     DefaultDecreaseFactor,
		IncreaseFactor:     DefaultIncreaseFactor,
		IncreaseProb:       DefaultIncreaseProb,
		InitialRate:        DefaultInitialRate,
		MinRate:            DefaultMinRate,
		MaxRate:            DefaultMaxRate,
		TokenBucketMax:     DefaultTokenBucketMax,
		HighTokensFrac:     DefaultHighTokensFrac,
		LowTokensFrac:      DefaultLowTokensFrac,
		OptimisticDrift:    true,
		MinBuffRank:        1,
	}
}

// Validate reports all configuration errors.
func (p Params) Validate() error {
	var errs []error
	check := func(ok bool, format string, args ...any) {
		if !ok {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	check(p.SamplePeriodRounds > 0, "sample period must be positive rounds, got %d", p.SamplePeriodRounds)
	check(p.Window > 0, "window must be positive, got %d", p.Window)
	check(p.Alpha >= 0 && p.Alpha < 1, "alpha must be in [0,1), got %v", p.Alpha)
	check(p.TargetAge > 0, "target age must be positive, got %v", p.TargetAge)
	check(p.LowAge > 0 && p.LowAge <= p.TargetAge, "low-age mark %v must be in (0, target %v]", p.LowAge, p.TargetAge)
	check(p.HighAge >= p.TargetAge, "high-age mark %v must be at least target %v", p.HighAge, p.TargetAge)
	check(p.HighAge > p.LowAge, "high-age mark %v must exceed low-age mark %v", p.HighAge, p.LowAge)
	check(p.DecreaseFactor > 0 && p.DecreaseFactor < 1, "decrease factor must be in (0,1), got %v", p.DecreaseFactor)
	check(p.IncreaseFactor > 0, "increase factor must be positive, got %v", p.IncreaseFactor)
	check(p.IncreaseProb > 0 && p.IncreaseProb <= 1, "increase probability must be in (0,1], got %v", p.IncreaseProb)
	check(p.InitialRate > 0, "initial rate must be positive, got %v", p.InitialRate)
	check(p.MinRate > 0, "min rate must be positive, got %v", p.MinRate)
	check(p.MaxRate >= p.MinRate, "max rate %v must be at least min rate %v", p.MaxRate, p.MinRate)
	check(p.TokenBucketMax >= 1, "token bucket max must be at least 1, got %v", p.TokenBucketMax)
	check(p.HighTokensFrac > 0 && p.HighTokensFrac <= 1, "high tokens fraction must be in (0,1], got %v", p.HighTokensFrac)
	check(p.LowTokensFrac >= 0 && p.LowTokensFrac <= p.HighTokensFrac,
		"low tokens fraction %v must be in [0, high %v]", p.LowTokensFrac, p.HighTokensFrac)
	check(p.MinBuffRank >= 1, "min-buffer rank must be at least 1, got %d", p.MinBuffRank)
	check(p.MinBuffFloor >= 0, "min-buffer floor must be non-negative, got %d", p.MinBuffFloor)
	return errors.Join(errs...)
}

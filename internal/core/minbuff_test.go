package core

import "testing"

func newEst(t *testing.T, window, perRounds, localCap int) *MinBuffEstimator {
	t.Helper()
	e, err := NewMinBuffEstimator(window, perRounds, localCap)
	if err != nil {
		t.Fatalf("NewMinBuffEstimator: %v", err)
	}
	return e
}

func TestMinBuffValidation(t *testing.T) {
	cases := []struct{ w, p, c int }{
		{0, 6, 100}, {-1, 6, 100}, {2, 0, 100}, {2, 6, 0}, {2, 6, -5},
	}
	for _, tc := range cases {
		if _, err := NewMinBuffEstimator(tc.w, tc.p, tc.c); err == nil {
			t.Errorf("NewMinBuffEstimator(%d,%d,%d): want error", tc.w, tc.p, tc.c)
		}
	}
}

func TestMinBuffInitialEstimateIsLocalCapacity(t *testing.T) {
	e := newEst(t, 3, 6, 90)
	if got := e.Estimate(); got != 90 {
		t.Fatalf("estimate = %d, want 90", got)
	}
	s, mb := e.Header()
	if s != 0 || mb != 90 {
		t.Fatalf("header = (%d, %d), want (0, 90)", s, mb)
	}
}

func TestMinBuffObserveFoldsMinimum(t *testing.T) {
	e := newEst(t, 2, 6, 90)
	e.Observe(0, 45)
	if got := e.Estimate(); got != 45 {
		t.Fatalf("estimate = %d, want 45", got)
	}
	// Larger values do not raise the estimate.
	e.Observe(0, 70)
	if got := e.Estimate(); got != 45 {
		t.Fatalf("estimate = %d after larger observation, want 45", got)
	}
	// Non-positive headers are rejected defensively.
	e.Observe(0, 0)
	e.Observe(0, -3)
	if got := e.Estimate(); got != 45 {
		t.Fatalf("estimate = %d after corrupt headers, want 45", got)
	}
}

func TestMinBuffPeriodRotationExpiresOldMinima(t *testing.T) {
	e := newEst(t, 2, 3, 90) // W=2, Ts=3 rounds
	e.Observe(0, 45)
	// Advance one period: the old minimum is still inside the window.
	for i := 0; i < 3; i++ {
		e.OnRound()
	}
	if e.Period() != 1 {
		t.Fatalf("period = %d, want 1", e.Period())
	}
	if got := e.Estimate(); got != 45 {
		t.Fatalf("estimate = %d, want 45 (still in window)", got)
	}
	// Advance a second period: the 45 ages out, estimate returns to 90.
	for i := 0; i < 3; i++ {
		e.OnRound()
	}
	if got := e.Estimate(); got != 90 {
		t.Fatalf("estimate = %d, want 90 after the constrained node's value aged out", got)
	}
}

func TestMinBuffOnRoundSignalsPeriodStart(t *testing.T) {
	e := newEst(t, 2, 2, 50)
	if e.OnRound() {
		t.Fatal("period advanced after 1 of 2 rounds")
	}
	if !e.OnRound() {
		t.Fatal("period did not advance after 2 rounds")
	}
	if e.Advances() != 1 {
		t.Fatalf("advances = %d", e.Advances())
	}
}

func TestMinBuffClockSyncJumpForward(t *testing.T) {
	e := newEst(t, 3, 6, 90)
	e.Observe(0, 40)
	// A header from period 2 fast-forwards the local clock.
	e.Observe(2, 60)
	if e.Period() != 2 {
		t.Fatalf("period = %d, want 2", e.Period())
	}
	// Window covers periods 0..2: min(40, 90, 60) = 40.
	if got := e.Estimate(); got != 40 {
		t.Fatalf("estimate = %d, want 40", got)
	}
	// A jump beyond the whole window resets everything.
	e.Observe(10, 70)
	if e.Period() != 10 {
		t.Fatalf("period = %d, want 10", e.Period())
	}
	if got := e.Estimate(); got != 70 {
		t.Fatalf("estimate = %d, want 70 (fresh window)", got)
	}
}

func TestMinBuffStaleHeadersWithinWindowStillCount(t *testing.T) {
	e := newEst(t, 3, 6, 90)
	e.Observe(5, 80) // jump to period 5
	e.Observe(4, 30) // stale but within window (periods 3..5)
	if got := e.Estimate(); got != 30 {
		t.Fatalf("estimate = %d, want 30", got)
	}
	e.Observe(1, 5) // beyond the window: ignored
	if got := e.Estimate(); got != 30 {
		t.Fatalf("estimate = %d, want 30 (too-old header ignored)", got)
	}
}

func TestMinBuffSetLocalCapacity(t *testing.T) {
	e := newEst(t, 2, 4, 90)
	// Shrink: takes effect immediately in the current period.
	if err := e.SetLocalCapacity(45); err != nil {
		t.Fatal(err)
	}
	if got := e.Estimate(); got != 45 {
		t.Fatalf("estimate = %d, want 45", got)
	}
	// Growth: only affects future periods.
	if err := e.SetLocalCapacity(120); err != nil {
		t.Fatal(err)
	}
	if got := e.Estimate(); got != 45 {
		t.Fatalf("estimate = %d right after growth, want 45", got)
	}
	for i := 0; i < 8; i++ { // two full periods
		e.OnRound()
	}
	if got := e.Estimate(); got != 120 {
		t.Fatalf("estimate = %d after window rotation, want 120", got)
	}
	if err := e.SetLocalCapacity(0); err == nil {
		t.Fatal("SetLocalCapacity(0): want error")
	}
}

// TestMinBuffGroupConvergence simulates header exchange among nodes and
// checks everyone converges to the global minimum within one sample
// period of gossip, as §3.4's choice of Ts intends.
func TestMinBuffGroupConvergence(t *testing.T) {
	caps := []int{120, 90, 45, 150, 80}
	ests := make([]*MinBuffEstimator, len(caps))
	for i, c := range caps {
		ests[i] = newEst(t, 2, 6, c)
	}
	// Ring exchange: in each round every node sends its header to the
	// next two nodes. Diameter considerations: 3 rounds suffice for 5
	// nodes with fanout 2.
	for round := 0; round < 4; round++ {
		type hdr struct {
			s  uint64
			mb int
		}
		hdrs := make([]hdr, len(ests))
		for i, e := range ests {
			s, mb := e.Header()
			hdrs[i] = hdr{s, mb}
		}
		for i, e := range ests {
			e.OnRound()
			_ = e
			for d := 1; d <= 2; d++ {
				j := (i + d) % len(ests)
				ests[j].Observe(hdrs[i].s, hdrs[i].mb)
			}
		}
	}
	for i, e := range ests {
		if got := e.Estimate(); got != 45 {
			t.Fatalf("node %d estimate = %d, want global min 45", i, got)
		}
	}
}

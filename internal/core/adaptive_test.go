package core

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
)

var start = time.Unix(0, 0).UTC()

// fullPeers samples from a fixed list.
type fullPeers []gossip.NodeID

func (f fullPeers) SamplePeers(self gossip.NodeID, k int, rng *rand.Rand) []gossip.NodeID {
	out := make([]gossip.NodeID, 0, k)
	for _, p := range f {
		if p != self {
			out = append(out, p)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func nodeConfig(id gossip.NodeID, peers gossip.PeerSampler, adaptive bool) NodeConfig {
	gp := gossip.Params{Fanout: 2, Period: time.Second, MaxEvents: 10, MaxAge: 8}
	cp := DefaultParams()
	cp.InitialRate = 5
	return NodeConfig{
		ID:       id,
		Gossip:   gp,
		Adaptive: adaptive,
		Core:     cp,
		Peers:    peers,
		RNG:      rand.New(rand.NewPCG(uint64(len(id)), 77)),
		Start:    start,
	}
}

func TestNewAdaptiveNodeValidation(t *testing.T) {
	peers := fullPeers{"a", "b"}
	cfg := nodeConfig("a", peers, true)
	cfg.Core.Window = 0
	if _, err := NewAdaptiveNode(cfg); err == nil {
		t.Fatal("bad core params accepted")
	}
	cfg = nodeConfig("", peers, false)
	if _, err := NewAdaptiveNode(cfg); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestBaselineNodeAdmitsEverything(t *testing.T) {
	n, err := NewAdaptiveNode(nodeConfig("a", fullPeers{"a", "b"}, false))
	if err != nil {
		t.Fatal(err)
	}
	if n.Adaptive() {
		t.Fatal("baseline node reports adaptive")
	}
	for i := 0; i < 100; i++ {
		if _, ok := n.Publish(nil, start); !ok {
			t.Fatal("baseline throttled a publish")
		}
	}
	if n.AllowedRate() != 0 || n.AvgAge() != 0 || n.MinBuffEstimate() != 0 || n.SamplePeriod() != 0 {
		t.Fatal("baseline node leaks adaptation state")
	}
	st := n.Stats()
	if st.Published != 100 || st.Throttled != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAdaptiveNodeThrottlesAtBucketRate(t *testing.T) {
	n, err := NewAdaptiveNode(nodeConfig("a", fullPeers{"a", "b"}, true))
	if err != nil {
		t.Fatal(err)
	}
	burst := int(DefaultParams().TokenBucketMax)
	admitted := 0
	// Offer 100 messages instantaneously: only the initial burst
	// (bucket capacity) is admitted.
	for i := 0; i < 100; i++ {
		if _, ok := n.Publish(nil, start); ok {
			admitted++
		}
	}
	if admitted != burst {
		t.Fatalf("admitted %d, want bucket burst %d", admitted, burst)
	}
	// Much later the bucket has refilled, but only to its capacity.
	more := 0
	for i := 0; i < 100; i++ {
		if _, ok := n.Publish(nil, start.Add(time.Minute)); ok {
			more++
		}
	}
	if more != burst {
		t.Fatalf("admitted %d after refill, want %d", more, burst)
	}
	st := n.Stats()
	if st.Published != uint64(2*burst) || st.Throttled != uint64(200-2*burst) {
		t.Fatalf("stats %+v", st)
	}
}

func TestAdaptiveNodeHeaderStamping(t *testing.T) {
	n, err := NewAdaptiveNode(nodeConfig("a", fullPeers{"a", "b"}, true))
	if err != nil {
		t.Fatal(err)
	}
	n.Publish(nil, start)
	outs := n.Tick(start)
	if len(outs) == 0 {
		t.Fatal("no outgoing gossip")
	}
	msg := outs[0].Msg
	if !msg.Adaptive {
		t.Fatal("adaptation header missing")
	}
	if msg.MinBuff != 10 {
		t.Fatalf("header minBuff = %d, want local capacity 10", msg.MinBuff)
	}
}

func TestAdaptiveNodeMinBuffPropagation(t *testing.T) {
	peers := fullPeers{"a", "b"}
	na, _ := NewAdaptiveNode(nodeConfig("a", peers, true))
	nb, _ := NewAdaptiveNode(nodeConfig("b", peers, true))
	if err := nb.SetBufferCapacity(4); err != nil {
		t.Fatal(err)
	}
	now := start
	for round := 0; round < 3; round++ {
		now = now.Add(time.Second)
		for _, out := range nb.Tick(now) {
			if out.To == "a" {
				na.Receive(out.Msg, now)
			}
		}
	}
	if got := na.MinBuffEstimate(); got != 4 {
		t.Fatalf("a's minBuff estimate = %d, want b's capacity 4", got)
	}
}

func TestAdaptiveNodeCongestionLowersRate(t *testing.T) {
	peers := fullPeers{"a", "b"}
	n, err := NewAdaptiveNode(nodeConfig("a", peers, true))
	if err != nil {
		t.Fatal(err)
	}
	initial := n.AllowedRate()
	// Flood the node with young events from a peer claiming a tiny
	// buffer: the virtual overflow consists of young events, so avgAge
	// collapses and the controller must decrease.
	now := start
	var seq uint64
	for round := 0; round < 12; round++ {
		now = now.Add(time.Second)
		events := make([]gossip.Event, 8)
		for i := range events {
			events[i] = gossip.Event{ID: gossip.EventID{Origin: "b", Seq: seq}, Age: 1}
			seq++
		}
		n.Receive(&gossip.Message{
			From: "b", Adaptive: true, SamplePeriod: 0, MinBuff: 3, Events: events,
		}, now)
		// Keep the bucket drained so the unused-allowance guard stays
		// quiet and the age signal drives the decision.
		for {
			if _, ok := n.Publish(nil, now); !ok {
				break
			}
		}
		n.Tick(now)
	}
	if got := n.AllowedRate(); got >= initial {
		t.Fatalf("allowed rate %v did not fall below initial %v under congestion", got, initial)
	}
	if n.AvgAge() >= DefaultParams().LowAge {
		t.Fatalf("avgAge = %v, want below low mark", n.AvgAge())
	}
}

func TestAdaptiveNodeUnusedAllowanceShrinks(t *testing.T) {
	cfg := nodeConfig("a", fullPeers{"a", "b"}, true)
	cfg.Core.OptimisticDrift = true
	n, err := NewAdaptiveNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := n.AllowedRate()
	// Publish nothing: tokens pool up, avgTokens rises, rate shrinks —
	// the inflated-allowance guard of §3.3.
	now := start
	for round := 0; round < 20; round++ {
		now = now.Add(time.Second)
		n.Tick(now)
	}
	if got := n.AllowedRate(); got >= initial {
		t.Fatalf("idle sender's allowance %v did not shrink from %v", got, initial)
	}
}

func TestAdaptiveNodeOptimisticDriftRecovers(t *testing.T) {
	cfg := nodeConfig("a", fullPeers{"a", "b"}, true)
	n, err := NewAdaptiveNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Push avgAge down artificially via congested traffic, then go
	// quiet: drift must pull avgAge back up toward the age bound.
	now := start
	events := make([]gossip.Event, 12)
	for i := range events {
		events[i] = gossip.Event{ID: gossip.EventID{Origin: "b", Seq: uint64(i)}, Age: 0}
	}
	n.Receive(&gossip.Message{From: "b", Adaptive: true, MinBuff: 2, Events: events}, now)
	low := n.AvgAge()
	for round := 0; round < 30; round++ {
		now = now.Add(time.Second)
		n.Tick(now)
	}
	if got := n.AvgAge(); got <= low {
		t.Fatalf("avgAge %v did not drift up from %v in an idle system", got, low)
	}
}

func TestAdaptiveNodeResizePropagatesToEstimator(t *testing.T) {
	n, err := NewAdaptiveNode(nodeConfig("a", fullPeers{"a", "b"}, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetBufferCapacity(6); err != nil {
		t.Fatal(err)
	}
	if got := n.MinBuffEstimate(); got != 6 {
		t.Fatalf("estimate = %d, want 6", got)
	}
	if got := n.BufferCapacity(); got != 6 {
		t.Fatalf("capacity = %d", got)
	}
	if err := n.SetBufferCapacity(0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestAdaptiveNodeKMinMode(t *testing.T) {
	cfg := nodeConfig("a", fullPeers{"a", "b"}, true)
	cfg.Core.MinBuffRank = 2
	cfg.Core.MinBuffFloor = 3
	n, err := NewAdaptiveNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One tiny node must not drag the estimate down at κ=2.
	n.Receive(&gossip.Message{
		From: "tiny", Adaptive: true, MinBuff: 1,
		KMin: []MinEntry{{Node: "tiny", Cap: 1}},
	}, start)
	if got := n.MinBuffEstimate(); got != 10 {
		t.Fatalf("κ=2 estimate = %d, want local 10", got)
	}
	// Header carries KMin entries.
	outs := n.Tick(start.Add(time.Second))
	if len(outs) == 0 || len(outs[0].Msg.KMin) == 0 {
		t.Fatal("κ-mode header missing KMin entries")
	}
}

// TestAdaptiveGroupConvergesUnderOverload runs a 12-node group at an
// offered load far above capacity and checks the aggregate allowed rate
// converges below the offered load while remaining positive — the
// Figure 6 behaviour in miniature.
func TestAdaptiveGroupConvergesUnderOverload(t *testing.T) {
	const (
		n           = 12
		offeredEach = 6.0 // msg/s per node, far above capacity
		rounds      = 120
	)
	names := make([]gossip.NodeID, n)
	for i := range names {
		names[i] = gossip.NodeID(fmt.Sprintf("n%02d", i))
	}
	peers := fullPeers(names)
	nodes := make([]*AdaptiveNode, n)
	for i := range nodes {
		cfg := nodeConfig(names[i], peers, true)
		cfg.Gossip.MaxEvents = 12
		cfg.Gossip.Fanout = 3
		cfg.Core.InitialRate = offeredEach
		cfg.Core.MaxRate = offeredEach
		cfg.RNG = rand.New(rand.NewPCG(uint64(i), 1234))
		node, err := NewAdaptiveNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	now := start
	carry := make([]float64, n)
	for round := 0; round < rounds; round++ {
		now = now.Add(time.Second)
		// Offered load: each node attempts offeredEach publishes/s.
		for i, node := range nodes {
			carry[i] += offeredEach
			for carry[i] >= 1 {
				node.Publish(nil, now)
				carry[i]--
			}
		}
		// Gossip exchange.
		type envelope struct {
			to  gossip.NodeID
			msg *gossip.Message
		}
		var mail []envelope
		for _, node := range nodes {
			for _, out := range node.Tick(now) {
				mail = append(mail, envelope{out.To, out.Msg})
			}
		}
		for _, env := range mail {
			for i, name := range names {
				if name == env.to {
					nodes[i].Receive(env.msg, now)
				}
			}
		}
	}
	var aggregate float64
	for _, node := range nodes {
		aggregate += node.AllowedRate()
	}
	offered := offeredEach * n
	if aggregate >= offered*0.8 {
		t.Fatalf("aggregate allowed rate %v did not converge below offered %v", aggregate, offered)
	}
	if aggregate < 0.5 {
		t.Fatalf("aggregate allowed rate %v collapsed to the floor", aggregate)
	}
}

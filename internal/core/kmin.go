package core

import (
	"cmp"
	"fmt"
	"slices"

	"adaptivegossip/internal/gossip"
)

// MinEntry is one (node, capacity) observation carried in the gossip
// header when the κ-smallest extension is active. It aliases the wire
// type gossip.BuffCap.
type MinEntry = gossip.BuffCap

// KMinEstimator generalizes MinBuffEstimator to the κ-th smallest
// buffer in the group, the extension sketched in the paper's concluding
// remarks: adapting to the κ-th smallest (optionally clamped from below
// by a floor) prevents one pathological node from throttling the whole
// group.
//
// Because a bare minimum is idempotent but a multiset of small values
// is not, entries carry node identities and merges deduplicate per
// node, keeping the per-period state bounded at a small multiple of κ.
//
// KMinEstimator is not safe for concurrent use.
type KMinEstimator struct {
	self     gossip.NodeID
	rank     int
	floor    int
	keep     int // per-period entry bound
	window   []map[gossip.NodeID]int
	period   uint64
	localCap int
	rounds   int
	perLen   int

	// Reused scratch so the steady state allocates nothing. hdrScratch
	// backs the Header result, which rides the caller's reused round
	// message; the others never leave their method.
	hdrScratch  []MinEntry
	trimScratch []MinEntry
	merged      map[gossip.NodeID]int
	caps        []int
}

// NewKMinEstimator creates an estimator of the rank-th smallest buffer.
func NewKMinEstimator(self gossip.NodeID, rank, floor, window, samplePeriodRounds, localCap int) (*KMinEstimator, error) {
	if rank < 1 {
		return nil, fmt.Errorf("core: rank must be at least 1, got %d", rank)
	}
	if floor < 0 {
		return nil, fmt.Errorf("core: floor must be non-negative, got %d", floor)
	}
	if window <= 0 || samplePeriodRounds <= 0 || localCap <= 0 {
		return nil, fmt.Errorf("core: window, sample period and capacity must be positive (got %d, %d, %d)",
			window, samplePeriodRounds, localCap)
	}
	e := &KMinEstimator{
		self:     self,
		rank:     rank,
		floor:    floor,
		keep:     4 * rank,
		window:   make([]map[gossip.NodeID]int, window),
		localCap: localCap,
		perLen:   samplePeriodRounds,
		merged:   make(map[gossip.NodeID]int),
	}
	for i := range e.window {
		e.window[i] = map[gossip.NodeID]int{self: localCap}
	}
	return e, nil
}

// Period returns the current sample period.
func (e *KMinEstimator) Period() uint64 { return e.period }

// SetLocalCapacity tracks a local resize; shrinks apply to the current
// period immediately.
func (e *KMinEstimator) SetLocalCapacity(capacity int) error {
	if capacity <= 0 {
		return fmt.Errorf("core: local capacity must be positive, got %d", capacity)
	}
	e.localCap = capacity
	slot := e.window[int(e.period)%len(e.window)]
	if old, ok := slot[e.self]; !ok || capacity < old {
		slot[e.self] = capacity
	}
	return nil
}

func (e *KMinEstimator) advance() {
	e.period++
	e.rounds = 0
	e.resetSlot(int(e.period) % len(e.window))
}

// resetSlot reinitializes a window slot to {self: localCap}, reusing the
// slot's map so period turnover allocates nothing.
func (e *KMinEstimator) resetSlot(i int) {
	slot := e.window[i]
	clear(slot)
	slot[e.self] = e.localCap
}

// OnRound accounts one gossip round, reporting whether a new period
// started.
func (e *KMinEstimator) OnRound() bool {
	e.rounds++
	if e.rounds < e.perLen {
		return false
	}
	e.advance()
	return true
}

// Header returns the current period and the κ-smallest entries to
// piggyback. The returned slice is reused scratch: it is valid until the
// next Header call and must be copied (or encoded) before then.
//
//gossip:scratch
func (e *KMinEstimator) Header() (uint64, []MinEntry) {
	slot := e.window[int(e.period)%len(e.window)]
	entries := e.hdrScratch[:0]
	for n, c := range slot {
		entries = append(entries, MinEntry{Node: n, Cap: c})
	}
	sortEntries(entries)
	e.hdrScratch = entries
	if len(entries) > e.rank {
		entries = entries[:e.rank]
	}
	return e.period, entries
}

// sortEntries orders by capacity, then node id for determinism.
func sortEntries(entries []MinEntry) {
	slices.SortFunc(entries, func(a, b MinEntry) int {
		if a.Cap != b.Cap {
			return cmp.Compare(a.Cap, b.Cap)
		}
		return cmp.Compare(a.Node, b.Node)
	})
}

// Observe merges a received header into the local state, with the same
// period synchronization rules as MinBuffEstimator.
func (e *KMinEstimator) Observe(period uint64, entries []MinEntry) {
	w := uint64(len(e.window))
	if period > e.period {
		if period-e.period >= w {
			for i := range e.window {
				e.resetSlot(i)
			}
			e.period = period
			e.rounds = 0
		} else {
			for e.period < period {
				e.advance()
			}
		}
	} else if e.period-period >= w {
		return
	}
	slot := e.window[int(period)%len(e.window)]
	for _, ent := range entries {
		if ent.Cap <= 0 {
			continue
		}
		if old, ok := slot[ent.Node]; !ok || ent.Cap < old {
			slot[ent.Node] = ent.Cap
		}
	}
	e.trim(slot)
}

// trim bounds a period map to the keep smallest entries (self always
// retained).
func (e *KMinEstimator) trim(slot map[gossip.NodeID]int) {
	if len(slot) <= e.keep {
		return
	}
	entries := e.trimScratch[:0]
	for n, c := range slot {
		entries = append(entries, MinEntry{Node: n, Cap: c})
	}
	sortEntries(entries)
	e.trimScratch = entries
	for _, ent := range entries[e.keep:] {
		if ent.Node != e.self {
			delete(slot, ent.Node)
		}
	}
}

// Estimate returns the κ-th smallest capacity over the window (the
// largest known if fewer than κ nodes are known), clamped from below by
// the floor.
func (e *KMinEstimator) Estimate() int {
	merged := e.merged
	clear(merged)
	for _, slot := range e.window {
		for n, c := range slot {
			if old, ok := merged[n]; !ok || c < old {
				merged[n] = c
			}
		}
	}
	caps := e.caps[:0]
	for _, c := range merged {
		caps = append(caps, c)
	}
	slices.Sort(caps)
	e.caps = caps
	idx := e.rank - 1
	if idx >= len(caps) {
		idx = len(caps) - 1
	}
	est := caps[idx]
	if e.floor > 0 && est < e.floor {
		est = e.floor
	}
	return est
}

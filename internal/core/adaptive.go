package core

import (
	"fmt"
	"math/rand/v2"
	"time"

	"adaptivegossip/internal/failure"
	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/health"
	"adaptivegossip/internal/observe"
	"adaptivegossip/internal/ratelimit"
	"adaptivegossip/internal/recovery"
)

// NodeConfig assembles a complete broadcast node.
type NodeConfig struct {
	// ID is the node identifier.
	ID gossip.NodeID
	// Gossip configures the lpbcast substrate (Figure 1).
	Gossip gossip.Params
	// Adaptive enables the adaptation mechanism. When false the node is
	// plain lpbcast with an unbounded input rate — the paper's
	// comparison baseline.
	Adaptive bool
	// Core configures the adaptation mechanism (used when Adaptive).
	Core Params
	// Recovery configures the anti-entropy pull-repair subsystem; the
	// engine is built when Recovery.Enabled is set. Recovery is
	// orthogonal to Adaptive: either, both or neither may be on.
	Recovery recovery.Params
	// Failure configures the SWIM-style failure detector; the engine is
	// built when Failure.Enabled is set. Orthogonal to Adaptive and
	// Recovery.
	Failure failure.Params
	// OnMembership observes the detector's status transitions (used
	// when Failure.Enabled). Drivers typically evict confirmed members
	// from their registries and partial views here and re-admit members
	// that prove alive. Runs synchronously on the node's driver.
	OnMembership failure.OnChangeFunc
	// Health configures gossip-disseminated health digests; the engine
	// is built when Health.Enabled is set. Orthogonal to the other
	// subsystems.
	Health health.Params
	// HealthAugment, when non-nil, enriches the node's own health
	// digest with facts only the embedding layer knows (e.g. transport
	// byte counters). It runs after the core has filled the digest's
	// protocol counters and delivery-hop histogram.
	HealthAugment health.AugmentFunc
	// Links, when non-nil, is the per-peer telemetry table shared with
	// the transport; the failure detector feeds ping RTT observations
	// into it.
	Links *observe.PeerTable
	// Peers supplies gossip targets.
	Peers gossip.PeerSampler
	// RNG drives all protocol randomness; inject a seeded generator for
	// deterministic simulation.
	RNG *rand.Rand
	// Deliver receives each event exactly once (optional).
	Deliver gossip.DeliverFunc
	// Extensions are additional protocol extensions (e.g. a partial
	// view); they run after the adaptation hooks.
	Extensions []gossip.Extension
	// Metrics, when non-nil, receives the substrate's alloc-free
	// hot-path histograms (delivery hops, drop ages, round sizes). A
	// block may be shared across nodes; observations pool.
	Metrics *observe.NodeMetrics
	// Tracer, when non-nil, samples rumor lifecycles
	// (publish/first-send/receive/deliver/drop).
	Tracer observe.Tracer
	// Start is the creation instant (token bucket epoch).
	Start time.Time
}

// AdaptiveStats counts adaptation activity.
type AdaptiveStats struct {
	Published uint64 // broadcasts admitted by the token bucket
	Throttled uint64 // broadcasts rejected by the token bucket
	Rate      RateStats
	AvgTokens float64
}

// AdaptiveNode is the complete adaptive gossip broadcast node: the
// lpbcast state machine, the Figure 5 adaptation stack and the Figure 3
// token bucket. With Adaptive=false it degrades to the plain lpbcast
// baseline (no input bound), which is how the paper's comparison runs
// are configured.
//
// AdaptiveNode is not safe for concurrent use; a driver serializes
// Publish, Tick and Receive, passing the current time in.
type AdaptiveNode struct {
	node     *gossip.Node
	adaptor  *Adaptor        // nil when not adaptive
	ctrl     *RateController // nil when not adaptive
	bucket   *ratelimit.Bucket
	recovery *recovery.Engine // nil when recovery is disabled
	failure  *failure.Engine  // nil when failure detection is disabled
	health   *health.Engine   // nil when health digests are disabled
	params   Params

	avgTokens float64
	published uint64
	throttled uint64
}

// NewAdaptiveNode builds a node from cfg.
func NewAdaptiveNode(cfg NodeConfig) (*AdaptiveNode, error) {
	a := &AdaptiveNode{params: cfg.Core}
	exts := make([]gossip.Extension, 0, len(cfg.Extensions)+2)
	if cfg.Adaptive {
		adaptor, err := NewAdaptor(cfg.ID, cfg.Core, cfg.Gossip.MaxEvents)
		if err != nil {
			return nil, err
		}
		ctrl, err := NewRateController(cfg.Core, cfg.RNG)
		if err != nil {
			return nil, err
		}
		bucket, err := ratelimit.NewBucket(cfg.Core.TokenBucketMax, ctrl.Rate(), cfg.Start)
		if err != nil {
			return nil, err
		}
		a.adaptor, a.ctrl, a.bucket = adaptor, ctrl, bucket
		exts = append(exts, adaptor)
	}
	if cfg.Recovery.Enabled {
		engine, err := recovery.NewEngine(cfg.Recovery)
		if err != nil {
			return nil, err
		}
		a.recovery = engine
		exts = append(exts, engine)
	}
	if cfg.Failure.Enabled {
		engine, err := failure.NewEngine(cfg.ID, cfg.Failure, cfg.Peers, cfg.RNG)
		if err != nil {
			return nil, err
		}
		engine.SetOnChange(cfg.OnMembership)
		if cfg.Links != nil {
			engine.SetLinks(cfg.Links)
		}
		a.failure = engine
		exts = append(exts, engine)
	}
	if cfg.Health.Enabled {
		metrics, aug := cfg.Metrics, cfg.HealthAugment
		a.health = health.New(cfg.ID, cfg.Health, func(d *gossip.HealthDigest) {
			if metrics != nil {
				d.DeliverHops = metrics.DeliverHops.Snapshot()
			}
			if aug != nil {
				aug(d)
			}
		})
		exts = append(exts, a.health)
	}
	exts = append(exts, cfg.Extensions...)

	node, err := gossip.NewNode(cfg.ID, cfg.Gossip, cfg.Peers, cfg.RNG,
		gossip.WithDeliver(cfg.Deliver), gossip.WithExtensions(exts...),
		gossip.WithMetrics(cfg.Metrics), gossip.WithTracer(cfg.Tracer))
	if err != nil {
		return nil, err
	}
	a.node = node
	return a, nil
}

// ID returns the node identifier.
func (a *AdaptiveNode) ID() gossip.NodeID { return a.node.ID() }

// Gossip exposes the underlying lpbcast node (read-only use).
func (a *AdaptiveNode) Gossip() *gossip.Node { return a.node }

// Adaptive reports whether the adaptation mechanism is active.
func (a *AdaptiveNode) Adaptive() bool { return a.adaptor != nil }

// Publish attempts to broadcast payload at time now. With adaptation
// enabled, admission is gated by the token bucket (Figure 3): the
// returned bool reports whether the event was admitted. The baseline
// node admits everything.
func (a *AdaptiveNode) Publish(payload []byte, now time.Time) (gossip.Event, bool) {
	if a.bucket != nil && !a.bucket.TryTake(now) {
		a.throttled++
		return gossip.Event{}, false
	}
	a.published++
	return a.node.Broadcast(payload), true
}

// Tick runs one gossip round at time now: the rate-adaptation step of
// Figure 5(c) followed by the Figure 1 gossip emission. With recovery
// enabled, the returned slice also carries this round's anti-entropy
// pull requests; drivers transmit every entry alike.
//
//gossip:hotpath
//gossip:scratch
func (a *AdaptiveNode) Tick(now time.Time) []gossip.Outgoing {
	if a.adaptor != nil {
		// avgTokens: EMA of bucket occupancy, sampled once per round.
		alpha := a.params.Alpha
		a.avgTokens = alpha*a.avgTokens + (1-alpha)*a.bucket.Tokens(now)
		a.ctrl.Adjust(a.adaptor.AvgAge(), a.avgTokens, a.bucket.Max())
		if err := a.bucket.SetRate(a.ctrl.Rate(), now); err != nil {
			// Unreachable: the controller clamps to positive rates.
			//gossip:allocok unreachable-rate panic
			panic(fmt.Sprintf("core: %v", err))
		}
	}
	outs := a.node.Tick()
	if a.adaptor != nil {
		a.adaptor.onRoundEnd(a.node.Params().MaxAge)
	}
	if a.recovery != nil {
		outs = append(outs, a.recovery.TakeOutgoing()...)
	}
	if a.failure != nil {
		outs = append(outs, a.failure.TakeOutgoing()...)
	}
	return outs
}

// Receive processes an incoming gossip message at time now. The
// returned messages are subsystem control traffic (recovery
// retransmission responses, failure-detector acks and relays) that the
// driver must transmit; it is nil when both subsystems are disabled.
//
//gossip:hotpath
func (a *AdaptiveNode) Receive(msg *gossip.Message, now time.Time) []gossip.Outgoing {
	a.node.Receive(msg)
	var outs []gossip.Outgoing
	if a.recovery != nil {
		outs = a.recovery.TakeOutgoing()
	}
	if a.failure != nil {
		outs = append(outs, a.failure.TakeOutgoing()...)
	}
	return outs
}

// SetBufferCapacity resizes the local events buffer at runtime,
// informing the minBuff estimator (the dynamic-resource scenario of
// paper §4).
func (a *AdaptiveNode) SetBufferCapacity(capacity int) error {
	if err := a.node.SetBufferCapacity(capacity); err != nil {
		return err
	}
	if a.adaptor != nil {
		return a.adaptor.SetLocalCapacity(capacity)
	}
	return nil
}

// AllowedRate returns the sender's current allowed rate in msg/s, or
// +Inf conceptually for the baseline; baseline nodes report 0 to mean
// "unbounded".
func (a *AdaptiveNode) AllowedRate() float64 {
	if a.ctrl == nil {
		return 0
	}
	return a.ctrl.Rate()
}

// AvgAge returns the congestion estimate (0 when not adaptive).
func (a *AdaptiveNode) AvgAge() float64 {
	if a.adaptor == nil {
		return 0
	}
	return a.adaptor.AvgAge()
}

// MinBuffEstimate returns the working group-minimum buffer estimate
// (0 when not adaptive).
func (a *AdaptiveNode) MinBuffEstimate() int {
	if a.adaptor == nil {
		return 0
	}
	return a.adaptor.MinBuff()
}

// SamplePeriod returns the adaptation sample period s (0 when not
// adaptive).
func (a *AdaptiveNode) SamplePeriod() uint64 {
	if a.adaptor == nil {
		return 0
	}
	return a.adaptor.SamplePeriod()
}

// BufferLen reports the buffered event count.
func (a *AdaptiveNode) BufferLen() int { return a.node.BufferLen() }

// BufferCapacity reports the local buffer bound.
func (a *AdaptiveNode) BufferCapacity() int { return a.node.BufferCapacity() }

// GossipStats returns the substrate's counters.
func (a *AdaptiveNode) GossipStats() gossip.NodeStats { return a.node.Stats() }

// RecoveryEnabled reports whether the anti-entropy subsystem is active.
func (a *AdaptiveNode) RecoveryEnabled() bool { return a.recovery != nil }

// RecoveryStats returns the anti-entropy counters (zero when recovery
// is disabled).
func (a *AdaptiveNode) RecoveryStats() recovery.Stats {
	if a.recovery == nil {
		return recovery.Stats{}
	}
	return a.recovery.Stats()
}

// FailureEnabled reports whether the failure detector is active.
func (a *AdaptiveNode) FailureEnabled() bool { return a.failure != nil }

// FailureStats returns the detector counters (zero when failure
// detection is disabled).
func (a *AdaptiveNode) FailureStats() failure.Stats {
	if a.failure == nil {
		return failure.Stats{}
	}
	return a.failure.Stats()
}

// MemberStatus reports the detector's opinion of a member (MemberAlive
// when detection is disabled or the member is unknown).
func (a *AdaptiveNode) MemberStatus(id gossip.NodeID) gossip.MemberStatus {
	if a.failure == nil {
		return gossip.MemberAlive
	}
	return a.failure.Status(id)
}

// FailureRejoin resets the detector to freshly-restarted state: remote
// opinions are dropped and the node reannounces itself with a bumped
// incarnation. Drivers call it when a stopped process rejoins the
// group. No-op when detection is disabled.
func (a *AdaptiveNode) FailureRejoin() {
	if a.failure != nil {
		a.failure.Rejoin()
	}
}

// HealthEnabled reports whether health-digest dissemination is active.
func (a *AdaptiveNode) HealthEnabled() bool { return a.health != nil }

// HealthStats returns the digest traffic counters (zero when health
// dissemination is disabled).
func (a *AdaptiveNode) HealthStats() health.Stats {
	if a.health == nil {
		return health.Stats{}
	}
	return a.health.Stats()
}

// ClusterHealth returns the node's converged view of every member's
// health digest, sorted by node id (nil when dissemination is
// disabled).
func (a *AdaptiveNode) ClusterHealth() []health.MemberHealth {
	if a.health == nil {
		return nil
	}
	return a.health.Snapshot()
}

// ClusterDeliverHops folds the delivery-hop histograms of every known
// digest into one cluster-wide snapshot (zero when dissemination is
// disabled).
func (a *AdaptiveNode) ClusterDeliverHops() observe.HistogramSnapshot {
	if a.health == nil {
		return observe.HistogramSnapshot{}
	}
	return a.health.MergedDeliverHops()
}

// Stats returns the adaptation counters.
func (a *AdaptiveNode) Stats() AdaptiveStats {
	st := AdaptiveStats{
		Published: a.published,
		Throttled: a.throttled,
		AvgTokens: a.avgTokens,
	}
	if a.ctrl != nil {
		st.Rate = a.ctrl.Stats()
	}
	return st
}

package core

import (
	"math/rand/v2"
	"testing"
)

func ctrlParams() Params {
	p := DefaultParams()
	p.InitialRate = 10
	p.IncreaseProb = 1 // deterministic increases unless a test overrides
	return p
}

func newCtrl(t *testing.T, p Params) *RateController {
	t.Helper()
	c, err := NewRateController(p, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatalf("NewRateController: %v", err)
	}
	return c
}

func TestRateControllerValidation(t *testing.T) {
	if _, err := NewRateController(Params{}, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Fatal("zero params accepted")
	}
	if _, err := NewRateController(DefaultParams(), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	bad := DefaultParams()
	bad.LowAge = bad.HighAge + 1
	if _, err := NewRateController(bad, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestRateDecreaseOnLowAge(t *testing.T) {
	p := ctrlParams()
	c := newCtrl(t, p)
	// avgAge at the low mark: decrease by δdec.
	if got := c.Adjust(p.LowAge, 0, p.TokenBucketMax); got != AdjustDecreaseAge {
		t.Fatalf("adjustment = %v", got)
	}
	want := 10 * (1 - p.DecreaseFactor)
	if c.Rate() != want {
		t.Fatalf("rate = %v, want %v", c.Rate(), want)
	}
	if c.Stats().DecreasesAge != 1 {
		t.Fatalf("stats %+v", c.Stats())
	}
}

func TestRateDecreaseOnUnusedAllowance(t *testing.T) {
	p := ctrlParams()
	c := newCtrl(t, p)
	// avgAge healthy but tokens pooling up: the inflated-allowance guard.
	got := c.Adjust(p.TargetAge, p.HighTokensFrac*p.TokenBucketMax, p.TokenBucketMax)
	if got != AdjustDecreaseUnused {
		t.Fatalf("adjustment = %v", got)
	}
	if c.Rate() >= 10 {
		t.Fatalf("rate did not decrease: %v", c.Rate())
	}
}

func TestRateIncreaseRequiresUsedAllowance(t *testing.T) {
	p := ctrlParams()
	c := newCtrl(t, p)
	// High age but tokens half-full (above LowTokensFrac): no increase.
	mid := (p.LowTokensFrac + p.HighTokensFrac) / 2 * p.TokenBucketMax
	if got := c.Adjust(p.HighAge, mid, p.TokenBucketMax); got != AdjustNone {
		t.Fatalf("adjustment = %v, want none", got)
	}
	// Fully used allowance: increase fires.
	if got := c.Adjust(p.HighAge, 0, p.TokenBucketMax); got != AdjustIncrease {
		t.Fatalf("adjustment = %v, want increase", got)
	}
	want := 10 * (1 + p.IncreaseFactor)
	if c.Rate() != want {
		t.Fatalf("rate = %v, want %v", c.Rate(), want)
	}
}

func TestRateDecreasePrecedence(t *testing.T) {
	p := ctrlParams()
	c := newCtrl(t, p)
	// Both a low age and increase-enabling tokens: decrease wins.
	if got := c.Adjust(p.LowAge, 0, p.TokenBucketMax); got != AdjustDecreaseAge {
		t.Fatalf("adjustment = %v, want decrease", got)
	}
}

func TestRateNeutralZoneHolds(t *testing.T) {
	p := ctrlParams()
	c := newCtrl(t, p)
	mid := (p.LowAge + p.HighAge) / 2
	for i := 0; i < 10; i++ {
		if got := c.Adjust(mid, 0, p.TokenBucketMax); got != AdjustNone {
			t.Fatalf("adjustment = %v in neutral zone", got)
		}
	}
	if c.Rate() != 10 {
		t.Fatalf("rate moved in neutral zone: %v", c.Rate())
	}
}

func TestRateRandomizedIncrease(t *testing.T) {
	p := ctrlParams()
	p.IncreaseProb = 0.25
	c := newCtrl(t, p)
	fired, skipped := 0, 0
	for i := 0; i < 4000; i++ {
		c.SetRate(10)
		switch c.Adjust(p.HighAge, 0, p.TokenBucketMax) {
		case AdjustIncrease:
			fired++
		case AdjustIncreaseSkipped:
			skipped++
		default:
			t.Fatal("unexpected adjustment")
		}
	}
	frac := float64(fired) / float64(fired+skipped)
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("increase probability ≈ %v, want ≈0.25", frac)
	}
}

func TestRateClamping(t *testing.T) {
	p := ctrlParams()
	p.MinRate = 5
	p.MaxRate = 12
	c := newCtrl(t, p)
	for i := 0; i < 50; i++ {
		c.Adjust(p.LowAge, 0, p.TokenBucketMax)
	}
	if c.Rate() != 5 {
		t.Fatalf("rate = %v, want clamp at MinRate 5", c.Rate())
	}
	for i := 0; i < 200; i++ {
		c.Adjust(p.HighAge, 0, p.TokenBucketMax)
	}
	if c.Rate() != 12 {
		t.Fatalf("rate = %v, want clamp at MaxRate 12", c.Rate())
	}
	c.SetRate(1000)
	if c.Rate() != 12 {
		t.Fatalf("SetRate bypassed clamp: %v", c.Rate())
	}
}

func TestRateDisableTokenCheck(t *testing.T) {
	p := ctrlParams()
	p.DisableTokenCheck = true
	c := newCtrl(t, p)
	// Pooling tokens no longer force decreases.
	if got := c.Adjust(p.TargetAge, p.TokenBucketMax, p.TokenBucketMax); got != AdjustNone {
		t.Fatalf("adjustment = %v, want none with token check disabled", got)
	}
	// And increases no longer require a used allowance.
	if got := c.Adjust(p.HighAge, p.TokenBucketMax, p.TokenBucketMax); got != AdjustIncrease {
		t.Fatalf("adjustment = %v, want increase", got)
	}
}

func TestAdjustmentString(t *testing.T) {
	for adj, want := range map[Adjustment]string{
		AdjustNone:            "none",
		AdjustDecreaseAge:     "decrease(age)",
		AdjustDecreaseUnused:  "decrease(unused)",
		AdjustIncrease:        "increase",
		AdjustIncreaseSkipped: "increase(skipped)",
		Adjustment(42):        "Adjustment(42)",
	} {
		if got := adj.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(adj), got, want)
		}
	}
}

// Package core implements the adaptation mechanism of "Adaptive
// Gossip-Based Broadcast" (Rodrigues, Handurukande, Pereira, Guerraoui,
// Kermarrec — DSN 2003): the paper's primary contribution.
//
// Three cooperating mechanisms let every sender adjust its emission
// rate to the resources of the most constrained group member and to the
// global congestion level, without explicit feedback:
//
//   - MinBuffEstimator (paper Figure 5(a)): distributed discovery of the
//     smallest buffer capacity in the group, by folding a running
//     minimum through the headers of normal data gossip, sampled in
//     periods so stale minima age out.
//   - CongestionEstimator (Figure 5(b)): a purely local moving average
//     of the age of the messages that would overflow a buffer of the
//     group-minimum size — the buffer-size-independent congestion
//     signal of paper §2.3.
//   - RateController (Figure 5(c)): multiplicative rate
//     decrease/increase around the critical age, guarded by the
//     token-bucket occupancy (so unused allowances shrink) and
//     randomized increases (so senders do not surge in lockstep).
//
// Adaptor packages the three as a gossip.Extension; AdaptiveNode wires
// an lpbcast node, an Adaptor and the Figure 3 token bucket into the
// complete adaptive broadcast node. The κ-smallest generalization the
// paper sketches in its concluding remarks is provided by KMinEstimator
// (Params.MinBuffRank > 1).
package core

package core

import (
	"fmt"
	"testing"

	"adaptivegossip/internal/gossip"
)

func newKMin(t *testing.T, rank, floor int) *KMinEstimator {
	t.Helper()
	e, err := NewKMinEstimator("self", rank, floor, 2, 6, 100)
	if err != nil {
		t.Fatalf("NewKMinEstimator: %v", err)
	}
	return e
}

func TestKMinValidation(t *testing.T) {
	cases := []struct{ rank, floor, w, p, c int }{
		{0, 0, 2, 6, 100},
		{1, -1, 2, 6, 100},
		{1, 0, 0, 6, 100},
		{1, 0, 2, 0, 100},
		{1, 0, 2, 6, 0},
	}
	for _, tc := range cases {
		if _, err := NewKMinEstimator("s", tc.rank, tc.floor, tc.w, tc.p, tc.c); err == nil {
			t.Errorf("NewKMinEstimator(%+v): want error", tc)
		}
	}
}

func TestKMinRankTwoIgnoresSingleOutlier(t *testing.T) {
	e := newKMin(t, 2, 0)
	e.Observe(0, []MinEntry{{Node: "tiny", Cap: 5}, {Node: "b", Cap: 80}})
	// κ=2: the single tiny node does not set the estimate; the 2nd
	// smallest (80) does.
	if got := e.Estimate(); got != 80 {
		t.Fatalf("estimate = %d, want 80", got)
	}
	// A second tiny node brings the 2nd smallest down.
	e.Observe(0, []MinEntry{{Node: "tiny2", Cap: 7}})
	if got := e.Estimate(); got != 7 {
		t.Fatalf("estimate = %d, want 7", got)
	}
}

func TestKMinDeduplicatesByNode(t *testing.T) {
	e := newKMin(t, 2, 0)
	// The same constrained node heard via many paths counts once.
	for i := 0; i < 10; i++ {
		e.Observe(0, []MinEntry{{Node: "tiny", Cap: 5}})
	}
	if got := e.Estimate(); got != 100 {
		t.Fatalf("estimate = %d, want self capacity 100 (one tiny node ignored at κ=2)", got)
	}
}

func TestKMinFloorClamps(t *testing.T) {
	e := newKMin(t, 1, 30)
	e.Observe(0, []MinEntry{{Node: "tiny", Cap: 5}})
	if got := e.Estimate(); got != 30 {
		t.Fatalf("estimate = %d, want floor 30", got)
	}
}

func TestKMinHeaderIsSortedAndBounded(t *testing.T) {
	e := newKMin(t, 2, 0)
	e.Observe(0, []MinEntry{
		{Node: "a", Cap: 50}, {Node: "b", Cap: 20}, {Node: "c", Cap: 70},
	})
	_, entries := e.Header()
	if len(entries) != 2 {
		t.Fatalf("header entries = %v, want κ=2", entries)
	}
	if entries[0].Cap != 20 || entries[1].Cap != 50 {
		t.Fatalf("header not sorted ascending: %v", entries)
	}
}

func TestKMinPeriodRotation(t *testing.T) {
	e, err := NewKMinEstimator("self", 1, 0, 2, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(0, []MinEntry{{Node: "tiny", Cap: 10}})
	for i := 0; i < 3; i++ {
		e.OnRound()
	}
	if got := e.Estimate(); got != 10 {
		t.Fatalf("estimate = %d, want 10 within window", got)
	}
	for i := 0; i < 3; i++ {
		e.OnRound()
	}
	if got := e.Estimate(); got != 100 {
		t.Fatalf("estimate = %d, want 100 after rotation", got)
	}
	if e.Period() != 2 {
		t.Fatalf("period = %d", e.Period())
	}
}

func TestKMinClockSync(t *testing.T) {
	e := newKMin(t, 1, 0)
	e.Observe(5, []MinEntry{{Node: "x", Cap: 40}})
	if e.Period() != 5 {
		t.Fatalf("period = %d, want 5", e.Period())
	}
	if got := e.Estimate(); got != 40 {
		t.Fatalf("estimate = %d", got)
	}
	// Too-old header ignored.
	e.Observe(1, []MinEntry{{Node: "y", Cap: 1}})
	if got := e.Estimate(); got != 40 {
		t.Fatalf("estimate = %d after stale header", got)
	}
}

func TestKMinTrimBoundsState(t *testing.T) {
	e := newKMin(t, 2, 0) // keep = 8
	var entries []MinEntry
	for i := 0; i < 100; i++ {
		entries = append(entries, MinEntry{Node: gossip.NodeID(fmt.Sprintf("n%d", i)), Cap: 1000 + i})
	}
	e.Observe(0, entries)
	slot := e.window[0]
	if len(slot) > 9 { // keep + self
		t.Fatalf("period state grew to %d entries, want bounded", len(slot))
	}
	if _, ok := slot["self"]; !ok {
		t.Fatal("self entry trimmed away")
	}
}

func TestKMinSetLocalCapacity(t *testing.T) {
	e := newKMin(t, 1, 0)
	if err := e.SetLocalCapacity(20); err != nil {
		t.Fatal(err)
	}
	if got := e.Estimate(); got != 20 {
		t.Fatalf("estimate = %d, want 20", got)
	}
	if err := e.SetLocalCapacity(0); err == nil {
		t.Fatal("SetLocalCapacity(0): want error")
	}
}

package core

import (
	"fmt"

	"adaptivegossip/internal/gossip"
)

// CongestionEstimator is the local congestion estimation of paper
// Figure 5(b): an exponential moving average (avgAge) of the age of the
// events that would have been discarded by a buffer of the
// group-minimum size, maintained with zero protocol overhead by
// observing the local buffer after each gossip reception.
//
// The lost set remembers events already accounted for so each
// contributes at most once; entries are forgotten when the event leaves
// the real buffer.
//
// CongestionEstimator is not safe for concurrent use.
type CongestionEstimator struct {
	alpha   float64
	avgAge  float64
	lost    map[gossip.EventID]struct{}
	samples uint64
}

// NewCongestionEstimator creates an estimator with EMA weight alpha,
// starting from initial (conventionally the target age, so the
// controller is neutral until real samples arrive).
func NewCongestionEstimator(alpha, initial float64) (*CongestionEstimator, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("core: alpha must be in [0,1), got %v", alpha)
	}
	if initial < 0 {
		return nil, fmt.Errorf("core: initial avgAge must be non-negative, got %v", initial)
	}
	return &CongestionEstimator{
		alpha:  alpha,
		avgAge: initial,
		lost:   make(map[gossip.EventID]struct{}),
	}, nil
}

// AvgAge returns the current congestion estimate.
func (c *CongestionEstimator) AvgAge() float64 { return c.avgAge }

// Samples counts how many events have fed the estimate.
func (c *CongestionEstimator) Samples() uint64 { return c.samples }

// LostLen reports the size of the lost set (events counted but still in
// the real buffer).
func (c *CongestionEstimator) LostLen() int { return len(c.lost) }

// Counted reports whether the event already contributed to avgAge. It
// is the predicate handed to Buffer.OldestUncounted.
func (c *CongestionEstimator) Counted(id gossip.EventID) bool {
	_, ok := c.lost[id]
	return ok
}

// ObserveOverflow feeds the events that overflow the virtual
// minBuff-sized buffer into the moving average and marks them counted.
func (c *CongestionEstimator) ObserveOverflow(events []gossip.Event) {
	for _, ev := range events {
		c.avgAge = c.alpha*c.avgAge + (1-c.alpha)*float64(ev.Age)
		c.samples++
		c.lost[ev.ID] = struct{}{}
	}
}

// ObserveDrop feeds a really dropped event into the moving average
// without tracking it in the lost set (it has already left the buffer).
// Real capacity drops happen at the local capacity, which is at least
// minBuff, so a minBuff-sized buffer would certainly have dropped the
// event too: together with ObserveOverflow this reproduces the paper's
// pre-garbage-collection accounting (Figure 5(b)) on top of a buffer
// that evicts per insertion.
func (c *CongestionEstimator) ObserveDrop(ev gossip.Event) {
	c.avgAge = c.alpha*c.avgAge + (1-c.alpha)*float64(ev.Age)
	c.samples++
}

// Forget drops an event from the lost set; call it when the event
// leaves the real buffer for any reason.
func (c *CongestionEstimator) Forget(id gossip.EventID) {
	delete(c.lost, id)
}

// Drift moves avgAge one EMA step toward the given value. Used for
// optimistic recovery in rounds that produce no overflow samples (see
// Params.OptimisticDrift).
func (c *CongestionEstimator) Drift(toward float64) {
	c.avgAge = c.alpha*c.avgAge + (1-c.alpha)*toward
}

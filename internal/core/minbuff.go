package core

import "fmt"

// MinBuffEstimator is the distributed discovery of resource
// availability of paper Figure 5(a).
//
// Time is divided into sample periods of SamplePeriodRounds gossip
// rounds. Within each period the estimator keeps a running minimum of
// the buffer capacities heard in gossip headers (seeded with the local
// capacity). The working estimate is the minimum over the last Window
// periods, which smooths the start-of-period reset while letting a
// departed constrained node's value age out after Window periods.
//
// Periods are loosely synchronized: receiving a header from a later
// period fast-forwards the local period counter, the paper's clock
// synchronization rule.
//
// MinBuffEstimator is not safe for concurrent use.
type MinBuffEstimator struct {
	window   []int // ring indexed by period % len
	period   uint64
	localCap int
	rounds   int // rounds elapsed in the current period
	perLen   int // SamplePeriodRounds
	advances uint64
}

// NewMinBuffEstimator creates an estimator for a node whose local
// buffer capacity is localCap.
func NewMinBuffEstimator(window, samplePeriodRounds, localCap int) (*MinBuffEstimator, error) {
	if window <= 0 {
		return nil, fmt.Errorf("core: window must be positive, got %d", window)
	}
	if samplePeriodRounds <= 0 {
		return nil, fmt.Errorf("core: sample period must be positive rounds, got %d", samplePeriodRounds)
	}
	if localCap <= 0 {
		return nil, fmt.Errorf("core: local capacity must be positive, got %d", localCap)
	}
	e := &MinBuffEstimator{
		window:   make([]int, window),
		localCap: localCap,
		perLen:   samplePeriodRounds,
	}
	for i := range e.window {
		e.window[i] = localCap
	}
	return e, nil
}

// Period returns the current sample period s.
func (e *MinBuffEstimator) Period() uint64 { return e.period }

// Advances counts period transitions (local and synchronized).
func (e *MinBuffEstimator) Advances() uint64 { return e.advances }

// LocalCapacity returns the capacity this node contributes.
func (e *MinBuffEstimator) LocalCapacity() int { return e.localCap }

// SetLocalCapacity tracks a local buffer resize. A shrink takes effect
// in the current period immediately (the node's own capacity always
// participates in the minimum); growth propagates only as new periods
// start, exactly as in the paper's window scheme.
func (e *MinBuffEstimator) SetLocalCapacity(capacity int) error {
	if capacity <= 0 {
		return fmt.Errorf("core: local capacity must be positive, got %d", capacity)
	}
	e.localCap = capacity
	slot := int(e.period) % len(e.window)
	if capacity < e.window[slot] {
		e.window[slot] = capacity
	}
	return nil
}

func (e *MinBuffEstimator) advance() {
	e.period++
	e.advances++
	e.rounds = 0
	e.window[int(e.period)%len(e.window)] = e.localCap
}

// OnRound accounts one gossip round and reports whether a new sample
// period started.
func (e *MinBuffEstimator) OnRound() bool {
	e.rounds++
	if e.rounds < e.perLen {
		return false
	}
	e.advance()
	return true
}

// Header returns the (s, minBuff) pair to piggyback on outgoing gossip.
func (e *MinBuffEstimator) Header() (period uint64, minBuff int) {
	return e.period, e.window[int(e.period)%len(e.window)]
}

// Observe folds a received header into the local state. Headers from
// later periods fast-forward the period counter (loose clock sync);
// headers within the window update the corresponding period's minimum;
// older headers are ignored.
func (e *MinBuffEstimator) Observe(period uint64, minBuff int) {
	if minBuff <= 0 {
		return // defensive: a corrupt header must not poison the estimate
	}
	w := uint64(len(e.window))
	if period > e.period {
		if period-e.period >= w {
			// Jumped past the whole window: every slot restarts from
			// the local capacity.
			for i := range e.window {
				e.window[i] = e.localCap
			}
			e.advances += period - e.period
			e.period = period
			e.rounds = 0
		} else {
			for e.period < period {
				e.advance()
			}
		}
	} else if e.period-period >= w {
		return // stale beyond the window
	}
	slot := int(period) % len(e.window)
	if minBuff < e.window[slot] {
		e.window[slot] = minBuff
	}
}

// Estimate returns the working minBuff: the minimum over the window.
func (e *MinBuffEstimator) Estimate() int {
	min := e.window[0]
	for _, v := range e.window[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

package core

// Property-based tests (testing/quick) on the adaptation estimators and
// the rate controller.

import (
	"math/rand"
	mrand2 "math/rand/v2"
	"testing"
	"testing/quick"

	"adaptivegossip/internal/gossip"
)

// TestQuickMinBuffEstimatorModel checks the estimator against a
// reference model: the estimate equals the minimum of the local
// capacity and all observations folded into periods still inside the
// window.
func TestQuickMinBuffEstimatorModel(t *testing.T) {
	type obs struct {
		Advance bool
		Period  uint8
		Value   uint16
	}
	f := func(localCap uint16, window uint8, tape []obs) bool {
		lc := int(localCap)%200 + 1
		w := int(window)%4 + 1
		e, err := NewMinBuffEstimator(w, 3, lc)
		if err != nil {
			return false
		}
		// Reference model: map period → min folded value.
		model := map[uint64]int{0: lc}
		curPeriod := uint64(0)
		touch := func(p uint64) {
			if _, ok := model[p]; !ok {
				model[p] = lc
			}
		}
		for _, o := range tape {
			if o.Advance {
				e.OnRound()
				e.OnRound()
				e.OnRound() // exactly one period advance (3 rounds)
				curPeriod++
				touch(curPeriod)
				continue
			}
			p := uint64(o.Period % 8)
			v := int(o.Value)%300 + 1
			e.Observe(p, v)
			if p > curPeriod {
				// Clock sync: all periods up to p now exist.
				if p-curPeriod >= uint64(w) {
					// Full reset.
					model = map[uint64]int{}
					for q := p + 1 - uint64(w); q <= p; q++ {
						model[q] = lc
					}
				} else {
					for q := curPeriod + 1; q <= p; q++ {
						touch(q)
					}
				}
				curPeriod = p
			}
			if curPeriod >= uint64(w) && p <= curPeriod-uint64(w) {
				continue // too old, ignored
			}
			touch(p)
			if v < model[p] {
				model[p] = v
			}
		}
		// Expected estimate: min over the last w periods (missing
		// periods contribute localCap because slots reset lazily).
		want := 1 << 30
		for q := uint64(0); q < uint64(w); q++ {
			var p uint64
			if curPeriod >= q {
				p = curPeriod - q
			} else {
				break
			}
			val, ok := model[p]
			if !ok {
				val = lc
			}
			if val < want {
				want = val
			}
		}
		// Ring slots never rotated yet keep their initial localCap.
		if curPeriod+1 < uint64(w) && lc < want {
			want = lc
		}
		return e.Estimate() == want
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(51))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinBuffEstimateBounds: whatever happens, the estimate is
// positive and never exceeds the smallest local capacity ever active.
func TestQuickMinBuffEstimateBounds(t *testing.T) {
	f := func(localCap uint8, values []uint16, rounds uint8) bool {
		lc := int(localCap)%100 + 1
		e, err := NewMinBuffEstimator(2, 2, lc)
		if err != nil {
			return false
		}
		for i, v := range values {
			e.Observe(uint64(i%5), int(v)%200-50) // includes invalid ≤0 values
			if i%3 == 0 {
				e.OnRound()
			}
		}
		for i := 0; i < int(rounds); i++ {
			e.OnRound()
		}
		est := e.Estimate()
		return est >= 1 && est <= lc
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(52))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRateControllerClamped: the rate stays within bounds under
// arbitrary signal sequences.
func TestQuickRateControllerClamped(t *testing.T) {
	p := DefaultParams()
	p.MinRate = 0.5
	p.MaxRate = 50
	p.InitialRate = 10
	f := func(ages []float64, tokens []float64) bool {
		c, err := NewRateController(p, mrand2.New(mrand2.NewPCG(9, 9)))
		if err != nil {
			return false
		}
		n := len(ages)
		if len(tokens) < n {
			n = len(tokens)
		}
		for i := 0; i < n; i++ {
			age := ages[i]
			if age < 0 {
				age = -age
			}
			tok := tokens[i]
			if tok < 0 {
				tok = -tok
			}
			c.Adjust(age, tok, p.TokenBucketMax)
			if c.Rate() < p.MinRate || c.Rate() > p.MaxRate {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(53))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCongestionEstimatorBounds: avgAge remains within the convex
// hull of its initial value and all observed ages.
func TestQuickCongestionEstimatorBounds(t *testing.T) {
	f := func(initial uint8, ages []uint8) bool {
		init := float64(initial % 20)
		c, err := NewCongestionEstimator(0.9, init)
		if err != nil {
			return false
		}
		lo, hi := init, init
		for i, a := range ages {
			age := int(a % 30)
			c.ObserveOverflow([]gossip.Event{{ID: gossip.EventID{Origin: "q", Seq: uint64(i)}, Age: age}})
			if float64(age) < lo {
				lo = float64(age)
			}
			if float64(age) > hi {
				hi = float64(age)
			}
			if c.AvgAge() < lo-1e-9 || c.AvgAge() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(54))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"math"
	"testing"

	"adaptivegossip/internal/gossip"
)

func evWithAge(seq uint64, age int) gossip.Event {
	return gossip.Event{ID: gossip.EventID{Origin: "x", Seq: seq}, Age: age}
}

func TestCongestionValidation(t *testing.T) {
	if _, err := NewCongestionEstimator(1.0, 5); err == nil {
		t.Fatal("alpha=1 accepted")
	}
	if _, err := NewCongestionEstimator(-0.1, 5); err == nil {
		t.Fatal("alpha<0 accepted")
	}
	if _, err := NewCongestionEstimator(0.9, -1); err == nil {
		t.Fatal("negative initial accepted")
	}
}

func TestCongestionEMA(t *testing.T) {
	c, err := NewCongestionEstimator(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.ObserveOverflow([]gossip.Event{evWithAge(1, 8)})
	// 0.5*4 + 0.5*8 = 6
	if got := c.AvgAge(); got != 6 {
		t.Fatalf("avgAge = %v, want 6", got)
	}
	c.ObserveOverflow([]gossip.Event{evWithAge(2, 2)})
	// 0.5*6 + 0.5*2 = 4
	if got := c.AvgAge(); got != 4 {
		t.Fatalf("avgAge = %v, want 4", got)
	}
	if c.Samples() != 2 {
		t.Fatalf("samples = %d", c.Samples())
	}
}

func TestCongestionLostSetLifecycle(t *testing.T) {
	c, _ := NewCongestionEstimator(0.9, 5)
	c.ObserveOverflow([]gossip.Event{evWithAge(1, 3), evWithAge(2, 4)})
	if !c.Counted(gossip.EventID{Origin: "x", Seq: 1}) {
		t.Fatal("counted event not in lost set")
	}
	if c.LostLen() != 2 {
		t.Fatalf("lost len = %d", c.LostLen())
	}
	c.Forget(gossip.EventID{Origin: "x", Seq: 1})
	if c.Counted(gossip.EventID{Origin: "x", Seq: 1}) {
		t.Fatal("forgotten event still counted")
	}
	if c.LostLen() != 1 {
		t.Fatalf("lost len = %d after forget", c.LostLen())
	}
	c.Forget(gossip.EventID{Origin: "zz", Seq: 9}) // unknown: no-op
}

func TestCongestionDrift(t *testing.T) {
	c, _ := NewCongestionEstimator(0.9, 2)
	for i := 0; i < 50; i++ {
		c.Drift(10)
	}
	if got := c.AvgAge(); math.Abs(got-10) > 0.1 {
		t.Fatalf("avgAge = %v, want ≈10 after drifting", got)
	}
}

// TestCongestionConvergesToSignal: feeding a constant age converges the
// EMA to that age regardless of the start.
func TestCongestionConvergesToSignal(t *testing.T) {
	c, _ := NewCongestionEstimator(0.9, 20)
	for i := uint64(0); i < 200; i++ {
		c.ObserveOverflow([]gossip.Event{evWithAge(i, 3)})
	}
	if got := c.AvgAge(); math.Abs(got-3) > 0.05 {
		t.Fatalf("avgAge = %v, want ≈3", got)
	}
}

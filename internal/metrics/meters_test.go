package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestRateMeterBasics(t *testing.T) {
	m := NewRateMeter(epoch, time.Second)
	for i := 0; i < 10; i++ {
		m.Record(epoch.Add(time.Duration(i) * 100 * time.Millisecond)) // all in bucket 0
	}
	m.RecordN(epoch.Add(1500*time.Millisecond), 5) // bucket 1
	if m.Total() != 15 {
		t.Fatalf("total = %v", m.Total())
	}
	if got := m.RatePerSec(epoch, epoch.Add(2*time.Second)); got != 7.5 {
		t.Fatalf("rate = %v, want 7.5", got)
	}
	series := m.Series(epoch, epoch.Add(3*time.Second))
	if len(series) != 3 {
		t.Fatalf("series len %d", len(series))
	}
	if series[0].PerSec != 10 || series[1].PerSec != 5 || series[2].PerSec != 0 {
		t.Fatalf("series %+v", series)
	}
}

func TestRateMeterEmptyWindows(t *testing.T) {
	m := NewRateMeter(epoch, time.Second)
	if got := m.RatePerSec(epoch, epoch); got != 0 {
		t.Fatalf("empty window rate %v", got)
	}
	if got := m.RatePerSec(epoch.Add(time.Second), epoch); got != 0 {
		t.Fatalf("inverted window rate %v", got)
	}
	if m.Series(epoch, epoch) != nil {
		t.Fatal("empty series should be nil")
	}
}

func TestRateMeterDefaultBucket(t *testing.T) {
	m := NewRateMeter(epoch, 0)
	m.Record(epoch)
	if got := m.RatePerSec(epoch, epoch.Add(time.Second)); got != 1 {
		t.Fatalf("rate = %v", got)
	}
}

func TestGaugeMeterMeans(t *testing.T) {
	g := NewGaugeMeter(epoch, time.Second)
	g.Observe(epoch, 2)
	g.Observe(epoch.Add(100*time.Millisecond), 4)
	g.Observe(epoch.Add(1100*time.Millisecond), 10)
	if got := g.Mean(); got < 5.33 || got > 5.34 {
		t.Fatalf("mean = %v", got)
	}
	if g.Count() != 3 {
		t.Fatalf("count = %d", g.Count())
	}
	mean, ok := g.MeanWindow(epoch, epoch.Add(time.Second))
	if !ok || mean != 3 {
		t.Fatalf("window mean = %v ok=%v, want 3", mean, ok)
	}
	if _, ok := g.MeanWindow(epoch.Add(10*time.Second), epoch.Add(20*time.Second)); ok {
		t.Fatal("empty window reported samples")
	}
	series := g.Series(epoch, epoch.Add(3*time.Second))
	if len(series) != 3 {
		t.Fatalf("series len %d", len(series))
	}
	if series[0].Mean != 3 || series[0].N != 2 {
		t.Fatalf("bucket 0 %+v", series[0])
	}
	if series[1].Mean != 10 || series[1].N != 1 {
		t.Fatalf("bucket 1 %+v", series[1])
	}
	if series[2].N != 0 {
		t.Fatalf("bucket 2 %+v", series[2])
	}
}

func TestGaugeMeterEmpty(t *testing.T) {
	g := NewGaugeMeter(epoch, 0)
	if g.Mean() != 0 {
		t.Fatal("empty mean nonzero")
	}
	if g.Series(epoch, epoch) != nil {
		t.Fatal("empty series not nil")
	}
}

func TestMetersConcurrent(t *testing.T) {
	m := NewRateMeter(epoch, time.Second)
	g := NewGaugeMeter(epoch, time.Second)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Record(epoch)
				g.Observe(epoch, 1)
			}
		}()
	}
	wg.Wait()
	if m.Total() != 4000 || g.Count() != 4000 {
		t.Fatalf("totals %v/%d", m.Total(), g.Count())
	}
}

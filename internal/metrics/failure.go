package metrics

import (
	"adaptivegossip/internal/failure"
)

// FailureSummary aggregates the failure detector's per-node counters
// (failure.Stats) across a group: totals plus the spread of
// locally-observed false positives (revivals), the reading the churn
// experiments report next to delivery ratio and view accuracy.
type FailureSummary struct {
	// Nodes is the number of aggregated nodes.
	Nodes int
	// Totals across the group.
	ProbesSent       uint64
	AcksReceived     uint64
	AcksSent         uint64
	PingReqsSent     uint64
	PingReqsReceived uint64
	ProbesRelayed    uint64
	AcksRelayed      uint64
	Suspects         uint64
	Confirms         uint64
	Refutations      uint64
	Revivals         uint64
	UpdatesSent      uint64
	UpdatesReceived  uint64
	UpdatesIgnored   uint64
	// MinRevivals/MaxRevivals bound the per-node revival counts — a
	// skew diagnostic (false positives should be rare everywhere, not
	// concentrated on one unlucky observer).
	MinRevivals uint64
	MaxRevivals uint64
}

// Add folds one node's counters into the summary.
func (s *FailureSummary) Add(st failure.Stats) {
	if s.Nodes == 0 || st.Revivals < s.MinRevivals {
		s.MinRevivals = st.Revivals
	}
	if st.Revivals > s.MaxRevivals {
		s.MaxRevivals = st.Revivals
	}
	s.Nodes++
	s.ProbesSent += st.ProbesSent
	s.AcksReceived += st.AcksReceived
	s.AcksSent += st.AcksSent
	s.PingReqsSent += st.PingReqsSent
	s.PingReqsReceived += st.PingReqsReceived
	s.ProbesRelayed += st.ProbesRelayed
	s.AcksRelayed += st.AcksRelayed
	s.Suspects += st.Suspects
	s.Confirms += st.Confirms
	s.Refutations += st.Refutations
	s.Revivals += st.Revivals
	s.UpdatesSent += st.UpdatesSent
	s.UpdatesReceived += st.UpdatesReceived
	s.UpdatesIgnored += st.UpdatesIgnored
}

// Merge folds another summary into s — e.g. pooling the runs of a seed
// sweep. Totals add, the revival spread widens, and Nodes accumulates;
// ratios derived from a pooled summary are pooled estimates.
func (s *FailureSummary) Merge(o FailureSummary) {
	if o.Nodes > 0 {
		if s.Nodes == 0 || o.MinRevivals < s.MinRevivals {
			s.MinRevivals = o.MinRevivals
		}
		if o.MaxRevivals > s.MaxRevivals {
			s.MaxRevivals = o.MaxRevivals
		}
	}
	s.Nodes += o.Nodes
	s.ProbesSent += o.ProbesSent
	s.AcksReceived += o.AcksReceived
	s.AcksSent += o.AcksSent
	s.PingReqsSent += o.PingReqsSent
	s.PingReqsReceived += o.PingReqsReceived
	s.ProbesRelayed += o.ProbesRelayed
	s.AcksRelayed += o.AcksRelayed
	s.Suspects += o.Suspects
	s.Confirms += o.Confirms
	s.Refutations += o.Refutations
	s.Revivals += o.Revivals
	s.UpdatesSent += o.UpdatesSent
	s.UpdatesReceived += o.UpdatesReceived
	s.UpdatesIgnored += o.UpdatesIgnored
}

// AckRatio is the fraction of probes answered — near 1 in a healthy
// group, dipping as churn rises (1 when nothing was probed).
func (s FailureSummary) AckRatio() float64 {
	if s.ProbesSent == 0 {
		return 1
	}
	return float64(s.AcksReceived) / float64(s.ProbesSent)
}

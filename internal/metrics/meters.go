package metrics

import (
	"sync"
	"time"
)

// Point is one bucket of a rate series.
type Point struct {
	Start  time.Time
	PerSec float64
}

// RateMeter counts events into fixed time buckets and reports rates —
// the input/output rate measurements of Figs. 6, 7 and 9(a).
type RateMeter struct {
	mu     sync.Mutex
	bucket time.Duration
	counts map[int64]float64
	total  float64
	epoch  time.Time
}

// NewRateMeter buckets counts at the given granularity relative to
// epoch.
func NewRateMeter(epoch time.Time, bucket time.Duration) *RateMeter {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &RateMeter{bucket: bucket, counts: make(map[int64]float64), epoch: epoch}
}

func (m *RateMeter) idx(now time.Time) int64 {
	return int64(now.Sub(m.epoch) / m.bucket)
}

// Record counts one event at time now.
func (m *RateMeter) Record(now time.Time) { m.RecordN(now, 1) }

// RecordN counts k events at time now.
func (m *RateMeter) RecordN(now time.Time, k float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts[m.idx(now)] += k
	m.total += k
}

// Total reports the overall count.
func (m *RateMeter) Total() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// RatePerSec reports the mean rate over [from, to).
func (m *RateMeter) RatePerSec(from, to time.Time) float64 {
	secs := to.Sub(from).Seconds()
	if secs <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	lo, hi := m.idx(from), m.idx(to)
	var sum float64
	for i := lo; i < hi; i++ {
		sum += m.counts[i]
	}
	return sum / secs
}

// Series returns per-bucket rates over [from, to).
func (m *RateMeter) Series(from, to time.Time) []Point {
	if !from.Before(to) {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	lo, hi := m.idx(from), m.idx(to)
	out := make([]Point, 0, hi-lo)
	perSec := m.bucket.Seconds()
	for i := lo; i < hi; i++ {
		out = append(out, Point{
			Start:  m.epoch.Add(time.Duration(i) * m.bucket),
			PerSec: m.counts[i] / perSec,
		})
	}
	return out
}

// GaugePoint is one bucket of an averaged gauge series.
type GaugePoint struct {
	Start time.Time
	Mean  float64
	N     int
}

// GaugeMeter averages sampled values into time buckets; used for the
// allowed-rate series of Fig. 9(a) and the dropped-age traces of
// Fig. 7(c).
type GaugeMeter struct {
	mu     sync.Mutex
	bucket time.Duration
	epoch  time.Time
	sums   map[int64]float64
	ns     map[int64]int
	sum    float64
	n      int
}

// NewGaugeMeter buckets samples at the given granularity relative to
// epoch.
func NewGaugeMeter(epoch time.Time, bucket time.Duration) *GaugeMeter {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &GaugeMeter{
		bucket: bucket,
		epoch:  epoch,
		sums:   make(map[int64]float64),
		ns:     make(map[int64]int),
	}
}

// Observe records one sample at time now.
func (g *GaugeMeter) Observe(now time.Time, v float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	i := int64(now.Sub(g.epoch) / g.bucket)
	g.sums[i] += v
	g.ns[i]++
	g.sum += v
	g.n++
}

// Mean reports the all-time sample mean (0 when empty).
func (g *GaugeMeter) Mean() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n == 0 {
		return 0
	}
	return g.sum / float64(g.n)
}

// Count reports the number of samples.
func (g *GaugeMeter) Count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// MeanWindow reports the sample mean over [from, to), and whether any
// samples fell in the window.
func (g *GaugeMeter) MeanWindow(from, to time.Time) (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	lo := int64(from.Sub(g.epoch) / g.bucket)
	hi := int64(to.Sub(g.epoch) / g.bucket)
	var sum float64
	var n int
	for i := lo; i < hi; i++ {
		sum += g.sums[i]
		n += g.ns[i]
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Series returns per-bucket means over [from, to). Buckets with no
// samples carry N == 0.
func (g *GaugeMeter) Series(from, to time.Time) []GaugePoint {
	if !from.Before(to) {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	lo := int64(from.Sub(g.epoch) / g.bucket)
	hi := int64(to.Sub(g.epoch) / g.bucket)
	out := make([]GaugePoint, 0, hi-lo)
	for i := lo; i < hi; i++ {
		p := GaugePoint{Start: g.epoch.Add(time.Duration(i) * g.bucket), N: g.ns[i]}
		if p.N > 0 {
			p.Mean = g.sums[i] / float64(p.N)
		}
		out = append(out, p)
	}
	return out
}

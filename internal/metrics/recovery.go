package metrics

import (
	"adaptivegossip/internal/recovery"
)

// RecoverySummary aggregates the anti-entropy subsystem's per-node
// counters (recovery.Stats) across a group: totals plus the spread of
// recovered-event counts, the reading the loss experiments report next
// to delivery ratio.
type RecoverySummary struct {
	// Nodes is the number of aggregated nodes.
	Nodes int
	// Totals across the group.
	DigestsSent       uint64
	DigestsReceived   uint64
	RequestsSent      uint64
	IDsRequested      uint64
	RequestsReceived  uint64
	ResponsesSent     uint64
	ResponsesReceived uint64
	EventsServed      uint64
	EventsUnserved    uint64
	EventsRecovered   uint64
	MissingGaveUp     uint64
	MissingOverflow   uint64
	// MinRecovered/MaxRecovered bound the per-node recovered counts —
	// a skew diagnostic (uniform loss should repair uniformly).
	MinRecovered uint64
	MaxRecovered uint64
}

// Add folds one node's counters into the summary.
func (s *RecoverySummary) Add(st recovery.Stats) {
	if s.Nodes == 0 || st.EventsRecovered < s.MinRecovered {
		s.MinRecovered = st.EventsRecovered
	}
	if st.EventsRecovered > s.MaxRecovered {
		s.MaxRecovered = st.EventsRecovered
	}
	s.Nodes++
	s.DigestsSent += st.DigestsSent
	s.DigestsReceived += st.DigestsReceived
	s.RequestsSent += st.RequestsSent
	s.IDsRequested += st.IDsRequested
	s.RequestsReceived += st.RequestsReceived
	s.ResponsesSent += st.ResponsesSent
	s.ResponsesReceived += st.ResponsesReceived
	s.EventsServed += st.EventsServed
	s.EventsUnserved += st.EventsUnserved
	s.EventsRecovered += st.EventsRecovered
	s.MissingGaveUp += st.MissingGaveUp
	s.MissingOverflow += st.MissingOverflow
}

// Merge folds another summary into s — e.g. pooling the runs of a
// seed sweep. Totals add, the recovered spread widens, and Nodes
// accumulates; ratios derived from a pooled summary are pooled
// estimates.
func (s *RecoverySummary) Merge(o RecoverySummary) {
	if o.Nodes > 0 {
		if s.Nodes == 0 || o.MinRecovered < s.MinRecovered {
			s.MinRecovered = o.MinRecovered
		}
		if o.MaxRecovered > s.MaxRecovered {
			s.MaxRecovered = o.MaxRecovered
		}
	}
	s.Nodes += o.Nodes
	s.DigestsSent += o.DigestsSent
	s.DigestsReceived += o.DigestsReceived
	s.RequestsSent += o.RequestsSent
	s.IDsRequested += o.IDsRequested
	s.RequestsReceived += o.RequestsReceived
	s.ResponsesSent += o.ResponsesSent
	s.ResponsesReceived += o.ResponsesReceived
	s.EventsServed += o.EventsServed
	s.EventsUnserved += o.EventsUnserved
	s.EventsRecovered += o.EventsRecovered
	s.MissingGaveUp += o.MissingGaveUp
	s.MissingOverflow += o.MissingOverflow
}

// ServeRatio is the fraction of requested identifiers the group could
// serve from its retransmission stores (1 when nothing was requested).
func (s RecoverySummary) ServeRatio() float64 {
	total := s.EventsServed + s.EventsUnserved
	if total == 0 {
		return 1
	}
	return float64(s.EventsServed) / float64(total)
}

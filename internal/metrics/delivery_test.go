package metrics

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
)

var epoch = time.Unix(0, 0).UTC()

func members(n int) []gossip.NodeID {
	out := make([]gossip.NodeID, n)
	for i := range out {
		out[i] = gossip.NodeID(fmt.Sprintf("n%03d", i))
	}
	return out
}

func eid(seq uint64) gossip.EventID {
	return gossip.EventID{Origin: "n000", Seq: seq}
}

func TestNewDeliveryTrackerValidation(t *testing.T) {
	if _, err := NewDeliveryTracker(nil); err == nil {
		t.Fatal("empty members accepted")
	}
	if _, err := NewDeliveryTracker([]gossip.NodeID{"a", "a"}); err == nil {
		t.Fatal("duplicate members accepted")
	}
}

func TestDeliveryTrackerCoverage(t *testing.T) {
	group := members(10)
	tr, err := NewDeliveryTracker(group)
	if err != nil {
		t.Fatal(err)
	}
	// Message 0: all 10 members. Message 1: 9 members. Message 2: 5.
	for seq, count := range map[uint64]int{0: 10, 1: 9, 2: 5} {
		tr.Broadcast(eid(seq), epoch)
		for i := 0; i < count; i++ {
			tr.Deliver(eid(seq), group[i], epoch.Add(time.Second))
		}
	}
	sum := tr.Results(time.Time{}, time.Time{}, 0.95)
	if sum.Messages != 3 {
		t.Fatalf("messages = %d", sum.Messages)
	}
	// >95% of 10 means all 10: only message 0 qualifies.
	if sum.AtomicityPct < 33.2 || sum.AtomicityPct > 33.4 {
		t.Fatalf("atomicity = %v, want 33.3", sum.AtomicityPct)
	}
	wantMean := (100.0 + 90.0 + 50.0) / 3
	if sum.MeanReceiversPct < wantMean-0.01 || sum.MeanReceiversPct > wantMean+0.01 {
		t.Fatalf("mean receivers = %v, want %v", sum.MeanReceiversPct, wantMean)
	}
	if sum.FullyDelivered != 1 {
		t.Fatalf("fully delivered = %d", sum.FullyDelivered)
	}
	if sum.MinReceiversPct != 50 {
		t.Fatalf("min receivers = %v", sum.MinReceiversPct)
	}
}

func TestDeliveryTrackerThresholdBoundary(t *testing.T) {
	group := members(20)
	tr, _ := NewDeliveryTracker(group)
	// Exactly 19/20 = 95%: NOT strictly more than 95%.
	tr.Broadcast(eid(0), epoch)
	for i := 0; i < 19; i++ {
		tr.Deliver(eid(0), group[i], epoch)
	}
	if got := tr.Results(time.Time{}, time.Time{}, 0.95).AtomicityPct; got != 0 {
		t.Fatalf("19/20 counted as atomic: %v", got)
	}
	tr.Deliver(eid(0), group[19], epoch)
	if got := tr.Results(time.Time{}, time.Time{}, 0.95).AtomicityPct; got != 100 {
		t.Fatalf("20/20 not atomic: %v", got)
	}
}

func TestDeliveryTrackerDuplicateAndUnknownDeliveries(t *testing.T) {
	group := members(4)
	tr, _ := NewDeliveryTracker(group)
	tr.Broadcast(eid(0), epoch)
	tr.Deliver(eid(0), group[1], epoch)
	tr.Deliver(eid(0), group[1], epoch) // duplicate
	tr.Deliver(eid(0), "stranger", epoch)
	got := tr.Results(time.Time{}, time.Time{}, 0)
	if got.MeanReceiversPct != 25 {
		t.Fatalf("mean = %v, want 25", got.MeanReceiversPct)
	}
}

func TestDeliveryTrackerHorizonFiltering(t *testing.T) {
	group := members(2)
	tr, _ := NewDeliveryTracker(group)
	tr.Broadcast(eid(0), epoch.Add(1*time.Second))
	tr.Broadcast(eid(1), epoch.Add(10*time.Second))
	tr.Deliver(eid(0), group[0], epoch)
	tr.Deliver(eid(1), group[0], epoch)
	got := tr.Results(time.Time{}, epoch.Add(5*time.Second), 0)
	if got.Messages != 1 {
		t.Fatalf("horizon filter kept %d messages, want 1", got.Messages)
	}
	got = tr.Results(epoch.Add(5*time.Second), time.Time{}, 0)
	if got.Messages != 1 {
		t.Fatalf("from filter kept %d messages, want 1", got.Messages)
	}
}

func TestDeliveryTrackerDeliverBeforeBroadcast(t *testing.T) {
	group := members(2)
	tr, _ := NewDeliveryTracker(group)
	// Origin's local delivery can reach the tracker before Broadcast.
	tr.Deliver(eid(0), group[0], epoch.Add(time.Second))
	tr.Broadcast(eid(0), epoch)
	got := tr.Results(time.Time{}, time.Time{}, 0)
	if got.Messages != 1 || got.MeanReceiversPct != 50 {
		t.Fatalf("got %+v", got)
	}
}

func TestDeliveryTrackerSeries(t *testing.T) {
	group := members(4)
	tr, _ := NewDeliveryTracker(group)
	// Bucket 0: one fully delivered message. Bucket 1: one message at
	// 50%. Bucket 2: empty.
	tr.Broadcast(eid(0), epoch)
	for _, m := range group {
		tr.Deliver(eid(0), m, epoch)
	}
	tr.Broadcast(eid(1), epoch.Add(11*time.Second))
	tr.Deliver(eid(1), group[0], epoch.Add(11*time.Second))
	tr.Deliver(eid(1), group[1], epoch.Add(11*time.Second))

	series := tr.Series(epoch, epoch.Add(30*time.Second), 10*time.Second, 0.95)
	if len(series) != 4 {
		t.Fatalf("series length %d", len(series))
	}
	if series[0].AtomicityPct != 100 || series[0].Messages != 1 {
		t.Fatalf("bucket 0: %+v", series[0])
	}
	if series[1].AtomicityPct != 0 || series[1].MeanReceiversPct != 50 {
		t.Fatalf("bucket 1: %+v", series[1])
	}
	if series[2].Messages != 0 {
		t.Fatalf("bucket 2: %+v", series[2])
	}
	if tr.Series(epoch, epoch, time.Second, 0) != nil {
		t.Fatal("empty window should return nil")
	}
}

func TestDeliveryTrackerCoverageHistogram(t *testing.T) {
	group := members(4)
	tr, _ := NewDeliveryTracker(group)
	tr.Broadcast(eid(0), epoch)
	tr.Deliver(eid(0), group[0], epoch)
	tr.Broadcast(eid(1), epoch)
	for _, m := range group {
		tr.Deliver(eid(1), m, epoch)
	}
	h := tr.CoverageHistogram(time.Time{}, time.Time{})
	if len(h) != 2 || h[0] != 25 || h[1] != 100 {
		t.Fatalf("histogram %v", h)
	}
}

func TestDeliveryTrackerConcurrent(t *testing.T) {
	group := members(8)
	tr, _ := NewDeliveryTracker(group)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := gossip.EventID{Origin: group[g], Seq: uint64(i)}
				tr.Broadcast(id, epoch)
				tr.Deliver(id, group[(g+i)%8], epoch)
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Results(time.Time{}, time.Time{}, 0).Messages; got != 4000 {
		t.Fatalf("messages = %d, want 4000", got)
	}
}

func TestDeliverHopDistributions(t *testing.T) {
	group := members(4)
	tr, err := NewDeliveryTracker(group)
	if err != nil {
		t.Fatal(err)
	}
	tr.Broadcast(eid(1), epoch)
	tr.DeliverHop(eid(1), group[0], epoch, 0)                    // origin: latency 0, hop 0
	tr.DeliverHop(eid(1), group[1], epoch.Add(8*time.Second), 2) // 8s, 2 hops
	tr.DeliverHop(eid(1), group[1], epoch.Add(9*time.Second), 3) // duplicate: ignored
	tr.DeliverHop(eid(1), "stranger", epoch.Add(time.Second), 1) // unknown: ignored
	tr.Deliver(eid(1), group[2], epoch.Add(2*time.Second))       // hop-less: counted, not observed
	tr.DeliverHop(eid(1), group[3], epoch.Add(16*time.Second), 4)

	lat, hops := tr.LatencySnapshot(), tr.HopsSnapshot()
	if lat.Count != 3 || hops.Count != 3 {
		t.Fatalf("observation counts latency=%d hops=%d, want 3", lat.Count, hops.Count)
	}
	if want := uint64((8*time.Second + 16*time.Second).Microseconds()); lat.Sum != want {
		t.Fatalf("latency sum %dµs, want %d", lat.Sum, want)
	}
	if hops.Sum != 0+2+4 {
		t.Fatalf("hops sum %d, want 6", hops.Sum)
	}
	if p99 := lat.Quantile(0.99); p99 < float64(8*time.Second.Microseconds()) {
		t.Fatalf("latency p99 %.0fµs implausibly low", p99)
	}
	// The hop-less Deliver still counted toward coverage.
	if got := tr.Results(time.Time{}, time.Time{}, 0).MeanReceiversPct; got != 100 {
		t.Fatalf("coverage %.1f%%, want 100%%", got)
	}
}

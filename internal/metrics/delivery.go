// Package metrics implements the measurements the paper's evaluation
// reports: per-message delivery coverage (average % of receivers,
// Fig. 8a), atomicity (share of messages reaching >95% of members,
// Figs. 2, 8b, 9b), input/output rates (Figs. 6, 7, 9a) and the average
// age of dropped messages (Figs. 4, 7c). All collectors are safe for
// concurrent use so the same code instruments both the single-threaded
// simulator and the goroutine runtime.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"adaptivegossip/internal/gossip"
	"adaptivegossip/internal/observe"
)

// DefaultAtomicityThreshold is the paper's reliability target: a
// message counts as atomically delivered when it reaches more than 95%
// of the group.
const DefaultAtomicityThreshold = 0.95

type msgRec struct {
	born      time.Time
	bornKnown bool
	delivered []uint64 // bitset over member indexes
	count     int
}

// DeliveryTracker records which members delivered which broadcast
// events and derives the paper's reliability measures. Deliveries
// reported through DeliverHop additionally feed two pooled
// distributions — per-delivery latency (microseconds since the
// message's birth) and hop count — using the same alloc-free
// histogram type the live runtime's debug endpoint serves.
type DeliveryTracker struct {
	mu      sync.Mutex
	members map[gossip.NodeID]int
	n       int
	words   int
	msgs    map[gossip.EventID]*msgRec

	latency observe.Histogram // microseconds birth → delivery
	hops    observe.Histogram // event age at delivery
}

// NewDeliveryTracker tracks deliveries across the given group.
func NewDeliveryTracker(members []gossip.NodeID) (*DeliveryTracker, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("metrics: member list must not be empty")
	}
	idx := make(map[gossip.NodeID]int, len(members))
	for _, m := range members {
		if _, dup := idx[m]; dup {
			return nil, fmt.Errorf("metrics: duplicate member %s", m)
		}
		idx[m] = len(idx)
	}
	return &DeliveryTracker{
		members: idx,
		n:       len(idx),
		words:   (len(idx) + 63) / 64,
		msgs:    make(map[gossip.EventID]*msgRec),
	}, nil
}

// GroupSize reports the number of tracked members.
func (t *DeliveryTracker) GroupSize() int { return t.n }

func (t *DeliveryTracker) record(id gossip.EventID) *msgRec {
	rec, ok := t.msgs[id]
	if !ok {
		rec = &msgRec{delivered: make([]uint64, t.words)}
		t.msgs[id] = rec
	}
	return rec
}

// Broadcast registers the birth of a message. It may be called before
// or after the first Deliver for the same event (the origin delivers to
// itself inside Broadcast in the protocol).
func (t *DeliveryTracker) Broadcast(id gossip.EventID, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := t.record(id)
	rec.born = now
	rec.bornKnown = true
}

// Deliver records that node delivered the event. Unknown nodes are
// ignored (e.g. observers outside the tracked group).
func (t *DeliveryTracker) Deliver(id gossip.EventID, node gossip.NodeID, now time.Time) {
	t.deliver(id, node, now, -1)
}

// DeliverHop records a delivery like Deliver and additionally observes
// the delivery latency (now minus the message's birth, in microseconds)
// and the event's age — its gossip hop count — into the tracker's
// pooled distributions. Duplicate deliveries are not observed twice.
func (t *DeliveryTracker) DeliverHop(id gossip.EventID, node gossip.NodeID, now time.Time, hop int) {
	t.deliver(id, node, now, hop)
}

func (t *DeliveryTracker) deliver(id gossip.EventID, node gossip.NodeID, now time.Time, hop int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.members[node]
	if !ok {
		return
	}
	rec := t.record(id)
	if !rec.bornKnown && (rec.count == 0 || now.Before(rec.born)) {
		rec.born = now // best-effort birth time until Broadcast arrives
	}
	w, b := i/64, uint(i%64)
	if rec.delivered[w]&(1<<b) != 0 {
		return
	}
	rec.delivered[w] |= 1 << b
	rec.count++
	if hop >= 0 {
		t.latency.ObserveInt(now.Sub(rec.born).Microseconds())
		t.hops.ObserveInt(int64(hop))
	}
}

// LatencySnapshot captures the pooled birth→delivery latency
// distribution (microseconds) over all DeliverHop-reported deliveries.
func (t *DeliveryTracker) LatencySnapshot() observe.HistogramSnapshot {
	return t.latency.Snapshot()
}

// HopsSnapshot captures the pooled hop-count distribution over all
// DeliverHop-reported deliveries.
func (t *DeliveryTracker) HopsSnapshot() observe.HistogramSnapshot {
	return t.hops.Snapshot()
}

// Summary are the aggregate reliability measures over a set of
// messages.
type Summary struct {
	// Messages is the number of broadcasts considered.
	Messages int
	// MeanReceiversPct is the average percentage of members reached per
	// message (Fig. 8a).
	MeanReceiversPct float64
	// AtomicityPct is the percentage of messages that reached more than
	// threshold×n members (Figs. 2, 8b).
	AtomicityPct float64
	// FullyDelivered counts messages that reached every member.
	FullyDelivered int
	// MinReceiversPct is the worst per-message coverage.
	MinReceiversPct float64
}

// Results aggregates messages born in [from, to). Zero times mean
// unbounded on that side. threshold ≤ 0 uses the default 95%.
func (t *DeliveryTracker) Results(from, to time.Time, threshold float64) Summary {
	if threshold <= 0 {
		threshold = DefaultAtomicityThreshold
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	var (
		// receivers accumulates integer delivery counts so the mean is
		// exact and independent of map iteration order — float
		// accumulation here would make otherwise-deterministic
		// simulations diverge in the last ulp.
		receivers int
		atomics   int
		count     int
		full      int
		minCount  = t.n
	)
	need := int(threshold*float64(t.n)) + 1 // strictly more than threshold
	if need > t.n {
		need = t.n
	}
	for _, rec := range t.msgs {
		if !from.IsZero() && rec.born.Before(from) {
			continue
		}
		if !to.IsZero() && !rec.born.Before(to) {
			continue
		}
		count++
		receivers += rec.count
		if rec.count < minCount {
			minCount = rec.count
		}
		if rec.count >= need {
			atomics++
		}
		if rec.count == t.n {
			full++
		}
	}
	if count == 0 {
		return Summary{}
	}
	return Summary{
		Messages:         count,
		MeanReceiversPct: 100 * float64(receivers) / (float64(t.n) * float64(count)),
		AtomicityPct:     100 * float64(atomics) / float64(count),
		FullyDelivered:   full,
		MinReceiversPct:  100 * float64(minCount) / float64(t.n),
	}
}

// BucketStat is one time-bucket of the atomicity series (Fig. 9b).
type BucketStat struct {
	Start            time.Time
	Messages         int
	AtomicityPct     float64
	MeanReceiversPct float64
}

// Series buckets messages by birth time and reports per-bucket
// reliability, for the dynamic-resource time series of Fig. 9(b).
func (t *DeliveryTracker) Series(start, end time.Time, bucket time.Duration, threshold float64) []BucketStat {
	if bucket <= 0 || !start.Before(end) {
		return nil
	}
	if threshold <= 0 {
		threshold = DefaultAtomicityThreshold
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	buckets := int(end.Sub(start)/bucket) + 1
	type acc struct {
		msgs      int
		receivers int // integer sum: exact, iteration-order independent
		atomics   int
	}
	accs := make([]acc, buckets)
	need := int(threshold*float64(t.n)) + 1
	if need > t.n {
		need = t.n
	}
	for _, rec := range t.msgs {
		if rec.born.Before(start) || !rec.born.Before(end) {
			continue
		}
		b := int(rec.born.Sub(start) / bucket)
		accs[b].msgs++
		accs[b].receivers += rec.count
		if rec.count >= need {
			accs[b].atomics++
		}
	}
	out := make([]BucketStat, 0, buckets)
	for i, a := range accs {
		st := BucketStat{Start: start.Add(time.Duration(i) * bucket), Messages: a.msgs}
		if a.msgs > 0 {
			st.AtomicityPct = 100 * float64(a.atomics) / float64(a.msgs)
			st.MeanReceiversPct = 100 * float64(a.receivers) / (float64(t.n) * float64(a.msgs))
		}
		out = append(out, st)
	}
	return out
}

// CoverageHistogram returns the sorted per-message coverage percentages
// of messages born in [from, to). Useful for distribution plots and
// tests.
func (t *DeliveryTracker) CoverageHistogram(from, to time.Time) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, 0, len(t.msgs))
	for _, rec := range t.msgs {
		if !from.IsZero() && rec.born.Before(from) {
			continue
		}
		if !to.IsZero() && !rec.born.Before(to) {
			continue
		}
		out = append(out, 100*float64(rec.count)/float64(t.n))
	}
	sort.Float64s(out)
	return out
}

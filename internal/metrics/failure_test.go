package metrics

import (
	"testing"

	"adaptivegossip/internal/failure"
)

func TestFailureSummaryAdd(t *testing.T) {
	var s FailureSummary
	s.Add(failure.Stats{ProbesSent: 10, AcksReceived: 9, Suspects: 2, Confirms: 1, Revivals: 1})
	s.Add(failure.Stats{ProbesSent: 5, AcksReceived: 5, Revivals: 3})
	if s.Nodes != 2 {
		t.Fatalf("Nodes = %d, want 2", s.Nodes)
	}
	if s.ProbesSent != 15 || s.AcksReceived != 14 || s.Suspects != 2 || s.Confirms != 1 {
		t.Fatalf("totals wrong: %+v", s)
	}
	if s.MinRevivals != 1 || s.MaxRevivals != 3 {
		t.Fatalf("revival spread [%d,%d], want [1,3]", s.MinRevivals, s.MaxRevivals)
	}
	if got := s.AckRatio(); got < 0.93 || got > 0.94 {
		t.Fatalf("AckRatio = %v, want 14/15", got)
	}
}

func TestFailureSummaryMerge(t *testing.T) {
	var a, b FailureSummary
	a.Add(failure.Stats{ProbesSent: 4, Revivals: 2})
	b.Add(failure.Stats{ProbesSent: 6, Revivals: 7})
	b.Add(failure.Stats{Revivals: 1})
	a.Merge(b)
	if a.Nodes != 3 || a.ProbesSent != 10 || a.Revivals != 10 {
		t.Fatalf("merge totals wrong: %+v", a)
	}
	if a.MinRevivals != 1 || a.MaxRevivals != 7 {
		t.Fatalf("merged spread [%d,%d], want [1,7]", a.MinRevivals, a.MaxRevivals)
	}
}

func TestFailureSummaryAckRatioEmpty(t *testing.T) {
	var s FailureSummary
	if got := s.AckRatio(); got != 1 {
		t.Fatalf("empty AckRatio = %v, want 1", got)
	}
}

package metrics

import (
	"testing"

	"adaptivegossip/internal/recovery"
)

func TestRecoverySummaryAdd(t *testing.T) {
	var s RecoverySummary
	s.Add(recovery.Stats{EventsRecovered: 5, IDsRequested: 8, EventsServed: 3, EventsUnserved: 1})
	s.Add(recovery.Stats{EventsRecovered: 2, IDsRequested: 4, EventsServed: 6})
	s.Add(recovery.Stats{EventsRecovered: 9, RequestsSent: 1, DigestsSent: 7})

	if s.Nodes != 3 {
		t.Errorf("Nodes = %d, want 3", s.Nodes)
	}
	if s.EventsRecovered != 16 {
		t.Errorf("EventsRecovered = %d, want 16", s.EventsRecovered)
	}
	if s.IDsRequested != 12 {
		t.Errorf("IDsRequested = %d, want 12", s.IDsRequested)
	}
	if s.MinRecovered != 2 || s.MaxRecovered != 9 {
		t.Errorf("recovered spread = [%d, %d], want [2, 9]", s.MinRecovered, s.MaxRecovered)
	}
	if got, want := s.ServeRatio(), 9.0/10.0; got != want {
		t.Errorf("ServeRatio = %v, want %v", got, want)
	}
}

func TestRecoverySummaryServeRatioEmpty(t *testing.T) {
	var s RecoverySummary
	if got := s.ServeRatio(); got != 1 {
		t.Errorf("empty ServeRatio = %v, want 1", got)
	}
}

func TestRecoverySummaryMinTracksFirstNode(t *testing.T) {
	var s RecoverySummary
	s.Add(recovery.Stats{EventsRecovered: 0})
	s.Add(recovery.Stats{EventsRecovered: 10})
	if s.MinRecovered != 0 || s.MaxRecovered != 10 {
		t.Errorf("spread = [%d, %d], want [0, 10]", s.MinRecovered, s.MaxRecovered)
	}
}

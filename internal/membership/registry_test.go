package membership

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"adaptivegossip/internal/gossip"
)

func ids(names ...string) []gossip.NodeID {
	out := make([]gossip.NodeID, len(names))
	for i, n := range names {
		out[i] = gossip.NodeID(n)
	}
	return out
}

func TestRegistryAddRemove(t *testing.T) {
	r := NewRegistry(ids("a", "b")...)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if r.Add("a") {
		t.Fatal("duplicate Add returned true")
	}
	if !r.Add("c") {
		t.Fatal("new Add returned false")
	}
	if !r.Remove("b") {
		t.Fatal("Remove of member returned false")
	}
	if r.Remove("b") {
		t.Fatal("Remove of absent returned true")
	}
	if r.Contains("b") {
		t.Fatal("b still contained after removal")
	}
	if !r.Contains("c") {
		t.Fatal("c lost")
	}
	got := r.IDs()
	if len(got) != 2 {
		t.Fatalf("IDs = %v", got)
	}
}

func TestRegistrySampleExcludesSelfAndDuplicates(t *testing.T) {
	r := NewRegistry(ids("a", "b", "c", "d", "e")...)
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 200; trial++ {
		got := r.SamplePeers("a", 3, rng)
		if len(got) != 3 {
			t.Fatalf("sample size %d, want 3", len(got))
		}
		seen := map[gossip.NodeID]bool{}
		for _, id := range got {
			if id == "a" {
				t.Fatal("sample included self")
			}
			if seen[id] {
				t.Fatalf("duplicate %s in sample", id)
			}
			seen[id] = true
		}
	}
}

func TestRegistrySampleWholeGroup(t *testing.T) {
	r := NewRegistry(ids("a", "b", "c")...)
	rng := rand.New(rand.NewPCG(5, 6))
	got := r.SamplePeers("a", 10, rng)
	if len(got) != 2 {
		t.Fatalf("sample = %v, want both other members", got)
	}
}

func TestRegistrySampleEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	empty := NewRegistry()
	if got := empty.SamplePeers("a", 4, rng); got != nil {
		t.Fatalf("empty registry sample = %v", got)
	}
	solo := NewRegistry("a")
	if got := solo.SamplePeers("a", 4, rng); got != nil {
		t.Fatalf("solo registry sample = %v", got)
	}
	r := NewRegistry(ids("a", "b")...)
	if got := r.SamplePeers("a", 0, rng); got != nil {
		t.Fatalf("k=0 sample = %v", got)
	}
	// Sampling from a registry that does not contain self still works.
	if got := r.SamplePeers("zz", 2, rng); len(got) != 2 {
		t.Fatalf("outsider sample = %v", got)
	}
}

func TestRegistrySampleIsRoughlyUniform(t *testing.T) {
	r := NewRegistry(ids("a", "b", "c", "d", "e", "f")...)
	rng := rand.New(rand.NewPCG(9, 10))
	counts := map[gossip.NodeID]int{}
	const trials = 6000
	for i := 0; i < trials; i++ {
		for _, id := range r.SamplePeers("a", 2, rng) {
			counts[id]++
		}
	}
	// Expected per member: trials*2/5 = 2400. Allow ±15%.
	for _, id := range ids("b", "c", "d", "e", "f") {
		c := counts[id]
		if c < 2040 || c > 2760 {
			t.Fatalf("member %s drawn %d times, want ≈2400", id, c)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry(ids("a", "b", "c", "d")...)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			r.Add("x")
			r.Remove("x")
		}
	}()
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 1000; i++ {
		r.SamplePeers("a", 2, rng)
		r.Len()
	}
	<-done
}

// TestRegistryConcurrentJoinLeaveSample hammers the registry from many
// goroutines — the detector-driven eviction path (Remove from a node's
// gossip goroutine) racing joins, re-admissions and samplers. Run under
// -race; the invariant checks catch index corruption.
func TestRegistryConcurrentJoinLeaveSample(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 32; i++ {
		reg.Add(gossip.NodeID(fmt.Sprintf("base-%02d", i)))
	}
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w)+1, 77))
			churn := gossip.NodeID(fmt.Sprintf("churn-%d", w))
			for i := 0; i < 2000; i++ {
				switch i % 4 {
				case 0:
					reg.Add(churn)
				case 1:
					reg.Remove(churn)
				case 2:
					// Detector-style eviction/readmission of a shared member.
					shared := gossip.NodeID(fmt.Sprintf("base-%02d", rng.IntN(8)))
					if i%8 == 2 {
						reg.Remove(shared)
					} else {
						reg.Add(shared)
					}
				case 3:
					got := reg.SamplePeers(churn, 4, rng)
					seen := make(map[gossip.NodeID]bool, len(got))
					for _, id := range got {
						if id == churn {
							t.Errorf("sample returned self")
							return
						}
						if seen[id] {
							t.Errorf("sample returned duplicate %s", id)
							return
						}
						seen[id] = true
					}
				}
			}
		}()
	}
	wg.Wait()
	// Index invariant: every listed id resolves through Contains, and
	// the stable members all survived.
	ids := reg.IDs()
	if len(ids) != reg.Len() {
		t.Fatalf("IDs()=%d but Len()=%d", len(ids), reg.Len())
	}
	for _, id := range ids {
		if !reg.Contains(id) {
			t.Fatalf("listed member %s not found by Contains", id)
		}
	}
	for i := 8; i < 32; i++ {
		if !reg.Contains(gossip.NodeID(fmt.Sprintf("base-%02d", i))) {
			t.Fatalf("untouched member base-%02d lost", i)
		}
	}
}

package membership

import (
	"fmt"
	"math"
	"math/rand/v2"

	"adaptivegossip/internal/gossip"
)

// PartialViewConfig bounds the lpbcast membership state.
type PartialViewConfig struct {
	// MaxView is the partial view bound (lpbcast's ℓ).
	MaxView int
	// MaxSubs bounds the pool of recently heard subscriptions.
	MaxSubs int
	// MaxUnsubs bounds the pool of recently heard unsubscriptions.
	MaxUnsubs int
	// SubsPerGossip is how many subscriptions ride on each outgoing
	// gossip message (the sender itself always rides along, refreshing
	// its own membership).
	SubsPerGossip int
	// UnsubsPerGossip is how many unsubscriptions ride on each message.
	UnsubsPerGossip int
}

// DefaultPartialViewConfig mirrors lpbcast's sizing for groups of ~60
// to a few hundred nodes.
func DefaultPartialViewConfig() PartialViewConfig {
	return PartialViewConfig{
		MaxView:         15,
		MaxSubs:         30,
		MaxUnsubs:       30,
		SubsPerGossip:   4,
		UnsubsPerGossip: 4,
	}
}

// Validate reports the first configuration error.
func (c PartialViewConfig) Validate() error {
	if c.MaxView <= 0 {
		return fmt.Errorf("membership: MaxView must be positive, got %d", c.MaxView)
	}
	if c.MaxSubs <= 0 || c.MaxUnsubs <= 0 {
		return fmt.Errorf("membership: pool bounds must be positive, got subs=%d unsubs=%d", c.MaxSubs, c.MaxUnsubs)
	}
	if c.SubsPerGossip <= 0 || c.UnsubsPerGossip < 0 {
		return fmt.Errorf("membership: per-gossip counts invalid: subs=%d unsubs=%d", c.SubsPerGossip, c.UnsubsPerGossip)
	}
	return nil
}

// PartialView is lpbcast's partial-membership mechanism: each node
// knows only a bounded random subset of the group, maintained purely by
// piggybacking subscriptions and unsubscriptions on data gossip. It
// implements both gossip.PeerSampler (targets come from the view) and
// gossip.Extension (membership traffic rides on Message.Subs/Unsubs).
//
// PartialView is owned by a single node and is not safe for concurrent
// use; the node's driver serializes all calls.
type PartialView struct {
	self gossip.NodeID
	cfg  PartialViewConfig
	rng  *rand.Rand

	// weight is the optional proximity-biased sampling mode (see
	// SetSampleWeights); the scratch slices below make the weighted
	// draw allocation-free across rounds.
	weight        PeerWeight
	weightScratch []float64
	candScratch   []gossip.NodeID

	view    []gossip.NodeID
	viewSet map[gossip.NodeID]struct{}

	subs    []gossip.NodeID
	subsSet map[gossip.NodeID]struct{}

	unsubs    []gossip.NodeID
	unsubsSet map[gossip.NodeID]struct{}
}

// NewPartialView creates a view seeded with the given contacts.
func NewPartialView(self gossip.NodeID, seeds []gossip.NodeID, cfg PartialViewConfig, rng *rand.Rand) (*PartialView, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if self == "" {
		return nil, fmt.Errorf("membership: self id must not be empty")
	}
	if rng == nil {
		return nil, fmt.Errorf("membership: rng must not be nil")
	}
	v := &PartialView{
		self:      self,
		cfg:       cfg,
		rng:       rng,
		viewSet:   make(map[gossip.NodeID]struct{}, cfg.MaxView),
		subsSet:   make(map[gossip.NodeID]struct{}, cfg.MaxSubs),
		unsubsSet: make(map[gossip.NodeID]struct{}, cfg.MaxUnsubs),
	}
	for _, s := range seeds {
		v.addToView(s)
	}
	return v, nil
}

// View returns a copy of the current partial view.
func (v *PartialView) View() []gossip.NodeID {
	return append([]gossip.NodeID(nil), v.view...)
}

// ViewSize reports the current view length.
func (v *PartialView) ViewSize() int { return len(v.view) }

// Contains reports whether id is in the view.
func (v *PartialView) Contains(id gossip.NodeID) bool {
	_, ok := v.viewSet[id]
	return ok
}

// PeerWeight scores a candidate gossip target's relative selection
// probability. Weights must be finite; a weight <= 0 excludes the
// candidate from the draw entirely.
type PeerWeight func(peer gossip.NodeID) float64

// SetSampleWeights switches target selection to proximity-biased
// sampling: peers are drawn from the view without replacement with
// probability proportional to weight(peer), instead of uniformly — the
// topology-aware gossip probability of Haas et al.'s "Gossip-Based Ad
// Hoc Routing", where nearby (cheap) links carry most rounds while the
// occasional long link keeps regions connected. Only target selection
// (SamplePeers / AppendPeers) is affected; the view's membership
// content stays uniform lpbcast. Pass nil to restore uniform sampling.
//
// The weighted draw consumes the RNG differently from the uniform one,
// so flipping the mode mid-run changes the randomness downstream of the
// switch.
func (v *PartialView) SetSampleWeights(w PeerWeight) { v.weight = w }

// SamplePeers draws up to k distinct targets from the partial view.
func (v *PartialView) SamplePeers(self gossip.NodeID, k int, rng *rand.Rand) []gossip.NodeID {
	return v.AppendPeers(nil, self, k, rng)
}

// AppendPeers implements gossip.PeerAppender: the SamplePeers draw
// appended into a caller-owned slice (the view holds no duplicates, so
// deduplicating drawn entries by value matches the by-index draw). The
// RNG consumption is identical to SamplePeers.
func (v *PartialView) AppendPeers(dst []gossip.NodeID, self gossip.NodeID, k int, rng *rand.Rand) []gossip.NodeID {
	if k <= 0 || len(v.view) == 0 {
		return dst
	}
	if v.weight != nil {
		return v.appendWeighted(dst, k, rng)
	}
	base := len(dst)
	if k >= len(v.view) {
		dst = append(dst, v.view...)
		out := dst[base:]
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return dst
	}
	for len(dst)-base < k {
		id := v.view[rng.IntN(len(v.view))]
		dup := false
		for _, got := range dst[base:] {
			if got == id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		dst = append(dst, id)
	}
	return dst
}

// appendWeighted is the proximity-biased draw (SetSampleWeights):
// weighted sampling without replacement over the view. Zero- and
// negative-weight candidates are excluded up front, so the draw is
// exact — no rounding fallback can resurrect them. The scratch slices
// are reused across calls, keeping the per-round fast path (gossip
// target selection) allocation-free in steady state.
func (v *PartialView) appendWeighted(dst []gossip.NodeID, k int, rng *rand.Rand) []gossip.NodeID {
	cands := v.candScratch[:0]
	weights := v.weightScratch[:0]
	total := 0.0
	for _, id := range v.view {
		w := v.weight(id)
		if w <= 0 || math.IsInf(w, 1) || math.IsNaN(w) {
			continue
		}
		cands = append(cands, id)
		weights = append(weights, w)
		total += w
	}
	v.candScratch, v.weightScratch = cands, weights
	if k > len(cands) {
		k = len(cands)
	}
	for drawn := 0; drawn < k && total > 0; drawn++ {
		r := rng.Float64() * total
		i := 0
		for ; i < len(weights)-1; i++ {
			r -= weights[i]
			if r < 0 {
				break
			}
		}
		dst = append(dst, cands[i])
		total -= weights[i]
		last := len(cands) - 1
		cands[i], weights[i] = cands[last], weights[last]
		v.candScratch, v.weightScratch = cands[:last], weights[:last]
		cands, weights = v.candScratch, v.weightScratch
	}
	return dst
}

// OnTick piggybacks membership traffic: the sender's own subscription
// plus random samples of the subs and unsubs pools.
func (v *PartialView) OnTick(n *gossip.Node, out *Message) {
	out.Subs = append(out.Subs, v.self)
	for _, s := range v.samplePool(v.subs, v.cfg.SubsPerGossip-1) {
		out.Subs = append(out.Subs, s)
	}
	out.Unsubs = append(out.Unsubs, v.samplePool(v.unsubs, v.cfg.UnsubsPerGossip)...)
}

// Message aliases gossip.Message for readability of the Extension
// implementation.
type Message = gossip.Message

// OnReceive merges incoming membership traffic into the local state.
func (v *PartialView) OnReceive(n *gossip.Node, in *Message) {
	for _, u := range in.Unsubs {
		if u == v.self {
			continue
		}
		v.removeFromView(u)
		v.removeFromSubs(u)
		v.addToPool(&v.unsubs, v.unsubsSet, u, v.cfg.MaxUnsubs)
	}
	for _, s := range in.Subs {
		if s == v.self {
			continue
		}
		if _, gone := v.unsubsSet[s]; gone {
			// Recently unsubscribed; do not resurrect until the unsub
			// ages out of the pool.
			continue
		}
		v.addToView(s)
		v.addToPool(&v.subs, v.subsSet, s, v.cfg.MaxSubs)
	}
}

// OnEvicted is a no-op; the partial view does not track events.
func (v *PartialView) OnEvicted(n *gossip.Node, evicted []gossip.Event, reason gossip.EvictReason) {}

// Unsubscribe announces the local node's departure. The unsubscription
// propagates on subsequent gossip rounds.
func (v *PartialView) Unsubscribe() {
	v.addToPool(&v.unsubs, v.unsubsSet, v.self, v.cfg.MaxUnsubs)
}

// RemovePeer evicts a peer from the view and the subs pool — the
// eviction entry point for failure-detector confirm events, which
// otherwise have no voice in lpbcast's subscription-driven membership
// (a crashed node would linger in the view forever). The removed peer
// also enters the unsubs pool so the death propagates lpbcast-style on
// subsequent gossip, and so the peer is not immediately resurrected by
// stale subscriptions still circulating.
func (v *PartialView) RemovePeer(id gossip.NodeID) {
	if id == v.self {
		return
	}
	v.removeFromView(id)
	v.removeFromSubs(id)
	v.addToPool(&v.unsubs, v.unsubsSet, id, v.cfg.MaxUnsubs)
}

// ReadmitPeer clears a peer's unsubscribed state and returns it to the
// view — the counterpart of RemovePeer for members that prove to be
// alive after all (detector false positives, rejoins).
func (v *PartialView) ReadmitPeer(id gossip.NodeID) {
	if id == v.self {
		return
	}
	if _, gone := v.unsubsSet[id]; gone {
		for i, cand := range v.unsubs {
			if cand == id {
				v.unsubs[i] = v.unsubs[len(v.unsubs)-1]
				v.unsubs = v.unsubs[:len(v.unsubs)-1]
				break
			}
		}
		delete(v.unsubsSet, id)
	}
	v.addToView(id)
}

// samplePool draws up to k distinct elements from a pool.
func (v *PartialView) samplePool(pool []gossip.NodeID, k int) []gossip.NodeID {
	if k <= 0 || len(pool) == 0 {
		return nil
	}
	if k >= len(pool) {
		return append([]gossip.NodeID(nil), pool...)
	}
	out := make([]gossip.NodeID, 0, k)
	chosen := make(map[int]struct{}, k)
	for len(out) < k {
		i := v.rng.IntN(len(pool))
		if _, dup := chosen[i]; dup {
			continue
		}
		chosen[i] = struct{}{}
		out = append(out, pool[i])
	}
	return out
}

func (v *PartialView) addToView(id gossip.NodeID) {
	if id == v.self {
		return
	}
	if _, ok := v.viewSet[id]; ok {
		return
	}
	v.view = append(v.view, id)
	v.viewSet[id] = struct{}{}
	// Over capacity: demote a random member to the subs pool so the
	// group's knowledge of it is not lost, as in lpbcast.
	for len(v.view) > v.cfg.MaxView {
		i := v.rng.IntN(len(v.view))
		demoted := v.view[i]
		v.view[i] = v.view[len(v.view)-1]
		v.view = v.view[:len(v.view)-1]
		delete(v.viewSet, demoted)
		v.addToPool(&v.subs, v.subsSet, demoted, v.cfg.MaxSubs)
	}
}

func (v *PartialView) removeFromView(id gossip.NodeID) {
	if _, ok := v.viewSet[id]; !ok {
		return
	}
	for i, cand := range v.view {
		if cand == id {
			v.view[i] = v.view[len(v.view)-1]
			v.view = v.view[:len(v.view)-1]
			break
		}
	}
	delete(v.viewSet, id)
}

func (v *PartialView) removeFromSubs(id gossip.NodeID) {
	if _, ok := v.subsSet[id]; !ok {
		return
	}
	for i, cand := range v.subs {
		if cand == id {
			v.subs[i] = v.subs[len(v.subs)-1]
			v.subs = v.subs[:len(v.subs)-1]
			break
		}
	}
	delete(v.subsSet, id)
}

func (v *PartialView) addToPool(pool *[]gossip.NodeID, set map[gossip.NodeID]struct{}, id gossip.NodeID, max int) {
	if _, ok := set[id]; ok {
		return
	}
	if len(*pool) < max {
		*pool = append(*pool, id)
		set[id] = struct{}{}
		return
	}
	// Replace a random element, bounding the pool while keeping churn.
	i := v.rng.IntN(len(*pool))
	delete(set, (*pool)[i])
	(*pool)[i] = id
	set[id] = struct{}{}
}

var (
	_ gossip.PeerSampler  = (*PartialView)(nil)
	_ gossip.PeerAppender = (*PartialView)(nil)
	_ gossip.Extension    = (*PartialView)(nil)
)

// Package membership provides gossip target selection: a static
// full-membership Registry (the model used for the paper's experiments)
// and an lpbcast-style PartialView that maintains a bounded random
// subset of the group through subscription gossip, demonstrating that
// the adaptive mechanism needs no full membership knowledge (paper §5).
package membership

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"adaptivegossip/internal/gossip"
)

// Registry is a full-membership view shared by a set of nodes. It is
// safe for concurrent use: runtime nodes sample peers from their own
// goroutines while joins and leaves mutate the set.
type Registry struct {
	mu    sync.RWMutex
	ids   []gossip.NodeID
	index map[gossip.NodeID]int
}

// NewRegistry returns a registry holding the given members.
func NewRegistry(ids ...gossip.NodeID) *Registry {
	r := &Registry{index: make(map[gossip.NodeID]int, len(ids))}
	for _, id := range ids {
		r.add(id)
	}
	return r
}

func (r *Registry) add(id gossip.NodeID) bool {
	if _, ok := r.index[id]; ok {
		return false
	}
	r.index[id] = len(r.ids)
	r.ids = append(r.ids, id)
	return true
}

// Add registers a member, reporting whether it was new.
func (r *Registry) Add(id gossip.NodeID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.add(id)
}

// Remove unregisters a member, reporting whether it was present.
func (r *Registry) Remove(id gossip.NodeID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	pos, ok := r.index[id]
	if !ok {
		return false
	}
	last := len(r.ids) - 1
	r.ids[pos] = r.ids[last]
	r.index[r.ids[pos]] = pos
	r.ids = r.ids[:last]
	delete(r.index, id)
	return true
}

// Len reports the number of members.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ids)
}

// Contains reports whether id is a member.
func (r *Registry) Contains(id gossip.NodeID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.index[id]
	return ok
}

// IDs returns a copy of the member list.
func (r *Registry) IDs() []gossip.NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]gossip.NodeID(nil), r.ids...)
}

// SamplePeers returns up to k distinct members other than self, chosen
// uniformly at random.
func (r *Registry) SamplePeers(self gossip.NodeID, k int, rng *rand.Rand) []gossip.NodeID {
	return r.AppendPeers(nil, self, k, rng)
}

// AppendPeers implements gossip.PeerAppender: the SamplePeers draw
// appended into a caller-owned slice, so a node's per-round target
// selection allocates nothing. The RNG consumption is identical to
// SamplePeers.
func (r *Registry) AppendPeers(dst []gossip.NodeID, self gossip.NodeID, k int, rng *rand.Rand) []gossip.NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.ids)
	if n == 0 || k <= 0 {
		return dst
	}
	_, hasSelf := r.index[self]
	others := n
	if hasSelf {
		others--
	}
	if others <= 0 {
		return dst
	}
	base := len(dst)
	if k >= others {
		// Return all other members, shuffled for unbiased ordering.
		for _, id := range r.ids {
			if id != self {
				dst = append(dst, id)
			}
		}
		out := dst[base:]
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return dst
	}
	// Rejection sampling: k is small relative to the group (fanout ≈ 4
	// of 60), so collisions are rare and a linear dedup scan over the
	// ≤ k appended entries beats a map.
	for len(dst)-base < k {
		id := r.ids[rng.IntN(n)]
		if id == self {
			continue
		}
		dup := false
		for _, got := range dst[base:] {
			if got == id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		dst = append(dst, id)
	}
	return dst
}

var (
	_ gossip.PeerSampler  = (*Registry)(nil)
	_ gossip.PeerAppender = (*Registry)(nil)
)

// String describes the registry for debugging.
func (r *Registry) String() string {
	return fmt.Sprintf("membership.Registry(%d members)", r.Len())
}

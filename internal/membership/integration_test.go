package membership

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"adaptivegossip/internal/gossip"
)

// TestPartialViewDrivesGossipNodes wires real gossip.Nodes whose only
// peer knowledge is an lpbcast partial view maintained by piggybacked
// subscriptions — no registry anywhere — and checks that a broadcast
// still reaches the whole group.
func TestPartialViewDrivesGossipNodes(t *testing.T) {
	const n = 24
	cfg := DefaultPartialViewConfig()
	cfg.MaxView = 6

	names := make([]gossip.NodeID, n)
	for i := range names {
		names[i] = gossip.NodeID(fmt.Sprintf("n%02d", i))
	}
	views := make([]*PartialView, n)
	nodes := make([]*gossip.Node, n)
	delivered := make([]int, n)
	for i := range names {
		// Ring seeding: node i knows only node i+1.
		v, err := NewPartialView(names[i], []gossip.NodeID{names[(i+1)%n]}, cfg,
			rand.New(rand.NewPCG(uint64(i), 7)))
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
		i := i
		node, err := gossip.NewNode(names[i],
			gossip.Params{Fanout: 3, Period: time.Second, MaxEvents: 30, MaxAge: 8},
			v, rand.New(rand.NewPCG(uint64(i), 8)),
			gossip.WithDeliver(func(gossip.Event) { delivered[i]++ }),
			gossip.WithExtensions(v),
		)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	index := map[gossip.NodeID]int{}
	for i, name := range names {
		index[name] = i
	}

	round := func() {
		type env struct {
			to  gossip.NodeID
			msg *gossip.Message
		}
		var mail []env
		for _, node := range nodes {
			for _, out := range node.Tick() {
				mail = append(mail, env{out.To, out.Msg})
			}
		}
		for _, e := range mail {
			nodes[index[e.to]].Receive(e.msg)
		}
	}

	// Let membership knowledge spread before broadcasting.
	for r := 0; r < 10; r++ {
		round()
	}
	nodes[0].Broadcast([]byte("via partial views"))
	for r := 0; r < 10; r++ {
		round()
	}

	reached := 0
	for i := range delivered {
		if delivered[i] > 0 {
			reached++
		}
	}
	if reached < n {
		t.Fatalf("broadcast reached %d/%d nodes through partial views", reached, n)
	}
	for i, v := range views {
		if v.ViewSize() > cfg.MaxView {
			t.Fatalf("node %d view grew to %d", i, v.ViewSize())
		}
	}
}

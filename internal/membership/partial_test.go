package membership

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"adaptivegossip/internal/failure"
	"adaptivegossip/internal/gossip"
)

func newView(t *testing.T, self string, seeds ...string) *PartialView {
	t.Helper()
	v, err := NewPartialView(gossip.NodeID(self), ids(seeds...), DefaultPartialViewConfig(),
		rand.New(rand.NewPCG(1, uint64(len(self)))))
	if err != nil {
		t.Fatalf("NewPartialView: %v", err)
	}
	return v
}

func TestPartialViewValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	if _, err := NewPartialView("", nil, DefaultPartialViewConfig(), rng); err == nil {
		t.Fatal("empty self: want error")
	}
	if _, err := NewPartialView("a", nil, DefaultPartialViewConfig(), nil); err == nil {
		t.Fatal("nil rng: want error")
	}
	bad := DefaultPartialViewConfig()
	bad.MaxView = 0
	if _, err := NewPartialView("a", nil, bad, rng); err == nil {
		t.Fatal("bad config: want error")
	}
}

func TestPartialViewSeedsExcludeSelf(t *testing.T) {
	v := newView(t, "a", "a", "b", "c")
	if v.Contains("a") {
		t.Fatal("view contains self")
	}
	if v.ViewSize() != 2 {
		t.Fatalf("view size %d, want 2", v.ViewSize())
	}
}

func TestPartialViewBounded(t *testing.T) {
	cfg := DefaultPartialViewConfig()
	cfg.MaxView = 5
	v, err := NewPartialView("self", nil, cfg, rand.New(rand.NewPCG(2, 3)))
	if err != nil {
		t.Fatal(err)
	}
	var subs []gossip.NodeID
	for i := 0; i < 50; i++ {
		subs = append(subs, gossip.NodeID(fmt.Sprintf("n%d", i)))
	}
	v.OnReceive(nil, &Message{Subs: subs})
	if v.ViewSize() != 5 {
		t.Fatalf("view size %d, want bound 5", v.ViewSize())
	}
	if len(v.subs) > cfg.MaxSubs {
		t.Fatalf("subs pool %d exceeds bound %d", len(v.subs), cfg.MaxSubs)
	}
}

func TestPartialViewOnTickPiggybacksSelf(t *testing.T) {
	v := newView(t, "a", "b", "c")
	msg := &Message{}
	v.OnTick(nil, msg)
	found := false
	for _, s := range msg.Subs {
		if s == "a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("OnTick subs %v missing self", msg.Subs)
	}
}

func TestPartialViewUnsubRemovesAndPropagates(t *testing.T) {
	v := newView(t, "a", "b", "c", "d")
	v.OnReceive(nil, &Message{Unsubs: ids("c")})
	if v.Contains("c") {
		t.Fatal("c still in view after unsub")
	}
	// The unsub is forwarded on subsequent gossip.
	msg := &Message{}
	v.OnTick(nil, msg)
	found := false
	for _, u := range msg.Unsubs {
		if u == "c" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unsub for c not piggybacked: %v", msg.Unsubs)
	}
	// A subscription for a recently unsubscribed node is not resurrected.
	v.OnReceive(nil, &Message{Subs: ids("c")})
	if v.Contains("c") {
		t.Fatal("c resurrected while unsub pending")
	}
}

func TestPartialViewSamplePeers(t *testing.T) {
	v := newView(t, "a", "b", "c", "d", "e")
	rng := rand.New(rand.NewPCG(4, 5))
	got := v.SamplePeers("a", 3, rng)
	if len(got) != 3 {
		t.Fatalf("sample size %d, want 3", len(got))
	}
	seen := map[gossip.NodeID]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate %s", id)
		}
		seen[id] = true
	}
	if got := v.SamplePeers("a", 0, rng); got != nil {
		t.Fatalf("k=0: %v", got)
	}
	all := v.SamplePeers("a", 99, rng)
	if len(all) != 4 {
		t.Fatalf("oversample returned %d, want full view 4", len(all))
	}
}

func TestPartialViewUnsubscribeSelf(t *testing.T) {
	v := newView(t, "a", "b")
	v.Unsubscribe()
	msg := &Message{}
	v.OnTick(nil, msg)
	found := false
	for _, u := range msg.Unsubs {
		if u == "a" {
			found = true
		}
	}
	if !found {
		t.Fatal("own unsubscription not piggybacked")
	}
}

// TestPartialViewGossipConvergence wires a small group exchanging only
// piggybacked membership and checks everyone ends up known.
func TestPartialViewGossipConvergence(t *testing.T) {
	const n = 20
	cfg := DefaultPartialViewConfig()
	cfg.MaxView = 8
	views := make([]*PartialView, n)
	names := make([]gossip.NodeID, n)
	for i := range views {
		names[i] = gossip.NodeID(fmt.Sprintf("n%02d", i))
	}
	for i := range views {
		// Ring seeding: each node knows only its successor.
		v, err := NewPartialView(names[i], []gossip.NodeID{names[(i+1)%n]}, cfg,
			rand.New(rand.NewPCG(uint64(i), 99)))
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}
	rng := rand.New(rand.NewPCG(123, 456))
	known := func() int {
		set := map[gossip.NodeID]struct{}{}
		for _, v := range views {
			for _, m := range v.View() {
				set[m] = struct{}{}
			}
		}
		return len(set)
	}
	for round := 0; round < 30; round++ {
		for i, v := range views {
			targets := v.SamplePeers(names[i], 3, rng)
			msg := &Message{From: names[i]}
			v.OnTick(nil, msg)
			for _, to := range targets {
				for j, name := range names {
					if name == to {
						views[j].OnReceive(nil, msg)
					}
				}
			}
		}
	}
	if k := known(); k < n-1 {
		t.Fatalf("after gossip, only %d/%d nodes known somewhere", k, n)
	}
	// Every view stayed within bounds.
	for i, v := range views {
		if v.ViewSize() > cfg.MaxView {
			t.Fatalf("view %d size %d exceeds bound", i, v.ViewSize())
		}
	}
}

// TestPartialViewEvictsConfirmedDeadPeer is the regression test for the
// view's blind spot: lpbcast's subscription gossip never removes a
// crashed peer, so detector confirm events must. Wiring a failure
// engine's callback to RemovePeer evicts the dead peer from the view
// (and spreads its death as an unsubscription); a later proof of life
// re-admits it.
func TestPartialViewEvictsConfirmedDeadPeer(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 9))
	peers := []gossip.NodeID{"p1", "p2", "p3", "dead"}
	view, err := NewPartialView("self", peers, DefaultPartialViewConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := failure.NewEngine("self", failure.Params{
		Enabled:                true,
		ProbeTimeoutRounds:     1,
		IndirectTimeoutRounds:  1,
		SuspicionTimeoutRounds: 2,
	}, view, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetOnChange(func(id gossip.NodeID, status gossip.MemberStatus) {
		switch status {
		case gossip.MemberConfirmed:
			view.RemovePeer(id)
		case gossip.MemberAlive:
			view.ReadmitPeer(id)
		}
	})

	// Rounds: the engine probes view members; every peer except "dead"
	// keeps gossiping (proof of life), so only "dead" escalates through
	// suspect to confirm.
	for round := 0; round < 40 && view.Contains("dead"); round++ {
		msg := &gossip.Message{Kind: gossip.KindGossip, From: "self"}
		eng.OnTick(nil, msg)
		eng.TakeOutgoing()
		for _, p := range peers[:3] {
			eng.OnReceive(nil, &gossip.Message{Kind: gossip.KindGossip, From: p})
		}
	}
	if view.Contains("dead") {
		t.Fatalf("crashed peer still in view after detection window: view=%v", view.View())
	}
	for _, p := range peers[:3] {
		if !view.Contains(p) {
			t.Fatalf("live peer %s evicted: view=%v", p, view.View())
		}
	}
	// The death propagates as an unsubscription on the next gossip.
	out := &gossip.Message{From: "self"}
	view.OnTick(nil, out)
	found := false
	for _, u := range out.Unsubs {
		if u == "dead" {
			found = true
		}
	}
	if !found {
		t.Fatalf("eviction not spread as unsub: %v", out.Unsubs)
	}
	// Stale subscriptions must not resurrect the dead peer...
	view.OnReceive(nil, &gossip.Message{Subs: []gossip.NodeID{"dead"}})
	if view.Contains("dead") {
		t.Fatal("stale subscription resurrected the evicted peer")
	}
	// ...but a genuine proof of life (detector alive event) re-admits.
	eng.OnReceive(nil, &gossip.Message{Kind: gossip.KindGossip, From: "dead"})
	if !view.Contains("dead") {
		t.Fatal("revived peer not re-admitted to the view")
	}
}

// Package workload generates the offered load of the paper's
// experiments: constant-rate or Poisson publishers driven either by the
// discrete-event scheduler (simulation runs) or by real-time goroutines
// (prototype runs), plus buffer-resize schedules for the
// dynamic-resource scenario of §4.
package workload

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"adaptivegossip/internal/sim"
)

// PublishFunc submits one message and reports whether it was admitted
// (token-bucket gated senders reject above-allowance messages).
type PublishFunc func(payload []byte) bool

// SenderConfig describes one publisher.
type SenderConfig struct {
	// Rate is the offered load in msg/s. Zero disables the sender.
	Rate float64
	// PayloadSize is the event payload length in bytes.
	PayloadSize int
	// Poisson selects exponential inter-arrival times; false means
	// strictly periodic emission.
	Poisson bool
}

// Validate reports the first configuration error.
func (c SenderConfig) Validate() error {
	if c.Rate < 0 {
		return fmt.Errorf("workload: rate must be non-negative, got %v", c.Rate)
	}
	if c.PayloadSize < 0 {
		return fmt.Errorf("workload: payload size must be non-negative, got %d", c.PayloadSize)
	}
	return nil
}

// SenderStats counts offered and admitted messages.
type SenderStats struct {
	Offered  uint64
	Admitted uint64
}

// SimSender emits on a discrete-event scheduler.
type SimSender struct {
	cfg     SenderConfig
	sched   *sim.Scheduler
	publish PublishFunc
	rng     *rand.Rand
	payload []byte
	stats   SenderStats
	stopped bool
}

// StartSimSender schedules a publisher on sched. The first emission is
// phase-randomized within one inter-arrival interval so a cluster of
// senders does not emit in lockstep.
func StartSimSender(sched *sim.Scheduler, cfg SenderConfig, publish PublishFunc, rng *rand.Rand) (*SimSender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched == nil || publish == nil || rng == nil {
		return nil, fmt.Errorf("workload: scheduler, publish and rng must not be nil")
	}
	s := &SimSender{
		cfg:     cfg,
		sched:   sched,
		publish: publish,
		rng:     rng,
		payload: make([]byte, cfg.PayloadSize),
	}
	if cfg.Rate > 0 {
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		phase := time.Duration(rng.Float64() * float64(interval))
		sched.After(phase, s.emit)
	}
	return s, nil
}

// Stop halts future emissions.
func (s *SimSender) Stop() { s.stopped = true }

// Stats returns the offered/admitted counters.
func (s *SimSender) Stats() SenderStats { return s.stats }

func (s *SimSender) emit() {
	if s.stopped {
		return
	}
	s.stats.Offered++
	if s.publish(s.payload) {
		s.stats.Admitted++
	}
	var next time.Duration
	if s.cfg.Poisson {
		next = time.Duration(s.rng.ExpFloat64() / s.cfg.Rate * float64(time.Second))
	} else {
		next = time.Duration(float64(time.Second) / s.cfg.Rate)
	}
	if next <= 0 {
		next = time.Nanosecond
	}
	s.sched.After(next, s.emit)
}

// TimedSender emits in real time from its own goroutine; the
// counterpart of SimSender for prototype (runtime) experiments.
type TimedSender struct {
	cfg     SenderConfig
	publish PublishFunc
	rng     *rand.Rand
	payload []byte

	mu    sync.Mutex
	stats SenderStats

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartTimedSender launches the publisher goroutine. Call Stop to halt
// it; Stop waits for the goroutine to exit.
func StartTimedSender(cfg SenderConfig, publish PublishFunc, seed uint64) (*TimedSender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if publish == nil {
		return nil, fmt.Errorf("workload: publish must not be nil")
	}
	s := &TimedSender{
		cfg:     cfg,
		publish: publish,
		rng:     rand.New(rand.NewPCG(seed, seed^0xDEADBEEF)),
		payload: make([]byte, cfg.PayloadSize),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.loop()
	return s, nil
}

func (s *TimedSender) loop() {
	defer close(s.done)
	if s.cfg.Rate <= 0 {
		<-s.stop
		return
	}
	interval := func() time.Duration {
		if s.cfg.Poisson {
			return time.Duration(s.rng.ExpFloat64() / s.cfg.Rate * float64(time.Second))
		}
		return time.Duration(float64(time.Second) / s.cfg.Rate)
	}
	timer := time.NewTimer(time.Duration(s.rng.Float64() * float64(interval())))
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C:
			admitted := s.publish(s.payload)
			s.mu.Lock()
			s.stats.Offered++
			if admitted {
				s.stats.Admitted++
			}
			s.mu.Unlock()
			timer.Reset(interval())
		}
	}
}

// Stop halts the publisher and waits for its goroutine.
func (s *TimedSender) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// Stats returns the offered/admitted counters.
func (s *TimedSender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Resize is one step of a buffer-resize schedule: at offset At from the
// experiment start, the nodes with the given indexes set their buffer
// capacity to Capacity. This encodes the paper's §4 dynamic scenario
// (20% of nodes shrink 90→45, later grow 45→60).
type Resize struct {
	At       time.Duration
	Nodes    []int
	Capacity int
}

// Validate reports the first schedule error given the group size.
func (r Resize) Validate(groupSize int) error {
	if r.At < 0 {
		return fmt.Errorf("workload: resize offset must be non-negative, got %v", r.At)
	}
	if r.Capacity <= 0 {
		return fmt.Errorf("workload: resize capacity must be positive, got %d", r.Capacity)
	}
	for _, idx := range r.Nodes {
		if idx < 0 || idx >= groupSize {
			return fmt.Errorf("workload: resize node index %d out of range [0,%d)", idx, groupSize)
		}
	}
	return nil
}

// Crash is one step of a failure schedule: at offset At the nodes with
// the given indexes become unreachable (their messages are dropped in
// both directions). Gossip's probabilistic guarantees should degrade
// only marginally — the resilience property the paper's §2 background
// relies on.
type Crash struct {
	At    time.Duration
	Nodes []int
}

// Validate reports the first schedule error given the group size.
func (c Crash) Validate(groupSize int) error {
	if c.At < 0 {
		return fmt.Errorf("workload: crash offset must be non-negative, got %v", c.At)
	}
	for _, idx := range c.Nodes {
		if idx < 0 || idx >= groupSize {
			return fmt.Errorf("workload: crash node index %d out of range [0,%d)", idx, groupSize)
		}
	}
	return nil
}

// Restart is one step of a churn schedule: at offset At the nodes with
// the given indexes come back up after a crash — they become reachable
// again, resume ticking and (if publishers) resume offering load. A
// restarted process rejoins with a fresh detector state and a bumped
// incarnation, like a real process restart with a static seed list.
type Restart struct {
	At    time.Duration
	Nodes []int
}

// Validate reports the first schedule error given the group size.
func (r Restart) Validate(groupSize int) error {
	if r.At < 0 {
		return fmt.Errorf("workload: restart offset must be non-negative, got %v", r.At)
	}
	for _, idx := range r.Nodes {
		if idx < 0 || idx >= groupSize {
			return fmt.Errorf("workload: restart node index %d out of range [0,%d)", idx, groupSize)
		}
	}
	return nil
}

// ChurnTrace generates a deterministic crash/restart schedule: churn
// events arrive at exponential intervals with the given rate (events
// per second) over [start, start+window); each event crashes one
// currently-up node chosen uniformly at random (node 0 is spared so at
// least one publisher survives every trace) and schedules its restart
// downFor later. The trace is reproducible from the seed.
func ChurnTrace(n int, rate float64, downFor, start, window time.Duration, seed int64) ([]Crash, []Restart) {
	if n < 2 || rate <= 0 || window <= 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewPCG(uint64(seed)^0xC0FFEE, uint64(seed)+0x51DE))
	// downUntil[i] > t means node i is still down at event time t.
	downUntil := make([]time.Duration, n)
	var crashes []Crash
	var restarts []Restart
	t := start
	for {
		t += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if t >= start+window {
			break
		}
		// Pick a currently-up victim other than node 0; give up after a
		// few draws if nearly everyone is already down.
		victim := -1
		for attempt := 0; attempt < 8; attempt++ {
			cand := 1 + rng.IntN(n-1)
			if downUntil[cand] <= t {
				victim = cand
				break
			}
		}
		if victim < 0 {
			continue
		}
		downUntil[victim] = t + downFor
		crashes = append(crashes, Crash{At: t, Nodes: []int{victim}})
		restarts = append(restarts, Restart{At: t + downFor, Nodes: []int{victim}})
	}
	return crashes, restarts
}

// Join is one step of a membership-growth schedule: at offset At the
// nodes with the given indexes enter the group — they become gossip
// targets, start ticking and (if publishers) start offering load. The
// paper's §2.2 names dynamic joins as one reason resources change at
// run time.
type Join struct {
	At    time.Duration
	Nodes []int
}

// Validate reports the first schedule error given the group size.
func (j Join) Validate(groupSize int) error {
	if j.At < 0 {
		return fmt.Errorf("workload: join offset must be non-negative, got %v", j.At)
	}
	for _, idx := range j.Nodes {
		if idx < 0 || idx >= groupSize {
			return fmt.Errorf("workload: join node index %d out of range [0,%d)", idx, groupSize)
		}
	}
	return nil
}

// FirstFraction returns the indexes of the first fraction×n nodes — the
// paper's "20% of the nodes" selection.
func FirstFraction(n int, fraction float64) []int {
	k := int(fraction * float64(n))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

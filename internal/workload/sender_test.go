package workload

import (
	"testing"
	"time"

	"adaptivegossip/internal/sim"
)

func TestSenderConfigValidate(t *testing.T) {
	if err := (SenderConfig{Rate: -1}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := (SenderConfig{PayloadSize: -1}).Validate(); err == nil {
		t.Fatal("negative payload accepted")
	}
	if err := (SenderConfig{Rate: 5, PayloadSize: 8}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimSenderEmitsAtRate(t *testing.T) {
	sched := sim.NewScheduler(sim.Epoch)
	var got int
	s, err := StartSimSender(sched, SenderConfig{Rate: 10, PayloadSize: 4},
		func(p []byte) bool {
			if len(p) != 4 {
				t.Fatalf("payload size %d", len(p))
			}
			got++
			return true
		}, sim.DeriveRNG(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.Epoch.Add(10 * time.Second))
	// 10 msg/s for 10s ⇒ ~100 emissions (±1 for phase).
	if got < 98 || got > 101 {
		t.Fatalf("emitted %d, want ≈100", got)
	}
	st := s.Stats()
	if st.Offered != uint64(got) || st.Admitted != uint64(got) {
		t.Fatalf("stats %+v", st)
	}
}

func TestSimSenderCountsRejections(t *testing.T) {
	sched := sim.NewScheduler(sim.Epoch)
	admit := false
	s, err := StartSimSender(sched, SenderConfig{Rate: 5},
		func([]byte) bool {
			admit = !admit
			return admit
		}, sim.DeriveRNG(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.Epoch.Add(10 * time.Second))
	st := s.Stats()
	if st.Offered == 0 || st.Admitted*2 < st.Offered-1 || st.Admitted*2 > st.Offered+1 {
		t.Fatalf("stats %+v, want ≈half admitted", st)
	}
}

func TestSimSenderPoissonApproximatesRate(t *testing.T) {
	sched := sim.NewScheduler(sim.Epoch)
	var got int
	_, err := StartSimSender(sched, SenderConfig{Rate: 20, Poisson: true},
		func([]byte) bool { got++; return true }, sim.DeriveRNG(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.Epoch.Add(60 * time.Second))
	// 20 msg/s × 60 s = 1200 expected; Poisson std ≈ 35.
	if got < 1050 || got > 1350 {
		t.Fatalf("emitted %d, want ≈1200", got)
	}
}

func TestSimSenderStop(t *testing.T) {
	sched := sim.NewScheduler(sim.Epoch)
	var got int
	s, err := StartSimSender(sched, SenderConfig{Rate: 10},
		func([]byte) bool { got++; return true }, sim.DeriveRNG(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.Epoch.Add(time.Second))
	s.Stop()
	before := got
	sched.RunUntil(sim.Epoch.Add(10 * time.Second))
	if got != before {
		t.Fatalf("sender emitted after Stop: %d -> %d", before, got)
	}
}

func TestSimSenderZeroRateNeverEmits(t *testing.T) {
	sched := sim.NewScheduler(sim.Epoch)
	_, err := StartSimSender(sched, SenderConfig{Rate: 0},
		func([]byte) bool { t.Fatal("emitted"); return true }, sim.DeriveRNG(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.Epoch.Add(time.Minute))
}

func TestSimSenderValidation(t *testing.T) {
	sched := sim.NewScheduler(sim.Epoch)
	if _, err := StartSimSender(nil, SenderConfig{Rate: 1}, func([]byte) bool { return true }, sim.DeriveRNG(1, 1)); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := StartSimSender(sched, SenderConfig{Rate: 1}, nil, sim.DeriveRNG(1, 1)); err == nil {
		t.Fatal("nil publish accepted")
	}
	if _, err := StartSimSender(sched, SenderConfig{Rate: -2}, func([]byte) bool { return true }, sim.DeriveRNG(1, 1)); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestTimedSenderEmitsAndStops(t *testing.T) {
	got := make(chan struct{}, 1000)
	s, err := StartTimedSender(SenderConfig{Rate: 200},
		func([]byte) bool {
			select {
			case got <- struct{}{}:
			default:
			}
			return true
		}, 7)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(3 * time.Second)
	for i := 0; i < 5; i++ {
		select {
		case <-got:
		case <-deadline:
			t.Fatal("sender too slow")
		}
	}
	s.Stop()
	s.Stop() // idempotent
	st := s.Stats()
	if st.Offered < 5 || st.Admitted < 5 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTimedSenderValidation(t *testing.T) {
	if _, err := StartTimedSender(SenderConfig{Rate: 1}, nil, 1); err == nil {
		t.Fatal("nil publish accepted")
	}
	if _, err := StartTimedSender(SenderConfig{Rate: -1}, func([]byte) bool { return true }, 1); err == nil {
		t.Fatal("bad config accepted")
	}
	// Zero rate: starts and stops cleanly without emitting.
	s, err := StartTimedSender(SenderConfig{Rate: 0}, func([]byte) bool {
		t.Error("zero-rate sender emitted")
		return true
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	s.Stop()
}

func TestResizeValidate(t *testing.T) {
	ok := Resize{At: time.Second, Nodes: []int{0, 5}, Capacity: 10}
	if err := ok.Validate(10); err != nil {
		t.Fatal(err)
	}
	cases := []Resize{
		{At: -time.Second, Capacity: 10},
		{At: 0, Capacity: 0},
		{At: 0, Capacity: 5, Nodes: []int{-1}},
		{At: 0, Capacity: 5, Nodes: []int{10}},
	}
	for i, r := range cases {
		if err := r.Validate(10); err == nil {
			t.Errorf("case %d accepted: %+v", i, r)
		}
	}
}

func TestCrashAndJoinValidate(t *testing.T) {
	if err := (Crash{At: time.Second, Nodes: []int{0}}).Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := (Crash{At: -1, Nodes: []int{0}}).Validate(4); err == nil {
		t.Fatal("negative crash offset accepted")
	}
	if err := (Crash{Nodes: []int{4}}).Validate(4); err == nil {
		t.Fatal("out-of-range crash index accepted")
	}
	if err := (Join{At: time.Second, Nodes: []int{3}}).Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := (Join{At: -1}).Validate(4); err == nil {
		t.Fatal("negative join offset accepted")
	}
	if err := (Join{Nodes: []int{-1}}).Validate(4); err == nil {
		t.Fatal("negative join index accepted")
	}
}

func TestFirstFraction(t *testing.T) {
	if got := FirstFraction(60, 0.2); len(got) != 12 || got[0] != 0 || got[11] != 11 {
		t.Fatalf("FirstFraction(60, 0.2) = %v", got)
	}
	if got := FirstFraction(10, 0); len(got) != 0 {
		t.Fatalf("zero fraction: %v", got)
	}
	if got := FirstFraction(10, 2.0); len(got) != 10 {
		t.Fatalf("overshoot fraction: %v", got)
	}
	if got := FirstFraction(10, -1); len(got) != 0 {
		t.Fatalf("negative fraction: %v", got)
	}
}

func TestRestartValidate(t *testing.T) {
	if err := (Restart{At: time.Second, Nodes: []int{1}}).Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := (Restart{At: -1}).Validate(4); err == nil {
		t.Fatal("negative restart offset accepted")
	}
	if err := (Restart{Nodes: []int{4}}).Validate(4); err == nil {
		t.Fatal("out-of-range restart index accepted")
	}
}

func TestChurnTraceShape(t *testing.T) {
	const n = 20
	down := 60 * time.Second
	crashes, restarts := ChurnTrace(n, 2.0/60, down, 30*time.Second, 300*time.Second, 7)
	if len(crashes) == 0 {
		t.Fatal("empty trace at 2 events/min over 5 minutes")
	}
	if len(crashes) != len(restarts) {
		t.Fatalf("%d crashes but %d restarts", len(crashes), len(restarts))
	}
	downAt := make(map[int]time.Duration)
	for i, c := range crashes {
		if err := c.Validate(n); err != nil {
			t.Fatal(err)
		}
		if len(c.Nodes) != 1 || c.Nodes[0] == 0 {
			t.Fatalf("crash %d hits %v; node 0 must be spared", i, c.Nodes)
		}
		if i > 0 && c.At < crashes[i-1].At {
			t.Fatal("crashes out of time order")
		}
		// No node is crashed while already down.
		if until, isDown := downAt[c.Nodes[0]]; isDown && c.At < until {
			t.Fatalf("node %d crashed at %v while down until %v", c.Nodes[0], c.At, until)
		}
		downAt[c.Nodes[0]] = c.At + down
	}
	for i, r := range restarts {
		if r.At != crashes[i].At+down {
			t.Fatalf("restart %d at %v, want crash+%v", i, r.At, down)
		}
	}
	// Determinism: same seed, same trace.
	c2, r2 := ChurnTrace(n, 2.0/60, down, 30*time.Second, 300*time.Second, 7)
	if len(c2) != len(crashes) || len(r2) != len(restarts) {
		t.Fatal("trace not deterministic")
	}
	for i := range c2 {
		if c2[i].At != crashes[i].At || c2[i].Nodes[0] != crashes[i].Nodes[0] {
			t.Fatal("trace not deterministic")
		}
	}
	// A different seed should differ.
	c3, _ := ChurnTrace(n, 2.0/60, down, 30*time.Second, 300*time.Second, 8)
	same := len(c3) == len(crashes)
	if same {
		for i := range c3 {
			if c3[i].At != crashes[i].At || c3[i].Nodes[0] != crashes[i].Nodes[0] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestChurnTraceDegenerate(t *testing.T) {
	if c, r := ChurnTrace(1, 1, time.Second, 0, time.Minute, 1); c != nil || r != nil {
		t.Fatal("n=1 should yield no trace")
	}
	if c, r := ChurnTrace(10, 0, time.Second, 0, time.Minute, 1); c != nil || r != nil {
		t.Fatal("rate=0 should yield no trace")
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAlloc enforces the zero-allocation round contract statically:
// a function annotated //gossip:hotpath — and every module function it
// transitively calls through statically-resolved edges — must not
// contain heap-allocating constructs. The dynamic counterpart is the
// AllocsPerRun suite (TestNodeTickAllocFree et al.); this analyzer
// catches the regression at compile time, in the branch the benchmark
// didn't happen to take.
//
// Flagged constructs: make/new, map and slice literals, &-escaped
// composite literals, closures that capture variables, interface
// boxing (in call arguments, assignments, returns and channel sends),
// fmt-family calls, string concatenation and string<->[]byte/[]rune
// conversions, appends that do not reuse their destination, and `go`
// statements. Cold branches (error paths, panics that should never
// fire) are exempted with //gossip:allocok <reason> on the statement
// or the whole function.
//
// Call-graph notes: edges are resolved statically from type
// information (direct calls and concrete-receiver method calls).
// Dynamic dispatch — interface method calls, function values — is not
// followed; implementations reachable only dynamically (Extension
// hooks, DeliverFunc callbacks) carry their own //gossip:hotpath
// annotation, and the AllocsPerRun tests remain the dynamic backstop.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid heap allocation in //gossip:hotpath functions and their in-module callees",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	if pass.Module == nil {
		// Single-unit (vettool) mode: degrade to the annotated functions
		// of this package plus same-package transitive callees.
		m := &Module{Fset: pass.Fset, Pkgs: map[string]*Package{pass.Pkg.Path(): {
			Path: pass.Pkg.Path(), Fset: pass.Fset, Files: pass.Files,
			Pkg: pass.Pkg, Info: pass.Info, Directives: pass.Directives,
		}}, Paths: []string{pass.Pkg.Path()}}
		ha := analyzeHot(m)
		ha.report(pass)
		return nil
	}
	hotCacheMu(pass.Module).report(pass)
	return nil
}

var hotCache = map[*Module]*hotAnalysis{}

func hotCacheMu(m *Module) *hotAnalysis {
	if ha, ok := hotCache[m]; ok {
		return ha
	}
	ha := analyzeHot(m)
	hotCache[m] = ha
	return ha
}

// funcDecl ties a declared function to its package.
type funcDecl struct {
	decl *ast.FuncDecl
	pkg  *Package
}

type hotAnalysis struct {
	fset *token.FileSet
	// index of all module function declarations by canonical object
	index map[*types.Func]funcDecl
	// hot closure: function -> the call edge that made it hot (nil for roots)
	hotVia map[*types.Func]*types.Func
	// diagnostics keyed by declaring package path
	diags map[string][]Diagnostic
}

func (ha *hotAnalysis) report(pass *Pass) {
	for _, d := range ha.diags[pass.Pkg.Path()] {
		d.Analyzer = pass.Analyzer.Name
		*pass.diags = append(*pass.diags, d)
	}
}

func analyzeHot(m *Module) *hotAnalysis {
	ha := &hotAnalysis{
		fset:   m.Fset,
		index:  map[*types.Func]funcDecl{},
		hotVia: map[*types.Func]*types.Func{},
		diags:  map[string][]Diagnostic{},
	}

	var roots []*types.Func
	m.EachPackage(func(p *Package) {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				obj = obj.Origin()
				ha.index[obj] = funcDecl{decl: fd, pkg: p}
				if _, ok := p.Directives.FuncDirective(fd, DirHotPath); ok {
					roots = append(roots, obj)
				}
			}
		}
	})

	// BFS over statically-resolved in-module call edges. Edges that
	// originate inside an allocok region are cold by declaration and do
	// not extend the hot closure.
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if _, seen := ha.hotVia[r]; !seen {
			ha.hotVia[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd := ha.index[fn]
		if _, whole := fd.pkg.Directives.FuncDirective(fd.decl, DirAllocOK); whole {
			continue // entire function declared cold: don't even follow its calls
		}
		for _, callee := range ha.callees(fd) {
			if _, seen := ha.hotVia[callee]; seen {
				continue
			}
			ha.hotVia[callee] = fn
			queue = append(queue, callee)
		}
	}

	// Scan every hot function for allocating constructs.
	for fn := range ha.hotVia {
		ha.scanFunc(fn)
	}
	for path := range ha.diags {
		SortDiagnostics(m.Fset, ha.diags[path])
	}
	return ha
}

// callees returns the statically-resolved in-module callees of fd,
// excluding calls inside allocok-suppressed statements.
func (ha *hotAnalysis) callees(fd funcDecl) []*types.Func {
	var out []*types.Func
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fd.pkg.Directives.Suppressed(DirAllocOK, fd.decl, call) {
			return true
		}
		callee := staticCallee(fd.pkg.Info, call)
		if callee == nil {
			return true
		}
		if _, inModule := ha.index[callee]; inModule {
			out = append(out, callee)
		}
		return true
	})
	return out
}

// staticCallee resolves a call to its *types.Func when the target is
// statically known: a package function, or a method called on a
// concrete (non-interface) receiver. Dynamic calls resolve to nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if _, dynamic := sel.Recv().Underlying().(*types.Interface); dynamic {
				return nil
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn.Origin()
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok { // pkg-qualified call
			return fn.Origin()
		}
	}
	return nil
}

// hotChain renders how fn became hot: the BFS path back to its
// //gossip:hotpath root.
func (ha *hotAnalysis) hotChain(fn *types.Func) string {
	var hops []string
	for cur := fn; ; {
		parent, ok := ha.hotVia[cur]
		if !ok || parent == nil {
			if cur == fn {
				return "declared //gossip:hotpath"
			}
			hops = append(hops, funcString(cur))
			break
		}
		if cur != fn {
			hops = append(hops, funcString(cur))
		}
		cur = parent
	}
	// hops is callee..root; reverse into root..callee.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	if len(hops) > 4 {
		hops = append(hops[:1], append([]string{"…"}, hops[len(hops)-2:]...)...)
	}
	return "reached from //gossip:hotpath " + strings.Join(hops, " → ")
}

// funcString renders pkg.(*Recv).Name for diagnostics.
func funcString(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		s := types.TypeString(recv, func(p *types.Package) string { return "" })
		if strings.HasPrefix(s, "*") {
			return fmt.Sprintf("%s.(*%s).%s", fn.Pkg().Name(), strings.TrimPrefix(s, "*"), name)
		}
		return fmt.Sprintf("%s.%s.%s", fn.Pkg().Name(), s, name)
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

func (ha *hotAnalysis) scanFunc(fn *types.Func) {
	fd, ok := ha.index[fn]
	if !ok {
		return
	}
	if _, whole := fd.pkg.Directives.FuncDirective(fd.decl, DirAllocOK); whole {
		return
	}
	chain := ha.hotChain(fn)
	report := func(pos token.Pos, node ast.Node, format string, args ...any) {
		if fd.pkg.Directives.Suppressed(DirAllocOK, fd.decl, node) {
			return
		}
		msg := fmt.Sprintf(format, args...)
		ha.diags[fd.pkg.Path] = append(ha.diags[fd.pkg.Path], Diagnostic{
			Pos:     pos,
			Message: fmt.Sprintf("%s in hot path (%s in %s; annotate //gossip:allocok if this is a cold branch)", msg, chain, funcString(fn)),
		})
	}
	scanAllocs(fd.pkg.Info, fd.decl, report)
}

// scanAllocs walks one function body and reports allocating constructs
// through report.
func scanAllocs(info *types.Info, fd *ast.FuncDecl, report func(pos token.Pos, node ast.Node, format string, args ...any)) {
	// Seed the stack with the declaration itself so enclosing-function
	// lookups (isParamOf) work for code outside any func literal.
	stack := []ast.Node{fd}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch node := n.(type) {
		case *ast.CallExpr:
			scanCall(info, node, stack, report)
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					report(node.Pos(), node, "heap allocation: &-escaped composite literal")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(node).Underlying().(type) {
			case *types.Slice:
				report(node.Pos(), node, "heap allocation: slice literal")
			case *types.Map:
				report(node.Pos(), node, "heap allocation: map literal")
			}
		case *ast.FuncLit:
			if hostedByNonEscapingCall(info, node, stack) {
				break
			}
			if captured := capturedVars(info, node); len(captured) > 0 {
				report(node.Pos(), node, "closure captures %s (closure environments heap-allocate)", strings.Join(captured, ", "))
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isString(info.TypeOf(node)) {
				report(node.Pos(), node, "heap allocation: string concatenation")
			}
		case *ast.AssignStmt:
			scanAssignBoxing(info, node, report)
		case *ast.ReturnStmt:
			scanReturnBoxing(info, fd, node, report)
		case *ast.SendStmt:
			if ch, ok := info.TypeOf(node.Chan).Underlying().(*types.Chan); ok {
				if boxes(info, node.Value, ch.Elem()) {
					report(node.Value.Pos(), node, "interface boxing: sending %s into chan %s", info.TypeOf(node.Value), ch.Elem())
				}
			}
		case *ast.GoStmt:
			report(node.Pos(), node, "go statement (goroutine start allocates)")
		}
		return true
	})
}

func scanCall(info *types.Info, call *ast.CallExpr, stack []ast.Node, report func(pos token.Pos, node ast.Node, format string, args ...any)) {
	fun := ast.Unparen(call.Fun)
	tv, ok := info.Types[fun]
	if !ok {
		return
	}
	// Conversions.
	if tv.IsType() {
		scanConversion(info, call, report)
		return
	}
	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call.Pos(), call, "heap allocation: make")
			case "new":
				report(call.Pos(), call, "heap allocation: new")
			case "append":
				if !appendReusesDst(info, call, stack) {
					report(call.Pos(), call, "append does not reuse its destination (grows into a fresh backing array)")
				}
			}
			return
		}
	}
	// fmt-family calls.
	if callee := staticCallee(info, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		report(call.Pos(), call, "fmt.%s call (fmt formats through reflection and allocates)", callee.Name())
		// fall through: still check args for boxing (the []any spread).
	}
	// Interface boxing in arguments.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	scanArgBoxing(info, call, sig, report)
}

func scanConversion(info *types.Info, call *ast.CallExpr, report func(pos token.Pos, node ast.Node, format string, args ...any)) {
	if len(call.Args) != 1 {
		return
	}
	dst := info.TypeOf(call)
	src := info.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	dstU, srcU := dst.Underlying(), src.Underlying()
	if isString(srcU) {
		if sl, ok := dstU.(*types.Slice); ok && isByteOrRune(sl.Elem()) {
			report(call.Pos(), call, "heap allocation: string to %s conversion", dst)
		}
	}
	if isString(dstU) {
		if sl, ok := srcU.(*types.Slice); ok && isByteOrRune(sl.Elem()) {
			report(call.Pos(), call, "heap allocation: %s to string conversion", src)
		}
	}
	if _, ok := dstU.(*types.Interface); ok && boxes(info, call.Args[0], dst) {
		report(call.Pos(), call, "interface boxing: converting %s to %s", src, dst)
	}
}

func scanArgBoxing(info *types.Info, call *ast.CallExpr, sig *types.Signature, report func(pos token.Pos, node ast.Node, format string, args ...any)) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(info, arg, pt) {
			report(arg.Pos(), call, "interface boxing: passing %s as %s", info.TypeOf(arg), pt)
		}
	}
}

func scanAssignBoxing(info *types.Info, as *ast.AssignStmt, report func(pos token.Pos, node ast.Node, format string, args ...any)) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := info.TypeOf(as.Lhs[i])
		if lt == nil {
			continue
		}
		if boxes(info, as.Rhs[i], lt) {
			report(as.Rhs[i].Pos(), as, "interface boxing: assigning %s to %s", info.TypeOf(as.Rhs[i]), lt)
		}
	}
}

func scanReturnBoxing(info *types.Info, fd *ast.FuncDecl, ret *ast.ReturnStmt, report func(pos token.Pos, node ast.Node, format string, args ...any)) {
	if fd.Type.Results == nil || len(ret.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, field := range fd.Type.Results.List {
		t := info.TypeOf(field.Type)
		n := max(len(field.Names), 1)
		for range n {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // f() returning multiple values; no per-expr mapping
	}
	for i, res := range ret.Results {
		if boxes(info, res, resultTypes[i]) {
			report(res.Pos(), ret, "interface boxing: returning %s as %s", info.TypeOf(res), resultTypes[i])
		}
	}
}

// boxes reports whether assigning expr to a target of type dst performs
// an allocating interface conversion: dst is an interface, expr's type
// is concrete, and the value is not pointer-shaped (pointers, channels,
// maps and funcs fit an interface word directly).
func boxes(info *types.Info, expr ast.Expr, dst types.Type) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	src := tv.Type
	if _, ok := src.Underlying().(*types.Interface); ok {
		return false
	}
	switch u := src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
	case *types.TypeParam:
		return false
	}
	return true
}

// appendReusesDst recognizes the amortized-zero-alloc append shapes:
//
//	x = append(x, ...)
//	x = append(x[:0], ...)
//	x = append(x[:n:m], ...)
//	return append(param, ...)   // append-style helper
//
// The assignment forms write the result back over the slice they grew;
// the return form hands the grown parameter back to a caller that
// assigns it over its own destination, which is the same amortized
// contract one frame up. Anything else — append into a fresh variable,
// append passed straight to a call — produces a new backing array the
// moment it grows.
func appendReusesDst(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	dst := ast.Unparen(call.Args[0])
	if sl, ok := dst.(*ast.SliceExpr); ok {
		dst = ast.Unparen(sl.X)
	}
	// Find the nearest enclosing statement-level parent of the call.
	var parent ast.Node
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		parent = stack[i]
		break
	}
	switch p := parent.(type) {
	case *ast.AssignStmt:
		dstStr := types.ExprString(dst)
		for _, lhs := range p.Lhs {
			if types.ExprString(ast.Unparen(lhs)) == dstStr {
				return true
			}
		}
	case *ast.ReturnStmt:
		if id, ok := dst.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && isParamOf(v, stack) {
				return true
			}
		}
	}
	return false
}

// isParamOf reports whether v is declared in the parameter or result
// list of the innermost function enclosing the walk position.
func isParamOf(v *types.Var, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			ft = fn.Type
		case *ast.FuncDecl:
			ft = fn.Type
		default:
			continue
		}
		return ft.Params != nil && ft.Params.Pos() <= v.Pos() && v.Pos() <= ft.End()
	}
	return false
}

// nonEscapingClosureHosts are stdlib functions documented to call their
// func argument and discard it. A closure literal passed directly to
// one never escapes, so Go's escape analysis keeps its environment on
// the stack — no heap allocation despite the captures. The AllocsPerRun
// suite is the dynamic backstop for this assumption.
var nonEscapingClosureHosts = map[string]bool{
	"sort.Search":             true,
	"sort.Find":               true,
	"sort.Slice":              true,
	"sort.SliceStable":        true,
	"sort.SliceIsSorted":      true,
	"slices.SortFunc":         true,
	"slices.SortStableFunc":   true,
	"slices.BinarySearchFunc": true,
	"slices.IndexFunc":        true,
	"slices.ContainsFunc":     true,
}

// hostedByNonEscapingCall reports whether lit is a direct argument of a
// call to a known non-retaining stdlib function.
func hostedByNonEscapingCall(info *types.Info, lit *ast.FuncLit, stack []ast.Node) bool {
	var call *ast.CallExpr
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		call, _ = stack[i].(*ast.CallExpr)
		break
	}
	if call == nil {
		return false
	}
	isArg := false
	for _, arg := range call.Args {
		if ast.Unparen(arg) == ast.Expr(lit) {
			isArg = true
			break
		}
	}
	if !isArg {
		return false
	}
	callee := staticCallee(info, call)
	return callee != nil && nonEscapingClosureHosts[callee.FullName()]
}

func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	seen := map[*types.Var]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] {
			return true
		}
		if v.IsField() {
			return true
		}
		scope := v.Parent()
		if scope == nil || scope == types.Universe {
			return true
		}
		if v.Pkg() != nil && scope == v.Pkg().Scope() {
			return true // package-level vars are not captured
		}
		// Declared outside the literal but used inside it: a capture.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v] = true
			names = append(names, v.Name())
		}
		return true
	})
	return names
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Directive names recognized by the suite. Anything else after
// "//gossip:" is a diagnosable typo — silent no-ops are how annotation
// regimes rot.
const (
	DirHotPath   = "hotpath"   // function: no allocation in it or its in-module callees
	DirScratch   = "scratch"   // function: reference-typed results are per-round scratch
	DirAllocOK   = "allocok"   // function or statement: allocation here is a known cold branch
	DirAtomicOK  = "atomicok"  // function or statement: plain access to an atomic field is deliberate
	DirScratchOK = "scratchok" // function or statement: this scratch flow is protected by a protocol the analyzer cannot see
)

var knownDirectives = map[string]bool{
	DirHotPath:   true,
	DirScratch:   true,
	DirAllocOK:   true,
	DirAtomicOK:  true,
	DirScratchOK: true,
}

// needsReason marks suppression directives whose free-text justification
// is mandatory: an unexplained exemption is indistinguishable from a
// stale one.
var needsReason = map[string]bool{
	DirAllocOK:   true,
	DirAtomicOK:  true,
	DirScratchOK: true,
}

// declOnly marks directives that must sit in a function declaration's
// doc comment; the rest may also annotate individual statements.
var declOnly = map[string]bool{
	DirHotPath: true,
	DirScratch: true,
}

// Directive is one parsed //gossip: comment, attached to a function
// declaration (Fn) or to a statement (Stmt).
type Directive struct {
	Name string
	Arg  string // trailing free text: the reason for allocok/atomicok
	Pos  token.Pos
	Fn   *ast.FuncDecl
	Stmt ast.Stmt
}

// Problem is a malformed or misplaced directive.
type Problem struct {
	Pos     token.Pos
	Message string
}

// DirectiveSet is the parsed directive view of one package.
type DirectiveSet struct {
	// ByFunc maps annotated function declarations to their directives.
	ByFunc map[*ast.FuncDecl][]*Directive
	// StmtLevel holds directives attached to individual statements.
	StmtLevel []*Directive
	// Problems are the malformed directives; the directive analyzer
	// reports them.
	Problems []Problem
}

// FuncDirective returns fn's directive of the given name, if any.
func (ds *DirectiveSet) FuncDirective(fn *ast.FuncDecl, name string) (*Directive, bool) {
	for _, d := range ds.ByFunc[fn] {
		if d.Name == name {
			return d, true
		}
	}
	return nil, false
}

// Suppressed reports whether node (inside fn) is covered by a directive
// of the given name: either fn's declaration carries it, or a statement
// carrying it encloses the node.
func (ds *DirectiveSet) Suppressed(name string, fn *ast.FuncDecl, node ast.Node) bool {
	if fn != nil {
		if _, ok := ds.FuncDirective(fn, name); ok {
			return true
		}
	}
	for _, d := range ds.StmtLevel {
		if d.Name != name || d.Stmt == nil {
			continue
		}
		if d.Stmt.Pos() <= node.Pos() && node.End() <= d.Stmt.End() {
			return true
		}
	}
	return false
}

// ParseDirectives extracts and validates the //gossip: directives of a
// package's files. Placement is strict: hotpath and scratch belong in a
// function declaration's doc comment; allocok and atomicok belong there
// or on (or immediately above) the statement they exempt.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *DirectiveSet {
	ds := &DirectiveSet{ByFunc: map[*ast.FuncDecl][]*Directive{}}
	for _, file := range files {
		parseFileDirectives(fset, file, ds)
	}
	return ds
}

func parseFileDirectives(fset *token.FileSet, file *ast.File, ds *DirectiveSet) {
	// Comments consumed as part of a declaration's doc group.
	consumed := map[*ast.Comment]*ast.FuncDecl{}
	misplacedDoc := map[*ast.Comment]string{} // doc position on a non-func decl

	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Doc != nil {
				for _, c := range d.Doc.List {
					consumed[c] = d
				}
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				for _, c := range d.Doc.List {
					misplacedDoc[c] = d.Tok.String()
				}
			}
		}
	}

	for _, group := range file.Comments {
		for _, c := range group.List {
			name, arg, ok := splitDirective(c.Text)
			if !ok {
				continue
			}
			if !knownDirectives[name] {
				ds.Problems = append(ds.Problems, Problem{
					Pos: c.Pos(),
					Message: fmt.Sprintf("unknown gossip directive %q (known: %s, %s, %s, %s, %s)",
						name, DirHotPath, DirScratch, DirAllocOK, DirAtomicOK, DirScratchOK),
				})
				continue
			}
			if needsReason[name] && arg == "" {
				ds.Problems = append(ds.Problems, Problem{
					Pos:     c.Pos(),
					Message: fmt.Sprintf("//gossip:%s needs a justification: //gossip:%s <why this exemption is sound>", name, name),
				})
				continue
			}
			if fn, ok := consumed[c]; ok {
				dir := &Directive{Name: name, Arg: arg, Pos: c.Pos(), Fn: fn}
				if dup, has := ds.FuncDirective(fn, name); has {
					ds.Problems = append(ds.Problems, Problem{
						Pos:     c.Pos(),
						Message: fmt.Sprintf("duplicate //gossip:%s directive on %s (first at %s)", name, fn.Name.Name, fset.Position(dup.Pos)),
					})
					continue
				}
				ds.ByFunc[fn] = append(ds.ByFunc[fn], dir)
				continue
			}
			if tok, ok := misplacedDoc[c]; ok {
				ds.Problems = append(ds.Problems, Problem{
					Pos:     c.Pos(),
					Message: fmt.Sprintf("//gossip:%s cannot annotate a %s declaration; it belongs on a function declaration%s", name, tok, stmtHint(name)),
				})
				continue
			}
			if declOnly[name] {
				ds.Problems = append(ds.Problems, Problem{
					Pos:     c.Pos(),
					Message: fmt.Sprintf("//gossip:%s must be part of a function declaration's doc comment", name),
				})
				continue
			}
			stmt := attachStmt(fset, file, c)
			if stmt == nil {
				ds.Problems = append(ds.Problems, Problem{
					Pos:     c.Pos(),
					Message: fmt.Sprintf("//gossip:%s is not attached to any statement or function declaration", name),
				})
				continue
			}
			ds.StmtLevel = append(ds.StmtLevel, &Directive{Name: name, Arg: arg, Pos: c.Pos(), Stmt: stmt})
		}
	}
}

func stmtHint(name string) string {
	if declOnly[name] {
		return ""
	}
	return " or a statement"
}

// splitDirective recognizes "//gossip:<name>[ arg]" comments. Go
// directive convention: no space between // and gossip.
func splitDirective(text string) (name, arg string, ok bool) {
	const prefix = "//gossip:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	name, arg, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(arg), true
}

// attachStmt finds the statement a line-level directive annotates: the
// outermost statement starting on the comment's own line (trailing
// comment) or on the line right below it (leading comment).
func attachStmt(fset *token.FileSet, file *ast.File, c *ast.Comment) ast.Stmt {
	cline := fset.Position(c.Pos()).Line
	var trailing, leading ast.Stmt
	ast.Inspect(file, func(n ast.Node) bool {
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		switch fset.Position(stmt.Pos()).Line {
		case cline:
			if stmt.Pos() < c.Pos() && trailing == nil {
				trailing = stmt
			}
		case cline + 1:
			if leading == nil {
				leading = stmt
			}
		}
		return true
	})
	if trailing != nil {
		return trailing
	}
	return leading
}

// DirectiveAnalyzer reports malformed, misplaced, unknown or
// semantically empty //gossip: directives. A directive that silently
// does nothing is worse than none at all: the annotation regime only
// holds if typos fail the build.
var DirectiveAnalyzer = &Analyzer{
	Name: "gossipdirective",
	Doc:  "validate //gossip: directive comments (placement, names, applicability)",
	Run:  runDirective,
}

func runDirective(pass *Pass) error {
	for _, p := range pass.Directives.Problems {
		pass.Reportf(p.Pos, "%s", p.Message)
	}
	// Semantic validation of well-placed directives.
	for fn, dirs := range pass.Directives.ByFunc {
		for _, d := range dirs {
			if d.Name == DirScratch && !hasReferenceResult(pass, fn) {
				pass.Reportf(d.Pos, "//gossip:scratch on %s, which returns no pointer-, slice- or map-typed results to be scratch", fn.Name.Name)
			}
			if d.Name == DirHotPath && fn.Body == nil {
				pass.Reportf(d.Pos, "//gossip:hotpath on %s, which has no body to check", fn.Name.Name)
			}
		}
	}
	return nil
}

func hasReferenceResult(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map:
			return true
		}
	}
	return false
}

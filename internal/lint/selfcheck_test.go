package lint_test

import (
	"path/filepath"
	"testing"

	"adaptivegossip/internal/lint"
)

// TestModuleIsClean runs every gossiplint analyzer over the real module,
// so `go test ./...` fails the moment a hot-path, scratch-lifetime or
// atomics contract regression lands. It is the same sweep CI runs via
// `make lint`; the AllocsPerRun benchmarks remain the dynamic backstop
// for the static hot-path claims.
//
// On the atomics side this test also records an audit result: non-test
// code in this module (internal/observe and internal/health included)
// uses typed atomics — atomic.Uint64 and friends — exclusively, so the
// mixed atomic/plain access and 32-bit alignment hazards atomicfield
// hunts are structurally absent today. The analyzer keeps it that way
// for any future raw sync/atomic use.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	m, err := lint.LoadModule(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := lint.Run(m, lint.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	lint.SortDiagnostics(m.Fset, diags)
	for _, d := range diags {
		pos := m.Fset.Position(d.Pos)
		t.Errorf("%s: %s (%s)", pos, d.Message, d.Analyzer)
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// cleansingMethods detach a value from the per-round scratch state: the
// result of calling one of these on a scratch value is an independent
// copy with its own lifetime.
var cleansingMethods = map[string]bool{
	"CopyForSend": true,
	"Clone":       true,
}

// scratchProducers returns the module's //gossip:scratch-annotated
// functions: calls to these yield per-round scratch values.
func scratchProducers(m *Module) map[*types.Func]bool {
	if p, ok := producerCache[m]; ok {
		return p
	}
	producers := map[*types.Func]bool{}
	m.EachPackage(func(p *Package) {
		for fn := range p.Directives.ByFunc {
			if _, ok := p.Directives.FuncDirective(fn, DirScratch); !ok {
				continue
			}
			if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
				producers[obj.Origin()] = true
			}
		}
	})
	producerCache[m] = producers
	return producers
}

var producerCache = map[*Module]map[*types.Func]bool{}

// LocalProducerNames returns the FullName of every //gossip:scratch
// function declared in p, for export as facts between vettool
// compilation units.
func LocalProducerNames(p *Package) []string {
	var names []string
	for fn := range p.Directives.ByFunc {
		if _, ok := p.Directives.FuncDirective(fn, DirScratch); !ok {
			continue
		}
		if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
			names = append(names, obj.Origin().FullName())
		}
	}
	return names
}

// passModule returns the whole-module view, or a single-package wrapper
// when running in vettool mode (one compilation unit at a time).
func passModule(pass *Pass) *Module {
	if pass.Module != nil {
		return pass.Module
	}
	path := pass.Pkg.Path()
	return &Module{
		Path: path,
		Fset: pass.Fset,
		Pkgs: map[string]*Package{path: {
			Path: path, Fset: pass.Fset, Files: pass.Files,
			Pkg: pass.Pkg, Info: pass.Info, Directives: pass.Directives,
		}},
		Paths: []string{path},
	}
}

// taint tracks, within one function, which local variables hold
// per-round scratch (values produced — directly or via assignment
// chains — by //gossip:scratch functions).
type taint struct {
	info      *types.Info
	producers map[*types.Func]bool
	// names holds producer identities imported as facts from other
	// compilation units (vettool mode), keyed by FullName.
	names map[string]bool
	objs  map[types.Object]bool
}

// newTaint runs a flow-insensitive fixpoint over fd's assignments.
func newTaint(info *types.Info, producers map[*types.Func]bool, names map[string]bool, fd *ast.FuncDecl) *taint {
	t := &taint{info: info, producers: producers, names: names, objs: map[types.Object]bool{}}
	if fd.Body == nil {
		return t
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				if len(node.Rhs) == 1 && len(node.Lhs) > 1 {
					// x, y := f(): a producer call taints every result.
					if t.expr(node.Rhs[0]) {
						for _, lhs := range node.Lhs {
							changed = t.markObj(lhs) || changed
						}
					}
					return true
				}
				for i := range node.Lhs {
					if i < len(node.Rhs) && t.expr(node.Rhs[i]) {
						changed = t.markObj(node.Lhs[i]) || changed
					}
				}
			case *ast.ValueSpec:
				for i, v := range node.Values {
					if t.expr(v) {
						if len(node.Names) == len(node.Values) {
							changed = t.markObj(node.Names[i]) || changed
						} else {
							for _, name := range node.Names {
								changed = t.markObj(name) || changed
							}
						}
					}
				}
			case *ast.RangeStmt:
				if t.expr(node.X) {
					if node.Key != nil {
						changed = t.markObj(node.Key) || changed
					}
					if node.Value != nil {
						changed = t.markObj(node.Value) || changed
					}
				}
			}
			return true
		})
	}
	return t
}

func (t *taint) markObj(lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := t.info.Defs[id]
	if obj == nil {
		obj = t.info.Uses[id]
	}
	if obj == nil || t.objs[obj] {
		return false
	}
	t.objs[obj] = true
	return true
}

// expr reports whether e evaluates to (or contains) scratch. Values of
// non-reference types (ints copied out of a scratch slice, lengths,
// field scalars) cannot retain scratch memory and are never tainted.
func (t *taint) expr(e ast.Expr) bool {
	if tp := t.info.TypeOf(e); tp != nil && !refLike(tp, nil) {
		return false
	}
	switch node := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := t.info.Uses[node]
		if obj == nil {
			obj = t.info.Defs[node]
		}
		return obj != nil && t.objs[obj]
	case *ast.SelectorExpr:
		return t.expr(node.X)
	case *ast.IndexExpr:
		return t.expr(node.X)
	case *ast.SliceExpr:
		return t.expr(node.X)
	case *ast.StarExpr:
		return t.expr(node.X)
	case *ast.UnaryExpr:
		return t.expr(node.X)
	case *ast.CompositeLit:
		for _, elt := range node.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if t.expr(kv.Value) {
					return true
				}
				continue
			}
			if t.expr(elt) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// A cleansing call launders scratch into an owned copy.
		if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok && cleansingMethods[sel.Sel.Name] {
			return false
		}
		if callee := staticCallee(t.info, node); callee != nil {
			if t.producers[callee] || t.names[callee.FullName()] {
				return true
			}
		}
		return false
	}
	return false
}

// refLike reports whether a value of type t can hold a reference to
// scratch memory: pointers, slices, maps, channels, funcs, interfaces,
// and structs or arrays containing any of those. seen guards recursive
// types.
func refLike(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLike(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Array:
		return refLike(u.Elem(), seen)
	}
	return true // type params and anything exotic: stay conservative
}

// selectorRoot walks to the base of a selector/index chain, reporting
// the root object and whether the chain passes through a pointer
// dereference or map/slice indirection (meaning the store escapes the
// local frame).
func selectorRoot(info *types.Info, e ast.Expr) (root types.Object, escapes bool) {
	for {
		switch node := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[node]
			if obj == nil {
				obj = info.Defs[node]
			}
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return obj, true // package-level variable: always escapes
			}
			return obj, escapes
		case *ast.SelectorExpr:
			if bt := info.TypeOf(node.X); bt != nil {
				if _, ptr := bt.Underlying().(*types.Pointer); ptr {
					escapes = true
				}
			}
			e = node.X
		case *ast.IndexExpr:
			if bt := info.TypeOf(node.X); bt != nil {
				switch bt.Underlying().(type) {
				case *types.Map, *types.Slice, *types.Pointer:
					escapes = true // heap-backed containers
				}
			}
			e = node.X
		case *ast.StarExpr:
			escapes = true
			e = node.X
		default:
			return nil, escapes
		}
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// ScratchRetain enforces the scratch-lifetime contract of PR 5
// statically: values returned by //gossip:scratch functions (the round
// Message and the slices Tick/AppendSnapshot hand out, all "valid until
// the next Tick on that node") must stay within the consuming call
// frame. Storing them — into a struct field reached through a pointer,
// a package variable, a map, a channel, a goroutine closure — retains
// memory the producing node is about to overwrite. The escape hatch is
// an explicit copy: msg.CopyForSend() (slices copied, payload bytes
// shared) or msg.Clone().
//
// Producers themselves (functions annotated //gossip:scratch) are
// exempt: they own the scratch they manage. Propagation is enforced at
// the annotation level — a function that returns scratch it obtained
// from a producer must itself be annotated //gossip:scratch, so the
// contract stays visible at every API boundary.
var ScratchRetain = &Analyzer{
	Name: "scratchretain",
	Doc:  "forbid retaining //gossip:scratch values past the call frame without CopyForSend/Clone",
	Run:  runScratchRetain,
}

func runScratchRetain(pass *Pass) error {
	m := passModule(pass)
	producers := scratchProducers(m)
	if len(producers) == 0 && len(pass.FactProducers) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, isProducer := pass.Directives.FuncDirective(fd, DirScratch); isProducer {
				continue
			}
			checkRetention(pass, producers, fd)
		}
	}
	return nil
}

func checkRetention(pass *Pass, producers map[*types.Func]bool, fd *ast.FuncDecl) {
	t := newTaint(pass.Info, producers, pass.FactProducers, fd)
	hasTaint := len(t.objs) > 0
	// Even with no tainted locals, a direct store of a producer call's
	// result (s.f = n.Tick()) must be caught; t.expr handles that.

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if stmt, ok := n.(ast.Stmt); ok && pass.Directives.Suppressed(DirScratchOK, fd, stmt) {
			// Covered by //gossip:scratchok: the flow is protected by a
			// protocol the analyzer cannot see (e.g. a conditional clone
			// keyed on delivery latency). Skip the subtree.
			return false
		}
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i := range node.Lhs {
				if i >= len(node.Rhs) {
					break
				}
				if !t.expr(node.Rhs[i]) {
					continue
				}
				checkStore(pass, fd, node.Lhs[i], node.Rhs[i])
			}
		case *ast.SendStmt:
			if t.expr(node.Value) {
				pass.Reportf(node.Value.Pos(), "scratch value sent into a channel outlives the round that owns it (valid only until the next Tick); send a CopyForSend()/Clone() copy instead")
			}
		case *ast.GoStmt:
			checkGoroutine(pass, t, node)
		case *ast.ReturnStmt:
			if !hasTaint {
				return true
			}
			for _, res := range node.Results {
				if t.expr(res) {
					pass.Reportf(res.Pos(), "%s returns per-round scratch but is not annotated //gossip:scratch; annotate it so callers inherit the lifetime contract, or return a CopyForSend()/Clone() copy", fd.Name.Name)
				}
			}
		}
		return true
	})
}

// checkStore flags stores of scratch that escape the local frame.
func checkStore(pass *Pass, fd *ast.FuncDecl, lhs, rhs ast.Expr) {
	switch target := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := pass.Info.Defs[target]
		if obj == nil {
			obj = pass.Info.Uses[target]
		}
		if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			pass.Reportf(rhs.Pos(), "scratch value stored in package variable %s outlives the round that owns it (valid only until the next Tick); store a CopyForSend()/Clone() copy instead", target.Name)
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if _, escapes := selectorRoot(pass.Info, target); escapes {
			pass.Reportf(rhs.Pos(), "scratch value stored outside the call frame (valid only until the next Tick on the producing node); store a CopyForSend()/Clone() copy instead")
		}
	}
}

// checkGoroutine flags scratch crossing into a goroutine: captured by
// the closure or passed as an argument. The goroutine's lifetime is
// unbounded relative to the gossip round.
func checkGoroutine(pass *Pass, t *taint, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if t.expr(arg) {
			pass.Reportf(arg.Pos(), "scratch value passed to a goroutine may be read after the round ends (valid only until the next Tick); pass a CopyForSend()/Clone() copy instead")
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !t.objs[obj] {
			return true
		}
		// Captured only if declared outside the literal.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		pass.Reportf(id.Pos(), "goroutine closure captures scratch value %s (valid only until the next Tick); capture a CopyForSend()/Clone() copy instead", id.Name)
		return true
	})
}

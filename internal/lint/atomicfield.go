package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces all-or-nothing atomicity per field: a struct
// field that is accessed through sync/atomic anywhere in the module
// must never be read or written plainly anywhere else — mixed access is
// a data race the race detector only catches on the interleavings a
// test happens to produce. Construction is the one exception: composite
// literal initialization (S{n: 0}) happens before the value can be
// shared and is allowed.
//
// The analyzer also checks the 32-bit alignment contract: a raw
// int64/uint64 field used with 64-bit sync/atomic operations must sit
// at an 8-byte-aligned offset in its struct's 32-bit (GOARCH=386)
// layout, or the operation faults on 32-bit targets. Fields typed
// atomic.Int64/atomic.Uint64 are exempt — the runtime aligns them.
//
// Deliberate exceptions (a plain read in a loop-serialized section, a
// pre-publication field setup outside a literal) are annotated
// //gossip:atomicok <reason> on the accessing statement.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "forbid mixed atomic/plain access to struct fields; check 64-bit atomic alignment for 32-bit targets",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	m := passModule(pass)
	aa, ok := atomicCache[m]
	if !ok {
		aa = analyzeAtomics(m)
		atomicCache[m] = aa
	}
	aa.report(pass)
	return nil
}

var atomicCache = map[*Module]*atomicAnalysis{}

type accessSite struct {
	pos  token.Pos
	node ast.Node
	fn   *ast.FuncDecl
	pkg  *Package
}

type atomicAnalysis struct {
	fset *token.FileSet
	// atomicAt: first sync/atomic call site per field, for diagnostics.
	atomicAt map[*types.Var]token.Pos
	// via64: field is operated on by 64-bit atomic functions.
	via64 map[*types.Var]bool
	// owner: a struct type containing the field (for layout checks).
	owner map[*types.Var]types.Type
	// ownerPkg: package declaring the field.
	ownerPkg map[*types.Var]string
	plain    map[*types.Var][]accessSite
}

func analyzeAtomics(m *Module) *atomicAnalysis {
	aa := &atomicAnalysis{
		fset:     m.Fset,
		atomicAt: map[*types.Var]token.Pos{},
		via64:    map[*types.Var]bool{},
		owner:    map[*types.Var]types.Type{},
		ownerPkg: map[*types.Var]string{},
		plain:    map[*types.Var][]accessSite{},
	}
	m.EachPackage(func(p *Package) { aa.collect(p) })
	return aa
}

func (aa *atomicAnalysis) collect(p *Package) {
	// consumed marks selector nodes that are the &x.f argument of a
	// sync/atomic call, so the plain-access sweep skips them.
	consumed := map[*ast.SelectorExpr]bool{}

	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				aa.collectAtomicCall(p, call, consumed)
			}
			return true
		})
	}

	// Plain-access sweep, tracking the enclosing function for
	// suppression checks. Composite-literal construction (S{f: 0}) is
	// naturally exempt: literal keys are plain Idents, not selectors.
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, isFn := decl.(*ast.FuncDecl)
			if isFn && fd.Body == nil {
				continue
			}
			var fn *ast.FuncDecl
			if isFn {
				fn = fd
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				node, ok := n.(*ast.SelectorExpr)
				if !ok || consumed[node] {
					return true
				}
				sel, ok := p.Info.Selections[node]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				field, ok := sel.Obj().(*types.Var)
				if !ok {
					return true
				}
				aa.plain[field] = append(aa.plain[field], accessSite{pos: node.Sel.Pos(), node: node, fn: fn, pkg: p})
				return true
			})
		}
	}
}

// collectAtomicCall records &x.f arguments of sync/atomic calls.
func (aa *atomicAnalysis) collectAtomicCall(p *Package, call *ast.CallExpr, consumed map[*ast.SelectorExpr]bool) {
	callee := staticCallee(p.Info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
		return
	}
	is64 := strings.HasSuffix(callee.Name(), "Int64") || strings.HasSuffix(callee.Name(), "Uint64")
	for _, arg := range call.Args {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		selNode, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		sel, ok := p.Info.Selections[selNode]
		if !ok || sel.Kind() != types.FieldVal {
			continue
		}
		field, ok := sel.Obj().(*types.Var)
		if !ok {
			continue
		}
		consumed[selNode] = true
		if _, seen := aa.atomicAt[field]; !seen {
			aa.atomicAt[field] = selNode.Sel.Pos()
		}
		if is64 {
			aa.via64[field] = true
		}
		if owner := sel.Recv(); owner != nil {
			t := owner
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			aa.owner[field] = t
		}
		if field.Pkg() != nil {
			aa.ownerPkg[field] = field.Pkg().Path()
		}
	}
}

func (aa *atomicAnalysis) report(pass *Pass) {
	// Mixed access: report plain sites located in this package.
	for field, atomicPos := range aa.atomicAt {
		for _, site := range aa.plain[field] {
			if site.pkg.Pkg != pass.Pkg {
				continue
			}
			if site.pkg.Directives.Suppressed(DirAtomicOK, site.fn, site.node) {
				continue
			}
			pass.Reportf(site.pos,
				"field %s is accessed atomically at %s but plainly here; use sync/atomic consistently, switch the field to atomic.%s, or annotate //gossip:atomicok with the serialization argument",
				fieldString(field), aa.fset.Position(atomicPos), typedAtomicFor(field))
		}
	}
	// 32-bit alignment of raw 64-bit atomic fields, reported at the
	// struct declaration.
	sizes := types.SizesFor("gc", "386")
	for field, is64 := range aa.via64 {
		if !is64 || aa.ownerPkg[field] != pass.Pkg.Path() {
			continue
		}
		owner, ok := aa.owner[field].Underlying().(*types.Struct)
		if !ok {
			continue
		}
		off, ok := fieldOffset32(sizes, owner, field)
		if !ok || off%8 == 0 {
			continue
		}
		pass.Reportf(field.Pos(),
			"64-bit atomic field %s sits at offset %d in the struct's 32-bit (GOARCH=386) layout; 64-bit atomic operations require 8-byte alignment — move it to the front of the struct or use atomic.%s",
			fieldString(field), off, typedAtomicFor(field))
	}
}

func fieldOffset32(sizes types.Sizes, s *types.Struct, field *types.Var) (int64, bool) {
	fields := make([]*types.Var, s.NumFields())
	idx := -1
	for i := 0; i < s.NumFields(); i++ {
		fields[i] = s.Field(i)
		if s.Field(i) == field {
			idx = i
		}
	}
	if idx < 0 {
		return 0, false
	}
	offsets := sizes.Offsetsof(fields)
	return offsets[idx], true
}

func fieldString(field *types.Var) string {
	if field.Pkg() != nil {
		return fmt.Sprintf("%s.%s", field.Pkg().Name(), field.Name())
	}
	return field.Name()
}

func typedAtomicFor(field *types.Var) string {
	if b, ok := field.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		}
	}
	return "Int64/Uint64"
}

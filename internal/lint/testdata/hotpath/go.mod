module fixture/hotpath

go 1.24

// Package hotpath seeds hot-path allocation violations for the
// hotpathalloc analyzer. None of these are diagnosable by go vet.
package hotpath

import (
	"fmt"
	"sort"
)

type Event struct {
	ID  int
	Age int
}

type Node struct {
	events  []Event
	scratch []Event
	sink    chan any
}

// Tick is the annotated root: everything below it, including the
// helpers it calls, must stay allocation free.
//
//gossip:hotpath
func (n *Node) Tick() int {
	buf := make([]Event, 0, 8) // want `heap allocation: make`
	_ = buf
	e := new(Event) // want `heap allocation: new`
	_ = e
	ids := []int{1, 2, 3} // want `heap allocation: slice literal`
	_ = ids
	ages := map[int]int{} // want `heap allocation: map literal`
	_ = ages
	p := &Event{ID: 1} // want `&-escaped composite literal`
	_ = p

	total := 0
	fn := func() { total++ } // want `closure captures total`
	fn()

	n.sink <- total // want `interface boxing: sending int`

	n.events = append(n.events, Event{ID: total})  // reuse form: ok
	grown := append(n.events, Event{ID: 4})        // want `append does not reuse its destination`
	n.scratch = append(n.scratch[:0], n.events...) // reuse form: ok
	fmt.Println(len(grown))                        // want `fmt.Println call` `interface boxing: passing int`
	name := "node-" + label()                      // want `string concatenation`
	raw := []byte(name)                            // want `string to \[\]byte conversion`
	back := string(raw)                            // want `\[\]byte to string conversion`
	_ = back
	go n.flush() // want `go statement`

	return n.helper()
}

// helper is not annotated, but Tick calls it: the hot closure reaches
// it transitively.
func (n *Node) helper() int {
	spill := make([]Event, 1) // want `heap allocation: make.*reached from //gossip:hotpath hotpath\.\(\*Node\)\.Tick`
	_ = spill

	//gossip:allocok error path, runs at most once per process
	cold := make([]Event, 64)
	return len(cold)
}

// flush is reached only through a go statement's method value, which
// the static call graph does not follow; its own annotation keeps it
// checked.
//
//gossip:hotpath
func (n *Node) flush() {
	n.events = n.events[:0]
}

// coldStart is entirely cold: the whole function is exempt, and the
// make below must not be reported.
//
//gossip:hotpath
//gossip:allocok startup-only wiring
func coldStart(n *Node) {
	n.events = make([]Event, 0, 1024)
}

// findSlot's predicate captures n and age, but it is passed straight to
// sort.Search, which calls and discards it: the environment stays on
// the stack, so no diagnostic.
//
//gossip:hotpath
func (n *Node) findSlot(age int) int {
	return sort.Search(len(n.events), func(i int) bool {
		return n.events[i].Age >= age
	})
}

// appendEvent is an append-style helper: returning the grown parameter
// hands the reuse obligation to the caller, so no diagnostic — unlike
// returning a grown field (appendField below).
//
//gossip:hotpath
func appendEvent(dst []Event, e Event) []Event {
	return append(dst, e) // reuse form: grown parameter returned
}

//gossip:hotpath
func (n *Node) appendField(e Event) []Event {
	return append(n.events, e) // want `append does not reuse its destination`
}

func label() string { return "x" }

module fixture/tsafe

go 1.24

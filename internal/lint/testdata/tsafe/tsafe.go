// Package tsafe seeds transport-safety violations for the
// transportsafe analyzer: per-round scratch messages reaching
// Send/SendMany on endpoints that are not marked ScratchSafe.
package tsafe

type Message struct {
	Events []int
}

// CopyForSend detaches a message from the producer's scratch state.
func (m *Message) CopyForSend() *Message {
	c := *m
	c.Events = append([]int(nil), m.Events...)
	return &c
}

// ScratchSafe mirrors transport.ScratchSafe: implementations promise
// not to retain sent messages past Send/SendMany returning.
type ScratchSafe interface {
	ScratchSafe()
}

// Endpoint mirrors the transport seam.
type Endpoint interface {
	Send(to string, msg *Message) error
	SendMany(targets []string, msg *Message) (int, error)
}

// AsyncEndpoint queues messages for later delivery: retaining, and not
// marked ScratchSafe.
type AsyncEndpoint struct {
	queue chan *Message
}

func (e *AsyncEndpoint) Send(to string, msg *Message) error {
	e.queue <- msg
	return nil
}

func (e *AsyncEndpoint) SendMany(targets []string, msg *Message) (int, error) {
	for range targets {
		e.queue <- msg
	}
	return len(targets), nil
}

// SyncEndpoint consumes messages synchronously and says so.
type SyncEndpoint struct {
	bytesOut int
}

func (e *SyncEndpoint) Send(to string, msg *Message) error {
	e.bytesOut += len(msg.Events)
	return nil
}

func (e *SyncEndpoint) SendMany(targets []string, msg *Message) (int, error) {
	e.bytesOut += len(targets) * len(msg.Events)
	return len(targets), nil
}

// ScratchSafe marks the synchronous endpoint.
func (e *SyncEndpoint) ScratchSafe() {}

type Node struct {
	scratch Message
}

// Tick returns the per-round scratch message.
//
//gossip:scratch
func (n *Node) Tick() *Message {
	return &n.scratch
}

func Drive(n *Node, async *AsyncEndpoint, sync *SyncEndpoint, ep Endpoint, targets []string) {
	msg := n.Tick()

	_ = async.Send("a", msg)            // want `not marked transport.ScratchSafe`
	_, _ = async.SendMany(targets, msg) // want `not marked transport.ScratchSafe`

	_ = sync.Send("a", msg)            // marked ScratchSafe: ok
	_, _ = sync.SendMany(targets, msg) // marked ScratchSafe: ok

	_ = async.Send("a", msg.CopyForSend()) // copied first: ok

	_ = ep.Send("a", msg) // want `through an interface with no ScratchSafe guard`
}

// DriveGuarded performs the runtime check the analyzer looks for, the
// way transport.SendGroups does.
func DriveGuarded(n *Node, ep Endpoint) {
	msg := n.Tick()
	if _, ok := ep.(ScratchSafe); !ok {
		msg = msg.CopyForSend()
	}
	_ = ep.Send("a", msg)
}

module fixture/directives

go 1.24

// Package directives seeds malformed //gossip: directives: the
// gossipdirective analyzer must turn every typo and misplacement into a
// diagnostic instead of a silent no-op.
package directives

// Buffer is a type, not a function: hotpath cannot apply.
//
//gossip:hotpath // want `//gossip:hotpath cannot annotate a type declaration`
type Buffer struct {
	events []int
}

// Frob carries a misspelled directive.
//
//gossip:hotpth // want `unknown gossip directive "hotpth"`
func Frob() {}

// Tick is fine: a real, well-placed pair of directives. No diagnostics.
//
//gossip:hotpath
//gossip:scratch
func (b *Buffer) Tick() []int {
	return b.events
}

// Reset duplicates a directive.
//
//gossip:hotpath
//gossip:hotpath // want `duplicate //gossip:hotpath directive on Reset`
func Reset() {}

// Count returns no pointer, slice or map: nothing can be scratch.
//
//gossip:scratch // want `returns no pointer-, slice- or map-typed results`
func Count() int { return 0 }

//gossip:scratch // want `cannot annotate a var declaration`
var counter int

func floating() {
	//gossip:scratch // want `must be part of a function declaration's doc comment`
	_ = counter

	//gossip:allocok covers the next statement: fine, no diagnostic
	_ = counter
}

// A suppression directive with no justification is also a problem, but
// that case cannot be seeded here: any trailing `want` text would parse
// as the justification itself. TestParseDirectivesUnit covers it.

//gossip:allocok dangling, nothing to attach to // want `not attached to any statement or function declaration`

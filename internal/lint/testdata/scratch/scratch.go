// Package scratch seeds scratch-retention violations for the
// scratchretain analyzer: values produced by //gossip:scratch functions
// escape the consuming call frame without a CopyForSend/Clone.
package scratch

type Message struct {
	Events []int
}

// CopyForSend detaches a message from the producer's scratch state.
func (m *Message) CopyForSend() *Message {
	c := *m
	c.Events = append([]int(nil), m.Events...)
	return &c
}

// Clone is the deep-copy variant.
func (m *Message) Clone() *Message { return m.CopyForSend() }

type Node struct {
	scratch Message
	rounds  int
}

// Tick rebuilds and returns the node's per-round scratch message,
// valid only until the next Tick.
//
//gossip:scratch
func (n *Node) Tick() *Message {
	n.rounds++
	n.scratch.Events = n.scratch.Events[:0]
	return &n.scratch
}

// AppendSnapshot appends the node's events into dst; the result aliases
// per-round storage.
//
//gossip:scratch
func (n *Node) AppendSnapshot(dst []int) []int {
	return append(dst, n.scratch.Events...)
}

var lastGlobal *Message

type Recorder struct {
	last   *Message
	events []int
	inbox  chan *Message
}

func (r *Recorder) Observe(n *Node) {
	r.last = n.Tick() // want `scratch value stored outside the call frame`

	msg := n.Tick()
	r.last = msg // want `scratch value stored outside the call frame`

	r.last = msg.CopyForSend() // copied: ok

	lastGlobal = msg // want `scratch value stored in package variable lastGlobal`

	r.inbox <- msg // want `scratch value sent into a channel`
	r.inbox <- msg.Clone()

	go r.drain(msg) // want `scratch value passed to a goroutine`
	go func() {
		_ = msg.Events // want `goroutine closure captures scratch value msg`
	}()

	snap := n.AppendSnapshot(nil)
	r.events = snap // want `scratch value stored outside the call frame`
}

func (r *Recorder) drain(m *Message) { _ = m }

// Relay launders scratch through a local and returns it: callers have
// no way to know the lifetime unless Relay is annotated too.
func Relay(n *Node) *Message {
	msg := n.Tick()
	return msg // want `Relay returns per-round scratch but is not annotated`
}

// RelayCopy is the correct version.
func RelayCopy(n *Node) *Message {
	return n.Tick().CopyForSend()
}

// StoreGuarded retains scratch under a protocol the analyzer cannot
// see; the justified //gossip:scratchok suppression keeps it quiet.
func StoreGuarded(r *Recorder, n *Node) {
	msg := n.Tick()
	//gossip:scratchok r.last is cleared before the next Tick by the same driver
	r.last = msg
}

// Deliver consumes scratch inside the frame: fine.
func Deliver(n *Node) int {
	msg := n.Tick()
	total := 0
	for _, e := range msg.Events {
		total += e
	}
	return total
}

module fixture/scratch

go 1.24

// Package atomicf seeds mixed atomic/plain field access and 64-bit
// alignment hazards for the atomicfield analyzer. The mixed accesses
// are real data races that go test -race only catches when a test
// happens to interleave them.
package atomicf

import "sync/atomic"

// Stats mixes a misaligned 64-bit atomic counter with plain accesses.
type Stats struct {
	ready uint32
	hits  uint64 // want `64-bit atomic field atomicf.hits sits at offset 4`
	name  string
}

// Inc is the atomic side.
func (s *Stats) Inc() {
	atomic.AddUint64(&s.hits, 1)
}

// Snapshot reads the same field plainly: a data race with Inc.
func (s *Stats) Snapshot() uint64 {
	return s.hits // want `accessed atomically at .* but plainly here`
}

// Reset writes it plainly: same race.
func (s *Stats) Reset() {
	s.hits = 0 // want `accessed atomically at .* but plainly here`
}

// Name only touches the never-atomic field: fine.
func (s *Stats) Name() string { return s.name }

// Aligned keeps its 64-bit counter at offset 0 and only reads it
// atomically, with one deliberate, annotated plain read.
type Aligned struct {
	ops   uint64
	ready uint32
}

// Touch is the atomic side.
func (a *Aligned) Touch() {
	atomic.AddUint64(&a.ops, 1)
	atomic.StoreUint32(&a.ready, 1)
}

// Init runs before the value is shared; the plain write is deliberate
// and documented in place.
func (a *Aligned) Init(seed uint64) {
	a.ops = seed //gossip:atomicok pre-publication initialization, no concurrent access yet
	a.ready = 0  //gossip:atomicok pre-publication initialization, no concurrent access yet
}

module fixture/atomicf

go 1.24

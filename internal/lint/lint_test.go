package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"adaptivegossip/internal/lint"
	"adaptivegossip/internal/lint/linttest"
)

// The fixture modules under testdata/ each seed violations one
// analyzer must catch — and legal patterns it must not flag. Every
// expectation is a `// want` comment in the fixture itself.

func TestHotPathAllocFixture(t *testing.T) {
	linttest.Run(t, "testdata/hotpath", lint.HotPathAlloc)
}

func TestScratchRetainFixture(t *testing.T) {
	linttest.Run(t, "testdata/scratch", lint.ScratchRetain)
}

func TestAtomicFieldFixture(t *testing.T) {
	linttest.Run(t, "testdata/atomicf", lint.AtomicField)
}

func TestTransportSafeFixture(t *testing.T) {
	linttest.Run(t, "testdata/tsafe", lint.TransportSafe)
}

func TestDirectiveFixture(t *testing.T) {
	linttest.Run(t, "testdata/directives", lint.DirectiveAnalyzer)
}

// TestParseDirectivesUnit exercises the directive parser directly on
// inline sources: well-formed directives attach where they should, and
// malformed ones always produce a problem, never a silent no-op.
func TestParseDirectivesUnit(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		problems []string // substrings of expected problems, in order
		attached int      // expected total well-attached directives
	}{
		{
			name: "well formed",
			src: `package p
// Tick is hot.
//
//gossip:hotpath
//gossip:scratch
func Tick() []int {
	//gossip:allocok cold branch
	x := make([]int, 4)
	return x
}
`,
			attached: 3,
		},
		{
			name:     "unknown name",
			src:      "package p\n\n//gossip:hotpat\nfunc F() {}\n",
			problems: []string{`unknown gossip directive "hotpat"`},
		},
		{
			name:     "empty name",
			src:      "package p\n\n//gossip:\nfunc F() {}\n",
			problems: []string{`unknown gossip directive ""`},
		},
		{
			name:     "hotpath on type",
			src:      "package p\n\n//gossip:hotpath\ntype T int\n",
			problems: []string{"cannot annotate a type declaration"},
		},
		{
			name:     "scratch on var",
			src:      "package p\n\n//gossip:scratch\nvar V int\n",
			problems: []string{"cannot annotate a var declaration"},
		},
		{
			name:     "hotpath inside body",
			src:      "package p\n\nfunc F() {\n\t//gossip:hotpath\n\t_ = 1\n}\n",
			problems: []string{"must be part of a function declaration's doc comment"},
		},
		{
			name:     "dangling allocok",
			src:      "package p\n\nfunc F() {}\n\n//gossip:allocok orphaned\n",
			problems: []string{"not attached to any statement or function declaration"},
		},
		{
			name:     "duplicate on one decl",
			src:      "package p\n\n//gossip:hotpath\n//gossip:hotpath\nfunc F() {}\n",
			problems: []string{"duplicate //gossip:hotpath"},
			attached: 1,
		},
		{
			name:     "suppression without justification",
			src:      "package p\n\nfunc F() {\n\t//gossip:scratchok\n\t_ = 1\n}\n",
			problems: []string{"//gossip:scratchok needs a justification"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, "src.go", tc.src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			ds := lint.ParseDirectives(fset, []*ast.File{file})
			if len(ds.Problems) != len(tc.problems) {
				t.Fatalf("got %d problems %v, want %d", len(ds.Problems), ds.Problems, len(tc.problems))
			}
			for i, want := range tc.problems {
				if !strings.Contains(ds.Problems[i].Message, want) {
					t.Errorf("problem %d = %q, want it to contain %q", i, ds.Problems[i].Message, want)
				}
			}
			total := len(ds.StmtLevel)
			for _, dirs := range ds.ByFunc {
				total += len(dirs)
			}
			if total != tc.attached {
				t.Errorf("attached directives = %d, want %d", total, tc.attached)
			}
		})
	}
}

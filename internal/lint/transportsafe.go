package lint

import (
	"go/ast"
	"go/types"
)

// TransportSafe generalizes the PR 5 retention audit into a machine
// check: a per-round scratch message handed to an Endpoint's
// Send/SendMany must either go to an implementation marked
// transport.ScratchSafe (UDP encodes synchronously, the memory fabric
// copies on entry) or pass through CopyForSend first.
//
// Resolution rules:
//   - the receiver's static type is concrete: safe iff the type (or its
//     pointer form) implements a ScratchSafe marker interface;
//   - the receiver is interface-typed: the concrete type is unknown at
//     the call site, so the enclosing function must contain the runtime
//     guard — a type assertion (or type switch case) against
//     ScratchSafe — the way transport.SendGroups does;
//   - the argument derives from a CopyForSend()/Clone() call: always
//     safe.
//
// "ScratchSafe" is matched structurally (an interface type named
// ScratchSafe), so the check applies to any package that adopts the
// marker, test fixtures included.
var TransportSafe = &Analyzer{
	Name: "transportsafe",
	Doc:  "require CopyForSend when scratch messages reach a non-ScratchSafe Endpoint",
	Run:  runTransportSafe,
}

// sendMethods are the Endpoint entry points that hand a message to a
// transport.
var sendMethods = map[string]bool{
	"Send":     true,
	"SendMany": true,
}

func runTransportSafe(pass *Pass) error {
	m := passModule(pass)
	producers := scratchProducers(m)
	if len(producers) == 0 && len(pass.FactProducers) == 0 {
		return nil
	}
	markers := scratchSafeMarkers(m)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, isProducer := pass.Directives.FuncDirective(fd, DirScratch); isProducer {
				continue
			}
			checkSends(pass, markers, producers, fd)
		}
	}
	return nil
}

// scratchSafeMarkers finds every interface type named ScratchSafe in
// the module.
func scratchSafeMarkers(m *Module) []*types.Interface {
	if cached, ok := markerCache[m]; ok {
		return cached
	}
	var markers []*types.Interface
	m.EachPackage(func(p *Package) {
		obj := p.Pkg.Scope().Lookup("ScratchSafe")
		if obj == nil {
			return
		}
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			markers = append(markers, iface)
		}
	})
	markerCache[m] = markers
	return markers
}

var markerCache = map[*Module][]*types.Interface{}

func implementsScratchSafe(markers []*types.Interface, t types.Type) bool {
	for _, iface := range markers {
		if types.Implements(t, iface) {
			return true
		}
		if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(t), iface) {
				return true
			}
		}
	}
	return false
}

func checkSends(pass *Pass, markers []*types.Interface, producers map[*types.Func]bool, fd *ast.FuncDecl) {
	t := newTaint(pass.Info, producers, pass.FactProducers, fd)
	guarded := hasScratchSafeGuard(pass, markers, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !sendMethods[sel.Sel.Name] {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			return true
		}
		tainted := false
		for _, arg := range call.Args {
			if t.expr(arg) {
				tainted = true
				break
			}
		}
		if !tainted {
			return true
		}
		if pass.Directives.Suppressed(DirScratchOK, fd, call) {
			return true
		}
		recv := selection.Recv()
		if _, isIface := recv.Underlying().(*types.Interface); isIface {
			if implementsScratchSafe(markers, recv) || guarded {
				return true
			}
			pass.Reportf(call.Pos(), "scratch message passed to %s.%s through an interface with no ScratchSafe guard in %s; copy with CopyForSend() first or guard the endpoint with a ScratchSafe type assertion (as transport.SendGroups does)", types.TypeString(recv, types.RelativeTo(pass.Pkg)), sel.Sel.Name, fd.Name.Name)
			return true
		}
		if implementsScratchSafe(markers, recv) {
			return true
		}
		pass.Reportf(call.Pos(), "scratch message passed to %s.%s, whose type is not marked transport.ScratchSafe and may retain it past the round; pass msg.CopyForSend() instead", types.TypeString(recv, types.RelativeTo(pass.Pkg)), sel.Sel.Name)
		return true
	})
}

// hasScratchSafeGuard reports whether fd contains a type assertion or
// type-switch case against a ScratchSafe marker — the dynamic form of
// the check this analyzer performs statically.
func hasScratchSafeGuard(pass *Pass, markers []*types.Interface, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		ta, ok := n.(*ast.TypeAssertExpr)
		if !ok || ta.Type == nil {
			return true
		}
		t := pass.Info.TypeOf(ta.Type)
		if t == nil {
			return true
		}
		if iface, ok := t.Underlying().(*types.Interface); ok {
			for _, m := range markers {
				if types.Identical(iface, m) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// Package lint is gossiplint: a suite of static analyzers that enforce
// the repository's hot-path, scratch-lifetime and atomics contracts at
// compile time — the invariants PRs 4–7 established dynamically
// (AllocsPerRun tests, -race runs, retention audits) become machine
// checks that every future refactor must pass.
//
// The package is a self-contained go/analysis-style framework built on
// the standard library alone (go/ast, go/types, go list): the build
// environment pins external modules, so golang.org/x/tools is not a
// dependency. The API deliberately mirrors go/analysis (Analyzer, Pass,
// Diagnostic) with one deliberate difference: a Pass can see the whole
// loaded module (Pass.Module), because the contracts being checked are
// inherently cross-package (a hot function in internal/runtime calls
// into internal/gossip; a field written plainly in one package may be
// read atomically in another) and the stdlib has no facts mechanism.
//
// Analyzers are driven by directive comments, which are part of the
// project contract (see API_STABILITY.md):
//
//	//gossip:hotpath        this function must not allocate, nor may
//	                        anything it (transitively) calls in-module
//	//gossip:allocok reason the next statement (or this whole function)
//	                        is a known cold branch; allocation is fine
//	//gossip:scratch        this function's pointer/slice results are
//	                        per-round scratch, valid until the next Tick
//	//gossip:atomicok reason this statement's plain access to an
//	                        atomically-used field is deliberate
//	//gossip:scratchok reason this statement's scratch flow is protected
//	                        by a protocol the analyzer cannot see
//
// The suite: hotpathalloc, scratchretain, atomicfield, transportsafe,
// plus the directive validator itself. cmd/gossiplint is the
// multichecker front end (standalone and `go vet -vettool`).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the help text.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries the inputs of one analyzer applied to one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Directives holds the parsed //gossip: comments of this package.
	Directives *DirectiveSet

	// Module is the whole loaded module, for cross-package analyses.
	// Nil in single-package (vettool) mode; analyzers must degrade to
	// package-local precision when it is.
	Module *Module

	// FactProducers carries //gossip:scratch producers from dependency
	// compilation units in vettool mode, keyed by types.Func.FullName()
	// (the only stable cross-unit identity available without a real
	// facts mechanism). Nil in whole-module mode, where Module already
	// exposes every producer.
	FactProducers map[string]bool

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is one type-checked module package.
type Package struct {
	Path       string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Directives *DirectiveSet
}

// Module is the full set of type-checked packages under analysis,
// sharing one FileSet and one type-object space (an object defined in
// package A is the identical *types.Var / *types.Func when seen from
// package B).
type Module struct {
	Path string
	Fset *token.FileSet
	// Pkgs is keyed by import path.
	Pkgs map[string]*Package
	// Sorted import paths, for deterministic iteration.
	Paths []string
}

// EachPackage visits the module's packages in import-path order.
func (m *Module) EachPackage(fn func(*Package)) {
	for _, path := range m.Paths {
		fn(m.Pkgs[path])
	}
}

// Run applies each analyzer to each package of the module and returns
// the merged diagnostics sorted by position.
func Run(m *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, path := range m.Paths {
			p := m.Pkgs[path]
			pass := &Pass{
				Analyzer:   a,
				Fset:       m.Fset,
				Files:      p.Files,
				Pkg:        p.Pkg,
				Info:       p.Info,
				Directives: p.Directives,
				Module:     m,
				diags:      &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, path, err)
			}
		}
	}
	SortDiagnostics(m.Fset, diags)
	return dedupe(diags), nil
}

// RunPackage applies each analyzer to a single compilation unit with no
// module context (vettool mode). factProducers carries //gossip:scratch
// identities imported from dependency units.
func RunPackage(p *Package, analyzers []*Analyzer, factProducers map[string]bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:      a,
			Fset:          p.Fset,
			Files:         p.Files,
			Pkg:           p.Pkg,
			Info:          p.Info,
			Directives:    p.Directives,
			FactProducers: factProducers,
			diags:         &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, p.Path, err)
		}
	}
	SortDiagnostics(p.Fset, diags)
	return dedupe(diags), nil
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// dedupe removes identical diagnostics: module-level analyzers that
// scan cross-package state (atomicfield) can rediscover the same
// finding from several packages.
func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// All returns the full gossiplint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DirectiveAnalyzer,
		HotPathAlloc,
		ScratchRetain,
		AtomicField,
		TransportSafe,
	}
}
